// Bridge from the live system state to an offline batch problem.
//
// Implements the paper's first "basic modification" of A (§IV-A): already-
// scheduled transactions are folded into per-object availability, so the
// batch algorithm appends new work after them without touching their times.
#pragma once

#include <map>
#include <span>

#include "batch/batch_problem.hpp"
#include "core/scheduler.hpp"

namespace dtm {

/// Builds the batch problem for scheduling `txns` (live, unscheduled) given
/// the current system state. `extra_assigned` carries assignments made
/// earlier in the same step that the view cannot see yet.
///
/// Availability of each object is the position/time at which it runs out of
/// commitments to scheduled transactions: the latest assigned live user if
/// any, otherwise the object's current (possibly in-transit) position.
[[nodiscard]] BatchProblem build_batch_problem(
    const SystemView& view, std::span<const TxnId> txns,
    const std::map<TxnId, Time>& extra_assigned);

}  // namespace dtm
