// Bridge from the live system state to an offline batch problem.
//
// Implements the paper's first "basic modification" of A (§IV-A): already-
// scheduled transactions are folded into per-object availability, so the
// batch algorithm appends new work after them without touching their times.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "batch/batch_problem.hpp"
#include "core/scheduler.hpp"

namespace dtm {

/// Assignments made earlier in the same step that the view cannot see yet.
/// A sorted small-vector: per-step populations are tiny (one entry per
/// activation assignment), so binary search over contiguous memory beats
/// the former std::map in both lookup cost and allocation count.
class ExtraAssignments {
 public:
  ExtraAssignments() = default;
  ExtraAssignments(std::initializer_list<std::pair<TxnId, Time>> init) {
    for (const auto& [id, exec] : init) set(id, exec);
  }

  /// Insert-or-overwrite the assignment for `id`.
  void set(TxnId id, Time exec) {
    const auto it = lower_bound(id);
    if (it != v_.end() && it->first == id) {
      it->second = exec;
      return;
    }
    v_.insert(it, {id, exec});
  }

  /// Execution time assigned to `id` this step, or kNoTime.
  [[nodiscard]] Time find(TxnId id) const {
    const auto it = lower_bound(id);
    return (it != v_.end() && it->first == id) ? it->second : kNoTime;
  }

  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  void clear() { v_.clear(); }

 private:
  [[nodiscard]] std::vector<std::pair<TxnId, Time>>::iterator lower_bound(
      TxnId id) {
    return std::lower_bound(
        v_.begin(), v_.end(), id,
        [](const std::pair<TxnId, Time>& a, TxnId b) { return a.first < b; });
  }
  [[nodiscard]] std::vector<std::pair<TxnId, Time>>::const_iterator
  lower_bound(TxnId id) const {
    return std::lower_bound(
        v_.begin(), v_.end(), id,
        [](const std::pair<TxnId, Time>& a, TxnId b) { return a.first < b; });
  }

  std::vector<std::pair<TxnId, Time>> v_;
};

/// Availability of object `o` right now: the position/time at which it runs
/// out of commitments to scheduled transactions — the latest assigned live
/// user if any (checking `extra` first), otherwise the object's current
/// (possibly in-transit) position. This is the per-object kernel of
/// build_batch_problem, exposed so the bucket fast path can refresh cached
/// problems without rebuilding them. Callers scheduling UNSCHEDULED
/// transactions need no "exclude our batch" filtering: unscheduled ids have
/// no exec time and never pin anything.
[[nodiscard]] BatchObject object_availability(const SystemView& view, ObjId o,
                                              const ExtraAssignments& extra);

/// Reusable builder: identical output to build_batch_problem, but scratch
/// buffers persist across calls (the bucket schedulers build one problem
/// per probed level per arrival — the per-call set/map churn used to
/// dominate insertion cost).
class ProblemBuilder {
 public:
  /// Builds the batch problem for `txns` plus, when `candidate != kNoTxn`,
  /// one appended candidate transaction — the bucket probe "B_i ∪ {t}"
  /// WITHOUT materializing a copied membership vector. Results are written
  /// into `out` (cleared first).
  void build(const SystemView& view, std::span<const TxnId> txns,
             TxnId candidate, const ExtraAssignments& extra,
             BatchProblem& out);

 private:
  std::vector<ObjId> objs_;  ///< sorted distinct object ids (scratch)
};

/// Builds the batch problem for scheduling `txns` (live, unscheduled) given
/// the current system state. Convenience wrapper over ProblemBuilder.
[[nodiscard]] BatchProblem build_batch_problem(
    const SystemView& view, std::span<const TxnId> txns,
    const ExtraAssignments& extra_assigned);

}  // namespace dtm
