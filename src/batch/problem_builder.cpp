#include "batch/problem_builder.hpp"

#include <algorithm>

namespace dtm {

BatchObject object_availability(const SystemView& view, ObjId o,
                                const ExtraAssignments& extra) {
  auto exec_of = [&](TxnId id) -> Time {
    const Time e = extra.find(id);
    return e != kNoTime ? e : view.assigned_exec(id);
  };

  // Latest assigned live user pins the object.
  TxnId pin = kNoTxn;
  Time pin_exec = kNoTime;
  for (const TxnId uid : view.live_users_of(o)) {
    const Time e = exec_of(uid);
    if (e == kNoTime) continue;  // unscheduled user: not a commitment
    if (e > pin_exec) {
      pin_exec = e;
      pin = uid;
    }
  }
  if (pin != kNoTxn) return {o, view.txn(pin).node, pin_exec, true};

  const ObjectState& os = view.object(o);
  if (os.in_transit()) {
    // No pending scheduled user, but the object is mid-flight (its
    // destination user just executed is impossible — it would have the
    // object — so this is a tail case after redirects): it is committed
    // until it lands.
    return {o, os.dest(), std::max(view.now(), os.arrive_time()),
            os.last_txn() != kNoTxn};
  }
  return {o, os.at(), view.now(), os.last_txn() != kNoTxn};
}

void ProblemBuilder::build(const SystemView& view, std::span<const TxnId> txns,
                           TxnId candidate, const ExtraAssignments& extra,
                           BatchProblem& out) {
  out.oracle = &view.oracle();
  out.latency_factor = view.latency_factor();
  out.now = view.now();
  // The math mode rides along (the caller's build target carries it); any
  // previously attached SoA view is for the old contents — drop it.
  out.soa = nullptr;
  out.objects.clear();
  out.txns.clear();
  out.txns.reserve(txns.size() + (candidate != kNoTxn ? 1 : 0));

  objs_.clear();
  auto add_txn = [&](TxnId id) {
    const Transaction& t = view.txn(id);
    BatchTxn bt{t.id, t.node, t.object_ids()};
    std::sort(bt.objects.begin(), bt.objects.end());
    bt.objects.erase(std::unique(bt.objects.begin(), bt.objects.end()),
                     bt.objects.end());
    objs_.insert(objs_.end(), bt.objects.begin(), bt.objects.end());
    out.txns.push_back(std::move(bt));
  };
  for (const TxnId id : txns) add_txn(id);
  if (candidate != kNoTxn) add_txn(candidate);

  std::sort(objs_.begin(), objs_.end());
  objs_.erase(std::unique(objs_.begin(), objs_.end()), objs_.end());

  out.objects.reserve(objs_.size());
  for (const ObjId o : objs_)
    out.objects.push_back(object_availability(view, o, extra));
}

BatchProblem build_batch_problem(const SystemView& view,
                                 std::span<const TxnId> txns,
                                 const ExtraAssignments& extra_assigned) {
  BatchProblem p;
  ProblemBuilder b;
  b.build(view, txns, kNoTxn, extra_assigned, p);
  return p;
}

}  // namespace dtm
