#include "batch/problem_builder.hpp"

#include <algorithm>
#include <set>

namespace dtm {

BatchProblem build_batch_problem(const SystemView& view,
                                 std::span<const TxnId> txns,
                                 const std::map<TxnId, Time>& extra_assigned) {
  BatchProblem p;
  p.oracle = &view.oracle();
  p.latency_factor = view.latency_factor();
  p.now = view.now();

  auto exec_of = [&](TxnId id) -> Time {
    const auto it = extra_assigned.find(id);
    if (it != extra_assigned.end()) return it->second;
    return view.assigned_exec(id);
  };

  std::set<ObjId> objs;
  std::set<TxnId> ours(txns.begin(), txns.end());
  for (const TxnId id : txns) {
    const Transaction& t = view.txn(id);
    BatchTxn bt{t.id, t.node, t.object_ids()};
    std::sort(bt.objects.begin(), bt.objects.end());
    bt.objects.erase(std::unique(bt.objects.begin(), bt.objects.end()),
                     bt.objects.end());
    for (const ObjId o : bt.objects) objs.insert(o);
    p.txns.push_back(std::move(bt));
  }

  for (const ObjId o : objs) {
    // Latest assigned live user outside our batch pins the object.
    TxnId pin = kNoTxn;
    Time pin_exec = kNoTime;
    for (const TxnId uid : view.live_users_of(o)) {
      if (ours.count(uid)) continue;
      const Time e = exec_of(uid);
      if (e == kNoTime) continue;  // unscheduled stranger: not a commitment
      if (e > pin_exec) {
        pin_exec = e;
        pin = uid;
      }
    }
    if (pin != kNoTxn) {
      p.objects.push_back({o, view.txn(pin).node, pin_exec, true});
      continue;
    }
    const ObjectState& os = view.object(o);
    if (os.in_transit()) {
      // No pending scheduled user, but the object is mid-flight (its
      // destination user just executed is impossible — it would have the
      // object — so this is a tail case after redirects): it is committed
      // until it lands.
      p.objects.push_back({o, os.dest(), std::max(p.now, os.arrive_time()),
                           os.last_txn() != kNoTxn});
    } else {
      p.objects.push_back({o, os.at(), p.now, os.last_txn() != kNoTxn});
    }
  }
  return p;
}

}  // namespace dtm
