#include "batch/batch_scheduler.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "batch/soa_problem.hpp"

namespace dtm {

namespace {

/// Cross-check two results element-wise (same assignment order expected —
/// both paths emit in visiting order).
void check_results_equal(const BatchResult& soa, const BatchResult& ref,
                         const char* what) {
  DTM_CHECK(soa.makespan == ref.makespan && soa.assignments.size() ==
                                                ref.assignments.size(),
            "" << what << ": SoA makespan " << soa.makespan << " vs scalar "
               << ref.makespan);
  for (std::size_t i = 0; i < soa.assignments.size(); ++i)
    DTM_CHECK(soa.assignments[i].txn == ref.assignments[i].txn &&
                  soa.assignments[i].exec == ref.assignments[i].exec,
              "" << what << ": assignment " << i << " diverged (txn "
                 << soa.assignments[i].txn << " exec "
                 << soa.assignments[i].exec << " vs txn "
                 << ref.assignments[i].txn << " exec "
                 << ref.assignments[i].exec << ")");
}

}  // namespace

Time estimate_fa(const BatchScheduler& a, const BatchProblem& p, Rng& rng) {
  if (p.txns.empty()) {
    // Nothing new to schedule; F_A is the residual availability horizon.
    Time horizon = 0;
    for (const auto& o : p.objects)
      horizon = std::max(horizon, o.ready - p.now);
    return horizon;
  }
  const BatchResult r = a.schedule(p, rng);
  Time f = r.makespan;
  // F_A covers *all* transactions in the combined set, including the pinned
  // ones folded into availability: an object whose ready time lies in the
  // future keeps the system busy until then even if no new txn touches it
  // late.
  for (const auto& o : p.objects) f = std::max(f, o.ready - p.now);
  return f;
}

BatchResult chain_evaluate(const BatchProblem& p,
                           const std::vector<std::size_t>& order,
                           bool validate) {
  if (p.math == BatchMathMode::kScalar)
    return chain_evaluate_scalar(p, order, validate);
  // SoA path: use the owner's prebuilt view when present, else build into
  // a thread-local scratch (one-shot callers like OrderedChainBatch).
  static thread_local BatchProblemSoA scratch;
  const BatchProblemSoA* s = p.soa.get();
  if (s == nullptr || !s->matches(p)) {
    scratch.build(p);
    s = &scratch;
  }
  BatchResult r = chain_evaluate_soa(p, *s, order);
  if (p.math == BatchMathMode::kVerify)
    check_results_equal(r, chain_evaluate_scalar(p, order, /*validate=*/false),
                        "chain_evaluate");
  if (validate) check_batch_result(p, r);
  return r;
}

BatchResult chain_evaluate_scalar(const BatchProblem& p,
                                  const std::vector<std::size_t>& order,
                                  bool validate) {
  DTM_REQUIRE(order.size() == p.txns.size(),
              "order size " << order.size() << " != " << p.txns.size());
  struct Cursor {
    ObjId id;
    NodeId node;
    Time free_at;
    bool from_txn;
  };
  // Flat sorted cursor table instead of a node-based map: this runs under
  // every F_A estimate, and the per-call rebuild of a std::map used to be
  // the single largest allocation source in the bucket schedulers. The
  // thread_local scratch keeps the capacity across calls.
  static thread_local std::vector<Cursor> cur;
  cur.clear();
  cur.reserve(p.objects.size());
  for (const auto& o : p.objects)
    cur.push_back({o.id, o.node, o.ready, o.from_txn});
  std::sort(cur.begin(), cur.end(),
            [](const Cursor& a, const Cursor& b) { return a.id < b.id; });
  const auto find = [&](ObjId o) -> Cursor& {
    const auto it = std::lower_bound(
        cur.begin(), cur.end(), o,
        [](const Cursor& c, ObjId v) { return c.id < v; });
    DTM_CHECK(it != cur.end() && it->id == o,
              "object " << o << " missing from problem");
    return *it;
  };

  BatchResult r;
  r.assignments.reserve(p.txns.size());
  for (const std::size_t idx : order) {
    const BatchTxn& t = p.txns[idx];
    Time e = p.now;
    for (const ObjId o : t.objects) {
      const Cursor& c = find(o);
      Time arrive = c.free_at + p.travel(c.node, t.node);
      if (c.from_txn) arrive = std::max(arrive, c.free_at + 1);
      e = std::max(e, arrive);
    }
    for (const ObjId o : t.objects) find(o) = {o, t.node, e, true};
    r.assignments.push_back({t.id, e});
    r.makespan = std::max(r.makespan, e - p.now);
  }
  if (validate) check_batch_result(p, r);
  return r;
}

BatchResult OrderedChainBatch::schedule(const BatchProblem& p,
                                        Rng& rng) const {
  return chain_evaluate(p, policy_(p, rng));
}

namespace {

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

/// Sorts transaction indices by a key functor (stable, ties by txn id).
template <typename KeyFn>
std::vector<std::size_t> order_by_key(const BatchProblem& p, KeyFn key) {
  auto order = identity_order(p.txns.size());
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const auto ka = key(p.txns[a]);
                     const auto kb = key(p.txns[b]);
                     if (ka != kb) return ka < kb;
                     return p.txns[a].id < p.txns[b].id;
                   });
  return order;
}

}  // namespace

std::unique_ptr<BatchScheduler> make_line_batch() {
  return std::make_unique<OrderedChainBatch>(
      "line-sweep", [](const BatchProblem& p, Rng&) {
        // Left-to-right along the line: every object performs one sweep, so
        // its total travel is O(n) against a spread lower bound — the O(1)
        // approximation structure of [SPAA'17]'s line scheduler.
        return order_by_key(p, [](const BatchTxn& t) { return t.node; });
      });
}

std::unique_ptr<BatchScheduler> make_clique_batch() {
  return std::make_unique<OrderedChainBatch>(
      "clique-load", [](const BatchProblem& p, Rng&) {
        // Heaviest transactions (sum of their objects' user counts) first:
        // hot objects start their chains immediately instead of idling.
        std::map<ObjId, std::int64_t> load;
        for (const auto& t : p.txns)
          for (const ObjId o : t.objects) ++load[o];
        return order_by_key(p, [&](const BatchTxn& t) {
          std::int64_t w = 0;
          for (const ObjId o : t.objects) w += load[o];
          return -w;
        });
      });
}

std::unique_ptr<BatchScheduler> make_cluster_batch(NodeId beta) {
  return std::make_unique<OrderedChainBatch>(
      "cluster-random",
      [beta](const BatchProblem& p, Rng& rng) {
        // Random permutation of cliques (the randomized step of [SPAA'17]);
        // within a clique the bridge node (member 0) goes first so inter-
        // clique transfers leave as early as possible.
        std::map<NodeId, NodeId> clique_rank;
        for (const auto& t : p.txns) clique_rank.emplace(t.node / beta, 0);
        std::vector<NodeId> cliques;
        cliques.reserve(clique_rank.size());
        for (const auto& [c, _] : clique_rank) cliques.push_back(c);
        rng.shuffle(cliques);
        for (std::size_t i = 0; i < cliques.size(); ++i)
          clique_rank[cliques[i]] = static_cast<NodeId>(i);
        return order_by_key(p, [&](const BatchTxn& t) {
          return std::pair(clique_rank[t.node / beta], t.node % beta);
        });
      },
      /*is_randomized=*/true);
}

std::unique_ptr<BatchScheduler> make_star_batch(NodeId beta) {
  return std::make_unique<OrderedChainBatch>(
      "star-random",
      [beta](const BatchProblem& p, Rng& rng) {
        // Center first; then rays in random order, each walked center-
        // outward — objects funnel through the hub once per ray.
        std::map<NodeId, NodeId> ray_rank;
        for (const auto& t : p.txns)
          if (t.node != 0) ray_rank.emplace((t.node - 1) / beta, 0);
        std::vector<NodeId> rays;
        rays.reserve(ray_rank.size());
        for (const auto& [r, _] : ray_rank) rays.push_back(r);
        rng.shuffle(rays);
        for (std::size_t i = 0; i < rays.size(); ++i)
          ray_rank[rays[i]] = static_cast<NodeId>(i);
        return order_by_key(p, [&](const BatchTxn& t) {
          if (t.node == 0) return std::pair<NodeId, NodeId>(-1, 0);
          return std::pair(ray_rank[(t.node - 1) / beta],
                           (t.node - 1) % beta);
        });
      },
      /*is_randomized=*/true);
}

std::unique_ptr<BatchScheduler> make_grid_snake_batch(
    std::vector<NodeId> extents) {
  return std::make_unique<OrderedChainBatch>(
      "grid-snake", [extents](const BatchProblem& p, Rng&) {
        // Boustrophedon: row-major, alternating direction per row, so that
        // consecutive transactions are adjacent in the grid.
        return order_by_key(p, [&](const BatchTxn& t) {
          NodeId id = t.node;
          // Decode row-major coordinates, then snake-fold the last axis.
          std::vector<NodeId> c(extents.size());
          for (std::size_t d = extents.size(); d-- > 0;) {
            c[d] = id % extents[d];
            id /= extents[d];
          }
          NodeId key = 0;
          bool flip = false;
          for (std::size_t d = 0; d < extents.size(); ++d) {
            const NodeId v = flip ? extents[d] - 1 - c[d] : c[d];
            key = key * extents[d] + v;
            flip = (c[d] % 2) == 1 ? !flip : flip;
          }
          return key;
        });
      });
}

std::unique_ptr<BatchScheduler> make_hypercube_gray_batch() {
  return std::make_unique<OrderedChainBatch>(
      "hypercube-gray", [](const BatchProblem& p, Rng&) {
        // Inverse Gray code: consecutive ranks differ in one bit, so the
        // visiting order is a Hamiltonian walk of the cube.
        return order_by_key(p, [](const BatchTxn& t) {
          std::uint32_t g = static_cast<std::uint32_t>(t.node);
          std::uint32_t b = 0;
          for (; g; g >>= 1) b ^= g;
          return b;
        });
      });
}

std::unique_ptr<BatchScheduler> make_tsp_batch() {
  return std::make_unique<OrderedChainBatch>(
      "tsp-nn", [](const BatchProblem& p, Rng&) {
        // Nearest-neighbor tour over transaction nodes, starting from the
        // busiest object's position (Zhang et al. route objects along TSP
        // tours; this is the standard constructive heuristic for it).
        const std::size_t n = p.txns.size();
        auto order = identity_order(n);
        if (n <= 2) return order;
        NodeId pos = p.objects.empty() ? p.txns[0].node : p.objects[0].node;
        std::vector<bool> used(n, false);
        std::vector<std::size_t> tour;
        tour.reserve(n);
        for (std::size_t step = 0; step < n; ++step) {
          std::size_t best = n;
          Weight best_d = kInfWeight;
          for (std::size_t i = 0; i < n; ++i) {
            if (used[i]) continue;
            const Weight d = p.oracle->dist(pos, p.txns[i].node);
            if (d < best_d ||
                (d == best_d && best < n && p.txns[i].id < p.txns[best].id)) {
              best_d = d;
              best = i;
            }
          }
          used[best] = true;
          tour.push_back(best);
          pos = p.txns[best].node;
        }
        return tour;
      });
}

namespace {

/// Fully serial schedule: transaction i+1 starts only after transaction i
/// has committed *and* every one of its objects could have been shipped
/// over. Implements the Lemma 3 worst case as an honest baseline.
class SequentialBatch final : public BatchScheduler {
 public:
  [[nodiscard]] BatchResult schedule(const BatchProblem& p,
                                     Rng&) const override {
    struct Cursor {
      NodeId node;
      Time free_at;
      bool from_txn;
    };
    std::map<ObjId, Cursor> cur;
    for (const auto& o : p.objects)
      cur[o.id] = {o.node, o.ready, o.from_txn};
    BatchResult r;
    Time prev = p.now;
    for (const auto& t : p.txns) {
      Time e = prev;
      for (const ObjId o : t.objects) {
        const Cursor& c = cur.at(o);
        Time arrive = c.free_at + p.travel(c.node, t.node);
        if (c.from_txn) arrive = std::max(arrive, c.free_at + 1);
        e = std::max(e, arrive);
      }
      for (const ObjId o : t.objects) cur[o] = {t.node, e, true};
      r.assignments.push_back({t.id, e});
      r.makespan = std::max(r.makespan, e - p.now);
      prev = e + 1;  // full serialization: nobody overlaps
    }
    check_batch_result(p, r);
    return r;
  }
  [[nodiscard]] std::string name() const override { return "sequential"; }
};

}  // namespace

std::unique_ptr<BatchScheduler> make_sequential_batch() {
  return std::make_unique<SequentialBatch>();
}

}  // namespace dtm
