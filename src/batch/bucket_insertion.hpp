// Incremental bucket-insertion core shared by core/bucket_scheduler and
// dist/dist_bucket (the paper's Algorithm 2 insertion rule and its
// Algorithm 3 twin).
//
// The naive transcription rebuilds the full BatchProblem and re-runs the
// offline estimator A once per level from 0 upward for EVERY arrival —
// O(arrivals x levels x |B_i| * cost(A)). This core removes each factor
// without changing a single scheduling decision:
//
//   cached problems   every bucket keeps its BatchProblem alive across
//                     probes and arrivals; inserting a member appends one
//                     transaction row (+ merges its objects) instead of
//                     rebuilding all rows, and the cache dies only on
//                     bucket activation/drain. Availability is refreshed
//                     lazily, once per (step, world-change).
//
//   memoized F_A      estimates are keyed by a 64-bit content fingerprint
//                     of the probed problem (membership + relative
//                     availability + latency). Identical problems recur
//                     constantly — every empty level probed above the
//                     chosen one, and every untouched bucket re-probed by
//                     the next arrival — and cost one hash lookup instead
//                     of a run of A.
//
//   level lower bound the scan starts at ceil(log2(LB)) where LB is the
//                     candidate's single-transaction makespan lower bound
//                     (core/lower_bound): any feasible schedule of
//                     B_i ∪ {t} executes t no earlier than its farthest
//                     object can arrive, so every level with 2^i < LB
//                     fails the F_A test without being probed.
//
// Byte-identity is the design invariant, not an afterthought: randomized
// estimates and activation retries draw from RNG streams derived purely
// from (scheduler seed, salt, problem fingerprint, trial index), so the
// naive and incremental paths — and any mix of memo hits and misses —
// produce bit-equal schedules. kVerify runs both paths and cross-checks
// every level choice; the golden commit-sequence pins hold across all
// three paths.
//
// That same purity is what makes the core parallelizable without touching
// a single decision (ARCHITECTURE.md §8): with threads > 1,
//   - activation retries evaluate concurrently (each trial's stream
//     depends only on (seed, fingerprint, trial index)) and merge as
//     min-by-(makespan, trial index) — exactly the serial strict-< scan;
//   - the incremental level scan probes levels in waves of `threads`
//     speculative F_A estimates (memo hits resolved serially first), then
//     picks the lowest fitting level in ascending order — the same level
//     the one-at-a-time scan stops at, because estimates are pure.
// Speculative probes can run A for levels the serial scan would never
// reach, so FastPathStats counters (probes/estimates/memo_hits) are
// thread-count-DEPENDENT introspection; decisions, schedules, and
// last_lower_bound() are thread-count-invariant.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "batch/batch_scheduler.hpp"
#include "batch/problem_builder.hpp"
#include "batch/soa_problem.hpp"
#include "core/lower_bound.hpp"

namespace dtm {

/// Insertion-path selector, wired through BucketOptions / DistBucketOptions
/// (registry knob `fastpath=off|on|verify`).
enum class BucketFastPath {
  kNaive,        ///< rebuild + estimate every level from 0 (paper verbatim)
  kIncremental,  ///< cached problems + memoized F_A + level lower bound
  kVerify,       ///< incremental, cross-checked against the naive scan
};

struct FastPathStats {
  std::int64_t inserts = 0;         ///< choose_level calls
  std::int64_t probes = 0;          ///< F_A estimates requested
  std::int64_t memo_hits = 0;       ///< estimates answered from the memo
  std::int64_t estimates = 0;       ///< estimates that actually ran A
  std::int64_t levels_skipped = 0;  ///< levels below the lower-bound start
  std::int64_t rebuilds = 0;        ///< full problem (re)builds
  std::int64_t refreshes = 0;       ///< cached availability refreshes
  std::int64_t appends = 0;         ///< incremental member appends
  std::int64_t activations = 0;     ///< activation problems produced
  std::int64_t verify_checks = 0;   ///< naive cross-checks (kVerify)
};

/// Canonical 64-bit content fingerprint of a batch problem: transaction
/// rows in order, objects in (sorted) order with availability RELATIVE to
/// p.now, plus the latency factor. Excluding the absolute clock is what
/// makes memo hits valid across steps: every batch algorithm schedules
/// relative to p.now, so time-shifted problems have identical relative
/// schedules.
[[nodiscard]] std::uint64_t problem_fingerprint(const BatchProblem& p);

/// F_A with a dedicated RNG stream: estimate_fa over a fresh Rng(seed).
/// Derive `seed` from the problem fingerprint so equal problems draw equal
/// streams (the memoization soundness condition).
[[nodiscard]] Time estimate_fa_seeded(const BatchScheduler& a,
                                      const BatchProblem& p,
                                      std::uint64_t seed);

class BucketInsertionCore {
 public:
  /// Stable caller-chosen bucket identity (core scheduler: the level;
  /// dist: a dense id per BucketKey).
  using BucketId = std::uint64_t;

  /// Callback mapping a level to the bucket it would probe: identity +
  /// current membership.
  struct LevelView {
    BucketId id = 0;
    std::span<const TxnId> members;
  };
  using LevelFn = std::function<LevelView(std::int32_t)>;

  /// `threads`: 1 = serial (default), 0 = all hardware threads, N = up to
  /// N participants for wave probing and activation retries.
  /// `math`: batch arithmetic backend stamped on every problem this core
  /// builds (registry knob `batch_math=scalar|soa|verify`); all modes are
  /// byte-identical, kSoA additionally attaches shared BatchProblemSoA
  /// views so one build serves every probe trial / activation retry.
  BucketInsertionCore(std::shared_ptr<const BatchScheduler> algo,
                      BucketFastPath path, std::uint64_t seed,
                      std::int32_t threads = 1,
                      BatchMathMode math = BatchMathMode::kScalar);

  [[nodiscard]] BucketFastPath path() const { return path_; }
  [[nodiscard]] BatchMathMode math() const { return math_; }
  [[nodiscard]] const FastPathStats& stats() const { return stats_; }

  /// One probe of the most recent choose_level scan (testing hook for the
  /// level-scan invariants).
  struct ProbeRecord {
    std::int32_t level = -1;
    Time estimate = 0;
    bool memo_hit = false;
  };
  [[nodiscard]] const std::vector<ProbeRecord>& last_scan() const {
    return last_scan_;
  }
  /// Lower bound used by the most recent scan (relative to its step).
  [[nodiscard]] Time last_lower_bound() const { return last_lb_; }

  /// Algorithm 2 line 4: lowest level i in [0, top] with
  /// F_A(B_i ∪ {t}) <= 2^i, or top when none fits. `levels(i)` names the
  /// bucket probed at level i. On the incremental path the scan starts at
  /// ceil(log2(LB)); kVerify re-runs the naive scan from 0 and checks the
  /// same level wins.
  [[nodiscard]] std::int32_t choose_level(const SystemView& view,
                                          const Transaction& t,
                                          std::int32_t top,
                                          const LevelFn& levels,
                                          const ExtraAssignments& extra);

  /// Records that `t` (the transaction most recently passed to
  /// choose_level, or any other unscheduled txn) joined bucket `id`; keeps
  /// the cached problem in sync by appending one row.
  void on_inserted(const SystemView& view, BucketId id, const Transaction& t,
                   const ExtraAssignments& extra);

  /// The activation problem for bucket `id` with the given members:
  /// refreshed cache on the incremental path, fresh build otherwise.
  /// The reference stays valid until the next core call.
  [[nodiscard]] const BatchProblem& activation_problem(
      const SystemView& view, BucketId id, std::span<const TxnId> members,
      const ExtraAssignments& extra);

  /// Best-of-`retries` schedule of `p` under `runner` (the suffix-wrapped
  /// algorithm when the scheduler enforces the suffix property). Each trial
  /// draws from an independent stream derived from the problem fingerprint
  /// and the trial index; deterministic runners run once.
  [[nodiscard]] BatchResult run_activation(const BatchProblem& p,
                                           const BatchScheduler& runner,
                                           std::int32_t retries);

  /// Bucket `id` drained (activation consumed its members): drop its cache.
  void on_drained(BucketId id);

  /// The world changed under the caches (assignments were made): cached
  /// availability must be refreshed before next use.
  void note_world_change() { ++world_; }

 private:
  static constexpr std::uint64_t kFpBasis = 1469598103934665603ULL;

  /// Cached per-bucket problem, maintained incrementally.
  struct CachedBucket {
    BatchProblem p;
    std::uint64_t txn_fp = kFpBasis;  ///< chained row hashes
    Time at_now = kNoTime;            ///< step of last availability refresh
    std::uint64_t at_world = 0;       ///< world version of last refresh
  };

  /// Candidate context, computed once per choose_level: the appended row,
  /// its availability points, its hash, and its lower bound.
  struct Candidate {
    TxnId id = kNoTxn;
    BatchTxn row;
    std::uint64_t row_hash = 0;
    std::vector<BatchObject> avail;  ///< sorted by object id, absolute times
    Time lb = 0;                     ///< single-txn LB relative to now
  };

  void make_candidate(const SystemView& view, const Transaction& t,
                      const ExtraAssignments& extra, Candidate& out);
  CachedBucket& cached(BucketId id);
  /// Refreshes `cb`'s availability (and fingerprint) for the current
  /// (step, world) if stale.
  void ensure_fresh(const SystemView& view, CachedBucket& cb,
                    const ExtraAssignments& extra);
  /// F_A(B ∪ {t}) via the cached problem: append candidate in place,
  /// estimate (memo first), roll back.
  Time probe_cached(const SystemView& view, CachedBucket& cb,
                    const Candidate& cand, const ExtraAssignments& extra);
  /// F_A(B ∪ {t}) via a fresh build (the naive path; also the verify
  /// cross-check, which bypasses the memo).
  Time probe_naive(const SystemView& view, std::span<const TxnId> members,
                   const Candidate& cand, const ExtraAssignments& extra,
                   bool use_memo);
  /// Memoized estimate of `p` under its fingerprint. Non-const `p`: on an
  /// SoA-mode memo miss the core attaches a freshly built probe_soa_ view
  /// for the duration of the A run (detached before returning).
  Time estimate(BatchProblem& p, std::uint64_t fp, bool use_memo);

  /// One level's speculative probe during a parallel wave: a materialized
  /// copy of the cached problem with the candidate appended (copies keep
  /// the caches untouched while workers estimate concurrently).
  struct ProbeSlot {
    BatchProblem p;
    BatchProblemSoA soa;  ///< slot-local SoA view (built by the worker)
    std::uint64_t fp = 0;
    std::int32_t level = -1;
    Time f = 0;
    bool memo_hit = false;
  };

  /// The incremental scan with `par` speculative probes per wave; returns
  /// the same level as the serial scan (estimates are pure, and the lowest
  /// fitting level wins in ascending order).
  std::int32_t choose_level_waves(const SystemView& view, std::int32_t start,
                                  std::int32_t top, const LevelFn& levels,
                                  const ExtraAssignments& extra, unsigned par);

  std::shared_ptr<const BatchScheduler> algo_;
  BucketFastPath path_;
  std::uint64_t seed_;
  std::int32_t threads_ = 1;
  BatchMathMode math_ = BatchMathMode::kScalar;
  std::uint64_t world_ = 1;

  ProblemBuilder builder_;
  BatchProblem scratch_;  ///< naive probe / activation build target
  BatchProblemSoA probe_soa_;  ///< SoA view for serial estimate() runs
  BatchProblem run_scratch_;   ///< run_activation copy carrying a shared SoA
  BatchProblemSoA run_soa_;    ///< ... built once, read by all retry trials
  Candidate cand_;
  std::unordered_map<BucketId, CachedBucket> cache_;
  std::unordered_map<std::uint64_t, Time> memo_;
  std::vector<ProbeRecord> last_scan_;
  Time last_lb_ = 0;
  bool last_memo_hit_ = false;
  std::vector<std::size_t> probe_inserted_;  ///< rollback scratch
  std::vector<AvailPoint> lb_pts_;           ///< lower-bound scratch
  std::vector<ProbeSlot> wave_;              ///< parallel-probe scratch
  std::vector<std::size_t> wave_miss_;       ///< memo misses of the wave
  FastPathStats stats_;
};

}  // namespace dtm
