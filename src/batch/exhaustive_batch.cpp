// Exhaustive search over chain orders — exact within the chain-schedule
// class, usable only for tiny batches (<= ~9 transactions). Calibration
// tool: every heuristic's makespan can be compared against the best
// possible visiting order, which brackets how much of the measured
// approximation gap is the heuristic's fault versus lower-bound looseness.
#include <algorithm>
#include <numeric>

#include "batch/batch_scheduler.hpp"
#include "batch/soa_problem.hpp"

namespace dtm {

namespace {

class ExhaustiveBatch final : public BatchScheduler {
 public:
  explicit ExhaustiveBatch(std::size_t limit) : limit_(limit) {}

  [[nodiscard]] BatchResult schedule(const BatchProblem& p,
                                     Rng& rng) const override {
    DTM_REQUIRE(p.txns.size() <= limit_,
                "exhaustive batch limited to " << limit_ << " txns, got "
                                               << p.txns.size());
    std::vector<std::size_t> order(p.txns.size());
    std::iota(order.begin(), order.end(), 0);
    if (order.empty()) return chain_evaluate(p, order);
    // One SoA build amortized over all n! evaluations; the scalar mode
    // evaluates through the reference path. kVerify cross-checks every
    // permutation inside chain_evaluate.
    static thread_local BatchProblemSoA soa_scratch;
    const bool use_soa = p.math != BatchMathMode::kScalar;
    if (use_soa && (p.soa.get() == nullptr || !p.soa.get()->matches(p)))
      soa_scratch.build(p);
    const BatchProblemSoA* soa =
        !use_soa ? nullptr
                 : (p.soa.get() != nullptr && p.soa.get()->matches(p)
                        ? p.soa.get()
                        : &soa_scratch);
    const auto eval = [&](const std::vector<std::size_t>& ord) {
      if (!use_soa) return chain_evaluate_scalar(p, ord, /*validate=*/false);
      BatchResult r = chain_evaluate_soa(p, *soa, ord);
      if (p.math == BatchMathMode::kVerify) {
        const BatchResult ref =
            chain_evaluate_scalar(p, ord, /*validate=*/false);
        DTM_CHECK(r.makespan == ref.makespan,
                  "exhaustive SoA eval diverged: " << r.makespan << " vs "
                                                   << ref.makespan);
      }
      return r;
    };
    std::vector<std::size_t> best_order = order;
    Time best = -1;
    do {
      const BatchResult r = eval(order);
      if (best < 0 || r.makespan < best) {
        best = r.makespan;
        best_order = order;
      }
    } while (std::next_permutation(order.begin(), order.end()));
    (void)rng;
    return chain_evaluate(p, best_order);
  }

  [[nodiscard]] std::string name() const override { return "exhaustive"; }

 private:
  std::size_t limit_;
};

}  // namespace

std::unique_ptr<BatchScheduler> make_exhaustive_batch(std::size_t limit) {
  DTM_REQUIRE(limit >= 1 && limit <= 10, "exhaustive limit " << limit);
  return std::make_unique<ExhaustiveBatch>(limit);
}

}  // namespace dtm
