#include "batch/suffix_wrapper.hpp"

#include <algorithm>
#include <map>

namespace dtm {

namespace {

/// Indices into p.txns ordered by assigned execution time (ties by id).
std::vector<std::size_t> exec_order(const BatchProblem& p,
                                    const BatchResult& r) {
  std::map<TxnId, Time> exec;
  for (const auto& a : r.assignments) exec[a.txn] = a.exec;
  std::vector<std::size_t> order(p.txns.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const Time ea = exec.at(p.txns[a].id);
                     const Time eb = exec.at(p.txns[b].id);
                     if (ea != eb) return ea < eb;
                     return p.txns[a].id < p.txns[b].id;
                   });
  return order;
}

}  // namespace

std::vector<BatchObject> SuffixWrapper::availability_after_prefix(
    const BatchProblem& p, const BatchResult& r, std::size_t prefix_len) {
  const auto order = exec_order(p, r);
  DTM_REQUIRE(prefix_len <= order.size(), "prefix " << prefix_len);
  std::map<ObjId, BatchObject> avail;
  for (const auto& o : p.objects) avail[o.id] = o;
  for (std::size_t i = 0; i < prefix_len; ++i) {
    const BatchTxn& t = p.txns[order[i]];
    const Time e = r.exec_of(t.id);
    for (const ObjId o : t.objects) avail[o] = {o, t.node, e, true};
  }
  std::vector<BatchObject> out;
  out.reserve(avail.size());
  for (const auto& [_, o] : avail) out.push_back(o);
  return out;
}

BatchResult SuffixWrapper::schedule(const BatchProblem& p, Rng& rng) const {
  BatchResult cur = inner_->schedule(p, rng);
  const std::size_t n = p.txns.size();
  if (n <= 1) return cur;
  std::int32_t budget = opts_.max_inner_calls > 0
                            ? opts_.max_inner_calls
                            : static_cast<std::int32_t>(4 * n + 8);

  bool changed = true;
  while (changed && budget > 0) {
    changed = false;
    const auto order = exec_order(p, cur);
    // Longest proper suffix first, as in the paper.
    for (std::size_t start = 1; start < n && budget > 0; ++start) {
      BatchProblem sub;
      sub.oracle = p.oracle;
      sub.latency_factor = p.latency_factor;
      sub.now = p.now;
      // Suffix re-runs stay on the caller's math path (content differs, so
      // any prebuilt SoA view of p does NOT carry over — sub.soa stays
      // unset and the inner algorithm builds its own).
      sub.math = p.math;
      sub.objects = availability_after_prefix(p, cur, start);
      for (std::size_t i = start; i < n; ++i)
        sub.txns.push_back(p.txns[order[i]]);
      --budget;
      const BatchResult redo = inner_->schedule(sub, rng);
      Time span = 0;
      for (std::size_t i = start; i < n; ++i)
        span = std::max(span, cur.exec_of(p.txns[order[i]].id) - p.now);
      if (redo.makespan < span) {
        // Adopt the tighter suffix schedule; prefix stays untouched.
        std::map<TxnId, Time> exec;
        for (const auto& a : cur.assignments) exec[a.txn] = a.exec;
        for (const auto& a : redo.assignments) exec[a.txn] = a.exec;
        cur.assignments.clear();
        cur.makespan = 0;
        for (const auto& t : p.txns) {
          cur.assignments.push_back({t.id, exec.at(t.id)});
          cur.makespan = std::max(cur.makespan, exec.at(t.id) - p.now);
        }
        check_batch_result(p, cur);
        changed = true;
        break;  // exec order changed: restart from the longest suffix
      }
    }
  }
  check_batch_result(p, cur);
  return cur;
}

}  // namespace dtm
