#include "batch/batch_problem.hpp"

#include <algorithm>
#include <map>

namespace dtm {

const BatchObject& BatchProblem::object(ObjId id) const {
  const auto it =
      std::find_if(objects.begin(), objects.end(),
                   [id](const BatchObject& o) { return o.id == id; });
  DTM_CHECK(it != objects.end(), "batch problem missing object " << id);
  return *it;
}

Time BatchResult::exec_of(TxnId id) const {
  const auto it =
      std::find_if(assignments.begin(), assignments.end(),
                   [id](const Assignment& a) { return a.txn == id; });
  DTM_CHECK(it != assignments.end(), "batch result missing txn " << id);
  return it->exec;
}

void check_batch_result(const BatchProblem& p, const BatchResult& r) {
  DTM_CHECK(r.assignments.size() == p.txns.size(),
            "batch result has " << r.assignments.size() << " assignments for "
                                << p.txns.size() << " txns");
  std::map<TxnId, Time> exec;
  for (const auto& a : r.assignments) {
    DTM_CHECK(a.exec >= p.now,
              "txn " << a.txn << " scheduled at " << a.exec << " < now "
                     << p.now);
    DTM_CHECK(exec.emplace(a.txn, a.exec).second,
              "duplicate assignment for txn " << a.txn);
  }
  Time max_exec = p.now;

  // Per-object chain feasibility from the availability point.
  struct Cursor {
    NodeId node;
    Time free_at;
    bool from_txn;
  };
  std::map<ObjId, Cursor> cur;
  for (const auto& o : p.objects)
    cur[o.id] = {o.node, o.ready, o.from_txn};

  struct User {
    Time exec;
    TxnId id;
    NodeId node;
  };
  std::map<ObjId, std::vector<User>> users;
  for (const auto& t : p.txns) {
    const auto it = exec.find(t.id);
    DTM_CHECK(it != exec.end(), "txn " << t.id << " not assigned");
    max_exec = std::max(max_exec, it->second);
    for (const ObjId o : t.objects)
      users[o].push_back({it->second, t.id, t.node});
  }
  for (auto& [obj, list] : users) {
    const auto cit = cur.find(obj);
    DTM_CHECK(cit != cur.end(), "object " << obj << " not in problem");
    std::sort(list.begin(), list.end(), [](const User& a, const User& b) {
      return a.exec < b.exec || (a.exec == b.exec && a.id < b.id);
    });
    Cursor c = cit->second;
    for (const auto& u : list) {
      Time needed = c.free_at + p.travel(c.node, u.node);
      if (c.from_txn) needed = std::max(needed, c.free_at + 1);
      DTM_CHECK(u.exec >= needed,
                "object " << obj << ": txn " << u.id << " at " << u.exec
                          << " unreachable before " << needed);
      c = {u.node, u.exec, true};
    }
  }
  DTM_CHECK(r.makespan == max_exec - p.now,
            "makespan " << r.makespan << " != " << max_exec - p.now);
}

}  // namespace dtm
