// Structure-of-arrays view of a BatchProblem (ARCHITECTURE.md §9): dense
// txn/object index maps, flat CSR adjacency both ways, and per-transaction
// conflict rows as 64-bit bitset words — the batch/query/score layout the
// word-parallel kernels in util/bitset.hpp operate on.
//
// The view is built once per problem and read by every evaluation against
// it: chain evaluation walks the txn→object CSR with dense cursor arrays,
// the coloring scheduler gathers constraints from conflict-row ∧
// colored-mask intersections, and local search prunes adjacent swaps with
// conflict_any. Build cost is O(content + n²/64 + Σ_o d_o · n/64); each
// consumer's inner loop drops its per-access map/lookup cost to O(1) array
// reads or an O(n/64) word sweep.
//
// Everything here is immutable after build() and holds no pointer into the
// source problem except the object/txn ids it copied, so one view can be
// shared read-only across the insertion core's parallel activation retries
// (conflict rows are built eagerly for exactly this reason — a lazy build
// would race). This flat layout is the declared seam for an optional CUDA
// backend: the arrays upload as-is, and the kernels in util/bitset.hpp have
// device-shaped signatures (word pointer + count).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "batch/batch_problem.hpp"
#include "util/bitset.hpp"

namespace dtm {

class BatchProblemSoA {
 public:
  /// (Re)builds the view from `p`. Reuses capacity across calls.
  void build(const BatchProblem& p);

  [[nodiscard]] std::size_t num_txns() const { return n_; }
  [[nodiscard]] std::size_t num_objects() const { return m_; }

  // ---- Object arrays (dense index = rank among sorted object ids) ----
  [[nodiscard]] std::span<const ObjId> obj_ids() const { return obj_id_; }
  [[nodiscard]] std::span<const NodeId> obj_node() const { return obj_node_; }
  [[nodiscard]] std::span<const Time> obj_ready() const { return obj_ready_; }
  /// 1 when the availability point is a transaction commit.
  [[nodiscard]] std::span<const std::uint8_t> obj_from_txn() const {
    return obj_from_;
  }
  /// Dense index of `id` (binary search); hard error when absent.
  [[nodiscard]] std::size_t obj_index(ObjId id) const;

  // ---- Transaction arrays ----
  [[nodiscard]] std::span<const TxnId> txn_ids() const { return txn_id_; }
  [[nodiscard]] std::span<const NodeId> txn_node() const { return txn_node_; }

  // ---- CSR txn → object (dense object indices, per-row order preserved
  // from BatchTxn::objects so evaluation visits accesses identically) ----
  [[nodiscard]] std::span<const std::size_t> txn_objects(std::size_t i) const {
    return {txn_obj_.data() + txn_off_[i], txn_off_[i + 1] - txn_off_[i]};
  }

  // ---- CSR object → txn (ascending txn indices) ----
  [[nodiscard]] std::span<const std::size_t> object_users(
      std::size_t j) const {
    return {obj_txn_.data() + obj_off_[j], obj_off_[j + 1] - obj_off_[j]};
  }

  // ---- Conflict rows: flat row-major bit matrix, row i bit j set iff
  // txns i ≠ j share at least one object ----
  [[nodiscard]] std::size_t row_words() const { return row_words_; }
  [[nodiscard]] const BitWord* conflict_row(std::size_t i) const {
    return conflict_.data() + i * row_words_;
  }
  [[nodiscard]] bool conflicts(std::size_t i, std::size_t j) const {
    return (conflict_row(i)[j / kBitWordBits] >>
            (j % kBitWordBits)) & 1u;
  }
  /// Number of conflict partners of txn i (popcount of its row).
  [[nodiscard]] std::size_t conflict_degree(std::size_t i) const {
    return popcount_words(conflict_row(i), row_words_);
  }

  /// Cheap sanity check that this view plausibly describes `p` (sizes +
  /// endpoint ids). The freshness contract itself is the owner's (SoaRef).
  [[nodiscard]] bool matches(const BatchProblem& p) const;

 private:
  std::size_t n_ = 0, m_ = 0;

  std::vector<ObjId> obj_id_;
  std::vector<NodeId> obj_node_;
  std::vector<Time> obj_ready_;
  std::vector<std::uint8_t> obj_from_;

  std::vector<TxnId> txn_id_;
  std::vector<NodeId> txn_node_;

  std::vector<std::size_t> txn_off_;  ///< n+1 offsets
  std::vector<std::size_t> txn_obj_;  ///< flat dense object indices
  std::vector<std::size_t> obj_off_;  ///< m+1 offsets
  std::vector<std::size_t> obj_txn_;  ///< flat txn indices, ascending per row

  std::size_t row_words_ = 0;
  std::vector<BitWord> conflict_;      ///< n rows × row_words_ words
  std::vector<BitWord> user_scratch_;  ///< per-object user mask (build only)
};

/// chain_evaluate over the SoA view: identical arithmetic to the scalar
/// path (same read-then-write access pattern per transaction), with dense
/// cursor arrays instead of the sorted cursor table. Exposed for consumers
/// that amortize one build over many orders (local search, exhaustive).
[[nodiscard]] BatchResult chain_evaluate_soa(
    const BatchProblem& p, const BatchProblemSoA& s,
    const std::vector<std::size_t>& order);

}  // namespace dtm
