#include "batch/bucket_insertion.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace dtm {

namespace {

// Stream salts: probes and activation trials must never share a stream
// even when they fingerprint the same problem.
constexpr std::uint64_t kProbeSalt = 0xB0CC37F257A11D01ULL;
constexpr std::uint64_t kTrialSalt = 0xAC71DA7E5EEDBEEFULL;

constexpr std::uint64_t kBasis = 1469598103934665603ULL;

/// Cap before the memo is dropped wholesale. Entries are never invalid
/// (the key fully determines the value), so eviction is purely a memory
/// bound and a full clear is the cheapest correct policy.
constexpr std::size_t kMemoCap = std::size_t{1} << 16;

std::uint64_t row_hash(const BatchTxn& t) {
  std::uint64_t h = hash_mix(0x517E0FULL);
  h = hash_combine(h, static_cast<std::uint64_t>(t.id));
  h = hash_combine(h, static_cast<std::uint64_t>(t.node));
  for (const ObjId o : t.objects)
    h = hash_combine(h, static_cast<std::uint64_t>(o));
  return h;
}

std::uint64_t avail_chain(std::uint64_t h, const BatchObject& o, Time now) {
  h = hash_combine(h, static_cast<std::uint64_t>(o.id));
  h = hash_combine(h, static_cast<std::uint64_t>(o.node));
  h = hash_combine(h, static_cast<std::uint64_t>(o.ready - now));
  h = hash_combine(h, o.from_txn ? 1u : 0u);
  return h;
}

std::uint64_t finish_fp(std::uint64_t txn_fp, std::uint64_t avail_fp,
                        std::int64_t latency_factor) {
  return hash_combine(hash_combine(txn_fp, avail_fp),
                      static_cast<std::uint64_t>(latency_factor));
}

}  // namespace

std::uint64_t problem_fingerprint(const BatchProblem& p) {
  std::uint64_t txn_fp = kBasis;
  for (const BatchTxn& t : p.txns) txn_fp = hash_combine(txn_fp, row_hash(t));
  std::uint64_t avail_fp = kBasis;
  for (const BatchObject& o : p.objects)
    avail_fp = avail_chain(avail_fp, o, p.now);
  return finish_fp(txn_fp, avail_fp, p.latency_factor);
}

Time estimate_fa_seeded(const BatchScheduler& a, const BatchProblem& p,
                        std::uint64_t seed) {
  Rng rng(seed);
  return estimate_fa(a, p, rng);
}

BucketInsertionCore::BucketInsertionCore(
    std::shared_ptr<const BatchScheduler> algo, BucketFastPath path,
    std::uint64_t seed, std::int32_t threads, BatchMathMode math)
    : algo_(std::move(algo)),
      path_(path),
      seed_(seed),
      threads_(threads),
      math_(math) {
  DTM_REQUIRE(algo_ != nullptr, "bucket insertion core needs a batch algo");
  DTM_REQUIRE(threads_ >= 0, "bucket insertion threads " << threads_);
  scratch_.math = math_;
  run_scratch_.math = math_;
}

void BucketInsertionCore::make_candidate(const SystemView& view,
                                         const Transaction& t,
                                         const ExtraAssignments& extra,
                                         Candidate& out) {
  out.id = t.id;
  out.row.id = t.id;
  out.row.node = t.node;
  out.row.objects = t.object_ids();
  std::sort(out.row.objects.begin(), out.row.objects.end());
  out.row.objects.erase(
      std::unique(out.row.objects.begin(), out.row.objects.end()),
      out.row.objects.end());
  out.row_hash = row_hash(out.row);

  out.avail.clear();
  lb_pts_.clear();
  const Time now = view.now();
  for (const ObjId o : out.row.objects) {
    const BatchObject bo = object_availability(view, o, extra);
    out.avail.push_back(bo);
    lb_pts_.push_back({bo.node, bo.ready - now, bo.from_txn});
  }
  out.lb = single_txn_lower_bound(t.node, lb_pts_, view.oracle(),
                                  view.latency_factor());
}

BucketInsertionCore::CachedBucket& BucketInsertionCore::cached(BucketId id) {
  CachedBucket& cb = cache_[id];
  cb.p.math = math_;  // freshly default-constructed entries start kScalar
  return cb;
}

void BucketInsertionCore::ensure_fresh(const SystemView& view,
                                       CachedBucket& cb,
                                       const ExtraAssignments& extra) {
  if (cb.at_now == view.now() && cb.at_world == world_) return;
  ++stats_.refreshes;
  cb.p.oracle = &view.oracle();
  cb.p.latency_factor = view.latency_factor();
  cb.p.now = view.now();
  // Membership (and thus the object id set) is unchanged; only the
  // availability snapshot behind it can have moved.
  for (BatchObject& o : cb.p.objects)
    o = object_availability(view, o.id, extra);
  cb.at_now = view.now();
  cb.at_world = world_;
}

Time BucketInsertionCore::estimate(BatchProblem& p, std::uint64_t fp,
                                   bool use_memo) {
  ++stats_.probes;
  last_memo_hit_ = false;
  if (use_memo) {
    const auto it = memo_.find(fp);
    if (it != memo_.end()) {
      ++stats_.memo_hits;
      last_memo_hit_ = true;
      return it->second;
    }
  }
  ++stats_.estimates;
  // On the SoA paths, amortize one view build across everything the A run
  // evaluates (the memo made estimate() the only place a probe problem is
  // actually scheduled, so this is the batched-estimator seam).
  const bool attach = math_ != BatchMathMode::kScalar && !p.txns.empty() &&
                      p.soa.get() == nullptr;
  if (attach) {
    probe_soa_.build(p);
    p.soa = &probe_soa_;
  }
  const Time f =
      estimate_fa_seeded(*algo_, p, derive_seed(seed_, kProbeSalt, fp));
  if (attach) p.soa = nullptr;  // p outlives probe_soa_'s next rebuild
  if (use_memo) {
    if (memo_.size() >= kMemoCap) memo_.clear();
    memo_.emplace(fp, f);
  }
  return f;
}

Time BucketInsertionCore::probe_naive(const SystemView& view,
                                      std::span<const TxnId> members,
                                      const Candidate& cand,
                                      const ExtraAssignments& extra,
                                      bool use_memo) {
  ++stats_.rebuilds;
  builder_.build(view, members, cand.id, extra, scratch_);
  return estimate(scratch_, problem_fingerprint(scratch_), use_memo);
}

Time BucketInsertionCore::probe_cached(const SystemView& view,
                                       CachedBucket& cb,
                                       const Candidate& cand,
                                       const ExtraAssignments& extra) {
  ensure_fresh(view, cb, extra);

  // Append the candidate in place: one transaction row plus its
  // not-yet-present objects, merged at their sorted positions. Rolled back
  // after the estimate; a successful insertion replays this permanently in
  // on_inserted.
  cb.p.txns.push_back(cand.row);
  probe_inserted_.clear();
  for (const BatchObject& bo : cand.avail) {
    const auto it = std::lower_bound(
        cb.p.objects.begin(), cb.p.objects.end(), bo.id,
        [](const BatchObject& a, ObjId b) { return a.id < b; });
    if (it != cb.p.objects.end() && it->id == bo.id) continue;
    probe_inserted_.push_back(
        static_cast<std::size_t>(it - cb.p.objects.begin()));
    cb.p.objects.insert(it, bo);
  }

  std::uint64_t avail_fp = kBasis;
  for (const BatchObject& o : cb.p.objects)
    avail_fp = avail_chain(avail_fp, o, cb.p.now);
  const std::uint64_t fp = finish_fp(hash_combine(cb.txn_fp, cand.row_hash),
                                     avail_fp, cb.p.latency_factor);
  const Time f = estimate(cb.p, fp, /*use_memo=*/true);

  // Rollback, highest position first (recorded positions are strictly
  // increasing, so later erases cannot shift earlier ones).
  for (std::size_t k = probe_inserted_.size(); k-- > 0;)
    cb.p.objects.erase(cb.p.objects.begin() +
                       static_cast<std::ptrdiff_t>(probe_inserted_[k]));
  cb.p.txns.pop_back();
  return f;
}

std::int32_t BucketInsertionCore::choose_level(const SystemView& view,
                                               const Transaction& t,
                                               std::int32_t top,
                                               const LevelFn& levels,
                                               const ExtraAssignments& extra) {
  ++stats_.inserts;
  last_scan_.clear();
  make_candidate(view, t, extra, cand_);
  last_lb_ = cand_.lb;

  const bool fast = path_ != BucketFastPath::kNaive;
  std::int32_t start = 0;
  if (fast) {
    // Every feasible schedule of B_i ∪ {t} executes t no earlier than LB,
    // and estimate_fa majorizes the availability horizon, so all levels
    // with 2^i < LB fail the F_A test — skipping them is exact, not a
    // heuristic (kVerify re-checks below; bucket_fastpath_test asserts it
    // on randomized workloads).
    start = std::min(cand_.lb <= 1 ? 0 : ceil_log2_i64(cand_.lb), top);
    stats_.levels_skipped += start;
  }

  std::int32_t chosen = top;  // over-horizon tail parks in the top bucket
  const unsigned par = resolve_threads(threads_);
  if (path_ == BucketFastPath::kIncremental && par > 1 && start < top) {
    chosen = choose_level_waves(view, start, top, levels, extra, par);
  } else {
    for (std::int32_t i = start; i <= top; ++i) {
      const LevelView lv = levels(i);
      Time f;
      if (fast) {
        CachedBucket& cb = cached(lv.id);
        DTM_CHECK(cb.p.txns.size() == lv.members.size(),
                  "bucket cache out of sync at level "
                      << i << ": " << cb.p.txns.size() << " cached vs "
                      << lv.members.size() << " members");
        f = probe_cached(view, cb, cand_, extra);
      } else {
        f = probe_naive(view, lv.members, cand_, extra, /*use_memo=*/false);
      }
      last_scan_.push_back({i, f, last_memo_hit_});
      if (f <= (Time{1} << i)) {
        chosen = i;
        break;
      }
    }
  }

  if (path_ == BucketFastPath::kVerify) {
    // Cross-check against the paper-verbatim scan from level 0 (memo
    // bypassed so the estimates are recomputed from scratch).
    ++stats_.verify_checks;
    std::int32_t naive = top;
    for (std::int32_t i = 0; i <= top; ++i) {
      const Time f = probe_naive(view, levels(i).members, cand_, extra,
                                 /*use_memo=*/false);
      if (f <= (Time{1} << i)) {
        naive = i;
        break;
      }
    }
    DTM_CHECK(naive == chosen,
              "bucket fast path diverged: naive scan chose level "
                  << naive << ", incremental chose " << chosen << " for txn "
                  << t.id << " (lb=" << cand_.lb << ")");
  }
  return chosen;
}

std::int32_t BucketInsertionCore::choose_level_waves(
    const SystemView& view, std::int32_t start, std::int32_t top,
    const LevelFn& levels, const ExtraAssignments& extra, unsigned par) {
  for (std::int32_t lo = start; lo <= top;
       lo += static_cast<std::int32_t>(par)) {
    const std::int32_t hi =
        std::min<std::int32_t>(lo + static_cast<std::int32_t>(par) - 1, top);
    const std::size_t n = static_cast<std::size_t>(hi - lo + 1);
    if (wave_.size() < n) wave_.resize(n);

    // Phase 1 (serial): materialize each level's probe problem — a copy of
    // the cached bucket with the candidate appended, so caches stay
    // untouched and workers never share a problem — and resolve memo hits.
    // The fingerprint is chained exactly as probe_cached chains it, so the
    // memo keys (and the derived estimate seeds) are path-invariant.
    wave_miss_.clear();
    for (std::size_t j = 0; j < n; ++j) {
      const std::int32_t i = lo + static_cast<std::int32_t>(j);
      const LevelView lv = levels(i);
      CachedBucket& cb = cached(lv.id);
      DTM_CHECK(cb.p.txns.size() == lv.members.size(),
                "bucket cache out of sync at level "
                    << i << ": " << cb.p.txns.size() << " cached vs "
                    << lv.members.size() << " members");
      ensure_fresh(view, cb, extra);
      ProbeSlot& s = wave_[j];
      s.level = i;
      s.p.oracle = cb.p.oracle;
      s.p.latency_factor = cb.p.latency_factor;
      s.p.now = cb.p.now;
      s.p.math = cb.p.math;
      s.p.soa = nullptr;  // slot problems persist across waves; drop any
                          // view of the slot's previous contents
      s.p.txns = cb.p.txns;
      s.p.txns.push_back(cand_.row);
      s.p.objects = cb.p.objects;
      for (const BatchObject& bo : cand_.avail) {
        const auto it = std::lower_bound(
            s.p.objects.begin(), s.p.objects.end(), bo.id,
            [](const BatchObject& a, ObjId b) { return a.id < b; });
        if (it != s.p.objects.end() && it->id == bo.id) continue;
        s.p.objects.insert(it, bo);
      }
      std::uint64_t avail_fp = kBasis;
      for (const BatchObject& o : s.p.objects)
        avail_fp = avail_chain(avail_fp, o, s.p.now);
      s.fp = finish_fp(hash_combine(cb.txn_fp, cand_.row_hash), avail_fp,
                       s.p.latency_factor);
      ++stats_.probes;
      const auto mit = memo_.find(s.fp);
      s.memo_hit = mit != memo_.end();
      if (s.memo_hit) {
        ++stats_.memo_hits;
        s.f = mit->second;
      } else {
        wave_miss_.push_back(j);
      }
    }

    // Phase 2 (parallel): the misses run A concurrently. Estimates are
    // pure functions of (problem, derived seed), so speculative evaluation
    // of levels the serial scan would have skipped cannot change anything
    // but the stats.
    stats_.estimates += static_cast<std::int64_t>(wave_miss_.size());
    ThreadPool::shared().run(
        static_cast<std::int64_t>(wave_miss_.size()),
        [&](std::int64_t k) {
          ProbeSlot& s = wave_[wave_miss_[static_cast<std::size_t>(k)]];
          if (math_ != BatchMathMode::kScalar && !s.p.txns.empty()) {
            // Slot-local view: one build amortized over the whole A run,
            // touched by exactly this worker (no sharing, no races).
            s.soa.build(s.p);
            s.p.soa = &s.soa;
          }
          s.f = estimate_fa_seeded(*algo_, s.p,
                                   derive_seed(seed_, kProbeSalt, s.fp));
          s.p.soa = nullptr;
        },
        par, 1);

    // Phase 3 (serial, ascending): memoize the fresh estimates and stop at
    // the lowest fitting level — the same first-fit the serial scan takes.
    for (std::size_t j = 0; j < n; ++j) {
      const ProbeSlot& s = wave_[j];
      if (!s.memo_hit) {
        if (memo_.size() >= kMemoCap) memo_.clear();
        memo_.emplace(s.fp, s.f);
      }
      last_scan_.push_back({s.level, s.f, s.memo_hit});
      if (s.f <= (Time{1} << s.level)) return s.level;
    }
  }
  return top;
}

void BucketInsertionCore::on_inserted(const SystemView& view, BucketId id,
                                      const Transaction& t,
                                      const ExtraAssignments& extra) {
  if (path_ == BucketFastPath::kNaive) return;
  if (cand_.id != t.id) make_candidate(view, t, extra, cand_);
  CachedBucket& cb = cached(id);
  cb.p.oracle = &view.oracle();
  cb.p.latency_factor = view.latency_factor();
  ensure_fresh(view, cb, extra);
  ++stats_.appends;
  cb.p.txns.push_back(cand_.row);
  cb.txn_fp = hash_combine(cb.txn_fp, cand_.row_hash);
  for (const BatchObject& bo : cand_.avail) {
    const auto it = std::lower_bound(
        cb.p.objects.begin(), cb.p.objects.end(), bo.id,
        [](const BatchObject& a, ObjId b) { return a.id < b; });
    if (it != cb.p.objects.end() && it->id == bo.id) continue;
    cb.p.objects.insert(it, bo);
  }
}

const BatchProblem& BucketInsertionCore::activation_problem(
    const SystemView& view, BucketId id, std::span<const TxnId> members,
    const ExtraAssignments& extra) {
  ++stats_.activations;
  if (path_ == BucketFastPath::kNaive) {
    ++stats_.rebuilds;
    builder_.build(view, members, kNoTxn, extra, scratch_);
    return scratch_;
  }
  CachedBucket& cb = cached(id);
  DTM_CHECK(cb.p.txns.size() == members.size(),
            "activation cache out of sync: " << cb.p.txns.size()
                                             << " cached vs "
                                             << members.size() << " members");
  cb.p.oracle = &view.oracle();
  cb.p.latency_factor = view.latency_factor();
  ensure_fresh(view, cb, extra);
  if (path_ == BucketFastPath::kVerify) {
    ++stats_.verify_checks;
    builder_.build(view, members, kNoTxn, extra, scratch_);
    DTM_CHECK(problem_fingerprint(scratch_) == problem_fingerprint(cb.p),
              "activation problem diverged from fresh build for bucket "
                  << id);
    return scratch_;  // hand the naive build out: byte-equal by the check
  }
  return cb.p;
}

BatchResult BucketInsertionCore::run_activation(const BatchProblem& p,
                                                const BatchScheduler& runner,
                                                std::int32_t retries) {
  const std::uint64_t fp = problem_fingerprint(p);
  // SoA modes: copy the problem once and attach ONE shared view that every
  // retry trial reads (trials never mutate the problem, and the view is
  // built eagerly, so concurrent retries stay race-free). This is the
  // batched F_A estimator: |retries| full schedules off a single build.
  const BatchProblem* run = &p;
  if (math_ != BatchMathMode::kScalar && p.soa.get() == nullptr &&
      !p.txns.empty()) {
    run_scratch_ = p;
    run_soa_.build(run_scratch_);
    run_scratch_.soa = &run_soa_;
    run = &run_scratch_;
  }
  if (runner.randomized() && retries > 1 && resolve_threads(threads_) > 1) {
    // Trial r's schedule depends only on (seed_, fp, r) — batch schedulers
    // are const with thread-local scratch — so all retries evaluate
    // concurrently. Keeping the FIRST index achieving the minimum makespan
    // reproduces the serial strict-< scan's winner exactly.
    std::vector<BatchResult> trials = parallel_map<BatchResult>(
        retries,
        [&](std::int64_t r) {
          Rng trial(derive_seed(seed_, kTrialSalt, fp,
                                static_cast<std::uint64_t>(r)));
          return runner.schedule(*run, trial);
        },
        resolve_threads(threads_));
    std::size_t best = 0;
    for (std::size_t r = 1; r < trials.size(); ++r)
      if (trials[r].makespan < trials[best].makespan) best = r;
    return std::move(trials[best]);
  }
  Rng rng(derive_seed(seed_, kTrialSalt, fp, 0));
  BatchResult best = runner.schedule(*run, rng);
  if (runner.randomized()) {
    for (std::int32_t r = 1; r < retries; ++r) {
      Rng trial(derive_seed(seed_, kTrialSalt, fp,
                            static_cast<std::uint64_t>(r)));
      BatchResult alt = runner.schedule(*run, trial);
      if (alt.makespan < best.makespan) best = std::move(alt);
    }
  }
  return best;
}

void BucketInsertionCore::on_drained(BucketId id) { cache_.erase(id); }

}  // namespace dtm
