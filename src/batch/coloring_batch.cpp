// Generic offline batch scheduler: Lemma 1 greedy coloring applied to the
// batch conflict graph. This is the "direct approach" of §III used offline;
// near-optimal on low-diameter graphs (clique: O(k) of optimal, matching
// Theorem 3's argument).
#include <algorithm>
#include <numeric>

#include "batch/batch_scheduler.hpp"
#include "core/coloring.hpp"

namespace dtm {

namespace {

class ColoringBatch final : public BatchScheduler {
 public:
  [[nodiscard]] BatchResult schedule(const BatchProblem& p,
                                     Rng&) const override {
    const std::size_t n = p.txns.size();
    // Scratch arena: this scheduler is the workhorse behind every bucket
    // F_A probe on generic topologies, so the per-call map/set churn of the
    // original transcription dominated insertion cost. All buffers persist
    // across calls; output is unchanged.
    Scratch& s = scratch();

    // Availability floor per transaction: the object must be able to reach
    // it from its availability point. One-sided (the object simply does not
    // exist for us before `ready`), hence a floor rather than a gap.
    s.floor.assign(n, 0);
    s.users.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const BatchTxn& t = p.txns[i];
      for (const ObjId o : t.objects) {
        const BatchObject& avail = p.object(o);
        Time arrive = (avail.ready - p.now) + p.travel(avail.node, t.node);
        if (avail.from_txn) arrive = std::max(arrive, avail.ready - p.now + 1);
        s.floor[i] = std::max(s.floor[i], std::max<Time>(arrive, 0));
        s.users.emplace_back(o, i);
      }
    }
    // Flat user lists: sorting (object, index) pairs groups each object's
    // users contiguously in ascending index order — the same enumeration
    // order the former per-object vectors had.
    std::sort(s.users.begin(), s.users.end());

    // Color in ascending-floor order so cheap transactions commit early
    // (the property the online greedy schedule also has).
    s.order.resize(n);
    std::iota(s.order.begin(), s.order.end(), 0);
    std::stable_sort(s.order.begin(), s.order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (s.floor[a] != s.floor[b])
                         return s.floor[a] < s.floor[b];
                       return p.txns[a].id < p.txns[b].id;
                     });

    s.color.assign(n, kNoTime);
    s.seen_tick.assign(n, 0);
    std::size_t tick = 0;
    BatchResult r;
    r.assignments.resize(n);
    for (const std::size_t i : s.order) {
      s.cs.clear();
      ++tick;
      for (const ObjId o : p.txns[i].objects) {
        auto it = std::lower_bound(
            s.users.begin(), s.users.end(), std::pair<ObjId, std::size_t>{o, 0});
        for (; it != s.users.end() && it->first == o; ++it) {
          const std::size_t j = it->second;
          if (j == i || s.color[j] == kNoTime || s.seen_tick[j] == tick)
            continue;
          s.seen_tick[j] = tick;
          s.cs.push_back(
              {s.color[j],
               std::max<Weight>(1, p.travel(p.txns[j].node, p.txns[i].node))});
        }
      }
      s.color[i] = min_feasible_color(s.cs, s.floor[i]);
      r.assignments[i] = {p.txns[i].id, p.now + s.color[i]};
      r.makespan = std::max(r.makespan, s.color[i]);
    }
    check_batch_result(p, r);
    return r;
  }

  [[nodiscard]] std::string name() const override { return "coloring"; }

 private:
  struct Scratch {
    std::vector<Time> floor;
    std::vector<std::pair<ObjId, std::size_t>> users;
    std::vector<std::size_t> order;
    std::vector<Time> color;
    std::vector<ColorConstraint> cs;
    std::vector<std::size_t> seen_tick;  ///< dedup marker, epoch = tick
  };
  static Scratch& scratch() {
    static thread_local Scratch s;
    return s;
  }
};

}  // namespace

std::unique_ptr<BatchScheduler> make_coloring_batch() {
  return std::make_unique<ColoringBatch>();
}

}  // namespace dtm
