// Generic offline batch scheduler: Lemma 1 greedy coloring applied to the
// batch conflict graph. This is the "direct approach" of §III used offline;
// near-optimal on low-diameter graphs (clique: O(k) of optimal, matching
// Theorem 3's argument).
#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "batch/batch_scheduler.hpp"
#include "core/coloring.hpp"

namespace dtm {

namespace {

class ColoringBatch final : public BatchScheduler {
 public:
  [[nodiscard]] BatchResult schedule(const BatchProblem& p,
                                     Rng&) const override {
    const std::size_t n = p.txns.size();

    // Availability floor per transaction: the object must be able to reach
    // it from its availability point. One-sided (the object simply does not
    // exist for us before `ready`), hence a floor rather than a gap.
    std::vector<Time> floor(n, 0);
    std::map<ObjId, std::vector<std::size_t>> users;
    for (std::size_t i = 0; i < n; ++i) {
      const BatchTxn& t = p.txns[i];
      for (const ObjId o : t.objects) {
        const BatchObject& avail = p.object(o);
        Time arrive = (avail.ready - p.now) + p.travel(avail.node, t.node);
        if (avail.from_txn) arrive = std::max(arrive, avail.ready - p.now + 1);
        floor[i] = std::max(floor[i], std::max<Time>(arrive, 0));
        users[o].push_back(i);
      }
    }

    // Color in ascending-floor order so cheap transactions commit early
    // (the property the online greedy schedule also has).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (floor[a] != floor[b]) return floor[a] < floor[b];
                       return p.txns[a].id < p.txns[b].id;
                     });

    std::vector<Time> color(n, kNoTime);
    BatchResult r;
    r.assignments.resize(n);
    for (const std::size_t i : order) {
      std::vector<ColorConstraint> cs;
      std::set<std::size_t> seen;
      for (const ObjId o : p.txns[i].objects) {
        for (const std::size_t j : users[o]) {
          if (j == i || color[j] == kNoTime || !seen.insert(j).second)
            continue;
          cs.push_back(
              {color[j],
               std::max<Weight>(1, p.travel(p.txns[j].node, p.txns[i].node))});
        }
      }
      color[i] = min_feasible_color(cs, floor[i]);
      r.assignments[i] = {p.txns[i].id, p.now + color[i]};
      r.makespan = std::max(r.makespan, color[i]);
    }
    check_batch_result(p, r);
    return r;
  }

  [[nodiscard]] std::string name() const override { return "coloring"; }
};

}  // namespace

std::unique_ptr<BatchScheduler> make_coloring_batch() {
  return std::make_unique<ColoringBatch>();
}

}  // namespace dtm
