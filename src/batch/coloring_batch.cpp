// Generic offline batch scheduler: Lemma 1 greedy coloring applied to the
// batch conflict graph. This is the "direct approach" of §III used offline;
// near-optimal on low-diameter graphs (clique: O(k) of optimal, matching
// Theorem 3's argument).
//
// Two math paths behind BatchProblem::math (byte-identical output):
//   scalar  the original flat sorted (object, txn) user table with
//           seen-tick dedup — the pinned reference.
//   soa     floors from the SoA txn→object CSR (O(1) availability reads
//           instead of the linear BatchProblem::object scan), constraints
//           gathered from conflict-row ∧ colored-mask word intersections
//           (dedup is inherent — one bit per conflicting partner), and a
//           first_free_color popcount-mask fast path when every gathered
//           gap is 1 (the all-unit-travel case, e.g. cliques at latency 1).
#include <algorithm>
#include <numeric>

#include "batch/batch_scheduler.hpp"
#include "batch/soa_problem.hpp"
#include "core/coloring.hpp"

namespace dtm {

namespace {

class ColoringBatch final : public BatchScheduler {
 public:
  [[nodiscard]] BatchResult schedule(const BatchProblem& p,
                                     Rng&) const override {
    if (p.math == BatchMathMode::kScalar) return schedule_scalar(p);
    static thread_local BatchProblemSoA soa_scratch;
    const BatchProblemSoA* s = p.soa.get();
    if (s == nullptr || !s->matches(p)) {
      soa_scratch.build(p);
      s = &soa_scratch;
    }
    BatchResult r = schedule_soa(p, *s);
    if (p.math == BatchMathMode::kVerify) {
      const BatchResult ref = schedule_scalar(p);
      DTM_CHECK(r.makespan == ref.makespan &&
                    r.assignments.size() == ref.assignments.size(),
                "coloring SoA makespan " << r.makespan << " vs scalar "
                                         << ref.makespan);
      for (std::size_t i = 0; i < r.assignments.size(); ++i)
        DTM_CHECK(r.assignments[i].txn == ref.assignments[i].txn &&
                      r.assignments[i].exec == ref.assignments[i].exec,
                  "coloring SoA assignment " << i << " diverged");
    }
    check_batch_result(p, r);
    return r;
  }

  [[nodiscard]] std::string name() const override { return "coloring"; }

 private:
  struct Scratch {
    std::vector<Time> floor;
    std::vector<std::pair<ObjId, std::size_t>> users;
    std::vector<std::size_t> order;
    std::vector<Time> color;
    std::vector<ColorConstraint> cs;
    std::vector<std::size_t> seen_tick;  ///< dedup marker, epoch = tick
    DynamicBitset colored;               ///< SoA path: txns already colored
    DynamicBitset forbidden;             ///< SoA path: unit-gap color mask
  };
  static Scratch& scratch() {
    static thread_local Scratch s;
    return s;
  }

  /// Ascending-floor visiting order (cheap transactions commit early — the
  /// property the online greedy schedule also has), ties by txn id.
  template <typename IdOf>
  static void floor_order(Scratch& s, std::size_t n, IdOf id_of) {
    s.order.resize(n);
    std::iota(s.order.begin(), s.order.end(), 0);
    std::stable_sort(s.order.begin(), s.order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (s.floor[a] != s.floor[b])
                         return s.floor[a] < s.floor[b];
                       return id_of(a) < id_of(b);
                     });
  }

  [[nodiscard]] BatchResult schedule_scalar(const BatchProblem& p) const {
    const std::size_t n = p.txns.size();
    // Scratch arena: this scheduler is the workhorse behind every bucket
    // F_A probe on generic topologies, so the per-call map/set churn of the
    // original transcription dominated insertion cost. All buffers persist
    // across calls; output is unchanged.
    Scratch& s = scratch();

    // Availability floor per transaction: the object must be able to reach
    // it from its availability point. One-sided (the object simply does not
    // exist for us before `ready`), hence a floor rather than a gap.
    s.floor.assign(n, 0);
    s.users.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const BatchTxn& t = p.txns[i];
      for (const ObjId o : t.objects) {
        const BatchObject& avail = p.object(o);
        Time arrive = (avail.ready - p.now) + p.travel(avail.node, t.node);
        if (avail.from_txn) arrive = std::max(arrive, avail.ready - p.now + 1);
        s.floor[i] = std::max(s.floor[i], std::max<Time>(arrive, 0));
        s.users.emplace_back(o, i);
      }
    }
    // Flat user lists: sorting (object, index) pairs groups each object's
    // users contiguously in ascending index order — the same enumeration
    // order the former per-object vectors had.
    std::sort(s.users.begin(), s.users.end());

    floor_order(s, n, [&](std::size_t i) { return p.txns[i].id; });

    s.color.assign(n, kNoTime);
    s.seen_tick.assign(n, 0);
    std::size_t tick = 0;
    BatchResult r;
    r.assignments.resize(n);
    for (const std::size_t i : s.order) {
      s.cs.clear();
      ++tick;
      for (const ObjId o : p.txns[i].objects) {
        auto it = std::lower_bound(
            s.users.begin(), s.users.end(), std::pair<ObjId, std::size_t>{o, 0});
        for (; it != s.users.end() && it->first == o; ++it) {
          const std::size_t j = it->second;
          if (j == i || s.color[j] == kNoTime || s.seen_tick[j] == tick)
            continue;
          s.seen_tick[j] = tick;
          s.cs.push_back(
              {s.color[j],
               std::max<Weight>(1, p.travel(p.txns[j].node, p.txns[i].node))});
        }
      }
      s.color[i] = min_feasible_color(s.cs, s.floor[i]);
      r.assignments[i] = {p.txns[i].id, p.now + s.color[i]};
      r.makespan = std::max(r.makespan, s.color[i]);
    }
    check_batch_result(p, r);
    return r;
  }

  [[nodiscard]] BatchResult schedule_soa(const BatchProblem& p,
                                         const BatchProblemSoA& soa) const {
    const std::size_t n = soa.num_txns();
    Scratch& s = scratch();
    const auto node = soa.txn_node();
    const auto ids = soa.txn_ids();
    const auto onode = soa.obj_node();
    const auto oready = soa.obj_ready();
    const auto ofrom = soa.obj_from_txn();

    // Floors through the CSR: dense index reads replace the linear
    // BatchProblem::object scans of the reference path.
    s.floor.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::size_t j : soa.txn_objects(i)) {
        Time arrive = (oready[j] - p.now) + p.travel(onode[j], node[i]);
        if (ofrom[j]) arrive = std::max(arrive, oready[j] - p.now + 1);
        s.floor[i] = std::max(s.floor[i], std::max<Time>(arrive, 0));
      }
    }

    floor_order(s, n, [&](std::size_t i) { return ids[i]; });

    s.color.assign(n, kNoTime);
    s.colored.assign(n, false);
    BatchResult r;
    r.assignments.resize(n);
    for (const std::size_t i : s.order) {
      s.cs.clear();
      bool unit_gaps = true;
      // Conflict partners already colored = row_i ∧ colored — the same set
      // the scalar path reaches through per-object user lists plus dedup,
      // because row_i has exactly one bit per partner no matter how many
      // objects are shared. Emission is ascending j; min_feasible_color is
      // order-insensitive (it sorts), so the color is identical.
      for_each_set_and(
          soa.conflict_row(i), s.colored.words(), soa.row_words(),
          [&](std::size_t j) {
            const Weight gap =
                std::max<Weight>(1, p.travel(node[j], node[i]));
            unit_gaps = unit_gaps && gap == 1;
            s.cs.push_back({s.color[j], gap});
          });
      if (unit_gaps && !s.cs.empty()) {
        // Every constraint forbids exactly one color: mark offsets from the
        // floor in a k+1-bit mask and take the first free slot (pigeonhole
        // guarantees one in range). Equals min_feasible_color with all
        // gaps 1.
        s.forbidden.assign(s.cs.size() + 1, false);
        for (const ColorConstraint& c : s.cs) {
          const Time off = c.color - s.floor[i];
          if (off >= 0 && off < static_cast<Time>(s.forbidden.size()))
            s.forbidden.set(static_cast<std::size_t>(off));
        }
        s.color[i] =
            s.floor[i] + static_cast<Time>(first_free_color(s.forbidden));
      } else {
        s.color[i] = min_feasible_color(s.cs, s.floor[i]);
      }
      s.colored.set(i);
      r.assignments[i] = {ids[i], p.now + s.color[i]};
      r.makespan = std::max(r.makespan, s.color[i]);
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<BatchScheduler> make_coloring_batch() {
  return std::make_unique<ColoringBatch>();
}

}  // namespace dtm
