// Local-search batch scheduler: starts from the generic coloring schedule's
// execution order and improves it with first-improvement pairwise swaps on
// the chain order. Topology-agnostic; slower but tighter than the
// per-topology heuristics on small batch problems, and a calibration point
// for how loose the certified lower bounds are (see bench_baselines).
//
// On the SoA math path the inner loop gets two kernel assists, neither of
// which changes a single decision:
//   - candidate orders evaluate through chain_evaluate_soa against ONE
//     BatchProblemSoA built up front (the scalar path rebuilds its cursor
//     table per evaluation either way, but the SoA arrays beat the sorted
//     lookups);
//   - an adjacent swap of object-disjoint transactions is skipped via a
//     single bit test on the conflict rows: disjointness means no object's
//     visiting order changes, so the swapped order evaluates to the exact
//     same schedule — the scalar path would compute it and revert. kVerify
//     still evaluates and asserts the makespan is indeed unchanged.
#include <algorithm>
#include <numeric>

#include "batch/batch_scheduler.hpp"
#include "batch/soa_problem.hpp"

namespace dtm {

namespace {

class LocalSearchBatch final : public BatchScheduler {
 public:
  explicit LocalSearchBatch(std::int32_t max_rounds)
      : max_rounds_(max_rounds) {}

  [[nodiscard]] BatchResult schedule(const BatchProblem& p,
                                     Rng& rng) const override {
    const std::size_t n = p.txns.size();
    if (n == 0) return chain_evaluate(p, {});

    const bool use_soa = p.math != BatchMathMode::kScalar;
    static thread_local BatchProblemSoA soa_scratch;
    const BatchProblemSoA* soa = nullptr;
    if (use_soa) {
      soa = p.soa.get();
      if (soa == nullptr || !soa->matches(p)) {
        soa_scratch.build(p);
        soa = &soa_scratch;
      }
    }
    // One evaluation seam for the whole search: scalar reference, SoA, or
    // SoA + per-call cross-check (kVerify).
    const auto eval = [&](const std::vector<std::size_t>& order,
                          bool validate) {
      if (!use_soa) return chain_evaluate_scalar(p, order, validate);
      BatchResult r = chain_evaluate_soa(p, *soa, order);
      if (p.math == BatchMathMode::kVerify) {
        const BatchResult ref =
            chain_evaluate_scalar(p, order, /*validate=*/false);
        DTM_CHECK(r.makespan == ref.makespan,
                  "local-search SoA eval diverged: " << r.makespan << " vs "
                                                     << ref.makespan);
      }
      if (validate) check_batch_result(p, r);
      return r;
    };

    // Seed order: the coloring schedule's execution order — already good
    // on low-diameter graphs.
    const auto seed_algo = make_coloring_batch();
    const BatchResult seed = seed_algo->schedule(p, rng);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const Time ea = seed.exec_of(p.txns[a].id);
                       const Time eb = seed.exec_of(p.txns[b].id);
                       if (ea != eb) return ea < eb;
                       return p.txns[a].id < p.txns[b].id;
                     });

    BatchResult best = eval(order, /*validate=*/true);
    // First-improvement adjacent-and-random swaps. Adjacent swaps fix
    // local inversions cheaply; random swaps escape plateaus.
    // Invariant used by the prune: the current order always evaluates to
    // best.makespan (improving swaps are kept, others reverted).
    for (std::int32_t round = 0; round < max_rounds_; ++round) {
      bool improved = false;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        if (use_soa && !soa->conflicts(order[i], order[i + 1])) {
          // Object-disjoint neighbors: swapping them is a no-op schedule-
          // wise, so the scalar path's evaluate-and-revert is skippable.
          if (p.math == BatchMathMode::kVerify) {
            std::swap(order[i], order[i + 1]);
            const BatchResult cand = eval(order, /*validate=*/false);
            DTM_CHECK(cand.makespan == best.makespan,
                      "disjoint adjacent swap changed makespan "
                          << best.makespan << " -> " << cand.makespan);
            std::swap(order[i], order[i + 1]);
          }
          continue;
        }
        std::swap(order[i], order[i + 1]);
        // Inner-loop evaluations skip validation; the winning order is
        // checked once below.
        const BatchResult cand = eval(order, /*validate=*/false);
        if (cand.makespan < best.makespan) {
          best = cand;
          improved = true;
        } else {
          std::swap(order[i], order[i + 1]);  // revert
        }
      }
      for (std::size_t s = 0; s < n; ++s) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (i == j) continue;
        std::swap(order[i], order[j]);
        const BatchResult cand = eval(order, /*validate=*/false);
        if (cand.makespan < best.makespan) {
          best = cand;
          improved = true;
        } else {
          std::swap(order[i], order[j]);
        }
      }
      if (!improved) break;
    }
    check_batch_result(p, best);
    return best;
  }

  [[nodiscard]] std::string name() const override { return "local-search"; }
  [[nodiscard]] bool randomized() const override { return true; }

 private:
  std::int32_t max_rounds_;
};

}  // namespace

std::unique_ptr<BatchScheduler> make_local_search_batch(
    std::int32_t max_rounds) {
  DTM_REQUIRE(max_rounds >= 1, "max_rounds=" << max_rounds);
  return std::make_unique<LocalSearchBatch>(max_rounds);
}

}  // namespace dtm
