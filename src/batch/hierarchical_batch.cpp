// Arbitrary-graph batch scheduler via hierarchical clustering.
//
// The paper's companion results (Busch et al., Distributed Computing 2018)
// obtain execution-time schedules for ARBITRARY graphs through hierarchical
// graph decompositions. This scheduler reuses the §V sparse cover that the
// distributed algorithm already needs: every node gets a hierarchical key
// (its cluster at the first sub-layer of each layer, coarse to fine), and
// transactions are visited in lexicographic key order. Objects then travel
// cluster by cluster — within a 2^l-diameter cluster before crossing to the
// next — giving a locality-aware order on any topology, with no
// per-topology tuning.
#include <algorithm>

#include "batch/batch_scheduler.hpp"
#include "net/sparse_cover.hpp"
#include "net/topology.hpp"

namespace dtm {

namespace {

class HierarchicalBatch final : public BatchScheduler {
 public:
  explicit HierarchicalBatch(const Network& net)
      : cover_(net.graph, *net.oracle, {}) {
    const NodeId n = net.num_nodes();
    keys_.resize(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
      auto& key = keys_[static_cast<std::size_t>(u)];
      for (std::int32_t l = cover_.num_layers() - 1; l >= 0; --l) {
        const auto& sub = cover_.layer(l).sublayers.front();
        key.push_back(sub.cluster_of[static_cast<std::size_t>(u)]);
      }
      key.push_back(u);  // final tie-break: the node itself
    }
  }

  [[nodiscard]] BatchResult schedule(const BatchProblem& p,
                                     Rng&) const override {
    std::vector<std::size_t> order(p.txns.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const auto& ka =
                           keys_[static_cast<std::size_t>(p.txns[a].node)];
                       const auto& kb =
                           keys_[static_cast<std::size_t>(p.txns[b].node)];
                       if (ka != kb) return ka < kb;
                       return p.txns[a].id < p.txns[b].id;
                     });
    return chain_evaluate(p, order);
  }

  [[nodiscard]] std::string name() const override { return "hierarchical"; }

 private:
  SparseCover cover_;
  std::vector<std::vector<std::int32_t>> keys_;
};

}  // namespace

std::unique_ptr<BatchScheduler> make_hierarchical_batch(const Network& net) {
  return std::make_unique<HierarchicalBatch>(net);
}

}  // namespace dtm
