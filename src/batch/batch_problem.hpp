// Offline batch scheduling problems (paper §IV): the input format consumed
// by the offline algorithms A that the bucket scheduler converts to online.
//
// A batch problem is a set of transactions to schedule from scratch, given
// per-object availability (where each object is, and from when it is free of
// commitments to already-scheduled transactions). This encodes the paper's
// first "basic modification" of A: pinned transactions are folded into
// object availability, so A appends the new schedule after them.
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "core/scheduler.hpp"
#include "core/types.hpp"
#include "net/graph.hpp"
#include "util/batch_math.hpp"

namespace dtm {

class BatchProblemSoA;  // batch/soa_problem.hpp

/// Non-owning reference to a prebuilt SoA view of THIS problem's content
/// (set by owners that amortize one build over many evaluations, e.g. the
/// bucket insertion core's activation retries). Deliberately NOT propagated
/// by copy or copy-assignment: a copy's content is usually about to
/// diverge, and a stale view silently corrupting schedules is worse than a
/// redundant rebuild. Owners that mutate a problem in place must clear it.
class SoaRef {
 public:
  SoaRef() = default;
  SoaRef(const SoaRef&) noexcept {}
  SoaRef& operator=(const SoaRef&) noexcept {
    ptr_ = nullptr;
    return *this;
  }
  SoaRef& operator=(const BatchProblemSoA* p) noexcept {
    ptr_ = p;
    return *this;
  }
  [[nodiscard]] const BatchProblemSoA* get() const { return ptr_; }

 private:
  const BatchProblemSoA* ptr_ = nullptr;
};

/// Availability of one object: free at `node` from time `ready` on. `ready`
/// already accounts for any pinned (already-scheduled) user of the object.
struct BatchObject {
  ObjId id = kNoObj;
  NodeId node = kNoNode;
  Time ready = 0;
  /// True if the availability point is a transaction commit (then the next
  /// user must execute at least one step later even at distance zero).
  bool from_txn = false;
};

/// A transaction to be scheduled by the batch algorithm.
struct BatchTxn {
  TxnId id = kNoTxn;
  NodeId node = kNoNode;
  std::vector<ObjId> objects;
};

struct BatchProblem {
  const DistanceOracle* oracle = nullptr;
  std::int64_t latency_factor = 1;
  Time now = 0;  ///< schedule times must be >= now
  std::vector<BatchObject> objects;
  std::vector<BatchTxn> txns;
  /// Math path for every consumer of this problem (chain evaluation,
  /// coloring, local search). Not part of the problem CONTENT: excluded
  /// from problem_fingerprint, and all modes produce byte-identical
  /// schedules (golden-pinned).
  BatchMathMode math = BatchMathMode::kScalar;
  /// Optional prebuilt SoA view (see SoaRef). Consumers fall back to a
  /// thread-local build when unset.
  SoaRef soa;

  [[nodiscard]] Time travel(NodeId u, NodeId v) const {
    return latency_factor * oracle->dist(u, v);
  }
  [[nodiscard]] const BatchObject& object(ObjId id) const;
};

struct BatchResult {
  std::vector<Assignment> assignments;  ///< one per problem transaction
  Time makespan = 0;                    ///< max exec - problem.now

  [[nodiscard]] Time exec_of(TxnId id) const;
};

/// Verifies that `r` is feasible for `p` (object chains from availability,
/// all txns assigned, exec >= now) and that makespan matches. Throws
/// CheckError on violation — batch algorithms call this before returning.
void check_batch_result(const BatchProblem& p, const BatchResult& r);

}  // namespace dtm
