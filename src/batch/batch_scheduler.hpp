// Offline batch scheduler interface and the ordered-chain engine that all
// per-topology schedulers share.
//
// Busch et al. [SPAA'17] — the paper's black-box A — give per-topology
// offline algorithms whose common skeleton is: pick a good *global visiting
// order* of the transactions, then let every object walk its users in that
// order. OrderedChainBatch implements the skeleton once; topologies supply
// the order (line sweep, star ray-by-ray, cluster clique-by-clique, …). The
// bucket conversion (paper §IV) only relies on A's approximation ratio b_A,
// which the experiment suite measures against certified lower bounds.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch_problem.hpp"
#include "util/rng.hpp"

namespace dtm {

class BatchScheduler {
 public:
  virtual ~BatchScheduler() = default;

  /// Computes a feasible schedule for `p`. `rng` feeds randomized
  /// algorithms (cluster/star); deterministic ones ignore it.
  [[nodiscard]] virtual BatchResult schedule(const BatchProblem& p,
                                             Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// True if schedule() depends on rng — the bucket scheduler then retries
  /// a few times and keeps the best (paper §IV-D's "repeat the offline
  /// algorithm" remedy for the bad event).
  [[nodiscard]] virtual bool randomized() const { return false; }
};

/// The paper's F_A(X): time to execute all transactions of `p` using
/// algorithm `a`, relative to p.now.
[[nodiscard]] Time estimate_fa(const BatchScheduler& a, const BatchProblem& p,
                               Rng& rng);

/// Evaluates the earliest feasible execution times for `p.txns` visited in
/// the given order (object chains from availability). The workhorse shared
/// by every ordering-based scheduler; exposed for tests. `validate` runs
/// check_batch_result on the output — search loops that evaluate many
/// candidate orders and validate only the winner pass false.
///
/// Dispatches on p.math: kScalar runs the sorted-cursor reference below;
/// kSoA evaluates through the structure-of-arrays view (p.soa when the
/// owner prebuilt one, a thread-local build otherwise); kVerify runs both
/// and cross-checks assignment-for-assignment. All modes are byte-equal.
[[nodiscard]] BatchResult chain_evaluate(const BatchProblem& p,
                                         const std::vector<std::size_t>& order,
                                         bool validate = true);

/// The scalar reference path of chain_evaluate, independent of p.math.
/// Exposed for the verify cross-check, soa_test, and bench_simd.
[[nodiscard]] BatchResult chain_evaluate_scalar(
    const BatchProblem& p, const std::vector<std::size_t>& order,
    bool validate = true);

/// A batch scheduler defined by an ordering policy over the problem's
/// transactions. The policy returns a permutation of indices into p.txns.
class OrderedChainBatch : public BatchScheduler {
 public:
  using OrderPolicy = std::function<std::vector<std::size_t>(
      const BatchProblem&, Rng&)>;

  OrderedChainBatch(std::string policy_name, OrderPolicy policy,
                    bool is_randomized = false)
      : name_("chain-" + policy_name),
        policy_(std::move(policy)),
        randomized_(is_randomized) {}

  [[nodiscard]] BatchResult schedule(const BatchProblem& p,
                                     Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool randomized() const override { return randomized_; }

 private:
  std::string name_;
  OrderPolicy policy_;
  bool randomized_;
};

// ---- Per-topology schedulers (factories return ready-to-use instances) ----

/// Generic graphs: greedy weighted coloring of the batch conflict graph
/// (Lemma 1 applied offline). Near-optimal on low-diameter graphs; the
/// default A for clique/hypercube-style topologies.
[[nodiscard]] std::unique_ptr<BatchScheduler> make_coloring_batch();

/// Line (§IV-D): left-to-right sweep order — reconstruction of the O(1)-
/// approximate line scheduler of [SPAA'17].
[[nodiscard]] std::unique_ptr<BatchScheduler> make_line_batch();

/// Clique: order by object-load-weighted degree (heaviest conflicts first).
[[nodiscard]] std::unique_ptr<BatchScheduler> make_clique_batch();

/// Cluster (§IV-D): randomized clique order, bridge nodes first within each
/// clique. Randomized, per the paper.
[[nodiscard]] std::unique_ptr<BatchScheduler> make_cluster_batch(NodeId beta);

/// Star (§IV-D): randomized ray order, center first, center-outward within
/// each ray. Randomized, per the paper.
[[nodiscard]] std::unique_ptr<BatchScheduler> make_star_batch(NodeId beta);

/// Grid: boustrophedon (snake) sweep over coordinates.
[[nodiscard]] std::unique_ptr<BatchScheduler> make_grid_snake_batch(
    std::vector<NodeId> extents);

/// Hypercube: Gray-code order (consecutive transactions one hop apart).
[[nodiscard]] std::unique_ptr<BatchScheduler> make_hypercube_gray_batch();

/// Baseline of Zhang et al. [SIROCCO'14]: nearest-neighbor TSP-style tour
/// over the transaction nodes. The paper's related work notes this can be
/// far from optimal on general graphs; experiment F5 measures it.
[[nodiscard]] std::unique_ptr<BatchScheduler> make_tsp_batch();

/// Trivial fully-serial baseline (one transaction at a time, objects
/// ping-ponging): the nD worst case of Lemma 3.
[[nodiscard]] std::unique_ptr<BatchScheduler> make_sequential_batch();

/// Topology-agnostic local search on the chain order (seeded by the
/// coloring schedule, improved with swap moves). Randomized; the tightest
/// generic A at small batch sizes and a calibration point for lower-bound
/// looseness.
[[nodiscard]] std::unique_ptr<BatchScheduler> make_local_search_batch(
    std::int32_t max_rounds = 8);

/// Arbitrary-graph scheduler via the §V sparse-cover hierarchy: visits
/// transactions cluster by cluster, coarse layers outermost. Locality-aware
/// with no per-topology tuning (the companion-paper approach for general
/// networks). Requires the Network (the cover needs the explicit graph).
struct Network;  // fwd (net/topology.hpp)
[[nodiscard]] std::unique_ptr<BatchScheduler> make_hierarchical_batch(
    const Network& net);

/// Exact over the chain-schedule class by trying every visiting order.
/// O(n!) — refuses problems larger than `limit` (<= 10). Calibration only.
[[nodiscard]] std::unique_ptr<BatchScheduler> make_exhaustive_batch(
    std::size_t limit = 8);

}  // namespace dtm
