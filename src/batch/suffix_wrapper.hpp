// The paper's second "basic modification" of a batch algorithm A (§IV-A):
// enforce the *suffix property* — every suffix of the produced schedule
// (with object positions inherited from the prefix) executes within F_A of
// that suffix's own batch problem.
//
// As in the paper, the property is established by repeatedly re-running A on
// violating suffixes, longest first, until no suffix violates it. The
// wrapper preserves feasibility at every step (suffix re-schedules are
// computed against availability induced by the prefix).
#pragma once

#include <memory>

#include "batch/batch_scheduler.hpp"

namespace dtm {

struct SuffixWrapperOptions {
    /// Bound on inner re-schedules per call; the fixpoint is usually
    /// reached far earlier, this guards adversarial instances.
    std::int32_t max_inner_calls = 0;  ///< 0 => 4 * |txns| + 8
  };

class SuffixWrapper final : public BatchScheduler {
 public:
  using Options = SuffixWrapperOptions;

  explicit SuffixWrapper(std::shared_ptr<const BatchScheduler> inner,
                         Options opts = {})
      : inner_(std::move(inner)), opts_(opts) {
    DTM_REQUIRE(inner_ != nullptr, "SuffixWrapper needs an inner scheduler");
  }

  [[nodiscard]] BatchResult schedule(const BatchProblem& p,
                                     Rng& rng) const override;
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+suffix";
  }
  [[nodiscard]] bool randomized() const override {
    return inner_->randomized();
  }

  /// Availability each object would have after the `prefix` transactions of
  /// `r` (ordered by execution time) have run. Exposed for tests.
  [[nodiscard]] static std::vector<BatchObject> availability_after_prefix(
      const BatchProblem& p, const BatchResult& r, std::size_t prefix_len);

 private:
  std::shared_ptr<const BatchScheduler> inner_;
  Options opts_;
};

}  // namespace dtm
