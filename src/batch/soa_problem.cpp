#include "batch/soa_problem.hpp"

#include <algorithm>

namespace dtm {

void BatchProblemSoA::build(const BatchProblem& p) {
  n_ = p.txns.size();
  m_ = p.objects.size();

  // Object arrays in sorted-id order: BatchProblem::objects is sorted in
  // the bucket core's cached problems but not guaranteed elsewhere, so
  // sort a rank permutation rather than assuming.
  obj_id_.resize(m_);
  obj_node_.resize(m_);
  obj_ready_.resize(m_);
  obj_from_.resize(m_);
  static thread_local std::vector<std::size_t> rank;
  rank.resize(m_);
  for (std::size_t j = 0; j < m_; ++j) rank[j] = j;
  std::sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
    return p.objects[a].id < p.objects[b].id;
  });
  for (std::size_t j = 0; j < m_; ++j) {
    const BatchObject& o = p.objects[rank[j]];
    obj_id_[j] = o.id;
    obj_node_[j] = o.node;
    obj_ready_[j] = o.ready;
    obj_from_[j] = o.from_txn ? 1 : 0;
    DTM_CHECK(j == 0 || obj_id_[j - 1] != o.id,
              "duplicate object " << o.id << " in batch problem");
  }

  txn_id_.resize(n_);
  txn_node_.resize(n_);

  // CSR txn → object, preserving each row's access order.
  txn_off_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i)
    txn_off_[i + 1] = txn_off_[i] + p.txns[i].objects.size();
  txn_obj_.resize(txn_off_[n_]);
  for (std::size_t i = 0; i < n_; ++i) {
    txn_id_[i] = p.txns[i].id;
    txn_node_[i] = p.txns[i].node;
    std::size_t k = txn_off_[i];
    for (const ObjId o : p.txns[i].objects) txn_obj_[k++] = obj_index(o);
  }

  // CSR object → txn by counting sort over the flat txn→object array;
  // filling in ascending txn order makes every user row ascending.
  obj_off_.assign(m_ + 1, 0);
  for (const std::size_t j : txn_obj_) ++obj_off_[j + 1];
  for (std::size_t j = 0; j < m_; ++j) obj_off_[j + 1] += obj_off_[j];
  obj_txn_.resize(txn_obj_.size());
  static thread_local std::vector<std::size_t> cursor;
  cursor.assign(obj_off_.begin(), obj_off_.end() - 1);
  for (std::size_t i = 0; i < n_; ++i)
    for (const std::size_t j : txn_objects(i)) obj_txn_[cursor[j]++] = i;

  // Conflict rows: for each object, OR its user mask into every user's row
  // (word-parallel), then clear the diagonal. Built eagerly so a shared
  // view is read-only during parallel evaluation.
  row_words_ = bit_words_for(n_);
  conflict_.assign(n_ * row_words_, 0);
  user_scratch_.assign(row_words_, 0);
  for (std::size_t j = 0; j < m_; ++j) {
    const auto users = object_users(j);
    if (users.size() < 2) continue;
    for (const std::size_t i : users)
      user_scratch_[i / kBitWordBits] |= BitWord{1} << (i % kBitWordBits);
    for (const std::size_t i : users) {
      BitWord* row = conflict_.data() + i * row_words_;
      for (std::size_t w = 0; w < row_words_; ++w) row[w] |= user_scratch_[w];
    }
    for (const std::size_t i : users)
      user_scratch_[i / kBitWordBits] = 0;
  }
  for (std::size_t i = 0; i < n_; ++i)
    conflict_[i * row_words_ + i / kBitWordBits] &=
        ~(BitWord{1} << (i % kBitWordBits));
}

std::size_t BatchProblemSoA::obj_index(ObjId id) const {
  const auto it = std::lower_bound(obj_id_.begin(), obj_id_.end(), id);
  DTM_CHECK(it != obj_id_.end() && *it == id,
            "object " << id << " missing from SoA view");
  return static_cast<std::size_t>(it - obj_id_.begin());
}

bool BatchProblemSoA::matches(const BatchProblem& p) const {
  if (n_ != p.txns.size() || m_ != p.objects.size()) return false;
  if (n_ > 0 &&
      (txn_id_[0] != p.txns[0].id || txn_id_[n_ - 1] != p.txns[n_ - 1].id))
    return false;
  return true;
}

BatchResult chain_evaluate_soa(const BatchProblem& p,
                               const BatchProblemSoA& s,
                               const std::vector<std::size_t>& order) {
  DTM_REQUIRE(order.size() == s.num_txns(),
              "order size " << order.size() << " != " << s.num_txns());
  // Dense cursor arrays indexed by the SoA object index — the SoA analogue
  // of the scalar path's sorted cursor table, with O(1) lookups.
  static thread_local std::vector<NodeId> cur_node;
  static thread_local std::vector<Time> cur_free;
  static thread_local std::vector<std::uint8_t> cur_from;
  cur_node.assign(s.obj_node().begin(), s.obj_node().end());
  cur_free.assign(s.obj_ready().begin(), s.obj_ready().end());
  cur_from.assign(s.obj_from_txn().begin(), s.obj_from_txn().end());

  const auto node = s.txn_node();
  const auto ids = s.txn_ids();
  BatchResult r;
  r.assignments.reserve(order.size());
  for (const std::size_t idx : order) {
    const NodeId tn = node[idx];
    Time e = p.now;
    for (const std::size_t j : s.txn_objects(idx)) {
      Time arrive = cur_free[j] + p.travel(cur_node[j], tn);
      if (cur_from[j]) arrive = std::max(arrive, cur_free[j] + 1);
      e = std::max(e, arrive);
    }
    for (const std::size_t j : s.txn_objects(idx)) {
      cur_node[j] = tn;
      cur_free[j] = e;
      cur_from[j] = 1;
    }
    r.assignments.push_back({ids[idx], e});
    r.makespan = std::max(r.makespan, e - p.now);
  }
  return r;
}

}  // namespace dtm
