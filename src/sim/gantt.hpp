// Text rendering of execution schedules: a per-node Gantt strip of commit
// marks and per-object itineraries (the trajectory each mobile object
// follows through its users). Pure post-processing over a committed
// schedule — used by examples and handy when debugging scheduler changes.
#pragma once

#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "net/graph.hpp"

namespace dtm {

struct GanttOptions {
  /// Maximum number of character columns for the time axis; longer
  /// schedules are compressed (each cell covers ceil(makespan/width)
  /// steps).
  int width = 72;
  /// Rows are limited to nodes that commit at least one transaction.
  bool skip_idle_nodes = true;
};

/// Per-node strip chart: '#' marks a cell containing >= 1 commit on that
/// node, '.' an empty cell. Header carries the cell width in steps.
[[nodiscard]] std::string render_gantt(
    const std::vector<ScheduledTxn>& scheduled, NodeId num_nodes,
    const GanttOptions& opts = {});

/// Object itineraries: for each object, the chain
/// "origin@t -> node@t1 -> node@t2 ..." of the commits it visits, with the
/// per-hop distance. One line per object.
[[nodiscard]] std::string render_itineraries(
    const std::vector<ScheduledTxn>& scheduled,
    const std::vector<ObjectOrigin>& origins, const DistanceOracle& oracle);

}  // namespace dtm
