#include "sim/registry.hpp"

#include <algorithm>
#include <sstream>

#include "core/bucket_scheduler.hpp"
#include "core/fcfs_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "dist/dist_bucket.hpp"
#include "net/routing.hpp"
#include "sim/app_workloads.hpp"
#include "sim/io.hpp"
#include "util/batch_math.hpp"

namespace dtm {

namespace {

std::int64_t to_int(const std::string& key, const std::string& v) {
  try {
    std::size_t used = 0;
    const std::int64_t n = std::stoll(v, &used);
    DTM_REQUIRE(used == v.size(), "spec: bad integer for '"
                                      << key << "': '" << v << "'");
    return n;
  } catch (const CheckError&) {
    throw;
  } catch (const std::exception&) {
    throw CheckError("spec: bad integer for '" + key + "': '" + v + "'");
  }
}

double to_double(const std::string& key, const std::string& v) {
  try {
    std::size_t used = 0;
    const double d = std::stod(v, &used);
    DTM_REQUIRE(used == v.size(),
                "spec: bad number for '" << key << "': '" << v << "'");
    return d;
  } catch (const CheckError&) {
    throw;
  } catch (const std::exception&) {
    throw CheckError("spec: bad number for '" + key + "': '" + v + "'");
  }
}

/// Parses "3x4x2" into grid/torus extents.
std::vector<NodeId> parse_dims(const std::string& dims) {
  std::vector<NodeId> out;
  std::string cur;
  for (const char c : dims + "x") {
    if (c == 'x') {
      DTM_REQUIRE(!cur.empty(), "spec: bad dims '" << dims << "'");
      out.push_back(static_cast<NodeId>(to_int("dims", cur)));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  return out;
}

/// Structural parameter recorded by the topology builder (cluster beta,
/// grid dims, ...); hard error when the batch algorithm needs one the
/// network does not carry.
std::string structural_param(const Network& net, const std::string& key,
                             const std::string& algo) {
  const auto it = net.build_params.find(key);
  DTM_REQUIRE(it != net.build_params.end(),
              "batch algo '" << algo << "' needs '" << key
                             << "', which network '" << net.name
                             << "' does not carry");
  return it->second;
}

/// Bucket insertion-path knob: off = paper-verbatim naive scan, on =
/// incremental fast path, verify = fast path cross-checked per decision.
BucketFastPath parse_fastpath(const std::string& v) {
  if (v == "off") return BucketFastPath::kNaive;
  if (v == "on") return BucketFastPath::kIncremental;
  if (v == "verify") return BucketFastPath::kVerify;
  throw CheckError("spec: fastpath must be off|on|verify, got '" + v + "'");
}

}  // namespace

Spec parse_spec(const std::string& text) {
  DTM_REQUIRE(!text.empty(), "spec: empty");
  Spec s;
  const std::size_t colon = text.find(':');
  s.kind = text.substr(0, colon);
  DTM_REQUIRE(!s.kind.empty(), "spec: missing kind in '" << text << "'");
  if (colon == std::string::npos) return s;
  std::string rest = text.substr(colon + 1);
  std::stringstream ss(rest);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t eq = item.find('=');
    DTM_REQUIRE(eq != std::string::npos && eq > 0,
                "spec: expected key=value, got '" << item << "' in '"
                                                  << text << "'");
    const std::string key = item.substr(0, eq);
    DTM_REQUIRE(s.params.emplace(key, item.substr(eq + 1)).second,
                "spec: duplicate parameter '" << key << "' in '" << text
                                              << "'");
  }
  return s;
}

std::string to_string(const Spec& spec) {
  std::string out = spec.kind;
  bool first = true;
  for (const auto& [k, v] : spec.params) {
    out += (first ? ":" : ",") + k + "=" + v;
    first = false;
  }
  return out;
}

SpecArgs::SpecArgs(const Spec& spec)
    : kind_(spec.kind), remaining_(spec.params) {}

std::string SpecArgs::str(const std::string& key, std::string def) {
  const auto it = remaining_.find(key);
  if (it == remaining_.end()) return def;
  std::string v = it->second;
  remaining_.erase(it);
  return v;
}

std::int64_t SpecArgs::integer(const std::string& key, std::int64_t def) {
  const auto it = remaining_.find(key);
  if (it == remaining_.end()) return def;
  const std::int64_t v = to_int(key, it->second);
  remaining_.erase(it);
  return v;
}

double SpecArgs::real(const std::string& key, double def) {
  const auto it = remaining_.find(key);
  if (it == remaining_.end()) return def;
  const double v = to_double(key, it->second);
  remaining_.erase(it);
  return v;
}

bool SpecArgs::boolean(const std::string& key, bool def) {
  const auto it = remaining_.find(key);
  if (it == remaining_.end()) return def;
  const std::string v = it->second;
  remaining_.erase(it);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw CheckError("spec: bad boolean for '" + key + "': '" + v + "'");
}

void SpecArgs::finish() const {
  if (remaining_.empty()) return;
  std::string names;
  for (const auto& [k, v] : remaining_) names += (names.empty() ? "" : ", ") + k;
  throw CheckError("spec '" + kind_ + "': unknown parameter(s): " + names);
}

// ---------------------------------------------------------------------------
// RunSpec <-> JSON

EngineOptions::Mode RunSpec::engine_mode() const {
  if (mode == "scan") return EngineOptions::Mode::kScan;
  if (mode == "calendar") return EngineOptions::Mode::kCalendar;
  if (mode == "verify") return EngineOptions::Mode::kVerify;
  if (mode == "verify-parallel") return EngineOptions::Mode::kVerifyParallel;
  throw CheckError("run spec: unknown engine mode '" + mode +
                   "' (scan | calendar | verify | verify-parallel)");
}

namespace {

Json spec_to_json(const Spec& s) {
  Json::Object o;
  o.emplace("kind", Json(s.kind));
  for (const auto& [k, v] : s.params) o.emplace(k, Json(v));
  return Json(std::move(o));
}

std::string json_param_value(const std::string& key, const Json& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_int()) return std::to_string(v.as_int());
  if (v.is_number()) {
    std::ostringstream os;
    os << v.as_double();
    return os.str();
  }
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  throw CheckError("run spec: parameter '" + key +
                   "' must be a string, number, or bool");
}

Spec spec_from_json(const Json& j, const std::string& what) {
  if (j.is_string()) return parse_spec(j.as_string());
  DTM_REQUIRE(j.is_object(),
              "run spec: '" << what << "' must be an object or spec string");
  Spec s;
  for (const auto& [k, v] : j.as_object()) {
    if (k == "kind") {
      s.kind = v.as_string();
    } else {
      s.params.emplace(k, json_param_value(k, v));
    }
  }
  DTM_REQUIRE(!s.kind.empty(), "run spec: '" << what << "' missing 'kind'");
  return s;
}

}  // namespace

Json RunSpec::to_json() const {
  Json::Object o;
  o.emplace("topology", spec_to_json(topology));
  o.emplace("workload", spec_to_json(workload));
  o.emplace("scheduler", spec_to_json(scheduler));
  o.emplace("fault", spec_to_json(fault));
  o.emplace("serve", spec_to_json(serve));
  o.emplace("stream", spec_to_json(stream));
  o.emplace("mode", Json(mode));
  o.emplace("latency_factor", Json(latency_factor));
  o.emplace("seed", Json(static_cast<std::int64_t>(seed)));
  o.emplace("trials", Json(trials));
  o.emplace("threads", Json(threads));
  o.emplace("ratio_window", Json(ratio_window));
  o.emplace("validate", Json(validate));
  return Json(std::move(o));
}

RunSpec RunSpec::from_json(const Json& j) {
  DTM_REQUIRE(j.is_object(), "run spec: document must be a JSON object");
  RunSpec s;
  for (const auto& [k, v] : j.as_object()) {
    if (k == "topology") s.topology = spec_from_json(v, k);
    else if (k == "workload") s.workload = spec_from_json(v, k);
    else if (k == "scheduler") s.scheduler = spec_from_json(v, k);
    else if (k == "fault") s.fault = spec_from_json(v, k);
    else if (k == "serve") s.serve = spec_from_json(v, k);
    else if (k == "stream") s.stream = spec_from_json(v, k);
    else if (k == "mode") s.mode = v.as_string();
    else if (k == "latency_factor") s.latency_factor = v.as_int();
    else if (k == "seed") s.seed = static_cast<std::uint64_t>(v.as_int());
    else if (k == "trials") s.trials = static_cast<std::int32_t>(v.as_int());
    else if (k == "threads") s.threads = static_cast<std::int32_t>(v.as_int());
    else if (k == "ratio_window") s.ratio_window = v.as_int();
    else if (k == "validate") s.validate = v.as_bool();
    else
      throw CheckError("run spec: unknown key '" + k + "'");
  }
  (void)s.engine_mode();  // validate the mode string eagerly
  DTM_REQUIRE(s.threads >= 0 && s.threads <= 1024,
              "run spec: threads must be in [0, 1024], got " << s.threads);
  return s;
}

// ---------------------------------------------------------------------------
// Registry

const std::vector<Registry::Entry>& Registry::topologies() {
  static const std::vector<Entry> kEntries = {
      {"clique", "n=8"},
      {"line", "n=8"},
      {"ring", "n=8"},
      {"grid", "dims=3x4 (row-major extents, 'x'-separated)"},
      {"torus", "dims=3x3"},
      {"hypercube", "d=3 (2^d nodes)"},
      {"butterfly", "d=2 ((d+1)*2^d nodes)"},
      {"star", "alpha=3,beta=3 (rays x ray length)"},
      {"cluster", "alpha=3,beta=3,gamma=4 (cliques x size, bridge weight)"},
      {"tree", "branching=2,depth=3"},
      {"random", "n=12,extra=12,maxw=3,seed=7 (connected random graph)"},
      {"(any)",
       "routing=exact|landmark|verify,landmarks=0,stretch=3,routing-cache=64"
       " (landmark oracle over any topology; verify cross-checks stretch)"},
  };
  return kEntries;
}

const std::vector<Registry::Entry>& Registry::schedulers() {
  static const std::vector<Entry> kEntries = {
      {"greedy", "delay=0,padding=0  (Algorithm 1 weighted coloring)"},
      {"greedy-uniform",
       "beta=0,delay=0  (Lemma 2 uniform colors; beta=0 -> diameter)"},
      {"fcfs", "(distance-oblivious arrival-order baseline)"},
      {"bucket",
       "algo=auto,max-level=0,retries=3,seed=...,suffix=true,force-level=-1,"
       "fastpath=on,threads=1,batch_math=scalar  (Algorithm 2 over offline "
       "algo)"},
      {"dist-bucket",
       "algo=auto,max-level=0,retries=3,seed=...,msg=true,timeout-mult=4,"
       "fastpath=on,threads=1,batch_math=scalar  (Algorithm 3 over a sparse "
       "cover; forces latency factor >= 2)"},
  };
  return kEntries;
}

const std::vector<Registry::Entry>& Registry::workloads() {
  static const std::vector<Entry> kEntries = {
      {"synthetic",
       "objects=0,k=2,zipf=0,rounds=1,gap=1,arrival-prob=0,participation=1,"
       "write-frac=1,seed=..."},
      {"bank", "accounts=0,transfers=3,hot-frac=0.1,hot-prob=0.5,seed=..."},
      {"social",
       "profiles=0,actions=4,write-frac=0.1,zipf=1.1,fanout=3,seed=..."},
      {"scripted", "file=PATH (dtm-instance v1 replay)"},
  };
  return kEntries;
}

const std::vector<Registry::Entry>& Registry::batch_algos() {
  static const std::vector<Entry> kEntries = {
      {"auto", "per-topology pick (line/cluster/star/grid/hypercube), else "
               "coloring"},
      {"coloring", "greedy weighted coloring (generic)"},
      {"line", "left-to-right sweep (SPAA'17 line)"},
      {"clique", "load-weighted degree order"},
      {"cluster", "randomized clique order (needs cluster beta)"},
      {"star", "randomized ray order (needs star beta)"},
      {"grid-snake", "boustrophedon sweep (needs grid dims)"},
      {"gray", "hypercube Gray-code order"},
      {"tsp", "nearest-neighbor tour baseline (SIROCCO'14)"},
      {"sequential", "fully serial worst case"},
      {"local-search", "swap-improved chain order"},
      {"hierarchical", "sparse-cover cluster sweep (arbitrary graphs)"},
      {"exhaustive", "exact over chain orders (tiny problems only)"},
  };
  return kEntries;
}

const std::vector<Registry::Entry>& Registry::fault_plans() {
  static const std::vector<Entry> kEntries = {
      {"none", "(no faults; the byte-identical default)"},
      {"fault",
       "drop=0,dup=0,jitter=0,degrade=0,degrade-frac=0,pauses=0,"
       "pause-len=16,pause-within=256,stall=0,stall-max=8,seed=..."},
  };
  return kEntries;
}

const std::vector<Registry::Entry>& Registry::serve_configs() {
  static const std::vector<Entry> kEntries = {
      {"serve",
       "rate=4,duration=2048,window=256,drain-every=0,admit-rate=0,burst=16,"
       "max-inflight=256,policy=shed|queue,queue-cap=1024,source=synthetic|"
       "trace,trace=PATH,trace-loop=0,objects=0,k=2,zipf=0,write-frac=1,"
       "burst-every=0,burst-len=0,burst-mult=1,slo-p99=0,seed=...  "
       "(dtm_serve service shape)"},
  };
  return kEntries;
}

const std::vector<Registry::Entry>& Registry::stream_configs() {
  static const std::vector<Entry> kEntries = {
      {"stream",
       "profile=steady|diurnal|mmpp|adversary,rate=4,objects=0,k=2,zipf=0.9,"
       "write-frac=1,rotate-every=0,period=2048,duty=0.5,low-mult=0.25,"
       "dwell-on=256,dwell-off=768,hi-mult=4,burst=64,target=100000,"
       "duration=0,window=1024,drain-every=256,max-live=0,ratio-every=1,"
       "seed=...  (dtm_stream run shape)"},
  };
  return kEntries;
}

StreamConfig Registry::make_stream_config(const Spec& spec,
                                          std::uint64_t default_seed) {
  SpecArgs a(spec);
  DTM_REQUIRE(a.kind() == "stream",
              "unknown stream config '" << a.kind()
                                        << "' (stream:knob=value,...)");
  StreamConfig c;
  c.profile = a.str("profile", c.profile);
  c.rate = a.real("rate", c.rate);
  c.objects = static_cast<std::int32_t>(a.integer("objects", c.objects));
  c.k = static_cast<std::int32_t>(a.integer("k", c.k));
  c.zipf = a.real("zipf", c.zipf);
  c.write_frac = a.real("write-frac", c.write_frac);
  c.rotate_every = a.integer("rotate-every", c.rotate_every);
  c.period = a.integer("period", c.period);
  c.duty = a.real("duty", c.duty);
  c.low_mult = a.real("low-mult", c.low_mult);
  c.dwell_on = a.integer("dwell-on", c.dwell_on);
  c.dwell_off = a.integer("dwell-off", c.dwell_off);
  c.hi_mult = a.real("hi-mult", c.hi_mult);
  c.burst = a.real("burst", c.burst);
  c.target = a.integer("target", c.target);
  c.duration = a.integer("duration", c.duration);
  c.window = a.integer("window", c.window);
  c.drain_every = a.integer("drain-every", c.drain_every);
  c.max_live = a.integer("max-live", c.max_live);
  c.ratio_every = a.integer("ratio-every", c.ratio_every);
  c.seed = static_cast<std::uint64_t>(
      a.integer("seed", static_cast<std::int64_t>(default_seed)));
  a.finish();
  c.validate();
  return c;
}

ServeConfig Registry::make_serve_config(const Spec& spec,
                                        std::uint64_t default_seed) {
  SpecArgs a(spec);
  DTM_REQUIRE(a.kind() == "serve",
              "unknown serve config '" << a.kind()
                                       << "' (serve:knob=value,...)");
  ServeConfig c;
  c.rate = a.real("rate", c.rate);
  c.duration = a.integer("duration", c.duration);
  c.window = a.integer("window", c.window);
  c.drain_every = a.integer("drain-every", c.drain_every);
  c.admission.rate = a.real("admit-rate", c.admission.rate);
  c.admission.burst = a.real("burst", c.admission.burst);
  c.admission.max_inflight =
      a.integer("max-inflight", c.admission.max_inflight);
  const std::string policy = a.str("policy", "shed");
  if (policy == "shed") {
    c.admission.policy = AdmissionOptions::Policy::kShed;
  } else if (policy == "queue") {
    c.admission.policy = AdmissionOptions::Policy::kQueue;
  } else {
    throw CheckError("serve: unknown policy '" + policy +
                     "' (shed | queue)");
  }
  c.admission.queue_cap = a.integer("queue-cap", c.admission.queue_cap);
  c.source = a.str("source", c.source);
  c.trace_file = a.str("trace", c.trace_file);
  c.trace_loop = a.integer("trace-loop", c.trace_loop);
  c.objects = static_cast<std::int32_t>(a.integer("objects", c.objects));
  c.k = static_cast<std::int32_t>(a.integer("k", c.k));
  c.zipf = a.real("zipf", c.zipf);
  c.write_frac = a.real("write-frac", c.write_frac);
  c.burst_every = a.integer("burst-every", c.burst_every);
  c.burst_len = a.integer("burst-len", c.burst_len);
  c.burst_mult = a.real("burst-mult", c.burst_mult);
  c.slo_p99 = a.integer("slo-p99", c.slo_p99);
  c.seed = static_cast<std::uint64_t>(
      a.integer("seed", static_cast<std::int64_t>(default_seed)));
  a.finish();
  c.validate();
  return c;
}

FaultPlan Registry::make_fault_plan(const Spec& spec,
                                    std::uint64_t default_seed) {
  SpecArgs a(spec);
  if (a.kind() == "none") {
    a.finish();
    return FaultPlan{};
  }
  DTM_REQUIRE(a.kind() == "fault", "unknown fault plan '"
                                       << a.kind()
                                       << "' (none | fault:knob=value,...)");
  FaultPlan p;
  p.drop = a.real("drop", 0.0);
  p.dup = a.real("dup", 0.0);
  p.jitter = a.integer("jitter", 0);
  p.degrade = a.integer("degrade", 0);
  p.degrade_frac = a.real("degrade-frac", 0.0);
  p.pauses = static_cast<std::int32_t>(a.integer("pauses", 0));
  p.pause_len = a.integer("pause-len", p.pause_len);
  p.pause_within = a.integer("pause-within", p.pause_within);
  p.stall = a.real("stall", 0.0);
  p.stall_max = a.integer("stall-max", p.stall_max);
  p.seed = static_cast<std::uint64_t>(
      a.integer("seed", static_cast<std::int64_t>(default_seed)));
  a.finish();
  p.validate();
  return p;
}

Spec Registry::fault_to_spec(const FaultPlan& plan) {
  if (plan.is_null()) return Spec{"none", {}};
  const FaultPlan d;
  Spec s{"fault", {}};
  const auto put_real = [&](const char* key, double v, double dv) {
    if (v == dv) return;
    std::ostringstream os;
    os << v;
    s.params.emplace(key, os.str());
  };
  const auto put_int = [&](const char* key, std::int64_t v, std::int64_t dv) {
    if (v != dv) s.params.emplace(key, std::to_string(v));
  };
  put_real("drop", plan.drop, d.drop);
  put_real("dup", plan.dup, d.dup);
  put_int("jitter", plan.jitter, d.jitter);
  put_int("degrade", plan.degrade, d.degrade);
  put_real("degrade-frac", plan.degrade_frac, d.degrade_frac);
  put_int("pauses", plan.pauses, d.pauses);
  put_int("pause-len", plan.pause_len, d.pause_len);
  put_int("pause-within", plan.pause_within, d.pause_within);
  put_real("stall", plan.stall, d.stall);
  put_int("stall-max", plan.stall_max, d.stall_max);
  put_int("seed", static_cast<std::int64_t>(plan.seed),
          static_cast<std::int64_t>(d.seed));
  return s;
}

Network Registry::make_network(const Spec& spec) {
  SpecArgs a(spec);
  // Routing knobs apply to every topology kind: routing=exact keeps the
  // builder's native oracle; landmark swaps in a LandmarkOracle (and, for
  // random graphs, skips the O(n^2) APSP build entirely — that is what
  // makes 50k+-node topologies constructible); verify keeps both and
  // cross-checks per query + a construction sweep.
  const RoutingMode routing = parse_routing_mode(a.str("routing", "exact"));
  LandmarkOptions lopts;
  lopts.num_landmarks =
      static_cast<std::int32_t>(a.integer("landmarks", 0));
  lopts.intra_cache =
      static_cast<std::size_t>(a.integer("routing-cache", 64));
  const double max_stretch = a.real("stretch", 3.0);
  if (a.kind() == "random" && routing == RoutingMode::kLandmark) {
    // Graph-only build: same construction + rng stream as
    // make_random_connected, no exact oracle.
    Rng rng(static_cast<std::uint64_t>(a.integer("seed", 7)));
    const auto n = static_cast<NodeId>(a.integer("n", 12));
    const std::int64_t extra = a.integer("extra", 12);
    const Weight maxw = a.integer("maxw", 3);
    a.finish();
    std::int64_t extra_done = 0;
    auto graph = std::make_shared<Graph>(
        make_random_connected_graph(n, extra, maxw, rng, &extra_done));
    auto oracle = std::make_shared<LandmarkOracle>(graph, lopts);
    Network net{TopologyKind::kRandom,
                "random(n=" + std::to_string(n) + ")",
                Graph(*graph),
                oracle,
                {{"n", std::to_string(n)},
                 {"extra", std::to_string(extra_done)},
                 {"maxw", std::to_string(maxw)},
                 {"routing", "landmark"}}};
    return net;
  }
  Network net = [&]() -> Network {
    if (a.kind() == "clique")
      return make_clique(static_cast<NodeId>(a.integer("n", 8)));
    if (a.kind() == "line")
      return make_line(static_cast<NodeId>(a.integer("n", 8)));
    if (a.kind() == "ring")
      return make_ring(static_cast<NodeId>(a.integer("n", 8)));
    if (a.kind() == "grid") return make_grid(parse_dims(a.str("dims", "3x4")));
    if (a.kind() == "torus")
      return make_torus(parse_dims(a.str("dims", "3x3")));
    if (a.kind() == "hypercube")
      return make_hypercube(static_cast<int>(a.integer("d", 3)));
    if (a.kind() == "butterfly")
      return make_butterfly(static_cast<int>(a.integer("d", 2)));
    if (a.kind() == "star")
      return make_star(static_cast<NodeId>(a.integer("alpha", 3)),
                       static_cast<NodeId>(a.integer("beta", 3)));
    if (a.kind() == "cluster")
      return make_cluster(static_cast<NodeId>(a.integer("alpha", 3)),
                          static_cast<NodeId>(a.integer("beta", 3)),
                          a.integer("gamma", 4));
    if (a.kind() == "tree")
      return make_tree(static_cast<NodeId>(a.integer("branching", 2)),
                       static_cast<NodeId>(a.integer("depth", 3)));
    if (a.kind() == "random") {
      Rng rng(static_cast<std::uint64_t>(a.integer("seed", 7)));
      return make_random_connected(static_cast<NodeId>(a.integer("n", 12)),
                                   a.integer("extra", 12),
                                   a.integer("maxw", 3), rng);
    }
    throw CheckError("unknown topology '" + a.kind() +
                     "' (--list shows the registry)");
  }();
  a.finish();
  if (routing != RoutingMode::kExact) {
    // The oracle must own its graph: Network moves by value, so handing the
    // router a pointer into net.graph would dangle. Copy once at build time.
    auto graph = std::make_shared<Graph>(net.graph);
    auto exact = routing == RoutingMode::kVerify ? net.oracle : nullptr;
    net.oracle = std::make_shared<LandmarkOracle>(std::move(graph), lopts,
                                                  std::move(exact),
                                                  max_stretch);
    net.build_params["routing"] = to_string(routing);
  }
  return net;
}

std::unique_ptr<Workload> Registry::make_workload(const Spec& spec,
                                                  const Network& net,
                                                  std::uint64_t default_seed) {
  SpecArgs a(spec);
  std::unique_ptr<Workload> wl;
  if (a.kind() == "synthetic") {
    SyntheticOptions w;
    w.num_objects = static_cast<std::int32_t>(a.integer("objects", 0));
    w.k = static_cast<std::int32_t>(a.integer("k", 2));
    w.zipf_s = a.real("zipf", 0.0);
    w.rounds = static_cast<std::int32_t>(a.integer("rounds", 1));
    w.gap = a.integer("gap", 1);
    w.arrival_prob = a.real("arrival-prob", 0.0);
    w.node_participation = a.real("participation", 1.0);
    w.write_fraction = a.real("write-frac", 1.0);
    w.seed = static_cast<std::uint64_t>(
        a.integer("seed", static_cast<std::int64_t>(default_seed)));
    wl = std::make_unique<SyntheticWorkload>(net, w);
  } else if (a.kind() == "bank") {
    BankOptions b;
    b.accounts = static_cast<std::int32_t>(a.integer("accounts", 0));
    b.transfers_per_node = static_cast<std::int32_t>(a.integer("transfers", 3));
    b.hot_fraction = a.real("hot-frac", 0.1);
    b.hot_probability = a.real("hot-prob", 0.5);
    b.seed = static_cast<std::uint64_t>(
        a.integer("seed", static_cast<std::int64_t>(default_seed)));
    wl = make_bank_workload(net, b);
  } else if (a.kind() == "social") {
    SocialOptions s;
    s.profiles = static_cast<std::int32_t>(a.integer("profiles", 0));
    s.actions_per_node = static_cast<std::int32_t>(a.integer("actions", 4));
    s.write_fraction = a.real("write-frac", 0.1);
    s.zipf_s = a.real("zipf", 1.1);
    s.fanout = static_cast<std::int32_t>(a.integer("fanout", 3));
    s.seed = static_cast<std::uint64_t>(
        a.integer("seed", static_cast<std::int64_t>(default_seed)));
    wl = make_social_workload(net, s);
  } else if (a.kind() == "scripted") {
    const std::string file = a.str("file", "");
    DTM_REQUIRE(!file.empty(), "scripted workload needs file=PATH");
    Instance inst = load_instance_file(file);
    wl = std::make_unique<ScriptedWorkload>(std::move(inst.origins),
                                            std::move(inst.txns));
  } else {
    throw CheckError("unknown workload '" + a.kind() +
                     "' (--list shows the registry)");
  }
  a.finish();
  return wl;
}

std::shared_ptr<const BatchScheduler> Registry::make_batch_algo(
    const std::string& name, const Network& net) {
  if (name == "auto") {
    switch (net.kind) {
      case TopologyKind::kLine: return make_batch_algo("line", net);
      case TopologyKind::kCluster: return make_batch_algo("cluster", net);
      case TopologyKind::kStar: return make_batch_algo("star", net);
      case TopologyKind::kGrid: return make_batch_algo("grid-snake", net);
      case TopologyKind::kHypercube: return make_batch_algo("gray", net);
      default: return make_batch_algo("coloring", net);
    }
  }
  if (name == "coloring") return make_coloring_batch();
  if (name == "line") return make_line_batch();
  if (name == "clique") return make_clique_batch();
  if (name == "cluster")
    return make_cluster_batch(static_cast<NodeId>(
        to_int("beta", structural_param(net, "beta", name))));
  if (name == "star")
    return make_star_batch(static_cast<NodeId>(
        to_int("beta", structural_param(net, "beta", name))));
  if (name == "grid-snake")
    return make_grid_snake_batch(
        parse_dims(structural_param(net, "dims", name)));
  if (name == "gray") return make_hypercube_gray_batch();
  if (name == "tsp") return make_tsp_batch();
  if (name == "sequential") return make_sequential_batch();
  if (name == "local-search") return make_local_search_batch();
  if (name == "hierarchical") return make_hierarchical_batch(net);
  if (name == "exhaustive") return make_exhaustive_batch();
  throw CheckError("unknown batch algo '" + name +
                   "' (--list shows the registry)");
}

std::unique_ptr<OnlineScheduler> Registry::make_scheduler(
    const Spec& spec, const Network& net, const FaultPlan* fault,
    std::int32_t threads) {
  SpecArgs a(spec);
  std::unique_ptr<OnlineScheduler> s;
  if (a.kind() == "greedy" || a.kind() == "greedy-uniform") {
    GreedyOptions g;
    if (a.kind() == "greedy-uniform") {
      g.uniform_beta = a.integer("beta", 0);
      if (g.uniform_beta == 0)
        g.uniform_beta = std::max<Weight>(net.diameter(), 1);
    }
    g.coordination_delay = a.integer("delay", 0);
    g.congestion_padding = a.real("padding", 0.0);
    s = std::make_unique<GreedyScheduler>(g);
  } else if (a.kind() == "fcfs") {
    s = std::make_unique<FcfsScheduler>();
  } else if (a.kind() == "bucket") {
    BucketOptions o;
    o.max_level = static_cast<std::int32_t>(a.integer("max-level", 0));
    o.randomized_retries = static_cast<std::int32_t>(a.integer("retries", 3));
    o.seed = static_cast<std::uint64_t>(
        a.integer("seed", static_cast<std::int64_t>(o.seed)));
    o.enforce_suffix_property = a.boolean("suffix", true);
    o.force_level = static_cast<std::int32_t>(a.integer("force-level", -1));
    o.fastpath = parse_fastpath(a.str("fastpath", "on"));
    o.batch_math = parse_batch_math(a.str("batch_math", "scalar"));
    o.threads = static_cast<std::int32_t>(a.integer("threads", threads));
    DTM_REQUIRE(o.threads >= 0,
                "bucket: threads must be >= 0, got " << o.threads);
    s = std::make_unique<BucketScheduler>(
        make_batch_algo(a.str("algo", "auto"), net), o);
  } else if (a.kind() == "dist-bucket") {
    DistBucketOptions o;
    o.max_level = static_cast<std::int32_t>(a.integer("max-level", 0));
    o.randomized_retries = static_cast<std::int32_t>(a.integer("retries", 3));
    o.seed = static_cast<std::uint64_t>(
        a.integer("seed", static_cast<std::int64_t>(o.seed)));
    o.message_level_discovery = a.boolean("msg", true);
    o.timeout_mult = a.integer("timeout-mult", o.timeout_mult);
    o.fastpath = parse_fastpath(a.str("fastpath", "on"));
    o.batch_math = parse_batch_math(a.str("batch_math", "scalar"));
    o.threads = static_cast<std::int32_t>(a.integer("threads", threads));
    DTM_REQUIRE(o.threads >= 0,
                "dist-bucket: threads must be >= 0, got " << o.threads);
    if (fault != nullptr) o.fault = *fault;
    s = std::make_unique<DistributedBucketScheduler>(
        net, make_batch_algo(a.str("algo", "auto"), net), o);
  } else {
    throw CheckError("unknown scheduler '" + a.kind() +
                     "' (--list shows the registry)");
  }
  a.finish();
  return s;
}

// ---------------------------------------------------------------------------
// Spec-driven runs

RunResult run_spec(const RunSpec& spec, bool collect_schedule) {
  const Network net = Registry::make_network(spec.topology);
  auto wl = Registry::make_workload(spec.workload, net, spec.seed);
  const FaultPlan fault = Registry::make_fault_plan(spec.fault, spec.seed);
  auto sched =
      Registry::make_scheduler(spec.scheduler, net, &fault, spec.threads);
  RunOptions opts;
  opts.engine.mode = spec.engine_mode();
  opts.engine.latency_factor = spec.latency_factor;
  opts.engine.fault = fault;
  opts.engine.threads = spec.threads;
  opts.ratio_window = spec.ratio_window;
  opts.validate = spec.validate;
  opts.collect_schedule = collect_schedule;
  return run_experiment(net, *wl, *sched, opts);
}

TrialSummary run_spec_trials(const RunSpec& spec) {
  OnlineStats ratio, mk, lat, lb, wr;
  std::int64_t txns = 0;
  const Network net = Registry::make_network(spec.topology);
  for (std::int32_t t = 0; t < std::max<std::int32_t>(spec.trials, 1); ++t) {
    const std::uint64_t seed =
        spec.seed + static_cast<std::uint64_t>(t) * 7919;
    auto wl = Registry::make_workload(spec.workload, net, seed);
    const FaultPlan fault = Registry::make_fault_plan(spec.fault, seed);
    auto sched =
        Registry::make_scheduler(spec.scheduler, net, &fault, spec.threads);
    RunOptions opts;
    opts.engine.mode = spec.engine_mode();
    opts.engine.latency_factor = spec.latency_factor;
    opts.engine.fault = fault;
    opts.engine.threads = spec.threads;
    opts.ratio_window = spec.ratio_window;
    opts.validate = spec.validate;
    opts.collect_schedule = false;
    const RunResult r = run_experiment(net, *wl, *sched, opts);
    ratio.add(r.ratio);
    mk.add(static_cast<double>(r.makespan));
    lat.add(r.latency.mean());
    lb.add(static_cast<double>(r.lb.best()));
    wr.add(r.windowed_ratio);
    txns = r.num_txns;
  }
  return {ratio.mean(), mk.mean(), lat.mean(), lb.mean(), txns, wr.mean()};
}

}  // namespace dtm
