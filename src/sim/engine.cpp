#include "sim/engine.hpp"

#include <algorithm>
#include <set>

namespace dtm {

SyncEngine::SyncEngine(std::shared_ptr<const DistanceOracle> oracle,
                       std::vector<ObjectOrigin> origins, Options opts)
    : oracle_(std::move(oracle)), opts_(opts), origins_(std::move(origins)) {
  DTM_REQUIRE(oracle_ != nullptr, "engine needs a distance oracle");
  DTM_REQUIRE(opts_.latency_factor >= 1,
              "latency factor " << opts_.latency_factor);
  objects_.reserve(origins_.size());
  for (const auto& o : origins_) {
    DTM_REQUIRE(o.node >= 0 && o.node < oracle_->num_nodes(),
                "object " << o.id << " origin node " << o.node);
    DTM_REQUIRE(o.created <= 0, "objects must exist from the start of the "
                                "simulation (object " << o.id << ")");
    ObjEntry e;
    e.id = o.id;
    e.state = ObjectState(o.id, o.node, o.created);
    objects_.push_back(std::move(e));
  }
  std::sort(objects_.begin(), objects_.end(),
            [](const ObjEntry& a, const ObjEntry& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < objects_.size(); ++i)
    DTM_CHECK(objects_[i - 1].id != objects_[i].id,
              "duplicate object id " << objects_[i].id);
}

const SyncEngine::ObjEntry* SyncEngine::find_obj(ObjId o) const {
  const auto it = std::lower_bound(
      objects_.begin(), objects_.end(), o,
      [](const ObjEntry& e, ObjId id) { return e.id < id; });
  if (it == objects_.end() || it->id != o) return nullptr;
  return &*it;
}

SyncEngine::ObjEntry* SyncEngine::find_obj(ObjId o) {
  return const_cast<ObjEntry*>(
      static_cast<const SyncEngine*>(this)->find_obj(o));
}

SyncEngine::ObjEntry& SyncEngine::obj_entry(ObjId o) {
  ObjEntry* e = find_obj(o);
  DTM_REQUIRE(e != nullptr, "unknown object " << o);
  return *e;
}

const ObjectState& SyncEngine::object(ObjId o) const {
  const ObjEntry* e = find_obj(o);
  DTM_REQUIRE(e != nullptr, "unknown object " << o);
  return e->state;
}

const Transaction& SyncEngine::txn(TxnId t) const {
  const auto it = live_.find(t);
  DTM_REQUIRE(it != live_.end(), "txn " << t << " is not live");
  return it->second.txn;
}

Time SyncEngine::assigned_exec(TxnId t) const {
  const auto it = live_.find(t);
  DTM_REQUIRE(it != live_.end(), "txn " << t << " is not live");
  return it->second.exec;
}

std::span<const TxnId> SyncEngine::live_txns() const {
  if (live_ids_dirty_) {
    live_ids_.clear();
    live_ids_.reserve(live_.size());
    for (const auto& [id, _] : live_) live_ids_.push_back(id);
    live_ids_dirty_ = false;
  }
  return live_ids_;
}

std::span<const TxnId> SyncEngine::live_users_of(ObjId o) const {
  const ObjEntry* e = find_obj(o);
  if (e == nullptr) return {};
  return e->users;
}

void SyncEngine::begin_step(std::span<const Transaction> arrivals) {
  for (const Transaction& t : arrivals) {
    DTM_REQUIRE(t.gen_time == now_, "arrival " << t.id << " gen "
                                               << t.gen_time << " at step "
                                               << now_);
    DTM_REQUIRE(t.node >= 0 && t.node < oracle_->num_nodes(),
                "txn " << t.id << " node " << t.node);
    DTM_REQUIRE(!t.accesses.empty(), "txn " << t.id << " requests nothing");
    for (const auto& a : t.accesses)
      DTM_REQUIRE(find_obj(a.obj) != nullptr,
                  "txn " << t.id << " requests unknown object " << a.obj);
    const bool inserted = live_.emplace(t.id, LiveTxn{t, kNoTime}).second;
    DTM_CHECK(inserted, "duplicate txn id " << t.id);
    live_ids_dirty_ = true;
    for (const auto& a : t.accesses) obj_entry(a.obj).users.push_back(t.id);
  }
}

void SyncEngine::apply(std::span<const Assignment> assignments) {
  for (const Assignment& a : assignments) {
    const auto it = live_.find(a.txn);
    DTM_REQUIRE(it != live_.end(), "assignment for non-live txn " << a.txn);
    DTM_REQUIRE(it->second.exec == kNoTime,
                "txn " << a.txn << " already scheduled (schedules are "
                       "irrevocable)");
    DTM_REQUIRE(a.exec >= now_, "txn " << a.txn << " scheduled in the past ("
                                       << a.exec << " < " << now_ << ")");
    it->second.exec = a.exec;
    if (opts_.mode != Mode::kScan) {
      calendar_.emplace(a.exec, a.txn);
      for (const auto& acc : it->second.txn.accesses)
        obj_entry(acc.obj).sched.emplace(a.exec, a.txn);
    }
  }
  // Re-route after all assignments land so each object sees the final
  // earliest-deadline user of this step.
  for (const Assignment& a : assignments)
    for (const auto& acc : live_.at(a.txn).txn.accesses) reroute(acc.obj);
}

TxnId SyncEngine::reroute_target_scan(const ObjEntry& e) const {
  TxnId best = kNoTxn;
  Time best_exec = kNoTime;
  for (const TxnId uid : e.users) {
    const Time ex = live_.at(uid).exec;
    if (ex == kNoTime) continue;
    if (best == kNoTxn || ex < best_exec ||
        (ex == best_exec && uid < best)) {
      best = uid;
      best_exec = ex;
    }
  }
  return best;
}

TxnId SyncEngine::reroute_target_calendar(ObjEntry& e) {
  // Entries go stale only when their transaction commits (assignments are
  // irrevocable), so the first live top is the earliest scheduled user —
  // the (exec, id) heap order reproduces the scan's tie-break exactly.
  while (!e.sched.empty()) {
    const TxnId uid = e.sched.top().second;
    if (live_.count(uid)) return uid;
    e.sched.pop();
  }
  return kNoTxn;
}

void SyncEngine::reroute(ObjId o) {
  ObjEntry& e = obj_entry(o);
  TxnId best = kNoTxn;
  switch (opts_.mode) {
    case Mode::kScan:
      best = reroute_target_scan(e);
      break;
    case Mode::kCalendar:
      best = reroute_target_calendar(e);
      break;
    case Mode::kVerify: {
      best = reroute_target_calendar(e);
      const TxnId scan = reroute_target_scan(e);
      DTM_CHECK(best == scan, "reroute(" << o << ") diverges: calendar "
                                         << best << " vs scan " << scan);
      break;
    }
  }
  if (best == kNoTxn) return;
  e.state.route_to(live_.at(best).txn.node, now_, *oracle_,
                   opts_.latency_factor);
  if (opts_.mode != Mode::kScan && e.state.in_transit())
    settle_queue_.emplace(
        e.state.arrive_time(),
        static_cast<std::int32_t>(&e - objects_.data()));
}

void SyncEngine::drain_settle_queue() {
  while (!settle_queue_.empty() && settle_queue_.top().first <= now_) {
    objects_[static_cast<std::size_t>(settle_queue_.top().second)]
        .state.settle(now_);
    settle_queue_.pop();
  }
}

std::vector<SyncEngine::Commit> SyncEngine::finish_step() {
  const Mode mode = opts_.mode;
  due_scratch_.clear();
  if (mode == Mode::kScan) {
    for (auto& e : objects_) e.state.settle(now_);
    for (const auto& [id, lt] : live_) {
      DTM_CHECK(lt.exec == kNoTime || lt.exec >= now_,
                "txn " << id << " missed its execution step " << lt.exec
                       << " (now " << now_ << ")");
      if (lt.exec == now_) due_scratch_.push_back(id);
    }
  } else {
    drain_settle_queue();
    if (!calendar_.empty())
      DTM_CHECK(calendar_.top().first >= now_,
                "txn " << calendar_.top().second
                       << " missed its execution step "
                       << calendar_.top().first << " (now " << now_ << ")");
    // Equal-time entries pop in ascending id order — the same order the
    // scan derives from live_'s sorted iteration.
    while (!calendar_.empty() && calendar_.top().first == now_) {
      due_scratch_.push_back(calendar_.top().second);
      calendar_.pop();
    }
    if (mode == Mode::kVerify) {
      for (const auto& e : objects_)
        DTM_CHECK(!(e.state.in_transit() && e.state.arrive_time() <= now_),
                  "object " << e.id << " missed settlement at step " << now_);
      std::vector<TxnId> scan_due;
      for (const auto& [id, lt] : live_) {
        DTM_CHECK(lt.exec == kNoTime || lt.exec >= now_,
                  "txn " << id << " missed its execution step " << lt.exec
                         << " (now " << now_ << ")");
        if (lt.exec == now_) scan_due.push_back(id);
      }
      DTM_CHECK(scan_due == due_scratch_,
                "calendar due set diverges from scan at step " << now_);
    }
  }

  // Fire everyone due now. Two due transactions sharing an object would be
  // an invalid schedule — the presence check below can only pass for one of
  // them, and the engine flags the other.
  std::vector<Commit> commits;
  commits.reserve(due_scratch_.size());
  std::vector<ObjId> released;
  std::set<ObjId> consumed_this_step;
  for (const TxnId id : due_scratch_) {
    const auto lit = live_.find(id);
    LiveTxn lt = std::move(lit->second);
    for (const auto& acc : lt.txn.accesses) {
      // One commit per object per step: even two transactions on the same
      // node must serialize on a shared object (the model's conflict
      // semantics; matches validate_schedule's tie rule).
      DTM_CHECK(consumed_this_step.insert(acc.obj).second,
                "object " << acc.obj << " used by two transactions at step "
                          << now_ << " (txn " << id << ")");
      ObjEntry& e = obj_entry(acc.obj);
      e.state.settle(now_);
      DTM_CHECK(!e.state.in_transit() && e.state.at() == lt.txn.node,
                "txn " << id << " executing at step " << now_ << " on node "
                       << lt.txn.node << " lacks object " << acc.obj
                       << (e.state.in_transit()
                               ? " (in transit)"
                               : " (resting at node " +
                                     std::to_string(e.state.at()) + ")"));
      e.state.set_last_txn(id);
    }
    for (const auto& acc : lt.txn.accesses) {
      auto& users = obj_entry(acc.obj).users;
      users.erase(std::remove(users.begin(), users.end(), id), users.end());
      released.push_back(acc.obj);
    }
    commits.push_back({id, lt.txn.node, lt.txn.gen_time, lt.exec});
    committed_.push_back({std::move(lt.txn), lt.exec});
    live_.erase(lit);
    live_ids_dirty_ = true;
  }
  // Forward released objects to their next scheduled user.
  for (const ObjId o : released) reroute(o);
  now_ += 1;
  return commits;
}

void SyncEngine::advance_to(Time t) {
  DTM_REQUIRE(t >= now_, "advance_to(" << t << ") before now " << now_);
  const Time due = next_exec_due();
  DTM_CHECK(due == kNoTime || due >= t,
            "advance_to(" << t << ") would skip execution at " << due);
  now_ = t;
}

Time SyncEngine::next_exec_due() const {
  if (opts_.mode == Mode::kCalendar)
    return calendar_.empty() ? kNoTime : calendar_.top().first;
  Time due = kNoTime;
  for (const auto& [_, lt] : live_) {
    if (lt.exec == kNoTime) continue;
    due = due == kNoTime ? lt.exec : std::min(due, lt.exec);
  }
  if (opts_.mode == Mode::kVerify) {
    const Time cal = calendar_.empty() ? kNoTime : calendar_.top().first;
    DTM_CHECK(cal == due, "next_exec_due diverges: calendar " << cal
                          << " vs scan " << due << " (now " << now_ << ")");
  }
  return due;
}

}  // namespace dtm
