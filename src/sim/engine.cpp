#include "sim/engine.hpp"

#include <algorithm>
#include <set>

namespace dtm {

SyncEngine::SyncEngine(std::shared_ptr<const DistanceOracle> oracle,
                       std::vector<ObjectOrigin> origins, Options opts)
    : oracle_(std::move(oracle)), opts_(opts), origins_(std::move(origins)) {
  DTM_REQUIRE(oracle_ != nullptr, "engine needs a distance oracle");
  DTM_REQUIRE(opts_.latency_factor >= 1,
              "latency factor " << opts_.latency_factor);
  for (const auto& o : origins_) {
    DTM_REQUIRE(o.node >= 0 && o.node < oracle_->num_nodes(),
                "object " << o.id << " origin node " << o.node);
    DTM_REQUIRE(o.created <= 0, "objects must exist from the start of the "
                                "simulation (object " << o.id << ")");
    const bool inserted =
        objects_.emplace(o.id, ObjectState(o.id, o.node, o.created)).second;
    DTM_CHECK(inserted, "duplicate object id " << o.id);
  }
}

const ObjectState& SyncEngine::object(ObjId o) const {
  const auto it = objects_.find(o);
  DTM_REQUIRE(it != objects_.end(), "unknown object " << o);
  return it->second;
}

const Transaction& SyncEngine::txn(TxnId t) const {
  const auto it = live_.find(t);
  DTM_REQUIRE(it != live_.end(), "txn " << t << " is not live");
  return it->second.txn;
}

Time SyncEngine::assigned_exec(TxnId t) const {
  const auto it = live_.find(t);
  DTM_REQUIRE(it != live_.end(), "txn " << t << " is not live");
  return it->second.exec;
}

std::vector<TxnId> SyncEngine::live_txns() const {
  std::vector<TxnId> out;
  out.reserve(live_.size());
  for (const auto& [id, _] : live_) out.push_back(id);
  return out;
}

std::vector<TxnId> SyncEngine::live_users_of(ObjId o) const {
  const auto it = users_of_.find(o);
  if (it == users_of_.end()) return {};
  return it->second;
}

void SyncEngine::begin_step(std::span<const Transaction> arrivals) {
  for (const Transaction& t : arrivals) {
    DTM_REQUIRE(t.gen_time == now_, "arrival " << t.id << " gen "
                                               << t.gen_time << " at step "
                                               << now_);
    DTM_REQUIRE(t.node >= 0 && t.node < oracle_->num_nodes(),
                "txn " << t.id << " node " << t.node);
    DTM_REQUIRE(!t.accesses.empty(), "txn " << t.id << " requests nothing");
    for (const auto& a : t.accesses)
      DTM_REQUIRE(objects_.count(a.obj), "txn " << t.id
                                                << " requests unknown object "
                                                << a.obj);
    const bool inserted = live_.emplace(t.id, LiveTxn{t, kNoTime}).second;
    DTM_CHECK(inserted, "duplicate txn id " << t.id);
    for (const auto& a : t.accesses) users_of_[a.obj].push_back(t.id);
  }
}

void SyncEngine::apply(std::span<const Assignment> assignments) {
  for (const Assignment& a : assignments) {
    const auto it = live_.find(a.txn);
    DTM_REQUIRE(it != live_.end(), "assignment for non-live txn " << a.txn);
    DTM_REQUIRE(it->second.exec == kNoTime,
                "txn " << a.txn << " already scheduled (schedules are "
                       "irrevocable)");
    DTM_REQUIRE(a.exec >= now_, "txn " << a.txn << " scheduled in the past ("
                                       << a.exec << " < " << now_ << ")");
    it->second.exec = a.exec;
  }
  // Re-route after all assignments land so each object sees the final
  // earliest-deadline user of this step.
  for (const Assignment& a : assignments)
    for (const auto& acc : live_.at(a.txn).txn.accesses) reroute(acc.obj);
}

void SyncEngine::reroute(ObjId o) {
  const auto uit = users_of_.find(o);
  if (uit == users_of_.end()) return;
  TxnId best = kNoTxn;
  Time best_exec = kNoTime;
  for (const TxnId uid : uit->second) {
    const Time e = live_.at(uid).exec;
    if (e == kNoTime) continue;
    if (best == kNoTxn || e < best_exec ||
        (e == best_exec && uid < best)) {
      best = uid;
      best_exec = e;
    }
  }
  if (best == kNoTxn) return;
  objects_.at(o).route_to(live_.at(best).txn.node, now_, *oracle_,
                          opts_.latency_factor);
}

std::vector<SyncEngine::Commit> SyncEngine::finish_step() {
  for (auto& [_, obj] : objects_) obj.settle(now_);

  // Collect everyone due now; then fire. Two due transactions sharing an
  // object would be an invalid schedule — the presence check below can only
  // pass for one of them, and the engine flags the other.
  std::vector<TxnId> due;
  for (const auto& [id, lt] : live_) {
    DTM_CHECK(lt.exec == kNoTime || lt.exec >= now_,
              "txn " << id << " missed its execution step " << lt.exec
                     << " (now " << now_ << ")");
    if (lt.exec == now_) due.push_back(id);
  }

  std::vector<Commit> commits;
  commits.reserve(due.size());
  std::vector<ObjId> released;
  std::set<ObjId> consumed_this_step;
  for (const TxnId id : due) {
    const LiveTxn lt = live_.at(id);
    for (const auto& acc : lt.txn.accesses) {
      // One commit per object per step: even two transactions on the same
      // node must serialize on a shared object (the model's conflict
      // semantics; matches validate_schedule's tie rule).
      DTM_CHECK(consumed_this_step.insert(acc.obj).second,
                "object " << acc.obj << " used by two transactions at step "
                          << now_ << " (txn " << id << ")");
      ObjectState& obj = objects_.at(acc.obj);
      obj.settle(now_);
      DTM_CHECK(!obj.in_transit() && obj.at() == lt.txn.node,
                "txn " << id << " executing at step " << now_ << " on node "
                       << lt.txn.node << " lacks object " << acc.obj
                       << (obj.in_transit()
                               ? " (in transit)"
                               : " (resting at node " +
                                     std::to_string(obj.at()) + ")"));
      obj.set_last_txn(id);
    }
    commits.push_back({id, lt.txn.node, lt.txn.gen_time, lt.exec});
    committed_.push_back({lt.txn, lt.exec});
    for (const auto& acc : lt.txn.accesses) {
      auto& users = users_of_.at(acc.obj);
      users.erase(std::remove(users.begin(), users.end(), id), users.end());
      released.push_back(acc.obj);
    }
    live_.erase(id);
  }
  // Forward released objects to their next scheduled user.
  for (const ObjId o : released) reroute(o);
  now_ += 1;
  return commits;
}

void SyncEngine::advance_to(Time t) {
  DTM_REQUIRE(t >= now_, "advance_to(" << t << ") before now " << now_);
  const Time due = next_exec_due();
  DTM_CHECK(due == kNoTime || due >= t,
            "advance_to(" << t << ") would skip execution at " << due);
  now_ = t;
}

Time SyncEngine::next_exec_due() const {
  Time due = kNoTime;
  for (const auto& [_, lt] : live_) {
    if (lt.exec == kNoTime) continue;
    due = due == kNoTime ? lt.exec : std::min(due, lt.exec);
  }
  return due;
}

}  // namespace dtm
