#include "sim/engine.hpp"

#include <algorithm>
#include <set>

namespace dtm {

SyncEngine::SyncEngine(std::shared_ptr<const DistanceOracle> oracle,
                       std::vector<ObjectOrigin> origins, Options opts)
    : oracle_([&] {
        DTM_REQUIRE(oracle != nullptr, "engine needs a distance oracle");
        return std::move(oracle);
      }()),
      opts_(opts),
      store_(std::move(origins), *oracle_),
      transport_(
          std::make_unique<SyncObjectTransport>(store_, *oracle_, opts_)) {
  DTM_REQUIRE(opts_.latency_factor >= 1,
              "latency factor " << opts_.latency_factor);
  DTM_REQUIRE(opts_.threads >= 0, "engine threads " << opts_.threads);
  if (opts_.mode == Mode::kVerifyParallel) {
    // Same oracle, same origins, same fault plan — only the bookkeeping
    // differs: the twin runs the plain serial calendar path, so every
    // lockstep divergence indicts the parallel sharding.
    Options twin = opts_;
    twin.mode = Mode::kCalendar;
    twin.threads = 1;
    shadow_ = std::make_unique<SyncEngine>(oracle_, store_.origins(), twin);
  }
}

const ObjectState& SyncEngine::object(ObjId o) const {
  const TxnStore::ObjEntry* e = store_.find_obj(o);
  DTM_REQUIRE(e != nullptr, "unknown object " << o);
  return e->state;
}

const Transaction& SyncEngine::txn(TxnId t) const {
  const auto it = store_.live().find(t);
  DTM_REQUIRE(it != store_.live().end(), "txn " << t << " is not live");
  return it->second.txn;
}

Time SyncEngine::assigned_exec(TxnId t) const {
  const auto it = store_.live().find(t);
  DTM_REQUIRE(it != store_.live().end(), "txn " << t << " is not live");
  return it->second.exec;
}

std::span<const TxnId> SyncEngine::live_users_of(ObjId o) const {
  const TxnStore::ObjEntry* e = store_.find_obj(o);
  if (e == nullptr) return {};
  return e->users;
}

void SyncEngine::begin_step(std::span<const Transaction> arrivals) {
  const Time now = clock_.now();
  for (const Transaction& t : arrivals) {
    DTM_REQUIRE(t.gen_time == now, "arrival " << t.id << " gen "
                                              << t.gen_time << " at step "
                                              << now);
    DTM_REQUIRE(t.node >= 0 && t.node < oracle_->num_nodes(),
                "txn " << t.id << " node " << t.node);
    DTM_REQUIRE(!t.accesses.empty(), "txn " << t.id << " requests nothing");
    for (const auto& a : t.accesses)
      DTM_REQUIRE(store_.find_obj(a.obj) != nullptr,
                  "txn " << t.id << " requests unknown object " << a.obj);
    store_.add_live(t);
  }
  if (shadow_) shadow_->begin_step(arrivals);
}

void SyncEngine::apply(std::span<const Assignment> assignments) {
  auto& live = store_.live();
  const Time now = clock_.now();
  for (const Assignment& a : assignments) {
    const auto it = live.find(a.txn);
    DTM_REQUIRE(it != live.end(), "assignment for non-live txn " << a.txn);
    DTM_REQUIRE(it->second.exec == kNoTime,
                "txn " << a.txn << " already scheduled (schedules are "
                       "irrevocable)");
    DTM_REQUIRE(a.exec >= now, "txn " << a.txn << " scheduled in the past ("
                                      << a.exec << " < " << now << ")");
    it->second.exec = a.exec;
    if (opts_.mode != Mode::kScan) {
      clock_.schedule(a.exec, a.txn);
      for (const auto& acc : it->second.txn.accesses) {
        auto& e = store_.obj_entry(acc.obj);
        // A fresh entry can only lower the cached min; an empty heap means
        // no live scheduled user existed, so the entry IS the min (see the
        // ObjEntry invariant).
        const bool was_empty = e.sched.empty();
        e.sched.emplace(a.exec, a.txn);
        if (was_empty ||
            (e.best_user != kNoTxn &&
             (a.exec < e.best_exec ||
              (a.exec == e.best_exec && a.txn < e.best_user)))) {
          e.best_user = a.txn;
          e.best_exec = a.exec;
          e.best_node = it->second.txn.node;
        }
      }
    }
  }
  // Re-route after all assignments land so each object sees the final
  // earliest-deadline user of this step. The request list goes through
  // reroute_many so the transport can shard it by object ownership.
  reroute_scratch_.clear();
  for (const Assignment& a : assignments)
    for (const auto& acc : live.at(a.txn).txn.accesses)
      reroute_scratch_.push_back(acc.obj);
  transport_->reroute_many(reroute_scratch_, now);
  if (shadow_) shadow_->apply(assignments);
}

std::vector<SyncEngine::Commit> SyncEngine::finish_step() {
  const Mode mode = opts_.mode;
  const Time now = clock_.now();
  auto& live = store_.live();
  due_scratch_.clear();
  transport_->settle_arrivals(now);
  if (mode == Mode::kScan) {
    for (const auto& [id, lt] : live) {
      DTM_CHECK(lt.exec == kNoTime || lt.exec >= now,
                "txn " << id << " missed its execution step " << lt.exec
                       << " (now " << now << ")");
      if (lt.exec == now) due_scratch_.push_back(id);
    }
  } else {
    // Equal-time entries pop in ascending id order — the same order the
    // scan derives from the live map's sorted iteration.
    clock_.pop_due(due_scratch_);
    if (mode == Mode::kVerify) {
      transport_->verify_settled(now);
      std::vector<TxnId> scan_due;
      for (const auto& [id, lt] : live) {
        DTM_CHECK(lt.exec == kNoTime || lt.exec >= now,
                  "txn " << id << " missed its execution step " << lt.exec
                         << " (now " << now << ")");
        if (lt.exec == now) scan_due.push_back(id);
      }
      DTM_CHECK(scan_due == due_scratch_,
                "calendar due set diverges from scan at step " << now);
    }
  }

  // Fire everyone due now. Two due transactions sharing an object would be
  // an invalid schedule — the presence check below can only pass for one of
  // them, and the engine flags the other.
  std::vector<Commit> commits;
  commits.reserve(due_scratch_.size());
  std::vector<ObjId> released;
  std::set<ObjId> consumed_this_step;
  for (const TxnId id : due_scratch_) {
    const auto lit = live.find(id);
    const TxnStore::LiveTxn& lt = lit->second;
    for (const auto& acc : lt.txn.accesses) {
      // One commit per object per step: even two transactions on the same
      // node must serialize on a shared object (the model's conflict
      // semantics; matches validate_schedule's tie rule).
      DTM_CHECK(consumed_this_step.insert(acc.obj).second,
                "object " << acc.obj << " used by two transactions at step "
                          << now << " (txn " << id << ")");
      TxnStore::ObjEntry& e = store_.obj_entry(acc.obj);
      e.state.settle(now);
      DTM_CHECK(!e.state.in_transit() && e.state.at() == lt.txn.node,
                "txn " << id << " executing at step " << now << " on node "
                       << lt.txn.node << " lacks object " << acc.obj
                       << (e.state.in_transit()
                               ? " (in transit)"
                               : " (resting at node " +
                                     std::to_string(e.state.at()) + ")"));
      e.state.set_last_txn(id);
      released.push_back(acc.obj);
    }
    commits.push_back({id, lt.txn.node, lt.txn.gen_time, lt.exec});
    store_.commit(lit, lt.exec);
  }
  // Forward released objects to their next scheduled user.
  transport_->reroute_many(released, now);
  clock_.tick();
  if (shadow_) {
    const std::vector<Commit> twin = shadow_->finish_step();
    DTM_CHECK(twin.size() == commits.size(),
              "parallel engine committed " << commits.size()
                                           << " txns at step " << now
                                           << ", serial twin " << twin.size());
    for (std::size_t i = 0; i < commits.size(); ++i)
      DTM_CHECK(commits[i].txn == twin[i].txn &&
                    commits[i].node == twin[i].node &&
                    commits[i].gen == twin[i].gen &&
                    commits[i].exec == twin[i].exec,
                "parallel engine diverges from serial twin at step "
                    << now << ": commit " << i << " is txn " << commits[i].txn
                    << "@" << commits[i].exec << " vs " << twin[i].txn << "@"
                    << twin[i].exec);
  }
  return commits;
}

void SyncEngine::advance_to(Time t) {
  DTM_REQUIRE(t >= clock_.now(),
              "advance_to(" << t << ") before now " << clock_.now());
  const Time due = next_exec_due();
  DTM_CHECK(due == kNoTime || due >= t,
            "advance_to(" << t << ") would skip execution at " << due);
  clock_.advance_to(t);
  if (shadow_) shadow_->advance_to(t);
}

Time SyncEngine::next_exec_due() const {
  if (opts_.mode == Mode::kVerifyParallel) {
    const Time cal = clock_.next_scheduled();
    DTM_CHECK(cal == shadow_->next_exec_due(),
              "parallel engine next_exec_due " << cal
                                               << " diverges from serial twin "
                                               << shadow_->next_exec_due());
    return cal;
  }
  if (opts_.mode == Mode::kCalendar) return clock_.next_scheduled();
  Time due = kNoTime;
  for (const auto& [_, lt] : store_.live()) {
    if (lt.exec == kNoTime) continue;
    due = due == kNoTime ? lt.exec : std::min(due, lt.exec);
  }
  if (opts_.mode == Mode::kVerify) {
    const Time cal = clock_.next_scheduled();
    DTM_CHECK(cal == due, "next_exec_due diverges: calendar "
                              << cal << " vs scan " << due << " (now "
                              << clock_.now() << ")");
  }
  return due;
}

}  // namespace dtm
