// Registry + RunSpec: declarative, by-name construction of every component
// an experiment needs.
//
// A RunSpec names a topology, a workload, and a scheduler — each a Spec of
// `kind` plus string parameters — and the run-level knobs (engine mode,
// latency factor, seed, trials). Every binary (benches, examples, tests)
// goes through the same three factories, so a new scheduler or topology
// registered here is immediately reachable from every CLI and from JSON
// spec files, with one shared `--list` enumeration.
//
// Specs have two interchangeable surfaces:
//   compact strings   "cluster:alpha=3,beta=4,gamma=8"   (CLI flags)
//   JSON objects      {"kind": "cluster", "alpha": 3, ...} (spec files)
// Unknown parameter names are hard errors (SpecArgs tracks consumption), so
// a typo'd knob fails loudly instead of silently running defaults.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch_scheduler.hpp"
#include "core/scheduler.hpp"
#include "fault/plan.hpp"
#include "net/topology.hpp"
#include "serve/config.hpp"
#include "sim/runner.hpp"
#include "stream/config.hpp"
#include "sim/trials.hpp"
#include "sim/workload.hpp"
#include "util/json.hpp"

namespace dtm {

/// A named component: registry kind plus string-valued parameters.
struct Spec {
  std::string kind;
  std::map<std::string, std::string> params;

  friend bool operator==(const Spec&, const Spec&) = default;
};

/// Parses the compact form "kind" or "kind:key=value,key=value".
[[nodiscard]] Spec parse_spec(const std::string& text);

/// Inverse of parse_spec (params in map order).
[[nodiscard]] std::string to_string(const Spec& spec);

/// Typed parameter access with consumption tracking: factories pull the
/// keys they understand, then call finish(), which hard-errors on anything
/// left over.
class SpecArgs {
 public:
  explicit SpecArgs(const Spec& spec);

  [[nodiscard]] const std::string& kind() const { return kind_; }
  [[nodiscard]] bool has(const std::string& key) const {
    return remaining_.count(key) > 0;
  }
  [[nodiscard]] std::string str(const std::string& key, std::string def);
  [[nodiscard]] std::int64_t integer(const std::string& key,
                                     std::int64_t def);
  [[nodiscard]] double real(const std::string& key, double def);
  [[nodiscard]] bool boolean(const std::string& key, bool def);

  /// Throws CheckError listing any parameter no factory consumed.
  void finish() const;

 private:
  std::string kind_;
  std::map<std::string, std::string> remaining_;
};

/// The run-level configuration: what to build and how to drive it.
struct RunSpec {
  Spec topology{"clique", {{"n", "8"}}};
  Spec workload{"synthetic", {}};
  Spec scheduler{"greedy", {}};
  /// Fault-injection plan: "none" (default) or
  /// "fault:drop=...,dup=...,jitter=...,...". Absent from old JSON spec
  /// files, which therefore keep meaning "no faults".
  Spec fault{"none", {}};
  /// Service-mode shape: "serve:rate=...,duration=...,admit-rate=...,...".
  /// Only dtm_serve / make_server consume it; batch binaries carry the
  /// defaults along untouched. Absent from old JSON spec files.
  Spec serve{"serve", {}};
  /// Streaming-run shape: "stream:profile=...,rate=...,target=...,...".
  /// Only dtm_stream / make_stream_runner consume it; everything else
  /// carries the defaults along untouched. Absent from old JSON spec files.
  Spec stream{"stream", {}};
  std::string mode = "calendar";  ///< scan | calendar | verify | verify-parallel
  std::int64_t latency_factor = 1;
  std::uint64_t seed = 42;
  std::int32_t trials = 1;
  /// Worker threads for the simulation kernel (engine reroute sharding,
  /// bucket wave probing, activation retries, trial fan-out). 1 = serial,
  /// 0 = all hardware threads. Results are byte-identical at every value
  /// (ARCHITECTURE.md §8).
  std::int32_t threads = 1;
  Time ratio_window = 0;
  bool validate = true;

  [[nodiscard]] EngineOptions::Mode engine_mode() const;
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static RunSpec from_json(const Json& j);

  friend bool operator==(const RunSpec&, const RunSpec&) = default;
};

/// Static enumeration + construction of registered components.
class Registry {
 public:
  struct Entry {
    std::string name;
    std::string help;  ///< parameters and defaults, one line
  };

  [[nodiscard]] static const std::vector<Entry>& topologies();
  [[nodiscard]] static const std::vector<Entry>& schedulers();
  [[nodiscard]] static const std::vector<Entry>& workloads();
  [[nodiscard]] static const std::vector<Entry>& batch_algos();
  [[nodiscard]] static const std::vector<Entry>& fault_plans();
  [[nodiscard]] static const std::vector<Entry>& serve_configs();
  [[nodiscard]] static const std::vector<Entry>& stream_configs();

  [[nodiscard]] static Network make_network(const Spec& spec);

  /// `default_seed` seeds the generator unless the spec carries its own
  /// "seed" parameter (the RunSpec / --seed flag wins by default).
  [[nodiscard]] static std::unique_ptr<Workload> make_workload(
      const Spec& spec, const Network& net, std::uint64_t default_seed);

  /// The network is consulted for topology-aware defaults: bucket's
  /// algo=auto picks the per-topology offline algorithm, and the cluster /
  /// star / grid batch algorithms read their structural parameters from
  /// net.build_params.
  /// `fault`, when non-null, is copied into schedulers that take a plan
  /// (dist-bucket arms its FaultyBus + timeout protocol from it). Bus-level
  /// faults have no effect on schedulers that exchange no messages; the
  /// transport stall knob acts through EngineOptions instead.
  /// `threads` is the default worker-thread count for schedulers with a
  /// parallel insertion core (bucket / dist-bucket); a `threads=` spec
  /// parameter overrides it per scheduler.
  [[nodiscard]] static std::unique_ptr<OnlineScheduler> make_scheduler(
      const Spec& spec, const Network& net,
      const FaultPlan* fault = nullptr, std::int32_t threads = 1);

  [[nodiscard]] static std::shared_ptr<const BatchScheduler> make_batch_algo(
      const std::string& name, const Network& net);

  /// Builds a FaultPlan from a "none" or "fault:..." spec. Unknown knobs
  /// are hard errors; knob ranges are validated. `default_seed` seeds the
  /// plan unless the spec carries its own "seed" parameter.
  [[nodiscard]] static FaultPlan make_fault_plan(
      const Spec& spec, std::uint64_t default_seed = FaultPlan{}.seed);

  /// Inverse of make_fault_plan: "none" for a null plan, otherwise a
  /// "fault" spec listing every knob that differs from the defaults.
  [[nodiscard]] static Spec fault_to_spec(const FaultPlan& plan);

  /// Builds a ServeConfig from a "serve:..." spec. Unknown knobs are hard
  /// errors; ranges are validated. `default_seed` seeds the source unless
  /// the spec carries its own "seed" parameter.
  [[nodiscard]] static ServeConfig make_serve_config(
      const Spec& spec, std::uint64_t default_seed = ServeConfig{}.seed);

  /// Builds a StreamConfig from a "stream:..." spec. Unknown knobs are hard
  /// errors; ranges are validated. `default_seed` seeds the source unless
  /// the spec carries its own "seed" parameter.
  [[nodiscard]] static StreamConfig make_stream_config(
      const Spec& spec, std::uint64_t default_seed = StreamConfig{}.seed);
};

/// Builds everything the RunSpec names and runs one experiment (the spec's
/// base seed; trials is ignored). `collect_schedule` mirrors
/// RunOptions::collect_schedule.
[[nodiscard]] RunResult run_spec(const RunSpec& spec,
                                 bool collect_schedule = true);

/// Runs spec.trials independent seeds (seed + t * 7919) and averages the
/// headline metrics.
[[nodiscard]] TrialSummary run_spec_trials(const RunSpec& spec);

}  // namespace dtm
