// Experiment runner: wires a network, a workload, and an online scheduler
// into the synchronous engine, fast-forwards idle stretches, validates the
// resulting schedule, and reports metrics (makespan, latency, certified
// lower bound, and the competitive-ratio proxy makespan / LB).
#pragma once

#include <string>

#include "core/lower_bound.hpp"
#include "core/scheduler.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"

namespace dtm {

struct RunOptions {
  SyncEngine::Options engine;
  /// Hard step cap: a scheduler that never finishes the workload is a bug.
  Time max_steps = Time{1} << 40;
  /// Post-hoc chain validation of the full committed schedule (the engine
  /// already verifies object presence at every commit; this re-checks the
  /// schedule independently).
  bool validate = true;
  /// Window length for the paper's Definition-1 competitive ratio proxy:
  /// arrivals are grouped into windows of this many steps; each window's
  /// worst latency is divided by a lower bound computed against the actual
  /// object positions at the window's start (snapshotted from the engine).
  /// 0 disables windowed accounting.
  Time ratio_window = 0;
  /// Populate RunResult::committed / ::origins (moved out of the engine,
  /// never copied). Averaging loops that only read the headline metrics
  /// turn this off and skip the allocation entirely.
  bool collect_schedule = true;
  /// When > 0, drain the engine's committed log every this-many simulated
  /// steps (TxnStore::take_committed): headline metrics are accumulated
  /// incrementally at commit time and the entries are discarded, so the
  /// run's memory footprint stays bounded by the drain cadence instead of
  /// the workload size. Incompatible with everything that needs the full
  /// log retained — requires !validate, ratio_window == 0, and
  /// !collect_schedule (hard errors otherwise). 0 keeps the log (default).
  Time drain_every = 0;
};

struct RunResult {
  std::string scheduler;
  std::string network;
  std::int64_t num_txns = 0;
  /// Simulated steps the engine actually executed (idle stretches are
  /// fast-forwarded); the denominator for steps/sec throughput reporting.
  std::int64_t active_steps = 0;
  Time makespan = 0;          ///< last commit time
  OnlineStats latency;        ///< per-transaction exec - gen
  LowerBoundBreakdown lb;     ///< certified bound on the optimal makespan
  double ratio = 0.0;         ///< makespan / lb.best()  (>= true comp. ratio)

  /// Definition-1 proxy (only when RunOptions::ratio_window > 0): the worst
  /// over windows of (max latency of the window's transactions) / (lower
  /// bound for that window given object positions at its start).
  double windowed_ratio = 0.0;
  std::int64_t num_windows = 0;

  /// Drain accounting (only when RunOptions::drain_every > 0): committed
  /// entries discarded (every commit, after the final drain — checked
  /// against num_txns), and the largest the retained log ever grew — the
  /// bounded-memory evidence the cadence is meant to buy.
  std::int64_t drained = 0;
  std::int64_t peak_committed_log = 0;

  /// The full committed schedule and the object origins — input to the
  /// congestion replay and the gantt/itinerary renderers. Empty when
  /// RunOptions::collect_schedule is false.
  std::vector<ScheduledTxn> committed;
  std::vector<ObjectOrigin> origins;
};

[[nodiscard]] RunResult run_experiment(const Network& net, Workload& workload,
                                       OnlineScheduler& scheduler,
                                       const RunOptions& opts = {});

}  // namespace dtm
