#include "sim/trials.hpp"

#include <algorithm>

#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace dtm {

TrialSummary run_seeded_trials(const Network& net, const SyntheticOptions& wopts,
                        const SchedulerFactory& make_scheduler,
                        const TrialOptions& opts) {
  // Trials are fully independent (seed + t * 7919 each), so they fan out
  // across the pool; folding the per-trial results in index order afterwards
  // makes the summary byte-identical to the serial loop at any thread count.
  const auto run_one = [&](std::int64_t t) {
    SyntheticOptions o = wopts;
    o.seed = wopts.seed + static_cast<std::uint64_t>(t) * 7919;
    SyntheticWorkload wl(net, o);
    auto sched = make_scheduler();
    RunOptions ropts;
    ropts.engine.latency_factor = opts.latency_factor;
    // Engine-level parallelism composes: with one trial it gets the pool to
    // itself; with many, nested run() calls degrade to inline serial.
    ropts.engine.threads = opts.threads;
    ropts.ratio_window = opts.ratio_window;
    ropts.collect_schedule = false;  // summaries only — skip the copy
    return run_experiment(net, wl, *sched, ropts);
  };
  const std::vector<RunResult> results = parallel_map<RunResult>(
      opts.trials, run_one, resolve_threads(opts.threads));
  OnlineStats ratio, mk, lat, lb, wr;
  std::int64_t txns = 0;
  for (const RunResult& r : results) {
    ratio.add(r.ratio);
    mk.add(static_cast<double>(r.makespan));
    lat.add(r.latency.mean());
    lb.add(static_cast<double>(r.lb.best()));
    wr.add(r.windowed_ratio);
    txns = r.num_txns;
  }
  return {ratio.mean(), mk.mean(), lat.mean(), lb.mean(), txns, wr.mean()};
}

std::vector<Network> small_networks() {
  Rng rng(7);
  std::vector<Network> nets;
  nets.push_back(make_clique(8));
  nets.push_back(make_line(12));
  nets.push_back(make_ring(9));
  nets.push_back(make_grid({3, 4}));
  nets.push_back(make_hypercube(3));
  nets.push_back(make_butterfly(2));
  nets.push_back(make_star(3, 3));
  nets.push_back(make_cluster(3, 3, 4));
  nets.push_back(make_torus({3, 3}));
  nets.push_back(make_random_connected(10, 12, 3, rng));
  return nets;
}

Network random_topology(Rng& rng) {
  switch (rng.uniform_int(0, 9)) {
    case 0: return make_clique(static_cast<NodeId>(rng.uniform_int(2, 24)));
    case 1: return make_line(static_cast<NodeId>(rng.uniform_int(2, 40)));
    case 2: return make_ring(static_cast<NodeId>(rng.uniform_int(3, 30)));
    case 3:
      return make_grid({static_cast<NodeId>(rng.uniform_int(2, 6)),
                        static_cast<NodeId>(rng.uniform_int(2, 6))});
    case 4: return make_hypercube(static_cast<int>(rng.uniform_int(1, 5)));
    case 5: return make_butterfly(static_cast<int>(rng.uniform_int(1, 3)));
    case 6:
      return make_star(static_cast<NodeId>(rng.uniform_int(1, 6)),
                       static_cast<NodeId>(rng.uniform_int(1, 6)));
    case 7: {
      const auto beta = static_cast<NodeId>(rng.uniform_int(1, 5));
      return make_cluster(static_cast<NodeId>(rng.uniform_int(1, 5)), beta,
                          beta + rng.uniform_int(0, 6));
    }
    case 8:
      return make_tree(static_cast<NodeId>(rng.uniform_int(2, 3)),
                       static_cast<NodeId>(rng.uniform_int(1, 4)));
    default: {
      const auto n = static_cast<NodeId>(rng.uniform_int(2, 30));
      return make_random_connected(n, rng.uniform_int(0, 2 * n), 4, rng);
    }
  }
}

SyntheticOptions random_workload(const Network& net, Rng& rng) {
  SyntheticOptions w;
  w.num_objects = static_cast<std::int32_t>(
      rng.uniform_int(1, std::max<NodeId>(net.num_nodes(), 2)));
  w.k = static_cast<std::int32_t>(
      rng.uniform_int(1, std::min<std::int32_t>(3, w.num_objects)));
  w.rounds = static_cast<std::int32_t>(rng.uniform_int(1, 3));
  w.zipf_s = rng.bernoulli(0.5) ? rng.uniform01() * 1.5 : 0.0;
  w.arrival_prob = rng.bernoulli(0.3) ? 0.2 : 0.0;
  w.node_participation = rng.bernoulli(0.3) ? 0.5 : 1.0;
  w.seed = rng();
  return w;
}

RunResult run_and_validate(const Network& net, Workload& wl,
                           OnlineScheduler& sched,
                           std::int64_t latency_factor) {
  RunOptions opts;
  opts.engine.latency_factor = latency_factor;
  opts.validate = true;
  return run_experiment(net, wl, sched, opts);
}

}  // namespace dtm
