// TxnStore — canonical simulation state (engine layering, layer 1).
//
// Owns the data every other layer reads: object records (position state,
// the object -> live-users inverted index the schedulers consume, and the
// per-object scheduled-user heap the transport's reroute consults), the
// live-transaction map with assigned execution times, and the committed
// log. Pure state + narrow accessors: stepping policy lives in SyncEngine,
// routing policy in ObjectTransport, time in EventClock.
#pragma once

#include <map>
#include <span>
#include <utility>
#include <vector>

#include "core/object_state.hpp"
#include "core/schedule.hpp"
#include "net/graph.hpp"
#include "sim/clock.hpp"

namespace dtm {

class TxnStore {
 public:
  struct LiveTxn {
    Transaction txn;
    Time exec = kNoTime;
  };

  /// An object's whole record: state, its live users in generation order,
  /// and a lazily pruned min-heap of its *scheduled* users keyed by
  /// (exec, txn) — the transport's reroute target oracle.
  ///
  /// best_* is a memoized reroute target (PERF.md §8): when best_user is
  /// set, (best_exec, best_user) IS the minimum (exec, id) over this
  /// object's live scheduled users and best_node is that transaction's
  /// home. Invariant maintenance: the engine improves it on every new
  /// assignment (a fresh entry can only lower the min), commit() clears it
  /// when the cached transaction commits (the only event that can remove
  /// the min — any other commit removes a non-minimal user), and the
  /// transport refreshes it from the heap when it is unset. An empty heap
  /// implies an unset cache, so the O(1) hit path needs no staleness check;
  /// kVerify cross-checks every lookup against the linear scan.
  struct ObjEntry {
    ObjId id = kNoObj;
    ObjectState state;
    std::vector<TxnId> users;
    EventClock::MinHeap<TxnId> sched;
    TxnId best_user = kNoTxn;
    Time best_exec = kNoTime;
    NodeId best_node = kNoNode;
  };

  TxnStore(std::vector<ObjectOrigin> origins, const DistanceOracle& oracle);

  // ---- Objects ----
  [[nodiscard]] const ObjEntry* find_obj(ObjId o) const;
  [[nodiscard]] ObjEntry* find_obj(ObjId o);
  /// Like find_obj but requires the object to exist.
  [[nodiscard]] ObjEntry& obj_entry(ObjId o);
  [[nodiscard]] std::vector<ObjEntry>& objects() { return objects_; }
  [[nodiscard]] const std::vector<ObjEntry>& objects() const {
    return objects_;
  }
  /// Stable dense index of an entry (settle-queue key).
  [[nodiscard]] std::int32_t obj_index(const ObjEntry& e) const {
    return static_cast<std::int32_t>(&e - objects_.data());
  }
  [[nodiscard]] ObjEntry& obj_at(std::int32_t index) {
    return objects_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] const std::vector<ObjectOrigin>& origins() const {
    return origins_;
  }

  // ---- Live transactions ----
  [[nodiscard]] std::map<TxnId, LiveTxn>& live() { return live_; }
  [[nodiscard]] const std::map<TxnId, LiveTxn>& live() const { return live_; }

  /// Registers a validated arrival and indexes it under its objects.
  void add_live(const Transaction& t);

  /// Removes a committed transaction from the live set and the user index
  /// of its objects, and appends it to the committed log.
  void commit(std::map<TxnId, LiveTxn>::iterator it, Time exec);

  /// Live transaction ids in id order (lazily rebuilt snapshot).
  [[nodiscard]] std::span<const TxnId> live_ids() const;

  // ---- Committed log ----
  [[nodiscard]] const std::vector<ScheduledTxn>& committed() const {
    return committed_;
  }
  /// Drains the committed log, leaving it empty (std::exchange, not a bare
  /// move, so repeated drains are well-defined). End-of-run result assembly
  /// takes it once; the serve loop calls this periodically so memory stays
  /// bounded over unbounded runs — the store keeps no other per-committed
  /// state, so draining never affects future steps.
  [[nodiscard]] std::vector<ScheduledTxn> take_committed() {
    return std::exchange(committed_, {});
  }

 private:
  std::vector<ObjEntry> objects_;  ///< sorted by id; immutable id set
  std::vector<ObjectOrigin> origins_;
  std::map<TxnId, LiveTxn> live_;
  std::vector<ScheduledTxn> committed_;

  mutable std::vector<TxnId> live_ids_;
  mutable bool live_ids_dirty_ = false;
};

}  // namespace dtm
