#include "sim/analysis.hpp"

#include <algorithm>
#include <sstream>

namespace dtm {

RunReport analyze_run(const std::vector<ScheduledTxn>& scheduled,
                      const std::vector<ObjectOrigin>& origins,
                      const DistanceOracle& oracle) {
  RunReport r;
  r.txns = static_cast<std::int64_t>(scheduled.size());
  if (scheduled.empty()) return r;

  struct Visit {
    Time exec;
    TxnId id;
    NodeId node;
  };
  std::map<ObjId, std::vector<Visit>> visits;
  std::map<NodeId, std::int64_t> node_commits;
  std::map<Time, std::int64_t> step_commits;
  for (const auto& s : scheduled) {
    r.makespan = std::max(r.makespan, s.exec);
    ++node_commits[s.txn.node];
    ++step_commits[s.exec];
    for (const auto& a : s.txn.accesses)
      visits[a.obj].push_back({s.exec, s.txn.id, s.txn.node});
  }

  std::map<ObjId, NodeId> origin_of;
  for (const auto& o : origins) origin_of[o.id] = o.node;

  std::int64_t total_users = 0;
  for (auto& [obj, vs] : visits) {
    std::sort(vs.begin(), vs.end(), [](const Visit& a, const Visit& b) {
      return a.exec < b.exec || (a.exec == b.exec && a.id < b.id);
    });
    const auto oit = origin_of.find(obj);
    DTM_REQUIRE(oit != origin_of.end(), "object " << obj << " lacks origin");
    NodeId pos = oit->second;
    std::int64_t travel = 0;
    for (const auto& v : vs) {
      travel += oracle.dist(pos, v.node);
      pos = v.node;
    }
    r.total_object_distance += travel;
    r.max_object_distance = std::max(r.max_object_distance, travel);
    const auto users = static_cast<std::int64_t>(vs.size());
    total_users += users;
    if (users > r.busiest_object_commits) {
      r.busiest_object_commits = users;
      r.busiest_object = obj;
    }
    r.lmax = std::max(r.lmax, users);
  }
  if (!visits.empty())
    r.mean_users_per_object =
        static_cast<double>(total_users) / static_cast<double>(visits.size());

  r.active_nodes = static_cast<std::int64_t>(node_commits.size());
  for (const auto& [_, c] : node_commits)
    r.max_node_commits = std::max(r.max_node_commits, c);
  std::int64_t commits = 0;
  for (const auto& [_, c] : step_commits) {
    commits += c;
    r.max_commits_per_step = std::max(r.max_commits_per_step, c);
  }
  r.mean_commits_per_busy_step =
      static_cast<double>(commits) /
      static_cast<double>(std::max<std::size_t>(step_commits.size(), 1));
  return r;
}

std::string to_string(const RunReport& r) {
  std::ostringstream os;
  os << "txns: " << r.txns << "\n"
     << "makespan: " << r.makespan << "\n"
     << "object distance (total/max): " << r.total_object_distance << "/"
     << r.max_object_distance << "\n"
     << "busiest object: " << r.busiest_object << " ("
     << r.busiest_object_commits << " commits, l_max " << r.lmax << ")\n"
     << "active nodes: " << r.active_nodes << " (max "
     << r.max_node_commits << " commits on one node)\n"
     << "concurrency: " << r.mean_commits_per_busy_step
     << " commits/busy step (peak " << r.max_commits_per_step << ")\n";
  return os.str();
}

}  // namespace dtm
