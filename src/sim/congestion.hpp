// Bounded link capacity — the execution-model extension the paper's
// concluding remarks (§VI) pose as an open question.
//
// The baseline model lets any number of objects cross an edge
// simultaneously. Here, each undirected edge admits at most
// `edge_capacity` objects per time step; surplus objects queue FIFO at the
// upstream node. Schedules computed for the congestion-free model are
// REPLAYED hop-by-hop under this constraint with *eager* execution
// semantics: each object visits its users in the schedule's execution
// order, and a transaction commits at the first step at which it is at the
// head of every requested object's user queue, all those objects have
// physically arrived, and its generation time has passed. Objects may be
// pre-positioned toward future users (the replay evaluates a known
// schedule offline, mirroring the live engine's routing toward scheduled
// users); only commits are gated on generation times. Because all
// per-object orders derive from one global (exec time, txn id) order, the
// waits-for relation is acyclic and the replay is deadlock-free; with
// unbounded capacity the replay never exceeds the scheduled makespan.
//
// The headline metric is the congestion *stretch*: achieved makespan over
// the congestion-free scheduled makespan.
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace dtm {

struct CongestionOptions {
  /// Objects admitted per undirected edge per step (0 = unbounded, which
  /// must reproduce the congestion-free commit times or better).
  std::int64_t edge_capacity = 1;
  /// Safety cap on simulated steps.
  Time max_steps = Time{1} << 32;
};

struct CongestionResult {
  Time scheduled_makespan = 0;  ///< congestion-free plan
  Time achieved_makespan = 0;   ///< hop-by-hop replay under capacity
  double stretch = 0.0;         ///< achieved / scheduled
  Time total_queue_wait = 0;    ///< object-steps spent waiting at queues
  Time max_queue_wait = 0;      ///< worst single wait
  std::vector<std::pair<TxnId, Time>> commit_times;  ///< achieved commits
};

/// Replays `scheduled` (any feasible congestion-free schedule) on `net`
/// under per-edge capacity. Objects follow the routing table's shortest
/// paths.
[[nodiscard]] CongestionResult replay_under_congestion(
    const Network& net, const RoutingTable& routes,
    const std::vector<ObjectOrigin>& origins,
    const std::vector<ScheduledTxn>& scheduled,
    const CongestionOptions& opts = {});

}  // namespace dtm
