// Plain-text serialization of problem instances and schedules.
//
// A released experiment needs shareable artifacts: the exact instance
// (object origins + transaction arrivals) and the schedule a run produced.
// The format is line-based, versioned, and diff-friendly:
//
//   dtm-instance v1
//   object <id> <node> <created>
//   txn <id> <node> <gen_time> <obj>:<r|w> [<obj>:<r|w> ...]
//
//   dtm-schedule v1
//   commit <txn_id> <exec>
//
// Round-trips are exact; loaders validate eagerly and throw CheckError
// with line numbers on malformed input.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace dtm {

struct Instance {
  std::vector<ObjectOrigin> origins;
  std::vector<Transaction> txns;
};

void save_instance(std::ostream& os, const Instance& inst);
[[nodiscard]] Instance load_instance(std::istream& is);

void save_instance_file(const std::string& path, const Instance& inst);
[[nodiscard]] Instance load_instance_file(const std::string& path);

void save_schedule(std::ostream& os,
                   const std::vector<ScheduledTxn>& scheduled);

/// Loads commit times and re-attaches them to the instance's transactions
/// (every scheduled id must exist in the instance; instance transactions
/// missing from the file get kNoTime).
[[nodiscard]] std::vector<ScheduledTxn> load_schedule(std::istream& is,
                                                      const Instance& inst);

void save_schedule_file(const std::string& path,
                        const std::vector<ScheduledTxn>& scheduled);
[[nodiscard]] std::vector<ScheduledTxn> load_schedule_file(
    const std::string& path, const Instance& inst);

}  // namespace dtm
