#include "sim/adversarial.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace dtm {

std::string to_string(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kFarThenNear: return "far-then-near";
    case AdversaryKind::kMovingHotspot: return "moving-hotspot";
    case AdversaryKind::kConvoy: return "convoy";
  }
  return "unknown";
}

namespace {

/// The node farthest from `from` (first match).
NodeId farthest_node(const Network& net, NodeId from) {
  NodeId best = from;
  Weight best_d = -1;
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    const Weight d = net.dist(from, u);
    if (d > best_d) {
      best_d = d;
      best = u;
    }
  }
  return best;
}

/// `count` nodes closest to `center` (excluding it), by distance.
std::vector<NodeId> nearest_nodes(const Network& net, NodeId center,
                                  std::int32_t count) {
  std::vector<NodeId> all;
  for (NodeId u = 0; u < net.num_nodes(); ++u)
    if (u != center) all.push_back(u);
  std::stable_sort(all.begin(), all.end(), [&](NodeId a, NodeId b) {
    return net.dist(center, a) < net.dist(center, b);
  });
  all.resize(std::min<std::size_t>(all.size(),
                                   static_cast<std::size_t>(count)));
  return all;
}

}  // namespace

std::pair<std::vector<ObjectOrigin>, std::vector<Transaction>>
make_adversarial_instance(const Network& net, const AdversaryOptions& opts) {
  DTM_REQUIRE(opts.waves >= 1 && opts.burst >= 1,
              "waves=" << opts.waves << " burst=" << opts.burst);
  Rng rng(opts.seed);
  std::vector<ObjectOrigin> origins;
  std::vector<Transaction> txns;
  TxnId next_id = 0;

  const Weight d = std::max<Weight>(net.diameter(), 1);
  const Time gap = opts.wave_gap > 0 ? opts.wave_gap : 3 * d;

  switch (opts.kind) {
    case AdversaryKind::kFarThenNear: {
      // One hot object at node h. Each wave: the far transaction arrives
      // first and pins the object's trajectory; one step later `burst`
      // transactions near h want the same object.
      const NodeId h = 0;
      origins.push_back({0, h, 0});
      const NodeId far = farthest_node(net, h);
      const auto near = nearest_nodes(net, h, opts.burst);
      for (std::int32_t w = 0; w < opts.waves; ++w) {
        const Time t0 = w * gap;
        txns.push_back({next_id++, far, t0, write_set({0})});
        for (const NodeId u : near)
          txns.push_back({next_id++, u, t0 + 1, write_set({0})});
      }
      break;
    }
    case AdversaryKind::kMovingHotspot: {
      // The hot object's users relocate every wave to a fresh random
      // center's neighborhood.
      origins.push_back({0, 0, 0});
      for (std::int32_t w = 0; w < opts.waves; ++w) {
        const Time t0 = w * gap;
        const auto center =
            static_cast<NodeId>(rng.uniform_int(0, net.num_nodes() - 1));
        txns.push_back({next_id++, center, t0, write_set({0})});
        for (const NodeId u : nearest_nodes(net, center, opts.burst - 1))
          txns.push_back({next_id++, u, t0, write_set({0})});
      }
      break;
    }
    case AdversaryKind::kConvoy: {
      // Everyone wants the same object, every wave.
      origins.push_back({0, 0, 0});
      for (std::int32_t w = 0; w < opts.waves; ++w) {
        const Time t0 =
            w * std::max<Time>(gap, net.num_nodes());  // room to serialize
        for (NodeId u = 0; u < net.num_nodes(); ++u)
          txns.push_back({next_id++, u, t0, write_set({0})});
      }
      break;
    }
  }
  return {std::move(origins), std::move(txns)};
}

ScriptedWorkload make_adversarial_workload(const Network& net,
                                           const AdversaryOptions& opts) {
  auto [origins, txns] = make_adversarial_instance(net, opts);
  return ScriptedWorkload(std::move(origins), std::move(txns));
}

}  // namespace dtm
