#include "sim/cli.hpp"

#include <iostream>

#include "sim/registry.hpp"
#include "util/check.hpp"

namespace dtm {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_flag(const std::string& name, const std::string& help,
                   bool* target) {
  flags_.push_back({name, help, target, nullptr});
}

void Cli::add_value(const std::string& name, const std::string& help,
                    std::string* target) {
  flags_.push_back({name, help, nullptr, target});
}

void Cli::print_usage() const {
  std::cout << program_ << " — " << description_ << "\n\n"
            << "  --help         this message\n"
            << "  --list         enumerate registered components\n"
            << "  --seed N       base RNG seed override\n"
            << "  --trials N     trials per averaged data point\n"
            << "  --threads N    worker threads (0 = all hardware threads)\n"
            << "  --warmup N     steps excluded from steady-state "
               "measurements\n";
  for (const auto& f : flags_)
    std::cout << "  --" << f.name << (f.value ? " V" : "  ")
              << "   " << f.help << "\n";
}

void Cli::print_registry() {
  const auto section = [](const char* title,
                          const std::vector<Registry::Entry>& entries) {
    std::cout << title << ":\n";
    for (const auto& e : entries)
      std::cout << "  " << e.name << "  " << e.help << "\n";
  };
  section("topologies", Registry::topologies());
  section("schedulers", Registry::schedulers());
  section("workloads", Registry::workloads());
  section("batch algorithms (bucket/dist-bucket algo=...)",
          Registry::batch_algos());
  section("fault plans (--fault / RunSpec \"fault\")",
          Registry::fault_plans());
  section("serve configs (dtm_serve --serve / RunSpec \"serve\")",
          Registry::serve_configs());
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg == "--list") {
      print_registry();
      return false;
    }
    const auto value_of = [&](const std::string& flag) -> std::string {
      DTM_REQUIRE(i + 1 < argc,
                  "" << program_ << ": " << flag << " needs a value");
      return argv[++i];
    };
    if (arg == "--seed") {
      seed_ = std::stoull(value_of(arg));
      seed_set_ = true;
      continue;
    }
    if (arg == "--trials") {
      trials_ = static_cast<std::int32_t>(std::stol(value_of(arg)));
      trials_set_ = true;
      DTM_REQUIRE(trials_ >= 1,
                  "" << program_ << ": --trials must be >= 1");
      continue;
    }
    if (arg == "--threads") {
      threads_ = static_cast<std::int32_t>(std::stol(value_of(arg)));
      threads_set_ = true;
      DTM_REQUIRE(threads_ >= 0 && threads_ <= 1024,
                  "" << program_ << ": --threads must be in [0, 1024], got "
                     << threads_);
      continue;
    }
    if (arg == "--warmup") {
      warmup_ = std::stoll(value_of(arg));
      warmup_set_ = true;
      DTM_REQUIRE(warmup_ >= 0,
                  "" << program_ << ": --warmup must be >= 0");
      continue;
    }
    bool matched = false;
    for (auto& f : flags_) {
      if (arg != "--" + f.name) continue;
      if (f.flag)
        *f.flag = true;
      else
        *f.value = value_of(arg);
      matched = true;
      break;
    }
    DTM_REQUIRE(matched, "" << program_ << ": unknown flag '" << arg
                            << "' (--help lists flags)");
  }
  return true;
}

}  // namespace dtm
