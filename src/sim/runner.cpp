#include "sim/runner.hpp"

#include <algorithm>

namespace dtm {

namespace {

/// Per-window bookkeeping for the Definition-1 ratio proxy.
struct WindowTracker {
  Time window = 0;
  Time next_boundary = 0;
  std::vector<std::vector<ObjectOrigin>> snapshots;  ///< per window start

  void maybe_snapshot(const SyncEngine& engine,
                      const std::vector<ObjectOrigin>& origins) {
    if (window <= 0) return;
    while (engine.now() >= next_boundary) {
      std::vector<ObjectOrigin> snap;
      snap.reserve(origins.size());
      for (const auto& o : origins) {
        const ObjectState& s = engine.object(o.id);
        // In-transit objects are attributed to their destination — by the
        // window's end they will be at or past it; a coarser position only
        // weakens (never invalidates) the lower bound's certificate role.
        snap.push_back({o.id, s.in_transit() ? s.dest() : s.at(), 0});
      }
      snapshots.push_back(std::move(snap));
      next_boundary += window;
    }
  }

  void finalize(RunResult& r, const std::vector<ScheduledTxn>& committed,
                const DistanceOracle& oracle, std::int64_t latency_factor) {
    if (window <= 0 || snapshots.empty()) return;
    std::vector<std::vector<Transaction>> per_window(snapshots.size());
    std::vector<Time> worst_latency(snapshots.size(), 0);
    for (const auto& s : committed) {
      const auto w = static_cast<std::size_t>(
          std::min<Time>(s.txn.gen_time / window,
                         static_cast<Time>(snapshots.size()) - 1));
      per_window[w].push_back(s.txn);
      worst_latency[w] =
          std::max(worst_latency[w], s.exec - s.txn.gen_time);
    }
    for (std::size_t w = 0; w < snapshots.size(); ++w) {
      if (per_window[w].empty()) continue;
      const auto lb = makespan_lower_bound(per_window[w], snapshots[w],
                                           oracle, latency_factor);
      r.windowed_ratio = std::max(
          r.windowed_ratio, static_cast<double>(worst_latency[w]) /
                                static_cast<double>(lb.best()));
      ++r.num_windows;
    }
  }
};

}  // namespace

RunResult run_experiment(const Network& net, Workload& workload,
                         OnlineScheduler& scheduler, const RunOptions& opts) {
  if (opts.drain_every > 0) {
    // Draining discards the log; everything that replays it must be off.
    DTM_REQUIRE(!opts.validate,
                "drain_every requires validate=false (validation replays "
                "the full committed schedule)");
    DTM_REQUIRE(opts.ratio_window == 0,
                "drain_every requires ratio_window=0 (windowed accounting "
                "replays the full committed schedule)");
    DTM_REQUIRE(!opts.collect_schedule,
                "drain_every requires collect_schedule=false");
  }
  SyncEngine engine(net.oracle, workload.objects(), opts.engine);

  WindowTracker windows;
  windows.window = opts.ratio_window;

  RunResult r;
  Time last_drain = 0;
  std::int64_t iterations = 0;
  while (true) {
    windows.maybe_snapshot(engine, engine.origins());
    const auto arrivals = workload.arrivals_at(engine.now());
    engine.begin_step(arrivals);
    const auto assignments = scheduler.on_step(engine, arrivals);
    engine.apply(assignments);
    const auto commits = engine.finish_step();
    for (const auto& c : commits) workload.on_commit(c.txn, c.exec);
    if (opts.drain_every > 0) {
      // Headline metrics accumulate at commit time; the log entries are
      // about to be discarded.
      for (const auto& c : commits) {
        r.makespan = std::max(r.makespan, c.exec);
        r.latency.add(static_cast<double>(c.exec - c.gen));
        ++r.num_txns;
      }
      r.peak_committed_log =
          std::max(r.peak_committed_log,
                   static_cast<std::int64_t>(engine.committed().size()));
      if (engine.now() - last_drain >= opts.drain_every) {
        r.drained +=
            static_cast<std::int64_t>(engine.take_committed().size());
        last_drain = engine.now();
      }
    }

    if (workload.finished() && engine.all_done()) break;
    DTM_CHECK(++iterations < opts.max_steps,
              "run exceeded " << opts.max_steps << " active steps");

    // Fast-forward to the next step where anything can happen: an arrival,
    // a due execution, a scheduler-internal event (bucket activation), or a
    // pending delivery on any of the scheduler's event sources. The
    // EventClock owns the merge; every candidate is a step we must land on
    // exactly.
    const Time now = engine.now();
    const std::vector<const EventSource*> sources =
        scheduler.event_sources();
    const Time next = engine.clock().next_event(
        {workload.next_arrival_time(), engine.next_exec_due(),
         scheduler.next_event_hint(now)},
        sources);
    DTM_CHECK(next != kNoTime,
              "deadlock: live transactions but no future event (now=" << now
                                                                      << ")");
    DTM_CHECK(next >= now, "next event " << next << " in the past");
    if (next > now) engine.advance_to(next);
  }

  r.scheduler = scheduler.name();
  r.network = net.name;
  r.active_steps = iterations + 1;  // iterations counts non-final steps
  if (opts.drain_every > 0) {
    // Final drain: whatever the cadence left behind. After this, drained
    // accounts for every commit and the log is empty.
    r.drained += static_cast<std::int64_t>(engine.take_committed().size());
    DTM_CHECK(r.drained == r.num_txns,
              "drain lost commits: " << r.drained << " != " << r.num_txns);
  } else {
    r.num_txns = static_cast<std::int64_t>(engine.committed().size());
    for (const auto& s : engine.committed()) {
      r.makespan = std::max(r.makespan, s.exec);
      r.latency.add(static_cast<double>(s.exec - s.txn.gen_time));
    }
  }
  if (opts.validate) {
    const auto err =
        validate_schedule(engine.committed(), engine.origins(), *net.oracle,
                          opts.engine.latency_factor);
    DTM_CHECK(!err.has_value(), "invalid schedule: " << *err);
  }
  r.lb = makespan_lower_bound(workload.generated(), engine.origins(),
                              *net.oracle, opts.engine.latency_factor);
  r.ratio = static_cast<double>(r.makespan) /
            static_cast<double>(std::max<Time>(r.lb.best(), 1));
  windows.finalize(r, engine.committed(), *net.oracle,
                   opts.engine.latency_factor);
  if (opts.collect_schedule) {
    r.origins = engine.origins();
    r.committed = engine.take_committed();  // moved, never copied
  }
  return r;
}

}  // namespace dtm
