#include "sim/io.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace dtm {

namespace {

constexpr const char* kInstanceHeader = "dtm-instance v1";
constexpr const char* kScheduleHeader = "dtm-schedule v1";

[[noreturn]] void parse_fail(int line, const std::string& what) {
  DTM_CHECK(false, "parse error at line " << line << ": " << what);
  std::abort();  // unreachable; DTM_CHECK throws
}

std::ifstream open_in(const std::string& path) {
  std::ifstream f(path);
  DTM_REQUIRE(f.good(), "cannot open " << path << " for reading");
  return f;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path);
  DTM_REQUIRE(f.good(), "cannot open " << path << " for writing");
  return f;
}

}  // namespace

void save_instance(std::ostream& os, const Instance& inst) {
  os << kInstanceHeader << "\n";
  for (const auto& o : inst.origins)
    os << "object " << o.id << " " << o.node << " " << o.created << "\n";
  for (const auto& t : inst.txns) {
    os << "txn " << t.id << " " << t.node << " " << t.gen_time;
    for (const auto& a : t.accesses)
      os << " " << a.obj << ":"
         << (a.mode == AccessMode::kWrite ? 'w' : 'r');
    os << "\n";
  }
}

Instance load_instance(std::istream& is) {
  Instance inst;
  std::string line;
  int lineno = 0;
  if (!std::getline(is, line) || line != kInstanceHeader)
    parse_fail(1, "expected header '" + std::string(kInstanceHeader) + "'");
  ++lineno;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "object") {
      ObjectOrigin o;
      if (!(ls >> o.id >> o.node >> o.created))
        parse_fail(lineno, "bad object record");
      inst.origins.push_back(o);
    } else if (kind == "txn") {
      Transaction t;
      if (!(ls >> t.id >> t.node >> t.gen_time))
        parse_fail(lineno, "bad txn record");
      std::string acc;
      while (ls >> acc) {
        const auto colon = acc.find(':');
        if (colon == std::string::npos || colon + 2 != acc.size() ||
            (acc[colon + 1] != 'r' && acc[colon + 1] != 'w'))
          parse_fail(lineno, "bad access '" + acc + "'");
        ObjectAccess a;
        try {
          a.obj = static_cast<ObjId>(std::stol(acc.substr(0, colon)));
        } catch (const std::exception&) {
          parse_fail(lineno, "bad object id in '" + acc + "'");
        }
        a.mode =
            acc[colon + 1] == 'w' ? AccessMode::kWrite : AccessMode::kRead;
        t.accesses.push_back(a);
      }
      if (t.accesses.empty()) parse_fail(lineno, "txn with no accesses");
      inst.txns.push_back(std::move(t));
    } else {
      parse_fail(lineno, "unknown record '" + kind + "'");
    }
  }
  return inst;
}

void save_schedule(std::ostream& os,
                   const std::vector<ScheduledTxn>& scheduled) {
  os << kScheduleHeader << "\n";
  for (const auto& s : scheduled)
    os << "commit " << s.txn.id << " " << s.exec << "\n";
}

std::vector<ScheduledTxn> load_schedule(std::istream& is,
                                        const Instance& inst) {
  std::string line;
  int lineno = 0;
  if (!std::getline(is, line) || line != kScheduleHeader)
    parse_fail(1, "expected header '" + std::string(kScheduleHeader) + "'");
  ++lineno;
  std::map<TxnId, Time> exec;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    TxnId id;
    Time t;
    if (!(ls >> kind >> id >> t) || kind != "commit")
      parse_fail(lineno, "bad commit record");
    if (!exec.emplace(id, t).second)
      parse_fail(lineno, "duplicate commit for txn " + std::to_string(id));
  }
  std::vector<ScheduledTxn> out;
  out.reserve(inst.txns.size());
  std::size_t matched = 0;
  for (const auto& txn : inst.txns) {
    const auto it = exec.find(txn.id);
    out.push_back({txn, it == exec.end() ? kNoTime : it->second});
    if (it != exec.end()) ++matched;
  }
  DTM_CHECK(matched == exec.size(),
            "schedule names " << exec.size() - matched
                              << " transactions absent from the instance");
  return out;
}

void save_instance_file(const std::string& path, const Instance& inst) {
  auto f = open_out(path);
  save_instance(f, inst);
}

Instance load_instance_file(const std::string& path) {
  auto f = open_in(path);
  return load_instance(f);
}

void save_schedule_file(const std::string& path,
                        const std::vector<ScheduledTxn>& scheduled) {
  auto f = open_out(path);
  save_schedule(f, scheduled);
}

std::vector<ScheduledTxn> load_schedule_file(const std::string& path,
                                             const Instance& inst) {
  auto f = open_in(path);
  return load_schedule(f, inst);
}

}  // namespace dtm
