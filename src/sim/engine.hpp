// Synchronous discrete-time execution engine (paper §II).
//
// The engine owns the canonical system state: mobile objects, live
// transactions, and their (irrevocable) execution times. Each step it
// (1) registers arrivals, (2) lets the plugged scheduler assign execution
// times, (3) routes objects toward their earliest pending scheduled user,
// and (4) fires transactions whose time has come — after *verifying* that
// every requested object is physically present, which makes the simulation
// an end-to-end feasibility check of the scheduler's decisions.
//
// Two execution paths implement the per-step bookkeeping:
//  - kScan (the original): every step settles all objects and scans all
//    live transactions for due executions — O(objects + live) per step.
//  - kCalendar (default): an execution-time calendar (min-heap keyed by
//    exec) plus an object-arrival queue plus per-object scheduled-user
//    heaps, so an idle step costs O(1) and a busy step costs
//    O(due * log live). Assignments are irrevocable, so calendar entries
//    never go stale before they fire.
// kVerify runs the calendar path while re-deriving every decision with the
// scan path and asserting equivalence — the debug harness behind the
// equivalence test suite.
#pragma once

#include <map>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "core/object_state.hpp"
#include "core/schedule.hpp"
#include "core/scheduler.hpp"

namespace dtm {

struct EngineOptions {
    /// Steps per unit distance for object motion (2 = half-speed objects,
    /// the distributed setting of §V).
    std::int64_t latency_factor = 1;

    /// Per-step bookkeeping strategy; identical observable behavior (the
    /// equivalence tests prove it), different asymptotics.
    enum class Mode { kCalendar, kScan, kVerify };
    Mode mode = Mode::kCalendar;
  };

class SyncEngine final : public SystemView {
 public:
  using Options = EngineOptions;
  using Mode = EngineOptions::Mode;

  SyncEngine(std::shared_ptr<const DistanceOracle> oracle,
             std::vector<ObjectOrigin> origins, Options opts = {});

  // ---- SystemView ----
  [[nodiscard]] Time now() const override { return now_; }
  [[nodiscard]] const DistanceOracle& oracle() const override {
    return *oracle_;
  }
  [[nodiscard]] std::int64_t latency_factor() const override {
    return opts_.latency_factor;
  }
  [[nodiscard]] const ObjectState& object(ObjId o) const override;
  [[nodiscard]] const Transaction& txn(TxnId t) const override;
  [[nodiscard]] Time assigned_exec(TxnId t) const override;
  [[nodiscard]] std::span<const TxnId> live_users_of(ObjId o) const override;
  [[nodiscard]] std::span<const TxnId> live_txns() const override;

  // ---- Stepping API (driven by the Runner) ----

  /// Registers the transactions generated at the current step.
  void begin_step(std::span<const Transaction> arrivals);

  /// Applies scheduler assignments (exec >= now, each txn live and not yet
  /// scheduled) and re-routes affected objects.
  void apply(std::span<const Assignment> assignments);

  /// A committed transaction, as reported back to the workload.
  struct Commit {
    TxnId txn = kNoTxn;
    NodeId node = kNoNode;
    Time gen = kNoTime;
    Time exec = kNoTime;
  };

  /// Settles arrivals, fires due transactions (verifying object presence),
  /// routes released objects onward, and advances the clock by one.
  std::vector<Commit> finish_step();

  /// Fast-forwards the clock to `t` (exclusive of any pending execution:
  /// callers must not skip past next_exec_due()).
  void advance_to(Time t);

  /// Earliest execution time among scheduled live transactions, kNoTime if
  /// none. The Runner never skips past this. O(1) in calendar mode.
  [[nodiscard]] Time next_exec_due() const;

  [[nodiscard]] bool all_done() const { return live_.empty(); }
  [[nodiscard]] std::int64_t num_live() const {
    return static_cast<std::int64_t>(live_.size());
  }

  /// Every transaction committed so far, with its execution time — the
  /// material for post-hoc schedule validation and metrics.
  [[nodiscard]] const std::vector<ScheduledTxn>& committed() const {
    return committed_;
  }
  [[nodiscard]] const std::vector<ObjectOrigin>& origins() const {
    return origins_;
  }

 private:
  struct LiveTxn {
    Transaction txn;
    Time exec = kNoTime;
  };

  /// (exec-or-arrival time, id) min-heap with deterministic (time, id)
  /// tie-breaks.
  template <typename Id>
  using MinHeap =
      std::priority_queue<std::pair<Time, Id>,
                          std::vector<std::pair<Time, Id>>, std::greater<>>;

  /// An object's whole engine-side record: state, its live users in
  /// generation order (the object -> live-users inverted index the
  /// schedulers consume), and a lazily pruned min-heap of its *scheduled*
  /// users, keyed by (exec, txn) — the reroute target oracle.
  struct ObjEntry {
    ObjId id = kNoObj;
    ObjectState state;
    std::vector<TxnId> users;
    MinHeap<TxnId> sched;
  };

  [[nodiscard]] const ObjEntry* find_obj(ObjId o) const;
  [[nodiscard]] ObjEntry* find_obj(ObjId o);
  [[nodiscard]] ObjEntry& obj_entry(ObjId o);

  /// Sends object `o` toward the pending scheduled user with the earliest
  /// execution time (no-op when already heading there / resting there).
  void reroute(ObjId o);
  /// The seed's linear selection of that user; kNoTxn when none.
  [[nodiscard]] TxnId reroute_target_scan(const ObjEntry& e) const;
  /// Heap-based selection (prunes committed users); kNoTxn when none.
  [[nodiscard]] TxnId reroute_target_calendar(ObjEntry& e);

  /// Settles every object whose pending arrival time has passed (calendar
  /// path; the scan path settles everything each step).
  void drain_settle_queue();

  std::shared_ptr<const DistanceOracle> oracle_;
  Options opts_;
  Time now_ = 0;

  std::vector<ObjEntry> objects_;  ///< sorted by id; immutable id set
  std::vector<ObjectOrigin> origins_;
  std::map<TxnId, LiveTxn> live_;
  std::vector<ScheduledTxn> committed_;

  /// Execution calendar: every scheduled live transaction, keyed by exec.
  MinHeap<TxnId> calendar_;
  /// Pending object arrivals: (arrive time, index into objects_). Entries
  /// outlive redirects; settle() is idempotent, so early pops are no-ops.
  MinHeap<std::int32_t> settle_queue_;

  /// Lazily rebuilt id-ordered snapshot backing live_txns().
  mutable std::vector<TxnId> live_ids_;
  mutable bool live_ids_dirty_ = false;

  std::vector<TxnId> due_scratch_;
};

}  // namespace dtm
