// Synchronous discrete-time execution engine (paper §II) — the thin facade
// over the three kernel layers (docs/ARCHITECTURE.md):
//
//  - TxnStore   (sim/store.*):     live transactions, per-object user
//                                  index, object position state, committed
//                                  log — the canonical system state.
//  - ObjectTransport (sim/transport.*): routing, in-flight motion, the
//                                  settle queue — swappable motion policy.
//  - EventClock (sim/clock.*):     `now`, the execution calendar, and
//                                  next-event merging for time skips.
//
// Each step the engine (1) registers arrivals, (2) lets the plugged
// scheduler assign execution times, (3) routes objects toward their
// earliest pending scheduled user, and (4) fires transactions whose time
// has come — after *verifying* that every requested object is physically
// present, which makes the simulation an end-to-end feasibility check of
// the scheduler's decisions.
//
// Two execution paths implement the per-step bookkeeping:
//  - kScan (the original): every step settles all objects and scans all
//    live transactions for due executions — O(objects + live) per step.
//  - kCalendar (default): the clock's execution-time calendar plus the
//    transport's object-arrival queue plus per-object scheduled-user
//    heaps, so an idle step costs O(1) and a busy step costs
//    O(due * log live). Assignments are irrevocable, so calendar entries
//    never go stale before they fire.
// kVerify runs the calendar path while re-deriving every decision with the
// scan path and asserting equivalence — the debug harness behind the
// equivalence test suite.
//
// With EngineOptions::threads > 1 the reroute fan-outs of apply() and
// finish_step() run sharded across the process-wide ThreadPool (object
// ownership by dense index, per-worker settle buffers merged after the
// barrier — ARCHITECTURE.md §8); commit sequences stay byte-identical at
// every thread count. kVerifyParallel is the corresponding debug harness:
// it steps a serial calendar twin engine in lockstep and cross-checks the
// commit stream of every step.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "core/scheduler.hpp"
#include "sim/clock.hpp"
#include "sim/store.hpp"
#include "sim/transport.hpp"

namespace dtm {

class SyncEngine final : public SystemView {
 public:
  using Options = EngineOptions;
  using Mode = EngineOptions::Mode;

  SyncEngine(std::shared_ptr<const DistanceOracle> oracle,
             std::vector<ObjectOrigin> origins, Options opts = {});

  // ---- SystemView ----
  [[nodiscard]] Time now() const override { return clock_.now(); }
  [[nodiscard]] const DistanceOracle& oracle() const override {
    return *oracle_;
  }
  [[nodiscard]] std::int64_t latency_factor() const override {
    return opts_.latency_factor;
  }
  [[nodiscard]] const ObjectState& object(ObjId o) const override;
  [[nodiscard]] const Transaction& txn(TxnId t) const override;
  [[nodiscard]] Time assigned_exec(TxnId t) const override;
  [[nodiscard]] std::span<const TxnId> live_users_of(ObjId o) const override;
  [[nodiscard]] std::span<const TxnId> live_txns() const override {
    return store_.live_ids();
  }

  // ---- Stepping API (driven by the Runner) ----

  /// Registers the transactions generated at the current step.
  void begin_step(std::span<const Transaction> arrivals);

  /// Applies scheduler assignments (exec >= now, each txn live and not yet
  /// scheduled) and re-routes affected objects.
  void apply(std::span<const Assignment> assignments);

  /// A committed transaction, as reported back to the workload.
  struct Commit {
    TxnId txn = kNoTxn;
    NodeId node = kNoNode;
    Time gen = kNoTime;
    Time exec = kNoTime;
  };

  /// Settles arrivals, fires due transactions (verifying object presence),
  /// routes released objects onward, and advances the clock by one.
  std::vector<Commit> finish_step();

  /// Fast-forwards the clock to `t` (exclusive of any pending execution:
  /// callers must not skip past next_exec_due()).
  void advance_to(Time t);

  /// Earliest execution time among scheduled live transactions, kNoTime if
  /// none. The Runner never skips past this. O(1) in calendar mode.
  [[nodiscard]] Time next_exec_due() const;

  [[nodiscard]] bool all_done() const { return store_.live().empty(); }
  [[nodiscard]] std::int64_t num_live() const {
    return static_cast<std::int64_t>(store_.live().size());
  }

  /// Every transaction committed so far, with its execution time — the
  /// material for post-hoc schedule validation and metrics.
  [[nodiscard]] const std::vector<ScheduledTxn>& committed() const {
    return store_.committed();
  }
  /// Drains the committed log (leaving it empty). End-of-run result
  /// assembly takes it once; the serve loop drains on a cadence so the log
  /// — the only per-committed state — stays bounded. Stepping continues
  /// normally afterwards; only post-hoc consumers of the full history
  /// (validate_schedule, the runner's metrics) must not drain mid-run.
  [[nodiscard]] std::vector<ScheduledTxn> take_committed() {
    if (shadow_) (void)shadow_->take_committed();  // keep the twin bounded
    return store_.take_committed();
  }

  /// Swaps the fault plan live (serve-mode resilience drills): the
  /// transport re-arms its stall hook from the new plan. Scheduler-side
  /// bus faults are the scheduler's own seam (dist-bucket's set_fault).
  void set_fault(const FaultPlan& plan) {
    opts_.fault = plan;
    transport_->set_fault(plan);
    if (shadow_) shadow_->set_fault(plan);
  }
  [[nodiscard]] const std::vector<ObjectOrigin>& origins() const {
    return store_.origins();
  }

  /// The three layers, exposed read-only for the runner's next-event
  /// merging and for diagnostics.
  [[nodiscard]] const EventClock& clock() const { return clock_; }
  [[nodiscard]] const TxnStore& store() const { return store_; }

 private:
  std::shared_ptr<const DistanceOracle> oracle_;
  Options opts_;

  TxnStore store_;
  std::unique_ptr<ObjectTransport> transport_;
  EventClock clock_;

  /// kVerifyParallel: a serial calendar twin stepped in lockstep; every
  /// finish_step cross-checks the two commit streams.
  std::unique_ptr<SyncEngine> shadow_;

  std::vector<TxnId> due_scratch_;
  std::vector<ObjId> reroute_scratch_;
};

}  // namespace dtm
