// Synchronous discrete-time execution engine (paper §II).
//
// The engine owns the canonical system state: mobile objects, live
// transactions, and their (irrevocable) execution times. Each step it
// (1) registers arrivals, (2) lets the plugged scheduler assign execution
// times, (3) routes objects toward their earliest pending scheduled user,
// and (4) fires transactions whose time has come — after *verifying* that
// every requested object is physically present, which makes the simulation
// an end-to-end feasibility check of the scheduler's decisions.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/object_state.hpp"
#include "core/schedule.hpp"
#include "core/scheduler.hpp"

namespace dtm {

struct EngineOptions {
    /// Steps per unit distance for object motion (2 = half-speed objects,
    /// the distributed setting of §V).
    std::int64_t latency_factor = 1;
  };

class SyncEngine final : public SystemView {
 public:
  using Options = EngineOptions;

  SyncEngine(std::shared_ptr<const DistanceOracle> oracle,
             std::vector<ObjectOrigin> origins, Options opts = {});

  // ---- SystemView ----
  [[nodiscard]] Time now() const override { return now_; }
  [[nodiscard]] const DistanceOracle& oracle() const override {
    return *oracle_;
  }
  [[nodiscard]] std::int64_t latency_factor() const override {
    return opts_.latency_factor;
  }
  [[nodiscard]] const ObjectState& object(ObjId o) const override;
  [[nodiscard]] const Transaction& txn(TxnId t) const override;
  [[nodiscard]] Time assigned_exec(TxnId t) const override;
  [[nodiscard]] std::vector<TxnId> live_users_of(ObjId o) const override;
  [[nodiscard]] std::vector<TxnId> live_txns() const override;

  // ---- Stepping API (driven by the Runner) ----

  /// Registers the transactions generated at the current step.
  void begin_step(std::span<const Transaction> arrivals);

  /// Applies scheduler assignments (exec >= now, each txn live and not yet
  /// scheduled) and re-routes affected objects.
  void apply(std::span<const Assignment> assignments);

  /// A committed transaction, as reported back to the workload.
  struct Commit {
    TxnId txn = kNoTxn;
    NodeId node = kNoNode;
    Time gen = kNoTime;
    Time exec = kNoTime;
  };

  /// Settles arrivals, fires due transactions (verifying object presence),
  /// routes released objects onward, and advances the clock by one.
  std::vector<Commit> finish_step();

  /// Fast-forwards the clock to `t` (exclusive of any pending execution:
  /// callers must not skip past next_exec_due()).
  void advance_to(Time t);

  /// Earliest execution time among scheduled live transactions, kNoTime if
  /// none. The Runner never skips past this.
  [[nodiscard]] Time next_exec_due() const;

  [[nodiscard]] bool all_done() const { return live_.empty(); }
  [[nodiscard]] std::int64_t num_live() const {
    return static_cast<std::int64_t>(live_.size());
  }

  /// Every transaction committed so far, with its execution time — the
  /// material for post-hoc schedule validation and metrics.
  [[nodiscard]] const std::vector<ScheduledTxn>& committed() const {
    return committed_;
  }
  [[nodiscard]] const std::vector<ObjectOrigin>& origins() const {
    return origins_;
  }

 private:
  struct LiveTxn {
    Transaction txn;
    Time exec = kNoTime;
  };

  /// Sends object `o` toward the pending scheduled user with the earliest
  /// execution time (no-op when already heading there / resting there).
  void reroute(ObjId o);

  std::shared_ptr<const DistanceOracle> oracle_;
  Options opts_;
  Time now_ = 0;

  std::map<ObjId, ObjectState> objects_;
  std::vector<ObjectOrigin> origins_;
  std::map<TxnId, LiveTxn> live_;
  std::map<ObjId, std::vector<TxnId>> users_of_;
  std::vector<ScheduledTxn> committed_;
};

}  // namespace dtm
