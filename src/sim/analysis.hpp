// Post-run analysis: turns a committed schedule into the aggregate view a
// systems paper's evaluation section would tabulate — object travel,
// per-node activity, contention profile, concurrency achieved.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "net/graph.hpp"

namespace dtm {

struct RunReport {
  std::int64_t txns = 0;
  Time makespan = 0;

  // Object movement.
  std::int64_t total_object_distance = 0;  ///< sum over per-object chains
  std::int64_t max_object_distance = 0;
  ObjId busiest_object = kNoObj;           ///< most commits
  std::int64_t busiest_object_commits = 0;

  // Node activity.
  std::int64_t active_nodes = 0;     ///< nodes committing >= 1 txn
  std::int64_t max_node_commits = 0;

  // Concurrency: commits per step, over the steps with >= 1 commit.
  double mean_commits_per_busy_step = 0.0;
  std::int64_t max_commits_per_step = 0;

  // Contention: transactions per object (the paper's l).
  double mean_users_per_object = 0.0;
  std::int64_t lmax = 0;
};

/// Builds the report from a committed schedule. Travel distances follow
/// each object's execution-order chain from its origin.
[[nodiscard]] RunReport analyze_run(const std::vector<ScheduledTxn>& scheduled,
                                    const std::vector<ObjectOrigin>& origins,
                                    const DistanceOracle& oracle);

/// Renders the report as "key: value" lines for examples and logs.
[[nodiscard]] std::string to_string(const RunReport& report);

}  // namespace dtm
