// Application-shaped workload generators.
//
// SyntheticWorkload sweeps parameter space; these produce the two classic
// application shapes papers motivate DTM with, in the same Workload
// interface:
//  - bank transfers: two-account write transactions over a skewed account
//    population (the canonical atomic-commitment example);
//  - social feed: read-dominated fanout over follower-graph hot spots,
//    with occasional profile writes (exercises the read-write extension).
#pragma once

#include <memory>

#include "net/topology.hpp"
#include "sim/workload.hpp"

namespace dtm {

struct BankOptions {
  std::int32_t accounts = 0;        ///< 0 => 4 * nodes
  std::int32_t transfers_per_node = 3;
  double hot_fraction = 0.1;        ///< share of accounts that are "hot"
  double hot_probability = 0.5;     ///< chance a transfer touches a hot acct
  std::uint64_t seed = 2026;
};

/// Closed-loop transfers: every node runs `transfers_per_node` sequential
/// transactions, each writing two distinct accounts (objects).
[[nodiscard]] std::unique_ptr<Workload> make_bank_workload(
    const Network& net, const BankOptions& opts = {});

struct SocialOptions {
  std::int32_t profiles = 0;     ///< 0 => 2 * nodes
  std::int32_t actions_per_node = 4;
  double write_fraction = 0.1;   ///< posts vs reads
  double zipf_s = 1.1;           ///< celebrity skew
  std::int32_t fanout = 3;       ///< profiles read per feed refresh
  std::uint64_t seed = 2027;
};

/// Closed-loop feed refreshes: mostly multi-profile reads with Zipf
/// celebrity skew; a small fraction are single-profile posts (writes).
/// Under the base model all accesses conflict; under core/rw the reads
/// share — the pair of runs quantifies the sharing win on a realistic
/// shape.
[[nodiscard]] std::unique_ptr<Workload> make_social_workload(
    const Network& net, const SocialOptions& opts = {});

}  // namespace dtm
