#include "sim/app_workloads.hpp"

#include <functional>
#include <algorithm>
#include <queue>

#include "util/rng.hpp"

namespace dtm {

namespace {

/// Shared closed-loop machinery: every node runs `rounds` transactions,
/// the next generated one think-step after the previous commit; the access
/// set comes from a sampler functor.
class ClosedLoopAppWorkload final : public Workload {
 public:
  using Sampler = std::function<std::vector<ObjectAccess>(Rng&)>;

  ClosedLoopAppWorkload(const Network& net, std::int32_t num_objects,
                        std::int32_t rounds, std::uint64_t seed,
                        Sampler sampler)
      : rounds_(rounds), rng_(seed), sampler_(std::move(sampler)) {
    DTM_REQUIRE(num_objects > 0, "app workload needs objects");
    DTM_REQUIRE(rounds_ >= 1, "rounds " << rounds_);
    for (ObjId o = 0; o < num_objects; ++o)
      origins_.push_back(
          {o, static_cast<NodeId>(rng_.uniform_int(0, net.num_nodes() - 1)),
           0});
    issued_.assign(static_cast<std::size_t>(net.num_nodes()), 0);
    for (NodeId u = 0; u < net.num_nodes(); ++u)
      queue_.push({0, u});
  }

  [[nodiscard]] std::vector<ObjectOrigin> objects() override {
    return origins_;
  }

  [[nodiscard]] std::vector<Transaction> arrivals_at(Time now) override {
    std::vector<Transaction> out;
    while (!queue_.empty() && queue_.top().when <= now) {
      const Pending p = queue_.top();
      queue_.pop();
      DTM_CHECK(p.when == now, "app workload missed arrival at " << p.when);
      Transaction t;
      t.id = next_id_++;
      t.node = p.node;
      t.gen_time = now;
      t.accesses = sampler_(rng_);
      DTM_CHECK(!t.accesses.empty(), "sampler produced empty access set");
      owner_[t.id] = p.node;
      ++issued_[static_cast<std::size_t>(p.node)];
      generated_.push_back(t);
      out.push_back(std::move(t));
    }
    return out;
  }

  void on_commit(TxnId txn, Time exec) override {
    const auto it = owner_.find(txn);
    if (it == owner_.end()) return;
    const NodeId node = it->second;
    owner_.erase(it);
    if (issued_[static_cast<std::size_t>(node)] >= rounds_) return;
    queue_.push({exec + 1, node});
  }

  [[nodiscard]] Time next_arrival_time() const override {
    return queue_.empty() ? kNoTime : queue_.top().when;
  }

  [[nodiscard]] bool finished() const override {
    if (!queue_.empty()) return false;
    return std::all_of(issued_.begin(), issued_.end(),
                       [this](std::int32_t c) { return c >= rounds_; });
  }

  [[nodiscard]] const std::vector<Transaction>& generated() const override {
    return generated_;
  }

 private:
  struct Pending {
    Time when;
    NodeId node;
    bool operator>(const Pending& o) const {
      return when > o.when || (when == o.when && node > o.node);
    }
  };

  std::int32_t rounds_;
  Rng rng_;
  Sampler sampler_;
  std::vector<ObjectOrigin> origins_;
  std::vector<std::int32_t> issued_;
  std::map<TxnId, NodeId> owner_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::vector<Transaction> generated_;
  TxnId next_id_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_bank_workload(const Network& net,
                                             const BankOptions& opts) {
  const std::int32_t accounts =
      opts.accounts > 0 ? opts.accounts : 4 * net.num_nodes();
  DTM_REQUIRE(accounts >= 2, "bank needs >= 2 accounts");
  const auto hot = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(opts.hot_fraction *
                                   static_cast<double>(accounts)));
  const double hot_p = opts.hot_probability;
  auto sampler = [accounts, hot, hot_p](Rng& rng) {
    auto draw = [&](ObjId avoid) {
      ObjId a;
      do {
        a = rng.bernoulli(hot_p)
                ? static_cast<ObjId>(rng.uniform_int(0, hot - 1))
                : static_cast<ObjId>(rng.uniform_int(0, accounts - 1));
      } while (a == avoid);
      return a;
    };
    const ObjId from = draw(kNoObj);
    const ObjId to = draw(from);
    return std::vector<ObjectAccess>{{from, AccessMode::kWrite},
                                     {to, AccessMode::kWrite}};
  };
  return std::make_unique<ClosedLoopAppWorkload>(
      net, accounts, opts.transfers_per_node, opts.seed, sampler);
}

std::unique_ptr<Workload> make_social_workload(const Network& net,
                                               const SocialOptions& opts) {
  const std::int32_t profiles =
      opts.profiles > 0 ? opts.profiles : 2 * net.num_nodes();
  DTM_REQUIRE(opts.fanout >= 1 && opts.fanout <= profiles,
              "fanout " << opts.fanout << " of " << profiles);
  auto zipf = std::make_shared<ZipfSampler>(profiles, opts.zipf_s);
  const double wf = opts.write_fraction;
  const std::int32_t fanout = opts.fanout;
  auto sampler = [zipf, wf, fanout, profiles](Rng& rng) {
    std::vector<ObjectAccess> out;
    if (rng.bernoulli(wf)) {
      // A post: write the author's own profile.
      out.push_back({static_cast<ObjId>(rng.uniform_int(0, profiles - 1)),
                     AccessMode::kWrite});
      return out;
    }
    // A feed refresh: read `fanout` distinct celebrity-skewed profiles.
    while (static_cast<std::int32_t>(out.size()) < fanout) {
      const ObjId p = zipf->draw(rng);
      const bool dup = std::any_of(out.begin(), out.end(),
                                   [p](const ObjectAccess& a) {
                                     return a.obj == p;
                                   });
      if (!dup) out.push_back({p, AccessMode::kRead});
    }
    return out;
  };
  return std::make_unique<ClosedLoopAppWorkload>(
      net, profiles, opts.actions_per_node, opts.seed, sampler);
}

}  // namespace dtm
