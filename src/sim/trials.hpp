// Shared randomized-fixture and multi-trial helpers.
//
// One home for the machinery the bench harness and the test suite used to
// duplicate: averaged multi-seed trials, the random topology/workload draws
// behind the fuzz and equivalence suites, and the canonical set of small
// representative networks. Benches consume this through bench_common.hpp;
// tests through test_helpers.hpp.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/scheduler.hpp"
#include "net/topology.hpp"
#include "sim/runner.hpp"
#include "sim/workload.hpp"

namespace dtm {

/// Headline metrics averaged over independent trial seeds.
struct TrialSummary {
  double ratio = 0.0;
  double makespan = 0.0;
  double mean_latency = 0.0;
  double lb = 0.0;
  std::int64_t txns = 0;
  double windowed_ratio = 0.0;  ///< Definition-1 proxy (if window > 0)
};

struct TrialOptions {
  std::int32_t trials = 3;
  std::int64_t latency_factor = 1;
  Time ratio_window = 0;
  /// Worker threads: trials fan out across the process-wide ThreadPool and
  /// fold in trial-index order, so the summary is byte-identical at every
  /// value (1 = serial, 0 = all hardware threads). The scheduler factory
  /// must be safe to invoke concurrently — every registry/bench factory
  /// only reads shared immutable state, so this holds by construction.
  std::int32_t threads = 1;
};

using SchedulerFactory = std::function<std::unique_ptr<OnlineScheduler>()>;

/// Runs `opts.trials` independent seeds of (network, workload options,
/// scheduler factory) and averages the headline metrics. The factory is
/// invoked per trial (schedulers are stateful); trial t perturbs the base
/// seed to wopts.seed + t * 7919. Only the summary is kept — the runs skip
/// collecting the full committed schedule entirely.
[[nodiscard]] TrialSummary run_seeded_trials(const Network& net,
                                      const SyntheticOptions& wopts,
                                      const SchedulerFactory& make_scheduler,
                                      const TrialOptions& opts = {});

/// Small representative networks used by parameterized sweeps.
[[nodiscard]] std::vector<Network> small_networks();

/// Random topology draw shared by the fuzz and equivalence suites.
[[nodiscard]] Network random_topology(Rng& rng);

/// Random workload shape matching the topology (fuzz + equivalence suites).
[[nodiscard]] SyntheticOptions random_workload(const Network& net, Rng& rng);

/// Runs with post-hoc schedule validation enabled; throws CheckError on any
/// invalidity. Not [[nodiscard]]: the validation side effect alone is a
/// legitimate use.
RunResult run_and_validate(const Network& net, Workload& wl,
                                         OnlineScheduler& sched,
                                         std::int64_t latency_factor = 1);

}  // namespace dtm
