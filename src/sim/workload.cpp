#include "sim/workload.hpp"

#include <algorithm>

namespace dtm {

SyntheticWorkload::SyntheticWorkload(const Network& net, SyntheticOptions opts)
    : net_(net), opts_(opts), rng_(opts.seed) {
  DTM_REQUIRE(opts_.k >= 1, "k=" << opts_.k);
  DTM_REQUIRE(opts_.rounds >= 1, "rounds=" << opts_.rounds);
  DTM_REQUIRE(opts_.gap >= 1, "gap=" << opts_.gap);
  DTM_REQUIRE(opts_.node_participation > 0.0 &&
                  opts_.node_participation <= 1.0,
              "participation=" << opts_.node_participation);
  if (opts_.num_objects <= 0) opts_.num_objects = net.num_nodes();
  DTM_REQUIRE(opts_.k <= opts_.num_objects,
              "k=" << opts_.k << " > objects=" << opts_.num_objects);
  if (opts_.zipf_s > 0.0)
    zipf_ = std::make_unique<ZipfSampler>(opts_.num_objects, opts_.zipf_s);

  const NodeId n = net.num_nodes();
  const auto want = std::max<NodeId>(
      1, static_cast<NodeId>(static_cast<double>(n) *
                             opts_.node_participation));
  if (want >= n) {
    participants_.resize(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) participants_[static_cast<std::size_t>(u)] = u;
  } else {
    participants_ = rng_.sample_distinct(n, want);
    std::sort(participants_.begin(), participants_.end());
  }
  issued_.assign(participants_.size(), 0);
  for (std::size_t i = 0; i < participants_.size(); ++i)
    queue_.push({0, i});
}

std::vector<ObjectOrigin> SyntheticWorkload::objects() {
  std::vector<ObjectOrigin> out;
  out.reserve(static_cast<std::size_t>(opts_.num_objects));
  for (ObjId o = 0; o < opts_.num_objects; ++o) {
    const auto node =
        static_cast<NodeId>(rng_.uniform_int(0, net_.num_nodes() - 1));
    out.push_back({o, node, 0});
  }
  return out;
}

std::vector<ObjId> SyntheticWorkload::sample_objects() {
  if (!zipf_) {
    auto picks = rng_.sample_distinct(opts_.num_objects, opts_.k);
    return std::vector<ObjId>(picks.begin(), picks.end());
  }
  // Zipf-skewed distinct sample: rejection with a cap, then uniform fill.
  std::vector<ObjId> out;
  out.reserve(static_cast<std::size_t>(opts_.k));
  std::int32_t tries = 0;
  while (static_cast<std::int32_t>(out.size()) < opts_.k &&
         tries < 64 * opts_.k) {
    const ObjId o = zipf_->draw(rng_);
    if (std::find(out.begin(), out.end(), o) == out.end()) out.push_back(o);
    ++tries;
  }
  while (static_cast<std::int32_t>(out.size()) < opts_.k) {
    const auto o =
        static_cast<ObjId>(rng_.uniform_int(0, opts_.num_objects - 1));
    if (std::find(out.begin(), out.end(), o) == out.end()) out.push_back(o);
  }
  return out;
}

std::vector<Transaction> SyntheticWorkload::arrivals_at(Time now) {
  std::vector<Transaction> out;
  while (!queue_.empty() && queue_.top().when <= now) {
    const Pending p = queue_.top();
    queue_.pop();
    DTM_CHECK(p.when == now, "workload missed arrival at " << p.when
                                                           << " (now " << now
                                                           << ")");
    Transaction t;
    t.id = next_id_++;
    t.node = participants_[p.participant];
    t.gen_time = now;
    t.accesses = write_set(sample_objects());
    if (opts_.write_fraction < 1.0) {
      for (auto& a : t.accesses)
        if (!rng_.bernoulli(opts_.write_fraction)) a.mode = AccessMode::kRead;
    }
    owner_[t.id] = p.participant;
    ++issued_[p.participant];
    generated_.push_back(t);
    out.push_back(std::move(t));
  }
  return out;
}

void SyntheticWorkload::on_commit(TxnId txn, Time exec) {
  const auto it = owner_.find(txn);
  if (it == owner_.end()) return;
  const std::size_t idx = it->second;
  owner_.erase(it);
  if (issued_[idx] >= opts_.rounds) return;
  Time gap = opts_.gap;
  if (opts_.arrival_prob > 0.0) gap = rng_.geometric_gap(opts_.arrival_prob);
  queue_.push({exec + gap, idx});
}

Time SyntheticWorkload::next_arrival_time() const {
  return queue_.empty() ? kNoTime : queue_.top().when;
}

bool SyntheticWorkload::finished() const {
  if (!queue_.empty()) return false;
  // Participants with rounds left but no queued arrival are waiting on a
  // commit callback; the run is only finished when everyone hit the quota.
  for (std::size_t i = 0; i < issued_.size(); ++i)
    if (issued_[i] < opts_.rounds) return false;
  return true;
}

ScriptedWorkload::ScriptedWorkload(std::vector<ObjectOrigin> origins,
                                   std::vector<Transaction> txns)
    : origins_(std::move(origins)), txns_(std::move(txns)) {
  std::stable_sort(txns_.begin(), txns_.end(),
                   [](const Transaction& a, const Transaction& b) {
                     return a.gen_time < b.gen_time;
                   });
}

std::vector<Transaction> ScriptedWorkload::arrivals_at(Time now) {
  std::vector<Transaction> out;
  while (next_ < txns_.size() && txns_[next_].gen_time == now)
    out.push_back(txns_[next_++]);
  DTM_CHECK(next_ >= txns_.size() || txns_[next_].gen_time > now,
            "scripted arrival at " << txns_[next_].gen_time
                                   << " missed (now " << now << ")");
  return out;
}

Time ScriptedWorkload::next_arrival_time() const {
  return next_ < txns_.size() ? txns_[next_].gen_time : kNoTime;
}

}  // namespace dtm
