// Uniform command-line handling for every bench and example binary.
//
// Every binary accepts the same four core flags —
//   --help            usage, including any binary-specific flags
//   --list            registry enumeration (topologies, schedulers,
//                     workloads, batch algorithms)
//   --seed N          base RNG seed override
//   --trials N        trial-count override for averaged benches
//   --threads N       worker threads (0 = all hardware threads)
//   --warmup N        steps excluded from steady-state measurements
// — plus whatever flags the binary registers. Unknown flags are hard
// errors: a typo'd flag aborts instead of silently running defaults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dtm {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Boolean flag (`--name` sets *target = true).
  void add_flag(const std::string& name, const std::string& help,
                bool* target);
  /// Value flag (`--name VALUE` stores the raw string).
  void add_value(const std::string& name, const std::string& help,
                 std::string* target);

  /// Handles --help / --list (prints and returns false: the caller should
  /// exit 0), --seed, --trials, and the registered flags. Throws CheckError
  /// on unknown flags or missing values.
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] bool seed_set() const { return seed_set_; }
  [[nodiscard]] std::uint64_t seed(std::uint64_t def) const {
    return seed_set_ ? seed_ : def;
  }
  [[nodiscard]] bool trials_set() const { return trials_set_; }
  [[nodiscard]] std::int32_t trials(std::int32_t def) const {
    return trials_set_ ? trials_ : def;
  }
  [[nodiscard]] bool threads_set() const { return threads_set_; }
  /// Worker-thread count: 0 = all hardware threads, N = exactly N. The
  /// default stays serial; results are byte-identical at every value.
  [[nodiscard]] std::int32_t threads(std::int32_t def) const {
    return threads_set_ ? threads_ : def;
  }
  [[nodiscard]] bool warmup_set() const { return warmup_set_; }
  /// Warmup steps excluded from steady-state measurements (allocs/step,
  /// steps/sec): caches, pools, and scratch capacities fill during warmup.
  /// Each bench keeps its own default, so 0-warmup behavior is unchanged
  /// unless the flag is passed.
  [[nodiscard]] std::int64_t warmup(std::int64_t def) const {
    return warmup_set_ ? warmup_ : def;
  }

  void print_usage() const;
  /// The shared --list output: every registered component, one per line.
  static void print_registry();

 private:
  struct Flag {
    std::string name;
    std::string help;
    bool* flag = nullptr;         ///< boolean flags
    std::string* value = nullptr; ///< value flags
  };

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
  std::uint64_t seed_ = 0;
  bool seed_set_ = false;
  std::int32_t trials_ = 0;
  bool trials_set_ = false;
  std::int32_t threads_ = 1;
  bool threads_set_ = false;
  std::int64_t warmup_ = 0;
  bool warmup_set_ = false;
};

}  // namespace dtm
