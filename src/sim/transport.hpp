// ObjectTransport — object motion policy (engine layering, layer 2).
//
// Decides where objects travel and when they arrive: routing toward the
// earliest pending scheduled user, in-flight redirects, and the settle
// queue that materializes arrivals. This is the seam where alternative
// substrates plug in — a congestion-aware transport charging per-edge
// capacity (unifying the sim/congestion.* replay with live execution) or
// an async batched mover — without touching the store or the clock.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "sim/store.hpp"

namespace dtm {

struct EngineOptions {
  /// Steps per unit distance for object motion (2 = half-speed objects,
  /// the distributed setting of §V).
  std::int64_t latency_factor = 1;

  /// Per-step bookkeeping strategy; identical observable behavior (the
  /// equivalence tests prove it), different asymptotics. kVerifyParallel
  /// runs the calendar bookkeeping with the parallel sharded phases while
  /// stepping a serial calendar twin in lockstep and cross-checking every
  /// commit (the parallel-kernel debug harness).
  enum class Mode { kCalendar, kScan, kVerify, kVerifyParallel };
  Mode mode = Mode::kCalendar;

  /// Worker threads for the sharded step phases (reroute fan-out, scan
  /// settles): 1 = serial (default), 0 = all hardware threads, N = exactly
  /// N participants. Every thread count produces byte-identical commit
  /// sequences — sharding is by object ownership, and per-worker results
  /// merge in canonical order (ARCHITECTURE.md §8).
  std::int32_t threads = 1;

  /// Fault-injection plan for the transport's stall hook (and, through the
  /// RunSpec, the distributed protocol's FaultyBus). The default null plan
  /// takes the exact pre-fault code path — zero draws, zero delays — so
  /// golden sequences stay byte-identical without a plan.
  FaultPlan fault;
};

class ObjectTransport {
 public:
  virtual ~ObjectTransport() = default;

  /// Sends object `o` toward the pending scheduled user with the earliest
  /// execution time (no-op when already heading there / resting there).
  virtual void reroute(ObjId o, Time now) = 0;

  /// Reroutes every object in `objs`, duplicates included, preserving the
  /// per-object request order. The default loops serially; parallel
  /// transports shard the list by object ownership (each object's requests
  /// are handled by exactly one worker, so the final state is
  /// worker-count-invariant).
  virtual void reroute_many(std::span<const ObjId> objs, Time now) {
    for (const ObjId o : objs) reroute(o, now);
  }

  /// Materializes every arrival due by `now` (the scan path settles all
  /// objects; the calendar path drains its settle queue).
  virtual void settle_arrivals(Time now) = 0;

  /// kVerify invariant: no object may still be in transit past its arrival
  /// time after settle_arrivals.
  virtual void verify_settled(Time now) const = 0;

  /// Live fault-plan swap (serve-mode resilience drills). Transports that
  /// inject faults re-arm their stall hook from the new plan; the default
  /// is a no-op for fault-free substrates.
  virtual void set_fault(const FaultPlan& /*plan*/) {}
};

/// The synchronous shortest-path transport: objects move one unit of
/// distance per latency_factor steps along oracle distances, exactly the
/// paper's motion model. Mode selects the bookkeeping path (and kVerify
/// cross-checks the two reroute target derivations against each other).
class SyncObjectTransport final : public ObjectTransport {
 public:
  SyncObjectTransport(TxnStore& store, const DistanceOracle& oracle,
                      EngineOptions opts)
      : store_(&store),
        oracle_(&oracle),
        opts_(opts),
        stall_rng_(opts_.fault.transport_rng()),
        stalling_(opts_.fault.stall > 0.0) {}

  /// Transfer stalls applied / extra steps added (chaos bench observability).
  [[nodiscard]] std::int64_t stalls_applied() const { return stalls_; }
  [[nodiscard]] std::int64_t stall_steps() const { return stall_steps_; }

  void reroute(ObjId o, Time now) override;
  /// Sharded parallel fan-out when EngineOptions::threads > 1 (serial
  /// under an active stall plan: the stall stream draws in request order,
  /// and chaos golden pins depend on that exact sequence).
  void reroute_many(std::span<const ObjId> objs, Time now) override;
  void settle_arrivals(Time now) override;
  void verify_settled(Time now) const override;

  /// Swaps the stall knobs in place and reseeds the stall stream from the
  /// new plan (site-salted, so toggling to the same plan replays the same
  /// stall sequence from the start). In-flight transfers keep the legs they
  /// were already charged.
  void set_fault(const FaultPlan& plan) override {
    opts_.fault = plan;
    stall_rng_ = plan.transport_rng();
    stalling_ = plan.stall > 0.0;
  }

 private:
  /// (arrive time, object index) pairs buffered by one worker during a
  /// parallel reroute phase, merged into settle_queue_ after the barrier.
  using SettleBuffer = std::vector<std::pair<Time, std::int32_t>>;

  /// The seed's linear selection of the earliest scheduled user; kNoTxn
  /// when none.
  [[nodiscard]] TxnId reroute_target_scan(const TxnStore::ObjEntry& e) const;
  /// Heap-based selection (prunes committed users); kNoTxn when none.
  [[nodiscard]] TxnId reroute_target_calendar(TxnStore::ObjEntry& e);

  /// The reroute body. `out == nullptr` pushes settle entries straight into
  /// settle_queue_ (serial path, stall hook armed); non-null buffers them
  /// per worker (parallel path, which only runs with the stall hook off).
  void reroute_impl(TxnStore::ObjEntry& e, Time now, SettleBuffer* out);

  /// Fault hook: maybe stretches a freshly laid transit leg for `e`, bounded
  /// by the slack before `best`'s execution so commitments stay feasible.
  void maybe_stall(TxnStore::ObjEntry& e, TxnId best);

  TxnStore* store_;
  const DistanceOracle* oracle_;
  EngineOptions opts_;

  /// Transfer-stall injection state. The RNG stream is salted per the
  /// FaultPlan; with stall == 0 the hook is a single branch and zero draws,
  /// keeping the no-fault path byte-identical.
  Rng stall_rng_;
  bool stalling_ = false;
  std::int64_t stalls_ = 0;
  std::int64_t stall_steps_ = 0;

  /// Pending object arrivals: (arrive time, index into the store's object
  /// array). Entries outlive redirects; settle() is idempotent, so early
  /// pops are no-ops.
  EventClock::MinHeap<std::int32_t> settle_queue_;

  /// Parallel reroute scratch: dense object indices of the current request
  /// list and the per-worker settle buffers.
  std::vector<std::int32_t> shard_idx_;
  std::vector<SettleBuffer> shard_settles_;
};

}  // namespace dtm
