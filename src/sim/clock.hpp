// EventClock — the simulation's notion of time (engine layering, layer 3).
//
// Owns the current step, the execution calendar of scheduled live
// transactions keyed by exec time (the structure that powers the kCalendar
// fast path), and the *merging* of future-event candidates: the runner asks
// one place "when can anything next happen?", combining the calendar,
// workload arrivals, scheduler hints, and any registered EventSource (e.g.
// the distributed protocol's MessageBus) — so no layer special-cases time
// skips.
//
// The calendar is a util/timing_wheel.hpp ring wheel (streaming runs
// schedule and fire millions of entries, so O(log n) heap percolation and
// its pointer chasing were the dominant per-entry cost). The wheel shape
// was proven here in PR 9 and is now shared with the distributed protocol's
// MessageBus; see the wheel header for the exactness invariants. pop_due
// sorts each step's due ids ascending, reproducing the old heap's
// deterministic (time, id) order byte-for-byte — all golden
// commit-sequence pins hold across the extraction.
// calendar_size()/calendar_peak() expose occupancy for the bounded-memory
// evidence streaming benches record.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "core/event_source.hpp"
#include "core/types.hpp"
#include "util/check.hpp"
#include "util/timing_wheel.hpp"

namespace dtm {

class EventClock {
 public:
  /// (time, id) min-heap with deterministic (time, id) tie-breaks — shared
  /// shape for the per-object scheduled-user heaps in the store and the
  /// transport's settle queue.
  template <typename Id>
  using MinHeap =
      std::priority_queue<std::pair<Time, Id>,
                          std::vector<std::pair<Time, Id>>, std::greater<>>;

  static constexpr std::size_t kRingBits = 10;
  static constexpr std::size_t kRingSlots = TimingWheel<TxnId, kRingBits>::kSlots;

  [[nodiscard]] Time now() const { return now_; }

  /// Advances by one step (the end of finish_step).
  void tick() {
    now_ += 1;
    wheel_.advance_to(now_);
  }

  /// Fast-forwards to `t`; callers must not skip past due executions (the
  /// engine guards with its own next_exec_due cross-check, and the wheel
  /// refuses to skip a resident entry).
  void advance_to(Time t) {
    DTM_REQUIRE(t >= now_, "advance_to(" << t << ") before now " << now_);
    now_ = t;
    wheel_.advance_to(t);
  }

  // ---- Execution calendar (kCalendar / kVerify bookkeeping) ----

  /// Registers an irrevocable assignment: `txn` fires at `exec`. Entries
  /// never go stale before they fire (assignments are immutable).
  void schedule(Time exec, TxnId txn) {
    DTM_REQUIRE(exec >= now_,
                "schedule(" << exec << ") in the past (now " << now_ << ")");
    wheel_.schedule(exec, txn);
  }

  /// Earliest scheduled execution, kNoTime if none. O(kRingSlots / 64).
  [[nodiscard]] Time next_scheduled() const { return wheel_.next_time(); }

  /// Pops every calendar entry due exactly now into `out` (ascending id
  /// order for equal times — the order the scan path derives from its
  /// sorted live map) and asserts nothing was missed.
  void pop_due(std::vector<TxnId>& out) {
    const Time next = wheel_.next_time();
    if (next != kNoTime)
      DTM_CHECK(next >= now_, "calendar entry missed its execution step "
                                  << next << " (now " << now_ << ")");
    const std::size_t base = out.size();
    wheel_.drain_until(now_, out);
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end());
  }

  // ---- Calendar introspection (streaming bounded-memory evidence) ----

  /// Entries currently scheduled (ring + overflow).
  [[nodiscard]] std::int64_t calendar_size() const { return wheel_.size(); }
  /// High-water mark of calendar_size() over the clock's lifetime.
  [[nodiscard]] std::int64_t calendar_peak() const { return wheel_.peak(); }
  /// Entries parked beyond the ring horizon.
  [[nodiscard]] std::int64_t calendar_overflow() const {
    return wheel_.overflow_size();
  }

  // ---- Next-event merging ----

  /// min over kNoTime-aware times.
  [[nodiscard]] static Time merge(Time a, Time b) {
    if (a == kNoTime) return b;
    if (b == kNoTime) return a;
    return a < b ? a : b;
  }

  /// Merges candidate event times and registered sources into the earliest
  /// future step anything can happen, floored at now (a source may report a
  /// pending event "in the past": deliver it this step). kNoTime = nothing
  /// will ever happen again.
  [[nodiscard]] Time next_event(
      std::initializer_list<Time> candidates,
      std::span<const EventSource* const> sources = {}) const {
    Time next = kNoTime;
    for (const Time t : candidates) {
      if (t == kNoTime) continue;
      next = merge(next, t < now_ ? now_ : t);
    }
    for (const EventSource* s : sources) {
      const Time t = s->next_event_time();
      if (t == kNoTime) continue;
      next = merge(next, t < now_ ? now_ : t);
    }
    return next;
  }

 private:
  Time now_ = 0;
  TimingWheel<TxnId, kRingBits> wheel_;
};

}  // namespace dtm
