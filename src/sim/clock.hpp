// EventClock — the simulation's notion of time (engine layering, layer 3).
//
// Owns the current step, the execution calendar (the min-heap of scheduled
// live transactions keyed by exec time that powers the kCalendar fast path),
// and the *merging* of future-event candidates: the runner asks one place
// "when can anything next happen?", combining the calendar, workload
// arrivals, scheduler hints, and any registered EventSource (e.g. the
// distributed protocol's MessageBus) — so no layer special-cases time skips.
#pragma once

#include <initializer_list>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "core/event_source.hpp"
#include "core/types.hpp"
#include "util/check.hpp"

namespace dtm {

class EventClock {
 public:
  /// (time, id) min-heap with deterministic (time, id) tie-breaks — shared
  /// shape for the calendar here and the per-object heaps in the store.
  template <typename Id>
  using MinHeap =
      std::priority_queue<std::pair<Time, Id>,
                          std::vector<std::pair<Time, Id>>, std::greater<>>;

  [[nodiscard]] Time now() const { return now_; }

  /// Advances by one step (the end of finish_step).
  void tick() { now_ += 1; }

  /// Fast-forwards to `t`; callers must not skip past due executions (the
  /// engine guards with its own next_exec_due cross-check).
  void advance_to(Time t) {
    DTM_REQUIRE(t >= now_, "advance_to(" << t << ") before now " << now_);
    now_ = t;
  }

  // ---- Execution calendar (kCalendar / kVerify bookkeeping) ----

  /// Registers an irrevocable assignment: `txn` fires at `exec`. Entries
  /// never go stale before they fire (assignments are immutable).
  void schedule(Time exec, TxnId txn) { calendar_.emplace(exec, txn); }

  /// Earliest scheduled execution, kNoTime if none. O(1).
  [[nodiscard]] Time next_scheduled() const {
    return calendar_.empty() ? kNoTime : calendar_.top().first;
  }

  /// Pops every calendar entry due exactly now into `out` (ascending id
  /// order for equal times — the order the scan path derives from its
  /// sorted live map) and asserts nothing was missed.
  void pop_due(std::vector<TxnId>& out) {
    if (!calendar_.empty())
      DTM_CHECK(calendar_.top().first >= now_,
                "txn " << calendar_.top().second
                       << " missed its execution step " << calendar_.top().first
                       << " (now " << now_ << ")");
    while (!calendar_.empty() && calendar_.top().first == now_) {
      out.push_back(calendar_.top().second);
      calendar_.pop();
    }
  }

  // ---- Next-event merging ----

  /// min over kNoTime-aware times.
  [[nodiscard]] static Time merge(Time a, Time b) {
    if (a == kNoTime) return b;
    if (b == kNoTime) return a;
    return a < b ? a : b;
  }

  /// Merges candidate event times and registered sources into the earliest
  /// future step anything can happen, floored at now (a source may report a
  /// pending event "in the past": deliver it this step). kNoTime = nothing
  /// will ever happen again.
  [[nodiscard]] Time next_event(
      std::initializer_list<Time> candidates,
      std::span<const EventSource* const> sources = {}) const {
    Time next = kNoTime;
    for (const Time t : candidates) {
      if (t == kNoTime) continue;
      next = merge(next, t < now_ ? now_ : t);
    }
    for (const EventSource* s : sources) {
      const Time t = s->next_event_time();
      if (t == kNoTime) continue;
      next = merge(next, t < now_ ? now_ : t);
    }
    return next;
  }

 private:
  Time now_ = 0;
  MinHeap<TxnId> calendar_;
};

}  // namespace dtm
