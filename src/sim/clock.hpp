// EventClock — the simulation's notion of time (engine layering, layer 3).
//
// Owns the current step, the execution calendar of scheduled live
// transactions keyed by exec time (the structure that powers the kCalendar
// fast path), and the *merging* of future-event candidates: the runner asks
// one place "when can anything next happen?", combining the calendar,
// workload arrivals, scheduler hints, and any registered EventSource (e.g.
// the distributed protocol's MessageBus) — so no layer special-cases time
// skips.
//
// The calendar is a ring-buffered timing wheel (streaming runs schedule and
// fire millions of entries, so O(log n) heap percolation and its pointer
// chasing were the dominant per-entry cost): kRingSlots buckets cover the
// near future [now, now + kRingSlots); an entry at time t lives in bucket
// t mod kRingSlots, so insert and pop are O(1) array appends. Entries
// beyond the horizon go to a small overflow min-heap and are popped from
// there when due (no migration pass needed: pop_due and next_scheduled
// consult both structures). Two invariants make the wheel exact:
//   - nothing is scheduled in the past (the engine enforces exec >= now),
//     and nothing is missed (pop_due asserts), so every resident ring entry
//     has time in [now, now + kRingSlots) — each bucket holds exactly ONE
//     distinct time and needs no per-entry time field;
//   - pop_due sorts each step's due ids ascending, reproducing the old
//     heap's deterministic (time, id) order byte-for-byte — all golden
//     commit-sequence pins hold across the swap.
// A 64-bit occupancy bitmap over the slots makes next_scheduled() a scan of
// at most kRingSlots/64 + 1 words. calendar_size()/calendar_peak() expose
// occupancy for the bounded-memory evidence streaming benches record.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <initializer_list>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "core/event_source.hpp"
#include "core/types.hpp"
#include "util/check.hpp"

namespace dtm {

class EventClock {
 public:
  /// (time, id) min-heap with deterministic (time, id) tie-breaks — shared
  /// shape for the calendar overflow here and the per-object heaps in the
  /// store.
  template <typename Id>
  using MinHeap =
      std::priority_queue<std::pair<Time, Id>,
                          std::vector<std::pair<Time, Id>>, std::greater<>>;

  static constexpr std::size_t kRingBits = 10;
  static constexpr std::size_t kRingSlots = std::size_t{1} << kRingBits;

  [[nodiscard]] Time now() const { return now_; }

  /// Advances by one step (the end of finish_step).
  void tick() { now_ += 1; }

  /// Fast-forwards to `t`; callers must not skip past due executions (the
  /// engine guards with its own next_exec_due cross-check).
  void advance_to(Time t) {
    DTM_REQUIRE(t >= now_, "advance_to(" << t << ") before now " << now_);
    now_ = t;
  }

  // ---- Execution calendar (kCalendar / kVerify bookkeeping) ----

  /// Registers an irrevocable assignment: `txn` fires at `exec`. Entries
  /// never go stale before they fire (assignments are immutable).
  void schedule(Time exec, TxnId txn) {
    DTM_REQUIRE(exec >= now_,
                "schedule(" << exec << ") in the past (now " << now_ << ")");
    if (exec - now_ < static_cast<Time>(kRingSlots)) {
      const auto s = slot_of(exec);
      ring_[s].push_back(txn);
      occ_[s >> 6] |= std::uint64_t{1} << (s & 63);
    } else {
      overflow_.emplace(exec, txn);
    }
    ++size_;
    peak_ = std::max(peak_, size_);
  }

  /// Earliest scheduled execution, kNoTime if none. O(kRingSlots / 64).
  [[nodiscard]] Time next_scheduled() const {
    const Time ring = ring_next_time();
    const Time over = overflow_.empty() ? kNoTime : overflow_.top().first;
    return merge(ring, over);
  }

  /// Pops every calendar entry due exactly now into `out` (ascending id
  /// order for equal times — the order the scan path derives from its
  /// sorted live map) and asserts nothing was missed.
  void pop_due(std::vector<TxnId>& out) {
    const Time next = next_scheduled();
    if (next != kNoTime)
      DTM_CHECK(next >= now_, "calendar entry missed its execution step "
                                  << next << " (now " << now_ << ")");
    const std::size_t base = out.size();
    const auto s = slot_of(now_);
    if ((occ_[s >> 6] >> (s & 63)) & 1u) {
      // Ring invariant: every resident entry's time is in
      // [now, now + kRingSlots), so this bucket holds exactly the entries
      // due now.
      auto& bucket = ring_[s];
      out.insert(out.end(), bucket.begin(), bucket.end());
      bucket.clear();
      occ_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
    }
    while (!overflow_.empty() && overflow_.top().first == now_) {
      out.push_back(overflow_.top().second);
      overflow_.pop();
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end());
    size_ -= static_cast<std::int64_t>(out.size() - base);
  }

  // ---- Calendar introspection (streaming bounded-memory evidence) ----

  /// Entries currently scheduled (ring + overflow).
  [[nodiscard]] std::int64_t calendar_size() const { return size_; }
  /// High-water mark of calendar_size() over the clock's lifetime.
  [[nodiscard]] std::int64_t calendar_peak() const { return peak_; }
  /// Entries parked beyond the ring horizon.
  [[nodiscard]] std::int64_t calendar_overflow() const {
    return static_cast<std::int64_t>(overflow_.size());
  }

  // ---- Next-event merging ----

  /// min over kNoTime-aware times.
  [[nodiscard]] static Time merge(Time a, Time b) {
    if (a == kNoTime) return b;
    if (b == kNoTime) return a;
    return a < b ? a : b;
  }

  /// Merges candidate event times and registered sources into the earliest
  /// future step anything can happen, floored at now (a source may report a
  /// pending event "in the past": deliver it this step). kNoTime = nothing
  /// will ever happen again.
  [[nodiscard]] Time next_event(
      std::initializer_list<Time> candidates,
      std::span<const EventSource* const> sources = {}) const {
    Time next = kNoTime;
    for (const Time t : candidates) {
      if (t == kNoTime) continue;
      next = merge(next, t < now_ ? now_ : t);
    }
    for (const EventSource* s : sources) {
      const Time t = s->next_event_time();
      if (t == kNoTime) continue;
      next = merge(next, t < now_ ? now_ : t);
    }
    return next;
  }

 private:
  static constexpr std::size_t kMask = kRingSlots - 1;
  static constexpr std::size_t kWords = kRingSlots / 64;

  [[nodiscard]] static std::size_t slot_of(Time t) {
    return static_cast<std::size_t>(t) & kMask;
  }

  /// Earliest ring entry's time: circular occupancy scan starting at now's
  /// slot (slot order from there IS time order, by the ring invariant).
  [[nodiscard]] Time ring_next_time() const {
    if (size_ - static_cast<std::int64_t>(overflow_.size()) == 0)
      return kNoTime;
    const std::size_t s0 = slot_of(now_);
    const std::size_t w0 = s0 >> 6;
    const std::size_t b0 = s0 & 63;
    for (std::size_t i = 0; i <= kWords; ++i) {
      const std::size_t wi = (w0 + i) % kWords;
      std::uint64_t w = occ_[wi];
      if (i == 0) w &= ~std::uint64_t{0} << b0;
      if (i == kWords) w &= b0 ? ~std::uint64_t{0} >> (64 - b0) : 0;
      if (w == 0) continue;
      const std::size_t s =
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return now_ + static_cast<Time>((s - s0) & kMask);
    }
    return kNoTime;  // unreachable while the ring count is > 0
  }

  Time now_ = 0;
  std::array<std::vector<TxnId>, kRingSlots> ring_;
  std::array<std::uint64_t, kWords> occ_{};
  MinHeap<TxnId> overflow_;
  std::int64_t size_ = 0;
  std::int64_t peak_ = 0;
};

}  // namespace dtm
