#include "sim/transport.hpp"

#include <algorithm>

namespace dtm {

TxnId SyncObjectTransport::reroute_target_scan(
    const TxnStore::ObjEntry& e) const {
  const auto& live = store_->live();
  TxnId best = kNoTxn;
  Time best_exec = kNoTime;
  for (const TxnId uid : e.users) {
    const Time ex = live.at(uid).exec;
    if (ex == kNoTime) continue;
    if (best == kNoTxn || ex < best_exec ||
        (ex == best_exec && uid < best)) {
      best = uid;
      best_exec = ex;
    }
  }
  return best;
}

TxnId SyncObjectTransport::reroute_target_calendar(TxnStore::ObjEntry& e) {
  // Entries go stale only when their transaction commits (assignments are
  // irrevocable), so the first live top is the earliest scheduled user —
  // the (exec, id) heap order reproduces the scan's tie-break exactly.
  while (!e.sched.empty()) {
    const TxnId uid = e.sched.top().second;
    if (store_->live().count(uid)) return uid;
    e.sched.pop();
  }
  return kNoTxn;
}

void SyncObjectTransport::reroute(ObjId o, Time now) {
  TxnStore::ObjEntry& e = store_->obj_entry(o);
  TxnId best = kNoTxn;
  switch (opts_.mode) {
    case EngineOptions::Mode::kScan:
      best = reroute_target_scan(e);
      break;
    case EngineOptions::Mode::kCalendar:
      best = reroute_target_calendar(e);
      break;
    case EngineOptions::Mode::kVerify: {
      best = reroute_target_calendar(e);
      const TxnId scan = reroute_target_scan(e);
      DTM_CHECK(best == scan, "reroute(" << o << ") diverges: calendar "
                                         << best << " vs scan " << scan);
      break;
    }
  }
  if (best == kNoTxn) return;
  // Leg signature before routing, to detect a genuinely new/redirected leg.
  const bool was_transit = e.state.in_transit();
  const NodeId old_to = was_transit ? e.state.dest() : kNoNode;
  const Time old_depart = was_transit ? e.state.depart_time() : kNoTime;
  const Time old_arrive = was_transit ? e.state.arrive_time() : kNoTime;
  e.state.route_to(store_->live().at(best).txn.node, now, *oracle_,
                   opts_.latency_factor);
  if (stalling_ && e.state.in_transit() &&
      (!was_transit || e.state.dest() != old_to ||
       e.state.depart_time() != old_depart ||
       e.state.arrive_time() != old_arrive))
    maybe_stall(e, best);
  if (opts_.mode != EngineOptions::Mode::kScan && e.state.in_transit())
    settle_queue_.emplace(e.state.arrive_time(), store_->obj_index(e));
}

void SyncObjectTransport::maybe_stall(TxnStore::ObjEntry& e, TxnId best) {
  // One draw per fresh leg (no-op reroutes never reach here, so repeated
  // reroutes toward an unchanged target cannot compound stalls). Reroute
  // order is mode-invariant, so the draw sequence — and hence the whole
  // simulation — stays identical across kScan/kCalendar/kVerify.
  if (!stall_rng_.bernoulli(opts_.fault.stall)) return;
  // The stall may consume at most the slack before the earliest scheduled
  // user runs: schedules already committed to by ANY policy remain feasible,
  // and time_to()'s two-route bound stays valid on the stretched leg.
  const Time slack = store_->live().at(best).exec - e.state.arrive_time();
  if (slack <= 0) return;
  const Time extra =
      std::min<Time>(slack, stall_rng_.uniform_int(1, opts_.fault.stall_max));
  e.state.delay_arrival(extra);
  ++stalls_;
  stall_steps_ += extra;
}

void SyncObjectTransport::settle_arrivals(Time now) {
  if (opts_.mode == EngineOptions::Mode::kScan) {
    for (auto& e : store_->objects()) e.state.settle(now);
    return;
  }
  while (!settle_queue_.empty() && settle_queue_.top().first <= now) {
    store_->obj_at(settle_queue_.top().second).state.settle(now);
    settle_queue_.pop();
  }
}

void SyncObjectTransport::verify_settled(Time now) const {
  for (const auto& e : store_->objects())
    DTM_CHECK(!(e.state.in_transit() && e.state.arrive_time() <= now),
              "object " << e.id << " missed settlement at step " << now);
}

}  // namespace dtm
