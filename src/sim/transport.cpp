#include "sim/transport.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace dtm {

TxnId SyncObjectTransport::reroute_target_scan(
    const TxnStore::ObjEntry& e) const {
  const auto& live = store_->live();
  TxnId best = kNoTxn;
  Time best_exec = kNoTime;
  for (const TxnId uid : e.users) {
    const Time ex = live.at(uid).exec;
    if (ex == kNoTime) continue;
    if (best == kNoTxn || ex < best_exec ||
        (ex == best_exec && uid < best)) {
      best = uid;
      best_exec = ex;
    }
  }
  return best;
}

TxnId SyncObjectTransport::reroute_target_calendar(TxnStore::ObjEntry& e) {
  // O(1) hit path: the cache, when set, IS the min (exec, id) over live
  // scheduled users (maintained by the engine on assignment and cleared by
  // the store when the cached transaction commits — see ObjEntry).
  if (e.best_user != kNoTxn) return e.best_user;
  // Miss: re-derive from the heap. Entries go stale only when their
  // transaction commits (assignments are irrevocable), so the first live
  // top is the earliest scheduled user — the (exec, id) heap order
  // reproduces the scan's tie-break exactly — and it refills the cache.
  while (!e.sched.empty()) {
    const auto [exec, uid] = e.sched.top();
    const auto it = store_->live().find(uid);
    if (it != store_->live().end()) {
      e.best_user = uid;
      e.best_exec = exec;
      e.best_node = it->second.txn.node;
      return uid;
    }
    e.sched.pop();
  }
  return kNoTxn;
}

void SyncObjectTransport::reroute(ObjId o, Time now) {
  reroute_impl(store_->obj_entry(o), now, nullptr);
}

void SyncObjectTransport::reroute_impl(TxnStore::ObjEntry& e, Time now,
                                       SettleBuffer* out) {
  TxnId best = kNoTxn;
  switch (opts_.mode) {
    case EngineOptions::Mode::kScan:
      best = reroute_target_scan(e);
      break;
    case EngineOptions::Mode::kCalendar:
    case EngineOptions::Mode::kVerifyParallel:
      best = reroute_target_calendar(e);
      break;
    case EngineOptions::Mode::kVerify: {
      best = reroute_target_calendar(e);
      const TxnId scan = reroute_target_scan(e);
      DTM_CHECK(best == scan, "reroute(" << e.id << ") diverges: calendar "
                                         << best << " vs scan " << scan);
      break;
    }
  }
  if (best == kNoTxn) return;
  // Leg signature before routing, to detect a genuinely new/redirected leg.
  const bool was_transit = e.state.in_transit();
  const NodeId old_to = was_transit ? e.state.dest() : kNoNode;
  const Time old_depart = was_transit ? e.state.depart_time() : kNoTime;
  const Time old_arrive = was_transit ? e.state.arrive_time() : kNoTime;
  // The cache carries the target's node, sparing the live-map lookup on the
  // hot (calendar) path; the scan path derives best without the cache.
  const NodeId dest = e.best_user == best ? e.best_node
                                          : store_->live().at(best).txn.node;
  e.state.route_to(dest, now, *oracle_, opts_.latency_factor);
  if (stalling_ && e.state.in_transit() &&
      (!was_transit || e.state.dest() != old_to ||
       e.state.depart_time() != old_depart ||
       e.state.arrive_time() != old_arrive))
    maybe_stall(e, best);
  if (opts_.mode != EngineOptions::Mode::kScan && e.state.in_transit()) {
    if (out != nullptr)
      out->emplace_back(e.state.arrive_time(), store_->obj_index(e));
    else
      settle_queue_.emplace(e.state.arrive_time(), store_->obj_index(e));
  }
}

void SyncObjectTransport::reroute_many(std::span<const ObjId> objs, Time now) {
  const unsigned shards = std::min<std::uint64_t>(
      {resolve_threads(opts_.threads), objs.size(), 64});
  // Stall injection draws one RNG value per fresh leg in request order —
  // a shared sequential stream — so an active stall plan forces the serial
  // path (chaos runs are thread-count-invariant by construction).
  if (shards <= 1 || stalling_) {
    for (const ObjId o : objs) reroute(o, now);
    return;
  }
  // Ownership sharding: object with dense index i belongs to worker
  // i % shards. Every worker scans the full request list and handles only
  // its own objects, preserving each object's request order, so the final
  // per-object state is identical to the serial loop's. Settle pushes are
  // buffered per worker and merged after the barrier — the queue is a heap
  // keyed on unique (time, index) pairs, so insertion order is invisible.
  shard_idx_.clear();
  shard_idx_.reserve(objs.size());
  for (const ObjId o : objs)
    shard_idx_.push_back(store_->obj_index(store_->obj_entry(o)));
  if (shard_settles_.size() < shards) shard_settles_.resize(shards);
  ThreadPool::shared().run(
      shards,
      [&](std::int64_t w) {
        SettleBuffer& buf = shard_settles_[static_cast<std::size_t>(w)];
        buf.clear();
        for (std::size_t r = 0; r < shard_idx_.size(); ++r) {
          if (shard_idx_[r] % static_cast<std::int32_t>(shards) != w)
            continue;
          reroute_impl(store_->obj_at(shard_idx_[r]), now, &buf);
        }
      },
      shards, 1);
  for (unsigned w = 0; w < shards; ++w)
    for (const auto& [at, idx] : shard_settles_[w])
      settle_queue_.emplace(at, idx);
}

void SyncObjectTransport::maybe_stall(TxnStore::ObjEntry& e, TxnId best) {
  // One draw per fresh leg (no-op reroutes never reach here, so repeated
  // reroutes toward an unchanged target cannot compound stalls). Reroute
  // order is mode-invariant, so the draw sequence — and hence the whole
  // simulation — stays identical across kScan/kCalendar/kVerify.
  if (!stall_rng_.bernoulli(opts_.fault.stall)) return;
  // The stall may consume at most the slack before the earliest scheduled
  // user runs: schedules already committed to by ANY policy remain feasible,
  // and time_to()'s two-route bound stays valid on the stretched leg.
  const Time slack = store_->live().at(best).exec - e.state.arrive_time();
  if (slack <= 0) return;
  const Time extra =
      std::min<Time>(slack, stall_rng_.uniform_int(1, opts_.fault.stall_max));
  e.state.delay_arrival(extra);
  ++stalls_;
  stall_steps_ += extra;
}

void SyncObjectTransport::settle_arrivals(Time now) {
  if (opts_.mode == EngineOptions::Mode::kScan) {
    auto& objects = store_->objects();
    const unsigned par = resolve_threads(opts_.threads);
    if (par > 1 && objects.size() >= 256) {
      // Settles touch only their own entry; chunked so workers stream
      // contiguous cache lines.
      ThreadPool::shared().run(
          static_cast<std::int64_t>(objects.size()),
          [&](std::int64_t i) {
            objects[static_cast<std::size_t>(i)].state.settle(now);
          },
          par);
    } else {
      for (auto& e : objects) e.state.settle(now);
    }
    return;
  }
  while (!settle_queue_.empty() && settle_queue_.top().first <= now) {
    store_->obj_at(settle_queue_.top().second).state.settle(now);
    settle_queue_.pop();
  }
}

void SyncObjectTransport::verify_settled(Time now) const {
  for (const auto& e : store_->objects())
    DTM_CHECK(!(e.state.in_transit() && e.state.arrive_time() <= now),
              "object " << e.id << " missed settlement at step " << now);
}

}  // namespace dtm
