// Workload generators: the transaction arrival processes the experiments
// run against.
//
// The paper's scheduling problems (§III-C, §IV-D) have one live transaction
// per node requesting up to k objects; dynamic arrivals repeat the process
// ("once a transaction completes execution, the node issues in the next
// step a new transaction"). SyntheticWorkload generalizes this with object
// popularity skew (Zipf hotspots) and stochastic think times; Scripted-
// Workload replays an explicit arrival list for tests and adversarial
// scenarios.
#pragma once

#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace dtm {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Objects and their origins; called once before the run.
  [[nodiscard]] virtual std::vector<ObjectOrigin> objects() = 0;

  /// Transactions generated at step `now` (monotone calls).
  [[nodiscard]] virtual std::vector<Transaction> arrivals_at(Time now) = 0;

  /// Feedback for closed-loop generators: `txn` committed at `exec`.
  virtual void on_commit(TxnId /*txn*/, Time /*exec*/) {}

  /// Next step with pending arrivals, kNoTime if none (lets the engine
  /// fast-forward idle stretches).
  [[nodiscard]] virtual Time next_arrival_time() const = 0;

  /// True when no further arrivals will ever be produced.
  [[nodiscard]] virtual bool finished() const = 0;

  /// All transactions generated so far (for lower bounds / validation).
  [[nodiscard]] virtual const std::vector<Transaction>& generated() const = 0;
};

struct SyntheticOptions {
  std::int32_t num_objects = 0;  ///< 0 => one object per node
  std::int32_t k = 2;            ///< objects requested per transaction
  double zipf_s = 0.0;           ///< 0 = uniform object popularity
  std::int32_t rounds = 1;       ///< transactions issued per node
  /// Think time between a node's commit and its next transaction:
  /// fixed `gap` steps, or geometric with parameter `arrival_prob` when
  /// arrival_prob > 0 (stochastic open-ish loop).
  Time gap = 1;
  double arrival_prob = 0.0;
  double node_participation = 1.0;  ///< fraction of nodes issuing txns
  /// Probability that each access is a write (1.0 = the paper's exclusive
  /// model; < 1.0 only matters to the read-write extension — the base
  /// conflict relation ignores modes).
  double write_fraction = 1.0;
  std::uint64_t seed = 42;
};

class SyntheticWorkload final : public Workload {
 public:
  SyntheticWorkload(const Network& net, SyntheticOptions opts);

  [[nodiscard]] std::vector<ObjectOrigin> objects() override;
  [[nodiscard]] std::vector<Transaction> arrivals_at(Time now) override;
  void on_commit(TxnId txn, Time exec) override;
  [[nodiscard]] Time next_arrival_time() const override;
  [[nodiscard]] bool finished() const override;
  [[nodiscard]] const std::vector<Transaction>& generated() const override {
    return generated_;
  }

 private:
  [[nodiscard]] std::vector<ObjId> sample_objects();

  const Network& net_;
  SyntheticOptions opts_;
  Rng rng_;
  std::unique_ptr<ZipfSampler> zipf_;
  std::vector<NodeId> participants_;
  std::vector<std::int32_t> issued_;  ///< per participant index
  std::map<TxnId, std::size_t> owner_;  ///< txn -> participant index

  struct Pending {
    Time when;
    std::size_t participant;
    bool operator>(const Pending& o) const { return when > o.when; }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::vector<Transaction> generated_;
  TxnId next_id_ = 0;
};

/// Replays an explicit arrival list (sorted by gen_time internally).
class ScriptedWorkload final : public Workload {
 public:
  ScriptedWorkload(std::vector<ObjectOrigin> origins,
                   std::vector<Transaction> txns);

  [[nodiscard]] std::vector<ObjectOrigin> objects() override {
    return origins_;
  }
  [[nodiscard]] std::vector<Transaction> arrivals_at(Time now) override;
  [[nodiscard]] Time next_arrival_time() const override;
  [[nodiscard]] bool finished() const override { return next_ == txns_.size(); }
  [[nodiscard]] const std::vector<Transaction>& generated() const override {
    return txns_;
  }

 private:
  std::vector<ObjectOrigin> origins_;
  std::vector<Transaction> txns_;
  std::size_t next_ = 0;
};

}  // namespace dtm
