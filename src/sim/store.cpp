#include "sim/store.hpp"

#include <algorithm>

namespace dtm {

TxnStore::TxnStore(std::vector<ObjectOrigin> origins,
                   const DistanceOracle& oracle)
    : origins_(std::move(origins)) {
  objects_.reserve(origins_.size());
  for (const auto& o : origins_) {
    DTM_REQUIRE(o.node >= 0 && o.node < oracle.num_nodes(),
                "object " << o.id << " origin node " << o.node);
    DTM_REQUIRE(o.created <= 0, "objects must exist from the start of the "
                                "simulation (object " << o.id << ")");
    ObjEntry e;
    e.id = o.id;
    e.state = ObjectState(o.id, o.node, o.created);
    objects_.push_back(std::move(e));
  }
  std::sort(objects_.begin(), objects_.end(),
            [](const ObjEntry& a, const ObjEntry& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < objects_.size(); ++i)
    DTM_CHECK(objects_[i - 1].id != objects_[i].id,
              "duplicate object id " << objects_[i].id);
}

const TxnStore::ObjEntry* TxnStore::find_obj(ObjId o) const {
  const auto it = std::lower_bound(
      objects_.begin(), objects_.end(), o,
      [](const ObjEntry& e, ObjId id) { return e.id < id; });
  if (it == objects_.end() || it->id != o) return nullptr;
  return &*it;
}

TxnStore::ObjEntry* TxnStore::find_obj(ObjId o) {
  return const_cast<ObjEntry*>(
      static_cast<const TxnStore*>(this)->find_obj(o));
}

TxnStore::ObjEntry& TxnStore::obj_entry(ObjId o) {
  ObjEntry* e = find_obj(o);
  DTM_REQUIRE(e != nullptr, "unknown object " << o);
  return *e;
}

void TxnStore::add_live(const Transaction& t) {
  const bool inserted = live_.emplace(t.id, LiveTxn{t, kNoTime}).second;
  DTM_CHECK(inserted, "duplicate txn id " << t.id);
  live_ids_dirty_ = true;
  for (const auto& a : t.accesses) obj_entry(a.obj).users.push_back(t.id);
}

void TxnStore::commit(std::map<TxnId, LiveTxn>::iterator it, Time exec) {
  LiveTxn lt = std::move(it->second);
  const TxnId id = lt.txn.id;
  for (const auto& acc : lt.txn.accesses) {
    auto& e = obj_entry(acc.obj);
    e.users.erase(std::remove(e.users.begin(), e.users.end(), id),
                  e.users.end());
    if (e.best_user == id) {
      // The cached reroute target was the committing transaction: the next
      // lookup re-derives the min from the heap.
      e.best_user = kNoTxn;
      e.best_exec = kNoTime;
      e.best_node = kNoNode;
    }
  }
  committed_.push_back({std::move(lt.txn), exec});
  live_.erase(it);
  live_ids_dirty_ = true;
}

std::span<const TxnId> TxnStore::live_ids() const {
  if (live_ids_dirty_) {
    live_ids_.clear();
    live_ids_.reserve(live_.size());
    for (const auto& [id, _] : live_) live_ids_.push_back(id);
    live_ids_dirty_ = false;
  }
  return live_ids_;
}

}  // namespace dtm
