// Adversarial arrival patterns for worst-case experiments.
//
// The paper's competitive guarantees quantify over ALL arrival sequences;
// uniform random closed loops (SyntheticWorkload) are friendly to every
// scheduler. These generators craft the sequences that separate the
// algorithms:
//  - kFarThenNear exploits schedule irrevocability: a far transaction grabs
//    the object's trajectory, then a burst of near transactions arrives one
//    step later and must wait out the round trip (the greedy scheduler's
//    weak spot; the bucket scheduler's level separation absorbs it);
//  - kMovingHotspot drags one hot object's user population across the
//    graph wave by wave (stresses spread/locality decisions);
//  - kConvoy sends every node after the same object every wave (maximum
//    l_max serialization, the Theorem 3 regime).
#pragma once

#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "sim/workload.hpp"

namespace dtm {

enum class AdversaryKind { kFarThenNear, kMovingHotspot, kConvoy };

[[nodiscard]] std::string to_string(AdversaryKind k);

struct AdversaryOptions {
  AdversaryKind kind = AdversaryKind::kFarThenNear;
  std::int32_t waves = 4;
  /// Near-burst size per wave (kFarThenNear) or users per wave
  /// (kMovingHotspot); kConvoy uses every node.
  std::int32_t burst = 8;
  /// Steps between waves; 0 = auto (diameter-scaled so waves interact but
  /// do not trivially serialize).
  Time wave_gap = 0;
  std::uint64_t seed = 1;
};

/// Builds the scripted instance: object origins plus a time-stamped
/// transaction list, ready to wrap in a ScriptedWorkload.
[[nodiscard]] std::pair<std::vector<ObjectOrigin>, std::vector<Transaction>>
make_adversarial_instance(const Network& net, const AdversaryOptions& opts);

/// Convenience wrapper.
[[nodiscard]] ScriptedWorkload make_adversarial_workload(
    const Network& net, const AdversaryOptions& opts);

}  // namespace dtm
