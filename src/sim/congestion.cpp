#include "sim/congestion.hpp"

#include <algorithm>
#include <map>

namespace dtm {

namespace {

struct ObjSim {
  ObjId id = kNoObj;
  NodeId at = kNoNode;
  bool crossing = false;
  NodeId cross_to = kNoNode;
  Time cross_exit = kNoTime;
  Time wait_since = kNoTime;  ///< first step it wanted its current hop
  std::vector<std::size_t> users;  ///< indices into scheduled, exec order
  std::size_t head = 0;
};

}  // namespace

CongestionResult replay_under_congestion(
    const Network& net, const RoutingTable& routes,
    const std::vector<ObjectOrigin>& origins,
    const std::vector<ScheduledTxn>& scheduled,
    const CongestionOptions& opts) {
  CongestionResult out;
  out.scheduled_makespan = makespan(scheduled);

  // Global execution order: (exec, id). All per-object user queues derive
  // from it, which keeps waits-for acyclic.
  std::vector<std::size_t> order(scheduled.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (scheduled[a].exec != scheduled[b].exec)
                       return scheduled[a].exec < scheduled[b].exec;
                     return scheduled[a].txn.id < scheduled[b].txn.id;
                   });

  std::map<ObjId, ObjSim> objs;
  for (const auto& o : origins) {
    ObjSim s;
    s.id = o.id;
    s.at = o.node;
    objs[o.id] = s;
  }
  for (const std::size_t i : order)
    for (const auto& a : scheduled[i].txn.accesses) {
      const auto it = objs.find(a.obj);
      DTM_CHECK(it != objs.end(), "object " << a.obj << " has no origin");
      it->second.users.push_back(i);
    }

  std::vector<bool> committed(scheduled.size(), false);
  std::int64_t remaining = static_cast<std::int64_t>(scheduled.size());
  out.commit_times.reserve(scheduled.size());

  for (Time t = 0; remaining > 0; ++t) {
    DTM_CHECK(t < opts.max_steps, "congestion replay exceeded step cap");
    // 1. Edge exits.
    for (auto& [_, o] : objs) {
      if (o.crossing && o.cross_exit <= t) {
        o.at = o.cross_to;
        o.crossing = false;
        o.wait_since = kNoTime;
      }
    }
    // 2. Commits: a transaction fires when it heads every requested
    //    object's queue and all those objects rest at its node. One pass
    //    per step (same-object successors wait a step, as in the model).
    for (std::size_t i = 0; i < scheduled.size(); ++i) {
      if (committed[i]) continue;
      const auto& s = scheduled[i];
      if (s.txn.gen_time > t) continue;
      bool ready = true;
      for (const auto& a : s.txn.accesses) {
        const ObjSim& o = objs.at(a.obj);
        if (o.crossing || o.at != s.txn.node || o.head >= o.users.size() ||
            o.users[o.head] != i) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      committed[i] = true;
      --remaining;
      out.achieved_makespan = std::max(out.achieved_makespan, t);
      out.commit_times.emplace_back(s.txn.id, t);
      for (const auto& a : s.txn.accesses) {
        ObjSim& o = objs.at(a.obj);
        ++o.head;
        o.wait_since = kNoTime;
      }
    }
    // 3. Edge admissions: objects with a pending target request their next
    //    hop; each undirected edge admits up to capacity per step, FIFO by
    //    wait time (ties by object id).
    struct Request {
      Time waited;
      ObjId obj;
      NodeId hop;
    };
    std::map<std::pair<NodeId, NodeId>, std::vector<Request>> requests;
    for (auto& [id, o] : objs) {
      if (o.crossing || o.head >= o.users.size()) continue;
      const std::size_t user = o.users[o.head];
      // Movement is NOT gated on the user's generation time: the replay
      // evaluates a known schedule offline, and the live engine likewise
      // pre-positions objects toward future scheduled users (commits stay
      // gated on gen_time). This keeps unbounded-capacity replay within
      // the scheduled makespan, so stretch baselines at 1.0.
      const NodeId target = scheduled[user].txn.node;
      if (o.at == target) continue;
      if (o.wait_since == kNoTime) o.wait_since = t;
      const NodeId hop = routes.next_hop(o.at, target);
      requests[std::minmax(o.at, hop)].push_back({t - o.wait_since, id, hop});
    }
    for (auto& [edge, reqs] : requests) {
      std::sort(reqs.begin(), reqs.end(), [](const Request& a,
                                             const Request& b) {
        if (a.waited != b.waited) return a.waited > b.waited;  // longest 1st
        return a.obj < b.obj;
      });
      const auto cap = opts.edge_capacity > 0
                           ? static_cast<std::size_t>(opts.edge_capacity)
                           : reqs.size();
      for (std::size_t r = 0; r < reqs.size(); ++r) {
        ObjSim& o = objs.at(reqs[r].obj);
        if (r < cap) {
          out.total_queue_wait += reqs[r].waited;
          out.max_queue_wait = std::max(out.max_queue_wait, reqs[r].waited);
          o.crossing = true;
          o.cross_to = reqs[r].hop;
          o.cross_exit = t + routes.edge_weight(o.at, reqs[r].hop);
          o.wait_since = kNoTime;
        }
      }
      (void)edge;
    }
  }
  out.stretch = out.scheduled_makespan > 0
                    ? static_cast<double>(out.achieved_makespan) /
                          static_cast<double>(out.scheduled_makespan)
                    : 1.0;
  (void)net;
  return out;
}

}  // namespace dtm
