#include "sim/gantt.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace dtm {

std::string render_gantt(const std::vector<ScheduledTxn>& scheduled,
                         NodeId num_nodes, const GanttOptions& opts) {
  DTM_REQUIRE(opts.width >= 8, "gantt width " << opts.width);
  std::ostringstream os;
  if (scheduled.empty()) {
    os << "(empty schedule)\n";
    return os.str();
  }
  Time end = 0;
  for (const auto& s : scheduled) end = std::max(end, s.exec);
  const Time cell = std::max<Time>(1, (end + opts.width) / opts.width);
  const int cols = static_cast<int>(end / cell) + 1;

  std::map<NodeId, std::vector<bool>> rows;
  for (const auto& s : scheduled) {
    auto& row = rows.try_emplace(s.txn.node,
                                 std::vector<bool>(static_cast<std::size_t>(
                                     cols)))
                    .first->second;
    row[static_cast<std::size_t>(s.exec / cell)] = true;
  }
  os << "time 0.." << end << ", " << cell << " step(s)/cell\n";
  for (NodeId u = 0; u < num_nodes; ++u) {
    const auto it = rows.find(u);
    if (it == rows.end() && opts.skip_idle_nodes) continue;
    os << "node " << u << "\t|";
    for (int c = 0; c < cols; ++c) {
      const bool mark =
          it != rows.end() && it->second[static_cast<std::size_t>(c)];
      os << (mark ? '#' : '.');
    }
    os << "|\n";
  }
  return os.str();
}

std::string render_itineraries(const std::vector<ScheduledTxn>& scheduled,
                               const std::vector<ObjectOrigin>& origins,
                               const DistanceOracle& oracle) {
  struct Visit {
    Time exec;
    TxnId id;
    NodeId node;
  };
  std::map<ObjId, std::vector<Visit>> visits;
  for (const auto& s : scheduled)
    for (const auto& a : s.txn.accesses)
      visits[a.obj].push_back({s.exec, s.txn.id, s.txn.node});

  std::ostringstream os;
  for (const auto& o : origins) {
    const auto it = visits.find(o.id);
    os << "obj " << o.id << ": " << o.node << "@" << o.created;
    if (it != visits.end()) {
      auto& vs = it->second;
      std::sort(vs.begin(), vs.end(), [](const Visit& a, const Visit& b) {
        return a.exec < b.exec || (a.exec == b.exec && a.id < b.id);
      });
      NodeId pos = o.node;
      Weight total = 0;
      for (const auto& v : vs) {
        const Weight d = oracle.dist(pos, v.node);
        total += d;
        os << " -(" << d << ")-> " << v.node << "@" << v.exec;
        pos = v.node;
      }
      os << "  [" << vs.size() << " commits, " << total << " travelled]";
    } else {
      os << "  [unused]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dtm
