// Allocation tracking — the memory-discipline measurement layer
// (docs/PERF.md §8).
//
// Built with -DDTM_ALLOC_TRACK=ON, global operator new/delete are replaced
// with counting wrappers: every allocation bumps a thread-local counter
// (exact, race-free — the basis of the zero-allocs-per-step regression
// pins) and a process-wide relaxed atomic (the serve stats' aggregate
// view). Without the option the hooks vanish and every query returns
// zeros with tracking_enabled() == false, so tests and benches can degrade
// to skipping the assertion instead of failing.
//
// AllocScope is the RAII snapshot: construct it, run the region under
// test, and read delta() — the allocations *this thread* performed inside
// the scope. Counting is free of heap use itself, so scopes nest freely.
#pragma once

#include <cstdint>

namespace dtm {

struct AllocCounters {
  std::int64_t allocs = 0;  ///< operator new calls
  std::int64_t frees = 0;   ///< operator delete calls
  std::int64_t bytes = 0;   ///< bytes requested through operator new
};

/// True when this build replaces global operator new/delete
/// (-DDTM_ALLOC_TRACK=ON). Everything below reads zero otherwise.
[[nodiscard]] bool alloc_tracking_enabled();

/// This thread's counters since thread start.
[[nodiscard]] AllocCounters thread_alloc_counters();

/// Process-wide totals (relaxed atomics; exact once threads quiesce).
[[nodiscard]] AllocCounters global_alloc_counters();

/// RAII snapshot of the calling thread's counters.
class AllocScope {
 public:
  AllocScope() : base_(thread_alloc_counters()) {}

  /// Allocations this thread performed since construction.
  [[nodiscard]] AllocCounters delta() const {
    const AllocCounters now = thread_alloc_counters();
    return {now.allocs - base_.allocs, now.frees - base_.frees,
            now.bytes - base_.bytes};
  }
  [[nodiscard]] std::int64_t allocs() const { return delta().allocs; }
  [[nodiscard]] std::int64_t bytes() const { return delta().bytes; }

 private:
  AllocCounters base_;
};

}  // namespace dtm
