#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dtm {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double p) {
  DTM_REQUIRE(!samples.empty(), "percentile of empty sample set");
  DTM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p=" << p);
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace dtm
