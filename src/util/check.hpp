// Checked-assertion macros used throughout the library.
//
// DTM_CHECK fires in every build type: model invariants (schedule validity,
// coloring validity, cover properties) must hold in release benchmarks too,
// because a silently-invalid schedule would fabricate results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dtm {

/// Thrown when a library invariant is violated. Carries the failing
/// expression, source location, and a caller-supplied message.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "DTM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace dtm

/// Always-on invariant check. `msg` is streamed, e.g.
///   DTM_CHECK(a < b, "a=" << a << " b=" << b);
#define DTM_CHECK(cond, ...)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream dtm_check_os_;                                  \
      dtm_check_os_ << "" __VA_ARGS__;                                   \
      ::dtm::detail::check_fail(#cond, __FILE__, __LINE__,               \
                                dtm_check_os_.str());                    \
    }                                                                    \
  } while (0)

/// Cheap precondition check on public API boundaries.
#define DTM_REQUIRE(cond, ...) DTM_CHECK(cond, __VA_ARGS__)
