// Small integer/bit helpers shared across the scheduling layers.
//
// ceil_log2_i64 used to live as a private copy in both bucket schedulers;
// the hash mixers back the bucket fast path's problem fingerprints and its
// derived per-(probe, trial) RNG streams (see batch/bucket_insertion.hpp):
// every randomized draw is seeded from a pure function of the problem
// content, so skipping a memoized estimate cannot desynchronize later
// draws.
#pragma once

#include <cstdint>

namespace dtm {

/// Smallest l with 2^l >= x (0 for x <= 1).
[[nodiscard]] constexpr std::int32_t ceil_log2_i64(std::int64_t x) {
  std::int32_t l = 0;
  std::int64_t p = 1;
  while (p < x) {
    p <<= 1;
    ++l;
  }
  return l;
}

/// splitmix64 finalizer: a cheap, well-distributed 64-bit permutation.
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Order-dependent combine: chain values into a running hash.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t h,
                                                   std::uint64_t v) {
  return hash_mix(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

/// Seed for an independent RNG stream identified by (base seed, salt,
/// content key, index). Pure: the same identity always yields the same
/// stream, which is what makes memoizing seeded estimates sound.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::uint64_t salt,
                                                  std::uint64_t key,
                                                  std::uint64_t index = 0) {
  std::uint64_t h = hash_mix(base ^ salt);
  h = hash_combine(h, key);
  h = hash_combine(h, index);
  return h;
}

}  // namespace dtm
