// Minimal self-contained JSON value: parse, build, serialize.
//
// Exists so RunSpecs are shareable artifacts (files, CI matrices) without
// pulling a dependency into the build. Supports the full JSON grammar with
// the usual simulator-friendly restrictions: numbers round-trip as int64
// when integral (no precision loss on ids/seeds), object keys keep
// insertion order on serialize (std::map order — deterministic diffs).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/check.hpp"

namespace dtm {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : v_(b) {}  // NOLINT(google-explicit-constructor)
  Json(std::int64_t n) : v_(n) {}    // NOLINT(google-explicit-constructor)
  Json(int n) : v_(std::int64_t{n}) {}  // NOLINT(google-explicit-constructor)
  Json(double d) : v_(d) {}          // NOLINT(google-explicit-constructor)
  Json(std::string s) : v_(std::move(s)) {}  // NOLINT
  Json(const char* s) : v_(std::string(s)) {}  // NOLINT
  Json(Array a) : v_(std::move(a)) {}   // NOLINT(google-explicit-constructor)
  Json(Object o) : v_(std::move(o)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::monostate>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return is_int() || std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool() const {
    DTM_REQUIRE(is_bool(), "json: not a bool");
    return std::get<bool>(v_);
  }
  [[nodiscard]] std::int64_t as_int() const {
    DTM_REQUIRE(is_number(), "json: not a number");
    if (is_int()) return std::get<std::int64_t>(v_);
    return static_cast<std::int64_t>(std::get<double>(v_));
  }
  [[nodiscard]] double as_double() const {
    DTM_REQUIRE(is_number(), "json: not a number");
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
    return std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const {
    DTM_REQUIRE(is_string(), "json: not a string");
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& as_array() const {
    DTM_REQUIRE(is_array(), "json: not an array");
    return std::get<Array>(v_);
  }
  [[nodiscard]] const Object& as_object() const {
    DTM_REQUIRE(is_object(), "json: not an object");
    return std::get<Object>(v_);
  }
  [[nodiscard]] Object& as_object() {
    DTM_REQUIRE(is_object(), "json: not an object");
    return std::get<Object>(v_);
  }

  /// Object member access; `has` for optional fields, `at` requires.
  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }
  [[nodiscard]] const Json& at(const std::string& key) const {
    const auto& o = as_object();
    const auto it = o.find(key);
    DTM_REQUIRE(it != o.end(), "json: missing key '" << key << "'");
    return it->second;
  }

  /// Compact single-line serialization (`indent < 0`) or pretty-printed
  /// with the given indent width.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parser; throws CheckError with the byte offset on malformed
  /// input or trailing garbage.
  [[nodiscard]] static Json parse(const std::string& text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               Array, Object>
      v_;
};

}  // namespace dtm
