// SmallVector — an inline-capacity vector for hot small collections
// (docs/PERF.md §8).
//
// The messaging hot path moves many tiny collections per step (a reply's
// conflicting-user list, a discovery's awaited objects); std::vector heap-
// allocates every one of them. SmallVector keeps up to N elements in the
// object itself and only spills to the heap beyond that, so the common case
// allocates nothing and moving a message is a flat copy.
//
// Deliberate restrictions that keep it trivially relocatable:
//   - elements must be trivially copyable (the payloads here are ids and
//     (id, node) pairs) — growth and moves are memcpy, never element moves;
//   - move *construction* steals a spilled buffer and copies inline ones;
//     the source is left empty either way;
//   - move *assignment* additionally reuses the target's existing heap
//     capacity when the source fits in it — the freelist-recycling
//     primitive: `pooled = std::move(reply.users)` parks a spill buffer,
//     `reply.users = std::move(pooled)` revives it, and neither direction
//     touches the allocator once capacities have warmed up;
//   - clear() keeps capacity, exactly like std::vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.hpp"

namespace dtm {

template <typename T, std::size_t N>
class SmallVector {
  // std::pair fails is_trivially_copyable on its non-trivial assignment
  // operator, but memcpy relocation only needs trivial copy-construction
  // and destruction — every byte-copied element is a *new* object.
  static_assert(std::is_trivially_copy_constructible_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "SmallVector holds trivially relocatable payloads only "
                "(growth and moves are memcpy)");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& o) { assign_copy(o); }

  SmallVector(SmallVector&& o) noexcept { steal(std::move(o)); }

  SmallVector& operator=(const SmallVector& o) {
    if (this != &o) {
      clear();
      assign_copy(o);
    }
    return *this;
  }

  /// Move-assign: adopts a spilled source buffer outright; an inline-sized
  /// source is copied into the target's *existing* storage (inline or a
  /// previously grown heap buffer), so pool round-trips never free+realloc.
  SmallVector& operator=(SmallVector&& o) noexcept {
    if (this == &o) return *this;
    if (o.spilled()) {
      release();
      heap_ = o.heap_;
      capacity_ = o.capacity_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.capacity_ = N;
      o.size_ = 0;
      return *this;
    }
    clear();
    reserve(o.size_);
    if (o.size_ > 0) raw_copy(data(), o.data(), o.size_);
    size_ = o.size_;
    o.size_ = 0;
    return *this;
  }

  ~SmallVector() { release(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] static constexpr std::size_t inline_capacity() { return N; }
  /// True when the elements live on the heap (inline capacity exceeded at
  /// some point and not yet released).
  [[nodiscard]] bool spilled() const { return heap_ != nullptr; }

  [[nodiscard]] T* data() { return spilled() ? heap_ : inline_ptr(); }
  [[nodiscard]] const T* data() const {
    return spilled() ? heap_ : inline_ptr();
  }

  [[nodiscard]] iterator begin() { return data(); }
  [[nodiscard]] iterator end() { return data() + size_; }
  [[nodiscard]] const_iterator begin() const { return data(); }
  [[nodiscard]] const_iterator end() const { return data() + size_; }

  [[nodiscard]] T& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }

  [[nodiscard]] T& back() { return data()[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data()[size_ - 1]; }
  [[nodiscard]] T& front() { return data()[0]; }
  [[nodiscard]] const T& front() const { return data()[0]; }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(size_ + 1);
    ::new (static_cast<void*>(data() + size_)) T(v);
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(size_ + 1);
    T* slot =
        ::new (static_cast<void*>(data() + size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    DTM_REQUIRE(size_ > 0, "pop_back on empty SmallVector");
    --size_;
  }

  /// Keeps capacity (inline or spilled), exactly like std::vector::clear.
  void clear() { size_ = 0; }

  void resize(std::size_t n) {
    if (n > capacity_) grow(n);
    for (std::size_t i = size_; i < n; ++i)
      ::new (static_cast<void*>(data() + i)) T();
    size_ = n;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  iterator erase(iterator pos) {
    DTM_REQUIRE(pos >= begin() && pos < end(), "erase out of range");
    if (pos + 1 != end())
      std::memmove(static_cast<void*>(pos), static_cast<const void*>(pos + 1),
                   static_cast<std::size_t>(end() - pos - 1) * sizeof(T));
    --size_;
    return pos;
  }

  [[nodiscard]] bool operator==(const SmallVector& o) const {
    if (size_ != o.size_) return false;
    for (std::size_t i = 0; i < size_; ++i)
      if (!(data()[i] == o.data()[i])) return false;
    return true;
  }

 private:
  [[nodiscard]] T* inline_ptr() {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  [[nodiscard]] const T* inline_ptr() const {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  /// memcpy with void* endpoints: the destination is raw storage about to
  /// hold NEW objects (trivial copy-construction), which -Wclass-memaccess
  /// cannot see through typed pointers. GCC's -Wstringop-overflow range
  /// analysis also invents a grow() path where the fresh buffer is smaller
  /// than size_ — impossible (cap starts at capacity_ >= size_ and only
  /// doubles), so the warning is suppressed here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
  static void raw_copy(T* dst, const T* src, std::size_t n) {
    std::memcpy(static_cast<void*>(dst), static_cast<const void*>(src),
                n * sizeof(T));
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  void assign_copy(const SmallVector& o) {
    reserve(o.size_);
    if (o.size_ > 0) raw_copy(data(), o.data(), o.size_);
    size_ = o.size_;
  }

  void steal(SmallVector&& o) noexcept {
    if (o.spilled()) {
      heap_ = o.heap_;
      capacity_ = o.capacity_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.capacity_ = N;
      o.size_ = 0;
      return;
    }
    if (o.size_ > 0) raw_copy(inline_ptr(), o.inline_ptr(), o.size_);
    size_ = o.size_;
    o.size_ = 0;
  }

  void grow(std::size_t need) {
    std::size_t cap = capacity_;
    while (cap < need) cap *= 2;
    T* fresh = new T[cap];
    if (size_ > 0) raw_copy(fresh, data(), size_);
    release();
    heap_ = fresh;
    capacity_ = cap;
  }

  void release() {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = N;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace dtm
