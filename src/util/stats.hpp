// Streaming and batch statistics used by experiment harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace dtm {

/// Welford streaming accumulator: mean/variance/min/max without storing
/// samples. Used for per-transaction latency aggregation in long runs.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set (nearest-rank). Copies + sorts; intended for
/// end-of-run reporting, not hot paths.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

}  // namespace dtm
