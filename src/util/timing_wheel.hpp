// TimingWheel — the shared ring-buffered event calendar (PERF.md §8,
// ARCHITECTURE.md §11).
//
// PR 9 proved this shape for the engine's execution calendar: a ring of
// kSlots buckets covers the near future [cursor, cursor + kSlots); an entry
// at time t lives in bucket t mod kSlots, so insert and pop are O(1) array
// appends with no heap percolation. Entries beyond the horizon park in a
// small overflow min-heap and pop from there when due (no migration pass:
// the due scan consults both structures). This header extracts that shape
// so the EventClock and the distributed protocol's MessageBus — the two
// busiest time-ordered queues in the system — share one implementation.
//
// Exactness rests on two invariants, both enforced here:
//   - nothing is scheduled before the cursor, and the cursor only advances
//     past a time once everything at it has been drained — so every
//     resident ring entry's time is in [cursor, cursor + kSlots) and each
//     bucket holds exactly ONE distinct time (no per-entry time field);
//   - drain order is (time, insertion order). Within one time, every
//     overflow entry predates every ring entry: an entry parks in overflow
//     only while cursor <= t - kSlots, and lands in the ring only once
//     cursor > t - kSlots — the cursor is monotone, so the overflow-first
//     merge below reproduces exact insertion order. The overflow heap keys
//     on (time, insertion seq) for the same reason.
//
// Slot vectors and the overflow heap keep their capacity across pops, so a
// steady-state schedule → drain loop performs zero heap allocations once
// warmed up — the property the DTM_ALLOC_TRACK pins assert.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "util/check.hpp"

namespace dtm {

template <typename T, std::size_t RingBits = 10>
class TimingWheel {
 public:
  static constexpr std::size_t kSlots = std::size_t{1} << RingBits;

  [[nodiscard]] Time cursor() const { return cursor_; }

  /// Registers `v` at time `t` (>= cursor). O(1) amortized.
  void schedule(Time t, T v) {
    DTM_REQUIRE(t >= cursor_, "timing wheel: schedule(" << t
                                                        << ") before cursor "
                                                        << cursor_);
    if (t - cursor_ < static_cast<Time>(kSlots)) {
      const auto s = slot_of(t);
      ring_[s].push_back(std::move(v));
      occ_[s >> 6] |= std::uint64_t{1} << (s & 63);
      ++ring_count_;
    } else {
      overflow_.push(Overflow{t, over_seq_++, std::move(v)});
    }
    ++size_;
    if (size_ > peak_) peak_ = size_;
  }

  /// Earliest resident time, kNoTime if empty. O(kSlots / 64).
  [[nodiscard]] Time next_time() const {
    const Time ring = ring_next_time();
    const Time over = overflow_.empty() ? kNoTime : overflow_.top().t;
    if (ring == kNoTime) return over;
    if (over == kNoTime) return ring;
    return ring < over ? ring : over;
  }

  /// Pops every entry with time <= `t` into `out` (appending), in
  /// (time, insertion) order, and advances the cursor to `t`. Equal-time
  /// overflow entries come first — see the header invariant: they are
  /// always the older inserts.
  void drain_until(Time t, std::vector<T>& out) {
    DTM_REQUIRE(t >= cursor_, "timing wheel: drain_until(" << t
                                                           << ") before cursor "
                                                           << cursor_);
    while (true) {
      const Time rt = ring_next_time();
      const Time ot = overflow_.empty() ? kNoTime : overflow_.top().t;
      // Overflow wins ties: at one time, overflow entries predate ring ones.
      const bool from_over =
          ot != kNoTime && (rt == kNoTime || ot <= rt);
      const Time due = from_over ? ot : rt;
      if (due == kNoTime || due > t) break;
      if (from_over) {
        out.push_back(std::move(const_cast<Overflow&>(overflow_.top()).v));
        overflow_.pop();
        --size_;
      } else {
        auto& bucket = ring_[slot_of(due)];
        for (T& v : bucket) out.push_back(std::move(v));
        const std::int64_t popped = static_cast<std::int64_t>(bucket.size());
        bucket.clear();  // keeps capacity — the zero-alloc steady state
        const auto s = slot_of(due);
        occ_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
        ring_count_ -= popped;
        size_ -= popped;
        // The cursor must move past this slot before the scan continues, or
        // an equal slot one full turn ahead would alias. It cannot skip a
        // due time: the next loop iteration re-derives the minimum.
        cursor_ = due;
      }
    }
    cursor_ = t;
  }

  /// Fast-forwards the cursor without popping; refuses to skip a due entry.
  void advance_to(Time t) {
    DTM_REQUIRE(t >= cursor_, "timing wheel: advance_to(" << t
                                                          << ") before cursor "
                                                          << cursor_);
    const Time next = next_time();
    DTM_CHECK(next == kNoTime || next >= t,
              "timing wheel: advance_to(" << t << ") would skip entry at "
                                          << next);
    cursor_ = t;
  }

  // ---- Introspection (bounded-memory + zero-alloc evidence) ----

  /// Entries currently resident (ring + overflow).
  [[nodiscard]] std::int64_t size() const { return size_; }
  /// High-water mark of size() over the wheel's lifetime.
  [[nodiscard]] std::int64_t peak() const { return peak_; }
  /// Entries parked beyond the ring horizon.
  [[nodiscard]] std::int64_t overflow_size() const {
    return static_cast<std::int64_t>(overflow_.size());
  }

 private:
  static constexpr std::size_t kMask = kSlots - 1;
  static constexpr std::size_t kWords = kSlots / 64;

  struct Overflow {
    Time t = kNoTime;
    std::int64_t seq = 0;
    T v;
  };
  struct Later {
    bool operator()(const Overflow& a, const Overflow& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] static std::size_t slot_of(Time t) {
    return static_cast<std::size_t>(t) & kMask;
  }

  /// Earliest ring entry's time: circular occupancy scan starting at the
  /// cursor's slot (slot order from there IS time order, by the ring
  /// invariant).
  [[nodiscard]] Time ring_next_time() const {
    if (ring_count_ == 0) return kNoTime;
    const std::size_t s0 = slot_of(cursor_);
    const std::size_t w0 = s0 >> 6;
    const std::size_t b0 = s0 & 63;
    for (std::size_t i = 0; i <= kWords; ++i) {
      const std::size_t wi = (w0 + i) % kWords;
      std::uint64_t w = occ_[wi];
      if (i == 0) w &= ~std::uint64_t{0} << b0;
      if (i == kWords) w &= b0 ? ~std::uint64_t{0} >> (64 - b0) : 0;
      if (w == 0) continue;
      const std::size_t s =
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return cursor_ + static_cast<Time>((s - s0) & kMask);
    }
    return kNoTime;  // unreachable while ring_count_ > 0
  }

  Time cursor_ = 0;
  std::array<std::vector<T>, kSlots> ring_;
  std::array<std::uint64_t, kWords> occ_{};
  std::priority_queue<Overflow, std::vector<Overflow>, Later> overflow_;
  std::int64_t over_seq_ = 0;
  std::int64_t ring_count_ = 0;
  std::int64_t size_ = 0;
  std::int64_t peak_ = 0;
};

}  // namespace dtm
