// Minimal fork-join parallelism for the experiment harness.
//
// Simulations are single-threaded by design (determinism); *sweeps* over
// independent configurations are embarrassingly parallel. parallel_map runs
// one task per configuration across a bounded pool of std::threads and
// returns results in input order, so parallel sweeps stay reproducible.
#pragma once

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace dtm {

/// Applies `fn` to indices [0, count) using up to `threads` workers
/// (0 = hardware concurrency). `fn` must be thread-safe across distinct
/// indices. Exceptions in workers are rethrown on the caller thread (first
/// one wins).
void parallel_for(std::int64_t count,
                  const std::function<void(std::int64_t)>& fn,
                  unsigned threads = 0);

/// Maps `fn` over [0, count), collecting results in input order.
template <typename R>
std::vector<R> parallel_map(std::int64_t count,
                            const std::function<R(std::int64_t)>& fn,
                            unsigned threads = 0) {
  std::vector<R> out(static_cast<std::size_t>(count));
  parallel_for(
      count,
      [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = fn(i); },
      threads);
  return out;
}

}  // namespace dtm
