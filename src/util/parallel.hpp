// Minimal fork-join parallelism for the experiment harness.
//
// Simulations are single-threaded by design (determinism); *sweeps* over
// independent configurations are embarrassingly parallel. parallel_map runs
// one task per configuration across a bounded pool of std::threads and
// returns results in input order, so parallel sweeps stay reproducible.
//
// Both entry points are templated on the callable: the worker loop invokes
// the caller's functor directly (inlinable, no std::function allocation or
// per-index indirect call).
#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace dtm {

/// Applies `fn` to indices [0, count) using up to `threads` workers
/// (0 = hardware concurrency). `fn` must be thread-safe across distinct
/// indices. Exceptions in workers are rethrown on the caller thread (first
/// one wins).
template <typename Fn>
void parallel_for(std::int64_t count, Fn&& fn, unsigned threads = 0) {
  DTM_REQUIRE(count >= 0, "parallel_for count " << count);
  if (count == 0) return;
  unsigned workers = threads ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(std::min<std::int64_t>(workers, count));

  if (workers == 1) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::int64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&] {
    while (true) {
      const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

/// Maps `fn` over [0, count), collecting results in input order.
template <typename R, typename Fn>
std::vector<R> parallel_map(std::int64_t count, Fn&& fn,
                            unsigned threads = 0) {
  std::vector<R> out(static_cast<std::size_t>(count));
  parallel_for(
      count,
      [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = fn(i); },
      threads);
  return out;
}

}  // namespace dtm
