// ThreadPool — persistent fork-join worker pool with chunked index
// scheduling (docs/ARCHITECTURE.md §8).
//
// The original parallel_for spawned fresh std::threads on every call,
// which is fine for a handful of bench sweeps but hopeless inside the
// simulation kernel, where a run() fires on every engine step. The pool
// keeps its workers parked on a condition variable between jobs; a job
// hands out [begin, end) index chunks from a shared atomic cursor, the
// caller participates as the extra worker, and an epoch barrier separates
// consecutive jobs.
//
// Determinism contract: the pool schedules *which thread* runs an index,
// never *what the index computes* — callers own canonical-order merges of
// any per-worker results. Nested run() calls (a pool task invoking the
// pool again) degrade to inline serial execution instead of deadlocking,
// so outer trial-level parallelism composes with the parallel engine.
//
// parallel_for / parallel_map keep their original signatures as thin
// wrappers over the shared pool; exceptions in workers are rethrown on the
// caller thread (first one wins) and the pool stays usable afterwards.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace dtm {

class ThreadPool {
 public:
  /// A pool with `background` parked worker threads (the caller of run()
  /// always participates, so `background + 1` indices can be in flight).
  explicit ThreadPool(unsigned background);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Background workers currently spawned (grows on demand up to the
  /// participant count requested by run()).
  [[nodiscard]] unsigned workers() const;

  /// Applies `fn(i)` to every index in [0, count). Up to `max_threads`
  /// threads participate (0 = all hardware threads); `chunk` indices are
  /// claimed per cursor bump (0 = auto). `fn` must be thread-safe across
  /// distinct indices. Runs inline (serial) when only one participant is
  /// warranted or when called from inside a pool task.
  template <typename Fn>
  void run(std::int64_t count, Fn&& fn, unsigned max_threads = 0,
           std::int64_t chunk = 0) {
    DTM_REQUIRE(count >= 0, "ThreadPool::run count " << count);
    if (count == 0) return;
    unsigned want = max_threads != 0 ? max_threads : hardware_threads();
    want = static_cast<unsigned>(
        std::min<std::int64_t>({want, count, kMaxParticipants}));
    if (want <= 1 || inside_pool()) {
      for (std::int64_t i = 0; i < count; ++i) fn(i);
      return;
    }
    auto body = [&fn](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) fn(i);
    };
    run_impl(
        count, want, chunk,
        [](void* ctx, std::int64_t b, std::int64_t e) {
          (*static_cast<decltype(body)*>(ctx))(b, e);
        },
        &body);
  }

  /// The process-wide pool every parallel_for / engine phase shares.
  static ThreadPool& shared();

  /// hardware_concurrency with the 0-means-unknown case mapped to 1.
  [[nodiscard]] static unsigned hardware_threads();

  /// True on a thread currently executing a pool task (or a caller inside
  /// run()); nested run() calls detect this and execute inline.
  [[nodiscard]] static bool inside_pool();

 private:
  /// Oversubscription guard: more participants than this never helps, and
  /// a runaway threads= knob should not fork-bomb the host.
  static constexpr std::int64_t kMaxParticipants = 64;

  using Thunk = void (*)(void*, std::int64_t, std::int64_t);

  /// One fork-join job: a chunked cursor over [0, count).
  struct Job {
    std::int64_t count = 0;
    std::int64_t chunk = 1;
    std::atomic<std::int64_t> next{0};
    std::atomic<bool> failed{false};
    Thunk thunk = nullptr;
    void* ctx = nullptr;
    std::exception_ptr error;  ///< guarded by mu_
  };

  void run_impl(std::int64_t count, unsigned participants, std::int64_t chunk,
                Thunk thunk, void* ctx);
  void work(Job& job);
  void worker_main(unsigned index, std::uint64_t start_epoch);
  /// Spawns workers until at least `n` exist (caller holds mu_).
  void ensure_workers_locked(unsigned n);

  mutable std::mutex mu_;
  std::condition_variable cv_;       ///< wakes workers on a new epoch
  std::condition_variable done_cv_;  ///< wakes the caller at join
  std::vector<std::thread> threads_;
  Job* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  unsigned job_workers_ = 0;  ///< background participants of job_
  unsigned pending_ = 0;      ///< background participants still running
  bool stop_ = false;

  std::mutex run_mu_;  ///< serializes whole jobs (one fork-join at a time)
};

/// Resolves a user-facing thread-count knob: 0 = all hardware threads,
/// N >= 1 = exactly N participants. Negative counts are hard errors.
[[nodiscard]] inline unsigned resolve_threads(std::int32_t threads) {
  DTM_REQUIRE(threads >= 0, "threads must be >= 0, got " << threads);
  return threads == 0 ? ThreadPool::hardware_threads()
                      : static_cast<unsigned>(threads);
}

/// Applies `fn` to indices [0, count) using up to `threads` workers
/// (0 = hardware concurrency) from the shared pool. `fn` must be
/// thread-safe across distinct indices. Exceptions in workers are rethrown
/// on the caller thread (first one wins).
template <typename Fn>
void parallel_for(std::int64_t count, Fn&& fn, unsigned threads = 0) {
  ThreadPool::shared().run(count, std::forward<Fn>(fn), threads);
}

/// Maps `fn` over [0, count), collecting results in input order.
template <typename R, typename Fn>
std::vector<R> parallel_map(std::int64_t count, Fn&& fn,
                            unsigned threads = 0) {
  std::vector<R> out(static_cast<std::size_t>(count));
  parallel_for(
      count,
      [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = fn(i); },
      threads);
  return out;
}

}  // namespace dtm
