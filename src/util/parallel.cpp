#include "util/parallel.hpp"

namespace dtm {

namespace {

// Set for the lifetime of a worker thread, and transiently on a caller
// while it participates in its own job. Nested run() calls check it and
// degrade to inline execution: the pool's run_mu_ is not recursive, and a
// worker blocking on a sub-job would deadlock the job it is part of.
thread_local bool tls_inside_pool = false;

}  // namespace

ThreadPool::ThreadPool(unsigned background) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_workers_locked(std::min<unsigned>(
      background, static_cast<unsigned>(kMaxParticipants) - 1));
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

unsigned ThreadPool::workers() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<unsigned>(threads_.size());
}

bool ThreadPool::inside_pool() { return tls_inside_pool; }

unsigned ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::shared() {
  // Sized so the caller plus the background workers cover the hardware;
  // run() grows it on demand when a caller asks for more participants
  // (oversubscription — how the determinism suite exercises real
  // interleavings even on small machines).
  static ThreadPool pool(hardware_threads() - 1);
  return pool;
}

void ThreadPool::ensure_workers_locked(unsigned n) {
  while (threads_.size() < n && !stop_) {
    const unsigned index = static_cast<unsigned>(threads_.size());
    threads_.emplace_back([this, index, e = epoch_] { worker_main(index, e); });
  }
}

void ThreadPool::worker_main(unsigned index, std::uint64_t start_epoch) {
  tls_inside_pool = true;
  std::uint64_t seen = start_epoch;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      // Workers are gated by their spawn-order index: only the first
      // job_workers_ of them join, so max_threads honestly bounds
      // concurrency instead of just bounding the chunk fan-out.
      if (index >= job_workers_) continue;
      job = job_;
    }
    work(*job);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::work(Job& job) {
  while (!job.failed.load(std::memory_order_relaxed)) {
    const std::int64_t b =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (b >= job.count) return;
    const std::int64_t e = std::min(job.count, b + job.chunk);
    try {
      job.thunk(job.ctx, b, e);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!job.error) job.error = std::current_exception();
      job.failed.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::run_impl(std::int64_t count, unsigned participants,
                          std::int64_t chunk, Thunk thunk, void* ctx) {
  // One fork-join at a time: concurrent top-level callers queue here. The
  // epoch barrier below assumes a single in-flight job.
  const std::lock_guard<std::mutex> run_lock(run_mu_);
  if (chunk <= 0) {
    // ~4 chunks per participant balances steal granularity against cursor
    // contention; capped so huge counts still prefetch-friendly ranges.
    chunk = count / (static_cast<std::int64_t>(participants) * 4);
    chunk = std::clamp<std::int64_t>(chunk, 1, 4096);
  }
  Job job;
  job.count = count;
  job.chunk = chunk;
  job.thunk = thunk;
  job.ctx = ctx;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ensure_workers_locked(participants - 1);
    job_ = &job;
    job_workers_ = participants - 1;
    pending_ = job_workers_;
    ++epoch_;
  }
  cv_.notify_all();

  tls_inside_pool = true;  // nested run() from fn executes inline
  work(job);
  tls_inside_pool = false;

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace dtm
