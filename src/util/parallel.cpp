#include "util/parallel.hpp"

#include <exception>
#include <mutex>

namespace dtm {

void parallel_for(std::int64_t count,
                  const std::function<void(std::int64_t)>& fn,
                  unsigned threads) {
  DTM_REQUIRE(count >= 0, "parallel_for count " << count);
  if (count == 0) return;
  unsigned workers = threads ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(
      std::min<std::int64_t>(workers, count));

  if (workers == 1) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::int64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&] {
    while (true) {
      const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace dtm
