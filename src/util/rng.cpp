#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace dtm {

std::vector<std::int32_t> Rng::sample_distinct(std::int32_t n,
                                               std::int32_t k) {
  DTM_REQUIRE(k >= 0 && k <= n, "sample_distinct k=" << k << " n=" << n);
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(k));
  // Floyd's algorithm: for j = n-k .. n-1, draw t in [0, j]; insert t unless
  // already chosen, in which case insert j. Guarantees uniform k-subsets.
  std::unordered_set<std::int32_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  for (std::int32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::int32_t>(uniform_int(0, j));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

ZipfSampler::ZipfSampler(std::int32_t n, double s) {
  DTM_REQUIRE(n > 0, "ZipfSampler n=" << n);
  DTM_REQUIRE(s >= 0.0, "ZipfSampler s=" << s);
  cdf_.resize(static_cast<std::size_t>(n));
  double acc = 0.0;
  for (std::int32_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r) + 1.0, s);
    cdf_[static_cast<std::size_t>(r)] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::int32_t ZipfSampler::draw(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::int32_t>(it - cdf_.begin());
  return std::min(idx, static_cast<std::int32_t>(cdf_.size()) - 1);
}

}  // namespace dtm
