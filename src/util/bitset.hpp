// Dense dynamic bitsets and the word-parallel kernels behind the SoA
// batch-math layer (batch/soa_problem.*, ARCHITECTURE.md §9).
//
// The kernels are deliberately free functions over raw 64-bit word spans,
// not bitset methods: conflict rows live in one flat row-major matrix
// (BatchProblemSoA), and a future CUDA backend wants the same
// word-pointer + count signature for its device kernels. std::popcount and
// std::countr_zero compile to single instructions (POPCNT / TZCNT) on any
// x86-64-v2+ or AArch64 target; -march=native (CMake option DTM_NATIVE)
// is only needed to unlock wider autovectorization of the loops around
// them, not for the instructions themselves.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace dtm {

using BitWord = std::uint64_t;
inline constexpr std::size_t kBitWordBits = 64;

/// Words needed for `nbits` bits.
[[nodiscard]] constexpr std::size_t bit_words_for(std::size_t nbits) {
  return (nbits + kBitWordBits - 1) / kBitWordBits;
}

// ---- Word-span kernels ----------------------------------------------------

/// popcount over `nw` words.
[[nodiscard]] inline std::size_t popcount_words(const BitWord* w,
                                                std::size_t nw) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < nw; ++i) c += static_cast<std::size_t>(
      std::popcount(w[i]));
  return c;
}

/// |A ∩ B|: popcount of the AND of two equally-sized rows. The conflict-
/// scoring kernel (bench_simd measures it against the nested object scan).
[[nodiscard]] inline std::size_t conflict_count(const BitWord* a,
                                                const BitWord* b,
                                                std::size_t nw) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < nw; ++i)
    c += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return c;
}

/// A ∩ B ≠ ∅, with early exit. The local-search adjacent-swap prune.
[[nodiscard]] inline bool conflict_any(const BitWord* a, const BitWord* b,
                                       std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i)
    if ((a[i] & b[i]) != 0) return true;
  return false;
}

/// Index of the first set bit, or nw * 64 when none.
[[nodiscard]] inline std::size_t first_set_bit(const BitWord* w,
                                               std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i)
    if (w[i] != 0)
      return i * kBitWordBits +
             static_cast<std::size_t>(std::countr_zero(w[i]));
  return nw * kBitWordBits;
}

/// Index of the first ZERO bit, or nw * 64 when all set. With `w` read as a
/// forbidden-color mask this is the first free color (coloring_batch's
/// unit-gap fast path).
[[nodiscard]] inline std::size_t first_zero_bit(const BitWord* w,
                                                std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i)
    if (w[i] != ~BitWord{0})
      return i * kBitWordBits +
             static_cast<std::size_t>(std::countr_zero(~w[i]));
  return nw * kBitWordBits;
}

/// Calls fn(bit_index) for every set bit, ascending. countr_zero + clear-
/// lowest-set replaces the per-bit shift loop.
template <typename Fn>
void for_each_set_bit(const BitWord* w, std::size_t nw, Fn&& fn) {
  for (std::size_t i = 0; i < nw; ++i) {
    BitWord v = w[i];
    while (v != 0) {
      fn(i * kBitWordBits + static_cast<std::size_t>(std::countr_zero(v)));
      v &= v - 1;
    }
  }
}

/// for_each_set_bit over the intersection A ∩ B (no materialized AND row).
template <typename Fn>
void for_each_set_and(const BitWord* a, const BitWord* b, std::size_t nw,
                      Fn&& fn) {
  for (std::size_t i = 0; i < nw; ++i) {
    BitWord v = a[i] & b[i];
    while (v != 0) {
      fn(i * kBitWordBits + static_cast<std::size_t>(std::countr_zero(v)));
      v &= v - 1;
    }
  }
}

// ---- DynamicBitset --------------------------------------------------------

/// A heap-backed fixed-width bitset sized at runtime. Invariant: bits past
/// size() in the last word are zero, so the word-span kernels above can run
/// over words() without masking.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t nbits) { assign(nbits, false); }

  /// Resize to `nbits`, setting every bit to `value`.
  void assign(std::size_t nbits, bool value = false) {
    nbits_ = nbits;
    words_.assign(bit_words_for(nbits), value ? ~BitWord{0} : BitWord{0});
    if (value) mask_tail();
  }

  [[nodiscard]] std::size_t size() const { return nbits_; }
  [[nodiscard]] std::size_t num_words() const { return words_.size(); }
  [[nodiscard]] const BitWord* words() const { return words_.data(); }
  [[nodiscard]] BitWord* words() { return words_.data(); }

  void set(std::size_t i) {
    DTM_CHECK(i < nbits_, "bit " << i << " out of " << nbits_);
    words_[i / kBitWordBits] |= BitWord{1} << (i % kBitWordBits);
  }
  void reset(std::size_t i) {
    DTM_CHECK(i < nbits_, "bit " << i << " out of " << nbits_);
    words_[i / kBitWordBits] &= ~(BitWord{1} << (i % kBitWordBits));
  }
  [[nodiscard]] bool test(std::size_t i) const {
    DTM_CHECK(i < nbits_, "bit " << i << " out of " << nbits_);
    return (words_[i / kBitWordBits] >> (i % kBitWordBits)) & 1u;
  }

  void clear_all() {
    for (BitWord& w : words_) w = 0;
  }

  [[nodiscard]] std::size_t count() const {
    return popcount_words(words_.data(), words_.size());
  }

  /// this |= other (equal sizes).
  void or_with(const DynamicBitset& other) {
    DTM_CHECK(nbits_ == other.nbits_,
              "bitset size mismatch " << nbits_ << " vs " << other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] |= other.words_[i];
  }

 private:
  void mask_tail() {
    const std::size_t tail = nbits_ % kBitWordBits;
    if (tail != 0 && !words_.empty())
      words_.back() &= (BitWord{1} << tail) - 1;
  }

  std::vector<BitWord> words_;
  std::size_t nbits_ = 0;
};

/// First color offset not marked in `forbidden` (bits = forbidden color
/// offsets). With the mask sized to k+1 bits for k constraints a free slot
/// always exists in range (each constraint forbids at most one offset), so
/// the zero-padding past size() is never the answer.
[[nodiscard]] inline std::size_t first_free_color(
    const DynamicBitset& forbidden) {
  return first_zero_bit(forbidden.words(), forbidden.num_words());
}

}  // namespace dtm
