// Deterministic, fast random number generation for simulations.
//
// All stochastic components of the library (workload generators, randomized
// batch schedulers, sparse-cover ball carving) take an explicit Rng so that
// every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace dtm {

/// xoshiro256** seeded via splitmix64. Not cryptographic; chosen for speed
/// and statistical quality in Monte-Carlo style simulation.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the full state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) s = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    DTM_REQUIRE(lo <= hi, "uniform_int range [" << lo << "," << hi << "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Geometric inter-arrival gap (>= 1) for a Bernoulli(p) process.
  std::int64_t geometric_gap(double p) {
    DTM_REQUIRE(p > 0.0 && p <= 1.0, "geometric p=" << p);
    std::int64_t g = 1;
    while (!bernoulli(p)) ++g;
    return g;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(bounded(static_cast<std::uint64_t>(i)));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values sampled uniformly from {0, ..., n-1}.
  /// Uses Floyd's algorithm; O(k) expected when k << n.
  std::vector<std::int32_t> sample_distinct(std::int32_t n, std::int32_t k);

 private:
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased bounded draw in [0, bound) via Lemire rejection.
  std::uint64_t bounded(std::uint64_t bound) {
    DTM_REQUIRE(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t rotl(std::uint64_t v, int s) {
    return (v << s) | (v >> (64 - s));
  }

  std::uint64_t state_[4] = {};
};

/// Zipf(s) sampler over {0, ..., n-1}: rank r drawn with probability
/// proportional to 1/(r+1)^s. Precomputes the CDF once; O(log n) per draw.
/// Models hotspot object popularity in workloads.
class ZipfSampler {
 public:
  ZipfSampler(std::int32_t n, double s);

  [[nodiscard]] std::int32_t draw(Rng& rng) const;
  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(cdf_.size());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace dtm
