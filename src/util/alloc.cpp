#include "util/alloc.hpp"

#ifdef DTM_ALLOC_TRACK

#include <atomic>
#include <cstdlib>
#include <new>

namespace dtm {
namespace {

// Constant-initialized (no dynamic init), so the hooks are safe from the
// first allocation of the process and during thread start-up.
thread_local std::int64_t t_allocs = 0;
thread_local std::int64_t t_frees = 0;
thread_local std::int64_t t_bytes = 0;
std::atomic<std::int64_t> g_allocs{0};
std::atomic<std::int64_t> g_frees{0};
std::atomic<std::int64_t> g_bytes{0};

inline void count_alloc(std::size_t size) {
  ++t_allocs;
  t_bytes += static_cast<std::int64_t>(size);
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<std::int64_t>(size),
                    std::memory_order_relaxed);
}

inline void count_free() {
  ++t_frees;
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

void* tracked_alloc(std::size_t size) {
  count_alloc(size);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* tracked_alloc_aligned(std::size_t size, std::size_t align) {
  count_alloc(size);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size ? size : 1) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace

bool alloc_tracking_enabled() { return true; }

AllocCounters thread_alloc_counters() { return {t_allocs, t_frees, t_bytes}; }

AllocCounters global_alloc_counters() {
  return {g_allocs.load(std::memory_order_relaxed),
          g_frees.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

}  // namespace dtm

// Global replacements (must live outside any namespace). The full set —
// array, nothrow, sized and aligned forms — so no allocation path bypasses
// the counters.
void* operator new(std::size_t size) { return dtm::tracked_alloc(size); }
void* operator new[](std::size_t size) { return dtm::tracked_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return dtm::tracked_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return dtm::tracked_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  dtm::count_alloc(size);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  dtm::count_alloc(size);
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept {
  if (p) dtm::count_free();
  std::free(p);
}
void operator delete[](void* p) noexcept {
  if (p) dtm::count_free();
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  if (p) dtm::count_free();
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  if (p) dtm::count_free();
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  if (p) dtm::count_free();
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  if (p) dtm::count_free();
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  if (p) dtm::count_free();
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  if (p) dtm::count_free();
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  if (p) dtm::count_free();
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  if (p) dtm::count_free();
  std::free(p);
}

#else  // !DTM_ALLOC_TRACK

namespace dtm {

bool alloc_tracking_enabled() { return false; }
AllocCounters thread_alloc_counters() { return {}; }
AllocCounters global_alloc_counters() { return {}; }

}  // namespace dtm

#endif  // DTM_ALLOC_TRACK
