#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace dtm {

Table::Table(std::vector<std::string> headers, int double_precision)
    : headers_(std::move(headers)), precision_(double_precision) {
  DTM_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  if (!rows_.empty()) {
    DTM_CHECK(rows_.back().size() == headers_.size(),
              "previous row has " << rows_.back().size() << " cells, expected "
                                  << headers_.size());
  }
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string v) {
  DTM_REQUIRE(!rows_.empty(), "call row() before add()");
  rows_.back().emplace_back(std::move(v));
  return *this;
}

Table& Table::add(const char* v) { return add(std::string(v)); }

Table& Table::add(std::int64_t v) {
  DTM_REQUIRE(!rows_.empty(), "call row() before add()");
  rows_.back().emplace_back(v);
  return *this;
}

Table& Table::add(double v) {
  DTM_REQUIRE(!rows_.empty(), "call row() before add()");
  rows_.back().emplace_back(v);
  return *this;
}

std::string Table::render_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& r : rows_) {
    DTM_CHECK(r.size() == headers_.size(), "ragged row in table");
    std::vector<std::string> rr;
    rr.reserve(r.size());
    for (std::size_t c = 0; c < r.size(); ++c) {
      rr.push_back(render_cell(r[c]));
      width[c] = std::max(width[c], rr.back().size());
    }
    rendered.push_back(std::move(rr));
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto line = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << "+" << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(width[c])) << cells[c] << " ";
    }
    os << "|\n";
  };
  line();
  emit(headers_);
  line();
  for (const auto& r : rendered) emit(r);
  line();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& r : rows_) {
    std::vector<std::string> rr;
    rr.reserve(r.size());
    for (const auto& c : r) rr.push_back(render_cell(c));
    emit(rr);
  }
}

}  // namespace dtm
