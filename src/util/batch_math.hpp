// The batch-math path selector: scalar reference vs the structure-of-arrays
// kernel layer (batch/soa_problem.*), plus a verify mode that runs both and
// cross-checks every result.
//
// Lives in util/ (not batch/) because both the batch layer (BatchProblem,
// chain evaluation, coloring) and the core analysis layer (DependencyGraph)
// take the knob, and neither should pull the other's headers for an enum.
//
// The mode rides on BatchProblem itself rather than on each consumer:
// problems flow through shared code (suffix wrapper, activation retries,
// F_A probes) that must keep one consistent path end to end, and stamping
// the problem once is how the bucket schedulers guarantee that. The same
// determinism contract as BucketFastPath applies: kSoA and kVerify must
// reproduce the scalar path's output byte-identically — golden pins hold in
// every mode — which is what makes the SoA layer (and a future CUDA backend
// behind the same seam) a drop-in.
#pragma once

#include <string>

#include "util/check.hpp"

namespace dtm {

enum class BatchMathMode {
  kScalar,  ///< pointer-chasing reference implementations (the pinned path)
  kSoA,     ///< flat CSR + bitset conflict rows + popcount kernels
  kVerify,  ///< SoA, cross-checked against the scalar reference per call
};

/// Registry knob (`batch_math=scalar|soa|verify`); hard error on anything
/// else, matching the fastpath knob's behavior.
[[nodiscard]] inline BatchMathMode parse_batch_math(const std::string& v) {
  if (v == "scalar") return BatchMathMode::kScalar;
  if (v == "soa") return BatchMathMode::kSoA;
  if (v == "verify") return BatchMathMode::kVerify;
  throw CheckError("spec: batch_math must be scalar|soa|verify, got '" + v +
                   "'");
}

[[nodiscard]] inline const char* to_string(BatchMathMode m) {
  switch (m) {
    case BatchMathMode::kScalar: return "scalar";
    case BatchMathMode::kSoA: return "soa";
    default: return "verify";
  }
}

}  // namespace dtm
