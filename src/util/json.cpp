#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dtm {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    DTM_REQUIRE(pos_ == s_.size(),
                "json: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    DTM_REQUIRE(pos_ < s_.size(), "json: unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    DTM_REQUIRE(peek() == c, "json: expected '" << c << "' at offset "
                                                << pos_ << ", got '"
                                                << s_[pos_] << "'");
    ++pos_;
  }

  bool consume(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        DTM_REQUIRE(consume("true"), "json: bad literal at " << pos_);
        return Json(true);
      case 'f':
        DTM_REQUIRE(consume("false"), "json: bad literal at " << pos_);
        return Json(false);
      case 'n':
        DTM_REQUIRE(consume("null"), "json: bad literal at " << pos_);
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object o;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(o));
    }
    while (true) {
      DTM_REQUIRE(peek() == '"', "json: object key must be a string at "
                                     << pos_);
      std::string key = parse_string();
      expect(':');
      o.emplace(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(o));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array a;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(a));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      DTM_REQUIRE(pos_ < s_.size(), "json: unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      DTM_REQUIRE(pos_ < s_.size(), "json: unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          DTM_REQUIRE(pos_ + 4 <= s_.size(), "json: bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              DTM_REQUIRE(false, "json: bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // spec names and labels are ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: DTM_REQUIRE(false, "json: bad escape '\\" << e << "'");
      }
    }
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // Only exponent/fraction characters reach here (the leading minus
        // was consumed above), so the token is no longer integral.
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = s_.substr(start, pos_ - start);
    DTM_REQUIRE(!tok.empty() && tok != "-",
                "json: bad number at offset " << start);
    try {
      if (integral) return Json(std::int64_t{std::stoll(tok)});
      return Json(std::stod(tok));
    } catch (const std::exception&) {
      DTM_REQUIRE(false, "json: unparseable number '" << tok << "'");
    }
    return Json();  // unreachable
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void escape_to(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_to(std::ostream& os, const Json& v, int indent, int depth);

void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

void dump_to(std::ostream& os, const Json& v, int indent, int depth) {
  if (v.is_null()) {
    os << "null";
  } else if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_int()) {
    os << v.as_int();
  } else if (v.is_number()) {
    const double d = v.as_double();
    DTM_REQUIRE(std::isfinite(d), "json: non-finite number");
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << d;
    os << tmp.str();
  } else if (v.is_string()) {
    escape_to(os, v.as_string());
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      os << "[]";
      return;
    }
    os << '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) os << ',';
      newline_indent(os, indent, depth + 1);
      dump_to(os, a[i], indent, depth + 1);
    }
    newline_indent(os, indent, depth);
    os << ']';
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      os << "{}";
      return;
    }
    os << '{';
    bool first = true;
    for (const auto& [k, val] : o) {
      if (!first) os << ',';
      first = false;
      newline_indent(os, indent, depth + 1);
      escape_to(os, k);
      os << (indent < 0 ? ":" : ": ");
      dump_to(os, val, indent, depth + 1);
    }
    newline_indent(os, indent, depth);
    os << '}';
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump_to(os, *this, indent, 0);
  return os.str();
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace dtm
