// Aligned-table and CSV emission for experiment harnesses.
//
// Every bench binary prints one (or a few) of these tables; EXPERIMENTS.md
// quotes them. Keeping the renderer here guarantees uniform formatting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace dtm {

/// Column-oriented table. Cells are strings, integers, or doubles; doubles
/// render with a fixed precision chosen per table.
class Table {
 public:
  using Cell = std::variant<std::string, std::int64_t, double>;

  explicit Table(std::vector<std::string> headers, int double_precision = 3);

  /// Begin a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(std::string v);
  Table& add(const char* v);
  Table& add(std::int64_t v);
  Table& add(int v) { return add(static_cast<std::int64_t>(v)); }
  Table& add(std::size_t v) { return add(static_cast<std::int64_t>(v)); }
  Table& add(double v);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Render as an aligned ASCII table.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Render as CSV (for downstream plotting).
  void print_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::string render_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace dtm
