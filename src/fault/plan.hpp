// FaultPlan — declarative, RNG-seeded fault schedules for chaos testing.
//
// A plan describes *what can go wrong* on the simulated network: per-message
// drop and duplication probabilities, per-message latency jitter, per-link
// deterministic degradation, node pause/resume windows, and object-transfer
// stalls. The plan itself is a small value type (knobs + seed); every
// injection site (the FaultyBus decorating dist/bus.*, the stall hook in
// sim/transport.*) derives its own deterministic stream from `seed` plus a
// site-specific salt, so a (seed, plan) pair reproduces the exact same fault
// sequence run after run — chaos you can bisect.
//
// The null plan (all probabilities and amounts zero — the default) is the
// no-fault guarantee: injection sites check `is_null()` once and take the
// exact pre-fault code path, so golden commit-sequence hashes stay
// byte-identical when no faults are configured.
//
// Plans are constructed by name through the registry
// (`fault:drop=0.05,jitter=2,...` or the equivalent JSON object inside a
// RunSpec); unknown knobs are hard errors there, like every other spec.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace dtm {

struct FaultPlan {
  // -- message faults (applied by the FaultyBus) --
  double drop = 0.0;    ///< per-message loss probability, in [0, 1]
  double dup = 0.0;     ///< per-message duplication probability, in [0, 1]
  std::int64_t jitter = 0;   ///< max extra delivery latency per message
  std::int64_t degrade = 0;  ///< extra latency on every degraded link
  double degrade_frac = 0.0; ///< fraction of links degraded, in [0, 1]

  // -- node pause windows (messages to/from a paused node wait) --
  std::int32_t pauses = 0;        ///< number of seeded pause windows
  std::int64_t pause_len = 16;    ///< length of each window, steps
  std::int64_t pause_within = 256;  ///< window starts drawn in [0, this)

  // -- object-transfer stalls (applied by the transport hook) --
  double stall = 0.0;          ///< per-transfer stall probability, in [0, 1]
  std::int64_t stall_max = 8;  ///< max stall per transfer, steps

  std::uint64_t seed = 0xFA017;

  /// True when the plan injects nothing — the byte-identical no-fault path.
  [[nodiscard]] bool is_null() const {
    return !message_faults() && stall == 0.0;
  }

  /// True when any bus-level fault is configured (drop/dup/jitter/degrade/
  /// pauses). Decides whether the scheduler wraps its bus in a FaultyBus
  /// and arms the timeout/retry protocol; a stall-only plan leaves the bus
  /// (and hence message-exact behavior) untouched.
  [[nodiscard]] bool message_faults() const {
    return drop > 0.0 || dup > 0.0 || jitter > 0 ||
           (degrade > 0 && degrade_frac > 0.0) || pauses > 0;
  }

  /// Validates knob ranges (probabilities in [0, 1], amounts >= 0); throws
  /// CheckError otherwise. Factories call this after parsing.
  void validate() const;

  /// Deterministic per-link degradation: whether the directed message hop
  /// (u, v) is degraded (symmetric in u, v). Seeded by `seed`, so the set of
  /// degraded links is fixed for the whole run without materializing an
  /// n x n table.
  [[nodiscard]] bool link_degraded(NodeId u, NodeId v) const;

  /// A seeded node pause window [start, end): messages sent by or delivered
  /// to `node` inside the window wait until `end`.
  struct PauseWindow {
    NodeId node = kNoNode;
    Time start = 0;
    Time end = 0;
  };

  /// Materializes the plan's `pauses` windows for a network of `num_nodes`
  /// nodes. Deterministic in (seed, num_nodes); the same plan yields the
  /// same windows at every injection site.
  [[nodiscard]] std::vector<PauseWindow> pause_windows(NodeId num_nodes) const;

  /// Site-salted RNG streams, so the bus and the transport drawing from the
  /// same plan never entangle their sequences.
  [[nodiscard]] Rng bus_rng() const { return Rng(seed ^ 0xB0505EEDULL); }
  [[nodiscard]] Rng transport_rng() const {
    return Rng(seed ^ 0x57A115EEDULL);
  }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace dtm
