#include "fault/plan.hpp"

namespace dtm {

void FaultPlan::validate() const {
  DTM_REQUIRE(drop >= 0.0 && drop <= 1.0, "fault: drop " << drop
                                                         << " not in [0, 1]");
  DTM_REQUIRE(dup >= 0.0 && dup <= 1.0,
              "fault: dup " << dup << " not in [0, 1]");
  DTM_REQUIRE(jitter >= 0, "fault: jitter " << jitter << " negative");
  DTM_REQUIRE(degrade >= 0, "fault: degrade " << degrade << " negative");
  DTM_REQUIRE(degrade_frac >= 0.0 && degrade_frac <= 1.0,
              "fault: degrade-frac " << degrade_frac << " not in [0, 1]");
  DTM_REQUIRE(pauses >= 0, "fault: pauses " << pauses << " negative");
  DTM_REQUIRE(pause_len >= 1, "fault: pause-len " << pause_len << " < 1");
  DTM_REQUIRE(pause_within >= 1,
              "fault: pause-within " << pause_within << " < 1");
  DTM_REQUIRE(stall >= 0.0 && stall <= 1.0,
              "fault: stall " << stall << " not in [0, 1]");
  DTM_REQUIRE(stall_max >= 1, "fault: stall-max " << stall_max << " < 1");
}

bool FaultPlan::link_degraded(NodeId u, NodeId v) const {
  if (degrade == 0 || degrade_frac <= 0.0) return false;
  if (degrade_frac >= 1.0) return true;
  // Symmetric splitmix-style hash of the unordered pair, scaled against the
  // fraction — a fixed pseudo-random subset of links for the whole run.
  const std::uint64_t a = static_cast<std::uint64_t>(u < v ? u : v);
  const std::uint64_t b = static_cast<std::uint64_t>(u < v ? v : u);
  std::uint64_t x = seed ^ (a * 0x9E3779B97F4A7C15ULL) ^
                    (b + 0xBF58476D1CE4E5B9ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  const double unit =
      static_cast<double>(x >> 11) * 0x1.0p-53;  // uniform in [0, 1)
  return unit < degrade_frac;
}

std::vector<FaultPlan::PauseWindow> FaultPlan::pause_windows(
    NodeId num_nodes) const {
  DTM_REQUIRE(num_nodes > 0, "fault: pause windows need a non-empty network");
  std::vector<PauseWindow> out;
  if (pauses <= 0) return out;
  Rng rng(seed ^ 0x9A5EULL);
  out.reserve(static_cast<std::size_t>(pauses));
  for (std::int32_t i = 0; i < pauses; ++i) {
    PauseWindow w;
    w.node = static_cast<NodeId>(rng.uniform_int(0, num_nodes - 1));
    w.start = rng.uniform_int(0, pause_within - 1);
    w.end = w.start + pause_len;
    out.push_back(w);
  }
  return out;
}

}  // namespace dtm
