// Core identifiers and the transaction record of the data-flow DTM model
// (paper §II): a transaction resides at a node, requests a set of mobile
// objects, and executes at the discrete step at which it has assembled them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/graph.hpp"

namespace dtm {

using TxnId = std::int64_t;
using ObjId = std::int32_t;
using Time = std::int64_t;

constexpr TxnId kNoTxn = -1;
constexpr ObjId kNoObj = -1;
constexpr Time kNoTime = -1;

/// Access mode for an object. The paper's conflict relation is pure object
/// intersection (§II: "Two transactions conflict if O(T1) ∩ O(T2) ≠ ∅"), so
/// the mode does not relax conflicts; it is carried for workload realism and
/// as a documented extension point (read-sharing / replication).
enum class AccessMode : std::uint8_t { kRead, kWrite };

struct ObjectAccess {
  ObjId obj = kNoObj;
  AccessMode mode = AccessMode::kWrite;

  friend bool operator==(const ObjectAccess&, const ObjectAccess&) = default;
};

/// A transaction T: pinned to `node`, generated at `gen_time`, requesting
/// the objects O(T) in `accesses` (distinct object ids).
struct Transaction {
  TxnId id = kNoTxn;
  NodeId node = kNoNode;
  Time gen_time = kNoTime;
  std::vector<ObjectAccess> accesses;

  [[nodiscard]] bool uses(ObjId o) const {
    return std::any_of(accesses.begin(), accesses.end(),
                       [o](const ObjectAccess& a) { return a.obj == o; });
  }

  /// True iff O(T) ∩ O(other) ≠ ∅ — the paper's conflict relation.
  [[nodiscard]] bool conflicts_with(const Transaction& other) const {
    for (const auto& a : accesses)
      if (other.uses(a.obj)) return true;
    return false;
  }

  [[nodiscard]] std::vector<ObjId> object_ids() const {
    std::vector<ObjId> ids;
    ids.reserve(accesses.size());
    for (const auto& a : accesses) ids.push_back(a.obj);
    return ids;
  }
};

/// Builder shorthand for workloads/tests: all-write accesses to `objs`.
[[nodiscard]] inline std::vector<ObjectAccess> write_set(
    const std::vector<ObjId>& objs) {
  std::vector<ObjectAccess> a;
  a.reserve(objs.size());
  for (const ObjId o : objs) a.push_back({o, AccessMode::kWrite});
  return a;
}

}  // namespace dtm
