#include "core/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace dtm {

ValidationError validate_schedule(const std::vector<ScheduledTxn>& scheduled,
                                  const std::vector<ObjectOrigin>& origins,
                                  const DistanceOracle& oracle,
                                  std::int64_t latency_factor) {
  std::map<ObjId, ObjectOrigin> origin_of;
  for (const auto& o : origins) origin_of[o.id] = o;

  // Per-object user lists, sorted by execution time.
  std::map<ObjId, std::vector<const ScheduledTxn*>> users;
  for (const auto& s : scheduled) {
    if (s.exec == kNoTime) {
      std::ostringstream os;
      os << "txn " << s.txn.id << " was never assigned an execution time";
      return os.str();
    }
    if (s.exec < s.txn.gen_time) {
      std::ostringstream os;
      os << "txn " << s.txn.id << " executes at " << s.exec
         << " before its generation time " << s.txn.gen_time;
      return os.str();
    }
    for (const auto& a : s.txn.accesses) users[a.obj].push_back(&s);
  }

  for (auto& [obj, list] : users) {
    const auto it = origin_of.find(obj);
    if (it == origin_of.end()) {
      std::ostringstream os;
      os << "object " << obj << " is used but has no origin";
      return os.str();
    }
    std::sort(list.begin(), list.end(),
              [](const ScheduledTxn* a, const ScheduledTxn* b) {
                return a->exec < b->exec ||
                       (a->exec == b->exec && a->txn.id < b->txn.id);
              });
    // Origin -> first user: pure travel (the object is free at creation).
    NodeId pos = it->second.node;
    Time free_at = it->second.created;
    bool from_txn = false;
    for (const ScheduledTxn* s : list) {
      const Weight d = oracle.dist(pos, s->txn.node);
      Time needed = free_at + latency_factor * d;
      // Between two distinct commits of the same object at least one step
      // must pass even at distance zero (same node).
      if (from_txn) needed = std::max(needed, free_at + 1);
      if (s->exec < needed) {
        std::ostringstream os;
        os << "object " << obj << ": txn " << s->txn.id << " at node "
           << s->txn.node << " executes at " << s->exec
           << " but the object cannot arrive before " << needed
           << " (coming from node " << pos << ", free at " << free_at << ")";
        return os.str();
      }
      pos = s->txn.node;
      free_at = s->exec;
      from_txn = true;
    }
  }
  return std::nullopt;
}

Time makespan(const std::vector<ScheduledTxn>& scheduled, Time start) {
  Time end = start;
  for (const auto& s : scheduled) end = std::max(end, s.exec);
  return end - start;
}

}  // namespace dtm
