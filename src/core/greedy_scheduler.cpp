#include "core/greedy_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace dtm {

std::vector<Assignment> GreedyScheduler::on_step(
    const SystemView& view, std::span<const Transaction> arrivals) {
  last_bounds_.clear();
  std::vector<Assignment> out;
  if (arrivals.empty()) return out;

  const Time now = view.now();
  const Weight beta = opts_.uniform_beta;
  const auto pad = [this](Weight gap) -> Weight {
    if (opts_.congestion_padding <= 0.0 || gap <= 0) return gap;
    return gap + static_cast<Weight>(std::ceil(
                     opts_.congestion_padding * static_cast<double>(gap)));
  };

  // Colors chosen for arrivals earlier in this same step (they are part of
  // H'_t but not yet visible through the view).
  std::map<TxnId, Time> local_color;

  for (const Transaction& t : arrivals) {
    DTM_CHECK(t.gen_time == now,
              "arrival " << t.id << " gen " << t.gen_time << " != " << now);
    std::vector<ColorConstraint> cs;
    std::set<TxnId> seen;  // a pair conflicting on several objects: one edge
    for (const auto& acc : t.accesses) {
      const ObjectState& obj = view.object(acc.obj);
      // Holder / virtual in-transit node Z_t(o): color 0, gap = travel time
      // from the object's current position.
      // In uniform mode the gap may exceed beta for an in-transit object;
      // the sweep rounds the candidate up to the next multiple, which only
      // adds a constant to the Lemma 2 bound.
      cs.push_back({0, pad(obj.time_to(t.node, now, view.oracle(),
                                       view.latency_factor()))});

      for (const TxnId uid : view.live_users_of(acc.obj)) {
        if (uid == t.id || !seen.insert(uid).second) continue;
        const Transaction& u = view.txn(uid);
        Weight gap = std::max<Weight>(1, pad(view.travel(u.node, t.node)));
        if (beta > 0) {
          DTM_CHECK(gap <= beta, "uniform mode requires distances <= beta; "
                                 "got " << gap << " > " << beta);
          gap = beta;
        }
        const auto lit = local_color.find(uid);
        Time color;
        if (lit != local_color.end()) {
          color = lit->second;
        } else {
          const Time exec = view.assigned_exec(uid);
          // A same-step arrival later in the processing order has no color
          // yet; Lemma 1 colors nodes one at a time, so it will constrain
          // itself against our color when its turn comes.
          if (exec == kNoTime) continue;
          color = exec - now;
        }
        cs.push_back({color, gap});
      }
    }
    // The §III-E coordination delay raises the floor rather than shifting
    // chosen colors — a uniform shift could land between an existing
    // schedule's forbidden interval; the sweep stays correct either way.
    const Time min_color =
        std::max<Time>(beta > 0 ? beta : 0, opts_.coordination_delay);
    const Time c = min_feasible_color(cs, min_color, beta > 0 ? beta : 1);
    // In uniform mode the Lemma 2 premise (neighbor colors aligned to
    // multiples of beta) fails for transactions scheduled at earlier steps,
    // so the recorded guarantee is the generalized multiple-of-beta bound.
    const Time bound =
        beta > 0 ? uniform_dynamic_bound(cs, beta) : lemma1_bound(cs);
    last_bounds_.push_back({t.id, c, bound});
    local_color[t.id] = c;
    out.push_back({t.id, now + c});
  }
  return out;
}

}  // namespace dtm
