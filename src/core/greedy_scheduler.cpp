#include "core/greedy_scheduler.hpp"

#include <algorithm>
#include <cmath>

namespace dtm {

std::vector<Assignment> GreedyScheduler::on_step(
    const SystemView& view, std::span<const Transaction> arrivals) {
  last_bounds_.clear();
  std::vector<Assignment> out;
  if (arrivals.empty()) return out;

  const Time now = view.now();
  const Weight beta = opts_.uniform_beta;
  const auto pad = [this](Weight gap) -> Weight {
    if (opts_.congestion_padding <= 0.0 || gap <= 0) return gap;
    return gap + static_cast<Weight>(std::ceil(
                     opts_.congestion_padding * static_cast<double>(gap)));
  };

  // Colors chosen for arrivals earlier in this same step (they are part of
  // H'_t but not yet visible through the view). Flat sorted-by-id map,
  // binary-searched — no node allocations on the hot path.
  local_color_.clear();
  const auto local_color_of = [this](TxnId id) -> const Time* {
    const auto it = std::lower_bound(
        local_color_.begin(), local_color_.end(), id,
        [](const std::pair<TxnId, Time>& e, TxnId t) { return e.first < t; });
    return it != local_color_.end() && it->first == id ? &it->second : nullptr;
  };

  for (const Transaction& t : arrivals) {
    DTM_CHECK(t.gen_time == now,
              "arrival " << t.id << " gen " << t.gen_time << " != " << now);
    cs_.clear();
    neighbors_.clear();
    for (const auto& acc : t.accesses) {
      const ObjectState& obj = view.object(acc.obj);
      // Holder / virtual in-transit node Z_t(o): color 0, gap = travel time
      // from the object's current position.
      // In uniform mode the gap may exceed beta for an in-transit object;
      // the sweep rounds the candidate up to the next multiple, which only
      // adds a constant to the Lemma 2 bound.
      cs_.push_back({0, pad(obj.time_to(t.node, now, view.oracle(),
                                        view.latency_factor()))});
      const auto users = view.live_users_of(acc.obj);
      neighbors_.insert(neighbors_.end(), users.begin(), users.end());
    }
    // A pair conflicting on several objects contributes one constraint (the
    // gap depends only on the two nodes, so any shared object gives the
    // same one): dedup the union of the per-object user lists.
    std::sort(neighbors_.begin(), neighbors_.end());
    neighbors_.erase(std::unique(neighbors_.begin(), neighbors_.end()),
                     neighbors_.end());
    for (const TxnId uid : neighbors_) {
      if (uid == t.id) continue;
      const Transaction& u = view.txn(uid);
      Weight gap = std::max<Weight>(1, pad(view.travel(u.node, t.node)));
      if (beta > 0) {
        DTM_CHECK(gap <= beta, "uniform mode requires distances <= beta; "
                               "got " << gap << " > " << beta);
        gap = beta;
      }
      Time color;
      if (const Time* local = local_color_of(uid)) {
        color = *local;
      } else {
        const Time exec = view.assigned_exec(uid);
        // A same-step arrival later in the processing order has no color
        // yet; Lemma 1 colors nodes one at a time, so it will constrain
        // itself against our color when its turn comes.
        if (exec == kNoTime) continue;
        color = exec - now;
      }
      cs_.push_back({color, gap});
    }
    // The §III-E coordination delay raises the floor rather than shifting
    // chosen colors — a uniform shift could land between an existing
    // schedule's forbidden interval; the sweep stays correct either way.
    const Time min_color =
        std::max<Time>(beta > 0 ? beta : 0, opts_.coordination_delay);
    const Time c = min_feasible_color(cs_, min_color, beta > 0 ? beta : 1);
    // In uniform mode the Lemma 2 premise (neighbor colors aligned to
    // multiples of beta) fails for transactions scheduled at earlier steps,
    // so the recorded guarantee is the generalized multiple-of-beta bound.
    const Time bound =
        beta > 0 ? uniform_dynamic_bound(cs_, beta) : lemma1_bound(cs_);
    last_bounds_.push_back({t.id, c, bound});
    local_color_.insert(
        std::lower_bound(
            local_color_.begin(), local_color_.end(), t.id,
            [](const std::pair<TxnId, Time>& e, TxnId id) {
              return e.first < id;
            }),
        {t.id, c});
    out.push_back({t.id, now + c});
  }
  return out;
}

}  // namespace dtm
