// Online scheduler interface (paper §II "online execution schedule").
//
// A scheduler observes the system each time step through a SystemView and
// returns execution-time assignments. Assignments are immutable once made —
// the paper highlights that its schedulers never revise earlier decisions
// ("the execution times for the new transactions are not affecting the
// previously scheduled transactions"), and the simulation engine enforces
// this.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/event_source.hpp"
#include "core/object_state.hpp"
#include "core/types.hpp"
#include "net/graph.hpp"

namespace dtm {

/// Read-only facade over the simulation state, implemented by the engine.
/// Centralized schedulers may use everything here (the paper's "central
/// authority with instant knowledge"); the distributed scheduler restricts
/// itself to information that has had time to travel.
class SystemView {
 public:
  virtual ~SystemView() = default;

  [[nodiscard]] virtual Time now() const = 0;
  [[nodiscard]] virtual const DistanceOracle& oracle() const = 0;

  /// Steps per unit of distance for object motion (1 centralized, 2 in the
  /// distributed half-speed setting).
  [[nodiscard]] virtual std::int64_t latency_factor() const = 0;

  [[nodiscard]] virtual const ObjectState& object(ObjId o) const = 0;
  [[nodiscard]] virtual const Transaction& txn(TxnId t) const = 0;

  /// Execution time assigned to `t`, or kNoTime if not yet scheduled.
  [[nodiscard]] virtual Time assigned_exec(TxnId t) const = 0;

  /// Live (not yet executed) transactions requesting object `o`, in
  /// generation order. Includes both scheduled and unscheduled ones — the
  /// paper's conflict set C_t(T) restricted to users of o. The returned view
  /// aliases engine-owned storage and is valid until the engine next
  /// mutates (begin_step / apply / finish_step).
  [[nodiscard]] virtual std::span<const TxnId> live_users_of(
      ObjId o) const = 0;

  /// All live transactions (the paper's T_t), in id order. Same lifetime
  /// rule as live_users_of.
  [[nodiscard]] virtual std::span<const TxnId> live_txns() const = 0;

  /// Object travel time between nodes.
  [[nodiscard]] Time travel(NodeId u, NodeId v) const {
    return latency_factor() * oracle().dist(u, v);
  }
};

/// An irrevocable scheduling decision: transaction `txn` commits at `exec`.
struct Assignment {
  TxnId txn = kNoTxn;
  Time exec = kNoTime;
};

class OnlineScheduler {
 public:
  virtual ~OnlineScheduler() = default;

  /// Called once per simulated step that can matter (arrivals, pending
  /// internal events, or the step named by next_event_hint). `arrivals` are
  /// the transactions generated at view.now().
  [[nodiscard]] virtual std::vector<Assignment> on_step(
      const SystemView& view, std::span<const Transaction> arrivals) = 0;

  /// Earliest future step at which the scheduler must run even without new
  /// arrivals (bucket activations, pending reports). kNoTime = none; the
  /// engine may then skip idle steps.
  [[nodiscard]] virtual Time next_event_hint(Time /*now*/) const {
    return kNoTime;
  }

  /// Additional timed event sources the runner's EventClock must merge
  /// (e.g. the distributed protocol's MessageBus) — so schedulers don't
  /// special-case delivery times inside next_event_hint. Pointers must stay
  /// valid for the scheduler's lifetime.
  [[nodiscard]] virtual std::vector<const EventSource*> event_sources()
      const {
    return {};
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace dtm
