#include "core/coloring.hpp"

#include <algorithm>

namespace dtm {

namespace {

Time round_up(Time x, Time multiple) {
  if (multiple <= 1) return x;
  const Time r = x % multiple;
  // x may be negative only transiently (min_color is clamped to >= 0 by the
  // caller-facing function), but guard anyway.
  if (r == 0) return x;
  return r > 0 ? x + (multiple - r) : x - r;
}

}  // namespace

Time min_feasible_color_intervals(
    std::span<const ForbiddenInterval> intervals, Time min_color,
    Time multiple_of) {
  DTM_REQUIRE(multiple_of >= 1, "multiple_of=" << multiple_of);
  DTM_REQUIRE(min_color >= 0, "min_color=" << min_color);
  std::vector<std::pair<Time, Time>> forbidden;
  forbidden.reserve(intervals.size());
  for (const auto& iv : intervals) {
    if (iv.hi < iv.lo) continue;  // empty
    forbidden.emplace_back(iv.lo, iv.hi);
  }
  std::sort(forbidden.begin(), forbidden.end());
  Time candidate = round_up(min_color, multiple_of);
  for (const auto& [lo, hi] : forbidden) {
    if (candidate < lo) break;  // intervals sorted by lo: all later ones too
    if (candidate <= hi) candidate = round_up(hi + 1, multiple_of);
  }
  return candidate;
}

Time min_feasible_color(std::span<const ColorConstraint> cs, Time min_color,
                        Time multiple_of) {
  // Forbidden open intervals (color - gap, color + gap) become the closed
  // integer ranges [color - gap + 1, color + gap - 1].
  std::vector<ForbiddenInterval> forbidden;
  forbidden.reserve(cs.size());
  for (const auto& c : cs) {
    if (c.gap <= 0) continue;
    forbidden.push_back({c.color - c.gap + 1, c.color + c.gap - 1});
  }
  const Time candidate =
      min_feasible_color_intervals(forbidden, min_color, multiple_of);
  DTM_CHECK(color_satisfies(candidate, cs), "sweep produced invalid color");
  return candidate;
}

Time lemma1_bound(std::span<const ColorConstraint> cs) {
  Time gamma = 0;
  Time delta = 0;
  for (const auto& c : cs) {
    if (c.gap <= 0) continue;
    gamma += c.gap;
    ++delta;
  }
  return 2 * gamma - delta;
}

Time lemma2_bound(std::span<const ColorConstraint> cs) {
  Time gamma = 0;
  Weight beta = 0;
  bool has_zero_neighbor = false;
  for (const auto& c : cs) {
    if (c.gap <= 0) continue;
    gamma += c.gap;
    beta = std::max(beta, c.gap);
    if (c.color == 0) has_zero_neighbor = true;
  }
  return has_zero_neighbor ? gamma : gamma + beta;
}

Time uniform_dynamic_bound(std::span<const ColorConstraint> cs, Weight beta) {
  DTM_REQUIRE(beta >= 1, "beta=" << beta);
  Time forbidden = 0;
  for (const auto& c : cs) {
    if (c.gap <= 0) continue;
    forbidden += 2 * ((c.gap + beta - 1) / beta);
  }
  return beta * (1 + forbidden);
}

bool color_satisfies(Time color, std::span<const ColorConstraint> cs) {
  return std::all_of(cs.begin(), cs.end(), [color](const ColorConstraint& c) {
    return std::abs(color - c.color) >= c.gap;
  });
}

}  // namespace dtm
