#include "core/lower_bound.hpp"

#include <algorithm>
#include <map>

namespace dtm {

LowerBoundBreakdown makespan_lower_bound(
    const std::vector<Transaction>& txns,
    const std::vector<ObjectOrigin>& origins, const DistanceOracle& oracle,
    std::int64_t latency_factor) {
  std::map<ObjId, ObjectOrigin> origin_of;
  for (const auto& o : origins) origin_of[o.id] = o;

  std::map<ObjId, std::vector<NodeId>> users;
  for (const auto& t : txns)
    for (const auto& a : t.accesses) users[a.obj].push_back(t.node);

  LowerBoundBreakdown lb;
  for (const auto& [obj, nodes] : users) {
    const auto it = origin_of.find(obj);
    DTM_CHECK(it != origin_of.end(), "object " << obj << " has no origin");
    const NodeId origin = it->second.node;
    const Time created = it->second.created;

    Time nearest = kInfWeight;
    for (const NodeId u : nodes) {
      const Time travel =
          created + latency_factor * oracle.dist(origin, u);
      nearest = std::min(nearest, travel);
      lb.reach = std::max(lb.reach, travel);
    }
    const auto m = static_cast<Time>(nodes.size());
    lb.lmax = std::max(lb.lmax, m);
    lb.load = std::max(lb.load, nearest + (m - 1));

    // Pairwise spread: O(m^2) oracle lookups; sampled cap keeps giant
    // hotspot objects cheap while staying a valid (smaller) certificate.
    const std::size_t cap = 512;
    const std::size_t step = nodes.size() > cap ? nodes.size() / cap + 1 : 1;
    for (std::size_t i = 0; i < nodes.size(); i += step)
      for (std::size_t j = i + step; j < nodes.size(); j += step)
        lb.spread = std::max(
            lb.spread, created + latency_factor * oracle.dist(nodes[i],
                                                              nodes[j]));
  }
  return lb;
}

}  // namespace dtm
