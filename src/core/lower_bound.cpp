#include "core/lower_bound.hpp"

#include <algorithm>
#include <map>

namespace dtm {

LowerBoundBreakdown makespan_lower_bound(
    const std::vector<Transaction>& txns,
    const std::vector<ObjectOrigin>& origins, const DistanceOracle& oracle,
    std::int64_t latency_factor) {
  std::map<ObjId, ObjectOrigin> origin_of;
  for (const auto& o : origins) origin_of[o.id] = o;

  std::map<ObjId, std::vector<NodeId>> users;
  for (const auto& t : txns)
    for (const auto& a : t.accesses) users[a.obj].push_back(t.node);

  LowerBoundBreakdown lb;
  for (const auto& [obj, nodes] : users) {
    const auto it = origin_of.find(obj);
    DTM_CHECK(it != origin_of.end(), "object " << obj << " has no origin");
    const NodeId origin = it->second.node;
    const Time created = it->second.created;

    Time nearest = kInfWeight;
    for (const NodeId u : nodes) {
      const Time travel =
          created + latency_factor * oracle.dist(origin, u);
      nearest = std::min(nearest, travel);
      lb.reach = std::max(lb.reach, travel);
    }
    const auto m = static_cast<Time>(nodes.size());
    lb.lmax = std::max(lb.lmax, m);
    lb.load = std::max(lb.load, nearest + (m - 1));

    // Pairwise spread: O(m^2) oracle lookups; sampled cap keeps giant
    // hotspot objects cheap while staying a valid (smaller) certificate.
    const std::size_t cap = 512;
    const std::size_t step = nodes.size() > cap ? nodes.size() / cap + 1 : 1;
    for (std::size_t i = 0; i < nodes.size(); i += step)
      for (std::size_t j = i + step; j < nodes.size(); j += step)
        lb.spread = std::max(
            lb.spread, created + latency_factor * oracle.dist(nodes[i],
                                                              nodes[j]));
  }
  return lb;
}

Time single_txn_lower_bound(NodeId txn_node, std::span<const AvailPoint> objs,
                            const DistanceOracle& oracle,
                            std::int64_t latency_factor) {
  // The transaction executes no earlier than the latest of its objects'
  // earliest possible arrivals. If another transaction uses the object
  // first, triangle inequality keeps the bound valid: routing via that
  // user's node is never shorter than the direct trip, and a commit en
  // route only adds (+1 when from_txn).
  Time lb = 0;
  for (const AvailPoint& a : objs) {
    Time arrive = a.ready_rel + latency_factor * oracle.dist(a.node, txn_node);
    if (a.from_txn) arrive = std::max(arrive, a.ready_rel + 1);
    lb = std::max(lb, arrive);
  }
  return lb;
}

}  // namespace dtm
