// Execution schedules and their feasibility validation (paper §II).
//
// A schedule assigns each transaction an execution time. Feasibility is a
// per-object chain condition: order the users of each object by execution
// time; the object must be able to travel from its origin through the users
// in that order, spending latency_factor * dist(u, v) steps per hop and at
// least one step between distinct consecutive commits.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "net/graph.hpp"

namespace dtm {

/// Where and when an object comes into existence.
struct ObjectOrigin {
  ObjId id = kNoObj;
  NodeId node = kNoNode;
  Time created = 0;
};

/// A transaction together with its assigned execution time.
struct ScheduledTxn {
  Transaction txn;
  Time exec = kNoTime;
};

/// Result of validating a schedule: nullopt on success, otherwise a
/// human-readable description of the first violation found.
using ValidationError = std::optional<std::string>;

/// Checks per-object chain feasibility plus exec >= gen_time for every
/// transaction. `latency_factor` scales object travel times (2 in the
/// distributed setting, where objects move at half speed — paper §V).
[[nodiscard]] ValidationError validate_schedule(
    const std::vector<ScheduledTxn>& scheduled,
    const std::vector<ObjectOrigin>& origins, const DistanceOracle& oracle,
    std::int64_t latency_factor = 1);

/// Total time until every transaction has executed, measured from `start`.
[[nodiscard]] Time makespan(const std::vector<ScheduledTxn>& scheduled,
                            Time start = 0);

}  // namespace dtm
