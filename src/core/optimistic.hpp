// Optimistic (speculative) execution baseline — the regime the paper's
// introduction contrasts scheduling against.
//
// No scheduler: a transaction greedily requests all its objects the moment
// it arrives; each object serves requesters FIFO and physically travels to
// the grantee. A transaction that has held at least one object for
// `patience` steps without completing its set assumes a conflict cycle,
// ABORTS (releasing its objects where they lie), and retries after
// randomized exponential backoff. This reproduces the classic failure
// modes — deadlock-breaking aborts, wasted object shipping, convoying —
// whose avoidance is the entire point of conflict-free execution
// schedules.
//
// The simulator is engine-grade: objects move with real travel times, and
// the run reports both schedule quality (makespan, latency) and waste
// (aborts, wasted object-distance shipped for transactions that later
// aborted).
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "net/topology.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace dtm {

struct OptimisticOptions {
  /// Steps a transaction may sit on a partial object set before aborting.
  /// 0 = auto (2 * diameter + 4).
  Time patience = 0;
  /// Base for randomized exponential backoff after the a-th abort:
  /// uniform[1, backoff_base * 2^min(a,6)].
  Time backoff_base = 4;
  std::uint64_t seed = 0x0B71;
  Time max_steps = Time{1} << 32;
};

struct OptimisticResult {
  std::int64_t num_txns = 0;
  Time makespan = 0;
  double mean_latency = 0.0;
  std::int64_t aborts = 0;
  std::int64_t wasted_distance = 0;  ///< object travel for aborted holds
  /// Commit times (validated internally: every commit held all objects).
  std::vector<ScheduledTxn> committed;
};

/// Runs `workload` under optimistic execution on `net`.
[[nodiscard]] OptimisticResult run_optimistic(const Network& net,
                                              Workload& workload,
                                              OptimisticOptions opts = {});

}  // namespace dtm
