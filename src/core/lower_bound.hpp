// Certified lower bounds on the optimal makespan t* (paper §II / §III-C).
//
// Computing t* is NP-hard (the paper cites [5]); the competitive ratios we
// report in experiments are makespan / LB with LB <= t*, so every reported
// ratio *upper-bounds* the true competitive ratio. Three certificates are
// combined, all of which the paper's own analyses use implicitly:
//   load:   an object used by m transactions needs >= m-1 steps between its
//           first and last commit, plus the travel to its nearest first user
//           (Theorem 3's l_max argument);
//   reach:  every user of an object must wait for it to arrive from its
//           origin at least once;
//   spread: the object must visit both endpoints of its farthest user pair.
#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace dtm {

struct LowerBoundBreakdown {
  Time load = 0;    ///< max over objects: (m_o - 1) + min_u travel(origin, u)
  Time reach = 0;   ///< max over objects, users: travel(origin, u)
  Time spread = 0;  ///< max over objects: max pairwise travel among users
  Time lmax = 0;    ///< max over objects: number of users (paper's l_max)

  [[nodiscard]] Time best() const {
    return std::max({load, reach, spread, Time{1}});
  }
};

/// Lower bound for executing all of `txns` given object `origins`, measured
/// from time 0 (origins' creation times shift the certificates). For
/// dynamic instances this is a valid bound on the optimal offline makespan
/// of the whole arrival sequence started at time 0.
[[nodiscard]] LowerBoundBreakdown makespan_lower_bound(
    const std::vector<Transaction>& txns,
    const std::vector<ObjectOrigin>& origins, const DistanceOracle& oracle,
    std::int64_t latency_factor = 1);

/// Availability point of one object relative to a batch problem's `now`:
/// the object sits at `node`, free of commitments from `ready_rel` steps in
/// the future; `from_txn` marks availability points that are transaction
/// commits (the next user then executes at least one step later even at
/// distance zero).
struct AvailPoint {
  NodeId node = kNoNode;
  Time ready_rel = 0;
  bool from_txn = false;
};

/// Lower bound (relative to now) on the execution time of a single
/// transaction at `txn_node` requesting exactly the objects in `objs`: every
/// feasible schedule must route each object from its availability point to
/// the transaction, no matter what else is scheduled around it. Chain
/// feasibility and the triangle inequality make this a valid bound on
/// F_A(B ∪ {t}) for EVERY bucket B and every batch algorithm A, which is
/// what lets the bucket fast path start its level scan at ceil(log2(LB))
/// instead of level 0 (batch/bucket_insertion.hpp).
[[nodiscard]] Time single_txn_lower_bound(NodeId txn_node,
                                          std::span<const AvailPoint> objs,
                                          const DistanceOracle& oracle,
                                          std::int64_t latency_factor);

}  // namespace dtm
