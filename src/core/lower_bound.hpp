// Certified lower bounds on the optimal makespan t* (paper §II / §III-C).
//
// Computing t* is NP-hard (the paper cites [5]); the competitive ratios we
// report in experiments are makespan / LB with LB <= t*, so every reported
// ratio *upper-bounds* the true competitive ratio. Three certificates are
// combined, all of which the paper's own analyses use implicitly:
//   load:   an object used by m transactions needs >= m-1 steps between its
//           first and last commit, plus the travel to its nearest first user
//           (Theorem 3's l_max argument);
//   reach:  every user of an object must wait for it to arrive from its
//           origin at least once;
//   spread: the object must visit both endpoints of its farthest user pair.
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace dtm {

struct LowerBoundBreakdown {
  Time load = 0;    ///< max over objects: (m_o - 1) + min_u travel(origin, u)
  Time reach = 0;   ///< max over objects, users: travel(origin, u)
  Time spread = 0;  ///< max over objects: max pairwise travel among users
  Time lmax = 0;    ///< max over objects: number of users (paper's l_max)

  [[nodiscard]] Time best() const {
    return std::max({load, reach, spread, Time{1}});
  }
};

/// Lower bound for executing all of `txns` given object `origins`, measured
/// from time 0 (origins' creation times shift the certificates). For
/// dynamic instances this is a valid bound on the optimal offline makespan
/// of the whole arrival sequence started at time 0.
[[nodiscard]] LowerBoundBreakdown makespan_lower_bound(
    const std::vector<Transaction>& txns,
    const std::vector<ObjectOrigin>& origins, const DistanceOracle& oracle,
    std::int64_t latency_factor = 1);

}  // namespace dtm
