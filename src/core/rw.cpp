#include "core/rw.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "core/lower_bound.hpp"

namespace dtm {

namespace {

struct Event {
  Time exec;
  TxnId id;
  NodeId node;
  bool write;
};

/// Per-object access timeline sorted by (exec, id).
std::map<ObjId, std::vector<Event>> build_timelines(
    const std::vector<ScheduledTxn>& scheduled) {
  std::map<ObjId, std::vector<Event>> tl;
  for (const auto& s : scheduled)
    for (const auto& a : s.txn.accesses)
      tl[a.obj].push_back({s.exec, s.txn.id, s.txn.node,
                           a.mode == AccessMode::kWrite});
  for (auto& [_, events] : tl)
    std::sort(events.begin(), events.end(), [](const Event& a,
                                               const Event& b) {
      if (a.exec != b.exec) return a.exec < b.exec;
      // Reads before writes at the same step: a read concurrent with a
      // write observes the previous version.
      if (a.write != b.write) return !a.write;
      return a.id < b.id;
    });
  return tl;
}

}  // namespace

ValidationError validate_rw_schedule(
    const std::vector<ScheduledTxn>& scheduled,
    const std::vector<ObjectOrigin>& origins, const DistanceOracle& oracle,
    std::int64_t latency_factor, RwSemantics semantics) {
  std::map<ObjId, ObjectOrigin> origin_of;
  for (const auto& o : origins) origin_of[o.id] = o;
  for (const auto& s : scheduled) {
    if (s.exec == kNoTime || s.exec < s.txn.gen_time) {
      std::ostringstream os;
      os << "txn " << s.txn.id << " has invalid execution time " << s.exec;
      return os.str();
    }
  }

  for (const auto& [obj, events] : build_timelines(scheduled)) {
    const auto it = origin_of.find(obj);
    if (it == origin_of.end()) {
      std::ostringstream os;
      os << "object " << obj << " has no origin";
      return os.str();
    }
    // Walk the timeline tracking the master (latest strictly-earlier
    // write). Two writes at the same step are invalid; a read and a write
    // at the same step are fine (the read sees the previous version).
    NodeId master_node = it->second.node;
    Time master_exec = it->second.created;
    bool master_is_txn = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      Time needed =
          master_exec + latency_factor * oracle.dist(master_node, e.node);
      if (master_is_txn) needed = std::max(needed, master_exec + 1);
      if (e.write && semantics == RwSemantics::kCoherent) {
        // Invalidation: the write also clears every earlier access.
        for (std::size_t j = 0; j < i; ++j) {
          const Event& prev = events[j];
          needed = std::max(
              needed, prev.exec + std::max<Time>(
                                      1, latency_factor *
                                             oracle.dist(prev.node, e.node)));
        }
      }
      if (e.exec < needed) {
        std::ostringstream os;
        os << "object " << obj << ": " << (e.write ? "write" : "read")
           << " txn " << e.id << " at " << e.exec
           << " cannot receive the version of node " << master_node
           << " (available " << master_exec << ") before " << needed;
        return os.str();
      }
      if (e.write) {
        if (master_is_txn && e.exec == master_exec) {
          std::ostringstream os;
          os << "object " << obj << ": two writes at step " << e.exec;
          return os.str();
        }
        master_node = e.node;
        master_exec = e.exec;
        master_is_txn = true;
      }
    }
  }
  return std::nullopt;
}

Time RwGreedyScheduler::schedule(const Transaction& t, Time now) {
  std::vector<ForbiddenInterval> forbidden;
  Time floor = 0;
  for (const auto& acc : t.accesses) {
    const bool acc_write = acc.mode == AccessMode::kWrite;
    const auto oit = origins_.find(acc.obj);
    DTM_REQUIRE(oit != origins_.end(), "object " << acc.obj << " unknown");
    // Origin floor: the first version must physically reach us.
    floor = std::max(floor, (oit->second.created - now) +
                                factor_ * oracle_->dist(oit->second.node,
                                                        t.node));
    for (const auto& rec : history_[acc.obj]) {
      if (!rec.write && !acc_write) continue;  // read-read: share freely
      const Time r = rec.exec - now;
      const Weight g =
          std::max<Weight>(1, factor_ * oracle_->dist(rec.node, t.node));
      if (rec.write && acc_write) {
        // Master chain: symmetric separation.
        forbidden.push_back({r - g + 1, r + g - 1});
      } else if (rec.write && !acc_write) {
        // New read vs existing write: after the write, the copy must
        // travel from the writer. Before it: snapshot reads the older
        // version freely (concurrency included); coherent needs the full
        // symmetric gap — the writer collects the read's invalidation ack,
        // so a read may only precede a write by at least the travel time.
        if (semantics_ == RwSemantics::kCoherent)
          forbidden.push_back({r - g + 1, r + g - 1});
        else
          forbidden.push_back({r + 1, r + g - 1});
      } else {  // rec is a read, acc is a write
        // Before the read: the read will re-source from us, so leave it
        // the copy travel time. After (or concurrent): snapshot writes
        // never wait for readers; coherent writes must clear them.
        forbidden.push_back({r - g + 1, r - 1});
        if (semantics_ == RwSemantics::kCoherent)
          forbidden.push_back({r, r + g - 1});
      }
    }
  }
  const Time c = min_feasible_color_intervals(forbidden, floor);
  for (const auto& acc : t.accesses)
    history_[acc.obj].push_back(
        {now + c, t.node, acc.mode == AccessMode::kWrite});
  return now + c;
}

RwRunResult run_rw_experiment(const Network& net, Workload& workload,
                              std::int64_t latency_factor,
                              RwSemantics semantics) {
  RwGreedyScheduler sched(*net.oracle, latency_factor, semantics);
  const auto origins = workload.objects();
  for (const auto& o : origins) sched.add_origin(o);

  std::vector<ScheduledTxn> scheduled;
  using Commit = std::pair<Time, std::size_t>;  // exec, index
  std::priority_queue<Commit, std::vector<Commit>, std::greater<>> pending;

  Time now = 0;
  while (true) {
    for (const Transaction& t : workload.arrivals_at(now))
      // schedule() may return `now` itself; such commits fire this step.
      {
        const Time exec = sched.schedule(t, now);
        scheduled.push_back({t, exec});
        pending.emplace(exec, scheduled.size() - 1);
      }
    while (!pending.empty() && pending.top().first <= now) {
      const auto [exec, idx] = pending.top();
      pending.pop();
      workload.on_commit(scheduled[idx].txn.id, exec);
    }
    if (workload.finished() && pending.empty()) break;
    // Advance to the next event.
    Time next = kNoTime;
    const Time arr = workload.next_arrival_time();
    if (arr != kNoTime) next = arr;
    if (!pending.empty())
      next = next == kNoTime ? pending.top().first
                             : std::min(next, pending.top().first);
    DTM_CHECK(next != kNoTime && next > now,
              "rw experiment stalled at step " << now);
    now = next;
  }

  const auto err = validate_rw_schedule(scheduled, origins, *net.oracle,
                                        latency_factor, semantics);
  DTM_CHECK(!err.has_value(), "invalid rw schedule: " << *err);

  RwRunResult r;
  r.num_txns = static_cast<std::int64_t>(scheduled.size());
  double lat = 0;
  for (const auto& s : scheduled) {
    r.makespan = std::max(r.makespan, s.exec);
    lat += static_cast<double>(s.exec - s.txn.gen_time);
  }
  if (r.num_txns > 0) r.mean_latency = lat / static_cast<double>(r.num_txns);

  // Copy accounting: every read ships one copy from its snapshot source.
  for (const auto& [obj, events] : build_timelines(scheduled)) {
    NodeId master = kNoNode;
    for (const auto& o : origins)
      if (o.id == obj) master = o.node;
    for (const auto& e : events) {
      if (e.write) {
        master = e.node;
      } else {
        ++r.copies;
        r.copy_distance += net.dist(master, e.node);
      }
    }
  }

  // Writes-only exclusive lower bound (reads are free to replicate, so
  // only the write serialization certifies optimal cost).
  std::vector<Transaction> writes_only;
  for (const auto& s : scheduled) {
    Transaction t = s.txn;
    t.accesses.erase(
        std::remove_if(t.accesses.begin(), t.accesses.end(),
                       [](const ObjectAccess& a) {
                         return a.mode != AccessMode::kWrite;
                       }),
        t.accesses.end());
    if (!t.accesses.empty()) writes_only.push_back(std::move(t));
  }
  if (!writes_only.empty()) {
    r.write_lb = makespan_lower_bound(writes_only, origins, *net.oracle,
                                      latency_factor)
                     .best();
  }
  r.ratio = static_cast<double>(r.makespan) /
            static_cast<double>(std::max<Time>(r.write_lb, 1));
  return r;
}

}  // namespace dtm
