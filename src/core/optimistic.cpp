#include "core/optimistic.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace dtm {

namespace {

struct ObjSim {
  NodeId pos = kNoNode;
  bool in_transit = false;
  Time arrive = kNoTime;
  TxnId carried_for = kNoTxn;
  Weight leg_dist = 0;
  TxnId held_by = kNoTxn;
  std::deque<TxnId> queue;
};

struct TxnSim {
  Transaction txn;
  std::set<ObjId> held;
  std::set<ObjId> wanted;
  Time first_hold = kNoTime;
  std::int32_t attempts = 0;
  Time retry_at = kNoTime;  ///< backing off until then (kNoTime = active)
  Weight shipped = 0;       ///< travel spent on this attempt's deliveries
  bool done = false;
};

}  // namespace

OptimisticResult run_optimistic(const Network& net, Workload& workload,
                                OptimisticOptions opts) {
  const Time patience =
      opts.patience > 0 ? opts.patience : 2 * std::max<Weight>(net.diameter(), 1) + 4;
  Rng rng(opts.seed);

  std::map<ObjId, ObjSim> objs;
  for (const auto& o : workload.objects()) {
    ObjSim s;
    s.pos = o.node;
    objs[o.id] = s;
  }
  std::map<TxnId, TxnSim> txns;
  OptimisticResult out;

  auto enqueue_requests = [&](TxnSim& t) {
    for (const ObjId o : t.wanted) objs.at(o).queue.push_back(t.txn.id);
  };

  Time now = 0;
  std::int64_t live = 0;
  while (true) {
    DTM_CHECK(now < opts.max_steps, "optimistic run exceeded step cap "
                                        << opts.max_steps);
    // 1. Arrivals.
    for (const Transaction& a : workload.arrivals_at(now)) {
      TxnSim t;
      t.txn = a;
      for (const auto& acc : a.accesses) {
        DTM_CHECK(objs.count(acc.obj), "unknown object " << acc.obj);
        t.wanted.insert(acc.obj);
      }
      enqueue_requests(t);
      txns.emplace(a.id, std::move(t));
      ++live;
    }
    // 2. Retries whose backoff expired re-enter the queues.
    for (auto& [id, t] : txns) {
      if (t.done || t.retry_at == kNoTime || t.retry_at > now) continue;
      t.retry_at = kNoTime;
      enqueue_requests(t);
    }
    // 3. Deliveries.
    for (auto& [oid, o] : objs) {
      if (!o.in_transit || o.arrive > now) continue;
      o.in_transit = false;
      TxnSim& t = txns.at(o.carried_for);
      o.held_by = o.carried_for;
      o.carried_for = kNoTxn;
      t.held.insert(oid);
      t.shipped += o.leg_dist;
      if (t.first_hold == kNoTime) t.first_hold = now;
    }
    // 4. Commits: full sets fire instantly.
    for (auto& [id, t] : txns) {
      if (t.done || t.held.size() != t.wanted.size()) continue;
      for (const ObjId oid : t.wanted) {
        ObjSim& o = objs.at(oid);
        DTM_CHECK(o.held_by == id && o.pos == t.txn.node,
                  "optimistic commit without object " << oid);
        o.held_by = kNoTxn;
      }
      t.done = true;
      --live;
      out.committed.push_back({t.txn, now});
      out.makespan = std::max(out.makespan, now);
      workload.on_commit(id, now);
    }
    // (Commits may have produced new arrivals for this step via the
    // closed-loop callback only at now+gap >= now+1, handled next round.)

    // 5. Aborts: partial holders out of patience.
    for (auto& [id, t] : txns) {
      if (t.done || t.held.empty() || t.first_hold == kNoTime) continue;
      if (t.held.size() == t.wanted.size()) continue;
      if (now - t.first_hold < patience) continue;
      ++out.aborts;
      out.wasted_distance += t.shipped;
      for (const ObjId oid : t.held) {
        ObjSim& o = objs.at(oid);
        o.held_by = kNoTxn;  // released where it lies (the txn's node)
      }
      t.held.clear();
      t.shipped = 0;
      t.first_hold = kNoTime;
      ++t.attempts;
      const Time cap =
          opts.backoff_base * (Time{1} << std::min<std::int32_t>(t.attempts, 6));
      t.retry_at = now + rng.uniform_int(1, std::max<Time>(cap, 1));
      // Drop its outstanding queue entries (re-queued on retry).
      for (const ObjId oid : t.wanted) {
        auto& q = objs.at(oid).queue;
        q.erase(std::remove(q.begin(), q.end(), id), q.end());
      }
    }
    // 6. Grants: free objects serve their queue heads.
    for (auto& [oid, o] : objs) {
      if (o.in_transit || o.held_by != kNoTxn) continue;
      while (!o.queue.empty()) {
        const TxnId head = o.queue.front();
        const auto it = txns.find(head);
        if (it == txns.end() || it->second.done ||
            it->second.retry_at != kNoTime) {
          o.queue.pop_front();  // stale entry
          continue;
        }
        o.queue.pop_front();
        TxnSim& t = it->second;
        const Weight d = net.dist(o.pos, t.txn.node);
        o.leg_dist = d;
        if (d == 0) {
          o.held_by = head;
          t.held.insert(oid);
          if (t.first_hold == kNoTime) t.first_hold = now;
        } else {
          o.in_transit = true;
          o.carried_for = head;
          o.arrive = now + d;
          o.pos = t.txn.node;  // position on arrival
        }
        break;
      }
    }

    if (workload.finished() && live == 0) break;

    // Next event: arrival, delivery, retry expiry, or patience deadline.
    Time next = kNoTime;
    auto consider = [&next](Time t) {
      if (t == kNoTime) return;
      next = next == kNoTime ? t : std::min(next, t);
    };
    consider(workload.next_arrival_time());
    for (const auto& [oid, o] : objs)
      if (o.in_transit) consider(o.arrive);
    for (const auto& [id, t] : txns) {
      if (t.done) continue;
      if (t.retry_at != kNoTime) consider(t.retry_at);
      if (t.first_hold != kNoTime && t.held.size() != t.wanted.size())
        consider(t.first_hold + patience);
      // A set completed by a same-step zero-distance grant commits on the
      // next step.
      if (!t.wanted.empty() && t.held.size() == t.wanted.size())
        consider(now + 1);
    }
    DTM_CHECK(next != kNoTime, "optimistic run stalled at step " << now
                                                                 << " with "
                                                                 << live
                                                                 << " live");
    DTM_CHECK(next > now, "optimistic event loop failed to advance");
    now = next;
  }

  out.num_txns = static_cast<std::int64_t>(out.committed.size());
  double lat = 0;
  for (const auto& s : out.committed)
    lat += static_cast<double>(s.exec - s.txn.gen_time);
  if (out.num_txns > 0)
    out.mean_latency = lat / static_cast<double>(out.num_txns);
  return out;
}

}  // namespace dtm
