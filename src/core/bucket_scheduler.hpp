// Online bucket schedule (paper Algorithm 2, §IV): converts an offline
// batch scheduling algorithm A into an online scheduler.
//
// Bucket B_i holds unscheduled transactions whose combined batch problem
// (together with the already-scheduled set, folded into availability) takes
// at most 2^i steps under A. A new transaction goes into the lowest such
// bucket; bucket B_i activates every 2^i steps, at which point A schedules
// its contents irrevocably. Lemma 3 bounds the number of levels by
// log2(n*D) + O(1); Theorem 4 bounds the competitive ratio by
// O(b_A log^3(nD)).
//
// Insertion runs through the shared incremental core
// (batch/bucket_insertion.hpp): cached per-bucket problems, memoized F_A
// estimates, and a lower-bound start level — byte-identical to the naive
// scan, selectable via BucketOptions::fastpath.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "batch/batch_scheduler.hpp"
#include "batch/bucket_insertion.hpp"
#include "batch/suffix_wrapper.hpp"
#include "core/scheduler.hpp"

namespace dtm {

struct BucketOptions {
    /// Highest bucket level. 0 = auto: ceil(log2(n * D * latency)) + 6; the
    /// slack over Lemma 3's log(nD)+1 absorbs availability pushed into the
    /// future by earlier activations.
    std::int32_t max_level = 0;
    std::uint64_t seed = 0xB0CCE7;
    /// Retries for randomized A at activation, keeping the best schedule
    /// (the paper's remedy for the randomized cluster/star algorithms).
    std::int32_t randomized_retries = 3;
    /// Apply the §IV-A suffix-property wrapper to activation schedules.
    bool enforce_suffix_property = true;
    /// Ablation: force every transaction into this level instead of the
    /// F_A insertion rule (-1 = normal operation). Disables the level
    /// separation that Lemma 4 relies on — the ablation bench quantifies
    /// what the bucket hierarchy actually buys.
    std::int32_t force_level = -1;
    /// Insertion path: kIncremental (default) probes via cached problems,
    /// memoized F_A, and the lower-bound start level; kNaive rebuilds every
    /// level from 0 (the paper-verbatim baseline bench_bucket_fastpath
    /// measures against); kVerify runs both and checks every decision.
    BucketFastPath fastpath = BucketFastPath::kIncremental;
    /// Worker threads for the insertion core's wave probing and activation
    /// retries (1 = serial, 0 = all hardware threads). Decisions are
    /// thread-count-invariant (ARCHITECTURE.md §8).
    std::int32_t threads = 1;
    /// Batch arithmetic backend (registry knob `batch_math=scalar|soa|
    /// verify`): kScalar is the reference, kSoA scores through bitset
    /// conflict rows + popcount kernels over a shared SoA view, kVerify
    /// runs SoA cross-checked against scalar per call. Byte-identical
    /// schedules in all three (ARCHITECTURE.md §9).
    BatchMathMode batch_math = BatchMathMode::kScalar;
  };

class BucketScheduler final : public OnlineScheduler {
 public:
  using Options = BucketOptions;

  BucketScheduler(std::shared_ptr<const BatchScheduler> algo,
                  Options opts = {});

  [[nodiscard]] std::vector<Assignment> on_step(
      const SystemView& view, std::span<const Transaction> arrivals) override;

  [[nodiscard]] Time next_event_hint(Time now) const override;

  [[nodiscard]] std::string name() const override {
    return "bucket[" + algo_->name() + "]";
  }

  /// Per-transaction trace for the Lemma 3 / Lemma 4 experiments.
  struct TxnTrace {
    TxnId txn = kNoTxn;
    Time inserted = kNoTime;   ///< arrival / insertion step
    std::int32_t level = -1;   ///< bucket level chosen
    Time scheduled = kNoTime;  ///< activation step that fixed the time
    Time exec = kNoTime;       ///< assigned execution time
  };
  [[nodiscard]] const std::vector<TxnTrace>& traces() const { return traces_; }
  [[nodiscard]] std::int32_t max_level_used() const { return max_level_used_; }
  [[nodiscard]] std::int32_t num_levels() const {
    return static_cast<std::int32_t>(buckets_.size());
  }
  /// The insertion core's counters / last-scan trace (bench + tests).
  [[nodiscard]] const FastPathStats& fastpath_stats() const {
    return core_.stats();
  }
  [[nodiscard]] const BucketInsertionCore& insertion_core() const {
    return core_;
  }

 private:
  void ensure_levels(const SystemView& view);
  std::int32_t choose_level(const SystemView& view, const Transaction& t,
                            const ExtraAssignments& extra);

  std::shared_ptr<const BatchScheduler> algo_;
  std::unique_ptr<SuffixWrapper> wrapped_;
  Options opts_;
  BucketInsertionCore core_;

  std::vector<std::vector<TxnId>> buckets_;
  std::map<TxnId, std::size_t> trace_index_;
  std::vector<TxnTrace> traces_;
  std::int32_t max_level_used_ = -1;
};

}  // namespace dtm
