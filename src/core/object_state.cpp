#include "core/object_state.hpp"

#include <algorithm>

namespace dtm {

Time ObjectState::time_to(NodeId x, Time now, const DistanceOracle& oracle,
                          std::int64_t latency_factor) const {
  DTM_REQUIRE(latency_factor >= 1, "latency factor " << latency_factor);
  if (!in_transit_) return latency_factor * oracle.dist(at_, x);
  if (now <= depart_) {
    // Heading back toward `from_` first (post-redirect transient).
    return (depart_ - now) + latency_factor * oracle.dist(from_, x);
  }
  if (now >= arrive_) return latency_factor * oracle.dist(to_, x);
  const Time covered = now - depart_;
  const Time remaining = arrive_ - now;
  return std::min(covered + latency_factor * oracle.dist(from_, x),
                  remaining + latency_factor * oracle.dist(to_, x));
}

void ObjectState::route_to(NodeId target, Time now,
                           const DistanceOracle& oracle,
                           std::int64_t latency_factor) {
  DTM_REQUIRE(latency_factor >= 1, "latency factor " << latency_factor);
  settle(now);
  if (!in_transit_) {
    if (at_ == target) return;  // already there
    from_ = at_;
    to_ = target;
    depart_ = now;
    arrive_ = now + latency_factor * oracle.dist(from_, target);
    in_transit_ = true;
    return;
  }
  if (to_ == target) return;  // already heading there
  // Redirect mid-flight: realize whichever of the two graph routes (back via
  // `from_`, forward via `to_`) reaches the new target sooner. The leg is
  // rebased so that `depart_` is the moment the object passes the chosen
  // endpoint; time_to() handles the now < depart_ transient.
  const Time covered = std::max<Time>(now - depart_, 0);
  const Time remaining = std::max<Time>(arrive_ - now, 0);
  const Time via_from = covered + latency_factor * oracle.dist(from_, target);
  const Time via_to = remaining + latency_factor * oracle.dist(to_, target);
  if (via_from <= via_to) {
    depart_ = now + covered;
    // from_ stays.
  } else {
    depart_ = now + remaining;
    from_ = to_;
  }
  to_ = target;
  arrive_ = depart_ + latency_factor * oracle.dist(from_, target);
  in_transit_ = from_ != target || depart_ > now;
  if (!in_transit_) {
    at_ = target;
    rest_since_ = now;
  }
}

void ObjectState::delay_arrival(Time extra) {
  DTM_REQUIRE(in_transit_, "object " << id_ << " is at rest; nothing to stall");
  DTM_REQUIRE(extra >= 0, "object " << id_ << " stall " << extra);
  arrive_ += extra;
}

void ObjectState::settle(Time now) {
  if (in_transit_ && now >= arrive_) {
    at_ = to_;
    rest_since_ = arrive_;
    in_transit_ = false;
  }
}

}  // namespace dtm
