// First-come-first-served online baseline.
//
// The simplest sound online scheduler: each object serves its requesters in
// arrival order, and a transaction commits once every requested object has
// worked through its queue. Distance-oblivious ordering — the contrast that
// shows what Algorithm 1's weighted coloring (which picks *positions* in
// time using distances) actually buys. Used by the baseline experiments.
#pragma once

#include <map>

#include "core/scheduler.hpp"

namespace dtm {

class FcfsScheduler final : public OnlineScheduler {
 public:
  [[nodiscard]] std::vector<Assignment> on_step(
      const SystemView& view, std::span<const Transaction> arrivals) override;

  [[nodiscard]] std::string name() const override { return "fcfs"; }

 private:
  /// Tail of each object's service chain: (node, time, is_txn).
  struct Tail {
    NodeId node = kNoNode;
    Time free_at = 0;
    bool from_txn = false;
  };
  std::map<ObjId, Tail> tails_;
};

}  // namespace dtm
