// EventSource — anything with pending timed events that must wake the
// runner: a message bus with undelivered messages, an async transport with
// in-flight motion, a scheduler-internal timer. The EventClock
// (sim/clock.hpp) merges all registered sources into the single "when can
// anything next happen?" answer that drives idle-stretch fast-forwarding.
#pragma once

#include "core/types.hpp"

namespace dtm {

class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Earliest pending event time, kNoTime if none. Times in the past mean
  /// "wake immediately".
  [[nodiscard]] virtual Time next_event_time() const = 0;
};

}  // namespace dtm
