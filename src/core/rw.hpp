// Read-write sharing extension.
//
// The paper's conflict relation is pure object intersection (§II): every
// access is exclusive and the object serializes all its users. This module
// implements the natural relaxation the model text gestures at ("requests
// a set of objects for read or write"): reads share. Semantics are
// snapshot-style:
//  - writes of an object serialize exactly as in the base model (the
//    master copy travels the write chain);
//  - a read receives a COPY of the latest version written strictly before
//    its execution time, shipped from that writer's node (or from the
//    object's origin if it precedes every write);
//  - reads never conflict with reads.
// The scheduler is the same greedy weighted coloring, with conflict edges
// only between access pairs where at least one side writes; feasibility is
// checked by a dedicated validator, and the copy traffic (the price of
// replication) is accounted explicitly.
#pragma once

#include <map>
#include <vector>

#include "core/coloring.hpp"
#include "core/schedule.hpp"
#include "net/topology.hpp"
#include "sim/workload.hpp"

namespace dtm {

/// How writes interact with outstanding read copies.
enum class RwSemantics {
  /// Snapshot isolation style: a read observes the latest version written
  /// strictly before it; writes never wait for readers.
  kSnapshot,
  /// Invalidation-coherence style: a write additionally waits until every
  /// earlier access (including reads of the previous version) has
  /// completed and the invalidation could travel to the writer.
  kCoherent,
};

/// Validates a schedule under read-write semantics: the write chain of each
/// object must be feasible exactly as in validate_schedule (restricted to
/// writes), and every read must be reachable by a copy from its snapshot
/// source (latest write with exec < read's exec, else the origin).
/// kCoherent additionally requires every write to clear all earlier
/// accesses of the object by their invalidation travel time.
[[nodiscard]] ValidationError validate_rw_schedule(
    const std::vector<ScheduledTxn>& scheduled,
    const std::vector<ObjectOrigin>& origins, const DistanceOracle& oracle,
    std::int64_t latency_factor = 1,
    RwSemantics semantics = RwSemantics::kSnapshot);

/// Online greedy scheduler under read-write semantics. Stand-alone (it does
/// not run on SyncEngine, whose object motion is exclusive); driven by
/// run_rw_experiment.
class RwGreedyScheduler {
 public:
  explicit RwGreedyScheduler(const DistanceOracle& oracle,
                             std::int64_t latency_factor = 1,
                             RwSemantics semantics = RwSemantics::kSnapshot)
      : oracle_(&oracle), factor_(latency_factor), semantics_(semantics) {}

  /// Assigns an irrevocable execution time to `t` (gen_time == now).
  [[nodiscard]] Time schedule(const Transaction& t, Time now);

  /// Registers the object origins before any scheduling.
  void add_origin(const ObjectOrigin& o) { origins_[o.id] = o; }

 private:
  struct AccessRecord {
    Time exec;
    NodeId node;
    bool write;
  };

  const DistanceOracle* oracle_;
  std::int64_t factor_;
  RwSemantics semantics_;
  std::map<ObjId, ObjectOrigin> origins_;
  std::map<ObjId, std::vector<AccessRecord>> history_;
};

struct RwRunResult {
  std::int64_t num_txns = 0;
  Time makespan = 0;
  double mean_latency = 0.0;
  std::int64_t copies = 0;          ///< read copies shipped
  std::int64_t copy_distance = 0;   ///< total distance of those shipments
  Time write_lb = 1;                ///< exclusive-style LB over writes only
  double ratio = 0.0;               ///< makespan / write_lb
};

/// Drives `workload` through the read-write greedy scheduler analytically
/// (commit = scheduled time), validates with validate_rw_schedule, and
/// accounts copy traffic.
[[nodiscard]] RwRunResult run_rw_experiment(
    const Network& net, Workload& workload, std::int64_t latency_factor = 1,
    RwSemantics semantics = RwSemantics::kSnapshot);

}  // namespace dtm
