// Weighted greedy coloring (paper §III-A, Lemmas 1 and 2).
//
// A valid coloring assigns integers to nodes such that adjacent nodes differ
// by at least their edge weight (Equation 1). In the scheduling application
// colors are execution-time offsets: a gap of w between conflicting
// transactions leaves exactly enough steps for the shared object to travel
// between them.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"

namespace dtm {

/// One already-colored neighbor of the node being colored: the chosen color
/// must satisfy |c - color| >= gap. Constraints with gap <= 0 are vacuous.
struct ColorConstraint {
  Time color = 0;
  Weight gap = 0;
};

/// Smallest color c >= min_color with c % multiple_of == 0 satisfying every
/// constraint. This is the constructive step of Lemma 1 (multiple_of = 1)
/// and Lemma 2 (multiple_of = beta, colors restricted to multiples of the
/// uniform edge weight). O(m log m) in the number of constraints.
[[nodiscard]] Time min_feasible_color(std::span<const ColorConstraint> cs,
                                      Time min_color = 0,
                                      Time multiple_of = 1);

/// Lemma 1's guarantee for a node with the given constraints: a valid color
/// <= 2*Gamma - Delta exists, where Gamma is the weighted degree (sum of
/// gaps) and Delta the plain degree (count of constraints with gap >= 1).
[[nodiscard]] Time lemma1_bound(std::span<const ColorConstraint> cs);

/// Lemma 2's guarantee when every gap equals `beta` and every neighbor color
/// is a multiple of beta: a valid color that is a multiple of beta and
/// <= Gamma = beta * Delta exists. As used by Theorem 2 the constraint set
/// always contains a color-0 neighbor (the transaction currently holding the
/// object), which blocks no candidate >= beta; if no color-0 constraint is
/// present the guarantee weakens to Gamma + beta, and this helper returns
/// that.
[[nodiscard]] Time lemma2_bound(std::span<const ColorConstraint> cs);

/// Guaranteed bound for beta-multiple colors against ARBITRARY constraints
/// (neighbor colors need not be multiples of beta, gaps need not equal
/// beta — the situation in a dynamic run, where previously scheduled
/// transactions carry offsets exec - now): each constraint with gap g
/// forbids at most 2*ceil(g/beta) candidate multiples, so a free multiple
/// exists at or below beta * (1 + sum 2*ceil(g/beta)). Reduces to Lemma 2's
/// premise-specific Gamma bound when colors are aligned and gaps equal
/// beta.
[[nodiscard]] Time uniform_dynamic_bound(std::span<const ColorConstraint> cs,
                                         Weight beta);

/// True iff `color` satisfies every constraint. Used by tests and by the
/// schedule validator.
[[nodiscard]] bool color_satisfies(Time color,
                                   std::span<const ColorConstraint> cs);

/// A forbidden closed integer interval [lo, hi] of colors. One-sided
/// constraints (e.g. the snapshot-read rule "a write may precede a read
/// only with a full travel gap, but may follow it freely") are expressible
/// as intervals where the symmetric ColorConstraint cannot.
struct ForbiddenInterval {
  Time lo = 0;
  Time hi = -1;  ///< empty when hi < lo

  [[nodiscard]] bool contains(Time c) const { return c >= lo && c <= hi; }
};

/// Smallest color c >= min_color with c % multiple_of == 0 avoiding every
/// interval. Same sweep as min_feasible_color (which is the special case
/// of symmetric intervals).
[[nodiscard]] Time min_feasible_color_intervals(
    std::span<const ForbiddenInterval> intervals, Time min_color = 0,
    Time multiple_of = 1);

}  // namespace dtm
