// Mobile-object position tracking (paper §II / §III-B).
//
// An object is either resting at a node or in transit toward one. In-transit
// motion is abstracted as a *leg* (from, to, depart, arrive): the physical
// point at time t is "depart + (t - depart) of the way along a shortest
// from→to path". The paper's virtual node v_t(o) for an in-transit object is
// realized by dist_to(): the distance from the current point to any node x
// is upper-bounded by min(backtrack via `from`, continue via `to`), and both
// routes are realizable in G, so schedules built against this bound stay
// feasible even when the object is redirected mid-flight.
#pragma once

#include "core/types.hpp"
#include "net/graph.hpp"

namespace dtm {

class ObjectState {
 public:
  ObjectState() = default;

  /// Object `id` created at `origin` at time `created`.
  ObjectState(ObjId id, NodeId origin, Time created)
      : id_(id), at_(origin), rest_since_(created) {}

  [[nodiscard]] ObjId id() const { return id_; }
  [[nodiscard]] bool in_transit() const { return in_transit_; }

  /// Resting node; only valid when !in_transit().
  [[nodiscard]] NodeId at() const {
    DTM_REQUIRE(!in_transit_, "object " << id_ << " is in transit");
    return at_;
  }

  /// Destination and arrival time of the current leg.
  [[nodiscard]] NodeId dest() const {
    DTM_REQUIRE(in_transit_, "object " << id_ << " is at rest");
    return to_;
  }
  [[nodiscard]] Time arrive_time() const {
    DTM_REQUIRE(in_transit_, "object " << id_ << " is at rest");
    return arrive_;
  }
  /// Origin and departure time of the current leg (the forwarding-pointer
  /// record the §V tracking protocol keeps at the node the object left).
  [[nodiscard]] NodeId leg_from() const {
    DTM_REQUIRE(in_transit_, "object " << id_ << " is at rest");
    return from_;
  }
  [[nodiscard]] Time depart_time() const {
    DTM_REQUIRE(in_transit_, "object " << id_ << " is at rest");
    return depart_;
  }

  /// The latest transaction L_t(o) that acquired (or created) the object;
  /// kNoTxn until first acquired.
  [[nodiscard]] TxnId last_txn() const { return last_txn_; }
  void set_last_txn(TxnId t) { last_txn_ = t; }

  /// Upper bound on the number of time steps needed for the object to reach
  /// node x starting from its position at `now`, given that object motion
  /// costs latency_factor steps per unit distance. Tight when resting; the
  /// two-route (backtrack vs. continue) bound when in transit.
  [[nodiscard]] Time time_to(NodeId x, Time now, const DistanceOracle& oracle,
                             std::int64_t latency_factor = 1) const;

  /// Starts (or redirects) motion toward `target` at time `now`. Travel
  /// takes latency_factor * distance steps (the distributed algorithm runs
  /// objects at half speed, paper §V). Arrival must be applied by calling
  /// step_arrivals() as simulated time passes. No-op if already heading to
  /// `target`; instant if resting at `target`.
  void route_to(NodeId target, Time now, const DistanceOracle& oracle,
                std::int64_t latency_factor = 1);

  /// Settles the object at its destination if `now` >= arrival time.
  void settle(Time now);

  /// Pushes the current leg's arrival `extra` steps later (fault-injection
  /// transfer stalls). The stretched leg only slows the object down, so
  /// time_to()'s two-route bound stays a valid upper bound: in the elapsed
  /// steps the object has covered *at most* the unstalled distance, hence
  /// both the backtrack and the continue route remain realizable.
  void delay_arrival(Time extra);

 private:
  ObjId id_ = kNoObj;
  // Resting state.
  NodeId at_ = kNoNode;
  Time rest_since_ = 0;
  // Transit leg.
  bool in_transit_ = false;
  NodeId from_ = kNoNode;
  NodeId to_ = kNoNode;
  Time depart_ = kNoTime;  ///< time the object passes `from_`
  Time arrive_ = kNoTime;  ///< time it reaches `to_`

  TxnId last_txn_ = kNoTxn;
};

}  // namespace dtm
