#include "core/fcfs_scheduler.hpp"

#include <algorithm>

namespace dtm {

std::vector<Assignment> FcfsScheduler::on_step(
    const SystemView& view, std::span<const Transaction> arrivals) {
  std::vector<Assignment> out;
  const Time now = view.now();
  for (const Transaction& t : arrivals) {
    // Chain the transaction onto the tail of each of its objects' queues,
    // in strict arrival order (no reordering, no slotting-in).
    Time exec = now;
    for (const auto& acc : t.accesses) {
      auto it = tails_.find(acc.obj);
      if (it == tails_.end()) {
        const ObjectState& os = view.object(acc.obj);
        Tail tail;
        tail.node = os.in_transit() ? os.dest() : os.at();
        tail.free_at =
            os.in_transit() ? std::max(now, os.arrive_time()) : now;
        tail.from_txn = os.last_txn() != kNoTxn;
        it = tails_.emplace(acc.obj, tail).first;
      }
      const Tail& tail = it->second;
      // The object rests at the tail node until this request exists: it
      // departs at max(free_at, now), not at free_at (FCFS has no
      // clairvoyant pre-positioning).
      const Time depart = std::max(tail.free_at, now);
      Time arrive = depart + view.travel(tail.node, t.node);
      if (tail.from_txn) arrive = std::max(arrive, tail.free_at + 1);
      exec = std::max(exec, arrive);
    }
    for (const auto& acc : t.accesses)
      tails_[acc.obj] = {t.node, exec, true};
    out.push_back({t.id, exec});
  }
  return out;
}

}  // namespace dtm
