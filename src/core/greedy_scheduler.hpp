// Online greedy schedule (paper Algorithm 1, §III).
//
// Every newly generated transaction is immediately assigned an execution
// time by greedy weighted coloring of the extended dependency graph H'_t:
//  - already-scheduled live transactions carry color (exec - now);
//  - the current holder of each object — including the virtual in-transit
//    position v_t(o) — carries color 0 with gap equal to the object's travel
//    time to the new transaction;
//  - conflicting transaction pairs carry gap max(1, travel(u, v)).
// The chosen color c gives execution time now + c; Theorem 1 caps c at
// 2*Gamma' - Delta', and the uniform-weight mode (Lemma 2 / Theorem 2)
// restricts colors to multiples of beta and caps c at Gamma'.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/coloring.hpp"
#include "core/scheduler.hpp"

namespace dtm {

struct GreedyOptions {
    /// 0 = general weighted mode (Lemma 1). beta > 0 = uniform mode
    /// (Lemma 2): colors are multiples of beta and every conflict gap is
    /// rounded up to beta; requires all relevant distances <= beta.
    Weight uniform_beta = 0;

    /// Extra steps added to every color, modeling the simple centralized
    /// information-collection round of §III-E (0 = instant knowledge).
    Time coordination_delay = 0;

    /// Congestion-aware slack: every travel-time gap is inflated by this
    /// fraction (rounded up), leaving room for queueing on shared links
    /// when the schedule is executed under bounded capacity (the §VI
    /// extension; see bench_congestion). 0 = the paper's exact model.
    double congestion_padding = 0.0;
  };

class GreedyScheduler final : public OnlineScheduler {
 public:
  using Options = GreedyOptions;

  explicit GreedyScheduler(Options opts = {}) : opts_(opts) {}

  [[nodiscard]] std::vector<Assignment> on_step(
      const SystemView& view, std::span<const Transaction> arrivals) override;

  [[nodiscard]] std::string name() const override {
    return opts_.uniform_beta > 0 ? "greedy-uniform" : "greedy";
  }

  /// Theorem 1/2 bound for the most recent arrival batch: per transaction,
  /// the guaranteed color bound (2*Gamma'-Delta' or Gamma'). Exposed for the
  /// bound-tightness experiment (F1).
  struct BoundSample {
    TxnId txn = kNoTxn;
    Time color = 0;
    Time bound = 0;
  };
  [[nodiscard]] const std::vector<BoundSample>& last_bounds() const {
    return last_bounds_;
  }

 private:
  Options opts_;
  std::vector<BoundSample> last_bounds_;

  // Reusable scratch (cleared per step / per arrival, capacity retained):
  // constraint arena, the dedup'd neighbor set of the arrival being
  // colored, and colors chosen for same-step arrivals (sorted by id).
  std::vector<ColorConstraint> cs_;
  std::vector<TxnId> neighbors_;
  std::vector<std::pair<TxnId, Time>> local_color_;
};

}  // namespace dtm
