#include "core/bucket_scheduler.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace dtm {

BucketScheduler::BucketScheduler(std::shared_ptr<const BatchScheduler> algo,
                                 Options opts)
    : algo_(std::move(algo)),
      opts_(opts),
      core_(algo_, opts.fastpath, opts.seed, opts.threads, opts.batch_math) {
  DTM_REQUIRE(algo_ != nullptr, "bucket scheduler needs a batch algorithm");
  if (opts_.enforce_suffix_property)
    wrapped_ = std::make_unique<SuffixWrapper>(algo_);
}

void BucketScheduler::ensure_levels(const SystemView& view) {
  if (!buckets_.empty()) return;
  std::int32_t levels = opts_.max_level;
  if (levels <= 0) {
    const std::int64_t horizon = static_cast<std::int64_t>(
                                     view.oracle().num_nodes()) *
                                 std::max<Weight>(view.oracle().diameter(), 1) *
                                 view.latency_factor();
    levels = ceil_log2_i64(std::max<std::int64_t>(horizon, 2)) + 6;
  }
  buckets_.assign(static_cast<std::size_t>(levels) + 1, {});
}

std::int32_t BucketScheduler::choose_level(const SystemView& view,
                                           const Transaction& t,
                                           const ExtraAssignments& extra) {
  const auto top = static_cast<std::int32_t>(buckets_.size()) - 1;
  if (opts_.force_level >= 0) return std::min(opts_.force_level, top);
  // F_A estimates use the raw algorithm: the paper's F_A is "the time to
  // execute X using A", and the suffix wrapper only refines final schedules.
  return core_.choose_level(
      view, t, top,
      [&](std::int32_t i) {
        return BucketInsertionCore::LevelView{
            static_cast<BucketInsertionCore::BucketId>(i),
            buckets_[static_cast<std::size_t>(i)]};
      },
      extra);
}

std::vector<Assignment> BucketScheduler::on_step(
    const SystemView& view, std::span<const Transaction> arrivals) {
  ensure_levels(view);
  const Time now = view.now();
  std::vector<Assignment> out;
  ExtraAssignments extra;  // assignments made during this step

  // Insertion (Algorithm 2 line 4).
  for (const Transaction& t : arrivals) {
    const std::int32_t level = choose_level(view, t, extra);
    buckets_[static_cast<std::size_t>(level)].push_back(t.id);
    core_.on_inserted(
        view, static_cast<BucketInsertionCore::BucketId>(level), t, extra);
    max_level_used_ = std::max(max_level_used_, level);
    trace_index_[t.id] = traces_.size();
    traces_.push_back({t.id, now, level, kNoTime, kNoTime});
  }

  // Activations, lowest level first (Algorithm 2 lines 5-8): level i fires
  // every 2^i steps.
  if (now > 0) {
    const BatchScheduler& runner =
        wrapped_ ? static_cast<const BatchScheduler&>(*wrapped_) : *algo_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (i < 63 && (now % (Time{1} << i)) != 0) continue;
      auto& bucket = buckets_[i];
      if (bucket.empty()) continue;
      const auto id = static_cast<BucketInsertionCore::BucketId>(i);
      const BatchProblem& p =
          core_.activation_problem(view, id, bucket, extra);
      const BatchResult r =
          core_.run_activation(p, runner, opts_.randomized_retries);
      for (const auto& a : r.assignments) {
        out.push_back(a);
        extra.set(a.txn, a.exec);
        auto& tr = traces_[trace_index_.at(a.txn)];
        tr.scheduled = now;
        tr.exec = a.exec;
      }
      bucket.clear();
      core_.on_drained(id);
      core_.note_world_change();
    }
  }
  return out;
}

Time BucketScheduler::next_event_hint(Time now) const {
  Time next = kNoTime;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].empty()) continue;
    const Time period = i < 63 ? (Time{1} << i) : (Time{1} << 62);
    // Next activation multiple >= now (activations require now > 0; a
    // bucket still nonempty after this step's on_step cannot fire at now).
    const Time base = std::max<Time>(now, 1);
    const Time fire = ((base + period - 1) / period) * period;
    next = next == kNoTime ? fire : std::min(next, fire);
  }
  return next;
}

}  // namespace dtm
