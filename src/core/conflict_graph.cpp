#include "core/conflict_graph.hpp"

#include <algorithm>
#include <set>

#include "core/coloring.hpp"

namespace dtm {

DependencyGraph DependencyGraph::build(const SystemView& view) {
  DependencyGraph g;
  const Time now = view.now();

  const auto live = view.live_txns();
  std::set<ObjId> objects;
  for (const TxnId id : live) {
    const Transaction& t = view.txn(id);
    g.txn_index_[id] = static_cast<std::int32_t>(g.nodes_.size());
    DependencyNode n;
    n.kind = DependencyNode::Kind::kLiveTxn;
    n.txn = id;
    const Time exec = view.assigned_exec(id);
    n.color = exec == kNoTime ? kNoTime : exec - now;
    g.nodes_.push_back(n);
    for (const auto& a : t.accesses) objects.insert(a.obj);
  }
  // Holder nodes Z_t(o) for every object in play.
  std::map<ObjId, std::int32_t> holder_index;
  for (const ObjId o : objects) {
    holder_index[o] = static_cast<std::int32_t>(g.nodes_.size());
    DependencyNode n;
    n.kind = DependencyNode::Kind::kHolder;
    n.holder_of = o;
    n.color = 0;  // the holder "executes at time t" (paper §III-B)
    g.nodes_.push_back(n);
  }
  g.incident_.resize(g.nodes_.size());

  auto add_edge = [&g](std::int32_t a, std::int32_t b, Weight w) {
    const auto e = static_cast<std::int32_t>(g.edges_.size());
    g.edges_.push_back({a, b, w});
    g.incident_[static_cast<std::size_t>(a)].push_back(e);
    g.incident_[static_cast<std::size_t>(b)].push_back(e);
  };

  // Conflict edges (H_t): object intersection; weight = travel time
  // between the transactions' nodes (>= 1 between distinct transactions).
  for (std::size_t i = 0; i < live.size(); ++i) {
    const Transaction& a = view.txn(live[i]);
    for (std::size_t j = i + 1; j < live.size(); ++j) {
      const Transaction& b = view.txn(live[j]);
      if (!a.conflicts_with(b)) continue;
      add_edge(static_cast<std::int32_t>(i), static_cast<std::int32_t>(j),
               std::max<Weight>(1, view.travel(a.node, b.node)));
    }
  }
  // Holder edges (the H'_t extension): each user of o depends on Z_t(o)
  // with weight = the object's current travel time to the user.
  for (const ObjId o : objects) {
    for (const TxnId uid : view.live_users_of(o)) {
      const Transaction& u = view.txn(uid);
      const Weight w = view.object(o).time_to(u.node, now, view.oracle(),
                                              view.latency_factor());
      add_edge(g.txn_index_.at(uid), holder_index.at(o), w);
    }
  }
  return g;
}

std::int32_t DependencyGraph::degree(std::int32_t node) const {
  return static_cast<std::int32_t>(
      incident_[static_cast<std::size_t>(node)].size());
}

Weight DependencyGraph::weighted_degree(std::int32_t node) const {
  Weight g = 0;
  for (const auto e : incident_[static_cast<std::size_t>(node)])
    g += edges_[static_cast<std::size_t>(e)].weight;
  return g;
}

std::int32_t DependencyGraph::txn_degree(std::int32_t node) const {
  std::int32_t d = 0;
  for (const auto ei : incident_[static_cast<std::size_t>(node)]) {
    const auto& e = edges_[static_cast<std::size_t>(ei)];
    const auto other = e.a == node ? e.b : e.a;
    if (nodes_[static_cast<std::size_t>(other)].kind ==
        DependencyNode::Kind::kLiveTxn)
      ++d;
  }
  return d;
}

Weight DependencyGraph::txn_weighted_degree(std::int32_t node) const {
  Weight g = 0;
  for (const auto ei : incident_[static_cast<std::size_t>(node)]) {
    const auto& e = edges_[static_cast<std::size_t>(ei)];
    const auto other = e.a == node ? e.b : e.a;
    if (nodes_[static_cast<std::size_t>(other)].kind ==
        DependencyNode::Kind::kLiveTxn)
      g += e.weight;
  }
  return g;
}

std::int32_t DependencyGraph::index_of(TxnId t) const {
  const auto it = txn_index_.find(t);
  return it == txn_index_.end() ? -1 : it->second;
}

bool DependencyGraph::valid_partial_coloring() const {
  for (const auto& e : edges_) {
    const Time ca = nodes_[static_cast<std::size_t>(e.a)].color;
    const Time cb = nodes_[static_cast<std::size_t>(e.b)].color;
    if (ca == kNoTime || cb == kNoTime) continue;
    if (std::abs(ca - cb) < e.weight) return false;
  }
  return true;
}

DependencyGraph::Stats DependencyGraph::stats() const {
  Stats s;
  s.edges = static_cast<std::int64_t>(edges_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == DependencyNode::Kind::kLiveTxn)
      ++s.live_txns;
    else
      ++s.holders;
    s.max_degree =
        std::max(s.max_degree, degree(static_cast<std::int32_t>(i)));
    s.max_weighted_degree = std::max(
        s.max_weighted_degree, weighted_degree(static_cast<std::int32_t>(i)));
  }
  return s;
}

}  // namespace dtm
