#include "core/conflict_graph.hpp"

#include <algorithm>

#include "core/coloring.hpp"
#include "util/bitset.hpp"

namespace dtm {

namespace {

/// Conflict pairs via the scalar reference: enumerate user pairs per
/// object, pack as (lo << 32 | hi), sort + unique. Reproduces the original
/// all-pairs (i, j) emission order exactly.
void conflict_pairs_scalar(const SystemView& view, const DependencyGraph& g,
                           const std::vector<ObjId>& objects,
                           std::vector<std::uint64_t>& pairs) {
  pairs.clear();
  for (const ObjId o : objects) {
    const auto users = view.live_users_of(o);
    for (std::size_t i = 0; i < users.size(); ++i) {
      const auto a = static_cast<std::uint32_t>(g.index_of(users[i]));
      for (std::size_t j = i + 1; j < users.size(); ++j) {
        const auto b = static_cast<std::uint32_t>(g.index_of(users[j]));
        const auto lo = std::min(a, b);
        const auto hi = std::max(a, b);
        pairs.push_back((static_cast<std::uint64_t>(lo) << 32) | hi);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
}

/// Conflict pairs via bitset rows: OR each object's user mask into every
/// user's row, clear the diagonal, then scan rows in order emitting bits
/// j > i. Row-major ascending emission IS sorted (lo, hi) order, so the
/// output vector is element-for-element equal to the scalar path's.
void conflict_pairs_bitset(const SystemView& view, const DependencyGraph& g,
                           const std::vector<ObjId>& objects,
                           std::size_t n_txns,
                           std::vector<std::uint64_t>& pairs) {
  pairs.clear();
  const std::size_t nw = bit_words_for(n_txns);
  static thread_local std::vector<BitWord> rows;
  static thread_local std::vector<BitWord> mask;
  rows.assign(n_txns * nw, 0);
  mask.assign(nw, 0);
  for (const ObjId o : objects) {
    const auto users = view.live_users_of(o);
    if (users.size() < 2) continue;
    for (const TxnId uid : users) {
      const auto i = static_cast<std::size_t>(g.index_of(uid));
      mask[i / kBitWordBits] |= BitWord{1} << (i % kBitWordBits);
    }
    for (const TxnId uid : users) {
      const auto i = static_cast<std::size_t>(g.index_of(uid));
      BitWord* row = rows.data() + i * nw;
      for (std::size_t w = 0; w < nw; ++w) row[w] |= mask[w];
    }
    for (const TxnId uid : users) {
      const auto i = static_cast<std::size_t>(g.index_of(uid));
      mask[i / kBitWordBits] = 0;
    }
  }
  for (std::size_t i = 0; i < n_txns; ++i) {
    BitWord* row = rows.data() + i * nw;
    row[i / kBitWordBits] &= ~(BitWord{1} << (i % kBitWordBits));
    // Only bits j > i: mask away the lower part of the diagonal word and
    // skip words below it, so each unordered pair is emitted once, at its
    // (lo, hi) position.
    const std::size_t wlo = i / kBitWordBits;
    BitWord v = row[wlo] & ~((BitWord{2} << (i % kBitWordBits)) - 1);
    for (std::size_t w = wlo;;) {
      while (v != 0) {
        const std::size_t j =
            w * kBitWordBits + static_cast<std::size_t>(std::countr_zero(v));
        pairs.push_back((static_cast<std::uint64_t>(i) << 32) | j);
        v &= v - 1;
      }
      if (++w >= nw) break;
      v = row[w];
    }
  }
}

}  // namespace

DependencyGraph DependencyGraph::build(const SystemView& view,
                                       BatchMathMode math) {
  DependencyGraph g;
  const Time now = view.now();

  const auto live = view.live_txns();  // id-ordered
  std::vector<ObjId> objects;
  g.nodes_.reserve(live.size());
  g.txn_index_.reserve(live.size());
  for (const TxnId id : live) {
    const Transaction& t = view.txn(id);
    g.txn_index_.emplace_back(id, static_cast<std::int32_t>(g.nodes_.size()));
    DependencyNode n;
    n.kind = DependencyNode::Kind::kLiveTxn;
    n.txn = id;
    const Time exec = view.assigned_exec(id);
    n.color = exec == kNoTime ? kNoTime : exec - now;
    g.nodes_.push_back(n);
    for (const auto& a : t.accesses) objects.push_back(a.obj);
  }
  std::sort(objects.begin(), objects.end());
  objects.erase(std::unique(objects.begin(), objects.end()), objects.end());
  // Holder nodes Z_t(o) for every object in play, in object-id order right
  // after the transaction nodes — a holder's index is holder_base + its
  // rank among the sorted object ids.
  const auto holder_base = static_cast<std::int32_t>(g.nodes_.size());
  for (const ObjId o : objects) {
    DependencyNode n;
    n.kind = DependencyNode::Kind::kHolder;
    n.holder_of = o;
    n.color = 0;  // the holder "executes at time t" (paper §III-B)
    g.nodes_.push_back(n);
  }
  const auto holder_index = [&](ObjId o) {
    const auto it = std::lower_bound(objects.begin(), objects.end(), o);
    return holder_base + static_cast<std::int32_t>(it - objects.begin());
  };

  // Conflict edges (H_t) from the object -> live-users inverted index: the
  // users of one object pairwise conflict, and a pair sharing several
  // objects gets one edge. The scalar path sorts packed pairs; the bitset
  // path emits them in the same order from a row-major bit scan.
  std::vector<std::uint64_t> pairs;
  if (math == BatchMathMode::kScalar) {
    conflict_pairs_scalar(view, g, objects, pairs);
  } else {
    conflict_pairs_bitset(view, g, objects,
                          static_cast<std::size_t>(holder_base), pairs);
    if (math == BatchMathMode::kVerify) {
      std::vector<std::uint64_t> ref;
      conflict_pairs_scalar(view, g, objects, ref);
      DTM_CHECK(pairs == ref,
                "bitset conflict pairs diverged from scalar: "
                    << pairs.size() << " vs " << ref.size() << " pairs");
    }
  }
  for (const std::uint64_t key : pairs) {
    const auto i = static_cast<std::int32_t>(key >> 32);
    const auto j = static_cast<std::int32_t>(key & 0xffffffffu);
    const Transaction& a = view.txn(g.nodes_[static_cast<std::size_t>(i)].txn);
    const Transaction& b = view.txn(g.nodes_[static_cast<std::size_t>(j)].txn);
    g.edges_.push_back({i, j, std::max<Weight>(1, view.travel(a.node, b.node))});
  }
  // Holder edges (the H'_t extension): each user of o depends on Z_t(o)
  // with weight = the object's current travel time to the user.
  for (const ObjId o : objects) {
    for (const TxnId uid : view.live_users_of(o)) {
      const Transaction& u = view.txn(uid);
      const Weight w = view.object(o).time_to(u.node, now, view.oracle(),
                                              view.latency_factor());
      g.edges_.push_back({g.index_of(uid), holder_index(o), w});
    }
  }
  g.build_incidence();
  return g;
}

void DependencyGraph::build_incidence() {
  const std::size_t n = nodes_.size();
  inc_off_.assign(n + 1, 0);
  for (const auto& e : edges_) {
    ++inc_off_[static_cast<std::size_t>(e.a) + 1];
    ++inc_off_[static_cast<std::size_t>(e.b) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) inc_off_[i + 1] += inc_off_[i];
  inc_edge_.resize(edges_.empty() ? 0 : static_cast<std::size_t>(inc_off_[n]));
  std::vector<std::int32_t> cursor(inc_off_.begin(), inc_off_.end() - 1);
  for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
    const auto& e = edges_[ei];
    inc_edge_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.a)]++)] =
        static_cast<std::int32_t>(ei);
    inc_edge_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.b)]++)] =
        static_cast<std::int32_t>(ei);
  }
}

std::int32_t DependencyGraph::degree(std::int32_t node) const {
  return static_cast<std::int32_t>(incident(node).size());
}

Weight DependencyGraph::weighted_degree(std::int32_t node) const {
  Weight g = 0;
  for (const auto e : incident(node))
    g += edges_[static_cast<std::size_t>(e)].weight;
  return g;
}

std::int32_t DependencyGraph::txn_degree(std::int32_t node) const {
  std::int32_t d = 0;
  for (const auto ei : incident(node)) {
    const auto& e = edges_[static_cast<std::size_t>(ei)];
    const auto other = e.a == node ? e.b : e.a;
    if (nodes_[static_cast<std::size_t>(other)].kind ==
        DependencyNode::Kind::kLiveTxn)
      ++d;
  }
  return d;
}

Weight DependencyGraph::txn_weighted_degree(std::int32_t node) const {
  Weight g = 0;
  for (const auto ei : incident(node)) {
    const auto& e = edges_[static_cast<std::size_t>(ei)];
    const auto other = e.a == node ? e.b : e.a;
    if (nodes_[static_cast<std::size_t>(other)].kind ==
        DependencyNode::Kind::kLiveTxn)
      g += e.weight;
  }
  return g;
}

std::int32_t DependencyGraph::index_of(TxnId t) const {
  const auto it = std::lower_bound(
      txn_index_.begin(), txn_index_.end(), t,
      [](const std::pair<TxnId, std::int32_t>& e, TxnId id) {
        return e.first < id;
      });
  return it == txn_index_.end() || it->first != t ? -1 : it->second;
}

bool DependencyGraph::valid_partial_coloring() const {
  for (const auto& e : edges_) {
    const Time ca = nodes_[static_cast<std::size_t>(e.a)].color;
    const Time cb = nodes_[static_cast<std::size_t>(e.b)].color;
    if (ca == kNoTime || cb == kNoTime) continue;
    if (std::abs(ca - cb) < e.weight) return false;
  }
  return true;
}

DependencyGraph::Stats DependencyGraph::stats() const {
  Stats s;
  s.edges = static_cast<std::int64_t>(edges_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == DependencyNode::Kind::kLiveTxn)
      ++s.live_txns;
    else
      ++s.holders;
    s.max_degree =
        std::max(s.max_degree, degree(static_cast<std::int32_t>(i)));
    s.max_weighted_degree = std::max(
        s.max_weighted_degree, weighted_degree(static_cast<std::int32_t>(i)));
  }
  return s;
}

}  // namespace dtm
