#include "core/conflict_graph.hpp"

#include <algorithm>

#include "core/coloring.hpp"

namespace dtm {

DependencyGraph DependencyGraph::build(const SystemView& view) {
  DependencyGraph g;
  const Time now = view.now();

  const auto live = view.live_txns();  // id-ordered
  std::vector<ObjId> objects;
  g.nodes_.reserve(live.size());
  g.txn_index_.reserve(live.size());
  for (const TxnId id : live) {
    const Transaction& t = view.txn(id);
    g.txn_index_.emplace_back(id, static_cast<std::int32_t>(g.nodes_.size()));
    DependencyNode n;
    n.kind = DependencyNode::Kind::kLiveTxn;
    n.txn = id;
    const Time exec = view.assigned_exec(id);
    n.color = exec == kNoTime ? kNoTime : exec - now;
    g.nodes_.push_back(n);
    for (const auto& a : t.accesses) objects.push_back(a.obj);
  }
  std::sort(objects.begin(), objects.end());
  objects.erase(std::unique(objects.begin(), objects.end()), objects.end());
  // Holder nodes Z_t(o) for every object in play, in object-id order right
  // after the transaction nodes — a holder's index is holder_base + its
  // rank among the sorted object ids.
  const auto holder_base = static_cast<std::int32_t>(g.nodes_.size());
  for (const ObjId o : objects) {
    DependencyNode n;
    n.kind = DependencyNode::Kind::kHolder;
    n.holder_of = o;
    n.color = 0;  // the holder "executes at time t" (paper §III-B)
    g.nodes_.push_back(n);
  }
  const auto holder_index = [&](ObjId o) {
    const auto it = std::lower_bound(objects.begin(), objects.end(), o);
    return holder_base + static_cast<std::int32_t>(it - objects.begin());
  };
  g.incident_.resize(g.nodes_.size());

  auto add_edge = [&g](std::int32_t a, std::int32_t b, Weight w) {
    const auto e = static_cast<std::int32_t>(g.edges_.size());
    g.edges_.push_back({a, b, w});
    g.incident_[static_cast<std::size_t>(a)].push_back(e);
    g.incident_[static_cast<std::size_t>(b)].push_back(e);
  };

  // Conflict edges (H_t) from the object -> live-users inverted index: the
  // users of one object pairwise conflict, and a pair sharing several
  // objects gets one edge. Costs sum over objects of degree^2 instead of
  // the all-pairs |live|^2 conflicts_with sweep; sorting the packed pairs
  // reproduces the all-pairs (i, j) emission order exactly.
  std::vector<std::uint64_t> pairs;
  for (const ObjId o : objects) {
    const auto users = view.live_users_of(o);
    for (std::size_t i = 0; i < users.size(); ++i) {
      const auto a = static_cast<std::uint32_t>(g.index_of(users[i]));
      for (std::size_t j = i + 1; j < users.size(); ++j) {
        const auto b = static_cast<std::uint32_t>(g.index_of(users[j]));
        const auto lo = std::min(a, b);
        const auto hi = std::max(a, b);
        pairs.push_back((static_cast<std::uint64_t>(lo) << 32) | hi);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const std::uint64_t key : pairs) {
    const auto i = static_cast<std::int32_t>(key >> 32);
    const auto j = static_cast<std::int32_t>(key & 0xffffffffu);
    const Transaction& a = view.txn(g.nodes_[static_cast<std::size_t>(i)].txn);
    const Transaction& b = view.txn(g.nodes_[static_cast<std::size_t>(j)].txn);
    add_edge(i, j, std::max<Weight>(1, view.travel(a.node, b.node)));
  }
  // Holder edges (the H'_t extension): each user of o depends on Z_t(o)
  // with weight = the object's current travel time to the user.
  for (const ObjId o : objects) {
    for (const TxnId uid : view.live_users_of(o)) {
      const Transaction& u = view.txn(uid);
      const Weight w = view.object(o).time_to(u.node, now, view.oracle(),
                                              view.latency_factor());
      add_edge(g.index_of(uid), holder_index(o), w);
    }
  }
  return g;
}

std::int32_t DependencyGraph::degree(std::int32_t node) const {
  return static_cast<std::int32_t>(
      incident_[static_cast<std::size_t>(node)].size());
}

Weight DependencyGraph::weighted_degree(std::int32_t node) const {
  Weight g = 0;
  for (const auto e : incident_[static_cast<std::size_t>(node)])
    g += edges_[static_cast<std::size_t>(e)].weight;
  return g;
}

std::int32_t DependencyGraph::txn_degree(std::int32_t node) const {
  std::int32_t d = 0;
  for (const auto ei : incident_[static_cast<std::size_t>(node)]) {
    const auto& e = edges_[static_cast<std::size_t>(ei)];
    const auto other = e.a == node ? e.b : e.a;
    if (nodes_[static_cast<std::size_t>(other)].kind ==
        DependencyNode::Kind::kLiveTxn)
      ++d;
  }
  return d;
}

Weight DependencyGraph::txn_weighted_degree(std::int32_t node) const {
  Weight g = 0;
  for (const auto ei : incident_[static_cast<std::size_t>(node)]) {
    const auto& e = edges_[static_cast<std::size_t>(ei)];
    const auto other = e.a == node ? e.b : e.a;
    if (nodes_[static_cast<std::size_t>(other)].kind ==
        DependencyNode::Kind::kLiveTxn)
      g += e.weight;
  }
  return g;
}

std::int32_t DependencyGraph::index_of(TxnId t) const {
  const auto it = std::lower_bound(
      txn_index_.begin(), txn_index_.end(), t,
      [](const std::pair<TxnId, std::int32_t>& e, TxnId id) {
        return e.first < id;
      });
  return it == txn_index_.end() || it->first != t ? -1 : it->second;
}

bool DependencyGraph::valid_partial_coloring() const {
  for (const auto& e : edges_) {
    const Time ca = nodes_[static_cast<std::size_t>(e.a)].color;
    const Time cb = nodes_[static_cast<std::size_t>(e.b)].color;
    if (ca == kNoTime || cb == kNoTime) continue;
    if (std::abs(ca - cb) < e.weight) return false;
  }
  return true;
}

DependencyGraph::Stats DependencyGraph::stats() const {
  Stats s;
  s.edges = static_cast<std::int64_t>(edges_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == DependencyNode::Kind::kLiveTxn)
      ++s.live_txns;
    else
      ++s.holders;
    s.max_degree =
        std::max(s.max_degree, degree(static_cast<std::int32_t>(i)));
    s.max_weighted_degree = std::max(
        s.max_weighted_degree, weighted_degree(static_cast<std::int32_t>(i)));
  }
  return s;
}

}  // namespace dtm
