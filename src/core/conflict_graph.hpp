// The transaction dependency graphs of §III-B: H_t (conflicts among live
// transactions) and the extended H'_t (plus the current holders Z_t(o),
// including virtual in-transit positions).
//
// The greedy scheduler builds its constraint sets directly for speed; this
// module materializes the graphs explicitly for analysis, tests, and
// experiment reporting (degrees Δ, weighted degrees Γ — the quantities
// Theorems 1 and 2 are stated in).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/scheduler.hpp"
#include "core/types.hpp"
#include "util/batch_math.hpp"

namespace dtm {

/// A node of H'_t: either a live transaction or the current holder Z_t(o)
/// of an object (the object's resting place or in-transit virtual node).
struct DependencyNode {
  enum class Kind { kLiveTxn, kHolder } kind = Kind::kLiveTxn;
  TxnId txn = kNoTxn;    ///< kLiveTxn: the transaction id
  ObjId holder_of = kNoObj;  ///< kHolder: the object whose position this is
  /// Color of an already-scheduled transaction (exec - now), 0 for holders
  /// and executing transactions, kNoTime for unscheduled live transactions.
  Time color = kNoTime;
};

struct DependencyEdge {
  std::int32_t a = -1;  ///< indices into nodes()
  std::int32_t b = -1;
  Weight weight = 0;    ///< travel time (>= 1 between distinct txns)
};

/// Snapshot of H'_t at one time step (H_t is the restriction to kLiveTxn
/// nodes; helpers below expose both views).
class DependencyGraph {
 public:
  /// Builds H'_t from the live system state: one node per live transaction
  /// plus one holder node per object used by any live transaction.
  ///
  /// `math` selects the conflict-pair construction: kScalar enumerates
  /// user pairs per object and sorts the packed (lo, hi) keys; kSoA ORs
  /// per-object user masks into per-transaction bitset rows and emits
  /// pairs by a row-major ascending bit scan (identical edge order by
  /// construction); kVerify runs both and cross-checks the pair sets.
  static DependencyGraph build(const SystemView& view,
                               BatchMathMode math = BatchMathMode::kScalar);

  [[nodiscard]] const std::vector<DependencyNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<DependencyEdge>& edges() const {
    return edges_;
  }

  /// Degree Δ'(v) and weighted degree Γ'(v) in H'_t.
  [[nodiscard]] std::int32_t degree(std::int32_t node) const;
  [[nodiscard]] Weight weighted_degree(std::int32_t node) const;

  /// Degree/weighted degree restricted to transaction-transaction edges
  /// (the H_t view).
  [[nodiscard]] std::int32_t txn_degree(std::int32_t node) const;
  [[nodiscard]] Weight txn_weighted_degree(std::int32_t node) const;

  /// Index of the node for transaction `t`, -1 if absent.
  [[nodiscard]] std::int32_t index_of(TxnId t) const;

  /// True iff the stored colors form a valid partial coloring of H'_t
  /// (Equation 1 over every edge whose endpoints both have colors).
  [[nodiscard]] bool valid_partial_coloring() const;

  /// Summary statistics for experiment reporting.
  struct Stats {
    std::int64_t live_txns = 0;
    std::int64_t holders = 0;
    std::int64_t edges = 0;
    std::int32_t max_degree = 0;
    Weight max_weighted_degree = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  /// Rebuilds the flat CSR incidence index from edges_ (two passes: count,
  /// then fill in edge order — the same per-node edge ordering the former
  /// vector-of-vectors push_back produced).
  void build_incidence();
  [[nodiscard]] std::span<const std::int32_t> incident(
      std::int32_t node) const {
    const auto n = static_cast<std::size_t>(node);
    return {inc_edge_.data() + inc_off_[n],
            static_cast<std::size_t>(inc_off_[n + 1] - inc_off_[n])};
  }

  std::vector<DependencyNode> nodes_;
  std::vector<DependencyEdge> edges_;
  /// Flat CSR node → incident edge indices (offsets + edge ids): one
  /// allocation instead of a vector per node.
  std::vector<std::int32_t> inc_off_;
  std::vector<std::int32_t> inc_edge_;
  /// (txn, node index), sorted by txn id — binary-searched by index_of.
  std::vector<std::pair<TxnId, std::int32_t>> txn_index_;
};

}  // namespace dtm
