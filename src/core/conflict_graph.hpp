// The transaction dependency graphs of §III-B: H_t (conflicts among live
// transactions) and the extended H'_t (plus the current holders Z_t(o),
// including virtual in-transit positions).
//
// The greedy scheduler builds its constraint sets directly for speed; this
// module materializes the graphs explicitly for analysis, tests, and
// experiment reporting (degrees Δ, weighted degrees Γ — the quantities
// Theorems 1 and 2 are stated in).
#pragma once

#include <utility>
#include <vector>

#include "core/scheduler.hpp"
#include "core/types.hpp"

namespace dtm {

/// A node of H'_t: either a live transaction or the current holder Z_t(o)
/// of an object (the object's resting place or in-transit virtual node).
struct DependencyNode {
  enum class Kind { kLiveTxn, kHolder } kind = Kind::kLiveTxn;
  TxnId txn = kNoTxn;    ///< kLiveTxn: the transaction id
  ObjId holder_of = kNoObj;  ///< kHolder: the object whose position this is
  /// Color of an already-scheduled transaction (exec - now), 0 for holders
  /// and executing transactions, kNoTime for unscheduled live transactions.
  Time color = kNoTime;
};

struct DependencyEdge {
  std::int32_t a = -1;  ///< indices into nodes()
  std::int32_t b = -1;
  Weight weight = 0;    ///< travel time (>= 1 between distinct txns)
};

/// Snapshot of H'_t at one time step (H_t is the restriction to kLiveTxn
/// nodes; helpers below expose both views).
class DependencyGraph {
 public:
  /// Builds H'_t from the live system state: one node per live transaction
  /// plus one holder node per object used by any live transaction.
  static DependencyGraph build(const SystemView& view);

  [[nodiscard]] const std::vector<DependencyNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<DependencyEdge>& edges() const {
    return edges_;
  }

  /// Degree Δ'(v) and weighted degree Γ'(v) in H'_t.
  [[nodiscard]] std::int32_t degree(std::int32_t node) const;
  [[nodiscard]] Weight weighted_degree(std::int32_t node) const;

  /// Degree/weighted degree restricted to transaction-transaction edges
  /// (the H_t view).
  [[nodiscard]] std::int32_t txn_degree(std::int32_t node) const;
  [[nodiscard]] Weight txn_weighted_degree(std::int32_t node) const;

  /// Index of the node for transaction `t`, -1 if absent.
  [[nodiscard]] std::int32_t index_of(TxnId t) const;

  /// True iff the stored colors form a valid partial coloring of H'_t
  /// (Equation 1 over every edge whose endpoints both have colors).
  [[nodiscard]] bool valid_partial_coloring() const;

  /// Summary statistics for experiment reporting.
  struct Stats {
    std::int64_t live_txns = 0;
    std::int64_t holders = 0;
    std::int64_t edges = 0;
    std::int32_t max_degree = 0;
    Weight max_weighted_degree = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  std::vector<DependencyNode> nodes_;
  std::vector<DependencyEdge> edges_;
  std::vector<std::vector<std::int32_t>> incident_;  ///< node -> edge idx
  /// (txn, node index), sorted by txn id — binary-searched by index_of.
  std::vector<std::pair<TxnId, std::int32_t>> txn_index_;
};

}  // namespace dtm
