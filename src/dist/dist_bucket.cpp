#include "dist/dist_bucket.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace dtm {

DistributedBucketScheduler::DistributedBucketScheduler(
    const Network& net, std::shared_ptr<const BatchScheduler> algo,
    DistBucketOptions opts)
    : net_(net),
      cover_(net.graph, *net.oracle, opts.cover),
      algo_(std::move(algo)),
      opts_(opts),
      core_(algo_, opts.fastpath, opts.seed, opts.threads, opts.batch_math) {
  DTM_REQUIRE(algo_ != nullptr, "distributed bucket needs a batch algorithm");
  opts_.fault.validate();
  if (opts_.fault.message_faults()) {
    // Chaos armed: wrap the bus and switch the protocol to timeout/retry
    // mode. The plan pointer aims at opts_.fault, which lives as long as
    // the scheduler.
    DTM_REQUIRE(opts_.message_level_discovery,
                "bus-level faults require message_level_discovery (analytic "
                "mode materializes no messages to perturb)");
    auto fb = std::make_unique<FaultyBus>(*net.oracle, opts_.fault);
    faulty_ = fb.get();
    bus_ = std::move(fb);
    resilient_ = true;
  } else {
    bus_ = std::make_unique<MessageBus>(*net.oracle);
  }
  if (opts_.enforce_suffix_property)
    wrapped_ = std::make_unique<SuffixWrapper>(algo_);
}

void DistributedBucketScheduler::set_fault(const FaultPlan& plan) {
  DTM_REQUIRE(resilient_,
              "live fault toggle requires a scheduler constructed with "
              "message faults (start the service with chaos armed)");
  plan.validate();
  // The FaultyBus reads every knob through its plan pointer per send, so
  // this assignment is the whole toggle. The timeout/retry protocol stays
  // armed even when the new plan is benign — retries on a clean bus are
  // harmless (duplicates are ignored end-to-end).
  opts_.fault = plan;
}

void DistributedBucketScheduler::ensure_levels(const SystemView& view) {
  if (num_levels_ > 0) return;
  DTM_REQUIRE(view.latency_factor() >= 2,
              "Algorithm 3 requires half-speed objects (latency factor >= 2, "
              "got " << view.latency_factor() << ") so discovery probes can "
              "catch in-transit objects");
  std::int32_t levels = opts_.max_level;
  if (levels <= 0) {
    const std::int64_t horizon = static_cast<std::int64_t>(
                                     view.oracle().num_nodes()) *
                                 std::max<Weight>(view.oracle().diameter(), 1) *
                                 view.latency_factor();
    levels = ceil_log2_i64(std::max<std::int64_t>(horizon, 2)) + 6;
  }
  num_levels_ = levels + 1;
}

std::vector<Assignment> DistributedBucketScheduler::on_step(
    const SystemView& view, std::span<const Transaction> arrivals) {
  ensure_levels(view);
  const Time now = view.now();
  std::vector<Assignment> out;
  ExtraAssignments extra;

  if (opts_.message_level_discovery) track_objects(view);

  // 1. New transactions start discovery (Algorithm 3 lines 2-6).
  for (const Transaction& t : arrivals) {
    trace_index_[t.id] = traces_.size();
    traces_.push_back({t.id, now, kNoTime, {}, -1, kNoTime});
    if (opts_.message_level_discovery)
      start_probe_discovery(view, t);
    else
      start_analytic_discovery(view, t);
  }

  // 2. Protocol messages (probes chasing trails, replies, reports).
  if (opts_.message_level_discovery) pump_messages(view, extra);

  // 2b. Reports reaching their leader now (insertion into partial
  //     buckets). In message mode the bus enqueued these via ReportMsg;
  //     in analytic mode they were scheduled at arrival. A transaction is
  //     placed at most once: retransmitted / duplicated reports landing
  //     after the first are discarded here.
  while (!reports_.empty() && reports_.top().when <= now) {
    const PendingReport rep = reports_.top();
    reports_.pop();
    auto& tr = traces_[trace_index_.at(rep.txn)];
    if (tr.reported != kNoTime) {
      ++stats_.dup_reports;
      continue;
    }
    stats_.max_discovery_delay =
        std::max(stats_.max_discovery_delay, rep.when - tr.arrived);
    handle_report(view, {now, rep.txn, rep.home}, extra);
  }

  // 2c. Fire due probe/report deadlines (re-probe, retransmit). After the
  //     report drain so a report processed this very step is not also
  //     retransmitted.
  if (resilient_) service_timeouts(view);

  // 3. Global activations: every partial i-bucket fires at multiples of 2^i
  //    (lowest level first, heights lexicographic within a level).
  if (now > 0) {
    for (std::int32_t i = 0; i < num_levels_; ++i) {
      if (i < 63 && (now % (Time{1} << i)) != 0) continue;
      activate(view, i, extra, out);
    }
  }
  stats_.message_distance = analytic_distance_ + bus_->total_distance();
  return out;
}

void DistributedBucketScheduler::start_analytic_discovery(
    const SystemView& view, const Transaction& t) {
  const Time now = view.now();
  Weight x = 0;        // furthest object (distance bound)
  Time probe_rtt = 0;  // chase + reply, max over objects
  std::set<TxnId> seen;
  Weight conflict_dist = 0;
  for (const auto& acc : t.accesses) {
    // Pure-distance bound to the object's current position (factor 1).
    const Weight xd =
        view.object(acc.obj).time_to(t.node, now, view.oracle(), 1);
    x = std::max(x, xd);
    probe_rtt = std::max<Time>(probe_rtt, 4 * xd);
    ++stats_.probes;
    analytic_distance_ += 4 * xd;
    for (const TxnId uid : view.live_users_of(acc.obj)) {
      if (uid == t.id || !seen.insert(uid).second) continue;
      conflict_dist = std::max(
          conflict_dist, view.oracle().dist(view.txn(uid).node, t.node));
    }
  }
  const Weight y = std::max(x, conflict_dist);
  const std::int32_t layer = cover_.lowest_layer_covering(y);
  const ClusterRef home = cover_.home_cluster(t.node, layer);
  const NodeId leader = cover_.cluster(home).leader;
  const Weight to_leader = view.oracle().dist(t.node, leader);
  const Time report_at = now + probe_rtt + to_leader;
  ++stats_.reports;
  analytic_distance_ += to_leader;
  traces_[trace_index_.at(t.id)].home = home;
  reports_.push({report_at, t.id, home});
}

void DistributedBucketScheduler::track_objects(const SystemView& view) {
  for (const ObjId o : tracked_) trails_.observe(view.object(o), view.now());
}

void DistributedBucketScheduler::start_probe_discovery(
    const SystemView& view, const Transaction& t) {
  const Time now = view.now();
  Discovery d;
  d.node = t.node;
  d.started = now;
  for (const auto& acc : t.accesses) {
    if (tracked_.insert(acc.obj).second) {
      // First sight of this object: its current resting place (or inbound
      // node) becomes the trail root every requester is assumed to know.
      const ObjectState& os = view.object(acc.obj);
      trails_.register_object(acc.obj,
                              os.in_transit() ? os.dest() : os.at());
      trails_.observe(os, now);
    }
    if (d.awaits(acc.obj)) continue;
    d.awaiting.push_back(acc.obj);
    ++stats_.probes;
    d.epoch.emplace_back(acc.obj, 0);
    send_probe(view, t.id, t.node, acc.obj, 0);
  }
  discovering_[t.id] = std::move(d);
}

void DistributedBucketScheduler::send_probe(const SystemView& view, TxnId txn,
                                            NodeId txn_node, ObjId obj,
                                            std::int32_t epoch) {
  // The initial probe starts the honest chase from the object's birth node
  // — the one trail root a requester knows without help. A multi-hop chase
  // dies if ANY hop is dropped, and its success probability decays
  // geometrically with trail length, so timeout-driven retries switch
  // strategy: they aim straight at the directory's current terminus hint
  // (modeling a query to the tracking layer — same fidelity class as the
  // report retransmission, see DESIGN notes) and escalate to a few
  // redundant copies. min_depart = now keeps the shortcut cycle-free: the
  // probe only chases onward over departures that genuinely happen after
  // the hint was read, otherwise the landing node answers with the
  // object's current knowledge.
  const Time now = view.now();
  const NodeId target =
      epoch == 0 ? trails_.birth_node(obj) : trails_.current_terminus(obj);
  const Time min_depart = epoch == 0 ? kNoTime : now;
  const int copies = resilient_ ? 1 + std::min(epoch, 2) : 1;
  for (int c = 0; c < copies; ++c)
    bus_->send(txn_node, target, now,
               ProbeMsg{txn, txn_node, obj, 0, min_depart, epoch});
  if (resilient_)
    probe_timeouts_.push({retry_deadline(now, epoch), txn, obj, epoch});
}

Time DistributedBucketScheduler::retry_deadline(Time now,
                                                std::int32_t attempt) const {
  // Base window: a few network diameters (a fault-free probe round trip is
  // at most 4x <= 4 * diameter). Exponential backoff keeps retry traffic
  // bounded under persistent loss; the cap keeps the worst-case idle wait
  // proportional to the network size rather than doubling without bound
  // (an uncapped run's makespan is dominated by one unlucky chain's final
  // wait).
  const Time base = std::max<Time>(
      opts_.timeout_mult * std::max<Weight>(net_.oracle->diameter(), 1), 1);
  return now + (base << std::min<std::int32_t>(attempt, 5));
}

void DistributedBucketScheduler::service_timeouts(const SystemView& view) {
  const Time now = view.now();
  // Probe deadlines: entries are lazily invalidated — the object may have
  // been answered, the discovery finished, or the epoch superseded since
  // the entry was pushed.
  while (!probe_timeouts_.empty() && probe_timeouts_.top().deadline <= now) {
    const ProbeTimeout pt = probe_timeouts_.top();
    probe_timeouts_.pop();
    const auto it = discovering_.find(pt.txn);
    if (it == discovering_.end()) continue;
    Discovery& d = it->second;
    if (!d.awaits(pt.obj)) continue;
    std::int32_t* ep = d.epoch_of(pt.obj);
    DTM_CHECK(ep != nullptr, "awaited object " << pt.obj << " has no epoch");
    if (*ep != pt.epoch) continue;
    ++stats_.probe_timeouts;
    const std::int32_t next_epoch = pt.epoch + 1;
    *ep = next_epoch;
    ++stats_.reprobes;
    send_probe(view, pt.txn, d.node, pt.obj, next_epoch);
  }
  // Report deadlines: retransmit until handle_report has placed the txn.
  while (!report_retries_.empty() &&
         report_retries_.top().deadline <= now) {
    const ReportRetry rr = report_retries_.top();
    report_retries_.pop();
    const auto& tr = traces_[trace_index_.at(rr.txn)];
    if (tr.reported != kNoTime) continue;
    ++stats_.report_retries;
    const std::int32_t attempt = rr.attempt + 1;
    bus_->send(view.txn(rr.txn).node, cover_.cluster(tr.home).leader, now,
               ReportMsg{rr.txn, attempt});
    report_retries_.push({retry_deadline(now, attempt), rr.txn, attempt});
  }
}

void DistributedBucketScheduler::pump_messages(const SystemView& view,
                                               const ExtraAssignments& extra) {
  (void)extra;
  const Time now = view.now();
  // Multiple drain rounds: a probe answered locally can produce a reply
  // and a report within the same step when distances are zero.
  // drain_scratch_ persists across steps so the steady-state loop reuses
  // its capacity; sends during iteration go to the bus, never the scratch.
  for (int round = 0; round < 8; ++round) {
    bus_->drain_into(now, drain_scratch_);
    if (drain_scratch_.empty()) break;
    for (Message& m : drain_scratch_) {
      if (const auto* probe = std::get_if<ProbeMsg>(&m.payload)) {
        const auto hop =
            trails_.lookup(probe->object, m.to, now, probe->min_depart);
        if (hop.departed) {
          // Chase the forwarding pointer, forward in trail time.
          ProbeMsg next = *probe;
          next.travelled += view.oracle().dist(m.to, hop.next);
          next.min_depart = hop.depart_time;
          ++stats_.probe_hops;
          // Under chaos a delayed probe can legitimately chase a long-lived
          // trail for many hops, so the no-fault termination bound only
          // applies to the clean protocol.
          DTM_CHECK(resilient_ ||
                        next.travelled <=
                            4 * static_cast<Weight>(view.oracle().num_nodes()) *
                                std::max<Weight>(view.oracle().diameter(), 1),
                    "probe chase failed to terminate");
          bus_->send(m.to, hop.next, now, next);
          continue;
        }
        // The object is here (or inbound here): reply with its knowledge,
        // echoing the probe's epoch so the requester can tell generations
        // apart.
        ReplyMsg reply;
        reply.requester = probe->requester;
        reply.object = probe->object;
        reply.object_node = trails_.current_terminus(probe->object);
        const ObjectState& os = view.object(probe->object);
        reply.object_free_at =
            os.in_transit() ? os.arrive_time() : now;
        reply.epoch = probe->epoch;
        if (!reply_pool_.empty()) {
          // Revive a pooled spill buffer (move-assign reuses its capacity).
          reply.users = std::move(reply_pool_.back());
          reply_pool_.pop_back();
          reply.users.clear();
        }
        for (const TxnId uid : view.live_users_of(probe->object)) {
          if (uid == probe->requester) continue;
          reply.users.emplace_back(uid, view.txn(uid).node);
        }
        bus_->send(m.to, probe->requester_node, now, std::move(reply));
      } else if (auto* reply = std::get_if<ReplyMsg>(&m.payload)) {
        // Each object is answered at most once per discovery: replies for a
        // finished discovery or an already-answered object (duplicates, or
        // multiple epochs racing) are counted and dropped. Any epoch's
        // reply is an acceptable answer — it carries a genuine position
        // observation — so the first to arrive wins.
        const auto it = discovering_.find(reply->requester);
        if (it == discovering_.end() || !it->second.awaits(reply->object)) {
          ++stats_.dup_replies;
        } else {
          Discovery& d = it->second;
          d.y = std::max(d.y, view.oracle().dist(d.node, reply->object_node));
          for (const auto& [uid, unode] : reply->users)
            d.y = std::max(d.y, view.oracle().dist(d.node, unode));
          d.retire(reply->object);
          if (d.awaiting.empty()) finish_discovery(view, reply->requester);
        }
        // Handled either way: park a spilled user list for the next reply
        // built here (bounded pool; inline lists need no recycling).
        if (reply->users.spilled() && reply_pool_.size() < 16)
          reply_pool_.push_back(std::move(reply->users));
      } else if (const auto* report = std::get_if<ReportMsg>(&m.payload)) {
        // Delivered at the leader: queue for insertion this step (the
        // drain in on_step discards it if the txn is already placed).
        const auto& tr = traces_[trace_index_.at(report->txn)];
        if (tr.reported != kNoTime) {
          ++stats_.dup_reports;
          continue;
        }
        reports_.push({now, report->txn, tr.home});
      }
    }
  }
}

void DistributedBucketScheduler::finish_discovery(const SystemView& view,
                                                  TxnId txn) {
  const Time now = view.now();
  const auto node = discovering_.extract(txn);
  DTM_REQUIRE(!node.empty(), "finish_discovery for unknown txn " << txn);
  const Discovery& d = node.mapped();
  const std::int32_t layer = cover_.lowest_layer_covering(d.y);
  const ClusterRef home = cover_.home_cluster(d.node, layer);
  const NodeId leader = cover_.cluster(home).leader;
  traces_[trace_index_.at(txn)].home = home;
  ++stats_.reports;
  bus_->send(d.node, leader, now, ReportMsg{txn, 0});
  if (resilient_)
    report_retries_.push({retry_deadline(now, 0), txn, 0});
}

void DistributedBucketScheduler::handle_report(const SystemView& view,
                                               const PendingReport& rep,
                                               const ExtraAssignments& extra) {
  BucketKey base{rep.home, -1};
  const std::int32_t level = choose_level(view, base, rep.txn, extra);
  base.level = level;
  auto& bucket = partial_buckets_[base];

  if (opts_.check_sublayer_disjointness) {
    // Corollary 1: within one sub-layer (and level), conflicting
    // transactions land in the same partial bucket.
    const Transaction& t = view.txn(rep.txn);
    for (const auto& [key, members] : partial_buckets_) {
      if (key.level != level || key.home == rep.home) continue;
      if (key.home.layer != rep.home.layer ||
          key.home.sublayer != rep.home.sublayer)
        continue;
      for (const TxnId other : members)
        DTM_CHECK(!t.conflicts_with(view.txn(other)),
                  "Corollary 1 violated: txns " << t.id << " and " << other
                                                << " conflict across partial "
                                                   "buckets of one sub-layer");
    }
  }

  bucket.push_back(rep.txn);
  core_.on_inserted(view, bucket_id(base), view.txn(rep.txn), extra);
  max_level_used_ = std::max(max_level_used_, level);
  auto& tr = traces_[trace_index_.at(rep.txn)];
  tr.reported = rep.when;
  tr.level = level;
}

BucketInsertionCore::BucketId DistributedBucketScheduler::bucket_id(
    const BucketKey& key) {
  const auto [it, fresh] = bucket_ids_.try_emplace(
      key, static_cast<BucketInsertionCore::BucketId>(bucket_ids_.size()));
  (void)fresh;
  return it->second;
}

std::int32_t DistributedBucketScheduler::choose_level(
    const SystemView& view, const BucketKey& base, TxnId txn,
    const ExtraAssignments& extra) {
  return core_.choose_level(
      view, view.txn(txn), num_levels_ - 1,
      [&](std::int32_t i) {
        BucketKey key = base;
        key.level = i;
        BucketInsertionCore::LevelView lv{bucket_id(key), {}};
        const auto it = partial_buckets_.find(key);
        if (it != partial_buckets_.end()) lv.members = it->second;
        return lv;
      },
      extra);
}

void DistributedBucketScheduler::activate(const SystemView& view,
                                          std::int32_t level,
                                          ExtraAssignments& extra,
                                          std::vector<Assignment>& out) {
  // Collect this level's nonempty partial buckets in height order (the
  // lexicographic serialization of Lemma 8).
  std::vector<BucketKey> keys;
  for (const auto& [key, members] : partial_buckets_)
    if (key.level == level && !members.empty()) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  const Time now = view.now();
  for (const BucketKey& key : keys) {
    auto& members = partial_buckets_.at(key);
    const CoverCluster& cluster = cover_.cluster(key.home);
    const auto id = bucket_id(key);
    // Gather shift below must not touch the cached problem, so the
    // activation works on a copy.
    activation_scratch_ = core_.activation_problem(view, id, members, extra);
    BatchProblem& p = activation_scratch_;
    // Leader gather round: object commitments cannot be consumed before the
    // leader has collected state and redistributed decisions inside the
    // cluster (weak-diameter round trip).
    const Time gather = cluster.weak_diameter;
    for (auto& o : p.objects) o.ready = std::max(o.ready, now + gather);

    const BatchScheduler& a =
        wrapped_ ? static_cast<const BatchScheduler&>(*wrapped_) : *algo_;
    const BatchResult r =
        core_.run_activation(p, a, opts_.randomized_retries);
    // Leader -> transaction notification: a commit cannot happen before the
    // decision physically reaches the node. A uniform shift preserves every
    // chain gap and all availability floors.
    Time shift = 0;
    for (const auto& asg : r.assignments) {
      const NodeId node = view.txn(asg.txn).node;
      const Weight notify = view.oracle().dist(cluster.leader, node);
      shift = std::max(shift, (now + notify) - asg.exec);
      ++stats_.notifications;
      analytic_distance_ += notify;
    }
    for (const auto& asg : r.assignments) {
      const Assignment final{asg.txn, asg.exec + shift};
      out.push_back(final);
      extra.set(final.txn, final.exec);
      auto& tr = traces_[trace_index_.at(final.txn)];
      tr.exec = final.exec;
    }
    members.clear();
    core_.on_drained(id);
    core_.note_world_change();
  }
}

Time DistributedBucketScheduler::next_event_hint(Time now) const {
  // Bus deliveries are NOT merged here: the bus is exposed through
  // event_sources() and the runner's EventClock does the merging.
  Time next = reports_.empty() ? kNoTime : std::max(reports_.top().when, now);
  // Retry deadlines ARE merged here: with messages lost, the bus may hold
  // no future delivery while a timeout is the only thing standing between
  // the run and the runner's deadlock check. Heap tops may be stale
  // (lazily invalidated) — waking early on one is a harmless no-op.
  if (resilient_) {
    const auto merge = [&](Time t) {
      if (t == kNoTime) return;
      t = std::max(t, now);
      next = next == kNoTime ? t : std::min(next, t);
    };
    if (!probe_timeouts_.empty()) merge(probe_timeouts_.top().deadline);
    if (!report_retries_.empty()) merge(report_retries_.top().deadline);
  }
  for (const auto& [key, members] : partial_buckets_) {
    if (members.empty()) continue;
    const Time period =
        key.level < 63 ? (Time{1} << key.level) : (Time{1} << 62);
    const Time base = std::max<Time>(now, 1);
    const Time fire = ((base + period - 1) / period) * period;
    next = next == kNoTime ? fire : std::min(next, fire);
  }
  return next;
}

}  // namespace dtm
