#include "dist/bus.hpp"

namespace dtm {

void MessageBus::send(NodeId from, NodeId to, Time now, Payload payload) {
  Message m;
  m.from = from;
  m.to = to;
  m.sent = now;
  m.deliver = now + oracle_->dist(from, to);
  m.seq = seq_++;
  m.payload = std::move(payload);
  ++sent_;
  distance_ += oracle_->dist(from, to);
  queue_.push(std::move(m));
}

std::vector<Message> MessageBus::drain(Time now) {
  std::vector<Message> out;
  while (!queue_.empty() && queue_.top().deliver <= now) {
    out.push_back(queue_.top());
    queue_.pop();
  }
  return out;
}

Time MessageBus::next_delivery() const {
  return queue_.empty() ? kNoTime : queue_.top().deliver;
}

}  // namespace dtm
