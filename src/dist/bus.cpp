#include "dist/bus.hpp"

#include <algorithm>

namespace dtm {

void MessageBus::send(NodeId from, NodeId to, Time now, Payload payload) {
  deliver_at(from, to, now, now + oracle_->dist(from, to),
             std::move(payload));
}

void MessageBus::deliver_at(NodeId from, NodeId to, Time sent, Time deliver,
                            Payload payload) {
  DTM_REQUIRE(deliver >= sent, "bus delivery at " << deliver
                                                  << " before send " << sent);
  Message m;
  m.from = from;
  m.to = to;
  m.sent = sent;
  m.deliver = deliver;
  m.seq = seq_++;
  m.payload = std::move(payload);
  ++sent_;
  distance_ += oracle_->dist(from, to);
  queue_.push(std::move(m));
}

std::vector<Message> MessageBus::drain(Time now) {
  std::vector<Message> out;
  while (!queue_.empty() && queue_.top().deliver <= now) {
    out.push_back(queue_.top());
    queue_.pop();
  }
  return out;
}

Time MessageBus::next_delivery() const {
  return queue_.empty() ? kNoTime : queue_.top().deliver;
}

// ---------------------------------------------------------------------------
// FaultyBus

FaultyBus::FaultyBus(const DistanceOracle& oracle, const FaultPlan& plan)
    : MessageBus(oracle),
      plan_(&plan),
      rng_(plan.bus_rng()),
      pauses_(plan.pause_windows(oracle.num_nodes())) {
  DTM_REQUIRE(!plan.is_null(),
              "FaultyBus needs a non-null plan (use MessageBus for the "
              "no-fault path)");
  plan.validate();
}

Time FaultyBus::release_time(NodeId node, Time t) const {
  Time out = t;
  // Windows can overlap; iterate to a fixed point (bounded by the window
  // count, which is tiny).
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& w : pauses_) {
      if (w.node == node && out >= w.start && out < w.end) {
        out = w.end;
        moved = true;
      }
    }
  }
  return out;
}

void FaultyBus::send(NodeId from, NodeId to, Time now, Payload payload) {
  ++fstats_.offered;
  // Draw order is fixed (drop, dup, then per-copy jitter) so the fault
  // sequence depends only on (plan seed, send sequence) — never on which
  // engine mode or drain order produced the sends.
  const bool dropped = plan_->drop > 0.0 && rng_.bernoulli(plan_->drop);
  const bool duplicated = plan_->dup > 0.0 && rng_.bernoulli(plan_->dup);
  const int copies = dropped ? (duplicated ? 1 : 0) : (duplicated ? 2 : 1);
  if (dropped) ++fstats_.dropped;
  if (duplicated) ++fstats_.duplicated;
  if (copies == 0) return;

  // Sender paused: the message leaves when the node resumes.
  Time depart = release_time(from, now);
  if (depart > now) ++fstats_.pause_deferred;

  Weight base = oracle().dist(from, to);
  if (plan_->link_degraded(from, to)) {
    base += plan_->degrade;
    ++fstats_.degraded;
  }

  for (int c = 0; c < copies; ++c) {
    Time extra = 0;
    if (plan_->jitter > 0) {
      extra = rng_.uniform_int(0, plan_->jitter);
      fstats_.jitter_total += extra;
    }
    Time deliver = depart + base + extra;
    // Receiver paused at arrival: the delivery waits out the window.
    const Time released = release_time(to, deliver);
    if (released > deliver) {
      ++fstats_.pause_deferred;
      deliver = released;
    }
    if (c + 1 < copies)
      deliver_at(from, to, now, deliver, payload);  // keep one for the dup
    else
      deliver_at(from, to, now, deliver, std::move(payload));
  }
}

}  // namespace dtm
