#include "dist/bus.hpp"

#include <algorithm>

namespace dtm {

void MessageBus::send(NodeId from, NodeId to, Time now, Payload payload) {
  deliver_at(from, to, now, now + oracle_->dist(from, to),
             std::move(payload));
}

void MessageBus::deliver_at(NodeId from, NodeId to, Time sent, Time deliver,
                            Payload payload) {
  DTM_REQUIRE(deliver >= sent, "bus delivery at " << deliver
                                                  << " before send " << sent);
  // The wheel additionally refuses deliver < its cursor (a time already
  // drained past) — the monotone-bus-time invariant documented in the
  // header.
  Message m;
  m.from = from;
  m.to = to;
  m.sent = sent;
  m.deliver = deliver;
  m.seq = seq_++;
  m.payload = std::move(payload);
  ++sent_;
  distance_ += oracle_->dist(from, to);
  wheel_.schedule(deliver, std::move(m));
}

void MessageBus::drain_into(Time now, std::vector<Message>& out) {
  out.clear();  // keeps capacity — persistent scratch stays warm
  // Wheel order is (time, insertion); seq is the insertion counter, so this
  // is exactly the old heap's (deliver, seq) order.
  wheel_.drain_until(now, out);
}

Time MessageBus::next_delivery() const { return wheel_.next_time(); }

// ---------------------------------------------------------------------------
// ReferenceHeapBus (frozen pre-wheel implementation; see header)

void ReferenceHeapBus::send(NodeId from, NodeId to, Time now,
                            Payload payload) {
  deliver_at(from, to, now, now + oracle_->dist(from, to),
             std::move(payload));
}

void ReferenceHeapBus::deliver_at(NodeId from, NodeId to, Time sent,
                                  Time deliver, Payload payload) {
  DTM_REQUIRE(deliver >= sent, "bus delivery at " << deliver
                                                  << " before send " << sent);
  Message m;
  m.from = from;
  m.to = to;
  m.sent = sent;
  m.deliver = deliver;
  m.seq = seq_++;
  m.payload = std::move(payload);
  ++sent_;
  queue_.push(std::move(m));
}

void ReferenceHeapBus::drain_into(Time now, std::vector<Message>& out) {
  out.clear();
  while (!queue_.empty() && queue_.top().deliver <= now) {
    out.push_back(queue_.top());
    queue_.pop();
  }
}

Time ReferenceHeapBus::next_delivery() const {
  return queue_.empty() ? kNoTime : queue_.top().deliver;
}

// ---------------------------------------------------------------------------
// FaultyBus

namespace {

/// Heap payload bytes a duplicate deep copy would have carried.
std::int64_t dup_heap_bytes(const Payload& p) {
  if (const auto* reply = std::get_if<ReplyMsg>(&p))
    return static_cast<std::int64_t>(reply->users.size() *
                                     sizeof(ReplyUsers::value_type));
  return 0;
}

/// The duplicate's payload: full copy for trivially-copyable alternatives
/// (both probe copies chase, both report copies count), but a ReplyMsg
/// duplicate shares storage — it keeps the header fields the receiver's
/// dedup logic reads (requester, object, epoch, position) and leaves the
/// user list empty. Safe because the receiver identifies and drops every
/// non-first reply for an object *before* reading users, and the
/// first-processed copy — min (deliver, seq) — always carries the real
/// list (see FaultyBus::send).
Payload dup_shadow(const Payload& p) {
  if (const auto* reply = std::get_if<ReplyMsg>(&p)) {
    ReplyMsg shadow;
    shadow.requester = reply->requester;
    shadow.object = reply->object;
    shadow.object_node = reply->object_node;
    shadow.object_free_at = reply->object_free_at;
    shadow.epoch = reply->epoch;
    return shadow;
  }
  return p;
}

}  // namespace

FaultyBus::FaultyBus(const DistanceOracle& oracle, const FaultPlan& plan)
    : MessageBus(oracle),
      plan_(&plan),
      rng_(plan.bus_rng()),
      pauses_(plan.pause_windows(oracle.num_nodes())) {
  DTM_REQUIRE(!plan.is_null(),
              "FaultyBus needs a non-null plan (use MessageBus for the "
              "no-fault path)");
  plan.validate();
}

Time FaultyBus::release_time(NodeId node, Time t) const {
  Time out = t;
  // Windows can overlap; iterate to a fixed point (bounded by the window
  // count, which is tiny).
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& w : pauses_) {
      if (w.node == node && out >= w.start && out < w.end) {
        out = w.end;
        moved = true;
      }
    }
  }
  return out;
}

void FaultyBus::send(NodeId from, NodeId to, Time now, Payload payload) {
  ++fstats_.offered;
  // Draw order is fixed (drop, dup, then per-copy jitter) so the fault
  // sequence depends only on (plan seed, send sequence) — never on which
  // engine mode or drain order produced the sends.
  const bool dropped = plan_->drop > 0.0 && rng_.bernoulli(plan_->drop);
  const bool duplicated = plan_->dup > 0.0 && rng_.bernoulli(plan_->dup);
  const int copies = dropped ? (duplicated ? 1 : 0) : (duplicated ? 2 : 1);
  if (dropped) ++fstats_.dropped;
  if (duplicated) ++fstats_.duplicated;
  if (copies == 0) return;

  // Sender paused: the message leaves when the node resumes.
  Time depart = release_time(from, now);
  if (depart > now) ++fstats_.pause_deferred;

  Weight base = oracle().dist(from, to);
  if (plan_->link_degraded(from, to)) {
    base += plan_->degrade;
    ++fstats_.degraded;
  }

  // Per-copy jitter first (the draws must stay in copy order), then the
  // enqueues — so a duplicated reply can give its real payload to whichever
  // copy the receiver processes first.
  Time deliver[2] = {kNoTime, kNoTime};
  for (int c = 0; c < copies; ++c) {
    Time extra = 0;
    if (plan_->jitter > 0) {
      extra = rng_.uniform_int(0, plan_->jitter);
      fstats_.jitter_total += extra;
    }
    Time d = depart + base + extra;
    // Receiver paused at arrival: the delivery waits out the window.
    const Time released = release_time(to, d);
    if (released > d) {
      ++fstats_.pause_deferred;
      d = released;
    }
    deliver[c] = d;
  }

  if (copies == 1) {
    deliver_at(from, to, now, deliver[0], std::move(payload));
    return;
  }
  // Two copies. The receiver processes min (deliver, seq) first, and copy 0
  // takes the smaller seq below — so copy 0 wins ties. The winner carries
  // the real payload; the shadow shares (never copies) any heap storage.
  const int winner = deliver[0] <= deliver[1] ? 0 : 1;
  fstats_.bytes_duplicated += dup_heap_bytes(payload);
  Payload shadow = dup_shadow(payload);
  if (winner == 0) {
    deliver_at(from, to, now, deliver[0], std::move(payload));
    deliver_at(from, to, now, deliver[1], std::move(shadow));
  } else {
    deliver_at(from, to, now, deliver[0], std::move(shadow));
    deliver_at(from, to, now, deliver[1], std::move(payload));
  }
}

}  // namespace dtm
