// Object tracking via forwarding-pointer trails (paper §V: "We can track
// objects in transit by reaching the node that the object departs from").
//
// Every time an object leaves a node, that node keeps a forwarding pointer
// (where it went, when it left). A probe that knows the object's birth node
// chases the trail pointer by pointer; because objects travel at half the
// message speed, the chase terminates (the probe gains distance on every
// hop). The directory is a *distributed* data structure in the model; the
// simulation stores it centrally but every lookup is made by a probe that
// physically visits the node, so information only flows at network speed.
#pragma once

#include <map>
#include <vector>

#include "core/object_state.hpp"
#include "core/types.hpp"

namespace dtm {

class ObjectTrailDirectory {
 public:
  /// Registers the object's birth node (time 0). Requesters are assumed to
  /// know birth nodes (static global knowledge, as in the paper).
  void register_object(ObjId id, NodeId birth);

  [[nodiscard]] NodeId birth_node(ObjId id) const;

  /// Mirrors the engine's object state into the trail: call once per
  /// observed step per object; departures are recorded at the node the
  /// object left with the exact departure time read off the leg.
  void observe(const ObjectState& obj, Time now);

  /// What a probe physically standing at `node` at time `now` learns about
  /// the object: either "departed toward X at time T" (follow the trail,
  /// only visible if T <= now) or "resting here / inbound here".
  /// `min_depart` filters to pointers laid at or after the previous hop's
  /// departure: trails are walked forward in time (an older pointer at a
  /// revisited node means the object has since come back — it is here).
  struct TrailHop {
    bool departed = false;
    NodeId next = kNoNode;   ///< where it went (valid if departed)
    Time depart_time = kNoTime;
  };
  [[nodiscard]] TrailHop lookup(ObjId id, NodeId node, Time now,
                                Time min_depart = kNoTime) const;

  /// The node at the end of the currently-known trail (where the object
  /// rests or will next arrive). Used by the holder to answer probes.
  [[nodiscard]] NodeId current_terminus(ObjId id) const;

 private:
  struct Trail {
    NodeId birth = kNoNode;
    /// Per node, the most recent departure (node -> (next, time)). A node
    /// can be revisited; the latest pointer wins, and a probe arriving
    /// before the recorded departure treats the object as still here —
    /// exactly the physical semantics.
    std::map<NodeId, std::pair<NodeId, Time>> pointer;
    NodeId terminus = kNoNode;
    // Last observed leg, to detect changes. The departure time is part of
    // the signature: with event-driven observation an object can settle and
    // re-depart along the same (from, to) leg between two observations, and
    // only the timestamp distinguishes the new leg from the old one.
    bool was_in_transit = false;
    NodeId leg_from = kNoNode;
    NodeId leg_to = kNoNode;
    Time leg_depart = kNoTime;
  };
  std::map<ObjId, Trail> trails_;
};

}  // namespace dtm
