#include "dist/tracking.hpp"

namespace dtm {

void ObjectTrailDirectory::register_object(ObjId id, NodeId birth) {
  Trail t;
  t.birth = birth;
  t.terminus = birth;
  const bool inserted = trails_.emplace(id, std::move(t)).second;
  DTM_CHECK(inserted, "object " << id << " registered twice");
}

NodeId ObjectTrailDirectory::birth_node(ObjId id) const {
  const auto it = trails_.find(id);
  DTM_REQUIRE(it != trails_.end(), "unknown object " << id);
  return it->second.birth;
}

void ObjectTrailDirectory::observe(const ObjectState& obj, Time /*now*/) {
  const auto it = trails_.find(obj.id());
  DTM_REQUIRE(it != trails_.end(), "unknown object " << obj.id());
  Trail& t = it->second;
  if (obj.in_transit()) {
    const NodeId from = obj.leg_from();
    const NodeId to = obj.dest();
    if (!t.was_in_transit || t.leg_from != from || t.leg_to != to ||
        t.leg_depart != obj.depart_time()) {
      // New leg: the departure node keeps a forwarding pointer stamped with
      // the true departure time (a probe arriving earlier sees the object
      // as still present, which physically it is).
      t.pointer[from] = {to, obj.depart_time()};
      t.leg_from = from;
      t.leg_to = to;
      t.leg_depart = obj.depart_time();
      t.was_in_transit = true;
      t.terminus = to;
    }
  } else {
    t.was_in_transit = false;
    t.terminus = obj.at();
  }
}

ObjectTrailDirectory::TrailHop ObjectTrailDirectory::lookup(
    ObjId id, NodeId node, Time now, Time min_depart) const {
  const auto it = trails_.find(id);
  DTM_REQUIRE(it != trails_.end(), "unknown object " << id);
  const auto pit = it->second.pointer.find(node);
  TrailHop hop;
  if (pit != it->second.pointer.end() && pit->second.second <= now &&
      (min_depart == kNoTime || pit->second.second >= min_depart)) {
    hop.departed = true;
    hop.next = pit->second.first;
    hop.depart_time = pit->second.second;
  }
  return hop;
}

NodeId ObjectTrailDirectory::current_terminus(ObjId id) const {
  const auto it = trails_.find(id);
  DTM_REQUIRE(it != trails_.end(), "unknown object " << id);
  return it->second.terminus;
}

}  // namespace dtm
