// Distributed bucket schedule (paper Algorithm 3, §V).
//
// Decentralizes Algorithm 2 over a hierarchical sparse cover: bucket levels
// are split into *partial i-buckets* hosted at cluster leaders. A new
// transaction
//   1. discovers the current positions of its objects (probe messages chase
//      them; objects move at half speed — latency factor 2 — so a probe
//      catches an object at initial distance x by time 2x and the reply is
//      back within 4x),
//   2. learns its conflicting transactions from the objects (objects carry
//      the locations of the transactions that use them),
//   3. picks the lowest layer whose home cluster covers its y-neighborhood
//      (y = max of object distances and conflicting-transaction distances)
//      and reports to that cluster's leader,
//   4. is placed by the leader into a partial i-bucket via the F_A rule.
// All partial i-buckets activate globally every 2^i steps; heights are
// processed in lexicographic order (the serialization Lemma 8 charges for),
// and each activation pays the cluster's weak diameter for the leader's
// gather/notify round plus leader-to-transaction notification distance.
//
// Fidelity note (documented in DESIGN.md): message latencies are charged
// through deterministic distance-based delays rather than per-hop packet
// simulation; the information a leader uses is exactly what the paper's
// protocol would have delivered to it by that time.
#pragma once

#include <map>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "batch/batch_scheduler.hpp"
#include "batch/bucket_insertion.hpp"
#include "batch/suffix_wrapper.hpp"
#include "core/scheduler.hpp"
#include "dist/bus.hpp"
#include "dist/tracking.hpp"
#include "net/sparse_cover.hpp"
#include "net/topology.hpp"
#include "util/small_vector.hpp"

namespace dtm {

struct DistBucketOptions {
  std::int32_t max_level = 0;  ///< 0 = auto (as BucketScheduler)
  std::uint64_t seed = 0xD157;
  std::int32_t randomized_retries = 3;
  bool enforce_suffix_property = true;
  /// Verify Corollary 1 (no two conflicting transactions in distinct
  /// partial buckets of the same sub-layer and level) at every insertion.
  bool check_sublayer_disjointness = true;
  /// true: run discovery as an actual message protocol — probes chase the
  /// objects' forwarding-pointer trails over a message bus, replies carry
  /// the object's knowledge, reports travel to leaders (paper §V verbatim).
  /// false: analytic mode — charge the 4x-distance discovery bound
  /// deterministically without materializing messages.
  bool message_level_discovery = true;
  /// Fault-injection plan. Bus-level faults (drop/dup/jitter/degrade/pause)
  /// wrap the bus in a FaultyBus and arm the timeout/retry protocol, and
  /// require message_level_discovery (analytic mode has no messages to
  /// perturb). A null plan leaves the protocol byte-identical.
  FaultPlan fault;
  /// Probe/report timeout = timeout_mult * network diameter, doubling on
  /// every retry (capped exponential backoff). Only used when the plan has
  /// message faults.
  std::int64_t timeout_mult = 4;
  SparseCoverOptions cover;
  /// Insertion path for the partial i-buckets (same semantics as
  /// BucketOptions::fastpath): cached per-bucket problems, memoized F_A and
  /// the lower-bound start level, byte-identical to the naive scan.
  BucketFastPath fastpath = BucketFastPath::kIncremental;
  /// Worker threads for the insertion core (same semantics as
  /// BucketOptions::threads; 1 = serial, 0 = all hardware threads).
  std::int32_t threads = 1;
  /// Batch arithmetic backend (same semantics as
  /// BucketOptions::batch_math); byte-identical schedules in all modes.
  BatchMathMode batch_math = BatchMathMode::kScalar;
};

/// Message-accounting for the communication-overhead experiment (F4).
struct DistStats {
  std::int64_t probes = 0;          ///< object discovery probes started
  std::int64_t probe_hops = 0;      ///< trail-chasing forwards (msg mode)
  std::int64_t reports = 0;         ///< transaction -> leader reports
  std::int64_t notifications = 0;   ///< leader -> transaction schedules
  std::int64_t message_distance = 0;  ///< sum of distances charged
  Time max_discovery_delay = 0;     ///< worst arrival -> report latency
  // -- resilience counters (nonzero only under a fault plan) --
  std::int64_t probe_timeouts = 0;  ///< probe deadlines that fired
  std::int64_t reprobes = 0;        ///< probes re-sent after a timeout
  std::int64_t report_retries = 0;  ///< report retransmissions
  std::int64_t dup_replies = 0;     ///< replies ignored (stale/duplicate)
  std::int64_t dup_reports = 0;     ///< reports ignored (already placed)
};

class DistributedBucketScheduler final : public OnlineScheduler {
 public:
  DistributedBucketScheduler(const Network& net,
                             std::shared_ptr<const BatchScheduler> algo,
                             DistBucketOptions opts = {});

  [[nodiscard]] std::vector<Assignment> on_step(
      const SystemView& view, std::span<const Transaction> arrivals) override;

  [[nodiscard]] Time next_event_hint(Time now) const override;

  /// The protocol's message bus: delivery times wake the runner through
  /// the EventClock's source merging instead of next_event_hint.
  [[nodiscard]] std::vector<const EventSource*> event_sources()
      const override {
    return {bus_.get()};
  }

  /// What the chaos decorator did to the traffic; null when the plan has no
  /// message faults (the plain bus is in use).
  [[nodiscard]] const FaultBusStats* fault_bus_stats() const {
    return faulty_ ? &faulty_->fault_stats() : nullptr;
  }

  /// Whether the timeout/retry protocol is armed (the construction plan had
  /// message faults). Only resilient schedulers accept live fault toggles.
  [[nodiscard]] bool resilient() const { return resilient_; }

  /// Live fault-plan swap (serve-mode resilience drills). The FaultyBus
  /// reads its knobs through a pointer into opts_.fault on every send, so
  /// assigning here changes drop/dup/jitter/degrade behavior from the next
  /// message on. Requires a resilient scheduler: arming the chaos bus (or
  /// the timeout protocol) mid-run would swap the bus under in-flight
  /// traffic. Pause windows stay as materialized at construction, and the
  /// bus RNG stream continues uninterrupted — documented limits of the
  /// live toggle.
  void set_fault(const FaultPlan& plan);

  [[nodiscard]] std::string name() const override {
    return "dist-bucket[" + algo_->name() + "]";
  }

  [[nodiscard]] const DistStats& stats() const { return stats_; }
  [[nodiscard]] const SparseCover& cover() const { return cover_; }
  [[nodiscard]] std::int32_t max_level_used() const { return max_level_used_; }
  /// Insertion-core counters / last-scan trace (bench + tests).
  [[nodiscard]] const FastPathStats& fastpath_stats() const {
    return core_.stats();
  }
  [[nodiscard]] const BucketInsertionCore& insertion_core() const {
    return core_;
  }

  /// Trace of where each transaction landed, for the Lemma 7/8 experiments.
  struct TxnTrace {
    TxnId txn = kNoTxn;
    Time arrived = kNoTime;
    Time reported = kNoTime;
    ClusterRef home;
    std::int32_t level = -1;
    Time exec = kNoTime;
  };
  [[nodiscard]] const std::vector<TxnTrace>& traces() const { return traces_; }

 private:
  struct PendingReport {
    Time when = kNoTime;
    TxnId txn = kNoTxn;
    ClusterRef home;
    bool operator>(const PendingReport& o) const {
      return when > o.when || (when == o.when && txn > o.txn);
    }
  };

  /// Key of a partial i-bucket: cluster + level.
  struct BucketKey {
    ClusterRef home;
    std::int32_t level = -1;
    auto operator<=>(const BucketKey&) const = default;
  };

  void ensure_levels(const SystemView& view);
  /// Stable dense id for a partial bucket (the insertion core's handle).
  BucketInsertionCore::BucketId bucket_id(const BucketKey& key);
  std::int32_t choose_level(const SystemView& view, const BucketKey& base,
                            TxnId txn, const ExtraAssignments& extra);
  void handle_report(const SystemView& view, const PendingReport& rep,
                     const ExtraAssignments& extra);
  void activate(const SystemView& view, std::int32_t level,
                ExtraAssignments& extra, std::vector<Assignment>& out);

  // -- analytic discovery (message_level_discovery = false) --
  void start_analytic_discovery(const SystemView& view, const Transaction& t);

  // -- message-level discovery --
  void track_objects(const SystemView& view);
  void start_probe_discovery(const SystemView& view, const Transaction& t);
  void pump_messages(const SystemView& view, const ExtraAssignments& extra);
  void finish_discovery(const SystemView& view, TxnId txn);

  // -- resilience protocol (armed only when the plan has message faults) --
  /// Sends the probe for (txn -> obj) from the object's birth node and, when
  /// resilient, arms its timeout. `epoch` is 0 for the initial probe.
  void send_probe(const SystemView& view, TxnId txn, NodeId txn_node,
                  ObjId obj, std::int32_t epoch);
  /// Fires due probe/report deadlines: re-probe from the trail root with a
  /// fresh epoch, retransmit unacknowledged reports. Exponential backoff.
  void service_timeouts(const SystemView& view);
  /// Timeout deadline for a message (re)try number `attempt` issued at `now`.
  [[nodiscard]] Time retry_deadline(Time now, std::int32_t attempt) const;

  /// Per-transaction discovery progress (message mode). The per-object
  /// collections are inline SmallVectors sized for k (transactions touch a
  /// handful of objects), membership-tested and erased but never iterated
  /// in a behavior-visible order — so swapping the old set/map for flat
  /// storage changes no outcome, only the allocation count.
  struct Discovery {
    NodeId node = kNoNode;
    Time started = kNoTime;
    SmallVector<ObjId, 8> awaiting;
    Weight y = 0;  ///< max object / conflicting-transaction distance
    /// Current probe generation per object (resilient mode): replies from
    /// older generations are accepted (their info is still a valid position
    /// observation), but each object is answered at most once.
    SmallVector<std::pair<ObjId, std::int32_t>, 8> epoch;

    [[nodiscard]] bool awaits(ObjId o) const {
      for (const ObjId a : awaiting)
        if (a == o) return true;
      return false;
    }
    void retire(ObjId o) {
      for (ObjId* it = awaiting.begin(); it != awaiting.end(); ++it)
        if (*it == o) {
          awaiting.erase(it);
          return;
        }
    }
    [[nodiscard]] std::int32_t* epoch_of(ObjId o) {
      for (auto& [obj, ep] : epoch)
        if (obj == o) return &ep;
      return nullptr;
    }
  };

  /// Armed when a probe is sent; fires a re-probe if the reply has not
  /// retired (txn, obj) by `deadline`. Stale entries (epoch superseded or
  /// object already answered) are dropped lazily on pop.
  struct ProbeTimeout {
    Time deadline = kNoTime;
    TxnId txn = kNoTxn;
    ObjId obj = kNoObj;
    std::int32_t epoch = 0;
    bool operator>(const ProbeTimeout& o) const {
      return deadline > o.deadline ||
             (deadline == o.deadline && txn > o.txn) ||
             (deadline == o.deadline && txn == o.txn && obj > o.obj);
    }
  };

  /// Armed when a report is sent; retransmits until handle_report has
  /// placed the transaction (traces_[txn].reported != kNoTime).
  struct ReportRetry {
    Time deadline = kNoTime;
    TxnId txn = kNoTxn;
    std::int32_t attempt = 0;
    bool operator>(const ReportRetry& o) const {
      return deadline > o.deadline || (deadline == o.deadline && txn > o.txn);
    }
  };

  const Network& net_;
  SparseCover cover_;
  std::shared_ptr<const BatchScheduler> algo_;
  std::unique_ptr<SuffixWrapper> wrapped_;
  DistBucketOptions opts_;
  BucketInsertionCore core_;
  std::map<BucketKey, BucketInsertionCore::BucketId> bucket_ids_;
  BatchProblem activation_scratch_;  ///< gather-shifted activation copy

  std::int32_t num_levels_ = 0;
  std::unique_ptr<MessageBus> bus_;
  FaultyBus* faulty_ = nullptr;  ///< alias into bus_ when chaos is armed
  bool resilient_ = false;  ///< message faults configured: timeouts armed
  std::priority_queue<ProbeTimeout, std::vector<ProbeTimeout>, std::greater<>>
      probe_timeouts_;
  std::priority_queue<ReportRetry, std::vector<ReportRetry>, std::greater<>>
      report_retries_;
  ObjectTrailDirectory trails_;
  std::set<ObjId> tracked_;
  std::map<TxnId, Discovery> discovering_;
  /// Persistent pump_messages scratch: drain_into clears it but keeps its
  /// capacity, so the steady-state send → drain loop allocates nothing
  /// (the DTM_ALLOC_TRACK pins assert this).
  std::vector<Message> drain_scratch_;
  /// Recycled spill buffers for ReplyMsg user lists (the inline capacity
  /// covers typical conflict degrees; only spilled buffers are pooled).
  std::vector<ReplyUsers> reply_pool_;
  std::priority_queue<PendingReport, std::vector<PendingReport>,
                      std::greater<>>
      reports_;
  std::map<BucketKey, std::vector<TxnId>> partial_buckets_;
  std::map<TxnId, std::size_t> trace_index_;
  std::vector<TxnTrace> traces_;
  DistStats stats_;
  std::int64_t analytic_distance_ = 0;  ///< non-bus charges (notify, 4x)
  std::int32_t max_level_used_ = -1;
};

}  // namespace dtm
