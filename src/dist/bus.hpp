// Typed message bus for the distributed scheduling protocol (paper §V).
//
// Messages travel point-to-point at one distance unit per step (the
// network's native speed; objects travel at half that, which is what makes
// probe chases terminate). Delivery is exact: a message sent at time t
// from u to v arrives at t + dist(u, v) and is handed to the recipient the
// first time the owner drains the bus at or after that step.
//
// The pending queue is a util/timing_wheel.hpp ring wheel (shared with the
// EventClock calendar — ARCHITECTURE.md §11): insert and pop are O(1) slot
// appends instead of heap percolation, and slot storage plus the caller's
// drain_into scratch retain capacity, so the steady-state send → drain loop
// performs zero heap allocations (the DTM_ALLOC_TRACK pins assert this).
// Pop order is byte-identical to the old (deliver, seq) priority queue —
// the wheel drains in (time, insertion) order and seq is the insertion
// counter. The one new constraint the wheel adds: deliveries cannot be
// scheduled before a time the bus has already drained past. The protocol
// always satisfies this (sends happen at the current step, drains are
// monotone), and deliver_at enforces it. ReferenceHeapBus below preserves
// the original heap implementation as the equivalence-fuzz oracle and the
// before/after microbench baseline.
//
// FaultyBus is the chaos decorator: it keeps the same queue/drain machinery
// but perturbs each send according to a FaultPlan — dropping, duplicating,
// jittering, adding per-link degradation, and deferring traffic touching a
// paused node. All perturbations are drawn from the plan's seeded RNG
// stream, so a (plan, send-sequence) pair is fully reproducible. A null
// plan is rejected at construction: callers pick the plain MessageBus for
// the no-fault path, which keeps it literally unchanged.
#pragma once

#include <queue>
#include <variant>
#include <vector>

#include "core/event_source.hpp"
#include "core/types.hpp"
#include "fault/plan.hpp"
#include "net/graph.hpp"
#include "util/small_vector.hpp"
#include "util/timing_wheel.hpp"

namespace dtm {

/// Discovery probe chasing an object's forwarding trail (Algorithm 3
/// line 2). Carries the requester so the reply can find its way back.
struct ProbeMsg {
  TxnId requester = kNoTxn;
  NodeId requester_node = kNoNode;
  ObjId object = kNoObj;
  Weight travelled = 0;  ///< accumulated chase distance (for stats)
  /// Departure time of the last pointer followed: the chase only follows
  /// pointers laid at or after this time, so it walks the trail forward in
  /// time and cannot cycle through revisited nodes.
  Time min_depart = kNoTime;
  /// Re-probe generation for this (requester, object): 0 for the initial
  /// probe, incremented by every timeout-driven retry. Replies echo it, so
  /// duplicates and stale generations are identifiable at the requester.
  std::int32_t epoch = 0;
};

/// A reply's conflicting-user list. Inline capacity covers the typical
/// conflict degree, so building and moving a reply allocates nothing; the
/// dist-bucket recycles spilled buffers through a small pool.
using ReplyUsers = SmallVector<std::pair<TxnId, NodeId>, 8>;

/// Reply from the node currently holding (or about to receive) the object:
/// the object's position and the live transactions known to use it
/// ("the object carries the information of all the transaction locations
/// that will use it").
struct ReplyMsg {
  TxnId requester = kNoTxn;
  ObjId object = kNoObj;
  NodeId object_node = kNoNode;  ///< where the object is / will next rest
  Time object_free_at = kNoTime;  ///< when it is there
  ReplyUsers users;  ///< conflicting txns
  std::int32_t epoch = 0;  ///< echo of the answered probe's epoch
};

/// Transaction -> cluster leader report (Algorithm 3 line 6).
struct ReportMsg {
  TxnId txn = kNoTxn;
  std::int32_t attempt = 0;  ///< 0 first send, +1 per timeout retransmission
};

using Payload = std::variant<ProbeMsg, ReplyMsg, ReportMsg>;

struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Time sent = kNoTime;
  Time deliver = kNoTime;
  std::int64_t seq = 0;  ///< FIFO tie-break
  Payload payload;
};

class MessageBus : public EventSource {
 public:
  explicit MessageBus(const DistanceOracle& oracle) : oracle_(&oracle) {}
  ~MessageBus() override = default;

  /// Sends a message; it will be delivered at now + dist(from, to).
  /// FaultyBus overrides this with the chaos-perturbed delivery.
  virtual void send(NodeId from, NodeId to, Time now, Payload payload);

  /// Pops every message with deliver <= now, in (deliver, seq) order, into
  /// `out` (cleared first, capacity kept — callers pass persistent scratch
  /// so the steady state allocates nothing). Drain times must be monotone
  /// non-decreasing over the bus's lifetime.
  void drain_into(Time now, std::vector<Message>& out);

  /// Earliest pending delivery, kNoTime if none.
  [[nodiscard]] Time next_delivery() const;

  /// EventSource: pending deliveries are runner wake-ups.
  [[nodiscard]] Time next_event_time() const override {
    return next_delivery();
  }

  [[nodiscard]] std::int64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::int64_t total_distance() const { return distance_; }

 protected:
  /// Enqueues one delivery at an explicit time (>= sent, and not before any
  /// time already drained past), charging stats. The fault decorator routes
  /// every surviving copy through here.
  void deliver_at(NodeId from, NodeId to, Time sent, Time deliver,
                  Payload payload);

  [[nodiscard]] const DistanceOracle& oracle() const { return *oracle_; }

 private:
  const DistanceOracle* oracle_;
  TimingWheel<Message> wheel_;
  std::int64_t seq_ = 0;
  std::int64_t sent_ = 0;
  std::int64_t distance_ = 0;
};

/// The pre-wheel MessageBus, frozen: an allocating (deliver, seq)
/// std::priority_queue popped one message at a time. Kept as the oracle for
/// the wheel-equivalence fuzz suite and as the "before" side of
/// bench_memory's bus microbench — not used by any scheduler.
class ReferenceHeapBus : public EventSource {
 public:
  explicit ReferenceHeapBus(const DistanceOracle& oracle) : oracle_(&oracle) {}
  ~ReferenceHeapBus() override = default;

  void send(NodeId from, NodeId to, Time now, Payload payload);
  void drain_into(Time now, std::vector<Message>& out);
  [[nodiscard]] Time next_delivery() const;
  [[nodiscard]] Time next_event_time() const override {
    return next_delivery();
  }
  [[nodiscard]] std::int64_t messages_sent() const { return sent_; }

 protected:
  void deliver_at(NodeId from, NodeId to, Time sent, Time deliver,
                  Payload payload);

 private:
  struct Later {
    bool operator()(const Message& a, const Message& b) const {
      if (a.deliver != b.deliver) return a.deliver > b.deliver;
      return a.seq > b.seq;
    }
  };

  const DistanceOracle* oracle_;
  std::priority_queue<Message, std::vector<Message>, Later> queue_;
  std::int64_t seq_ = 0;
  std::int64_t sent_ = 0;
};

/// What the decorator did to the traffic, for the chaos bench and tests.
struct FaultBusStats {
  std::int64_t offered = 0;     ///< send() calls (pre-fault message count)
  std::int64_t dropped = 0;     ///< messages lost outright
  std::int64_t duplicated = 0;  ///< extra copies injected
  std::int64_t degraded = 0;    ///< deliveries over a degraded link
  std::int64_t jitter_total = 0;  ///< sum of random extra latency
  std::int64_t pause_deferred = 0;  ///< deliveries held by a pause window
  /// Heap payload bytes duplication would have deep-copied and the
  /// storage-sharing optimization instead kept with the first-processed
  /// copy (ReplyMsg user lists; trivially copyable payloads contribute 0).
  std::int64_t bytes_duplicated = 0;
};

class FaultyBus final : public MessageBus {
 public:
  /// `plan` must be non-null (`!plan.is_null()`) and outlive the bus; the
  /// no-fault path uses the plain MessageBus so its behavior is untouched
  /// by construction, not by runtime checks.
  FaultyBus(const DistanceOracle& oracle, const FaultPlan& plan);

  void send(NodeId from, NodeId to, Time now, Payload payload) override;

  [[nodiscard]] const FaultBusStats& fault_stats() const { return fstats_; }

 private:
  /// End of the latest pause window covering (node, t), or t if none.
  [[nodiscard]] Time release_time(NodeId node, Time t) const;

  const FaultPlan* plan_;
  Rng rng_;
  std::vector<FaultPlan::PauseWindow> pauses_;
  FaultBusStats fstats_;
};

}  // namespace dtm
