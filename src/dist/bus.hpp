// Typed message bus for the distributed scheduling protocol (paper §V).
//
// Messages travel point-to-point at one distance unit per step (the
// network's native speed; objects travel at half that, which is what makes
// probe chases terminate). Delivery is exact: a message sent at time t
// from u to v arrives at t + dist(u, v) and is handed to the recipient the
// first time the owner drains the bus at or after that step.
#pragma once

#include <queue>
#include <variant>
#include <vector>

#include "core/event_source.hpp"
#include "core/types.hpp"
#include "net/graph.hpp"

namespace dtm {

/// Discovery probe chasing an object's forwarding trail (Algorithm 3
/// line 2). Carries the requester so the reply can find its way back.
struct ProbeMsg {
  TxnId requester = kNoTxn;
  NodeId requester_node = kNoNode;
  ObjId object = kNoObj;
  Weight travelled = 0;  ///< accumulated chase distance (for stats)
  /// Departure time of the last pointer followed: the chase only follows
  /// pointers laid at or after this time, so it walks the trail forward in
  /// time and cannot cycle through revisited nodes.
  Time min_depart = kNoTime;
};

/// Reply from the node currently holding (or about to receive) the object:
/// the object's position and the live transactions known to use it
/// ("the object carries the information of all the transaction locations
/// that will use it").
struct ReplyMsg {
  TxnId requester = kNoTxn;
  ObjId object = kNoObj;
  NodeId object_node = kNoNode;  ///< where the object is / will next rest
  Time object_free_at = kNoTime;  ///< when it is there
  std::vector<std::pair<TxnId, NodeId>> users;  ///< conflicting txns
};

/// Transaction -> cluster leader report (Algorithm 3 line 6).
struct ReportMsg {
  TxnId txn = kNoTxn;
};

using Payload = std::variant<ProbeMsg, ReplyMsg, ReportMsg>;

struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Time sent = kNoTime;
  Time deliver = kNoTime;
  std::int64_t seq = 0;  ///< FIFO tie-break
  Payload payload;
};

class MessageBus final : public EventSource {
 public:
  explicit MessageBus(const DistanceOracle& oracle) : oracle_(&oracle) {}

  /// Sends a message; it will be delivered at now + dist(from, to).
  void send(NodeId from, NodeId to, Time now, Payload payload);

  /// Pops every message with deliver <= now, in (deliver, seq) order.
  [[nodiscard]] std::vector<Message> drain(Time now);

  /// Earliest pending delivery, kNoTime if none.
  [[nodiscard]] Time next_delivery() const;

  /// EventSource: pending deliveries are runner wake-ups.
  [[nodiscard]] Time next_event_time() const override {
    return next_delivery();
  }

  [[nodiscard]] std::int64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::int64_t total_distance() const { return distance_; }

 private:
  struct Later {
    bool operator()(const Message& a, const Message& b) const {
      if (a.deliver != b.deliver) return a.deliver > b.deliver;
      return a.seq > b.seq;
    }
  };

  const DistanceOracle* oracle_;
  std::priority_queue<Message, std::vector<Message>, Later> queue_;
  std::int64_t seq_ = 0;
  std::int64_t sent_ = 0;
  std::int64_t distance_ = 0;
};

}  // namespace dtm
