#include "stream/stream_runner.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dtm {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

}  // namespace

Json StreamReport::to_json() const {
  Json::Object o;
  o.emplace("scheduler", Json(scheduler));
  o.emplace("network", Json(network));
  o.emplace("profile", Json(profile));
  o.emplace("end_time", Json(end_time));
  o.emplace("active_steps", Json(active_steps));
  o.emplace("offered", Json(offered));
  o.emplace("shed", Json(shed));
  o.emplace("accepted", Json(accepted));
  o.emplace("commits", Json(commits));
  o.emplace("drained", Json(drained));
  o.emplace("residual", Json(residual));
  o.emplace("peak_committed_log", Json(peak_committed_log));
  o.emplace("peak_calendar", Json(peak_calendar));
  o.emplace("final_calendar_overflow", Json(final_calendar_overflow));
  o.emplace("peak_live", Json(peak_live));
  o.emplace("peak_open_windows", Json(peak_open_windows));
  o.emplace("peak_window_txns", Json(peak_window_txns));
  o.emplace("ratio_windows", Json(ratio_windows));
  o.emplace("windowed_ratio_max", Json(windowed_ratio_max));
  o.emplace("windowed_ratio_mean", Json(windowed_ratio_mean));
  o.emplace("commit_hash", Json(std::to_string(commit_hash)));
  o.emplace("latency", latency.to_json());
  return Json(std::move(o));
}

StreamRunner::StreamRunner(const Network& net,
                           std::unique_ptr<StreamSource> source,
                           std::unique_ptr<OnlineScheduler> scheduler,
                           StreamConfig cfg, EngineOptions engine_opts)
    : net_(net),
      cfg_(std::move(cfg)),
      source_(std::move(source)),
      scheduler_(std::move(scheduler)),
      ratio_(*net.oracle, engine_opts.latency_factor, cfg_.window,
             cfg_.ratio_every) {
  cfg_.validate();
  DTM_REQUIRE(source_ != nullptr, "stream: null source");
  DTM_REQUIRE(scheduler_ != nullptr, "stream: null scheduler");
  engine_ = std::make_unique<SyncEngine>(net_.oracle, source_->objects(),
                                         engine_opts);
}

void StreamRunner::maybe_drain_log(Time now) {
  if (cfg_.drain_every < 0) return;  // disabled (tests only)
  const Time cadence = cfg_.drain_every > 0 ? cfg_.drain_every : cfg_.window;
  if (now - last_drain_ < cadence) return;
  drained_ += static_cast<std::int64_t>(engine_->take_committed().size());
  last_drain_ = now;
}

void StreamRunner::step_once() {
  const Time now = engine_->now();
  // Open windows before arrivals: this step's offers belong to the window
  // containing `now`, which must have its start-of-window snapshot taken.
  ratio_.maybe_open(*engine_, now);
  if (offering_ && cfg_.duration > 0 && now >= cfg_.duration)
    offering_ = false;

  std::vector<Transaction> arrivals;
  if (offering_) {
    for (const auto& t : source_->offers_at(now)) {
      if (cfg_.target > 0 && accepted_ >= cfg_.target) {
        // Target hit mid-batch: the run accepts exactly `target`; the rest
        // of this release is never offered to the engine.
        offering_ = false;
        break;
      }
      ++offered_;
      if (cfg_.max_live > 0 &&
          engine_->num_live() +
                  static_cast<std::int64_t>(arrivals.size()) >=
              cfg_.max_live) {
        ++shed_;
        continue;
      }
      Transaction s = t;
      s.id = next_engine_id_++;
      s.gen_time = now;  // the engine requires arrivals stamped with `now`
      ratio_.on_arrival(s, now);
      arrivals.push_back(std::move(s));
      ++accepted_;
    }
    if (cfg_.target > 0 && accepted_ >= cfg_.target) offering_ = false;
  }

  engine_->begin_step(arrivals);
  const auto assignments = scheduler_->on_step(*engine_, arrivals);
  engine_->apply(assignments);
  const auto commits = engine_->finish_step();
  ++active_steps_;

  for (const auto& c : commits) {
    latency_.record(c.exec - c.gen);
    fnv(commit_hash_, static_cast<std::uint64_t>(c.txn));
    fnv(commit_hash_, static_cast<std::uint64_t>(c.node));
    fnv(commit_hash_, static_cast<std::uint64_t>(c.gen));
    fnv(commit_hash_, static_cast<std::uint64_t>(c.exec));
    ratio_.on_commit(c.txn, c.gen, c.exec);
    ++commits_;
  }

  peak_committed_log_ =
      std::max(peak_committed_log_,
               static_cast<std::int64_t>(engine_->committed().size()));
  peak_live_ = std::max(peak_live_, engine_->num_live());
  maybe_drain_log(engine_->now());

  if (!offering_ && engine_->all_done()) done_ = true;
}

StreamReport StreamRunner::run() {
  DTM_REQUIRE(!done_, "stream runner is single-use");
  while (!done_) {
    step_once();
    if (done_) break;

    const Time now = engine_->now();
    Time next = kNoTime;
    const auto merge = [&next](Time t) { next = EventClock::merge(next, t); };
    if (offering_) {
      merge(source_->next_offer_time());
      if (cfg_.duration > 0) merge(cfg_.duration);
    }
    merge(engine_->next_exec_due());
    merge(scheduler_->next_event_hint(now));
    const std::vector<const EventSource*> sources =
        scheduler_->event_sources();
    next = engine_->clock().next_event({next}, sources);
    DTM_CHECK(next != kNoTime,
              "stream deadlock: live transactions but no future event (now="
                  << now << ", live=" << engine_->num_live() << ")");
    if (next > now) engine_->advance_to(next);
  }

  ratio_.finish();

  StreamReport r;
  r.scheduler = scheduler_->name();
  r.network = net_.name;
  r.profile = cfg_.profile;
  r.end_time = engine_->now();
  r.active_steps = active_steps_;
  r.offered = offered_;
  r.shed = shed_;
  r.accepted = accepted_;
  r.commits = commits_;
  // The residual is whatever the cadence never drained; together with the
  // drained count it must account for every commit (zero-loss invariant).
  r.residual = static_cast<std::int64_t>(engine_->committed().size());
  r.drained = drained_;
  DTM_CHECK(r.drained + r.residual == commits_,
            "stream drain lost commits: " << r.drained << " + " << r.residual
                                          << " != " << commits_);
  DTM_CHECK(accepted_ == commits_, "stream quiescence: accepted "
                                       << accepted_ << " != commits "
                                       << commits_);
  if (cfg_.target > 0 && cfg_.duration == 0)
    DTM_CHECK(commits_ == cfg_.target, "stream target missed: "
                                           << commits_ << " != "
                                           << cfg_.target);
  r.peak_committed_log = peak_committed_log_;
  r.peak_calendar = engine_->clock().calendar_peak();
  r.final_calendar_overflow = engine_->clock().calendar_overflow();
  r.peak_live = peak_live_;
  r.peak_open_windows = ratio_.peak_open_windows();
  r.peak_window_txns = ratio_.peak_window_txns();
  r.ratio_windows = ratio_.windows_finalized();
  r.windowed_ratio_max = ratio_.ratio_max();
  r.windowed_ratio_mean = ratio_.ratio_stats().mean();
  r.commit_hash = commit_hash_;
  r.latency = latency_;
  return r;
}

std::unique_ptr<StreamRunner> make_stream_runner(const Network& net,
                                                 const RunSpec& spec) {
  StreamConfig cfg = Registry::make_stream_config(spec.stream, spec.seed);
  const FaultPlan fault = Registry::make_fault_plan(spec.fault, spec.seed);
  auto scheduler =
      Registry::make_scheduler(spec.scheduler, net, &fault, spec.threads);

  EngineOptions eopts;
  eopts.mode = spec.engine_mode();
  eopts.latency_factor = spec.latency_factor;
  if (spec.scheduler.kind == "dist-bucket")
    eopts.latency_factor = std::max<std::int64_t>(eopts.latency_factor, 2);
  eopts.fault = fault;
  eopts.threads = spec.threads;

  auto source = make_stream_source(net, cfg);
  return std::make_unique<StreamRunner>(net, std::move(source),
                                        std::move(scheduler), std::move(cfg),
                                        eopts);
}

}  // namespace dtm
