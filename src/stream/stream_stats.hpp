// Streaming analysis accumulators (streaming subsystem;
// docs/ARCHITECTURE.md §10).
//
// The closed-run pipeline computes its competitive-ratio proxy post hoc
// from the full committed schedule (sim/runner.cpp WindowTracker) — state
// proportional to the run. A streaming run commits millions of
// transactions, so the same Definition-1 proxy is computed incrementally:
// each tracked window snapshots object positions at its start, buffers only
// its own arrivals (window-relative gen_times), folds commits into a
// worst-latency watermark, and is finalized — one makespan_lower_bound
// call, two OnlineStats adds — and FREED as soon as it is closed and its
// last arrival has committed. Peak resident state is a handful of windows
// (the commit latency tail), independent of run length; `ratio_every`
// samples windows when even that transient is too large at extreme rates.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/lower_bound.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "net/graph.hpp"
#include "util/stats.hpp"

namespace dtm {

class SyncEngine;

class StreamingRatioTracker {
 public:
  /// `window` <= 0 disables tracking entirely (every call is a no-op).
  /// `ratio_every` tracks every ratio_every-th window (1 = all).
  StreamingRatioTracker(const DistanceOracle& oracle,
                        std::int64_t latency_factor, Time window,
                        std::int64_t ratio_every = 1);

  /// Call at the top of every processed step, before arrivals: opens (and
  /// snapshots) any window whose boundary now falls at or before `now`.
  void maybe_open(const SyncEngine& engine, Time now);

  /// Records an arrival admitted at `now` into its window's buffer (no-op
  /// for untracked windows).
  void on_arrival(const Transaction& txn, Time now);

  /// Records a commit; when this completes a closed window, the window is
  /// finalized (lower bound + ratio) and discarded.
  void on_commit(TxnId id, Time gen, Time exec);

  /// Closes and finalizes every still-open window (end of run; all tracked
  /// arrivals must have committed).
  void finish();

  // ---- Results / bounded-memory evidence ----

  [[nodiscard]] std::int64_t windows_finalized() const { return finalized_; }
  [[nodiscard]] double ratio_max() const { return ratio_max_; }
  [[nodiscard]] const OnlineStats& ratio_stats() const { return ratios_; }
  /// High-water mark of simultaneously resident tracked windows.
  [[nodiscard]] std::int64_t peak_open_windows() const { return peak_open_; }
  /// Largest arrival buffer any tracked window held.
  [[nodiscard]] std::int64_t peak_window_txns() const { return peak_txns_; }

 private:
  struct Win {
    std::vector<Transaction> txns;        ///< window-relative gen_times
    std::vector<ObjectOrigin> snapshot;   ///< positions at window start
    Time worst_latency = 0;
    std::int64_t outstanding = 0;  ///< arrivals not yet committed
    bool closed = false;           ///< a later window has opened
  };

  void finalize(std::int64_t idx, Win& w);

  const DistanceOracle& oracle_;
  std::int64_t latency_factor_;
  Time window_;
  std::int64_t ratio_every_;

  std::map<std::int64_t, Win> open_;  ///< tracked windows by index
  std::int64_t next_window_ = 0;      ///< first window index not yet opened

  std::int64_t finalized_ = 0;
  double ratio_max_ = 0.0;
  OnlineStats ratios_;
  std::int64_t peak_open_ = 0;
  std::int64_t peak_txns_ = 0;
};

}  // namespace dtm
