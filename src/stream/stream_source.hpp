// StreamSource — arrival-process generators for streaming runs (streaming
// subsystem; docs/ARCHITECTURE.md §10).
//
// Sits on serve's TxnSource seam (same contract: offers indefinitely, no
// per-transaction history, ids re-stamped by the consumer) but generates
// the arrival *processes* the streaming experiments study rather than a
// fixed pacing:
//
//   steady    — SyntheticSource's fractional-accumulator pacing at a
//               constant rate (the control profile).
//   diurnal   — square-wave rate: high for duty*period steps of each
//               period, rate*low_mult otherwise. Day/night load.
//   mmpp      — Markov-modulated on/off process: the rate switches between
//               rate*hi_mult and rate*low_mult with geometrically
//               distributed dwell times (a dedicated Rng stream drives the
//               modulating chain, so the arrival *pattern* is independent
//               of the transaction-shape stream).
//   adversary — the (rho, b)-adversary of Busch et al., "Stable Scheduling
//               in Transactional Memory" (PAPERS.md): injection budget
//               grows by rho per step but is withheld until at least
//               `burst` transactions are pending, then released all at
//               once. Any window of T steps still receives <= rho*T + b
//               transactions — the admissible-adversary constraint — but
//               the schedule is the extremal bursty one.
//
// All profiles share the transaction-shape machinery: Zipf object hotspots
// (optionally rotating by a deterministic stride every rotate_every steps,
// so the hot set drifts across the object space), k distinct objects per
// transaction, write_frac read/write mix. Fully deterministic per seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "serve/source.hpp"
#include "stream/config.hpp"
#include "util/rng.hpp"

namespace dtm {

class StreamSource final : public TxnSource {
 public:
  StreamSource(const Network& net, StreamConfig cfg);

  [[nodiscard]] std::vector<ObjectOrigin> objects() override;
  [[nodiscard]] std::vector<Transaction> offers_at(Time now) override;
  [[nodiscard]] Time next_offer_time() const override { return next_time_; }
  [[nodiscard]] std::string name() const override {
    return "stream/" + cfg_.profile;
  }

  /// Instantaneous offered rate at step `t` (advances the MMPP chain as a
  /// side effect of stepping through time inside find_next; for mmpp this
  /// is only meaningful at the current frontier).
  [[nodiscard]] double rate_now(Time t) const;

 private:
  enum class Profile : std::uint8_t { kSteady, kDiurnal, kMmpp, kAdversary };

  /// Advances the accumulator (and the MMPP phase clock) step by step from
  /// `from` until a step with >= 1 release is found.
  void find_next(Time from);
  void advance_mmpp_to(Time t);
  [[nodiscard]] std::vector<ObjId> sample_objects(Time now);

  const Network& net_;
  StreamConfig cfg_;
  Profile profile_;
  Rng rng_;        ///< transaction shape (origins, nodes, objects, modes)
  Rng state_rng_;  ///< MMPP modulating chain — independent stream
  std::unique_ptr<ZipfSampler> zipf_;
  std::int32_t rotate_stride_ = 0;  ///< hotspot shift per rotation epoch

  double carry_ = 0.0;  ///< fractional pacing / adversary token budget
  Time next_time_ = kNoTime;
  std::int64_t next_count_ = 0;
  TxnId next_id_ = 0;

  // MMPP phase state: on/off and the step the current dwell expires.
  bool mmpp_on_ = false;
  Time mmpp_until_ = 0;
  Time mmpp_frontier_ = 0;  ///< chain advanced through steps < frontier
};

/// Builds the configured source for `net` (validates cfg).
[[nodiscard]] std::unique_ptr<StreamSource> make_stream_source(
    const Network& net, StreamConfig cfg);

}  // namespace dtm
