#include "stream/config.hpp"

#include "util/check.hpp"

namespace dtm {

void StreamConfig::validate() const {
  DTM_REQUIRE(profile == "steady" || profile == "diurnal" ||
                  profile == "mmpp" || profile == "adversary",
              "stream: unknown profile '"
                  << profile
                  << "' (expected steady|diurnal|mmpp|adversary)");
  DTM_REQUIRE(rate > 0.0, "stream: rate " << rate);
  DTM_REQUIRE(objects >= 0, "stream: objects " << objects);
  DTM_REQUIRE(k >= 1, "stream: k " << k);
  DTM_REQUIRE(zipf >= 0.0, "stream: zipf " << zipf);
  DTM_REQUIRE(write_frac >= 0.0 && write_frac <= 1.0,
              "stream: write-frac " << write_frac);
  DTM_REQUIRE(rotate_every >= 0, "stream: rotate-every " << rotate_every);
  DTM_REQUIRE(period >= 1, "stream: period " << period);
  DTM_REQUIRE(duty > 0.0 && duty <= 1.0, "stream: duty " << duty);
  DTM_REQUIRE(low_mult >= 0.0, "stream: low-mult " << low_mult);
  DTM_REQUIRE(dwell_on >= 1 && dwell_off >= 1,
              "stream: dwell " << dwell_on << "/" << dwell_off);
  DTM_REQUIRE(hi_mult > 0.0, "stream: hi-mult " << hi_mult);
  DTM_REQUIRE(burst >= 1.0, "stream: burst " << burst);
  DTM_REQUIRE(target >= 0, "stream: target " << target);
  DTM_REQUIRE(duration >= 0, "stream: duration " << duration);
  DTM_REQUIRE(target > 0 || duration > 0,
              "stream: need a stop condition (target or duration)");
  DTM_REQUIRE(window >= 1, "stream: window " << window);
  DTM_REQUIRE(max_live >= 0, "stream: max-live " << max_live);
  DTM_REQUIRE(ratio_every >= 1, "stream: ratio-every " << ratio_every);
}

}  // namespace dtm
