// StreamConfig — the "stream:" spec kind's typed form (streaming subsystem;
// docs/ARCHITECTURE.md §10).
//
// Like ServeConfig it lives below sim/registry in the include graph so the
// registry can parse "stream:" specs (Registry::make_stream_config, hard
// errors on unknown knobs) and the stream runner can consume the result
// without an include cycle.
//
// A stream run differs from a serve run in what it measures: no admission
// control (arrivals are the experiment, shaped by `profile`), a committed-
// transaction target instead of a wall-clock duration, and windowed
// competitive-ratio accumulators in place of latency SLOs. Memory stays
// bounded by construction: committed-log draining on a cadence, windowed
// stats that are finalized and discarded as soon as their last transaction
// commits, and (via `max_live`) optional load shedding so adversarial
// profiles cannot grow the live set without bound.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace dtm {

struct StreamConfig {
  /// Arrival-rate profile:
  ///   steady   — constant `rate` offers per step
  ///   diurnal  — square wave: `rate` for duty*period steps, rate*low_mult
  ///              for the rest of each period
  ///   mmpp     — Markov-modulated on/off: geometric dwells of mean
  ///              dwell_on at rate*hi_mult and dwell_off at rate*low_mult
  ///   adversary— (rho, b)-adversary per Busch et al. "Stable Scheduling
  ///              in Transactional Memory": token budget grows by rho =
  ///              `rate` per step and is released only in bursts of at
  ///              least `burst` — the extremal schedule for any window
  ///              bound rho*T + b
  std::string profile = "steady";
  double rate = 4.0;  ///< mean offers per step (rho for the adversary)

  // -- transaction shape (SyntheticSource-compatible knobs) --
  std::int32_t objects = 0;  ///< 0 => one object per node
  std::int32_t k = 2;        ///< objects requested per transaction
  double zipf = 0.9;         ///< 0 = uniform object popularity
  double write_frac = 1.0;
  /// Rotate the Zipf hotspot by a deterministic stride every this many
  /// steps (0 = static hotspot) — moving-hotspot workloads that defeat
  /// placement that never revisits decisions.
  Time rotate_every = 0;

  // -- profile shape --
  Time period = 2048;      ///< diurnal period in steps
  double duty = 0.5;       ///< diurnal high-phase fraction of the period
  double low_mult = 0.25;  ///< off-phase rate multiplier (diurnal, mmpp)
  Time dwell_on = 256;     ///< mmpp mean on-phase dwell (steps)
  Time dwell_off = 768;    ///< mmpp mean off-phase dwell (steps)
  double hi_mult = 4.0;    ///< mmpp on-phase rate multiplier
  double burst = 64.0;     ///< adversary burst threshold b (released txns)

  // -- run extent --
  /// Stop offering once this many transactions have been accepted (they
  /// all commit before the run ends). 0 = no target (duration governs).
  std::int64_t target = 100000;
  /// Stop offering at this step regardless of target. 0 = no time limit.
  Time duration = 0;

  // -- bounded-memory machinery --
  Time window = 1024;      ///< ratio/stat window length in steps
  Time drain_every = 256;  ///< committed-log drain cadence; 0 = every
                           ///< window; negative disables (tests only)
  /// Shed arrivals while the live set is at least this large (0 = never
  /// shed). The streaming analogue of admission control: keeps adversarial
  /// profiles from growing live-set memory without bound.
  std::int64_t max_live = 0;
  /// Track every ratio_every-th window in the windowed competitive-ratio
  /// accumulator (1 = all windows). Tracking a window retains its arrivals
  /// until they commit; sampling keeps that transient bounded at high
  /// rates.
  std::int64_t ratio_every = 1;

  std::uint64_t seed = 42;

  void validate() const;
};

}  // namespace dtm
