#include "stream/stream_source.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dtm {

StreamSource::StreamSource(const Network& net, StreamConfig cfg)
    : net_(net),
      cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      // Distinct stream for the modulating chain: the arrival pattern must
      // not shift when transaction shape knobs consume more or fewer draws.
      state_rng_(cfg_.seed * 0x9E3779B97F4A7C15ULL + 0x5851F42D4C957F2DULL) {
  cfg_.validate();
  if (cfg_.objects <= 0) cfg_.objects = net.num_nodes();
  DTM_REQUIRE(cfg_.k <= cfg_.objects,
              "stream: k=" << cfg_.k << " > objects=" << cfg_.objects);
  if (cfg_.profile == "steady") profile_ = Profile::kSteady;
  else if (cfg_.profile == "diurnal") profile_ = Profile::kDiurnal;
  else if (cfg_.profile == "mmpp") profile_ = Profile::kMmpp;
  else profile_ = Profile::kAdversary;
  if (cfg_.zipf > 0.0)
    zipf_ = std::make_unique<ZipfSampler>(cfg_.objects, cfg_.zipf);
  // Rotation stride: coprime-ish with small object counts so successive
  // epochs visit genuinely different hot sets.
  rotate_stride_ = std::max<std::int32_t>(1, cfg_.objects / 7);
  if (profile_ == Profile::kMmpp) {
    mmpp_on_ = false;
    mmpp_until_ = state_rng_.geometric_gap(
        1.0 / static_cast<double>(cfg_.dwell_off));
  }
  find_next(0);
}

std::vector<ObjectOrigin> StreamSource::objects() {
  std::vector<ObjectOrigin> out;
  out.reserve(static_cast<std::size_t>(cfg_.objects));
  for (ObjId o = 0; o < cfg_.objects; ++o) {
    const auto node =
        static_cast<NodeId>(rng_.uniform_int(0, net_.num_nodes() - 1));
    out.push_back({o, node, 0});
  }
  return out;
}

void StreamSource::advance_mmpp_to(Time t) {
  while (t >= mmpp_until_) {
    mmpp_on_ = !mmpp_on_;
    const Time dwell = mmpp_on_ ? cfg_.dwell_on : cfg_.dwell_off;
    mmpp_until_ +=
        state_rng_.geometric_gap(1.0 / static_cast<double>(dwell));
  }
  mmpp_frontier_ = t;
}

double StreamSource::rate_now(Time t) const {
  switch (profile_) {
    case Profile::kSteady:
    case Profile::kAdversary:
      return cfg_.rate;
    case Profile::kDiurnal: {
      const auto phase = static_cast<double>(t % cfg_.period);
      const bool high = phase < cfg_.duty * static_cast<double>(cfg_.period);
      return high ? cfg_.rate : cfg_.rate * cfg_.low_mult;
    }
    case Profile::kMmpp:
      return mmpp_on_ ? cfg_.rate * cfg_.hi_mult : cfg_.rate * cfg_.low_mult;
  }
  return cfg_.rate;
}

void StreamSource::find_next(Time from) {
  // Walks the step sequence, accumulating fractional offers (or, for the
  // adversary, injection tokens) until a step releases >= 1 transaction.
  // Bounded: the accumulator grows by at least rate * low_mult (> 0 for
  // every admissible config) — or exactly rho for the adversary — per step.
  Time t = from;
  while (true) {
    if (profile_ == Profile::kMmpp) advance_mmpp_to(t);
    if (profile_ == Profile::kAdversary) {
      // (rho, b)-adversary: accrue rho per step, release nothing until the
      // pending budget reaches the burst threshold b, then release it all.
      // Any T-step window receives <= rho*T + b transactions (the budget
      // carried into the window is < b), which is exactly the admissible
      // constraint — with maximally bursty timing.
      carry_ += cfg_.rate;
      if (carry_ >= cfg_.burst) {
        const auto n = static_cast<std::int64_t>(carry_);
        carry_ -= static_cast<double>(n);
        next_time_ = t;
        next_count_ = n;
        return;
      }
    } else {
      carry_ += rate_now(t);
      const auto n = static_cast<std::int64_t>(carry_);
      if (n >= 1) {
        carry_ -= static_cast<double>(n);
        next_time_ = t;
        next_count_ = n;
        return;
      }
    }
    ++t;
  }
}

std::vector<ObjId> StreamSource::sample_objects(Time now) {
  std::vector<ObjId> out;
  out.reserve(static_cast<std::size_t>(cfg_.k));
  if (!zipf_) {
    auto picks = rng_.sample_distinct(cfg_.objects, cfg_.k);
    out.assign(picks.begin(), picks.end());
  } else {
    // Zipf-skewed distinct sample: rejection with a cap, then uniform fill
    // (the SyntheticWorkload recipe).
    std::int32_t tries = 0;
    while (static_cast<std::int32_t>(out.size()) < cfg_.k &&
           tries < 64 * cfg_.k) {
      const ObjId o = zipf_->draw(rng_);
      if (std::find(out.begin(), out.end(), o) == out.end()) out.push_back(o);
      ++tries;
    }
    while (static_cast<std::int32_t>(out.size()) < cfg_.k) {
      const auto o = static_cast<ObjId>(rng_.uniform_int(0, cfg_.objects - 1));
      if (std::find(out.begin(), out.end(), o) == out.end()) out.push_back(o);
    }
  }
  if (cfg_.rotate_every > 0) {
    // Rotating hotspot: shift the whole draw by the epoch stride. A shift
    // preserves distinctness and Zipf shape while moving the hot set.
    const auto epoch = now / cfg_.rotate_every;
    const auto shift = static_cast<ObjId>(
        (epoch * rotate_stride_) % cfg_.objects);
    for (auto& o : out) o = static_cast<ObjId>((o + shift) % cfg_.objects);
  }
  return out;
}

std::vector<Transaction> StreamSource::offers_at(Time now) {
  std::vector<Transaction> out;
  if (now < next_time_) return out;
  DTM_CHECK(now == next_time_,
            "stream source offer at " << next_time_ << " missed (now " << now
                                      << ")");
  out.reserve(static_cast<std::size_t>(next_count_));
  for (std::int64_t i = 0; i < next_count_; ++i) {
    Transaction t;
    t.id = next_id_++;
    t.node = static_cast<NodeId>(rng_.uniform_int(0, net_.num_nodes() - 1));
    t.gen_time = now;
    t.accesses = write_set(sample_objects(now));
    if (cfg_.write_frac < 1.0) {
      for (auto& a : t.accesses)
        if (!rng_.bernoulli(cfg_.write_frac)) a.mode = AccessMode::kRead;
    }
    out.push_back(std::move(t));
  }
  find_next(now + 1);
  return out;
}

std::unique_ptr<StreamSource> make_stream_source(const Network& net,
                                                 StreamConfig cfg) {
  return std::make_unique<StreamSource>(net, std::move(cfg));
}

}  // namespace dtm
