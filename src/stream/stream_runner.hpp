// StreamRunner — the streaming run loop (streaming subsystem;
// docs/ARCHITECTURE.md §10).
//
// Drives a StreamSource through the engine to a committed-transaction
// target (or a duration) with every piece of per-transaction state bounded:
//   - the committed log is drained on a cadence (TxnStore::take_committed;
//     counted, hashed at commit time, then discarded),
//   - the execution calendar is the ring wheel (sim/clock.hpp) whose
//     occupancy the report pins,
//   - windowed competitive-ratio estimates come from StreamingRatioTracker,
//     which frees each window as soon as its arrivals commit,
//   - an optional max_live watermark sheds offers while the live set is
//     saturated, so adversarial profiles cannot grow memory without bound.
// The report carries the FNV-1a hash of the full commit sequence (txn,
// node, gen, exec), so streaming determinism is checkable across engine
// modes and thread counts without retaining a single committed entry.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/scheduler.hpp"
#include "net/topology.hpp"
#include "serve/latency.hpp"
#include "sim/engine.hpp"
#include "sim/registry.hpp"
#include "stream/config.hpp"
#include "stream/stream_source.hpp"
#include "stream/stream_stats.hpp"
#include "util/json.hpp"

namespace dtm {

struct StreamReport {
  std::string scheduler;
  std::string network;
  std::string profile;
  Time end_time = 0;
  std::int64_t active_steps = 0;

  std::int64_t offered = 0;   ///< transactions the source generated
  std::int64_t shed = 0;      ///< dropped at the max_live watermark
  std::int64_t accepted = 0;  ///< entered the engine
  std::int64_t commits = 0;
  std::int64_t drained = 0;   ///< commits drained during the run
  std::int64_t residual = 0;  ///< commits still in the log at the end

  // -- bounded-memory evidence --
  std::int64_t peak_committed_log = 0;
  std::int64_t peak_calendar = 0;      ///< EventClock::calendar_peak()
  std::int64_t final_calendar_overflow = 0;
  std::int64_t peak_live = 0;
  std::int64_t peak_open_windows = 0;  ///< ratio tracker residency
  std::int64_t peak_window_txns = 0;

  // -- windowed competitive-ratio estimates --
  std::int64_t ratio_windows = 0;
  double windowed_ratio_max = 0.0;
  double windowed_ratio_mean = 0.0;

  std::uint64_t commit_hash = 0;
  LatencyRecorder latency;

  [[nodiscard]] Json to_json() const;
};

class StreamRunner {
 public:
  /// `net` must outlive the runner.
  StreamRunner(const Network& net, std::unique_ptr<StreamSource> source,
               std::unique_ptr<OnlineScheduler> scheduler, StreamConfig cfg,
               EngineOptions engine_opts);

  /// Runs to quiescence: offers until the target/duration is reached, then
  /// drains every live transaction. Single use.
  [[nodiscard]] StreamReport run();

 private:
  void step_once();
  void maybe_drain_log(Time now);

  const Network& net_;
  StreamConfig cfg_;
  std::unique_ptr<StreamSource> source_;
  std::unique_ptr<OnlineScheduler> scheduler_;
  std::unique_ptr<SyncEngine> engine_;
  StreamingRatioTracker ratio_;

  bool offering_ = true;
  bool done_ = false;
  std::int64_t active_steps_ = 0;
  TxnId next_engine_id_ = 0;

  std::int64_t offered_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t accepted_ = 0;
  std::int64_t commits_ = 0;
  std::int64_t drained_ = 0;
  std::int64_t peak_committed_log_ = 0;
  std::int64_t peak_live_ = 0;
  Time last_drain_ = 0;
  std::uint64_t commit_hash_ = 1469598103934665603ULL;
  LatencyRecorder latency_;
};

/// Builds the full streaming run from a RunSpec whose `stream` spec names
/// the run shape (Registry::make_stream_config); topology/scheduler/fault
/// through the usual registry factories, dist-bucket forcing latency
/// factor >= 2 as everywhere else. `net` must be the spec's topology and
/// outlive the runner.
[[nodiscard]] std::unique_ptr<StreamRunner> make_stream_runner(
    const Network& net, const RunSpec& spec);

}  // namespace dtm
