#include "stream/stream_stats.hpp"

#include <algorithm>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace dtm {

StreamingRatioTracker::StreamingRatioTracker(const DistanceOracle& oracle,
                                             std::int64_t latency_factor,
                                             Time window,
                                             std::int64_t ratio_every)
    : oracle_(oracle),
      latency_factor_(latency_factor),
      window_(window),
      ratio_every_(std::max<std::int64_t>(ratio_every, 1)) {}

void StreamingRatioTracker::maybe_open(const SyncEngine& engine, Time now) {
  if (window_ <= 0) return;
  while (now >= next_window_ * window_) {
    const std::int64_t idx = next_window_++;
    // Any earlier window is now closed; ones whose arrivals all committed
    // can finalize immediately (including empty ones from idle skips).
    for (auto it = open_.begin(); it != open_.end();) {
      if (it->first >= idx) break;
      it->second.closed = true;
      if (it->second.outstanding == 0) {
        finalize(it->first, it->second);
        it = open_.erase(it);
      } else {
        ++it;
      }
    }
    if (idx % ratio_every_ != 0) continue;  // sampled out
    Win w;
    // Snapshot object positions at the window's start. In-transit objects
    // are attributed to their destination — by the window's end they will
    // be at or past it; a coarser position only weakens (never
    // invalidates) the lower bound's certificate role.
    const auto& origins = engine.origins();
    w.snapshot.reserve(origins.size());
    for (const auto& o : origins) {
      const ObjectState& s = engine.object(o.id);
      w.snapshot.push_back({o.id, s.in_transit() ? s.dest() : s.at(), 0});
    }
    open_.emplace(idx, std::move(w));
    peak_open_ =
        std::max(peak_open_, static_cast<std::int64_t>(open_.size()));
  }
}

void StreamingRatioTracker::on_arrival(const Transaction& txn, Time now) {
  if (window_ <= 0) return;
  const std::int64_t idx = now / window_;
  const auto it = open_.find(idx);
  if (it == open_.end()) return;  // sampled out
  Transaction t = txn;
  t.gen_time = now - idx * window_;  // window-relative, like the snapshot
  it->second.txns.push_back(std::move(t));
  ++it->second.outstanding;
  peak_txns_ = std::max(
      peak_txns_, static_cast<std::int64_t>(it->second.txns.size()));
}

void StreamingRatioTracker::on_commit(TxnId /*id*/, Time gen, Time exec) {
  if (window_ <= 0) return;
  const std::int64_t idx = gen / window_;
  const auto it = open_.find(idx);
  if (it == open_.end()) return;
  Win& w = it->second;
  DTM_CHECK(w.outstanding > 0, "stream window " << idx << " over-committed");
  w.worst_latency = std::max(w.worst_latency, exec - gen);
  if (--w.outstanding == 0 && w.closed) {
    finalize(idx, w);
    open_.erase(it);
  }
}

void StreamingRatioTracker::finish() {
  for (auto& [idx, w] : open_) {
    DTM_CHECK(w.outstanding == 0, "stream window "
                                      << idx << " finished with "
                                      << w.outstanding
                                      << " uncommitted arrivals");
    finalize(idx, w);
  }
  open_.clear();
}

void StreamingRatioTracker::finalize(std::int64_t /*idx*/, Win& w) {
  if (w.txns.empty()) return;  // idle window: nothing to rate
  const auto lb =
      makespan_lower_bound(w.txns, w.snapshot, oracle_, latency_factor_);
  const double ratio = static_cast<double>(w.worst_latency) /
                       static_cast<double>(std::max<Time>(lb.best(), 1));
  ratio_max_ = std::max(ratio_max_, ratio);
  ratios_.add(ratio);
  ++finalized_;
}

}  // namespace dtm
