#include "net/topology.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <numeric>
#include <set>
#include <utility>

namespace dtm {

std::string to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kClique: return "clique";
    case TopologyKind::kLine: return "line";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kHypercube: return "hypercube";
    case TopologyKind::kButterfly: return "butterfly";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kCluster: return "cluster";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kTree: return "tree";
    case TopologyKind::kRandom: return "random";
  }
  return "unknown";
}

namespace {

/// Closed-form oracle defined by a distance functor.
template <typename DistFn>
class FormulaOracle final : public DistanceOracle {
 public:
  FormulaOracle(NodeId n, Weight diameter, DistFn fn)
      : n_(n), diameter_(diameter), fn_(std::move(fn)) {}

  [[nodiscard]] Weight dist(NodeId u, NodeId v) const override {
    DTM_REQUIRE(u >= 0 && v >= 0 && u < n_ && v < n_,
                "dist(" << u << "," << v << ") n=" << n_);
    return fn_(u, v);
  }
  [[nodiscard]] Weight diameter() const override { return diameter_; }
  [[nodiscard]] NodeId num_nodes() const override { return n_; }

 private:
  NodeId n_;
  Weight diameter_;
  DistFn fn_;
};

template <typename DistFn>
std::shared_ptr<const DistanceOracle> make_formula_oracle(NodeId n,
                                                          Weight diameter,
                                                          DistFn fn) {
  return std::make_shared<FormulaOracle<DistFn>>(n, diameter, std::move(fn));
}

/// Mixed-radix decode of a row-major grid/torus node id.
std::vector<NodeId> grid_coords(NodeId id, const std::vector<NodeId>& ext) {
  std::vector<NodeId> c(ext.size());
  for (std::size_t d = ext.size(); d-- > 0;) {
    c[d] = id % ext[d];
    id /= ext[d];
  }
  return c;
}

NodeId checked_product(const std::vector<NodeId>& ext) {
  DTM_REQUIRE(!ext.empty(), "grid needs at least one dimension");
  std::int64_t n = 1;
  for (const NodeId e : ext) {
    DTM_REQUIRE(e >= 1, "grid extent " << e);
    n *= e;
    DTM_REQUIRE(n <= (std::int64_t{1} << 30), "grid too large: " << n);
  }
  return static_cast<NodeId>(n);
}

}  // namespace

Network make_clique(NodeId n) {
  DTM_REQUIRE(n >= 1, "clique n=" << n);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v, 1);
  auto oracle = make_formula_oracle(
      n, n > 1 ? 1 : 0,
      [](NodeId u, NodeId v) -> Weight { return u == v ? 0 : 1; });
  return {TopologyKind::kClique, "clique(n=" + std::to_string(n) + ")",
          std::move(g), std::move(oracle), {{"n", std::to_string(n)}}};
}

Network make_line(NodeId n) {
  DTM_REQUIRE(n >= 1, "line n=" << n);
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1, 1);
  auto oracle = make_formula_oracle(
      n, static_cast<Weight>(n - 1),
      [](NodeId u, NodeId v) -> Weight { return std::abs(u - v); });
  return {TopologyKind::kLine, "line(n=" + std::to_string(n) + ")",
          std::move(g), std::move(oracle), {{"n", std::to_string(n)}}};
}

Network make_ring(NodeId n) {
  DTM_REQUIRE(n >= 3, "ring n=" << n);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) g.add_edge(u, (u + 1) % n, 1);
  auto oracle = make_formula_oracle(
      n, static_cast<Weight>(n / 2), [n](NodeId u, NodeId v) -> Weight {
        const Weight d = std::abs(u - v);
        return std::min<Weight>(d, n - d);
      });
  return {TopologyKind::kRing, "ring(n=" + std::to_string(n) + ")",
          std::move(g), std::move(oracle), {{"n", std::to_string(n)}}};
}

Network make_grid(const std::vector<NodeId>& extents) {
  const NodeId n = checked_product(extents);
  Graph g(n);
  for (NodeId id = 0; id < n; ++id) {
    const auto c = grid_coords(id, extents);
    NodeId stride = 1;
    for (std::size_t d = extents.size(); d-- > 0;) {
      if (c[d] + 1 < extents[d]) g.add_edge(id, id + stride, 1);
      stride *= extents[d];
    }
  }
  Weight diam = 0;
  for (const NodeId e : extents) diam += e - 1;
  auto ext = extents;
  auto oracle = make_formula_oracle(
      n, diam, [ext](NodeId u, NodeId v) -> Weight {
        Weight d = 0;
        for (std::size_t i = ext.size(); i-- > 0;) {
          d += std::abs(u % ext[i] - v % ext[i]);
          u /= ext[i];
          v /= ext[i];
        }
        return d;
      });
  std::string dims;
  for (std::size_t i = 0; i < extents.size(); ++i)
    dims += (i ? "x" : "") + std::to_string(extents[i]);
  std::string name = "grid(" + dims + ")";
  return {TopologyKind::kGrid, std::move(name), std::move(g),
          std::move(oracle), {{"dims", std::move(dims)}}};
}

Network make_torus(const std::vector<NodeId>& extents) {
  const NodeId n = checked_product(extents);
  Graph g(n);
  std::set<std::pair<NodeId, NodeId>> added;  // avoid parallel wrap edges
  for (NodeId id = 0; id < n; ++id) {
    const auto c = grid_coords(id, extents);
    NodeId stride = 1;
    for (std::size_t d = extents.size(); d-- > 0;) {
      if (extents[d] > 1) {
        const NodeId next =
            c[d] + 1 < extents[d] ? id + stride : id - (extents[d] - 1) * stride;
        const auto key = std::minmax(id, next);
        if (added.insert({key.first, key.second}).second)
          g.add_edge(id, next, 1);
      }
      stride *= extents[d];
    }
  }
  Weight diam = 0;
  for (const NodeId e : extents) diam += e / 2;
  auto ext = extents;
  auto oracle = make_formula_oracle(
      n, diam, [ext](NodeId u, NodeId v) -> Weight {
        Weight d = 0;
        for (std::size_t i = ext.size(); i-- > 0;) {
          const Weight raw = std::abs(u % ext[i] - v % ext[i]);
          d += std::min<Weight>(raw, ext[i] - raw);
          u /= ext[i];
          v /= ext[i];
        }
        return d;
      });
  std::string dims;
  for (std::size_t i = 0; i < extents.size(); ++i)
    dims += (i ? "x" : "") + std::to_string(extents[i]);
  std::string name = "torus(" + dims + ")";
  return {TopologyKind::kTorus, std::move(name), std::move(g),
          std::move(oracle), {{"dims", std::move(dims)}}};
}

Network make_hypercube(int d) {
  DTM_REQUIRE(d >= 0 && d <= 24, "hypercube d=" << d);
  const NodeId n = NodeId{1} << d;
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (int b = 0; b < d; ++b)
      if (u < (u ^ (NodeId{1} << b))) g.add_edge(u, u ^ (NodeId{1} << b), 1);
  auto oracle = make_formula_oracle(
      n, static_cast<Weight>(d), [](NodeId u, NodeId v) -> Weight {
        return std::popcount(static_cast<std::uint32_t>(u ^ v));
      });
  return {TopologyKind::kHypercube, "hypercube(d=" + std::to_string(d) + ")",
          std::move(g), std::move(oracle), {{"d", std::to_string(d)}}};
}

Network make_butterfly(int d) {
  DTM_REQUIRE(d >= 1 && d <= 10, "butterfly d=" << d);
  const NodeId rows = NodeId{1} << d;
  const NodeId n = (d + 1) * rows;
  Graph g(n);
  auto id = [rows](NodeId level, NodeId row) { return level * rows + row; };
  for (NodeId level = 0; level < d; ++level) {
    for (NodeId row = 0; row < rows; ++row) {
      g.add_edge(id(level, row), id(level + 1, row), 1);
      g.add_edge(id(level, row), id(level + 1, row ^ (NodeId{1} << level)), 1);
    }
  }
  auto oracle = std::make_shared<ApspOracle>(g);
  return {TopologyKind::kButterfly, "butterfly(d=" + std::to_string(d) + ")",
          std::move(g), oracle, {{"d", std::to_string(d)}}};
}

NodeId star_node(NodeId alpha, NodeId beta, NodeId ray, NodeId pos) {
  DTM_REQUIRE(ray >= 0 && ray < alpha && pos >= 0 && pos < beta,
              "star_node ray=" << ray << " pos=" << pos);
  return 1 + ray * beta + pos;
}

Network make_star(NodeId alpha, NodeId beta) {
  DTM_REQUIRE(alpha >= 1 && beta >= 1, "star alpha=" << alpha
                                                     << " beta=" << beta);
  const NodeId n = 1 + alpha * beta;
  Graph g(n);
  for (NodeId r = 0; r < alpha; ++r) {
    g.add_edge(0, star_node(alpha, beta, r, 0), 1);
    for (NodeId j = 0; j + 1 < beta; ++j)
      g.add_edge(star_node(alpha, beta, r, j), star_node(alpha, beta, r, j + 1),
                 1);
  }
  const Weight diam = alpha >= 2 ? 2 * static_cast<Weight>(beta)
                                 : static_cast<Weight>(beta);
  auto oracle = make_formula_oracle(
      n, diam, [beta](NodeId u, NodeId v) -> Weight {
        if (u == v) return 0;
        if (u == 0) return (v - 1) % beta + 1;
        if (v == 0) return (u - 1) % beta + 1;
        const NodeId ru = (u - 1) / beta, pu = (u - 1) % beta;
        const NodeId rv = (v - 1) / beta, pv = (v - 1) % beta;
        if (ru == rv) return std::abs(pu - pv);
        return static_cast<Weight>(pu) + pv + 2;
      });
  return {TopologyKind::kStar,
          "star(a=" + std::to_string(alpha) + ",b=" + std::to_string(beta) + ")",
          std::move(g), std::move(oracle),
          {{"alpha", std::to_string(alpha)}, {"beta", std::to_string(beta)}}};
}

NodeId cluster_node(NodeId beta, NodeId clique, NodeId member) {
  DTM_REQUIRE(member >= 0 && member < beta, "cluster member " << member);
  return clique * beta + member;
}

Network make_cluster(NodeId alpha, NodeId beta, Weight gamma) {
  DTM_REQUIRE(alpha >= 1 && beta >= 1, "cluster alpha=" << alpha
                                                        << " beta=" << beta);
  DTM_REQUIRE(gamma >= beta, "cluster requires gamma >= beta (paper §IV-D); "
                             "gamma=" << gamma << " beta=" << beta);
  const NodeId n = alpha * beta;
  Graph g(n);
  for (NodeId c = 0; c < alpha; ++c)
    for (NodeId i = 0; i < beta; ++i)
      for (NodeId j = i + 1; j < beta; ++j)
        g.add_edge(cluster_node(beta, c, i), cluster_node(beta, c, j), 1);
  for (NodeId c1 = 0; c1 < alpha; ++c1)
    for (NodeId c2 = c1 + 1; c2 < alpha; ++c2)
      g.add_edge(cluster_node(beta, c1, 0), cluster_node(beta, c2, 0), gamma);
  const Weight intra = beta > 1 ? 1 : 0;
  const Weight diam = alpha >= 2 ? gamma + 2 * intra : intra;
  auto oracle = make_formula_oracle(
      n, diam, [beta, gamma](NodeId u, NodeId v) -> Weight {
        if (u == v) return 0;
        const NodeId cu = u / beta, cv = v / beta;
        if (cu == cv) return 1;
        const Weight hop_u = (u % beta == 0) ? 0 : 1;
        const Weight hop_v = (v % beta == 0) ? 0 : 1;
        return hop_u + gamma + hop_v;
      });
  return {TopologyKind::kCluster,
          "cluster(a=" + std::to_string(alpha) + ",b=" + std::to_string(beta) +
              ",g=" + std::to_string(gamma) + ")",
          std::move(g), std::move(oracle),
          {{"alpha", std::to_string(alpha)},
           {"beta", std::to_string(beta)},
           {"gamma", std::to_string(gamma)}}};
}

Network make_tree(NodeId branching, NodeId depth) {
  DTM_REQUIRE(branching >= 2, "tree branching " << branching);
  DTM_REQUIRE(depth >= 0 && depth <= 20, "tree depth " << depth);
  std::int64_t n64 = 1, level = 1;
  for (NodeId d = 0; d < depth; ++d) {
    level *= branching;
    n64 += level;
    DTM_REQUIRE(n64 <= (std::int64_t{1} << 30), "tree too large");
  }
  const auto n = static_cast<NodeId>(n64);
  Graph g(n);
  for (NodeId u = 1; u < n; ++u) g.add_edge(u, (u - 1) / branching, 1);
  // Closed-form distance: walk both nodes up to their LCA. Depth of node u
  // in level order: number of parent hops to 0 — O(log n) per query.
  const NodeId b = branching;
  auto oracle = make_formula_oracle(
      n, 2 * static_cast<Weight>(depth), [b](NodeId u, NodeId v) -> Weight {
        auto node_depth = [b](NodeId x) {
          Weight d = 0;
          while (x != 0) {
            x = (x - 1) / b;
            ++d;
          }
          return d;
        };
        Weight du = node_depth(u), dv = node_depth(v), steps = 0;
        while (du > dv) {
          u = (u - 1) / b;
          --du;
          ++steps;
        }
        while (dv > du) {
          v = (v - 1) / b;
          --dv;
          ++steps;
        }
        while (u != v) {
          u = (u - 1) / b;
          v = (v - 1) / b;
          steps += 2;
        }
        return steps;
      });
  return {TopologyKind::kTree,
          "tree(b=" + std::to_string(branching) + ",d=" +
              std::to_string(depth) + ")",
          std::move(g), std::move(oracle),
          {{"branching", std::to_string(branching)},
           {"depth", std::to_string(depth)}}};
}

Graph make_random_connected_graph(NodeId n, std::int64_t extra_edges,
                                  Weight max_weight, Rng& rng,
                                  std::int64_t* extra_done) {
  DTM_REQUIRE(n >= 1, "random graph n=" << n);
  DTM_REQUIRE(max_weight >= 1, "max_weight=" << max_weight);
  Graph g(n);
  std::set<std::pair<NodeId, NodeId>> present;
  // Random spanning tree: attach each node to a uniformly random earlier one.
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId u = order[static_cast<std::size_t>(i)];
    const NodeId v =
        order[static_cast<std::size_t>(rng.uniform_int(0, i - 1))];
    g.add_edge(u, v, rng.uniform_int(1, max_weight));
    present.insert(std::minmax(u, v));
  }
  const std::int64_t max_extra =
      static_cast<std::int64_t>(n) * (n - 1) / 2 - (n - 1);
  extra_edges = std::min(extra_edges, max_extra);
  if (extra_done) *extra_done = extra_edges;
  while (extra_edges > 0) {
    const auto u = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto v = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (u == v) continue;
    if (!present.insert(std::minmax(u, v)).second) continue;
    g.add_edge(u, v, rng.uniform_int(1, max_weight));
    --extra_edges;
  }
  return g;
}

Network make_random_connected(NodeId n, std::int64_t extra_edges,
                              Weight max_weight, Rng& rng) {
  std::int64_t extra_requested = 0;
  Graph g = make_random_connected_graph(n, extra_edges, max_weight, rng,
                                        &extra_requested);
  auto oracle = std::make_shared<ApspOracle>(g);
  return {TopologyKind::kRandom, "random(n=" + std::to_string(n) + ")",
          std::move(g), oracle,
          {{"n", std::to_string(n)},
           {"extra", std::to_string(extra_requested)},
           {"maxw", std::to_string(max_weight)}}};
}

}  // namespace dtm
