// Weighted undirected communication graph G = (V, E, w).
//
// This is the paper's substrate (§II): transactions live at nodes, objects
// travel along shortest paths, and an edge of weight w(e) takes w(e)
// synchronous time steps to cross.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace dtm {

using NodeId = std::int32_t;
using Weight = std::int64_t;

constexpr NodeId kNoNode = -1;
constexpr Weight kInfWeight = std::int64_t{1} << 60;

/// Outgoing half-edge in an adjacency list.
struct HalfEdge {
  NodeId to;
  Weight weight;
};

/// Simple undirected weighted graph with positive integer edge weights.
/// Immutable after construction apart from add_edge; adjacency is stored as
/// per-node vectors for cache-friendly Dijkstra traversal.
class Graph {
 public:
  explicit Graph(NodeId num_nodes) : adj_(static_cast<std::size_t>(num_nodes)) {
    DTM_REQUIRE(num_nodes > 0, "graph needs at least one node");
  }

  /// Adds an undirected edge {u, v} of positive weight w.
  void add_edge(NodeId u, NodeId v, Weight w);

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(adj_.size());
  }
  [[nodiscard]] std::int64_t num_edges() const { return num_edges_; }

  [[nodiscard]] std::span<const HalfEdge> neighbors(NodeId u) const {
    DTM_REQUIRE(valid_node(u), "node " << u);
    return adj_[static_cast<std::size_t>(u)];
  }

  [[nodiscard]] bool valid_node(NodeId u) const {
    return u >= 0 && u < num_nodes();
  }

  /// True iff every node can reach every other node.
  [[nodiscard]] bool connected() const;

  /// Single-source shortest path distances (Dijkstra).
  [[nodiscard]] std::vector<Weight> sssp(NodeId source) const;

  /// Single-source distances truncated at `radius`: nodes farther than
  /// radius get kInfWeight. Used by the sparse-cover ball carving, where
  /// full Dijkstra per center would be wasteful.
  [[nodiscard]] std::vector<Weight> sssp_within(NodeId source,
                                                Weight radius) const;

 private:
  std::vector<std::vector<HalfEdge>> adj_;
  std::int64_t num_edges_ = 0;
};

/// Abstract shortest-path distance oracle for a graph. Named topologies use
/// closed-form O(1) implementations so experiments scale past the O(n^2)
/// all-pairs memory wall; generic graphs fall back to a cached APSP matrix.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Shortest-path distance between u and v in G.
  [[nodiscard]] virtual Weight dist(NodeId u, NodeId v) const = 0;

  /// Graph diameter (max over pairs of dist). May be precomputed.
  [[nodiscard]] virtual Weight diameter() const = 0;

  [[nodiscard]] virtual NodeId num_nodes() const = 0;
};

/// All-pairs oracle backed by one Dijkstra per source. O(n * (m log n))
/// build, O(1) queries, O(n^2) memory — fine for generic graphs up to a few
/// thousand nodes.
class ApspOracle final : public DistanceOracle {
 public:
  explicit ApspOracle(const Graph& g);

  [[nodiscard]] Weight dist(NodeId u, NodeId v) const override {
    DTM_REQUIRE(u >= 0 && v >= 0 && u < n_ && v < n_,
                "dist(" << u << "," << v << ") n=" << n_);
    return dist_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(v)];
  }
  [[nodiscard]] Weight diameter() const override { return diameter_; }
  [[nodiscard]] NodeId num_nodes() const override { return n_; }

 private:
  NodeId n_;
  Weight diameter_ = 0;
  std::vector<Weight> dist_;
};

}  // namespace dtm
