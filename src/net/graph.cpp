#include "net/graph.hpp"

#include <algorithm>
#include <queue>

namespace dtm {

void Graph::add_edge(NodeId u, NodeId v, Weight w) {
  DTM_REQUIRE(valid_node(u) && valid_node(v), "edge {" << u << "," << v << "}");
  DTM_REQUIRE(u != v, "self loop at node " << u);
  DTM_REQUIRE(w > 0, "edge weight " << w << " must be positive");
  adj_[static_cast<std::size_t>(u)].push_back({v, w});
  adj_[static_cast<std::size_t>(v)].push_back({u, w});
  ++num_edges_;
}

bool Graph::connected() const {
  const auto d = sssp(0);
  return std::none_of(d.begin(), d.end(),
                      [](Weight x) { return x >= kInfWeight; });
}

namespace {

// Shared Dijkstra core: stops expanding past `radius` when radius >= 0.
std::vector<Weight> dijkstra(const Graph& g, NodeId source, Weight radius) {
  std::vector<Weight> dist(static_cast<std::size_t>(g.num_nodes()),
                           kInfWeight);
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(source)] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& e : g.neighbors(u)) {
      const Weight nd = d + e.weight;
      if (radius >= 0 && nd > radius) continue;
      if (nd < dist[static_cast<std::size_t>(e.to)]) {
        dist[static_cast<std::size_t>(e.to)] = nd;
        pq.emplace(nd, e.to);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<Weight> Graph::sssp(NodeId source) const {
  DTM_REQUIRE(valid_node(source), "sssp source " << source);
  return dijkstra(*this, source, -1);
}

std::vector<Weight> Graph::sssp_within(NodeId source, Weight radius) const {
  DTM_REQUIRE(valid_node(source), "sssp source " << source);
  DTM_REQUIRE(radius >= 0, "radius " << radius);
  return dijkstra(*this, source, radius);
}

ApspOracle::ApspOracle(const Graph& g) : n_(g.num_nodes()) {
  dist_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  for (NodeId s = 0; s < n_; ++s) {
    const auto row = g.sssp(s);
    DTM_CHECK(std::none_of(row.begin(), row.end(),
                           [](Weight x) { return x >= kInfWeight; }),
              "graph must be connected for APSP oracle (source " << s << ")");
    std::copy(row.begin(), row.end(),
              dist_.begin() +
                  static_cast<std::ptrdiff_t>(
                      static_cast<std::size_t>(s) *
                      static_cast<std::size_t>(n_)));
    diameter_ = std::max(diameter_, *std::max_element(row.begin(), row.end()));
  }
}

}  // namespace dtm
