// Builders for the network topologies studied in the paper (§I, §III, §IV):
// Clique, Line, Ring, d-dimensional Grid, Hypercube, Butterfly, Star,
// Cluster, Torus — plus random connected graphs for property tests.
//
// Each builder returns a Network bundling the explicit Graph (used by the
// sparse cover and the message-level distributed simulation) with a
// DistanceOracle. Named topologies get closed-form O(1) oracles so that
// experiments scale; the butterfly and random graphs use a cached APSP.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace dtm {

enum class TopologyKind {
  kClique,
  kLine,
  kRing,
  kGrid,
  kHypercube,
  kButterfly,
  kStar,
  kCluster,
  kTorus,
  kTree,
  kRandom,
};

[[nodiscard]] std::string to_string(TopologyKind k);

/// A communication network: explicit graph + shortest-path oracle + the
/// parameters it was built from (for labeling experiment output).
struct Network {
  TopologyKind kind;
  std::string name;
  Graph graph;
  std::shared_ptr<const DistanceOracle> oracle;
  /// The parameters the builder was called with ("n", "alpha", "beta",
  /// "gamma", "dims", ...) — lets downstream factories (the registry's
  /// topology-aware batch-algorithm defaults) recover structure without
  /// parsing the display name.
  std::map<std::string, std::string> build_params;

  [[nodiscard]] NodeId num_nodes() const { return graph.num_nodes(); }
  [[nodiscard]] Weight dist(NodeId u, NodeId v) const {
    return oracle->dist(u, v);
  }
  [[nodiscard]] Weight diameter() const { return oracle->diameter(); }
};

/// Complete graph on n nodes, unit weights. Diameter 1.
[[nodiscard]] Network make_clique(NodeId n);

/// Path graph 0—1—…—(n-1), unit weights. Diameter n-1.
[[nodiscard]] Network make_line(NodeId n);

/// Cycle on n >= 3 nodes, unit weights.
[[nodiscard]] Network make_ring(NodeId n);

/// d-dimensional grid with the given extents (row-major node ids), unit
/// weights. make_grid({r, c}) is the 2-D mesh; the paper's "log n-dimensional
/// grid" is make_grid(std::vector<NodeId>(d, 2)) and friends.
[[nodiscard]] Network make_grid(const std::vector<NodeId>& extents);

/// d-dimensional torus (grid with wraparound edges), unit weights.
[[nodiscard]] Network make_torus(const std::vector<NodeId>& extents);

/// Hypercube with 2^d nodes; nodes adjacent iff ids differ in one bit.
[[nodiscard]] Network make_hypercube(int d);

/// d-dimensional butterfly: (d+1) levels of 2^d rows; straight and cross
/// edges between consecutive levels. n = (d+1) * 2^d.
[[nodiscard]] Network make_butterfly(int d);

/// Star of alpha rays with beta nodes each around a central node 0.
/// Node ids: center = 0; ray r position j (0-based, j=0 adjacent to the
/// center) is 1 + r*beta + j. All edges weight 1. n = 1 + alpha*beta.
[[nodiscard]] Network make_star(NodeId alpha, NodeId beta);
[[nodiscard]] NodeId star_node(NodeId alpha, NodeId beta, NodeId ray,
                               NodeId pos);

/// Cluster graph (§IV-D): alpha cliques of beta nodes (unit-weight edges);
/// node i=0 of each clique is its bridge node; bridge nodes of distinct
/// cliques are pairwise connected with edges of weight gamma >= beta.
/// Node ids: clique c member i is c*beta + i. n = alpha*beta.
[[nodiscard]] Network make_cluster(NodeId alpha, NodeId beta, Weight gamma);
[[nodiscard]] NodeId cluster_node(NodeId beta, NodeId clique, NodeId member);

/// Complete b-ary tree of the given depth (root = node 0, level order),
/// unit weights. n = (b^(depth+1) - 1) / (b - 1). The paper's grid lower
/// bound "also holds for trees"; trees exercise unique-path routing.
[[nodiscard]] Network make_tree(NodeId branching, NodeId depth);

/// Connected random graph: a random spanning tree plus `extra_edges`
/// uniformly random non-parallel edges, weights uniform in [1, max_weight].
[[nodiscard]] Network make_random_connected(NodeId n,
                                            std::int64_t extra_edges,
                                            Weight max_weight, Rng& rng);

/// Graph-only variant of make_random_connected — identical construction and
/// rng stream, but no oracle is built, so 50k+-node graphs stay cheap (the
/// registry pairs it with a LandmarkOracle under `routing=landmark`).
/// `extra_done` (optional) receives the post-clamp extra edge count.
[[nodiscard]] Graph make_random_connected_graph(NodeId n,
                                                std::int64_t extra_edges,
                                                Weight max_weight, Rng& rng,
                                                std::int64_t* extra_done =
                                                    nullptr);

}  // namespace dtm
