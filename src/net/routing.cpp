#include "net/routing.hpp"

#include <algorithm>
#include <queue>

namespace dtm {

RoutingTable::RoutingTable(const Graph& g) : n_(g.num_nodes()), graph_(&g) {
  next_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
               kNoNode);
  dist_.assign(next_.size(), kInfWeight);
  // One Dijkstra per destination, recording each node's parent toward the
  // destination; the parent IS the next hop.
  using Item = std::pair<Weight, NodeId>;
  for (NodeId dest = 0; dest < n_; ++dest) {
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist_[idx(dest, dest)] = 0;
    next_[idx(dest, dest)] = dest;
    pq.emplace(0, dest);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist_[idx(dest, u)]) continue;
      for (const auto& e : g.neighbors(u)) {
        const Weight nd = d + e.weight;
        auto& cur = dist_[idx(dest, e.to)];
        auto& hop = next_[idx(dest, e.to)];
        if (nd < cur) {
          cur = nd;
          hop = u;  // from e.to, step to u to get closer to dest
          pq.emplace(nd, e.to);
        } else if (nd == cur && u < hop) {
          hop = u;  // deterministic tie-break; u is a valid parent (equal d)
        }
      }
    }
  }
  for (std::size_t i = 0; i < dist_.size(); ++i)
    DTM_CHECK(dist_[i] < kInfWeight,
              "routing table requires a connected graph");
}

NodeId RoutingTable::next_hop(NodeId u, NodeId dest) const {
  DTM_REQUIRE(u >= 0 && u < n_ && dest >= 0 && dest < n_,
              "next_hop(" << u << "," << dest << ")");
  return next_[idx(dest, u)];
}

std::vector<NodeId> RoutingTable::path(NodeId u, NodeId dest) const {
  std::vector<NodeId> p{u};
  while (u != dest) {
    u = next_hop(u, dest);
    p.push_back(u);
    DTM_CHECK(p.size() <= static_cast<std::size_t>(n_) + 1,
              "routing loop between " << p.front() << " and " << dest);
  }
  return p;
}

Weight RoutingTable::dist(NodeId u, NodeId dest) const {
  DTM_REQUIRE(u >= 0 && u < n_ && dest >= 0 && dest < n_,
              "dist(" << u << "," << dest << ")");
  return dist_[idx(dest, u)];
}

Weight RoutingTable::edge_weight(NodeId u, NodeId v) const {
  for (const auto& e : graph_->neighbors(u))
    if (e.to == v) return e.weight;
  DTM_CHECK(false, "nodes " << u << " and " << v << " are not adjacent");
  return 0;
}

}  // namespace dtm
