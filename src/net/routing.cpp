#include "net/routing.hpp"

#include <algorithm>
#include <queue>

namespace dtm {

RoutingTable::RoutingTable(const Graph& g, std::size_t max_cached_destinations)
    : n_(g.num_nodes()),
      graph_(&g),
      capacity_(std::max<std::size_t>(1, max_cached_destinations)) {
  // Fail fast on disconnected inputs (the lazy Dijkstra would only notice
  // when the unreachable destination is first queried).
  DTM_CHECK(g.connected(), "routing table requires a connected graph");
  sorted_adj_.reserve(static_cast<std::size_t>(n_));
  for (NodeId u = 0; u < n_; ++u) {
    const auto nbrs = g.neighbors(u);
    std::vector<HalfEdge> sorted(nbrs.begin(), nbrs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const HalfEdge& a, const HalfEdge& b) { return a.to < b.to; });
    sorted_adj_.push_back(std::move(sorted));
  }
}

const RoutingTable::DestTable& RoutingTable::ensure(NodeId dest) const {
  const auto it = cache_.find(dest);
  if (it != cache_.end()) {
    ++stats_.hits;
    if (it->second.lru_pos != lru_.begin())
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second;
  }
  ++stats_.misses;
  if (cache_.size() >= capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }

  DestTable t;
  t.next.assign(static_cast<std::size_t>(n_), kNoNode);
  t.dist.assign(static_cast<std::size_t>(n_), kInfWeight);
  // One Dijkstra toward `dest`, recording each node's parent toward the
  // destination; the parent IS the next hop. Identical relaxation and
  // tie-break rules to the original eager build.
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  t.dist[static_cast<std::size_t>(dest)] = 0;
  t.next[static_cast<std::size_t>(dest)] = dest;
  pq.emplace(0, dest);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > t.dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& e : sorted_adj_[static_cast<std::size_t>(u)]) {
      const Weight nd = d + e.weight;
      auto& cur = t.dist[static_cast<std::size_t>(e.to)];
      auto& hop = t.next[static_cast<std::size_t>(e.to)];
      if (nd < cur) {
        cur = nd;
        hop = u;  // from e.to, step to u to get closer to dest
        pq.emplace(nd, e.to);
      } else if (nd == cur && u < hop) {
        hop = u;  // deterministic tie-break; u is a valid parent (equal d)
      }
    }
  }

  lru_.push_front(dest);
  t.lru_pos = lru_.begin();
  return cache_.emplace(dest, std::move(t)).first->second;
}

NodeId RoutingTable::next_hop(NodeId u, NodeId dest) const {
  DTM_REQUIRE(u >= 0 && u < n_ && dest >= 0 && dest < n_,
              "next_hop(" << u << "," << dest << ")");
  return ensure(dest).next[static_cast<std::size_t>(u)];
}

std::vector<NodeId> RoutingTable::path(NodeId u, NodeId dest) const {
  DTM_REQUIRE(u >= 0 && u < n_ && dest >= 0 && dest < n_,
              "path(" << u << "," << dest << ")");
  const DestTable& t = ensure(dest);
  std::vector<NodeId> p{u};
  while (u != dest) {
    u = t.next[static_cast<std::size_t>(u)];
    p.push_back(u);
    DTM_CHECK(p.size() <= static_cast<std::size_t>(n_) + 1,
              "routing loop between " << p.front() << " and " << dest);
  }
  return p;
}

Weight RoutingTable::dist(NodeId u, NodeId dest) const {
  DTM_REQUIRE(u >= 0 && u < n_ && dest >= 0 && dest < n_,
              "dist(" << u << "," << dest << ")");
  return ensure(dest).dist[static_cast<std::size_t>(u)];
}

Weight RoutingTable::edge_weight(NodeId u, NodeId v) const {
  DTM_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_,
              "edge_weight(" << u << "," << v << ")");
  const auto& adj = sorted_adj_[static_cast<std::size_t>(u)];
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const HalfEdge& e, NodeId target) { return e.to < target; });
  DTM_CHECK(it != adj.end() && it->to == v,
            "nodes " << u << " and " << v << " are not adjacent");
  return it->weight;
}

}  // namespace dtm
