#include "net/routing.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace dtm {

RoutingTable::RoutingTable(const Graph& g, std::size_t max_cached_destinations)
    : n_(g.num_nodes()),
      graph_(&g),
      capacity_(std::max<std::size_t>(1, max_cached_destinations)) {
  // Fail fast on disconnected inputs (the lazy Dijkstra would only notice
  // when the unreachable destination is first queried).
  DTM_CHECK(g.connected(), "routing table requires a connected graph");
  sorted_adj_.reserve(static_cast<std::size_t>(n_));
  for (NodeId u = 0; u < n_; ++u) {
    const auto nbrs = g.neighbors(u);
    std::vector<HalfEdge> sorted(nbrs.begin(), nbrs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const HalfEdge& a, const HalfEdge& b) { return a.to < b.to; });
    sorted_adj_.push_back(std::move(sorted));
  }
}

const RoutingTable::DestTable& RoutingTable::ensure(NodeId dest) const {
  const auto it = cache_.find(dest);
  if (it != cache_.end()) {
    ++stats_.hits;
    if (it->second.lru_pos != lru_.begin())
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second;
  }
  ++stats_.misses;
  if (cache_.size() >= capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }

  DestTable t;
  t.next.assign(static_cast<std::size_t>(n_), kNoNode);
  t.dist.assign(static_cast<std::size_t>(n_), kInfWeight);
  // One Dijkstra toward `dest`, recording each node's parent toward the
  // destination; the parent IS the next hop. Identical relaxation and
  // tie-break rules to the original eager build.
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  t.dist[static_cast<std::size_t>(dest)] = 0;
  t.next[static_cast<std::size_t>(dest)] = dest;
  pq.emplace(0, dest);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > t.dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& e : sorted_adj_[static_cast<std::size_t>(u)]) {
      const Weight nd = d + e.weight;
      auto& cur = t.dist[static_cast<std::size_t>(e.to)];
      auto& hop = t.next[static_cast<std::size_t>(e.to)];
      if (nd < cur) {
        cur = nd;
        hop = u;  // from e.to, step to u to get closer to dest
        pq.emplace(nd, e.to);
      } else if (nd == cur && u < hop) {
        hop = u;  // deterministic tie-break; u is a valid parent (equal d)
      }
    }
  }

  lru_.push_front(dest);
  t.lru_pos = lru_.begin();
  return cache_.emplace(dest, std::move(t)).first->second;
}

NodeId RoutingTable::next_hop(NodeId u, NodeId dest) const {
  DTM_REQUIRE(u >= 0 && u < n_ && dest >= 0 && dest < n_,
              "next_hop(" << u << "," << dest << ")");
  return ensure(dest).next[static_cast<std::size_t>(u)];
}

std::vector<NodeId> RoutingTable::path(NodeId u, NodeId dest) const {
  DTM_REQUIRE(u >= 0 && u < n_ && dest >= 0 && dest < n_,
              "path(" << u << "," << dest << ")");
  const DestTable& t = ensure(dest);
  std::vector<NodeId> p{u};
  while (u != dest) {
    u = t.next[static_cast<std::size_t>(u)];
    p.push_back(u);
    DTM_CHECK(p.size() <= static_cast<std::size_t>(n_) + 1,
              "routing loop between " << p.front() << " and " << dest);
  }
  return p;
}

Weight RoutingTable::dist(NodeId u, NodeId dest) const {
  DTM_REQUIRE(u >= 0 && u < n_ && dest >= 0 && dest < n_,
              "dist(" << u << "," << dest << ")");
  return ensure(dest).dist[static_cast<std::size_t>(u)];
}

Weight RoutingTable::edge_weight(NodeId u, NodeId v) const {
  DTM_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_,
              "edge_weight(" << u << "," << v << ")");
  const auto& adj = sorted_adj_[static_cast<std::size_t>(u)];
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const HalfEdge& e, NodeId target) { return e.to < target; });
  DTM_CHECK(it != adj.end() && it->to == v,
            "nodes " << u << " and " << v << " are not adjacent");
  return it->weight;
}

// ---------------------------------------------------------------------------
// Landmark / hierarchical routing

RoutingMode parse_routing_mode(const std::string& v) {
  if (v == "exact") return RoutingMode::kExact;
  if (v == "landmark") return RoutingMode::kLandmark;
  if (v == "verify") return RoutingMode::kVerify;
  DTM_CHECK(false, "unknown routing mode '"
                       << v << "' (expected exact|landmark|verify)");
  return RoutingMode::kExact;
}

std::string to_string(RoutingMode m) {
  switch (m) {
    case RoutingMode::kExact: return "exact";
    case RoutingMode::kLandmark: return "landmark";
    case RoutingMode::kVerify: return "verify";
  }
  return "exact";
}

namespace {

/// One Dijkstra from `src`, writing dist and next-hop-toward-src rows with
/// the same relaxation + smaller-parent tie-break as RoutingTable::ensure
/// (so landmark tree walks agree with exact tables wherever both apply).
void sssp_with_hops(const Graph& g, NodeId src, Weight* dist, NodeId* hop) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::fill(dist, dist + n, kInfWeight);
  std::fill(hop, hop + n, kNoNode);
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0;
  hop[static_cast<std::size_t>(src)] = src;
  pq.emplace(0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& e : g.neighbors(u)) {
      const Weight nd = d + e.weight;
      auto& cur = dist[static_cast<std::size_t>(e.to)];
      auto& h = hop[static_cast<std::size_t>(e.to)];
      if (nd < cur) {
        cur = nd;
        h = u;
        pq.emplace(nd, e.to);
      } else if (nd == cur && u < h) {
        h = u;
      }
    }
  }
}

std::int32_t default_num_landmarks(NodeId n) {
  const auto l = static_cast<std::int32_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  return std::clamp(l, 1, 64);
}

}  // namespace

LandmarkRouter::LandmarkRouter(const Graph& g, LandmarkOptions opts)
    : n_(g.num_nodes()), intra_(g, opts.intra_cache) {
  // intra_'s constructor already checked connectivity.
  std::int32_t want = opts.num_landmarks > 0 ? opts.num_landmarks
                                             : default_num_landmarks(n_);
  want = std::min(want, static_cast<std::int32_t>(n_));
  const auto nn = static_cast<std::size_t>(n_);
  ldist_.resize(static_cast<std::size_t>(want) * nn);
  lhop_.resize(static_cast<std::size_t>(want) * nn);

  // Greedy farthest-point selection: node 0 seeds; each subsequent landmark
  // is the node maximizing distance to the chosen set (ties: smaller id).
  std::vector<Weight> mindist(nn, kInfWeight);
  for (std::int32_t i = 0; i < want; ++i) {
    NodeId next = 0;
    if (i > 0) {
      Weight best = -1;
      for (NodeId v = 0; v < n_; ++v) {
        const Weight d = mindist[static_cast<std::size_t>(v)];
        if (d > best) {
          best = d;
          next = v;
        }
      }
      if (best == 0) break;  // every node IS a landmark already
    }
    landmarks_.push_back(next);
    Weight* drow = ldist_.data() + static_cast<std::size_t>(i) * nn;
    NodeId* hrow = lhop_.data() + static_cast<std::size_t>(i) * nn;
    sssp_with_hops(g, next, drow, hrow);
    for (std::size_t v = 0; v < nn; ++v)
      mindist[v] = std::min(mindist[v], drow[v]);
  }
  const auto kL = static_cast<std::int32_t>(landmarks_.size());
  ldist_.resize(static_cast<std::size_t>(kL) * nn);
  lhop_.resize(static_cast<std::size_t>(kL) * nn);

  // Home-cluster assignment (nearest landmark, ties toward the smaller
  // landmark index) and the metric bounds.
  home_.assign(nn, 0);
  diameter_bound_ = kInfWeight;
  for (std::int32_t l = 0; l < kL; ++l) {
    const Weight* drow = ldist(l);
    Weight ecc = 0;
    for (std::size_t v = 0; v < nn; ++v) {
      ecc = std::max(ecc, drow[v]);
      if (drow[v] < ldist(home_[v])[v]) home_[v] = l;
    }
    diameter_bound_ = std::min(diameter_bound_, 2 * ecc);
  }
  for (std::size_t v = 0; v < nn; ++v)
    radius_ = std::max(radius_, ldist(home_[v])[v]);
}

Weight LandmarkRouter::dist(NodeId u, NodeId v) const {
  DTM_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_,
              "dist(" << u << "," << v << ")");
  if (u == v) return 0;
  if (home_[static_cast<std::size_t>(u)] ==
      home_[static_cast<std::size_t>(v)]) {
    ++stats_.intra_queries;
    return intra_.dist(u, v);
  }
  ++stats_.inter_queries;
  Weight best = kInfWeight;
  const auto kL = num_landmarks();
  for (std::int32_t l = 0; l < kL; ++l) {
    const Weight* drow = ldist(l);
    best = std::min(best, drow[static_cast<std::size_t>(u)] +
                              drow[static_cast<std::size_t>(v)]);
  }
  return best;
}

std::int32_t LandmarkRouter::best_landmark(NodeId u, NodeId v) const {
  std::int32_t bl = 0;
  Weight best = kInfWeight;
  const auto kL = num_landmarks();
  for (std::int32_t l = 0; l < kL; ++l) {
    const Weight* drow = ldist(l);
    const Weight d = drow[static_cast<std::size_t>(u)] +
                     drow[static_cast<std::size_t>(v)];
    if (d < best) {
      best = d;
      bl = l;
    }
  }
  return bl;
}

std::vector<NodeId> LandmarkRouter::walk_to_landmark(NodeId u,
                                                     std::int32_t l) const {
  const NodeId* hrow = lhop(l);
  const NodeId lm = landmarks_[static_cast<std::size_t>(l)];
  std::vector<NodeId> p{u};
  while (u != lm) {
    u = hrow[static_cast<std::size_t>(u)];
    p.push_back(u);
    DTM_CHECK(p.size() <= static_cast<std::size_t>(n_) + 1,
              "landmark tree loop between " << p.front() << " and " << lm);
  }
  return p;
}

std::vector<NodeId> LandmarkRouter::path(NodeId u, NodeId v) const {
  DTM_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_,
              "path(" << u << "," << v << ")");
  if (u == v) return {u};
  if (home_[static_cast<std::size_t>(u)] ==
      home_[static_cast<std::size_t>(v)]) {
    ++stats_.intra_queries;
    return intra_.path(u, v);
  }
  ++stats_.inter_queries;
  const std::int32_t l = best_landmark(u, v);
  std::vector<NodeId> p = walk_to_landmark(u, l);       // u ... landmark
  const std::vector<NodeId> back = walk_to_landmark(v, l);  // v ... landmark
  // Append landmark ... v, trimming immediate backtracking (a, x, a -> a):
  // each trim removes a there-and-back edge pair, so the walk only gets
  // shorter than the reported d(u,l) + d(l,v).
  for (auto it = back.rbegin() + 1; it != back.rend(); ++it) {
    if (p.size() >= 2 && p[p.size() - 2] == *it)
      p.pop_back();
    else
      p.push_back(*it);
  }
  return p;
}

NodeId LandmarkRouter::next_hop(NodeId u, NodeId v) const {
  if (u == v) return u;
  if (home_[static_cast<std::size_t>(u)] ==
      home_[static_cast<std::size_t>(v)]) {
    ++stats_.intra_queries;
    return intra_.next_hop(u, v);
  }
  return path(u, v)[1];
}

Weight LandmarkRouter::path_weight(const std::vector<NodeId>& p) const {
  DTM_REQUIRE(!p.empty(), "path_weight on empty path");
  Weight total = 0;
  for (std::size_t i = 1; i < p.size(); ++i)
    total += intra_.edge_weight(p[i - 1], p[i]);
  return total;
}

std::size_t LandmarkRouter::memory_bytes() const {
  return ldist_.size() * sizeof(Weight) + lhop_.size() * sizeof(NodeId) +
         home_.size() * sizeof(std::int32_t) +
         landmarks_.size() * sizeof(NodeId) + intra_.memory_bytes();
}

// ---------------------------------------------------------------------------
// LandmarkOracle

LandmarkOracle::LandmarkOracle(std::shared_ptr<const Graph> graph,
                               LandmarkOptions opts,
                               std::shared_ptr<const DistanceOracle> exact,
                               double max_stretch)
    : graph_(std::move(graph)),
      router_(*graph_, opts),
      exact_(std::move(exact)),
      max_stretch_(max_stretch) {
  DTM_REQUIRE(max_stretch_ >= 1.0, "max_stretch " << max_stretch_ << " < 1");
  diameter_ = router_.diameter_bound();
  if (exact_) construction_sweep();
}

Weight LandmarkOracle::dist(NodeId u, NodeId v) const {
  const Weight d = router_.dist(u, v);
  if (exact_) check(u, v, d);
  return d;
}

void LandmarkOracle::check(NodeId u, NodeId v, Weight d) const {
  ++vstats_.dist_checks;
  const Weight e = exact_->dist(u, v);
  DTM_CHECK(d >= e, "landmark dist(" << u << "," << v << ") = " << d
                                     << " below exact " << e);
  if (e == 0) {
    DTM_CHECK(d == 0, "nonzero landmark dist " << d << " for coincident "
                                               << u << "," << v);
    return;
  }
  const double stretch =
      static_cast<double>(d) / static_cast<double>(e);
  vstats_.max_stretch_seen = std::max(vstats_.max_stretch_seen, stretch);
  DTM_CHECK(stretch <= max_stretch_ + 1e-9,
            "landmark stretch " << stretch << " for (" << u << "," << v
                                << ") exceeds bound " << max_stretch_);
}

void LandmarkOracle::construction_sweep() {
  // Prove route validity once up front: every checked pair's realized path
  // must be a real walk (adjacent hops — path_weight asserts), start and
  // end at the endpoints, and cost no more than the reported distance.
  // All pairs on small graphs; a deterministic stride sample on larger
  // ones (verify mode is for pinned small graphs, but stay bounded).
  const NodeId n = router_.num_nodes();
  const auto check_pair = [&](NodeId u, NodeId v) {
    const Weight d = router_.dist(u, v);
    check(u, v, d);
    const auto p = router_.path(u, v);
    DTM_CHECK(p.front() == u && p.back() == v,
              "path(" << u << "," << v << ") endpoints " << p.front() << ","
                      << p.back());
    const Weight w = router_.path_weight(p);
    DTM_CHECK(w <= d, "path(" << u << "," << v << ") realizes " << w
                              << " above reported dist " << d);
    DTM_CHECK(w >= exact_->dist(u, v), "path weight below exact distance");
    ++vstats_.path_checks;
  };
  if (n <= 128) {
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v)
        check_pair(u, v);
    return;
  }
  // Deterministic pseudo-random pair sample (splitmix64 walk).
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const auto draw = [&x, n]() {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<NodeId>((z ^ (z >> 31)) % static_cast<std::uint64_t>(n));
  };
  for (int i = 0; i < 4096; ++i) {
    const NodeId u = draw();
    const NodeId v = draw();
    if (u != v) check_pair(u, v);
  }
}

}  // namespace dtm
