#include "net/sparse_cover.hpp"

#include <algorithm>
#include <numeric>

namespace dtm {

namespace {

std::int32_t ceil_log2(std::int64_t x) {
  DTM_REQUIRE(x >= 1, "ceil_log2(" << x << ")");
  std::int32_t l = 0;
  std::int64_t p = 1;
  while (p < x) {
    p <<= 1;
    ++l;
  }
  return l;
}

}  // namespace

SparseCover::SparseCover(const Graph& g, const DistanceOracle& oracle,
                         const Options& opts) {
  const NodeId n = g.num_nodes();
  const Weight d = std::max<Weight>(oracle.diameter(), 1);
  const std::int32_t h1 = ceil_log2(d) + 1;
  std::int32_t max_random = opts.max_random_sublayers;
  if (max_random <= 0) max_random = 4 * ceil_log2(std::max<NodeId>(n, 2)) + 8;

  Rng rng(opts.seed);
  layers_.resize(static_cast<std::size_t>(h1));
  home_.assign(static_cast<std::size_t>(h1),
               std::vector<std::pair<std::int32_t, std::int32_t>>(
                   static_cast<std::size_t>(n), {-1, -1}));
  for (std::int32_t l = 0; l < h1; ++l) {
    layers_[static_cast<std::size_t>(l)].radius = Weight{1} << l;
    build_layer(g, oracle, l, rng, max_random);
  }
}

void SparseCover::build_layer(const Graph& g, const DistanceOracle& oracle,
                              std::int32_t l, Rng& rng,
                              std::int32_t max_random) {
  const NodeId n = g.num_nodes();
  auto& layer = layers_[static_cast<std::size_t>(l)];
  auto& home = home_[static_cast<std::size_t>(l)];
  const Weight r = layer.radius;

  std::vector<bool> home_done(static_cast<std::size_t>(n), false);
  NodeId remaining = n;

  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  std::int32_t sublayer_count = 0;
  while (remaining > 0) {
    // Safety valve: random carving makes progress every sub-layer (the first
    // uncovered center always gets home-covered), so this loop terminates in
    // at most n sub-layers; max_random only controls when we stop shuffling
    // and switch to deterministic uncovered-first ordering.
    const bool randomized = sublayer_count < max_random;
    if (randomized) {
      rng.shuffle(order);
    } else {
      std::stable_partition(order.begin(), order.end(), [&](NodeId u) {
        return !home_done[static_cast<std::size_t>(u)];
      });
    }

    CoverSubLayer sub;
    sub.cluster_of.assign(static_cast<std::size_t>(n), -1);

    for (const NodeId c : order) {
      if (home_done[static_cast<std::size_t>(c)]) continue;
      if (sub.cluster_of[static_cast<std::size_t>(c)] >= 0) continue;
      // Carve the still-unassigned part of ball(c, 2R).
      const auto ball = g.sssp_within(c, 2 * r);
      CoverCluster cl;
      cl.leader = c;
      for (NodeId u = 0; u < n; ++u) {
        if (ball[static_cast<std::size_t>(u)] < kInfWeight &&
            sub.cluster_of[static_cast<std::size_t>(u)] < 0) {
          sub.cluster_of[static_cast<std::size_t>(u)] =
              static_cast<std::int32_t>(sub.clusters.size());
          cl.nodes.push_back(u);
        }
      }
      sub.clusters.push_back(std::move(cl));
    }
    // Nodes untouched by any carve (all were home-covered or swallowed):
    // singleton clusters keep the sub-layer a partition of V.
    for (NodeId u = 0; u < n; ++u) {
      if (sub.cluster_of[static_cast<std::size_t>(u)] < 0) {
        sub.cluster_of[static_cast<std::size_t>(u)] =
            static_cast<std::int32_t>(sub.clusters.size());
        sub.clusters.push_back({u, {u}, 0});
      }
    }
    // Weak-diameter upper bound: members sit within 2R of the leader, so
    // pairwise distance is at most twice the max leader distance.
    for (auto& cl : sub.clusters) {
      Weight to_leader = 0;
      for (const NodeId u : cl.nodes)
        to_leader = std::max(to_leader, oracle.dist(cl.leader, u));
      cl.weak_diameter = 2 * to_leader;
      DTM_CHECK(cl.weak_diameter <= 4 * r,
                "cluster diameter bound violated at layer " << l);
    }
    // Home-coverage scan: u is covered if its (R-1)-neighborhood lies inside
    // u's cluster in this sub-layer.
    const std::int32_t si = static_cast<std::int32_t>(layer.sublayers.size());
    for (NodeId u = 0; u < n; ++u) {
      if (home_done[static_cast<std::size_t>(u)]) continue;
      const std::int32_t cu = sub.cluster_of[static_cast<std::size_t>(u)];
      const auto nb = g.sssp_within(u, r - 1);
      bool inside = true;
      for (NodeId v = 0; v < n && inside; ++v) {
        if (nb[static_cast<std::size_t>(v)] < kInfWeight &&
            sub.cluster_of[static_cast<std::size_t>(v)] != cu) {
          inside = false;
        }
      }
      if (inside) {
        home_done[static_cast<std::size_t>(u)] = true;
        home[static_cast<std::size_t>(u)] = {si, cu};
        --remaining;
      }
    }
    layer.sublayers.push_back(std::move(sub));
    ++sublayer_count;
    DTM_CHECK(sublayer_count <= n + 1,
              "sparse cover failed to converge at layer " << l);
  }
}

const CoverCluster& SparseCover::cluster(const ClusterRef& ref) const {
  DTM_REQUIRE(ref.valid(), "invalid cluster ref");
  const auto& layer = layers_[static_cast<std::size_t>(ref.layer)];
  const auto& sub = layer.sublayers[static_cast<std::size_t>(ref.sublayer)];
  return sub.clusters[static_cast<std::size_t>(ref.cluster)];
}

ClusterRef SparseCover::home_cluster(NodeId u, std::int32_t l) const {
  DTM_REQUIRE(l >= 0 && l < num_layers(), "layer " << l);
  const auto& [si, ci] =
      home_[static_cast<std::size_t>(l)][static_cast<std::size_t>(u)];
  DTM_CHECK(si >= 0, "node " << u << " has no home cluster at layer " << l);
  return {l, si, ci};
}

std::int32_t SparseCover::lowest_layer_covering(Weight y) const {
  DTM_REQUIRE(y >= 0, "coverage radius " << y);
  const std::int32_t l = ceil_log2(y + 1);
  return std::min(l, num_layers() - 1);
}

std::int32_t SparseCover::max_sublayers() const {
  std::int32_t m = 0;
  for (const auto& l : layers_)
    m = std::max(m, static_cast<std::int32_t>(l.sublayers.size()));
  return m;
}

}  // namespace dtm
