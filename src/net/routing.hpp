// Explicit shortest-path routing: per-destination next-hop tables, computed
// lazily.
//
// The baseline model (paper §II) abstracts object motion as "arrives after
// dist(u,v) steps". The congestion extension (paper §VI names bounded link
// capacity as an open question) needs objects to physically occupy edges,
// which requires hop-by-hop paths. A destination's table (one Dijkstra,
// O(n) memory) is built on first use and memoized in an LRU-bounded cache,
// so large topologies no longer pay the O(n^2) all-destinations cost up
// front — replays that only ever route toward a few hot destinations stay
// O(hot * n). Tie-breaks are deterministic (smaller parent id wins), so a
// lazily built table answers exactly like an eagerly built one.
//
// Not thread-safe: queries mutate the cache. Give each thread its own table.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "net/graph.hpp"

namespace dtm {

class RoutingTable {
 public:
  /// `max_cached_destinations` bounds the memo: at most that many
  /// per-destination tables are resident; least-recently-queried tables are
  /// evicted (and transparently recomputed on the next query).
  explicit RoutingTable(const Graph& g,
                        std::size_t max_cached_destinations = 512);

  /// First hop on a shortest path from `u` toward `dest` (u itself when
  /// u == dest). Deterministic: ties broken toward the smaller node id.
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest) const;

  /// Full node sequence u -> ... -> dest (inclusive).
  [[nodiscard]] std::vector<NodeId> path(NodeId u, NodeId dest) const;

  /// Shortest-path distance (same metric the hops realize).
  [[nodiscard]] Weight dist(NodeId u, NodeId dest) const;

  [[nodiscard]] NodeId num_nodes() const { return n_; }

  /// Weight of edge {u, v}; u and v must be adjacent. Binary search over
  /// sorted adjacency: O(log deg(u)).
  [[nodiscard]] Weight edge_weight(NodeId u, NodeId v) const;

  // ---- Cache introspection (tests, benchmarks) ----

  struct CacheStats {
    std::int64_t hits = 0;       ///< queries served by a resident table
    std::int64_t misses = 0;     ///< queries that ran a Dijkstra
    std::int64_t evictions = 0;  ///< tables dropped to respect the bound
  };
  [[nodiscard]] const CacheStats& cache_stats() const { return stats_; }
  [[nodiscard]] std::size_t cached_destinations() const {
    return cache_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Bytes held by resident per-destination tables.
  [[nodiscard]] std::size_t memory_bytes() const {
    return cache_.size() * static_cast<std::size_t>(n_) *
           (sizeof(NodeId) + sizeof(Weight));
  }

 private:
  struct DestTable {
    std::vector<NodeId> next;  ///< next[u] = hop from u toward the dest
    std::vector<Weight> dist;  ///< dist[u] = shortest distance to the dest
    std::list<NodeId>::iterator lru_pos;
  };

  /// Returns the (possibly freshly computed) table for `dest`, promoting it
  /// to most-recently-used and evicting the LRU entry past capacity.
  const DestTable& ensure(NodeId dest) const;

  NodeId n_;
  const Graph* graph_;
  /// Per-node adjacency sorted by neighbor id, for edge_weight lookups.
  std::vector<std::vector<HalfEdge>> sorted_adj_;

  std::size_t capacity_;
  mutable std::unordered_map<NodeId, DestTable> cache_;
  mutable std::list<NodeId> lru_;  ///< front = most recently used
  mutable CacheStats stats_;
};

}  // namespace dtm
