// Explicit shortest-path routing: per-destination next-hop tables, computed
// lazily, plus cluster-level landmark routing for graphs too large for
// exact all-pairs state.
//
// The baseline model (paper §II) abstracts object motion as "arrives after
// dist(u,v) steps". The congestion extension (paper §VI names bounded link
// capacity as an open question) needs objects to physically occupy edges,
// which requires hop-by-hop paths. A destination's table (one Dijkstra,
// O(n) memory) is built on first use and memoized in an LRU-bounded cache,
// so large topologies no longer pay the O(n^2) all-destinations cost up
// front — replays that only ever route toward a few hot destinations stay
// O(hot * n). Tie-breaks are deterministic (smaller parent id wins), so a
// lazily built table answers exactly like an eagerly built one.
//
// LandmarkRouter scales past even the lazy table: L landmark nodes (greedy
// farthest-point, deterministic) each carry one SSSP tree (dist + next-hop
// toward the landmark, O(L * n) memory total); every node is assigned to
// its nearest landmark's cluster. Same-cluster queries use exact global
// shortest paths through a shared LRU RoutingTable (cluster-local
// destinations are few and hot, so the cache stays small); cross-cluster
// queries answer d'(u,v) = min_l dist(u,l) + dist(l,v) with the realized
// route u -> l* -> v stitched from the two SSSP trees (backtracking
// trimmed, so the walk only gets shorter than the reported distance). This
// is the fog-cloud hierarchical shape of Adhikari/Busch/Poudel (PAPERS.md):
// exact within a cluster, via-landmark between clusters, stretch bounded in
// practice by the cluster radii.
//
// LandmarkOracle adapts the router to the engine's DistanceOracle seam
// behind the topology-spec knob `routing=exact|landmark|verify`
// (sim/registry.cpp). verify keeps the exact oracle alongside and proves,
// per query and in a construction-time sweep, that landmark routes are
// valid walks no longer than the reported distance and that the stretch
// stays within a configured bound — the cross-check mode for pinned small
// graphs; landmark mode drops the exact oracle entirely, which is what lets
// 50k+-node random graphs run without the O(n^2) APSP wall.
//
// Not thread-safe: queries mutate caches. Give each thread its own table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/graph.hpp"

namespace dtm {

class RoutingTable {
 public:
  /// `max_cached_destinations` bounds the memo: at most that many
  /// per-destination tables are resident; least-recently-queried tables are
  /// evicted (and transparently recomputed on the next query).
  explicit RoutingTable(const Graph& g,
                        std::size_t max_cached_destinations = 512);

  /// First hop on a shortest path from `u` toward `dest` (u itself when
  /// u == dest). Deterministic: ties broken toward the smaller node id.
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest) const;

  /// Full node sequence u -> ... -> dest (inclusive).
  [[nodiscard]] std::vector<NodeId> path(NodeId u, NodeId dest) const;

  /// Shortest-path distance (same metric the hops realize).
  [[nodiscard]] Weight dist(NodeId u, NodeId dest) const;

  [[nodiscard]] NodeId num_nodes() const { return n_; }

  /// Weight of edge {u, v}; u and v must be adjacent. Binary search over
  /// sorted adjacency: O(log deg(u)).
  [[nodiscard]] Weight edge_weight(NodeId u, NodeId v) const;

  // ---- Cache introspection (tests, benchmarks, serve metrics) ----

  struct CacheStats {
    std::int64_t hits = 0;       ///< queries served by a resident table
    std::int64_t misses = 0;     ///< queries that ran a Dijkstra
    std::int64_t evictions = 0;  ///< tables dropped to respect the bound
  };
  [[nodiscard]] const CacheStats& cache_stats() const { return stats_; }
  [[nodiscard]] std::size_t cached_destinations() const {
    return cache_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Bytes held by resident per-destination tables.
  [[nodiscard]] std::size_t memory_bytes() const {
    return cache_.size() * static_cast<std::size_t>(n_) *
           (sizeof(NodeId) + sizeof(Weight));
  }

 private:
  struct DestTable {
    std::vector<NodeId> next;  ///< next[u] = hop from u toward the dest
    std::vector<Weight> dist;  ///< dist[u] = shortest distance to the dest
    std::list<NodeId>::iterator lru_pos;
  };

  /// Returns the (possibly freshly computed) table for `dest`, promoting it
  /// to most-recently-used and evicting the LRU entry past capacity.
  const DestTable& ensure(NodeId dest) const;

  NodeId n_;
  const Graph* graph_;
  /// Per-node adjacency sorted by neighbor id, for edge_weight lookups.
  std::vector<std::vector<HalfEdge>> sorted_adj_;

  std::size_t capacity_;
  mutable std::unordered_map<NodeId, DestTable> cache_;
  mutable std::list<NodeId> lru_;  ///< front = most recently used
  mutable CacheStats stats_;
};

// ---------------------------------------------------------------------------
// Landmark / hierarchical routing

/// Topology-spec routing knob (`routing=` on every topology kind).
enum class RoutingMode : std::uint8_t {
  kExact,     ///< the builder's native oracle (closed-form or APSP)
  kLandmark,  ///< LandmarkOracle only — no exact oracle is built at all
  kVerify,    ///< landmark answers cross-checked against exact per query
};

[[nodiscard]] RoutingMode parse_routing_mode(const std::string& v);
[[nodiscard]] std::string to_string(RoutingMode m);

struct LandmarkOptions {
  /// Landmark count; 0 = ceil(sqrt(n)) clamped to [1, 64].
  std::int32_t num_landmarks = 0;
  /// LRU bound for the shared intra-cluster exact RoutingTable.
  std::size_t intra_cache = 64;
};

class LandmarkRouter {
 public:
  /// `g` must outlive the router. Requires a connected graph. Build cost:
  /// L Dijkstras (landmark selection is greedy farthest-point from node 0,
  /// deterministic ties toward smaller ids).
  explicit LandmarkRouter(const Graph& g, LandmarkOptions opts = {});

  /// Exact distance for same-cluster pairs; the via-landmark upper bound
  /// min_l dist(u,l) + dist(l,v) otherwise. Always >= the true distance.
  [[nodiscard]] Weight dist(NodeId u, NodeId v) const;

  /// A valid walk u -> ... -> v realizing at most dist(u, v): exact
  /// shortest path within a cluster, the (trimmed) stitched tree walk
  /// through the best landmark across clusters.
  [[nodiscard]] std::vector<NodeId> path(NodeId u, NodeId v) const;

  /// First hop of path(u, v) (u itself when u == v).
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId v) const;

  /// Sum of edge weights along `p`, asserting every consecutive pair is
  /// adjacent — the walk-validity check verify mode runs.
  [[nodiscard]] Weight path_weight(const std::vector<NodeId>& p) const;

  [[nodiscard]] NodeId num_nodes() const { return n_; }
  [[nodiscard]] std::int32_t num_landmarks() const {
    return static_cast<std::int32_t>(landmarks_.size());
  }
  [[nodiscard]] NodeId landmark(std::int32_t i) const {
    return landmarks_[static_cast<std::size_t>(i)];
  }
  /// Index (into landmarks) of v's home landmark.
  [[nodiscard]] std::int32_t home(NodeId v) const {
    return home_[static_cast<std::size_t>(v)];
  }
  /// max over v of dist(v, home landmark) — the stretch driver.
  [[nodiscard]] Weight radius() const { return radius_; }
  /// Upper bound on the d' metric's diameter: min_l 2 * ecc(l). Valid for
  /// every value this router returns (and >= the true graph diameter).
  [[nodiscard]] Weight diameter_bound() const { return diameter_bound_; }

  struct Stats {
    std::int64_t intra_queries = 0;  ///< same-cluster (exact) answers
    std::int64_t inter_queries = 0;  ///< via-landmark answers
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RoutingTable::CacheStats& intra_cache_stats() const {
    return intra_.cache_stats();
  }
  [[nodiscard]] const RoutingTable& intra_table() const { return intra_; }
  /// Bytes held by the landmark tables plus the resident intra tables.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  /// Row pointers into the L x n landmark tables.
  [[nodiscard]] const Weight* ldist(std::int32_t l) const {
    return ldist_.data() + static_cast<std::size_t>(l) *
                               static_cast<std::size_t>(n_);
  }
  [[nodiscard]] const NodeId* lhop(std::int32_t l) const {
    return lhop_.data() + static_cast<std::size_t>(l) *
                              static_cast<std::size_t>(n_);
  }
  /// argmin_l dist(u,l) + dist(l,v), ties toward the smaller index.
  [[nodiscard]] std::int32_t best_landmark(NodeId u, NodeId v) const;
  /// Tree walk u -> ... -> landmark(l) along l's SSSP next-hops.
  [[nodiscard]] std::vector<NodeId> walk_to_landmark(NodeId u,
                                                     std::int32_t l) const;

  NodeId n_;
  std::vector<NodeId> landmarks_;
  std::vector<Weight> ldist_;       ///< row-major L x n
  std::vector<NodeId> lhop_;        ///< row-major L x n
  std::vector<std::int32_t> home_;  ///< n: landmark index
  Weight radius_ = 0;
  Weight diameter_bound_ = 0;
  RoutingTable intra_;
  mutable Stats stats_;
};

/// DistanceOracle adapter over a LandmarkRouter. Owns a copy of the graph
/// (Network moves around by value; the oracle must not dangle into it).
/// With `exact` non-null the oracle runs in verify mode: a construction
/// sweep checks path validity + stretch over all pairs (small graphs) or a
/// deterministic sample, and every dist() query re-checks
/// exact <= landmark <= max_stretch * exact.
class LandmarkOracle final : public DistanceOracle {
 public:
  LandmarkOracle(std::shared_ptr<const Graph> graph, LandmarkOptions opts,
                 std::shared_ptr<const DistanceOracle> exact = nullptr,
                 double max_stretch = 3.0);

  [[nodiscard]] Weight dist(NodeId u, NodeId v) const override;
  /// An upper bound valid for every dist() this oracle returns (consumers
  /// use diameter as a scale: greedy-uniform's beta, dist-bucket timeouts).
  [[nodiscard]] Weight diameter() const override { return diameter_; }
  [[nodiscard]] NodeId num_nodes() const override {
    return router_.num_nodes();
  }

  [[nodiscard]] const LandmarkRouter& router() const { return router_; }
  [[nodiscard]] bool verifying() const { return exact_ != nullptr; }
  [[nodiscard]] double max_stretch() const { return max_stretch_; }

  struct VerifyStats {
    std::int64_t dist_checks = 0;      ///< per-query stretch checks
    std::int64_t path_checks = 0;      ///< construction-sweep path walks
    double max_stretch_seen = 1.0;     ///< over all checked pairs
  };
  [[nodiscard]] const VerifyStats& verify_stats() const { return vstats_; }

 private:
  void check(NodeId u, NodeId v, Weight d) const;
  void construction_sweep();

  std::shared_ptr<const Graph> graph_;
  LandmarkRouter router_;
  std::shared_ptr<const DistanceOracle> exact_;
  double max_stretch_;
  Weight diameter_;
  mutable VerifyStats vstats_;
};

}  // namespace dtm
