// Explicit shortest-path routing: per-source next-hop tables.
//
// The baseline model (paper §II) abstracts object motion as "arrives after
// dist(u,v) steps". The congestion extension (paper §VI names bounded link
// capacity as an open question) needs objects to physically occupy edges,
// which requires hop-by-hop paths. One Dijkstra per source; O(n^2) memory.
#pragma once

#include <vector>

#include "net/graph.hpp"

namespace dtm {

class RoutingTable {
 public:
  explicit RoutingTable(const Graph& g);

  /// First hop on a shortest path from `u` toward `dest` (u itself when
  /// u == dest). Deterministic: ties broken toward the smaller node id.
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest) const;

  /// Full node sequence u -> ... -> dest (inclusive).
  [[nodiscard]] std::vector<NodeId> path(NodeId u, NodeId dest) const;

  /// Shortest-path distance (same metric the hops realize).
  [[nodiscard]] Weight dist(NodeId u, NodeId dest) const;

  [[nodiscard]] NodeId num_nodes() const { return n_; }

  /// Weight of edge {u, v}; u and v must be adjacent.
  [[nodiscard]] Weight edge_weight(NodeId u, NodeId v) const;

 private:
  [[nodiscard]] std::size_t idx(NodeId u, NodeId v) const {
    return static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(v);
  }

  NodeId n_;
  const Graph* graph_;
  std::vector<NodeId> next_;   ///< next_[dest * n + u] = hop from u to dest
  std::vector<Weight> dist_;
};

}  // namespace dtm
