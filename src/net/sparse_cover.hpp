// Hierarchical sparse cover decomposition (paper §V, "Cluster
// Decomposition"), the substrate of the distributed bucket scheduler.
//
// The hierarchy has H1 = ceil(log2 D) + 1 layers. Layer l targets locality
// radius R = 2^l. Each layer consists of sub-layers; every sub-layer is a
// *partition* of V into clusters of weak diameter O(R) (we guarantee <= 4R).
// For every node u and every layer l, some cluster in some sub-layer of
// layer l contains the (2^l - 1)-neighborhood of u; one such cluster is
// designated u's *home cluster* at layer l. One node per cluster is its
// leader (the carving center).
//
// Construction is randomized ball carving per sub-layer, repeated until all
// nodes are home-covered at the layer; with random center orderings the
// expected number of sub-layers is O(log n), matching the paper's
// g(l) = O(log n) overlap.
#pragma once

#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace dtm {

/// A cluster in one sub-layer of the hierarchy.
struct CoverCluster {
  NodeId leader = kNoNode;          ///< carving center; hosts partial buckets
  std::vector<NodeId> nodes;        ///< members (sorted)
  Weight weak_diameter = 0;         ///< max pairwise G-distance among members
};

/// A partition of V into clusters.
struct CoverSubLayer {
  std::vector<CoverCluster> clusters;
  std::vector<std::int32_t> cluster_of;  ///< node -> index into clusters
};

/// All sub-layers of one locality scale.
struct CoverLayer {
  Weight radius = 0;  ///< R = 2^l
  std::vector<CoverSubLayer> sublayers;
};

/// Identifies a cluster in the hierarchy. Heights (layer, sublayer) are
/// ordered lexicographically, as in the paper.
struct ClusterRef {
  std::int32_t layer = -1;
  std::int32_t sublayer = -1;
  std::int32_t cluster = -1;

  [[nodiscard]] bool valid() const { return layer >= 0; }
  friend auto operator<=>(const ClusterRef&, const ClusterRef&) = default;
};

struct SparseCoverOptions {
    std::uint64_t seed = 12345;
    /// Cap on sub-layers tried with random centers before the deterministic
    /// fallback sweep kicks in (fallback preserves correctness, not the
    /// O(log n) overlap).
    std::int32_t max_random_sublayers = 0;  ///< 0 => 4*ceil(log2 n) + 8
  };

class SparseCover {
 public:
  using Options = SparseCoverOptions;

  SparseCover(const Graph& g, const DistanceOracle& oracle,
              const Options& opts = {});

  [[nodiscard]] std::int32_t num_layers() const {
    return static_cast<std::int32_t>(layers_.size());
  }
  [[nodiscard]] const CoverLayer& layer(std::int32_t l) const {
    DTM_REQUIRE(l >= 0 && l < num_layers(), "layer " << l);
    return layers_[static_cast<std::size_t>(l)];
  }
  [[nodiscard]] const CoverCluster& cluster(const ClusterRef& ref) const;

  /// The home cluster of `u` at layer `l`: contains u's (2^l - 1)-
  /// neighborhood.
  [[nodiscard]] ClusterRef home_cluster(NodeId u, std::int32_t l) const;

  /// Smallest layer l such that u's home cluster at l contains the
  /// y-neighborhood of u, i.e. 2^l - 1 >= y (Algorithm 3, line 5).
  [[nodiscard]] std::int32_t lowest_layer_covering(Weight y) const;

  /// Max sub-layers over layers: the paper's H2 (per-node overlap per layer).
  [[nodiscard]] std::int32_t max_sublayers() const;

 private:
  void build_layer(const Graph& g, const DistanceOracle& oracle,
                   std::int32_t l, Rng& rng, std::int32_t max_random);

  std::vector<CoverLayer> layers_;
  /// home_[l][u] = (sublayer, cluster) of u's home at layer l.
  std::vector<std::vector<std::pair<std::int32_t, std::int32_t>>> home_;
};

}  // namespace dtm
