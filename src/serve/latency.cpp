#include "serve/latency.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace dtm {

LatencyRecorder::LatencyRecorder(std::int32_t sub_bits)
    : sub_bits_(sub_bits) {
  DTM_REQUIRE(sub_bits >= 1 && sub_bits <= 16,
              "latency recorder sub_bits " << sub_bits);
}

std::size_t LatencyRecorder::index_for(std::int64_t v) const {
  const std::int64_t base = std::int64_t{1} << sub_bits_;
  if (v < 2 * base) return static_cast<std::size_t>(v);  // exact octaves
  // v in [2^e, 2^(e+1)) with e > sub_bits: sub-bucket of width 2^(e-sub).
  const int e = 63 - std::countl_zero(static_cast<std::uint64_t>(v));
  const std::int64_t sub = (v >> (e - sub_bits_)) - base;
  return static_cast<std::size_t>(
      (static_cast<std::int64_t>(e) - sub_bits_ + 1) * base + sub);
}

std::int64_t LatencyRecorder::value_for(std::size_t idx) const {
  const std::int64_t base = std::int64_t{1} << sub_bits_;
  const auto i = static_cast<std::int64_t>(idx);
  if (i < 2 * base) return i;
  const std::int64_t octave = i / base;  // >= 2
  const std::int64_t sub = i % base;
  const std::int64_t width = std::int64_t{1} << (octave - 1);
  const std::int64_t lower = (base + sub) << (octave - 1);
  return lower + (width - 1) / 2;  // bucket midpoint (exact when width 1)
}

void LatencyRecorder::record(std::int64_t v) {
  v = std::max<std::int64_t>(v, 0);
  const std::size_t idx = index_for(v);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  ++counts_[idx];
  if (n_ == 0 || v < min_) min_ = v;
  if (n_ == 0 || v > max_) max_ = v;
  sum_ += v;
  ++n_;
}

std::int64_t LatencyRecorder::quantile(double q) const {
  if (n_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the ceil(q*n)-th smallest sample (1-based), min rank 1.
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(n_) - 1e-9)));
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank) return value_for(i);
  }
  return max_;  // unreachable unless counts_ and n_ diverge
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  DTM_REQUIRE(sub_bits_ == other.sub_bits_,
              "merging recorders with different sub_bits");
  if (other.n_ == 0) return;
  if (other.counts_.size() > counts_.size())
    counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  if (n_ == 0 || other.min_ < min_) min_ = other.min_;
  if (n_ == 0 || other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  n_ += other.n_;
}

void LatencyRecorder::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  n_ = min_ = max_ = sum_ = 0;
}

Json LatencyRecorder::to_json() const {
  Json::Object o;
  o.emplace("count", Json(n_));
  o.emplace("mean", Json(mean()));
  o.emplace("min", Json(min()));
  o.emplace("p50", Json(quantile(0.50)));
  o.emplace("p95", Json(quantile(0.95)));
  o.emplace("p99", Json(quantile(0.99)));
  o.emplace("p999", Json(quantile(0.999)));
  o.emplace("max", Json(max()));
  return Json(std::move(o));
}

}  // namespace dtm
