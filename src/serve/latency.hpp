// LatencyRecorder — incremental log-bucketed latency histogram (serve
// layer; docs/ARCHITECTURE.md §7).
//
// The batch pipeline sorts its samples at end of run (util/stats.hpp
// percentile()); a long-lived service cannot hold every sample. This
// recorder buckets values HdrHistogram-style: the first two octaves are
// exact, every later octave is split into 2^sub_bits sub-buckets, so a
// recorded value lands in a bucket whose width is at most value / 2^sub_bits
// — quantiles are off by at most that relative error (plus one step of
// quantization), at O(1) per record and a few hundred int64 counters of
// state regardless of run length. Windowed reporting works by keeping one
// recorder per window plus a cumulative one and merging/resetting at
// window boundaries.
#pragma once

#include <cstdint>
#include <vector>

#include "util/json.hpp"

namespace dtm {

class LatencyRecorder {
 public:
  /// `sub_bits` trades memory for resolution: 2^sub_bits sub-buckets per
  /// octave bounds the relative quantile error by 2^-sub_bits. The default
  /// (5 → ~3%) distinguishes p99 from p999 on any realistic latency scale.
  explicit LatencyRecorder(std::int32_t sub_bits = 5);

  /// Records one sample (negative values clamp to 0). O(1).
  void record(std::int64_t v);

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] std::int64_t min() const { return n_ > 0 ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return n_ > 0 ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return n_ > 0 ? static_cast<double>(sum_) / static_cast<double>(n_) : 0.0;
  }

  /// Nearest-rank quantile (q in [0, 1]), reported as the representative
  /// value of the bucket holding that rank. Exact for values below
  /// 2^(sub_bits+1); within relative error 2^-sub_bits above. 0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  /// Merges another recorder (same sub_bits) into this one.
  void merge(const LatencyRecorder& other);

  /// Clears all counts (window rollover).
  void reset();

  /// {count, mean, min, p50, p95, p99, p999, max} — the serve snapshot
  /// shape.
  [[nodiscard]] Json to_json() const;

 private:
  [[nodiscard]] std::size_t index_for(std::int64_t v) const;
  [[nodiscard]] std::int64_t value_for(std::size_t idx) const;

  std::int32_t sub_bits_;
  std::vector<std::int64_t> counts_;  ///< grown lazily as large values land
  std::int64_t n_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t sum_ = 0;
};

}  // namespace dtm
