#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "core/bucket_scheduler.hpp"
#include "dist/dist_bucket.hpp"
#include "net/routing.hpp"
#include "sim/io.hpp"
#include "util/alloc.hpp"
#include "util/check.hpp"

namespace dtm {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

/// Windows retained for inspection on unbounded runs; older ones are
/// dropped (totals keep counting — ServeReport::windows is exact).
constexpr std::size_t kMaxRetainedWindows = 65536;

Json fastpath_json(const FastPathStats& s) {
  Json::Object o;
  o.emplace("inserts", Json(s.inserts));
  o.emplace("probes", Json(s.probes));
  o.emplace("memo_hits", Json(s.memo_hits));
  o.emplace("estimates", Json(s.estimates));
  o.emplace("levels_skipped", Json(s.levels_skipped));
  o.emplace("rebuilds", Json(s.rebuilds));
  o.emplace("refreshes", Json(s.refreshes));
  o.emplace("appends", Json(s.appends));
  o.emplace("activations", Json(s.activations));
  return Json(std::move(o));
}

Json dist_json(const DistStats& s) {
  Json::Object o;
  o.emplace("probes", Json(s.probes));
  o.emplace("probe_hops", Json(s.probe_hops));
  o.emplace("reports", Json(s.reports));
  o.emplace("notifications", Json(s.notifications));
  o.emplace("message_distance", Json(s.message_distance));
  o.emplace("max_discovery_delay", Json(s.max_discovery_delay));
  o.emplace("probe_timeouts", Json(s.probe_timeouts));
  o.emplace("reprobes", Json(s.reprobes));
  o.emplace("report_retries", Json(s.report_retries));
  o.emplace("dup_replies", Json(s.dup_replies));
  o.emplace("dup_reports", Json(s.dup_reports));
  return Json(std::move(o));
}

Json fault_bus_json(const FaultBusStats* s) {
  Json::Object o;
  o.emplace("armed", Json(s != nullptr));
  if (s != nullptr) {
    o.emplace("offered", Json(s->offered));
    o.emplace("dropped", Json(s->dropped));
    o.emplace("duplicated", Json(s->duplicated));
    o.emplace("degraded", Json(s->degraded));
    o.emplace("jitter_total", Json(s->jitter_total));
    o.emplace("pause_deferred", Json(s->pause_deferred));
    o.emplace("bytes_duplicated", Json(s->bytes_duplicated));
  }
  return Json(std::move(o));
}

}  // namespace

void ServeConfig::validate() const {
  DTM_REQUIRE(source == "synthetic" || source == "trace",
              "serve source '" << source << "' (synthetic | trace)");
  DTM_REQUIRE(rate > 0.0, "serve rate " << rate);
  DTM_REQUIRE(duration >= 0, "serve duration " << duration);
  DTM_REQUIRE(window >= 1, "serve window " << window);
  if (source == "trace")
    DTM_REQUIRE(!trace_file.empty(), "trace source needs trace=PATH");
  DTM_REQUIRE(trace_loop >= 0, "serve trace_loop " << trace_loop);
  DTM_REQUIRE(k >= 1, "serve k=" << k);
  DTM_REQUIRE(zipf >= 0.0, "serve zipf " << zipf);
  DTM_REQUIRE(write_frac >= 0.0 && write_frac <= 1.0,
              "serve write_frac " << write_frac);
  DTM_REQUIRE(burst_every >= 0 && burst_len >= 0 && burst_mult > 0.0,
              "serve burst knobs");
  DTM_REQUIRE(slo_p99 >= 0, "serve slo_p99 " << slo_p99);
  admission.validate();
}

Json ServeWindow::to_json() const {
  Json::Object o;
  o.emplace("start", Json(start));
  o.emplace("end", Json(end));
  o.emplace("offered", Json(offered));
  o.emplace("admitted", Json(admitted));
  o.emplace("shed", Json(shed));
  o.emplace("commits", Json(commits));
  o.emplace("p50", Json(p50));
  o.emplace("p95", Json(p95));
  o.emplace("p99", Json(p99));
  o.emplace("p999", Json(p999));
  o.emplace("max", Json(max));
  o.emplace("shed_rate", Json(shed_rate));
  o.emplace("throughput", Json(throughput));
  o.emplace("slo_violated", Json(slo_violated));
  return Json(std::move(o));
}

Json ServeReport::to_json() const {
  Json::Object o;
  o.emplace("end_time", Json(end_time));
  o.emplace("active_steps", Json(active_steps));
  o.emplace("offered", Json(offered));
  o.emplace("admitted", Json(admitted));
  o.emplace("shed", Json(shed));
  o.emplace("commits", Json(commits));
  o.emplace("drained", Json(drained));
  o.emplace("peak_committed_log", Json(peak_committed_log));
  o.emplace("windows", Json(windows));
  o.emplace("slo_violations", Json(slo_violations));
  o.emplace("fault_toggles", Json(fault_toggles));
  o.emplace("commit_hash", Json(std::to_string(commit_hash)));
  o.emplace("latency", latency.to_json());
  o.emplace("admission", admission.to_json());
  return Json(std::move(o));
}

DtmServer::DtmServer(const Network& net, std::unique_ptr<TxnSource> source,
                     std::unique_ptr<OnlineScheduler> scheduler,
                     ServeConfig cfg, EngineOptions engine_opts, Hooks hooks)
    : net_(net),
      cfg_(std::move(cfg)),
      hooks_(std::move(hooks)),
      source_(std::move(source)),
      scheduler_(std::move(scheduler)),
      admission_(cfg_.admission),
      window_end_(cfg_.window) {
  cfg_.validate();
  DTM_REQUIRE(source_ != nullptr, "serve: null source");
  DTM_REQUIRE(scheduler_ != nullptr, "serve: null scheduler");
  engine_ = std::make_unique<SyncEngine>(net_.oracle, source_->objects(),
                                         engine_opts);
  register_metrics();
}

void DtmServer::register_metrics() {
  metrics_.add("server", [this] {
    Json::Object o;
    o.emplace("now", Json(engine_->now()));
    o.emplace("admitting", Json(admitting_));
    o.emplace("finished", Json(done_));
    o.emplace("scheduler", Json(scheduler_->name()));
    o.emplace("source", Json(source_->name()));
    o.emplace("inflight", Json(inflight()));
    o.emplace("queue_depth", Json(admission_.queue_depth()));
    o.emplace("active_steps", Json(active_steps_));
    o.emplace("commits", Json(commits_total_));
    o.emplace("drained", Json(drained_));
    o.emplace("peak_committed_log", Json(peak_committed_log_));
    o.emplace("windows", Json(windows_closed_));
    o.emplace("slo_violations", Json(slo_violations_));
    o.emplace("fault_toggles", Json(fault_toggles_));
    return Json(std::move(o));
  });
  metrics_.add("admission", [this] { return admission_.stats().to_json(); });
  metrics_.add("latency", [this] {
    Json::Object o;
    o.emplace("total", total_latency_.to_json());
    o.emplace("window", window_latency_.to_json());
    return Json(std::move(o));
  });
  metrics_.add("engine", [this] {
    Json::Object o;
    o.emplace("live", Json(engine_->num_live()));
    o.emplace("committed_log",
              Json(static_cast<std::int64_t>(engine_->committed().size())));
    return Json(std::move(o));
  });
  // Heap-allocation counters (process-wide). All zeros unless the build
  // was configured with -DDTM_ALLOC_TRACK=ON — "tracking" says which.
  metrics_.add("alloc", [] {
    Json::Object o;
    o.emplace("tracking", Json(alloc_tracking_enabled()));
    const AllocCounters g = global_alloc_counters();
    o.emplace("allocs", Json(g.allocs));
    o.emplace("frees", Json(g.frees));
    o.emplace("bytes", Json(g.bytes));
    return Json(std::move(o));
  });
  // Routing: exact oracles have no live counters; landmark/verify oracles
  // expose cluster-query mix, the intra-cluster cache's hit rate, and (in
  // verify mode) the stretch evidence — so `dtm_serve stats` shows what the
  // hierarchical routing layer is actually doing under load.
  if (const auto* lm =
          dynamic_cast<const LandmarkOracle*>(net_.oracle.get())) {
    metrics_.add("routing", [lm] {
      Json::Object o;
      o.emplace("mode", Json(lm->verifying() ? std::string("verify")
                                             : std::string("landmark")));
      o.emplace("landmarks",
                Json(static_cast<std::int64_t>(
                    lm->router().num_landmarks())));
      o.emplace("radius", Json(lm->router().radius()));
      o.emplace("diameter_bound", Json(lm->router().diameter_bound()));
      const auto& qs = lm->router().stats();
      o.emplace("intra_queries", Json(qs.intra_queries));
      o.emplace("inter_queries", Json(qs.inter_queries));
      const auto& cs = lm->router().intra_cache_stats();
      o.emplace("cache_hits", Json(cs.hits));
      o.emplace("cache_misses", Json(cs.misses));
      o.emplace("cache_evictions", Json(cs.evictions));
      o.emplace("cache_hit_rate",
                Json(cs.hits + cs.misses > 0
                         ? static_cast<double>(cs.hits) /
                               static_cast<double>(cs.hits + cs.misses)
                         : 0.0));
      o.emplace("memory_bytes",
                Json(static_cast<std::int64_t>(
                    lm->router().memory_bytes())));
      if (lm->verifying()) {
        const auto& vs = lm->verify_stats();
        o.emplace("verify_dist_checks", Json(vs.dist_checks));
        o.emplace("verify_path_checks", Json(vs.path_checks));
        o.emplace("verify_max_stretch_seen", Json(vs.max_stretch_seen));
        o.emplace("verify_stretch_bound", Json(lm->max_stretch()));
      }
      return Json(std::move(o));
    });
  } else {
    metrics_.add("routing", [] {
      Json::Object o;
      o.emplace("mode", Json(std::string("exact")));
      return Json(std::move(o));
    });
  }
  if (const auto* db =
          dynamic_cast<const DistributedBucketScheduler*>(scheduler_.get())) {
    metrics_.add("dist", [db] { return dist_json(db->stats()); });
    metrics_.add("fault_bus",
                 [db] { return fault_bus_json(db->fault_bus_stats()); });
    metrics_.add("fastpath",
                 [db] { return fastpath_json(db->fastpath_stats()); });
  } else if (const auto* b =
                 dynamic_cast<const BucketScheduler*>(scheduler_.get())) {
    metrics_.add("fastpath",
                 [b] { return fastpath_json(b->fastpath_stats()); });
  }
}

Transaction DtmServer::admit_stamp(const Transaction& t, Time offered,
                                   Time now) {
  Transaction s = t;
  s.id = next_engine_id_++;
  s.gen_time = now;  // the engine requires arrivals stamped with `now`
  offered_time_.emplace(s.id, offered);
  return s;
}

void DtmServer::close_windows_through(Time now) {
  while (now >= window_end_) {
    emit_window(window_end_ - cfg_.window, window_end_);
    window_end_ += cfg_.window;
  }
}

void DtmServer::emit_window(Time start, Time end) {
  const AdmissionStats& as = admission_.stats();
  ServeWindow w;
  w.start = start;
  w.end = end;
  w.offered = as.offered - last_offered_;
  w.admitted = as.admitted - last_admitted_;
  w.shed = as.shed - last_shed_;
  w.commits = commits_total_ - last_commits_;
  w.p50 = window_latency_.quantile(0.50);
  w.p95 = window_latency_.quantile(0.95);
  w.p99 = window_latency_.quantile(0.99);
  w.p999 = window_latency_.quantile(0.999);
  w.max = window_latency_.max();
  if (w.offered > 0)
    w.shed_rate = static_cast<double>(w.shed) / static_cast<double>(w.offered);
  if (end > start)
    w.throughput =
        static_cast<double>(w.commits) / static_cast<double>(end - start);
  if (cfg_.slo_p99 > 0 && w.commits > 0 && w.p99 > cfg_.slo_p99) {
    w.slo_violated = true;
    ++slo_violations_;
  }
  last_offered_ = as.offered;
  last_admitted_ = as.admitted;
  last_shed_ = as.shed;
  last_commits_ = commits_total_;
  window_latency_.reset();
  ++windows_closed_;
  windows_.push_back(w);
  if (windows_.size() > kMaxRetainedWindows) windows_.pop_front();
  if (hooks_.on_window) hooks_.on_window(windows_.back());
}

void DtmServer::maybe_drain_log(Time now) {
  if (cfg_.drain_every < 0) return;  // disabled (tests only)
  const Time cadence = cfg_.drain_every > 0 ? cfg_.drain_every : cfg_.window;
  if (now - last_drain_ < cadence) return;
  drained_ += static_cast<std::int64_t>(engine_->take_committed().size());
  last_drain_ = now;
}

void DtmServer::step_once() {
  const Time now = engine_->now();
  // Close windows first: this step's commits (exec == now) belong to the
  // window containing `now`, which is still open after this call.
  close_windows_through(now);
  if (admitting_ && cfg_.duration > 0 && now >= cfg_.duration)
    admitting_ = false;

  admission_.refill(now);
  std::vector<Transaction> admitted;
  std::vector<AdmissionController::Release> released;
  admission_.release(now, inflight(), released);
  admitted.reserve(released.size());
  for (const auto& r : released)
    admitted.push_back(admit_stamp(r.txn, r.offered, now));
  if (admitting_) {
    for (const auto& t : source_->offers_at(now)) {
      if (admission_.offer(t, now, inflight()) ==
          AdmissionController::Outcome::kAdmit)
        admitted.push_back(admit_stamp(t, now, now));
      // kQueued / kShed: the controller did the bookkeeping.
    }
    // A finite source (trace without loop) running dry is a natural drain.
    if (source_->next_offer_time() == kNoTime && admission_.queue_empty())
      admitting_ = false;
  }

  engine_->begin_step(admitted);
  const auto assignments = scheduler_->on_step(*engine_, admitted);
  engine_->apply(assignments);
  const auto commits = engine_->finish_step();
  ++active_steps_;

  for (const auto& c : commits) {
    const auto it = offered_time_.find(c.txn);
    DTM_CHECK(it != offered_time_.end(),
              "serve: commit for unknown transaction " << c.txn);
    const Time offered = it->second;
    offered_time_.erase(it);
    const Time lat = c.exec - offered;
    window_latency_.record(lat);
    total_latency_.record(lat);
    fnv(commit_hash_, static_cast<std::uint64_t>(c.txn));
    fnv(commit_hash_, static_cast<std::uint64_t>(c.node));
    fnv(commit_hash_, static_cast<std::uint64_t>(offered));
    fnv(commit_hash_, static_cast<std::uint64_t>(c.exec));
    ++commits_total_;
  }

  peak_committed_log_ =
      std::max(peak_committed_log_,
               static_cast<std::int64_t>(engine_->committed().size()));
  maybe_drain_log(engine_->now());

  if (finished()) {
    done_ = true;
    // Trailing partial window, then the zero-loss invariant: everything
    // admitted must have committed by quiescence.
    const AdmissionStats& as = admission_.stats();
    if (as.offered != last_offered_ || commits_total_ != last_commits_)
      emit_window(window_end_ - cfg_.window, engine_->now());
    DTM_CHECK(offered_time_.empty(),
              "serve drain lost " << offered_time_.size()
                                  << " admitted transactions");
    DTM_CHECK(as.admitted == commits_total_,
              "serve drain: admitted " << as.admitted << " != commits "
                                       << commits_total_);
    if (cfg_.drain_every >= 0) {
      drained_ += static_cast<std::int64_t>(engine_->take_committed().size());
      last_drain_ = engine_->now();
    }
  }
}

bool DtmServer::pump(Time until) {
  while (!done_ && (until == kNoTime || engine_->now() <= until)) {
    step_once();
    if (done_) break;

    const Time now = engine_->now();
    Time next = kNoTime;
    const auto merge = [&next](Time t) { next = EventClock::merge(next, t); };
    if (admitting_) {
      merge(source_->next_offer_time());
      if (cfg_.duration > 0) merge(cfg_.duration);
    }
    if (!admission_.queue_empty()) merge(admission_.next_token_time(now));
    merge(engine_->next_exec_due());
    merge(scheduler_->next_event_hint(now));
    const std::vector<const EventSource*> sources =
        scheduler_->event_sources();
    next = engine_->clock().next_event({next}, sources);
    DTM_CHECK(next != kNoTime,
              "serve deadlock: service not drained but no future event (now="
                  << now << ", inflight=" << inflight()
                  << ", queued=" << admission_.queue_depth() << ")");
    if (until != kNoTime && next > until) {
      // Nothing happens in (now, until]; settle the clock at the pump
      // horizon so callers pacing by sim time observe progress.
      if (until > now) {
        engine_->advance_to(until);
        close_windows_through(engine_->now());
      }
      break;
    }
    if (next > now) engine_->advance_to(next);
  }
  return !done_;
}

ServeReport DtmServer::run() {
  (void)pump(kNoTime);
  return report();
}

ServeReport DtmServer::report() const {
  DTM_REQUIRE(done_, "serve report requested before the service drained");
  const AdmissionStats& as = admission_.stats();
  ServeReport r;
  r.end_time = engine_->now();
  r.active_steps = active_steps_;
  r.offered = as.offered;
  r.admitted = as.admitted;
  r.shed = as.shed;
  r.commits = commits_total_;
  r.drained = drained_;
  r.peak_committed_log = peak_committed_log_;
  r.windows = windows_closed_;
  r.slo_violations = slo_violations_;
  r.fault_toggles = fault_toggles_;
  r.commit_hash = commit_hash_;
  r.latency = total_latency_;
  r.admission = as;
  return r;
}

void DtmServer::set_fault(const FaultPlan& plan) {
  plan.validate();
  engine_->set_fault(plan);
  if (auto* db = dynamic_cast<DistributedBucketScheduler*>(scheduler_.get())) {
    if (db->resilient())
      db->set_fault(plan);
    else
      DTM_REQUIRE(!plan.message_faults(),
                  "live bus faults require a service started with chaos "
                  "armed (a non-null fault plan with message faults)");
  }
  ++fault_toggles_;
}

std::unique_ptr<DtmServer> make_server(const Network& net, const RunSpec& spec,
                                       DtmServer::Hooks hooks) {
  ServeConfig cfg = Registry::make_serve_config(spec.serve, spec.seed);
  const FaultPlan fault = Registry::make_fault_plan(spec.fault, spec.seed);
  auto scheduler =
      Registry::make_scheduler(spec.scheduler, net, &fault, spec.threads);

  EngineOptions eopts;
  eopts.mode = spec.engine_mode();
  eopts.latency_factor = spec.latency_factor;
  if (spec.scheduler.kind == "dist-bucket")
    eopts.latency_factor = std::max<std::int64_t>(eopts.latency_factor, 2);
  eopts.fault = fault;
  eopts.threads = spec.threads;

  std::unique_ptr<TxnSource> source;
  if (cfg.source == "trace") {
    Instance inst = load_instance_file(cfg.trace_file);
    source = std::make_unique<TraceSource>(std::move(inst.origins),
                                           std::move(inst.txns),
                                           cfg.trace_loop);
  } else {
    SyntheticSourceOptions so;
    so.rate = cfg.rate;
    so.num_objects = cfg.objects;
    so.k = cfg.k;
    so.zipf_s = cfg.zipf;
    so.write_fraction = cfg.write_frac;
    so.burst_every = cfg.burst_every;
    so.burst_len = cfg.burst_len;
    so.burst_mult = cfg.burst_mult;
    so.seed = cfg.seed;
    source = std::make_unique<SyntheticSource>(net, so);
  }

  return std::make_unique<DtmServer>(net, std::move(source),
                                     std::move(scheduler), std::move(cfg),
                                     eopts, std::move(hooks));
}

}  // namespace dtm
