#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dtm {

void AdmissionOptions::validate() const {
  DTM_REQUIRE(rate >= 0.0, "admission rate " << rate);
  DTM_REQUIRE(burst >= 0.0, "admission burst " << burst);
  DTM_REQUIRE(max_inflight >= 0, "admission max_inflight " << max_inflight);
  DTM_REQUIRE(queue_cap >= 1, "admission queue_cap " << queue_cap);
}

Json AdmissionStats::to_json() const {
  Json::Object o;
  o.emplace("offered", Json(offered));
  o.emplace("admitted", Json(admitted));
  o.emplace("shed", Json(shed));
  o.emplace("shed_tokens", Json(shed_tokens));
  o.emplace("shed_inflight", Json(shed_inflight));
  o.emplace("shed_queue_full", Json(shed_queue_full));
  o.emplace("queued", Json(queued));
  o.emplace("max_queue_depth", Json(max_queue_depth));
  o.emplace("max_inflight_seen", Json(max_inflight_seen));
  o.emplace("max_queue_wait", Json(max_queue_wait));
  return Json(std::move(o));
}

AdmissionController::AdmissionController(AdmissionOptions opts)
    : opts_(opts) {
  opts_.validate();
  if (opts_.rate > 0.0) opts_.burst = std::max(opts_.burst, 1.0);
  tokens_ = opts_.burst;  // start full: a fresh service absorbs one burst
}

void AdmissionController::refill(Time now) {
  DTM_REQUIRE(now >= last_refill_, "admission refill going backwards ("
                                       << now << " < " << last_refill_
                                       << ")");
  if (opts_.rate > 0.0 && now > last_refill_) {
    tokens_ = std::min(opts_.burst,
                       tokens_ + opts_.rate * static_cast<double>(
                                                  now - last_refill_));
  }
  last_refill_ = now;
}

bool AdmissionController::take_token() {
  if (opts_.rate <= 0.0) return true;
  // Epsilon guards the accumulated float drift of rate * steps sums.
  if (tokens_ < 1.0 - 1e-9) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionController::Outcome AdmissionController::offer(
    const Transaction& txn, Time now, std::int64_t inflight) {
  ++stats_.offered;
  stats_.max_inflight_seen = std::max(stats_.max_inflight_seen, inflight);
  const bool capacity = capacity_ok(inflight);
  if (capacity && take_token()) {
    ++stats_.admitted;
    return Outcome::kAdmit;
  }
  if (opts_.policy == AdmissionOptions::Policy::kQueue) {
    if (static_cast<std::int64_t>(queue_.size()) < opts_.queue_cap) {
      queue_.push_back({txn, now});
      ++stats_.queued;
      stats_.max_queue_depth = std::max(
          stats_.max_queue_depth, static_cast<std::int64_t>(queue_.size()));
      return Outcome::kQueued;
    }
    ++stats_.shed;
    ++stats_.shed_queue_full;
    return Outcome::kShed;
  }
  ++stats_.shed;
  if (!capacity)
    ++stats_.shed_inflight;
  else
    ++stats_.shed_tokens;
  return Outcome::kShed;
}

void AdmissionController::release(Time now, std::int64_t inflight,
                                  std::vector<Release>& out) {
  while (!queue_.empty() && capacity_ok(inflight) && take_token()) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
    ++inflight;
    ++stats_.admitted;
    stats_.max_inflight_seen = std::max(stats_.max_inflight_seen, inflight);
    stats_.max_queue_wait =
        std::max(stats_.max_queue_wait, now - out.back().offered);
  }
}

Time AdmissionController::next_token_time(Time now) const {
  if (opts_.rate <= 0.0 || tokens_ >= 1.0 - 1e-9) return kNoTime;
  const double deficit = 1.0 - tokens_;
  const auto steps = static_cast<Time>(std::ceil(deficit / opts_.rate - 1e-9));
  return now + std::max<Time>(steps, 1);
}

}  // namespace dtm
