// MetricsRegistry — named live-stats snapshot surface (serve layer;
// docs/ARCHITECTURE.md §7).
//
// Every subsystem the serve loop composes (engine, admission, latency,
// scheduler protocol counters, fault bus, bucket fast path) registers a
// snapshot provider under a name; `snapshot()` materializes one JSON
// object with all of them plus a monotone sequence number. The registry is
// pull-based on purpose: providers are closures over live objects, so a
// snapshot always reflects the state at the instant it is taken — on the
// dump timer, on a SIGUSR1-style trigger, or per control-socket "stats"
// command — without the instrumented code pushing anything per step.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace dtm {

class MetricsRegistry {
 public:
  using Provider = std::function<Json()>;

  /// Registers `provider` under `name` (unique; later registration of the
  /// same name is an error — metrics names are an API).
  void add(const std::string& name, Provider provider);

  [[nodiscard]] bool has(const std::string& name) const;

  /// One snapshot object: {"seq": N, "<name>": provider(), ...} (keys
  /// serialize in name order — Json objects are sorted maps).
  [[nodiscard]] Json snapshot() const;

  /// Snapshots taken so far (the next snapshot's sequence number).
  [[nodiscard]] std::int64_t seq() const { return seq_; }

 private:
  std::vector<std::pair<std::string, Provider>> providers_;
  mutable std::int64_t seq_ = 0;
};

}  // namespace dtm
