// ServeConfig — the "serve:" spec kind's typed form (serve layer;
// docs/ARCHITECTURE.md §7).
//
// Lives in its own header (below sim/registry in the include graph) so the
// registry can parse "serve:" specs and the server can consume the result
// without an include cycle. Constructed via Registry::make_serve_config,
// which hard-errors on unknown knobs like every other spec.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.hpp"
#include "serve/admission.hpp"

namespace dtm {

struct ServeConfig {
  /// Mean offered transactions per step (synthetic source).
  double rate = 4.0;
  /// Admission horizon in simulated steps: offers stop at `duration`, then
  /// the service drains to quiescence. 0 = run until externally drained
  /// (dtm_serve's signal/socket drain, or DtmServer::request_drain).
  Time duration = 2048;
  /// Metrics/latency window length in steps.
  Time window = 256;
  /// Committed-log drain cadence in steps; 0 = every window. The drained
  /// log is counted and discarded, which is what keeps RSS bounded on
  /// unbounded runs. Negative disables draining (tests only).
  Time drain_every = 0;

  AdmissionOptions admission;

  /// Source kind: "synthetic" | "trace".
  std::string source = "synthetic";
  std::string trace_file;  ///< dtm-instance v1 path (trace source)
  Time trace_loop = 0;     ///< trace loop period; 0 = play once

  // -- synthetic source shape --
  std::int32_t objects = 0;  ///< 0 => one per node
  std::int32_t k = 2;
  double zipf = 0.0;
  double write_frac = 1.0;
  Time burst_every = 0;
  Time burst_len = 0;
  double burst_mult = 1.0;

  /// Per-window p99 latency SLO in steps; windows whose p99 exceeds it are
  /// counted as violations. 0 disables SLO accounting.
  std::int64_t slo_p99 = 0;

  std::uint64_t seed = 42;

  void validate() const;
};

}  // namespace dtm
