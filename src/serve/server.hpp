// DtmServer — the long-running service loop (serve layer;
// docs/ARCHITECTURE.md §7).
//
// The batch pipeline (sim/runner.*) runs a closed workload to completion
// and reports afterwards. DtmServer inverts that: an open-ended TxnSource
// offers transactions, an AdmissionController gates them (token bucket +
// max-in-flight, shed or queue), admitted transactions feed the same
// SyncEngine + OnlineScheduler incrementally, and every stat the batch
// pipeline computed post-hoc is maintained online:
//
//   TxnSource --offers--> AdmissionController --admits--> SyncEngine
//                              |  (shed/queue)               |  commits
//                              v                              v
//        MetricsRegistry <-- window stats <-- LatencyRecorder (per window
//                                             + cumulative)
//
// Per-transaction latency is measured from the *offer* step (a queued
// transaction pays its queue wait), bucketed into fixed windows with
// p50/p95/p99/p999 each, and checked against an optional p99 SLO. The
// committed log is drained (TxnStore::take_committed) on a cadence so RSS
// stays bounded over unbounded runs. Graceful drain = stop taking new
// offers, keep releasing the wait queue, run to quiescence; the server
// asserts the zero-loss invariant at that point: every admitted
// transaction committed. Fault plans can be toggled live (set_fault) for
// online resilience drills against the PR 4 chaos layer.
//
// Everything is simulated-time deterministic: a (RunSpec, ServeConfig)
// pair reproduces the same commit_hash run after run. Wall-clock concerns
// (pacing, signals, the control socket) live in tools/dtm_serve.cpp, which
// drives this class through pump().
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/scheduler.hpp"
#include "net/topology.hpp"
#include "serve/admission.hpp"
#include "serve/config.hpp"
#include "serve/latency.hpp"
#include "serve/metrics.hpp"
#include "serve/source.hpp"
#include "sim/engine.hpp"
#include "sim/registry.hpp"

namespace dtm {

/// One closed metrics window.
struct ServeWindow {
  Time start = 0;
  Time end = 0;  ///< exclusive
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t shed = 0;
  std::int64_t commits = 0;
  std::int64_t p50 = 0, p95 = 0, p99 = 0, p999 = 0, max = 0;
  double shed_rate = 0.0;   ///< shed / offered (0 when nothing offered)
  double throughput = 0.0;  ///< commits per step
  bool slo_violated = false;

  [[nodiscard]] Json to_json() const;
};

/// Final report: the serve-mode analogue of RunResult.
struct ServeReport {
  Time end_time = 0;             ///< quiescence step
  std::int64_t active_steps = 0; ///< engine steps actually executed
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t shed = 0;
  std::int64_t commits = 0;
  std::int64_t drained = 0;            ///< commits drained out of the log
  std::int64_t peak_committed_log = 0; ///< bounded-RSS evidence
  std::int64_t windows = 0;
  std::int64_t slo_violations = 0;
  std::int64_t fault_toggles = 0;
  /// FNV-1a over every commit's (id, node, offered, exec) — the serve-mode
  /// golden-pin / determinism handle.
  std::uint64_t commit_hash = 1469598103934665603ULL;
  LatencyRecorder latency;    ///< cumulative
  AdmissionStats admission;

  [[nodiscard]] Json to_json() const;
};

class DtmServer {
 public:
  struct Hooks {
    /// Fired when a window closes (bench accumulation, live printing).
    std::function<void(const ServeWindow&)> on_window;
  };

  /// `net` must outlive the server (schedulers hold references into it).
  DtmServer(const Network& net, std::unique_ptr<TxnSource> source,
            std::unique_ptr<OnlineScheduler> scheduler, ServeConfig cfg,
            EngineOptions engine_opts, Hooks hooks = {});

  /// Processes every event up to simulated step `until` (kNoTime = no
  /// limit). Returns false once the service is fully drained — no further
  /// pump calls will do anything. The unit of incrementality dtm_serve's
  /// wall-clock pacing and control polling interleave with.
  bool pump(Time until);

  /// Drives to completion (duration + drain to quiescence) and returns the
  /// final report. The convenience entry for benches and tests.
  ServeReport run();

  /// Stops taking new offers; queued transactions still admit, live ones
  /// run to quiescence. Idempotent.
  void request_drain() { admitting_ = false; }

  /// Live fault-plan toggle (resilience drills). Transport stall knobs
  /// always apply; bus-level knobs apply when the scheduler is a
  /// DistributedBucketScheduler constructed in resilient mode, and are a
  /// hard error when it is a non-resilient dist-bucket (arming the chaos
  /// bus mid-run would swap it under in-flight messages). Other schedulers
  /// exchange no messages, so bus knobs are ignored for them.
  void set_fault(const FaultPlan& plan);

  [[nodiscard]] bool finished() const {
    return !admitting_ && admission_.queue_empty() && engine_->all_done();
  }
  [[nodiscard]] bool admitting() const { return admitting_; }
  [[nodiscard]] Time now() const { return engine_->now(); }
  [[nodiscard]] std::int64_t inflight() const {
    return static_cast<std::int64_t>(offered_time_.size());
  }
  [[nodiscard]] std::int64_t commits() const { return commits_total_; }

  /// Live metrics snapshot (MetricsRegistry pull).
  [[nodiscard]] Json snapshot() const { return metrics_.snapshot(); }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Closed windows retained so far (oldest dropped beyond a cap on
  /// unbounded runs; ServeReport::windows counts all of them).
  [[nodiscard]] const std::deque<ServeWindow>& windows() const {
    return windows_;
  }

  /// The final report; valid once finished() (run() returns it directly).
  [[nodiscard]] ServeReport report() const;

 private:
  void register_metrics();
  void step_once();
  /// Stamps an engine-facing copy: fresh id, gen_time = admission step;
  /// remembers the offer step for latency accounting.
  [[nodiscard]] Transaction admit_stamp(const Transaction& t, Time offered,
                                        Time now);
  void close_windows_through(Time now);
  void emit_window(Time start, Time end);
  void maybe_drain_log(Time now);

  const Network& net_;
  ServeConfig cfg_;
  Hooks hooks_;
  std::unique_ptr<TxnSource> source_;
  std::unique_ptr<OnlineScheduler> scheduler_;
  std::unique_ptr<SyncEngine> engine_;
  AdmissionController admission_;
  MetricsRegistry metrics_;

  bool admitting_ = true;
  bool done_ = false;
  std::int64_t active_steps_ = 0;
  TxnId next_engine_id_ = 0;
  std::map<TxnId, Time> offered_time_;  ///< admitted, not yet committed

  LatencyRecorder window_latency_;
  LatencyRecorder total_latency_;
  std::deque<ServeWindow> windows_;
  std::int64_t windows_closed_ = 0;
  std::int64_t slo_violations_ = 0;
  Time window_end_;
  // Totals at the last window close, for per-window deltas.
  std::int64_t last_offered_ = 0, last_admitted_ = 0, last_shed_ = 0,
               last_commits_ = 0;

  std::int64_t commits_total_ = 0;
  std::int64_t drained_ = 0;
  std::int64_t peak_committed_log_ = 0;
  Time last_drain_ = 0;
  std::int64_t fault_toggles_ = 0;
  std::uint64_t commit_hash_ = 1469598103934665603ULL;
};

/// Builds the full service from a RunSpec whose `serve` spec names the
/// service shape: topology/scheduler/fault through the usual registry
/// factories (dist-bucket forces latency factor >= 2, as dtm_sim does),
/// source + admission from Registry::make_serve_config. `net` must be the
/// spec's topology (Registry::make_network(spec.topology)) and outlive the
/// server.
[[nodiscard]] std::unique_ptr<DtmServer> make_server(
    const Network& net, const RunSpec& spec, DtmServer::Hooks hooks = {});

}  // namespace dtm
