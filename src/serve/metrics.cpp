#include "serve/metrics.hpp"

#include "util/check.hpp"

namespace dtm {

void MetricsRegistry::add(const std::string& name, Provider provider) {
  DTM_REQUIRE(provider != nullptr, "metrics '" << name << "': null provider");
  DTM_REQUIRE(!has(name), "metrics '" << name << "' registered twice");
  providers_.emplace_back(name, std::move(provider));
}

bool MetricsRegistry::has(const std::string& name) const {
  for (const auto& [n, p] : providers_)
    if (n == name) return true;
  return false;
}

Json MetricsRegistry::snapshot() const {
  Json::Object o;
  o.emplace("seq", Json(seq_++));
  for (const auto& [name, provider] : providers_) o.emplace(name, provider());
  return Json(std::move(o));
}

}  // namespace dtm
