#include "serve/source.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dtm {

SyntheticSource::SyntheticSource(const Network& net,
                                 SyntheticSourceOptions opts)
    : net_(net), opts_(opts), rng_(opts.seed) {
  DTM_REQUIRE(opts_.rate > 0.0, "source rate " << opts_.rate);
  DTM_REQUIRE(opts_.k >= 1, "source k=" << opts_.k);
  if (opts_.num_objects <= 0) opts_.num_objects = net.num_nodes();
  DTM_REQUIRE(opts_.k <= opts_.num_objects,
              "source k=" << opts_.k << " > objects=" << opts_.num_objects);
  DTM_REQUIRE(opts_.burst_every >= 0 && opts_.burst_len >= 0 &&
                  opts_.burst_mult > 0.0,
              "source burst knobs");
  if (opts_.burst_every > 0)
    opts_.burst_len = std::min(opts_.burst_len, opts_.burst_every);
  if (opts_.zipf_s > 0.0)
    zipf_ = std::make_unique<ZipfSampler>(opts_.num_objects, opts_.zipf_s);
  find_next(0);
}

std::vector<ObjectOrigin> SyntheticSource::objects() {
  std::vector<ObjectOrigin> out;
  out.reserve(static_cast<std::size_t>(opts_.num_objects));
  for (ObjId o = 0; o < opts_.num_objects; ++o) {
    const auto node =
        static_cast<NodeId>(rng_.uniform_int(0, net_.num_nodes() - 1));
    out.push_back({o, node, 0});
  }
  return out;
}

double SyntheticSource::rate_at(Time t) const {
  const bool in_burst = opts_.burst_every > 0 && opts_.burst_len > 0 &&
                        (t % opts_.burst_every) < opts_.burst_len;
  return in_burst ? opts_.rate * opts_.burst_mult : opts_.rate;
}

void SyntheticSource::find_next(Time from) {
  // Deterministic pacing: each step adds rate_at(t) to the accumulator;
  // the integer part is offered that step. Bounded scan: with rate r the
  // accumulator crosses 1 within ceil(1/r) steps.
  Time t = from;
  while (true) {
    carry_ += rate_at(t);
    const auto n = static_cast<std::int64_t>(carry_);
    if (n >= 1) {
      carry_ -= static_cast<double>(n);
      next_time_ = t;
      next_count_ = n;
      return;
    }
    ++t;
  }
}

std::vector<ObjId> SyntheticSource::sample_objects() {
  if (!zipf_) {
    auto picks = rng_.sample_distinct(opts_.num_objects, opts_.k);
    return std::vector<ObjId>(picks.begin(), picks.end());
  }
  // Zipf-skewed distinct sample: rejection with a cap, then uniform fill
  // (the SyntheticWorkload recipe).
  std::vector<ObjId> out;
  out.reserve(static_cast<std::size_t>(opts_.k));
  std::int32_t tries = 0;
  while (static_cast<std::int32_t>(out.size()) < opts_.k &&
         tries < 64 * opts_.k) {
    const ObjId o = zipf_->draw(rng_);
    if (std::find(out.begin(), out.end(), o) == out.end()) out.push_back(o);
    ++tries;
  }
  while (static_cast<std::int32_t>(out.size()) < opts_.k) {
    const auto o =
        static_cast<ObjId>(rng_.uniform_int(0, opts_.num_objects - 1));
    if (std::find(out.begin(), out.end(), o) == out.end()) out.push_back(o);
  }
  return out;
}

std::vector<Transaction> SyntheticSource::offers_at(Time now) {
  std::vector<Transaction> out;
  if (now < next_time_) return out;
  DTM_CHECK(now == next_time_,
            "source offer at " << next_time_ << " missed (now " << now
                               << ")");
  out.reserve(static_cast<std::size_t>(next_count_));
  for (std::int64_t i = 0; i < next_count_; ++i) {
    Transaction t;
    t.id = next_id_++;
    t.node = static_cast<NodeId>(rng_.uniform_int(0, net_.num_nodes() - 1));
    t.gen_time = now;
    t.accesses = write_set(sample_objects());
    if (opts_.write_fraction < 1.0) {
      for (auto& a : t.accesses)
        if (!rng_.bernoulli(opts_.write_fraction)) a.mode = AccessMode::kRead;
    }
    out.push_back(std::move(t));
  }
  find_next(now + 1);
  return out;
}

TraceSource::TraceSource(std::vector<ObjectOrigin> origins,
                         std::vector<Transaction> txns, Time loop_period)
    : origins_(std::move(origins)),
      txns_(std::move(txns)),
      loop_period_(loop_period) {
  DTM_REQUIRE(!txns_.empty(), "trace source with no transactions");
  std::stable_sort(txns_.begin(), txns_.end(),
                   [](const Transaction& a, const Transaction& b) {
                     return a.gen_time < b.gen_time;
                   });
  if (loop_period_ > 0)
    DTM_REQUIRE(loop_period_ > txns_.back().gen_time,
                "trace loop period " << loop_period_
                                     << " <= last arrival "
                                     << txns_.back().gen_time);
}

std::vector<Transaction> TraceSource::offers_at(Time now) {
  std::vector<Transaction> out;
  while (next_ < txns_.size() &&
         txns_[next_].gen_time + cycle_shift_ == now) {
    Transaction t = txns_[next_++];
    t.id = next_id_++;
    t.gen_time = now;
    out.push_back(std::move(t));
    if (next_ == txns_.size() && loop_period_ > 0) {
      next_ = 0;
      cycle_shift_ += loop_period_;
    }
  }
  return out;
}

Time TraceSource::next_offer_time() const {
  if (next_ >= txns_.size()) return kNoTime;
  return txns_[next_].gen_time + cycle_shift_;
}

}  // namespace dtm
