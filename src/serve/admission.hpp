// AdmissionController — token bucket + max-in-flight gate in front of the
// engine (serve layer; docs/ARCHITECTURE.md §7).
//
// A long-running service cannot let an adversarially paced source push
// unbounded work into the scheduler: admission is the backpressure point.
// Two independent limits apply to every offered transaction:
//   - a token bucket (rate tokens per simulated step, capacity `burst`;
//     rate 0 = unlimited) bounding the sustained admit rate, and
//   - `max_inflight`, bounding transactions admitted but not yet committed.
// A transaction that does not fit is handled by the configured policy:
// kShed rejects it immediately; kQueue parks it in a bounded FIFO and
// admits it when capacity frees up (overflow sheds). Everything is plain
// sim-time arithmetic — no RNG — so an (options, offer-sequence) pair
// reproduces the exact admit/shed/queue decisions run after run.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/types.hpp"
#include "util/json.hpp"

namespace dtm {

struct AdmissionOptions {
  /// Token refill per simulated step; 0 disables the token limit.
  double rate = 0.0;
  /// Token bucket capacity (burst allowance). Floored at 1 when rate > 0.
  double burst = 16.0;
  /// Max transactions admitted but not yet committed; 0 = unlimited.
  std::int64_t max_inflight = 256;

  enum class Policy { kShed, kQueue };
  Policy policy = Policy::kShed;
  /// Pending-queue bound under kQueue; overflow sheds.
  std::int64_t queue_cap = 1024;

  void validate() const;
};

struct AdmissionStats {
  std::int64_t offered = 0;      ///< transactions presented to the gate
  std::int64_t admitted = 0;     ///< entered the engine
  std::int64_t shed = 0;         ///< rejected (all causes)
  std::int64_t shed_tokens = 0;  ///< ... for lack of tokens (kShed)
  std::int64_t shed_inflight = 0;  ///< ... for in-flight cap (kShed)
  std::int64_t shed_queue_full = 0;  ///< ... bounded queue overflow (kQueue)
  std::int64_t queued = 0;           ///< entered the wait queue
  std::int64_t max_queue_depth = 0;
  std::int64_t max_inflight_seen = 0;
  Time max_queue_wait = 0;  ///< worst offered -> admitted queue delay

  [[nodiscard]] Json to_json() const;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions opts);

  /// Accrues tokens for the steps since the last call. Monotone `now`.
  void refill(Time now);

  /// Decision for one offered transaction at `now` given the current
  /// in-flight count (including admissions already granted this step).
  enum class Outcome { kAdmit, kQueued, kShed };
  Outcome offer(const Transaction& txn, Time now, std::int64_t inflight);

  /// Pops queued transactions that now fit (FIFO), appending them with
  /// their original offer time. Call after refill() and before offering
  /// fresh arrivals so waiting work keeps priority.
  struct Release {
    Transaction txn;
    Time offered = kNoTime;
  };
  void release(Time now, std::int64_t inflight, std::vector<Release>& out);

  /// Earliest future step at which the token bucket alone could admit one
  /// more transaction; kNoTime when tokens are not the binding constraint
  /// (rate 0, or a token is already available). In-flight capacity frees on
  /// commits, which the serve loop already wakes for.
  [[nodiscard]] Time next_token_time(Time now) const;

  [[nodiscard]] std::int64_t queue_depth() const {
    return static_cast<std::int64_t>(queue_.size());
  }
  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }
  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }

 private:
  [[nodiscard]] bool capacity_ok(std::int64_t inflight) const {
    return opts_.max_inflight <= 0 || inflight < opts_.max_inflight;
  }
  [[nodiscard]] bool take_token();

  AdmissionOptions opts_;
  double tokens_;
  Time last_refill_ = 0;
  std::deque<Release> queue_;
  AdmissionStats stats_;
};

}  // namespace dtm
