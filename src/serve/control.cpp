#include "serve/control.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace dtm {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DTM_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "control socket: O_NONBLOCK failed (" << std::strerror(errno)
                                                    << ")");
}

}  // namespace

ControlEndpoint::ControlEndpoint(std::string path) : path_(std::move(path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DTM_REQUIRE(!path_.empty() && path_.size() < sizeof(addr.sun_path),
              "control socket path '" << path_ << "' empty or too long (max "
                                      << sizeof(addr.sun_path) - 1 << ")");
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DTM_REQUIRE(listen_fd_ >= 0,
              "control socket: socket() failed (" << std::strerror(errno)
                                                  << ")");
  ::unlink(path_.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw CheckError("control socket: bind('" + path_ + "') failed (" +
                     std::strerror(err) + ")");
  }
  if (::listen(listen_fd_, 8) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    throw CheckError("control socket: listen failed (" +
                     std::string(std::strerror(err)) + ")");
  }
  set_nonblocking(listen_fd_);
}

ControlEndpoint::~ControlEndpoint() {
  for (const Conn& c : conns_) ::close(c.fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

int ControlEndpoint::poll(const Handler& handler) {
  // Accept everything pending.
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN / EWOULDBLOCK: nothing waiting
    set_nonblocking(fd);
    conns_.push_back({fd, {}});
  }

  int handled = 0;
  for (std::size_t i = 0; i < conns_.size();) {
    Conn& c = conns_[i];
    bool closed = false;
    char chunk[4096];
    while (true) {
      const ssize_t n = ::read(c.fd, chunk, sizeof(chunk));
      if (n > 0) {
        c.buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) closed = true;  // peer finished sending
      break;                      // EAGAIN or EOF
    }
    // Dispatch complete lines; a trailing unterminated line on a closed
    // connection counts as a final command (echo without -n, printf, etc.).
    std::size_t start = 0;
    while (true) {
      std::size_t eol = c.buf.find('\n', start);
      std::string line;
      if (eol != std::string::npos) {
        line = c.buf.substr(start, eol - start);
        start = eol + 1;
      } else if (closed && start < c.buf.size()) {
        line = c.buf.substr(start);
        start = c.buf.size();
      } else {
        break;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string reply = handler(line);
      reply.push_back('\n');
      // Best effort: a slow/gone reader must not wedge the serve loop.
      (void)!::write(c.fd, reply.data(), reply.size());
      ++handled;
    }
    c.buf.erase(0, start);
    if (closed) {
      ::close(c.fd);
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return handled;
}

}  // namespace dtm
