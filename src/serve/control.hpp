// ControlEndpoint — line-oriented local control socket (serve layer;
// docs/ARCHITECTURE.md §7).
//
// dtm_serve listens on an AF_UNIX stream socket so a live service can be
// observed and steered without signals or restarts:
//
//   $ echo stats | nc -U /tmp/dtm.sock        # one JSON metrics snapshot
//   $ echo 'fault drop=0.05,jitter=4' | nc -U /tmp/dtm.sock
//   $ echo 'fault none' | nc -U /tmp/dtm.sock # calm the chaos back down
//   $ echo drain | nc -U /tmp/dtm.sock        # graceful drain
//
// The endpoint is deliberately dumb: non-blocking accept/read, one command
// per line, one response line per command, no threads. The serve loop
// calls poll() between pump() slices, so command handling interleaves with
// simulation at window granularity and never races engine state. Command
// *semantics* live in the caller's handler (tools/dtm_serve.cpp); this
// class only moves bytes.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace dtm {

class ControlEndpoint {
 public:
  /// Binds and listens on `path` (an existing socket file there is
  /// replaced). Throws CheckError on any socket failure.
  explicit ControlEndpoint(std::string path);
  ~ControlEndpoint();

  ControlEndpoint(const ControlEndpoint&) = delete;
  ControlEndpoint& operator=(const ControlEndpoint&) = delete;

  /// Maps one command line (trimmed, no newline) to one response string
  /// (a newline is appended on the wire).
  using Handler = std::function<std::string(const std::string&)>;

  /// Accepts pending connections and processes every complete line
  /// buffered so far; never blocks. Returns the number of commands
  /// handled.
  int poll(const Handler& handler);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct Conn {
    int fd = -1;
    std::string buf;
  };

  std::string path_;
  int listen_fd_ = -1;
  std::vector<Conn> conns_;
};

}  // namespace dtm
