// TxnSource — open-ended transaction generators for the serve loop (serve
// layer; docs/ARCHITECTURE.md §7).
//
// A Workload (sim/workload.hpp) is closed: it owns a finite quota, tracks
// everything it generated for end-of-run lower bounds, and reports
// `finished()`. A service source is the opposite: it offers transactions
// indefinitely at a configured pacing and keeps no per-transaction history
// (memory stays bounded over unbounded runs); the serve loop decides when
// to stop listening (duration / drain). Offered transactions carry the
// source's ids and gen_time == the offer step; the server re-stamps both at
// admission, so a queued transaction enters the engine at its admission
// step while latency is still accounted from the offer.
//
// Two implementations:
//   SyntheticSource — rate-paced (deterministic fractional accumulator, so
//     an average of `rate` offers per step lands on exact steps), Zipf
//     object hotspots, and square-wave bursts (every `burst_every` steps a
//     `burst_len`-step wave multiplies the rate by `burst_mult` — the
//     adversarially paced arrivals of Busch et al.'s stability setting).
//   TraceSource — replays a dtm-instance v1 file's arrival list at its
//     recorded gen_times (sim/io.hpp), optionally looping with a period.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace dtm {

class TxnSource {
 public:
  virtual ~TxnSource() = default;

  /// Objects and their origins; called once before the run.
  [[nodiscard]] virtual std::vector<ObjectOrigin> objects() = 0;

  /// Transactions offered at step `now` (monotone calls; the loop lands on
  /// every step named by next_offer_time).
  [[nodiscard]] virtual std::vector<Transaction> offers_at(Time now) = 0;

  /// Next step with pending offers; kNoTime when the source is exhausted
  /// (synthetic sources never are).
  [[nodiscard]] virtual Time next_offer_time() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

struct SyntheticSourceOptions {
  double rate = 4.0;             ///< mean offered transactions per step
  std::int32_t num_objects = 0;  ///< 0 => one object per node
  std::int32_t k = 2;            ///< objects requested per transaction
  double zipf_s = 0.0;           ///< 0 = uniform object popularity
  double write_fraction = 1.0;
  Time burst_every = 0;  ///< burst wave period; 0 = steady rate
  Time burst_len = 0;    ///< wave length (clamped to the period)
  double burst_mult = 1.0;  ///< rate multiplier inside a wave
  std::uint64_t seed = 42;
};

class SyntheticSource final : public TxnSource {
 public:
  SyntheticSource(const Network& net, SyntheticSourceOptions opts);

  [[nodiscard]] std::vector<ObjectOrigin> objects() override;
  [[nodiscard]] std::vector<Transaction> offers_at(Time now) override;
  [[nodiscard]] Time next_offer_time() const override { return next_time_; }
  [[nodiscard]] std::string name() const override { return "synthetic"; }

  /// Offered rate at step `t` (base rate, or burst_mult times it inside a
  /// wave).
  [[nodiscard]] double rate_at(Time t) const;

 private:
  /// Advances the fractional accumulator until a step with >= 1 offer is
  /// found, caching (next_time_, next_count_).
  void find_next(Time from);
  [[nodiscard]] std::vector<ObjId> sample_objects();

  const Network& net_;
  SyntheticSourceOptions opts_;
  Rng rng_;
  std::unique_ptr<ZipfSampler> zipf_;
  double carry_ = 0.0;
  Time next_time_ = kNoTime;
  std::int64_t next_count_ = 0;
  TxnId next_id_ = 0;
};

/// Replays an explicit arrival list at its recorded gen_times. With
/// `loop_period` > 0 the list repeats shifted by the period each cycle,
/// turning a finite trace into an open-ended source.
class TraceSource final : public TxnSource {
 public:
  TraceSource(std::vector<ObjectOrigin> origins,
              std::vector<Transaction> txns, Time loop_period = 0);

  [[nodiscard]] std::vector<ObjectOrigin> objects() override {
    return origins_;
  }
  [[nodiscard]] std::vector<Transaction> offers_at(Time now) override;
  [[nodiscard]] Time next_offer_time() const override;
  [[nodiscard]] std::string name() const override { return "trace"; }

 private:
  std::vector<ObjectOrigin> origins_;
  std::vector<Transaction> txns_;  ///< sorted by gen_time
  Time loop_period_ = 0;
  Time cycle_shift_ = 0;
  std::size_t next_ = 0;
  TxnId next_id_ = 0;
};

}  // namespace dtm
