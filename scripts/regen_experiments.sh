#!/usr/bin/env bash
# Regenerates every experiment table quoted in EXPERIMENTS.md.
# Usage: scripts/regen_experiments.sh [build-dir] [out-dir]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"

if [ ! -d "$BUILD/bench" ]; then
  echo "build directory '$BUILD' not found — run:" >&2
  echo "  cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

mkdir -p "$OUT"
for b in "$BUILD"/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "== $name"
  "$b" > "$OUT/$name.txt" 2>&1
done
echo "experiment outputs written to $OUT/"
