#!/usr/bin/env bash
# Builds Release and runs one of the JSON-emitting benchmark harnesses
# (docs/PERF.md, docs/EXPERIMENTS.md).
# Usage: scripts/run_bench.sh [--quick] [--bench NAME] [build-dir] [out-json]
#   NAME is the harness suffix: fastpath (default), bucket_fastpath, chaos,
#   serve, parallel, simd, stream, memory, ... — anything with a
#   bench/bench_NAME.cpp that takes --out.
#   For bench_memory's allocs/step columns, point build-dir at a tree
#   configured with -DDTM_ALLOC_TRACK=ON (docs/EXPERIMENTS.md F20).
set -euo pipefail

QUICK=""
BENCH="fastpath"
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK="--quick"; shift ;;
    --bench) BENCH="$2"; shift 2 ;;
    *) break ;;
  esac
done
BUILD="${1:-build-release}"
OUT="${2:-BENCH_${BENCH}.json}"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" --target "bench_${BENCH}" -j "$(nproc)"

"$BUILD/bench/bench_${BENCH}" $QUICK --out "$OUT"
echo "results in $OUT"
