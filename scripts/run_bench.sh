#!/usr/bin/env bash
# Builds Release and runs the fast-path benchmark (docs/PERF.md).
# Usage: scripts/run_bench.sh [--quick] [build-dir] [out-json]
set -euo pipefail

QUICK=""
if [ "${1:-}" = "--quick" ]; then
  QUICK="--quick"
  shift
fi
BUILD="${1:-build-release}"
OUT="${2:-BENCH_fastpath.json}"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" --target bench_fastpath -j "$(nproc)"

"$BUILD/bench/bench_fastpath" $QUICK --out "$OUT"
echo "results in $OUT"
