// Zero-allocation regression pins for the messaging hot path (PERF.md §8).
//
// Built with -DDTM_ALLOC_TRACK=ON these tests assert, via the counting
// operator new/delete hooks, that the steady-state send → drain loop — the
// shape dist-bucket's pump_messages drives every step — performs ZERO heap
// allocations once warmed up: wheel slots, drain scratch, and the reply
// pool all retain capacity. Without the option the hooks read zero and the
// assertions are skipped (the loops still run as smoke).
//
// An exact-zero pin needs the per-slot load pattern to be PERIODIC with a
// period dividing the ring size: slot s serves times s, s + kSlots, ...,
// so its capacity record stabilizes only once it has seen its maximum
// load, and a pattern with period p | kSlots shows every slot its full
// load set within one warmed turn. (Randomized traffic keeps setting rare
// new per-slot records forever — allocs/step tends to zero but never
// pins; bench_memory measures that asymptotic profile.) The traffic below
// therefore derives everything from `now` through power-of-two masks.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "dist/bus.hpp"
#include "net/topology.hpp"
#include "util/alloc.hpp"
#include "util/timing_wheel.hpp"

namespace dtm {
namespace {

constexpr Time kWarmupSteps =
    2 * static_cast<Time>(TimingWheel<Message>::kSlots);
constexpr Time kMeasuredSteps = 512;

TEST(AllocPin, TimingWheelScheduleDrainLoopIsAllocationFree) {
  TimingWheel<std::int64_t> wheel;
  std::vector<std::int64_t> scratch;
  const auto step = [&](Time now) {
    for (int i = 0; i < 4; ++i)  // period-8 offset pattern, 8 | kSlots
      wheel.schedule(now + ((now + i * 5) & 7), now + i);
    scratch.clear();
    wheel.drain_until(now, scratch);
  };
  Time now = 0;
  for (; now < kWarmupSteps; ++now) step(now);

  AllocScope scope;
  for (; now < kWarmupSteps + kMeasuredSteps; ++now) step(now);
  if (!alloc_tracking_enabled())
    GTEST_SKIP() << "DTM_ALLOC_TRACK is OFF: counters read zero vacuously";
  EXPECT_EQ(scope.allocs(), 0)
      << "timing-wheel steady state allocated ("
      << scope.allocs() << " allocs / " << kMeasuredSteps << " steps)";
  EXPECT_EQ(scope.bytes(), 0);
}

TEST(AllocPin, BusSendDrainLoopIsAllocationFree) {
  // The dist-bucket messaging step: a few probes, replies (inline user
  // lists), and reports per step, drained into persistent scratch.
  const Network net = make_line(10);
  MessageBus bus(*net.oracle);
  std::vector<Message> scratch;
  const auto step = [&](Time now) {
    // Deterministic period-16 endpoint pattern (16 | kSlots), so delivery
    // times now + dist repeat per slot and capacities pin after warmup.
    int pick = 0;
    const auto node = [&] {
      return static_cast<NodeId>(((now >> (pick++ & 3)) + pick) & 7);
    };
    bus.send(node(), node(), now,
             ProbeMsg{static_cast<TxnId>(now), node(), 3, 0, now, 0});
    ReplyMsg reply;
    reply.requester = static_cast<TxnId>(now);
    reply.object = 3;
    reply.object_node = node();
    reply.object_free_at = now + 5;
    for (int u = 0; u < 4; ++u)  // within ReplyUsers inline capacity
      reply.users.emplace_back(static_cast<TxnId>(now + u), node());
    bus.send(node(), node(), now, std::move(reply));
    bus.send(node(), node(), now, ReportMsg{static_cast<TxnId>(now), 0});
    bus.drain_into(now, scratch);
  };
  Time now = 0;
  for (; now < kWarmupSteps; ++now) step(now);

  AllocScope scope;
  for (; now < kWarmupSteps + kMeasuredSteps; ++now) step(now);
  if (!alloc_tracking_enabled())
    GTEST_SKIP() << "DTM_ALLOC_TRACK is OFF: counters read zero vacuously";
  EXPECT_EQ(scope.allocs(), 0)
      << "bus send->drain steady state allocated ("
      << scope.allocs() << " allocs / " << kMeasuredSteps << " steps)";
  EXPECT_EQ(scope.bytes(), 0);
}

TEST(AllocPin, SpilledReplyPoolRoundTripIsAllocationFree) {
  // Replies whose user lists exceed the inline capacity spill to the heap;
  // dist-bucket parks those buffers in a pool and revives them for the next
  // reply. Once every pooled buffer has warmed to the working size, the
  // round trip must not touch the allocator (SmallVector's move-assign
  // reuses the revived buffer's capacity).
  const Network net = make_line(10);
  MessageBus bus(*net.oracle);
  std::vector<Message> scratch;
  std::vector<ReplyUsers> pool;
  const std::size_t spill =
      2 * ReplyUsers::inline_capacity();  // forces heap storage
  const auto step = [&](Time now) {
    ReplyMsg reply;
    reply.requester = static_cast<TxnId>(now);
    reply.object = 1;
    if (!pool.empty()) {
      reply.users = std::move(pool.back());
      pool.pop_back();
      reply.users.clear();
    }
    for (std::size_t u = 0; u < spill; ++u)
      reply.users.emplace_back(static_cast<TxnId>(now + static_cast<Time>(u)),
                               static_cast<NodeId>(u % 8));
    // Period-16 endpoints (16 | kSlots) — see the header comment.
    bus.send(static_cast<NodeId>(now & 7),
             static_cast<NodeId>((now >> 1) & 7), now, std::move(reply));
    bus.drain_into(now, scratch);
    for (Message& m : scratch) {
      auto* r = std::get_if<ReplyMsg>(&m.payload);
      ASSERT_NE(r, nullptr);
      EXPECT_EQ(r->users.size(), spill);
      if (r->users.spilled() && pool.size() < 16)
        pool.push_back(std::move(r->users));
    }
  };
  Time now = 0;
  for (; now < kWarmupSteps; ++now) step(now);

  AllocScope scope;
  for (; now < kWarmupSteps + kMeasuredSteps; ++now) step(now);
  if (!alloc_tracking_enabled())
    GTEST_SKIP() << "DTM_ALLOC_TRACK is OFF: counters read zero vacuously";
  EXPECT_EQ(scope.allocs(), 0)
      << "pooled spilled-reply loop allocated (" << scope.allocs()
      << " allocs / " << kMeasuredSteps << " steps)";
}

TEST(AllocPin, CountersAgreeWithTrackingMode) {
  // Sanity on the hooks themselves: when tracking is on, an explicit heap
  // allocation is visible in the thread counters; when off, everything
  // reads zero and enabled() says so.
  AllocScope scope;
  // Direct operator-new call: new-expression elision rules don't apply, so
  // the optimizer cannot drop the allocation.
  void* p = ::operator new(256);
  const std::int64_t seen = scope.allocs();
  ::operator delete(p);
  if (alloc_tracking_enabled()) {
    EXPECT_GE(seen, 1);
    EXPECT_GE(scope.delta().frees, 1);
    const AllocCounters global = global_alloc_counters();
    EXPECT_GE(global.allocs, thread_alloc_counters().allocs);
  } else {
    EXPECT_EQ(seen, 0);
    EXPECT_EQ(thread_alloc_counters().allocs, 0);
    EXPECT_EQ(global_alloc_counters().allocs, 0);
  }
}

}  // namespace
}  // namespace dtm
