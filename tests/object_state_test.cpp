// Tests for core/object_state: the mobile-object position abstraction,
// including mid-flight redirects (the engine relies on time_to() never
// under-estimating what route_to() can deliver).
#include <gtest/gtest.h>

#include "core/object_state.hpp"
#include "net/topology.hpp"

namespace dtm {
namespace {

class ObjectStateTest : public ::testing::Test {
 protected:
  Network net_ = make_line(10);
  const DistanceOracle& oracle() { return *net_.oracle; }
};

TEST_F(ObjectStateTest, RestsAtOrigin) {
  const ObjectState o(1, 3, 0);
  EXPECT_FALSE(o.in_transit());
  EXPECT_EQ(o.at(), 3);
  EXPECT_EQ(o.time_to(7, 0, oracle()), 4);
  EXPECT_EQ(o.time_to(3, 0, oracle()), 0);
}

TEST_F(ObjectStateTest, LatencyFactorScales) {
  const ObjectState o(1, 2, 0);
  EXPECT_EQ(o.time_to(6, 0, oracle(), 2), 8);
}

TEST_F(ObjectStateTest, RouteAndArrive) {
  ObjectState o(1, 2, 0);
  o.route_to(8, 5, oracle());
  EXPECT_TRUE(o.in_transit());
  EXPECT_EQ(o.dest(), 8);
  EXPECT_EQ(o.arrive_time(), 5 + 6);
  o.settle(10);  // not there yet
  EXPECT_TRUE(o.in_transit());
  o.settle(11);
  EXPECT_FALSE(o.in_transit());
  EXPECT_EQ(o.at(), 8);
}

TEST_F(ObjectStateTest, RouteToSelfIsNoop) {
  ObjectState o(1, 4, 0);
  o.route_to(4, 3, oracle());
  EXPECT_FALSE(o.in_transit());
  EXPECT_EQ(o.at(), 4);
}

TEST_F(ObjectStateTest, TimeToMidFlightTwoRouteBound) {
  ObjectState o(1, 0, 0);
  o.route_to(9, 0, oracle());  // arrives at 9
  // At t=4 the object is "4 along"; to node 2: back-route = 4 + 2 = 6,
  // forward-route = 5 + 7 = 12.
  EXPECT_EQ(o.time_to(2, 4, oracle()), 6);
  // To node 9 (its destination): remaining 5.
  EXPECT_EQ(o.time_to(9, 4, oracle()), 5);
  // To node 0: back-route 4.
  EXPECT_EQ(o.time_to(0, 4, oracle()), 4);
}

TEST_F(ObjectStateTest, RedirectBackward) {
  ObjectState o(1, 0, 0);
  o.route_to(9, 0, oracle());
  const Time promised = o.time_to(2, 4, oracle());  // 6
  o.route_to(2, 4, oracle());
  EXPECT_TRUE(o.in_transit());
  EXPECT_EQ(o.dest(), 2);
  EXPECT_EQ(o.arrive_time(), 4 + promised);
  // Pre-leg transient: at t=5 it is still heading back toward node 0.
  EXPECT_LE(o.time_to(2, 5, oracle()), promised - 1);
  o.settle(10);
  EXPECT_FALSE(o.in_transit());
  EXPECT_EQ(o.at(), 2);
}

TEST_F(ObjectStateTest, RedirectForwardWhenCheaper) {
  ObjectState o(1, 0, 0);
  o.route_to(5, 0, oracle());
  // At t=4, remaining 1; node 7 via forward = 1 + 2 = 3, via back = 4 + 7.
  const Time promised = o.time_to(7, 4, oracle());
  EXPECT_EQ(promised, 3);
  o.route_to(7, 4, oracle());
  EXPECT_EQ(o.dest(), 7);
  EXPECT_EQ(o.arrive_time(), 7);
}

TEST_F(ObjectStateTest, RedirectToCurrentDestinationIsNoop) {
  ObjectState o(1, 0, 0);
  o.route_to(6, 0, oracle());
  o.route_to(6, 3, oracle());
  EXPECT_EQ(o.arrive_time(), 6);
}

TEST_F(ObjectStateTest, RedirectNeverBeatsPromise) {
  // Property: for any redirect time and target, the new arrival equals the
  // time_to() bound quoted just before the redirect — schedules built on
  // the bound stay feasible.
  for (Time redirect_at = 1; redirect_at <= 8; ++redirect_at) {
    for (NodeId target = 0; target < 10; ++target) {
      ObjectState o(1, 0, 0);
      o.route_to(9, 0, oracle());
      const Time promised = o.time_to(target, redirect_at, oracle());
      o.route_to(target, redirect_at, oracle());
      if (o.in_transit()) {
        EXPECT_EQ(o.arrive_time(), redirect_at + promised);
        EXPECT_EQ(o.dest(), target);
      } else {
        EXPECT_EQ(promised, 0);
        EXPECT_EQ(o.at(), target);
      }
    }
  }
}

TEST_F(ObjectStateTest, RouteAfterArrivalUsesRestingNode) {
  ObjectState o(1, 0, 0);
  o.route_to(4, 0, oracle());
  o.route_to(7, 10, oracle());  // long past arrival at t=4
  EXPECT_EQ(o.arrive_time(), 10 + 3);
}

TEST_F(ObjectStateTest, HalfSpeedTransit) {
  ObjectState o(1, 0, 0);
  o.route_to(4, 0, oracle(), 2);
  EXPECT_EQ(o.arrive_time(), 8);
  // Mid-flight at t=4 (2 distance covered at half speed): to node 0
  // back-route costs the covered time 4 plus scaled distance 0.
  EXPECT_EQ(o.time_to(0, 4, oracle(), 2), 4);
}

TEST_F(ObjectStateTest, LastTxnTracking) {
  ObjectState o(1, 0, 0);
  EXPECT_EQ(o.last_txn(), kNoTxn);
  o.set_last_txn(42);
  EXPECT_EQ(o.last_txn(), 42);
}

TEST_F(ObjectStateTest, AccessorsGuardState) {
  ObjectState o(1, 0, 0);
  EXPECT_THROW((void)o.dest(), CheckError);
  EXPECT_THROW((void)o.arrive_time(), CheckError);
  o.route_to(5, 0, oracle());
  EXPECT_THROW((void)o.at(), CheckError);
}

}  // namespace
}  // namespace dtm
