// Tests for sim/gantt: schedule rendering.
#include <gtest/gtest.h>

#include "sim/gantt.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

TEST(Gantt, EmptySchedule) {
  EXPECT_NE(render_gantt({}, 4).find("empty"), std::string::npos);
}

TEST(Gantt, MarksCommitCells) {
  const std::vector<ScheduledTxn> s{{txn(1, 0, 0, {0}), 0},
                                    {txn(2, 2, 0, {0}), 5}};
  GanttOptions o;
  o.width = 10;
  const std::string g = render_gantt(s, 4, o);
  // Cell width 1 (makespan 5 < width): node 0 commits in cell 0, node 2 in
  // cell 5; node 1/3 idle and skipped.
  EXPECT_NE(g.find("node 0\t|#"), std::string::npos);
  EXPECT_NE(g.find("node 2\t|.....#"), std::string::npos);
  EXPECT_EQ(g.find("node 1"), std::string::npos);
  EXPECT_EQ(g.find("node 3"), std::string::npos);
}

TEST(Gantt, IncludesIdleNodesWhenAsked) {
  const std::vector<ScheduledTxn> s{{txn(1, 0, 0, {0}), 0}};
  GanttOptions o;
  o.skip_idle_nodes = false;
  const std::string g = render_gantt(s, 3, o);
  EXPECT_NE(g.find("node 1"), std::string::npos);
  EXPECT_NE(g.find("node 2"), std::string::npos);
}

TEST(Gantt, CompressesLongSchedules) {
  std::vector<ScheduledTxn> s;
  s.push_back({txn(1, 0, 0, {0}), 0});
  s.push_back({txn(2, 0, 0, {0}), 999});
  GanttOptions o;
  o.width = 10;
  const std::string g = render_gantt(s, 1, o);
  EXPECT_NE(g.find("step(s)/cell"), std::string::npos);
  // Row length bounded by the width budget (plus decorations).
  const auto row_start = g.find("node 0\t|");
  ASSERT_NE(row_start, std::string::npos);
  const auto row_end = g.find('\n', row_start);
  EXPECT_LE(row_end - row_start, 8u + 12u + 2u);
}

TEST(Gantt, WidthGuard) {
  GanttOptions o;
  o.width = 2;
  EXPECT_THROW(render_gantt({{txn(1, 0, 0, {0}), 0}}, 1, o), CheckError);
}

TEST(Itineraries, ChainsAndTotals) {
  const Network net = make_line(10);
  const std::vector<ObjectOrigin> origins{origin(0, 0), origin(1, 9)};
  const std::vector<ScheduledTxn> s{{txn(1, 3, 0, {0}), 3},
                                    {txn(2, 7, 0, {0, 1}), 8}};
  const std::string it = render_itineraries(s, origins, *net.oracle);
  EXPECT_NE(it.find("obj 0: 0@0 -(3)-> 3@3 -(4)-> 7@8"), std::string::npos);
  EXPECT_NE(it.find("[2 commits, 7 travelled]"), std::string::npos);
  EXPECT_NE(it.find("obj 1: 9@0 -(2)-> 7@8"), std::string::npos);
}

TEST(Itineraries, UnusedObjectMarked) {
  const Network net = make_line(4);
  const std::string it =
      render_itineraries({}, {origin(5, 2)}, *net.oracle);
  EXPECT_NE(it.find("obj 5: 2@0  [unused]"), std::string::npos);
}

}  // namespace
}  // namespace dtm
