// Tests for batch/: problems, the ordered-chain engine, every per-topology
// scheduler, F_A estimation, and the baselines.
#include <gtest/gtest.h>

#include "batch/batch_scheduler.hpp"
#include "core/lower_bound.hpp"
#include "net/topology.hpp"

namespace dtm {
namespace {

BatchProblem line_problem(const Network& net) {
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.now = 0;
  p.objects = {{0, 0, 0, false}, {1, 9, 0, false}};
  p.txns = {{1, 2, {0}}, {2, 7, {0, 1}}, {3, 4, {1}}};
  return p;
}

TEST(BatchProblem, ObjectLookup) {
  const Network net = make_line(10);
  const BatchProblem p = line_problem(net);
  EXPECT_EQ(p.object(1).node, 9);
  EXPECT_THROW((void)p.object(7), CheckError);
  EXPECT_EQ(p.travel(0, 4), 4);
}

TEST(BatchResult, ExecLookup) {
  BatchResult r;
  r.assignments = {{1, 5}, {2, 9}};
  EXPECT_EQ(r.exec_of(2), 9);
  EXPECT_THROW((void)r.exec_of(3), CheckError);
}

TEST(ChainEvaluate, FollowsOrderAndChains) {
  const Network net = make_line(10);
  const BatchProblem p = line_problem(net);
  const BatchResult r = chain_evaluate(p, {0, 1, 2});
  // txn1@2 gets obj0 after 2 steps; txn2@7: obj0 from node 2 (released at
  // 2) = 2+5 = 7, obj1 from 9 = 2; exec 7. txn3@4: obj1 from node 7 at 7
  // -> 7+3 = 10.
  EXPECT_EQ(r.exec_of(1), 2);
  EXPECT_EQ(r.exec_of(2), 7);
  EXPECT_EQ(r.exec_of(3), 10);
  EXPECT_EQ(r.makespan, 10);
}

TEST(ChainEvaluate, OrderMatters) {
  const Network net = make_line(10);
  const BatchProblem p = line_problem(net);
  const BatchResult r = chain_evaluate(p, {2, 1, 0});
  EXPECT_EQ(r.exec_of(3), 5);  // obj1 travels 9 -> 4
  // txn2 next: obj1 from 4 (at 5) -> 5+3 = 8; obj0 from 0 -> 7. exec 8.
  EXPECT_EQ(r.exec_of(2), 8);
  // txn1 last: obj0 from node 7 at 8 -> 8+5 = 13.
  EXPECT_EQ(r.exec_of(1), 13);
}

TEST(ChainEvaluate, RespectsReadyTimesAndFromTxn) {
  const Network net = make_line(10);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.now = 100;
  p.objects = {{0, 3, 120, true}};
  p.txns = {{1, 3, {0}}};
  const BatchResult r = chain_evaluate(p, {0});
  EXPECT_EQ(r.exec_of(1), 121);  // from_txn forces +1 at distance zero
  EXPECT_EQ(r.makespan, 21);
}

TEST(ChainEvaluate, RejectsBadOrderSize) {
  const Network net = make_line(10);
  const BatchProblem p = line_problem(net);
  EXPECT_THROW((void)chain_evaluate(p, {0, 1}), CheckError);
}

TEST(EstimateFa, EmptyProblemUsesHorizon) {
  const Network net = make_line(10);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.now = 50;
  p.objects = {{0, 3, 80, true}};
  Rng rng(1);
  const auto algo = make_coloring_batch();
  EXPECT_EQ(estimate_fa(*algo, p, rng), 30);
}

TEST(EstimateFa, CoversLateAvailability) {
  const Network net = make_line(10);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.now = 0;
  // Object 1 is pinned far in the future but unused by the new txns.
  p.objects = {{0, 0, 0, false}, {1, 5, 90, true}};
  p.txns = {{1, 0, {0}}};
  Rng rng(1);
  const auto algo = make_coloring_batch();
  EXPECT_GE(estimate_fa(*algo, p, rng), 90);
}

// ---- Every scheduler produces feasible schedules on random problems ----

struct SchedulerCase {
  std::string label;
  std::function<std::unique_ptr<BatchScheduler>()> make;
  std::function<Network()> net;
};

class BatchSchedulerSweep : public ::testing::TestWithParam<int> {
 public:
  static std::vector<SchedulerCase> cases() {
    return {
        {"coloring-line", make_coloring_batch, [] { return make_line(12); }},
        {"coloring-clique", make_coloring_batch,
         [] { return make_clique(10); }},
        {"line", make_line_batch, [] { return make_line(12); }},
        {"clique", make_clique_batch, [] { return make_clique(10); }},
        {"cluster", [] { return make_cluster_batch(3); },
         [] { return make_cluster(4, 3, 4); }},
        {"star", [] { return make_star_batch(4); },
         [] { return make_star(3, 4); }},
        {"grid", [] { return make_grid_snake_batch({3, 4}); },
         [] { return make_grid({3, 4}); }},
        {"hypercube", make_hypercube_gray_batch,
         [] { return make_hypercube(3); }},
        {"tsp", make_tsp_batch, [] { return make_grid({3, 4}); }},
        {"sequential", make_sequential_batch, [] { return make_line(12); }},
        {"local-search", [] { return make_local_search_batch(3); },
         [] { return make_grid({3, 4}); }},
    };
  }
};

TEST_P(BatchSchedulerSweep, FeasibleAndAboveLowerBound) {
  const auto c = cases()[static_cast<std::size_t>(GetParam())];
  const Network net = c.net();
  const auto algo = c.make();
  Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    BatchProblem p;
    p.oracle = net.oracle.get();
    p.now = trial * 10;
    const ObjId w = 5;
    std::vector<ObjectOrigin> origins;
    for (ObjId o = 0; o < w; ++o) {
      const auto node =
          static_cast<NodeId>(rng.uniform_int(0, net.num_nodes() - 1));
      p.objects.push_back({o, node, p.now, false});
      origins.push_back({o, node, 0});
    }
    std::vector<Transaction> txns;
    for (TxnId i = 0; i < 8; ++i) {
      const auto objs = rng.sample_distinct(w, 2);
      const auto node =
          static_cast<NodeId>(rng.uniform_int(0, net.num_nodes() - 1));
      p.txns.push_back({i, node, {objs[0], objs[1]}});
      Transaction t;
      t.id = i;
      t.node = node;
      t.gen_time = 0;
      t.accesses = write_set({objs[0], objs[1]});
      txns.push_back(t);
    }
    // schedule() internally runs check_batch_result (feasibility); if it
    // returns, the schedule is valid.
    const BatchResult r = algo->schedule(p, rng);
    EXPECT_EQ(r.assignments.size(), p.txns.size()) << c.label;
    // Makespan can never beat the certified lower bound.
    const auto lb = makespan_lower_bound(txns, origins, *net.oracle);
    EXPECT_GE(r.makespan + 1, lb.best()) << c.label;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, BatchSchedulerSweep,
                         ::testing::Range(0, 11));

TEST(LineBatch, SweepsLeftToRight) {
  const Network net = make_line(10);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.objects = {{0, 0, 0, false}};
  p.txns = {{1, 8, {0}}, {2, 1, {0}}, {3, 5, {0}}};
  Rng rng(1);
  const BatchResult r = make_line_batch()->schedule(p, rng);
  // Sweep order 1, 5, 8: execs 1, 5, 8 — a single pass.
  EXPECT_EQ(r.exec_of(2), 1);
  EXPECT_EQ(r.exec_of(3), 5);
  EXPECT_EQ(r.exec_of(1), 8);
}

TEST(SequentialBatch, FullySerial) {
  const Network net = make_clique(6);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.objects = {{0, 0, 0, false}, {1, 1, 0, false}};
  p.txns = {{1, 0, {0}}, {2, 1, {1}}, {3, 2, {0}}};
  Rng rng(1);
  const BatchResult r = make_sequential_batch()->schedule(p, rng);
  // Even independent txns never share a step.
  EXPECT_LT(r.exec_of(1), r.exec_of(2));
  EXPECT_LT(r.exec_of(2), r.exec_of(3));
}

TEST(ClusterStarBatch, RandomizedFlagSet) {
  EXPECT_TRUE(make_cluster_batch(3)->randomized());
  EXPECT_TRUE(make_star_batch(3)->randomized());
  EXPECT_FALSE(make_line_batch()->randomized());
  EXPECT_FALSE(make_coloring_batch()->randomized());
}

TEST(ColoringBatch, CliqueRespectsLoadBound) {
  // On the clique with l transactions sharing one object, coloring gives
  // makespan O(l) — the Theorem 3 structure.
  const Network net = make_clique(16);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.objects = {{0, 0, 0, false}};
  for (TxnId i = 0; i < 12; ++i)
    p.txns.push_back({i, static_cast<NodeId>(i + 1), {0}});
  Rng rng(1);
  const BatchResult r = make_coloring_batch()->schedule(p, rng);
  EXPECT_LE(r.makespan, 2 * 12);
  EXPECT_GE(r.makespan, 11);  // 12 commits of one object need 11 gaps
}

TEST(LocalSearchBatch, ImprovesOnBadSeedOrders) {
  // A line instance where the natural id order ping-pongs the object; the
  // best chain order sweeps. Local search must land at (or near) the
  // sweep's makespan.
  const Network net = make_line(16);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.objects = {{0, 0, 0, false}};
  // Alternating far/near users: id order is terrible.
  p.txns = {{1, 15, {0}}, {2, 1, {0}}, {3, 14, {0}}, {4, 2, {0}},
            {5, 13, {0}}, {6, 3, {0}}};
  Rng rng(5);
  const Time pingpong = chain_evaluate(p, {0, 1, 2, 3, 4, 5}).makespan;
  const BatchResult tuned = make_local_search_batch(6)->schedule(p, rng);
  EXPECT_LT(tuned.makespan, pingpong);
  // The sweep order (1,2,3 then 13,14,15) costs ~18; allow slack.
  EXPECT_LE(tuned.makespan, pingpong / 2);
}

TEST(LocalSearchBatch, RandomizedFlagSet) {
  EXPECT_TRUE(make_local_search_batch(2)->randomized());
  EXPECT_EQ(make_local_search_batch(2)->name(), "local-search");
  EXPECT_THROW((void)make_local_search_batch(0), CheckError);
}

TEST(HypercubeGray, ConsecutiveRanksOneHop) {
  const Network net = make_hypercube(4);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.objects = {{0, 0, 0, false}};
  for (NodeId u = 0; u < 16; ++u) p.txns.push_back({u, u, {0}});
  Rng rng(1);
  const BatchResult r = make_hypercube_gray_batch()->schedule(p, rng);
  // A Gray walk visits all 16 nodes with unit hops: one object can follow
  // it in 16 + small steps; far below the naive 16 * diameter.
  EXPECT_LE(r.makespan, 16 + 4);
}

}  // namespace
}  // namespace dtm
