// Tests for dist/dist_bucket: Algorithm 3 — discovery delays, home-cluster
// choice, partial buckets, Corollary 1, and end-to-end validity at
// half-speed object motion.
#include <gtest/gtest.h>

#include "dist/dist_bucket.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

std::shared_ptr<const BatchScheduler> coloring() {
  return std::shared_ptr<const BatchScheduler>(make_coloring_batch());
}

RunResult run_dist(const Network& net, Workload& wl,
                   DistributedBucketScheduler& sched) {
  RunOptions opts;
  opts.engine.latency_factor = 2;  // §V: objects at half speed
  opts.validate = true;
  return run_experiment(net, wl, sched, opts);
}

TEST(DistBucket, RequiresHalfSpeedObjects) {
  const Network net = make_line(8);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 3, 0, {0})});
  DistributedBucketScheduler sched(net, coloring());
  RunOptions opts;
  opts.engine.latency_factor = 1;
  EXPECT_THROW(run_experiment(net, wl, sched, opts), CheckError);
}

TEST(DistBucket, LocalTxnSchedulesFast) {
  const Network net = make_line(8);
  ScriptedWorkload wl({origin(0, 3)}, {txn(1, 3, 0, {0})});
  DistributedBucketScheduler sched(net, coloring());
  const RunResult r = run_dist(net, wl, sched);
  ASSERT_EQ(sched.traces().size(), 1u);
  const auto& tr = sched.traces()[0];
  EXPECT_EQ(tr.arrived, 0);
  // Local object, no conflicts: y = 0 => layer 0; the leader may still be
  // a few hops away, but discovery itself is free.
  EXPECT_EQ(tr.home.layer, 0);
  EXPECT_GE(tr.reported, tr.arrived);
  EXPECT_NE(tr.exec, kNoTime);
  EXPECT_EQ(r.num_txns, 1);
}

TEST(DistBucket, FarObjectRaisesLayer) {
  const Network net = make_line(32);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 31, 0, {0})});
  DistributedBucketScheduler sched(net, coloring());
  (void)run_dist(net, wl, sched);
  const auto& tr = sched.traces()[0];
  // y = 31 => lowest layer with 2^l - 1 >= 31 is l = 5.
  EXPECT_EQ(tr.home.layer, 5);
  // Message-level discovery: probe to node 0 (31 steps) + reply back (31)
  // precede the report.
  EXPECT_GE(tr.reported, 2 * 31);
}

TEST(DistBucket, AnalyticModeChargesFourX) {
  const Network net = make_line(32);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 31, 0, {0})});
  DistBucketOptions o;
  o.message_level_discovery = false;
  DistributedBucketScheduler sched(net, coloring(), o);
  (void)run_dist(net, wl, sched);
  const auto& tr = sched.traces()[0];
  EXPECT_EQ(tr.home.layer, 5);
  EXPECT_GE(tr.reported, 4 * 31);  // the deterministic 4x bound
  EXPECT_EQ(sched.stats().probe_hops, 0);
}

TEST(DistBucket, ProbeChasesMovingObject) {
  // txn1 drags the object from node 0 to node 31; txn2 arrives much later
  // and its probe must follow the forwarding pointer left at node 0.
  const Network net = make_line(32);
  ScriptedWorkload wl({origin(0, 0)},
                      {txn(1, 31, 0, {0}), txn(2, 4, 300, {0})});
  DistributedBucketScheduler sched(net, coloring());
  (void)run_dist(net, wl, sched);
  EXPECT_GE(sched.stats().probe_hops, 1);  // the trail had to be followed
  ASSERT_EQ(sched.traces().size(), 2u);
  EXPECT_NE(sched.traces()[1].exec, kNoTime);
}

TEST(DistBucket, ConflictDistanceRaisesLayer) {
  const Network net = make_line(32);
  // Both transactions use a local-ish object, but conflict with each other
  // across distance 20: the later one must pick a layer covering it.
  ScriptedWorkload wl(
      {origin(0, 10)},
      {txn(1, 10, 0, {0}), txn(2, 30, 1, {0})});
  DistributedBucketScheduler sched(net, coloring());
  (void)run_dist(net, wl, sched);
  ASSERT_EQ(sched.traces().size(), 2u);
  const auto& t2 = sched.traces()[1];
  // txn2: object 20 away, conflicting txn1 20 away => y >= 20 => layer 5.
  EXPECT_GE(t2.home.layer, 5);
}

TEST(DistBucket, StatsAccumulate) {
  const Network net = make_star(4, 4);
  SyntheticOptions wopts;
  wopts.num_objects = 6;
  wopts.k = 2;
  wopts.rounds = 2;
  wopts.seed = 12;
  SyntheticWorkload wl(net, wopts);
  DistributedBucketScheduler sched(net, coloring());
  (void)run_dist(net, wl, sched);
  const DistStats& s = sched.stats();
  EXPECT_GT(s.probes, 0);
  EXPECT_GT(s.reports, 0);
  EXPECT_GT(s.notifications, 0);
  EXPECT_GE(s.message_distance, 0);
}

TEST(DistBucket, TracesCompleteAndOrdered) {
  const Network net = make_grid({4, 4});
  SyntheticOptions wopts;
  wopts.num_objects = 5;
  wopts.k = 2;
  wopts.rounds = 2;
  wopts.seed = 13;
  SyntheticWorkload wl(net, wopts);
  DistributedBucketScheduler sched(net, coloring());
  (void)run_dist(net, wl, sched);
  EXPECT_EQ(sched.traces().size(), wl.generated().size());
  for (const auto& tr : sched.traces()) {
    EXPECT_GE(tr.reported, tr.arrived);
    EXPECT_GE(tr.level, 0);
    EXPECT_TRUE(tr.home.valid());
    ASSERT_NE(tr.exec, kNoTime);
    EXPECT_GT(tr.exec, tr.reported - 1);
  }
}

TEST(DistBucket, Lemma7HeightBound) {
  // A partial i-bucket appears at height at most (i+1, H2-1): in our
  // realization, the chosen layer's radius covers F_A <= 2^i work, so
  // layer <= i+1 (+ slack for the report delay). We assert the paper's
  // qualitative claim: levels and layers stay coupled.
  const Network net = make_line(64);
  SyntheticOptions wopts;
  wopts.num_objects = 8;
  wopts.k = 2;
  wopts.rounds = 2;
  wopts.seed = 14;
  SyntheticWorkload wl(net, wopts);
  DistributedBucketScheduler sched(net, coloring());
  (void)run_dist(net, wl, sched);
  for (const auto& tr : sched.traces())
    EXPECT_LE(tr.home.layer, sched.cover().num_layers() - 1);
}

// End-to-end validity sweep (Corollary 1 checking is on by default and
// would throw on violation).
class DistSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistSweep, ValidOnAllTopologies) {
  const auto nets = testing::small_networks();
  const Network& net = nets[static_cast<std::size_t>(GetParam())];
  SyntheticOptions wopts;
  wopts.num_objects = std::max<std::int32_t>(4, net.num_nodes() / 2);
  wopts.k = 2;
  wopts.rounds = 2;
  wopts.seed = 100 + GetParam();
  SyntheticWorkload wl(net, wopts);
  DistBucketOptions dopts;
  dopts.check_sublayer_disjointness = true;
  DistributedBucketScheduler sched(net, coloring(), dopts);
  const RunResult r = run_dist(net, wl, sched);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  EXPECT_GE(r.ratio, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Topologies, DistSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace dtm
