// Tests for util/timing_wheel.hpp — the shared ring calendar under the
// EventClock and the wheel-backed MessageBus (ARCHITECTURE.md §11).
//
// The wheel's contract is exact (time, insertion-order) drain, ring or
// overflow regardless: these tests drive it directly with adversarial
// schedules — horizon-straddling times, slot aliasing one full turn ahead,
// interleaved ring/overflow inserts at the same time — and cross-check
// every drain against a naive stable-sorted reference. The steady-state
// zero-allocation property is pinned separately in alloc_pin_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timing_wheel.hpp"

namespace dtm {
namespace {

using Wheel = TimingWheel<std::int64_t>;

TEST(TimingWheel, EmptyWheelReportsNoTime) {
  Wheel w;
  EXPECT_EQ(w.next_time(), kNoTime);
  EXPECT_EQ(w.size(), 0);
  EXPECT_EQ(w.overflow_size(), 0);
  std::vector<std::int64_t> out;
  w.drain_until(100, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(w.cursor(), 100);
}

TEST(TimingWheel, DrainsInTimeThenInsertionOrder) {
  Wheel w;
  w.schedule(5, 50);
  w.schedule(3, 30);
  w.schedule(5, 51);  // same time, later insert: must follow 50
  w.schedule(4, 40);
  EXPECT_EQ(w.next_time(), 3);
  std::vector<std::int64_t> out;
  w.drain_until(5, out);
  EXPECT_EQ(out, (std::vector<std::int64_t>{30, 40, 50, 51}));
  EXPECT_EQ(w.size(), 0);
}

TEST(TimingWheel, DrainAppendsAndStopsAtTheBoundary) {
  Wheel w;
  w.schedule(1, 10);
  w.schedule(2, 20);
  w.schedule(3, 30);
  std::vector<std::int64_t> out{99};
  w.drain_until(2, out);  // inclusive boundary, appends after existing
  EXPECT_EQ(out, (std::vector<std::int64_t>{99, 10, 20}));
  EXPECT_EQ(w.size(), 1);
  EXPECT_EQ(w.next_time(), 3);
}

TEST(TimingWheel, OverflowEntriesMigrateLogicallyAndDrainInOrder) {
  Wheel w;
  const Time far = static_cast<Time>(Wheel::kSlots) * 3 + 17;
  w.schedule(far, 2);       // beyond horizon -> overflow
  w.schedule(far + 1, 3);   // beyond horizon -> overflow
  w.schedule(10, 1);        // near -> ring
  EXPECT_EQ(w.overflow_size(), 2);
  EXPECT_EQ(w.next_time(), 10);
  std::vector<std::int64_t> out;
  w.drain_until(far + 1, out);
  EXPECT_EQ(out, (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(w.overflow_size(), 0);
}

TEST(TimingWheel, OverflowPredatesRingAtTheSameTime) {
  // An entry parks in overflow only while its time is beyond the horizon,
  // so at any single time every overflow entry was inserted before every
  // ring entry: the overflow-first tie-break reproduces insertion order.
  Wheel w;
  const Time t = static_cast<Time>(Wheel::kSlots) + 100;
  w.schedule(t, 1);  // horizon is kSlots away: parks in overflow
  std::vector<std::int64_t> out;
  w.drain_until(200, out);  // cursor moves: t is now within the horizon
  ASSERT_TRUE(out.empty());
  w.schedule(t, 2);  // same time, later insert: lands in the ring
  EXPECT_EQ(w.overflow_size(), 1);
  w.drain_until(t, out);
  EXPECT_EQ(out, (std::vector<std::int64_t>{1, 2}));
}

TEST(TimingWheel, SlotAliasingOneFullTurnAhead) {
  // Times t and t + kSlots map to the same slot. Scheduling the far one
  // after draining the near one must not resurrect the popped bucket early.
  Wheel w;
  w.schedule(4, 1);
  std::vector<std::int64_t> out;
  w.drain_until(4, out);
  ASSERT_EQ(out, (std::vector<std::int64_t>{1}));
  const Time aliased = 4 + static_cast<Time>(Wheel::kSlots);
  w.schedule(aliased, 2);
  EXPECT_EQ(w.next_time(), aliased);
  out.clear();
  w.drain_until(aliased - 1, out);
  EXPECT_TRUE(out.empty());
  w.drain_until(aliased, out);
  EXPECT_EQ(out, (std::vector<std::int64_t>{2}));
}

TEST(TimingWheel, RejectsSchedulingBeforeCursor) {
  Wheel w;
  std::vector<std::int64_t> out;
  w.drain_until(50, out);
  EXPECT_THROW(w.schedule(49, 1), CheckError);
  EXPECT_NO_THROW(w.schedule(50, 1));
}

TEST(TimingWheel, AdvanceRefusesToSkipDueEntries) {
  Wheel w;
  w.schedule(10, 1);
  EXPECT_THROW(w.advance_to(11), CheckError);
  w.advance_to(10);  // up to the due time is fine
  EXPECT_EQ(w.cursor(), 10);
  std::vector<std::int64_t> out;
  w.drain_until(10, out);
  EXPECT_EQ(out, (std::vector<std::int64_t>{1}));
  w.advance_to(5000);
  EXPECT_EQ(w.cursor(), 5000);
}

TEST(TimingWheel, PeakTracksHighWaterMark) {
  Wheel w;
  for (Time t = 0; t < 10; ++t) w.schedule(t + 1, t);
  EXPECT_EQ(w.peak(), 10);
  std::vector<std::int64_t> out;
  w.drain_until(20, out);
  w.schedule(21, 99);
  EXPECT_EQ(w.peak(), 10);  // never decreases
  EXPECT_EQ(w.size(), 1);
}

TEST(TimingWheel, FuzzAgainstStableSortReference) {
  // Random interleavings of schedule / drain with times spanning several
  // ring turns and deep overflow. The reference is the spec itself: stable
  // sort by time over insertion order.
  Rng rng(0xfeedULL);
  for (int round = 0; round < 20; ++round) {
    Wheel w;
    std::vector<std::pair<Time, std::int64_t>> pending;  // (time, value)
    std::vector<std::int64_t> got;
    std::vector<std::int64_t> want;
    Time now = 0;
    std::int64_t next_val = 0;
    for (int op = 0; op < 400; ++op) {
      if (rng.uniform01() < 0.7) {
        // Mostly near-future, with a fat tail far beyond the horizon.
        const Time span = rng.uniform01() < 0.15
                              ? static_cast<Time>(Wheel::kSlots) * 4
                              : static_cast<Time>(Wheel::kSlots) / 2;
        const Time t = now + rng.uniform_int(0, span);
        w.schedule(t, next_val);
        pending.emplace_back(t, next_val);
        ++next_val;
      } else {
        now += rng.uniform_int(0, 200);
        w.drain_until(now, got);
        std::stable_sort(pending.begin(), pending.end(),
                         [](const auto& a, const auto& b) {
                           return a.first < b.first;
                         });
        auto it = pending.begin();
        for (; it != pending.end() && it->first <= now; ++it)
          want.push_back(it->second);
        pending.erase(pending.begin(), it);
        ASSERT_EQ(got, want) << "round " << round << " op " << op;
      }
    }
    // Final flush: everything must come out, in (time, insertion) order.
    now += static_cast<Time>(Wheel::kSlots) * 8;
    w.drain_until(now, got);
    std::stable_sort(
        pending.begin(), pending.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [t, v] : pending) want.push_back(v);
    ASSERT_EQ(got, want) << "round " << round << " final flush";
    EXPECT_EQ(w.size(), 0);
  }
}

}  // namespace
}  // namespace dtm
