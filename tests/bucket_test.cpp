// Tests for core/bucket_scheduler: Algorithm 2 mechanics — insertion rule,
// periodic activation, level bounds (Lemma 3), latency traces (Lemma 4).
#include <gtest/gtest.h>

#include "core/bucket_scheduler.hpp"
#include "net/topology.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::run_and_validate;
using testing::txn;

std::shared_ptr<const BatchScheduler> coloring() {
  return std::shared_ptr<const BatchScheduler>(make_coloring_batch());
}

TEST(Bucket, RequiresAlgorithm) {
  EXPECT_THROW(BucketScheduler(nullptr), CheckError);
}

TEST(Bucket, NameIncludesAlgorithm) {
  EXPECT_EQ(BucketScheduler(coloring()).name(), "bucket[coloring]");
}

TEST(Bucket, CheapTxnGoesToLowBucket) {
  const Network net = make_line(16);
  ScriptedWorkload wl({origin(0, 3)}, {txn(1, 3, 0, {0})});
  BucketScheduler sched(coloring());
  (void)run_and_validate(net, wl, sched);
  ASSERT_EQ(sched.traces().size(), 1u);
  // Local object, no conflicts: F_A = 0 <= 2^0.
  EXPECT_EQ(sched.traces()[0].level, 0);
}

TEST(Bucket, ExpensiveTxnGoesToHigherBucket) {
  const Network net = make_line(16);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 15, 0, {0})});
  BucketScheduler sched(coloring());
  (void)run_and_validate(net, wl, sched);
  ASSERT_EQ(sched.traces().size(), 1u);
  // F_A = 15 (travel) => smallest i with 2^i >= 15 is 4.
  EXPECT_EQ(sched.traces()[0].level, 4);
}

TEST(Bucket, ActivationPeriodicity) {
  const Network net = make_line(16);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 15, 0, {0})});
  BucketScheduler sched(coloring());
  (void)run_and_validate(net, wl, sched);
  const auto& tr = sched.traces()[0];
  // Level-4 bucket activates at the first multiple of 16 after insertion.
  EXPECT_EQ(tr.inserted, 0);
  EXPECT_EQ(tr.scheduled, 16);
  EXPECT_GE(tr.exec, 16);
}

TEST(Bucket, Lemma4LatencyBound) {
  // Every transaction inserted into level i at time t must execute by
  // t + (i+1) * 2^(i+2) (Lemma 4).
  const Network net = make_line(32);
  SyntheticOptions wopts;
  wopts.num_objects = 8;
  wopts.k = 2;
  wopts.rounds = 4;
  wopts.seed = 3;
  SyntheticWorkload wl(net, wopts);
  BucketScheduler sched(coloring());
  (void)run_and_validate(net, wl, sched);
  for (const auto& tr : sched.traces()) {
    ASSERT_NE(tr.exec, kNoTime) << "txn " << tr.txn << " never scheduled";
    const Time bound =
        tr.inserted + (tr.level + 1) * (Time{1} << (tr.level + 2));
    EXPECT_LE(tr.exec, bound)
        << "Lemma 4 bound violated for txn " << tr.txn << " (level "
        << tr.level << ")";
  }
}

TEST(Bucket, Lemma3LevelBound) {
  // Max level used stays within log2(n * D) + O(1).
  const Network net = make_line(32);  // n*D = 32*31
  SyntheticOptions wopts;
  wopts.num_objects = 8;
  wopts.k = 3;
  wopts.rounds = 4;
  wopts.seed = 4;
  SyntheticWorkload wl(net, wopts);
  BucketScheduler sched(coloring());
  (void)run_and_validate(net, wl, sched);
  std::int32_t log_nd = 0;
  for (std::int64_t p = 1; p < 32 * 31; p <<= 1) ++log_nd;
  EXPECT_LE(sched.max_level_used(), log_nd + 1);
  EXPECT_GE(sched.max_level_used(), 0);
}

TEST(Bucket, NextEventHint) {
  const Network net = make_line(16);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 15, 0, {0})});
  BucketScheduler sched(coloring());
  SyncEngine eng(net.oracle, wl.objects(), {});
  const auto arrivals = wl.arrivals_at(0);
  eng.begin_step(arrivals);
  const auto asg = sched.on_step(eng, arrivals);
  EXPECT_TRUE(asg.empty());  // level 4 not yet activated
  EXPECT_EQ(sched.next_event_hint(0), 16);
  eng.finish_step();
}

TEST(Bucket, EmptyHintIsNone) {
  BucketScheduler sched(coloring());
  EXPECT_EQ(sched.next_event_hint(5), kNoTime);
}

TEST(Bucket, MultipleArrivalsSameStepAllScheduled) {
  const Network net = make_clique(8);
  std::vector<Transaction> ts;
  for (TxnId i = 0; i < 8; ++i)
    ts.push_back(txn(i, static_cast<NodeId>(i), 0, {0}));
  ScriptedWorkload wl({origin(0, 0)}, ts);
  BucketScheduler sched(coloring());
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_EQ(r.num_txns, 8);
}

TEST(Bucket, SuffixWrapperToggle) {
  const Network net = make_line(16);
  SyntheticOptions wopts;
  wopts.num_objects = 6;
  wopts.k = 2;
  wopts.rounds = 3;
  wopts.seed = 6;
  for (const bool suffix : {true, false}) {
    SyntheticWorkload wl(net, wopts);
    BucketOptions bopts;
    bopts.enforce_suffix_property = suffix;
    BucketScheduler sched(coloring(), bopts);
    const RunResult r = run_and_validate(net, wl, sched);
    EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  }
}

TEST(Bucket, RandomizedAlgorithmRetries) {
  const Network net = make_cluster(3, 4, 5);
  SyntheticOptions wopts;
  wopts.num_objects = 6;
  wopts.k = 2;
  wopts.rounds = 2;
  wopts.seed = 7;
  SyntheticWorkload wl(net, wopts);
  BucketScheduler sched{
      std::shared_ptr<const BatchScheduler>(make_cluster_batch(4))};
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
}

TEST(Bucket, DynamicArrivalsOverTime) {
  const Network net = make_line(24);
  SyntheticOptions wopts;
  wopts.num_objects = 6;
  wopts.k = 2;
  wopts.rounds = 3;
  wopts.arrival_prob = 0.2;  // geometric think times
  wopts.seed = 8;
  SyntheticWorkload wl(net, wopts);
  BucketScheduler sched{
      std::shared_ptr<const BatchScheduler>(make_line_batch())};
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  EXPECT_GE(r.ratio, 1.0 - 1e-9);
}

// Validity sweep across topology/batch-algorithm pairs.
class BucketSweep : public ::testing::TestWithParam<int> {};

TEST_P(BucketSweep, ValidOnAllTopologies) {
  const auto nets = testing::small_networks();
  const Network& net = nets[static_cast<std::size_t>(GetParam())];
  SyntheticOptions wopts;
  wopts.num_objects = std::max<std::int32_t>(4, net.num_nodes() / 2);
  wopts.k = 2;
  wopts.rounds = 2;
  wopts.seed = 99;
  SyntheticWorkload wl(net, wopts);
  BucketScheduler sched(coloring());
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
}

INSTANTIATE_TEST_SUITE_P(Topologies, BucketSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace dtm
