// Tests for util/bitset and batch/soa_problem: word kernels against naive
// references, the SoA view's CSR/conflict-row invariants on fuzzed
// instances, byte-identity of every batch algorithm across
// BatchMathMode::{kScalar, kSoA, kVerify}, and race-freedom of a shared
// view under parallel evaluation (suite names carry "Soa" so the TSan CI
// job picks them up alongside the Parallel suites).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "batch/batch_scheduler.hpp"
#include "batch/soa_problem.hpp"
#include "net/topology.hpp"
#include "util/bitset.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dtm {
namespace {

// ---- Word-kernel properties against naive bit loops ----

TEST(SoaBitset, AssignSetTestCount) {
  DynamicBitset b;
  b.assign(130, false);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0) && b.test(64) && b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
  b.assign(130, true);
  // The tail past size() must stay zero or every popcount-based kernel
  // over-counts.
  EXPECT_EQ(b.count(), 130u);
  EXPECT_EQ(popcount_words(b.words(), b.num_words()), 130u);
}

TEST(SoaBitset, KernelsMatchNaiveOnFuzzedWords) {
  Rng rng(0xB17);
  for (int it = 0; it < 200; ++it) {
    const auto nbits = static_cast<std::size_t>(rng.uniform_int(1, 300));
    DynamicBitset a, b;
    a.assign(nbits, false);
    b.assign(nbits, false);
    std::set<std::size_t> sa, sb;
    const auto fill = [&](DynamicBitset& d, std::set<std::size_t>& s) {
      const auto k = rng.uniform_int(0, static_cast<std::int64_t>(nbits));
      for (std::int64_t i = 0; i < k; ++i) {
        const auto bit = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(nbits) - 1));
        d.set(bit);
        s.insert(bit);
      }
    };
    fill(a, sa);
    fill(b, sb);

    std::set<std::size_t> both;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(both, both.begin()));
    EXPECT_EQ(conflict_count(a.words(), b.words(), a.num_words()),
              both.size());
    EXPECT_EQ(conflict_any(a.words(), b.words(), a.num_words()),
              !both.empty());
    EXPECT_EQ(a.count(), sa.size());

    std::vector<std::size_t> seen;
    for_each_set_bit(a.words(), a.num_words(),
                     [&](std::size_t i) { seen.push_back(i); });
    EXPECT_TRUE(std::equal(seen.begin(), seen.end(), sa.begin(), sa.end()));
    seen.clear();
    for_each_set_and(a.words(), b.words(), a.num_words(),
                     [&](std::size_t i) { seen.push_back(i); });
    EXPECT_TRUE(
        std::equal(seen.begin(), seen.end(), both.begin(), both.end()));

    if (!sa.empty())
      EXPECT_EQ(first_set_bit(a.words(), a.num_words()), *sa.begin());
    std::size_t naive_zero = 0;
    while (naive_zero < nbits && a.test(naive_zero)) ++naive_zero;
    EXPECT_EQ(first_free_color(a), naive_zero);
  }
}

// ---- Fuzzed BatchProblem instances across topologies ----

Network fuzz_network(Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return make_line(static_cast<NodeId>(rng.uniform_int(2, 14)));
    case 1:
      return make_clique(static_cast<NodeId>(rng.uniform_int(2, 10)));
    case 2:
      return make_star(static_cast<NodeId>(rng.uniform_int(2, 4)),
                       static_cast<NodeId>(rng.uniform_int(2, 4)));
    default: {
      const auto beta = rng.uniform_int(2, 3);
      return make_cluster(static_cast<NodeId>(rng.uniform_int(2, 3)),
                          static_cast<NodeId>(beta),
                          static_cast<Weight>(rng.uniform_int(beta, 6)));
    }
  }
}

BatchProblem fuzz_problem(const Network& net, Rng& rng,
                          std::int64_t max_txns = 12) {
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.latency_factor = rng.uniform_int(1, 2);
  p.now = rng.uniform_int(0, 50);
  const auto n_nodes = static_cast<std::int64_t>(net.num_nodes());
  const auto n_obj = rng.uniform_int(1, 8);
  for (ObjId o = 0; o < n_obj; ++o) {
    const bool from_txn = rng.uniform_int(0, 3) == 0;
    p.objects.push_back({o,
                         static_cast<NodeId>(rng.uniform_int(0, n_nodes - 1)),
                         p.now + rng.uniform_int(0, 10), from_txn});
  }
  const auto n_txn = rng.uniform_int(1, max_txns);
  for (TxnId t = 1; t <= n_txn; ++t) {
    BatchTxn bt;
    bt.id = t * 7 + 1;  // non-dense ids
    bt.node = static_cast<NodeId>(rng.uniform_int(0, n_nodes - 1));
    const auto k = rng.uniform_int(1, std::min<std::int64_t>(3, n_obj));
    std::set<ObjId> objs;
    while (static_cast<std::int64_t>(objs.size()) < k)
      objs.insert(static_cast<ObjId>(rng.uniform_int(0, n_obj - 1)));
    // Shuffled access order: the SoA txn rows must preserve it verbatim.
    bt.objects.assign(objs.begin(), objs.end());
    for (std::size_t i = bt.objects.size(); i > 1; --i)
      std::swap(bt.objects[i - 1],
                bt.objects[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    p.txns.push_back(std::move(bt));
  }
  return p;
}

TEST(SoaProblem, ViewMatchesProblemOnFuzzedInstances) {
  Rng rng(0x50A);
  for (int it = 0; it < 120; ++it) {
    const Network net = fuzz_network(rng);
    const BatchProblem p = fuzz_problem(net, rng);
    BatchProblemSoA soa;
    soa.build(p);
    ASSERT_TRUE(soa.matches(p));
    ASSERT_EQ(soa.num_txns(), p.txns.size());
    ASSERT_EQ(soa.num_objects(), p.objects.size());

    // Txn CSR rows reproduce each transaction's object list (as indices,
    // original access order preserved).
    for (std::size_t i = 0; i < p.txns.size(); ++i) {
      const auto row = soa.txn_objects(i);
      ASSERT_EQ(row.size(), p.txns[i].objects.size());
      for (std::size_t k = 0; k < row.size(); ++k) {
        EXPECT_EQ(soa.obj_ids()[row[k]], p.txns[i].objects[k]);
        EXPECT_EQ(soa.obj_index(p.txns[i].objects[k]), row[k]);
      }
      EXPECT_EQ(soa.txn_ids()[i], p.txns[i].id);
      EXPECT_EQ(soa.txn_node()[i], p.txns[i].node);
    }

    // Object CSR rows: exactly the users of each object, ascending.
    for (std::size_t j = 0; j < p.objects.size(); ++j) {
      const auto users = soa.object_users(j);
      EXPECT_TRUE(std::is_sorted(users.begin(), users.end()));
      std::set<std::size_t> expect;
      for (std::size_t i = 0; i < p.txns.size(); ++i)
        for (const ObjId o : p.txns[i].objects)
          if (o == soa.obj_ids()[j]) expect.insert(i);
      EXPECT_TRUE(
          std::equal(users.begin(), users.end(), expect.begin(), expect.end()));
    }

    // Conflict rows == the share-an-object predicate; symmetric, irreflexive.
    for (std::size_t i = 0; i < p.txns.size(); ++i) {
      std::size_t degree = 0;
      for (std::size_t j = 0; j < p.txns.size(); ++j) {
        std::set<ObjId> a(p.txns[i].objects.begin(), p.txns[i].objects.end());
        bool share = false;
        for (const ObjId o : p.txns[j].objects) share |= a.count(o) > 0;
        const bool expect = i != j && share;
        EXPECT_EQ(soa.conflicts(i, j), expect)
            << "txns " << i << "," << j << " at iter " << it;
        EXPECT_EQ(soa.conflicts(j, i), expect);
        degree += expect ? 1u : 0u;
      }
      EXPECT_EQ(soa.conflict_degree(i), degree);
    }
  }
}

TEST(SoaProblem, ChainEvaluateSoaMatchesScalar) {
  Rng rng(0xC4A1);
  for (int it = 0; it < 150; ++it) {
    const Network net = fuzz_network(rng);
    const BatchProblem p = fuzz_problem(net, rng);
    BatchProblemSoA soa;
    soa.build(p);
    std::vector<std::size_t> order(p.txns.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    const BatchResult ref = chain_evaluate_scalar(p, order);
    const BatchResult got = chain_evaluate_soa(p, soa, order);
    ASSERT_EQ(got.makespan, ref.makespan);
    ASSERT_EQ(got.assignments.size(), ref.assignments.size());
    for (std::size_t i = 0; i < got.assignments.size(); ++i) {
      EXPECT_EQ(got.assignments[i].txn, ref.assignments[i].txn);
      EXPECT_EQ(got.assignments[i].exec, ref.assignments[i].exec);
    }
  }
}

// Every batch algorithm, byte-identical across the three math modes (the
// kVerify runs additionally self-check per evaluation).
TEST(SoaProblem, BatchAlgorithmsIdenticalAcrossModes) {
  Rng rng(0x3A7);
  for (int it = 0; it < 40; ++it) {
    const Network net = fuzz_network(rng);
    BatchProblem p = fuzz_problem(net, rng, /*max_txns=*/6);
    const std::uint64_t algo_seed =
        static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
    const auto run = [&](const BatchScheduler& a, BatchMathMode m) {
      p.math = m;
      Rng r(algo_seed);
      return a.schedule(p, r);
    };
    const auto algos = [] {
      std::vector<std::unique_ptr<BatchScheduler>> v;
      v.push_back(make_coloring_batch());
      v.push_back(make_local_search_batch(3));
      v.push_back(make_exhaustive_batch(6));
      return v;
    }();
    for (const auto& a : algos) {
      const BatchResult ref = run(*a, BatchMathMode::kScalar);
      for (const auto m : {BatchMathMode::kSoA, BatchMathMode::kVerify}) {
        const BatchResult got = run(*a, m);
        ASSERT_EQ(got.makespan, ref.makespan)
            << a->name() << " mode " << to_string(m) << " iter " << it;
        ASSERT_EQ(got.assignments.size(), ref.assignments.size());
        for (std::size_t i = 0; i < got.assignments.size(); ++i) {
          EXPECT_EQ(got.assignments[i].txn, ref.assignments[i].txn);
          EXPECT_EQ(got.assignments[i].exec, ref.assignments[i].exec);
        }
      }
    }
  }
}

TEST(SoaProblem, SoaRefDoesNotPropagateThroughCopies) {
  const Network net = make_line(6);
  Rng rng(7);
  BatchProblem p = fuzz_problem(net, rng);
  BatchProblemSoA soa;
  soa.build(p);
  p.soa = &soa;
  ASSERT_EQ(p.soa.get(), &soa);
  // Copies describe the same content but must NOT inherit the view: the
  // copy is free to mutate, which would silently stale the pointer.
  const BatchProblem copy = p;  // NOLINT(performance-unnecessary-copy...)
  EXPECT_EQ(copy.soa.get(), nullptr);
  BatchProblem assigned;
  assigned = p;
  EXPECT_EQ(assigned.soa.get(), nullptr);
  EXPECT_EQ(p.soa.get(), &soa);  // source untouched
}

TEST(SoaProblem, StaleViewIsRebuiltNotTrusted) {
  const Network net = make_line(8);
  Rng rng(11);
  BatchProblem p = fuzz_problem(net, rng);
  p.math = BatchMathMode::kVerify;
  BatchProblemSoA soa;
  soa.build(p);
  p.soa = &soa;
  // Mutate the problem so the attached view no longer matches; the verify
  // dispatch must detect the mismatch (matches() fails) and rebuild rather
  // than evaluate through the stale arrays.
  p.txns.push_back({999, 0, {p.objects.front().id}});
  std::vector<std::size_t> order(p.txns.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const BatchResult r = chain_evaluate(p, order);
  p.math = BatchMathMode::kScalar;
  p.soa = nullptr;
  const BatchResult ref = chain_evaluate(p, order);
  EXPECT_EQ(r.makespan, ref.makespan);
}

// One shared read-only view, many concurrent evaluators — the activation
// retry shape from BucketInsertionCore::run_activation. Named "SoaParallel"
// so the TSan CI job (-R 'Parallel|ThreadPool|Soa') races it for real.
TEST(SoaParallel, SharedViewIsRaceFreeUnderConcurrentEvaluation) {
  Rng rng(0xACE);
  const Network net = make_cluster(2, 3, 4);
  BatchProblem p = fuzz_problem(net, rng, /*max_txns=*/10);
  p.math = BatchMathMode::kSoA;
  BatchProblemSoA soa;
  soa.build(p);
  p.soa = &soa;
  std::vector<std::size_t> base(p.txns.size());
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = i;
  const BatchResult ref = chain_evaluate(p, base);
  const auto results = parallel_map<BatchResult>(
      16,
      [&](std::int64_t r) {
        std::vector<std::size_t> order = base;
        std::rotate(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(
                                        static_cast<std::size_t>(r) %
                                        std::max<std::size_t>(1, order.size())),
                    order.end());
        (void)chain_evaluate(p, order);
        return chain_evaluate(p, base);
      },
      4);
  for (const auto& r : results) EXPECT_EQ(r.makespan, ref.makespan);
}

}  // namespace
}  // namespace dtm
