// Tests for sim/engine: the synchronous execution engine's bookkeeping,
// object routing (incl. redirects), and its built-in feasibility policing.
#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

class EngineTest : public ::testing::Test {
 protected:
  Network net_ = make_line(10);

  SyncEngine make_engine(std::vector<ObjectOrigin> origins) {
    return SyncEngine(net_.oracle, std::move(origins), {});
  }

  static void idle_steps(SyncEngine& e, int n) {
    for (int i = 0; i < n; ++i) {
      e.begin_step({});
      e.finish_step();
    }
  }
};

TEST_F(EngineTest, RejectsDuplicateObjects) {
  EXPECT_THROW(make_engine({origin(0, 1), origin(0, 2)}), CheckError);
}

TEST_F(EngineTest, RejectsBadOrigins) {
  EXPECT_THROW(make_engine({origin(0, 99)}), CheckError);
  EXPECT_THROW(make_engine({origin(0, 1, 5)}), CheckError);  // future birth
}

TEST_F(EngineTest, ArrivalValidation) {
  SyncEngine e = make_engine({origin(0, 0)});
  const Transaction bad_gen = txn(1, 2, 5, {0});
  EXPECT_THROW(e.begin_step({{bad_gen}}), CheckError);
  const Transaction bad_obj = txn(1, 2, 0, {9});
  EXPECT_THROW(e.begin_step({{bad_obj}}), CheckError);
  Transaction empty = txn(1, 2, 0, {});
  EXPECT_THROW(e.begin_step({{empty}}), CheckError);
}

TEST_F(EngineTest, BasicCommitFlow) {
  SyncEngine e = make_engine({origin(0, 0)});
  e.begin_step({{txn(1, 4, 0, {0})}});
  EXPECT_EQ(e.num_live(), 1);
  EXPECT_EQ(e.assigned_exec(1), kNoTime);
  e.apply({{Assignment{1, 4}}});
  EXPECT_EQ(e.assigned_exec(1), 4);
  auto commits = e.finish_step();
  EXPECT_TRUE(commits.empty());
  idle_steps(e, 3);
  EXPECT_EQ(e.now(), 4);
  e.begin_step({});
  commits = e.finish_step();
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].txn, 1);
  EXPECT_EQ(commits[0].exec, 4);
  EXPECT_TRUE(e.all_done());
  EXPECT_EQ(e.object(0).at(), 4);
  EXPECT_EQ(e.object(0).last_txn(), 1);
  ASSERT_EQ(e.committed().size(), 1u);
}

TEST_F(EngineTest, ApplyGuards) {
  SyncEngine e = make_engine({origin(0, 0)});
  e.begin_step({{txn(1, 0, 0, {0})}});
  EXPECT_THROW(e.apply({{Assignment{2, 3}}}), CheckError);   // unknown txn
  EXPECT_THROW(e.apply({{Assignment{1, -1}}}), CheckError);  // past
  e.apply({{Assignment{1, 2}}});
  EXPECT_THROW(e.apply({{Assignment{1, 3}}}), CheckError);  // irrevocable
}

TEST_F(EngineTest, ExecutionWithoutObjectIsFlagged) {
  SyncEngine e = make_engine({origin(0, 0)});
  e.begin_step({{txn(1, 9, 0, {0})}});
  e.apply({{Assignment{1, 3}}});  // object needs 9 steps, scheduled at 3
  idle_steps(e, 3);
  e.begin_step({});
  EXPECT_THROW(e.finish_step(), CheckError);
}

TEST_F(EngineTest, MissedExecutionIsFlagged) {
  SyncEngine e = make_engine({origin(0, 0)});
  e.begin_step({{txn(1, 0, 0, {0})}});
  e.finish_step();
  // Assign in the past relative to a later step by sneaking past apply's
  // check: assign exec = now, then skip the step via advance_to guard.
  e.begin_step({});
  e.apply({{Assignment{1, 1}}});
  EXPECT_THROW(e.advance_to(3), CheckError);  // would skip the due exec
}

TEST_F(EngineTest, SameStepArrivalAndCommit) {
  SyncEngine e = make_engine({origin(0, 5)});
  e.begin_step({{txn(1, 5, 0, {0})}});
  e.apply({{Assignment{1, 0}}});  // object is local: commit immediately
  const auto commits = e.finish_step();
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].exec, 0);
}

TEST_F(EngineTest, ObjectForwardedBetweenUsers) {
  SyncEngine e = make_engine({origin(0, 0)});
  e.begin_step({{txn(1, 2, 0, {0}), txn(2, 6, 0, {0})}});
  e.apply({{Assignment{1, 2}, Assignment{2, 6}}});
  idle_steps(e, 2);  // steps 0 and 1
  e.begin_step({});
  auto commits = e.finish_step();  // txn1 at t=2
  ASSERT_EQ(commits.size(), 1u);
  // Object now in transit to node 6.
  EXPECT_TRUE(e.object(0).in_transit());
  EXPECT_EQ(e.object(0).dest(), 6);
  EXPECT_EQ(e.object(0).arrive_time(), 6);
  idle_steps(e, 3);
  e.begin_step({});
  commits = e.finish_step();  // txn2 at t=6
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_TRUE(e.all_done());
}

TEST_F(EngineTest, RedirectToEarlierUser) {
  // Object heads to a far user; a later-scheduled but earlier-executing
  // user appears; the engine must divert and still meet both deadlines.
  SyncEngine e = make_engine({origin(0, 0)});
  e.begin_step({{txn(1, 9, 0, {0})}});
  e.apply({{Assignment{1, 20}}});
  e.finish_step();  // t=1; object in transit to 9
  EXPECT_TRUE(e.object(0).in_transit());
  e.begin_step({{txn(2, 1, 1, {0})}});
  // At t=1 the object is 1 along; promise to node 1 = back(1) + 1 = 2 more.
  const Time promised = e.object(0).time_to(1, 1, *net_.oracle);
  e.apply({{Assignment{2, 1 + promised}}});
  e.finish_step();
  idle_steps(e, static_cast<int>(promised) - 1);
  e.begin_step({});
  auto commits = e.finish_step();
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].txn, 2);
  // And txn1 still commits on time at t=20.
  while (!e.all_done()) {
    e.begin_step({});
    e.finish_step();
  }
  EXPECT_EQ(e.committed().back().exec, 20);
}

TEST_F(EngineTest, LiveUsersTracksArrivalsAndCommits) {
  SyncEngine e = make_engine({origin(0, 0)});
  e.begin_step({{txn(1, 0, 0, {0}), txn(2, 3, 0, {0})}});
  EXPECT_EQ(e.live_users_of(0).size(), 2u);
  e.apply({{Assignment{1, 0}, Assignment{2, 3}}});
  e.finish_step();
  EXPECT_EQ(e.live_users_of(0).size(), 1u);
  EXPECT_EQ(e.live_users_of(0)[0], 2);
  EXPECT_EQ(e.live_users_of(5).size(), 0u);  // unknown object: empty
}

TEST_F(EngineTest, AdvanceToSkipsIdleTime) {
  SyncEngine e = make_engine({origin(0, 0)});
  e.begin_step({{txn(1, 0, 0, {0})}});
  e.apply({{Assignment{1, 100}}});
  e.finish_step();
  e.advance_to(100);
  EXPECT_EQ(e.now(), 100);
  e.begin_step({});
  const auto commits = e.finish_step();
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_THROW(e.advance_to(50), CheckError);  // backwards
}

TEST_F(EngineTest, NextExecDue) {
  SyncEngine e = make_engine({origin(0, 0)});
  EXPECT_EQ(e.next_exec_due(), kNoTime);
  e.begin_step({{txn(1, 0, 0, {0}), txn(2, 1, 0, {0})}});
  e.apply({{Assignment{1, 7}}});
  EXPECT_EQ(e.next_exec_due(), 7);
  e.apply({{Assignment{2, 9}}});
  EXPECT_EQ(e.next_exec_due(), 7);
}

TEST_F(EngineTest, LatencyFactorSlowsObjects) {
  EngineOptions opts;
  opts.latency_factor = 2;
  SyncEngine e(net_.oracle, {origin(0, 0)}, opts);
  e.begin_step({{txn(1, 4, 0, {0})}});
  e.apply({{Assignment{1, 8}}});  // 4 hops * factor 2
  e.finish_step();
  EXPECT_EQ(e.object(0).arrive_time(), 8);
}

}  // namespace
}  // namespace dtm
