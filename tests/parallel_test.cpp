// Tests for util/parallel: the fork-join sweep helper.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/parallel.hpp"

namespace dtm {
namespace {

TEST(Parallel, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroAndOneCounts) {
  int calls = 0;
  parallel_for(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::int64_t i) {
    order.push_back(static_cast<int>(i));
  }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, MapPreservesOrder) {
  const auto out = parallel_map<std::int64_t>(
      64, [](std::int64_t i) { return i * i; }, 4);
  for (std::int64_t i = 0; i < 64; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(Parallel, ExceptionsPropagate) {
  EXPECT_THROW(
      parallel_for(16, [](std::int64_t i) {
        if (i == 7) throw std::runtime_error("boom");
      }, 4),
      std::runtime_error);
}

TEST(Parallel, NegativeCountRejected) {
  EXPECT_THROW((void)parallel_for(-1, [](std::int64_t) {}), CheckError);
}

TEST(Parallel, DeterministicResultsAcrossThreadCounts) {
  auto square = [](std::int64_t i) { return (i * 2654435761LL) % 1000; };
  const auto a = parallel_map<std::int64_t>(200, square, 1);
  const auto b = parallel_map<std::int64_t>(200, square, 8);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// ThreadPool: the persistent pool behind parallel_for / parallel_map.

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(1000, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.run(64, [&](std::int64_t i) { sum.fetch_add(i); }, 3);
    EXPECT_EQ(sum.load(), 64 * 63 / 2) << "round " << round;
  }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(
        pool.run(256, [](std::int64_t i) {
          if (i == 100) throw std::runtime_error("boom");
        }, 4),
        std::runtime_error);
    // The pool must come back healthy after a failed job.
    std::atomic<int> ok{0};
    pool.run(32, [&](std::int64_t) { ok.fetch_add(1); }, 4);
    EXPECT_EQ(ok.load(), 32);
  }
}

TEST(ThreadPool, ExplicitChunkCoversTail) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(37);  // not a multiple of the chunk
  pool.run(37, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  }, 3, /*chunk=*/5);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedRunFallsBackToSerial) {
  // A worker re-entering run() must not deadlock on the pool; the nested
  // sweep executes inline on the calling thread.
  std::atomic<std::int64_t> total{0};
  ThreadPool::shared().run(8, [&](std::int64_t) {
    ThreadPool::shared().run(16, [&](std::int64_t j) { total.fetch_add(j); },
                             4);
  }, 4);
  EXPECT_EQ(total.load(), 8 * (16 * 15 / 2));
}

TEST(ThreadPool, ResolveThreadsSemantics) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
  EXPECT_EQ(resolve_threads(0), ThreadPool::hardware_threads());
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
  EXPECT_THROW((void)resolve_threads(-2), CheckError);
}

TEST(ThreadPool, OversubscriptionBeyondHardware) {
  // Thread counts above the core count must still complete and cover every
  // index (the 1-core CI box exercises real interleavings this way).
  ThreadPool pool(0);  // no pre-spawned workers: grows on demand
  std::vector<std::atomic<int>> hits(500);
  pool.run(500, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace dtm
