// Tests for util/parallel: the fork-join sweep helper.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/parallel.hpp"

namespace dtm {
namespace {

TEST(Parallel, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroAndOneCounts) {
  int calls = 0;
  parallel_for(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::int64_t i) {
    order.push_back(static_cast<int>(i));
  }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, MapPreservesOrder) {
  const auto out = parallel_map<std::int64_t>(
      64, [](std::int64_t i) { return i * i; }, 4);
  for (std::int64_t i = 0; i < 64; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(Parallel, ExceptionsPropagate) {
  EXPECT_THROW(
      parallel_for(16, [](std::int64_t i) {
        if (i == 7) throw std::runtime_error("boom");
      }, 4),
      std::runtime_error);
}

TEST(Parallel, NegativeCountRejected) {
  EXPECT_THROW((void)parallel_for(-1, [](std::int64_t) {}), CheckError);
}

TEST(Parallel, DeterministicResultsAcrossThreadCounts) {
  auto square = [](std::int64_t i) { return (i * 2654435761LL) % 1000; };
  const auto a = parallel_map<std::int64_t>(200, square, 1);
  const auto b = parallel_map<std::int64_t>(200, square, 8);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dtm
