// Cross-module integration: every scheduler family × every topology ×
// dynamic workloads, end-to-end through the engine with validation on.
// These are the "does the whole paper fit together" tests.
#include <gtest/gtest.h>

#include "core/bucket_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "dist/dist_bucket.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

struct IntegrationCase {
  std::string label;
  std::function<Network()> net;
  std::function<std::shared_ptr<const BatchScheduler>(const Network&)> algo;
};

std::vector<IntegrationCase> integration_cases() {
  return {
      {"clique", [] { return make_clique(12); },
       [](const Network&) {
         return std::shared_ptr<const BatchScheduler>(make_coloring_batch());
       }},
      {"line", [] { return make_line(24); },
       [](const Network&) {
         return std::shared_ptr<const BatchScheduler>(make_line_batch());
       }},
      {"grid", [] { return make_grid({4, 5}); },
       [](const Network&) {
         return std::shared_ptr<const BatchScheduler>(
             make_grid_snake_batch({4, 5}));
       }},
      {"hypercube", [] { return make_hypercube(4); },
       [](const Network&) {
         return std::shared_ptr<const BatchScheduler>(
             make_hypercube_gray_batch());
       }},
      {"star", [] { return make_star(4, 4); },
       [](const Network&) {
         return std::shared_ptr<const BatchScheduler>(make_star_batch(4));
       }},
      {"cluster", [] { return make_cluster(4, 4, 6); },
       [](const Network&) {
         return std::shared_ptr<const BatchScheduler>(make_cluster_batch(4));
       }},
      {"butterfly", [] { return make_butterfly(3); },
       [](const Network&) {
         return std::shared_ptr<const BatchScheduler>(make_coloring_batch());
       }},
  };
}

SyntheticOptions dynamic_workload(const Network& net, std::uint64_t seed) {
  SyntheticOptions opts;
  opts.num_objects = std::max<std::int32_t>(4, net.num_nodes() / 2);
  opts.k = 2;
  opts.rounds = 3;
  opts.arrival_prob = 0.5;
  opts.zipf_s = 0.7;
  opts.seed = seed;
  return opts;
}

class IntegrationSweep : public ::testing::TestWithParam<int> {};

TEST_P(IntegrationSweep, GreedyEndToEnd) {
  const auto c = integration_cases()[static_cast<std::size_t>(GetParam())];
  const Network net = c.net();
  SyntheticWorkload wl(net, dynamic_workload(net, 1000 + GetParam()));
  GreedyScheduler sched;
  const RunResult r = testing::run_and_validate(net, wl, sched);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()))
      << c.label;
  EXPECT_GE(r.ratio, 1.0 - 1e-9) << c.label;
}

TEST_P(IntegrationSweep, BucketEndToEnd) {
  const auto c = integration_cases()[static_cast<std::size_t>(GetParam())];
  const Network net = c.net();
  SyntheticWorkload wl(net, dynamic_workload(net, 2000 + GetParam()));
  BucketScheduler sched(c.algo(net));
  const RunResult r = testing::run_and_validate(net, wl, sched);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()))
      << c.label;
}

TEST_P(IntegrationSweep, DistributedEndToEnd) {
  const auto c = integration_cases()[static_cast<std::size_t>(GetParam())];
  const Network net = c.net();
  SyntheticWorkload wl(net, dynamic_workload(net, 3000 + GetParam()));
  DistributedBucketScheduler sched(net, c.algo(net));
  const RunResult r = testing::run_and_validate(net, wl, sched, 2);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()))
      << c.label;
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, IntegrationSweep,
                         ::testing::Range(0, 7));

TEST(Integration, SchedulersAgreeOnTxnCountsAndValidity) {
  // Same workload, three schedulers: all must commit everything; the
  // greedy schedule should be the most aggressive on a low-diameter graph.
  const Network net = make_clique(10);
  SyntheticOptions wopts;
  wopts.num_objects = 6;
  wopts.k = 2;
  wopts.rounds = 3;
  wopts.seed = 77;

  SyntheticWorkload wl_g(net, wopts);
  GreedyScheduler greedy;
  const RunResult rg = testing::run_and_validate(net, wl_g, greedy);

  SyntheticWorkload wl_b(net, wopts);
  BucketScheduler bucket{
      std::shared_ptr<const BatchScheduler>(make_coloring_batch())};
  const RunResult rb = testing::run_and_validate(net, wl_b, bucket);

  EXPECT_EQ(rg.num_txns, rb.num_txns);
  // The direct method should win on the clique (paper §III-E discussion).
  EXPECT_LE(rg.makespan, rb.makespan);
}

TEST(Integration, HotspotStress) {
  // Every transaction hits one hot object: the worst-case serialization
  // chain. Ratio should stay modest on the clique (Theorem 3: O(k)).
  const Network net = make_clique(16);
  std::vector<Transaction> ts;
  Time gen = 0;
  for (TxnId i = 0; i < 48; ++i) {
    ts.push_back(testing::txn(i, static_cast<NodeId>(i % 16), gen, {0}));
    if (i % 16 == 15) gen += 2;
  }
  ScriptedWorkload wl({testing::origin(0, 0)}, ts);
  GreedyScheduler sched;
  const RunResult r = testing::run_and_validate(net, wl, sched);
  EXPECT_EQ(r.num_txns, 48);
  EXPECT_LE(r.ratio, 4.0);  // k = 1: constant-competitive
}

TEST(Integration, MultiRoundLineWithBucketLineAlgo) {
  const Network net = make_line(48);
  SyntheticOptions wopts;
  wopts.num_objects = 10;
  wopts.k = 2;
  wopts.rounds = 4;
  wopts.seed = 88;
  SyntheticWorkload wl(net, wopts);
  BucketScheduler sched{
      std::shared_ptr<const BatchScheduler>(make_line_batch())};
  const RunResult r = testing::run_and_validate(net, wl, sched);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
}

}  // namespace
}  // namespace dtm
