// Tests for core/rw: the read-write sharing extension (snapshot reads).
#include <gtest/gtest.h>

#include "core/rw.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;

Transaction rw_txn(TxnId id, NodeId node, Time gen,
                   std::vector<std::pair<ObjId, AccessMode>> accesses) {
  Transaction t;
  t.id = id;
  t.node = node;
  t.gen_time = gen;
  for (const auto& [o, m] : accesses) t.accesses.push_back({o, m});
  return t;
}

constexpr auto R = AccessMode::kRead;
constexpr auto W = AccessMode::kWrite;

TEST(RwValidate, ReadsFromOrigin) {
  const Network net = make_line(10);
  const std::vector<ObjectOrigin> origins{origin(0, 0)};
  std::vector<ScheduledTxn> s{{rw_txn(1, 5, 0, {{0, R}}), 5}};
  EXPECT_FALSE(validate_rw_schedule(s, origins, *net.oracle).has_value());
  s[0].exec = 4;
  EXPECT_TRUE(validate_rw_schedule(s, origins, *net.oracle).has_value());
}

TEST(RwValidate, ConcurrentReadsShare) {
  // Two reads at the same step at different nodes: both valid, both served
  // by origin copies — impossible in the exclusive model.
  const Network net = make_line(10);
  const std::vector<ObjectOrigin> origins{origin(0, 5)};
  const std::vector<ScheduledTxn> s{{rw_txn(1, 2, 0, {{0, R}}), 3},
                                    {rw_txn(2, 8, 0, {{0, R}}), 3}};
  EXPECT_FALSE(validate_rw_schedule(s, origins, *net.oracle).has_value());
  // Exclusive validator rejects the same schedule.
  EXPECT_TRUE(validate_schedule(s, origins, *net.oracle).has_value());
}

TEST(RwValidate, ReadAfterWriteNeedsCopyTravel) {
  const Network net = make_line(10);
  const std::vector<ObjectOrigin> origins{origin(0, 0)};
  std::vector<ScheduledTxn> s{{rw_txn(1, 0, 0, {{0, W}}), 0},
                              {rw_txn(2, 6, 0, {{0, R}}), 6}};
  EXPECT_FALSE(validate_rw_schedule(s, origins, *net.oracle).has_value());
  s[1].exec = 5;  // copy of version@node0 (written t=0) cannot arrive
  EXPECT_TRUE(validate_rw_schedule(s, origins, *net.oracle).has_value());
}

TEST(RwValidate, ReadConcurrentWithWriteSeesOldVersion) {
  const Network net = make_line(10);
  const std::vector<ObjectOrigin> origins{origin(0, 3)};
  // Write at node 0 and read at node 3, same step: the read sees the
  // origin version (already local) — valid.
  const std::vector<ScheduledTxn> s{{rw_txn(1, 0, 0, {{0, W}}), 3},
                                    {rw_txn(2, 3, 0, {{0, R}}), 3}};
  EXPECT_FALSE(validate_rw_schedule(s, origins, *net.oracle).has_value());
}

TEST(RwValidate, WriteChainStillSerializes) {
  const Network net = make_line(10);
  const std::vector<ObjectOrigin> origins{origin(0, 0)};
  std::vector<ScheduledTxn> s{{rw_txn(1, 0, 0, {{0, W}}), 0},
                              {rw_txn(2, 4, 0, {{0, W}}), 3}};
  EXPECT_TRUE(validate_rw_schedule(s, origins, *net.oracle).has_value());
  s[1].exec = 4;
  EXPECT_FALSE(validate_rw_schedule(s, origins, *net.oracle).has_value());
}

TEST(RwValidate, TwoWritesSameStepRejected) {
  const Network net = make_clique(4);
  const std::vector<ObjectOrigin> origins{origin(0, 0)};
  const std::vector<ScheduledTxn> s{{rw_txn(1, 0, 0, {{0, W}}), 1},
                                    {rw_txn(2, 1, 0, {{0, W}}), 1}};
  EXPECT_TRUE(validate_rw_schedule(s, origins, *net.oracle).has_value());
}

TEST(RwScheduler, ReadsShareAndSemanticsGateTheWrite) {
  const Network net = make_clique(8);
  Transaction r1 = rw_txn(1, 1, 0, {{0, R}});
  Transaction r2 = rw_txn(2, 2, 0, {{0, R}});
  Transaction w1 = rw_txn(3, 3, 0, {{0, W}});
  {
    // Snapshot: the write may land concurrent with the reads — they simply
    // observe the pre-write version.
    RwGreedyScheduler sched(*net.oracle, 1, RwSemantics::kSnapshot);
    sched.add_origin(origin(0, 0));
    EXPECT_EQ(sched.schedule(r1, 0), 1);  // copy travel from node 0
    EXPECT_EQ(sched.schedule(r2, 0), 1);  // shares
    EXPECT_EQ(sched.schedule(w1, 0), 1);  // concurrent is legal
  }
  {
    // Coherent: the write must clear both outstanding copies first.
    RwGreedyScheduler sched(*net.oracle, 1, RwSemantics::kCoherent);
    sched.add_origin(origin(0, 0));
    EXPECT_EQ(sched.schedule(r1, 0), 1);
    EXPECT_EQ(sched.schedule(r2, 0), 1);
    EXPECT_EQ(sched.schedule(w1, 0), 2);  // reads + invalidation hop
  }
}

TEST(RwScheduler, SnapshotWriteSlotsInBeforeAFarRead) {
  // A read far in the future leaves room BEFORE it: snapshot places the
  // write there (the read re-sources from the new version); coherent must
  // still do the same (before-the-read placement is legal in both).
  const Network net = make_line(10);
  RwGreedyScheduler sched(*net.oracle, 1, RwSemantics::kSnapshot);
  sched.add_origin(origin(0, 0));
  Transaction w_a = rw_txn(1, 9, 0, {{0, W}});  // exec 9 (travel)
  EXPECT_EQ(sched.schedule(w_a, 0), 9);
  // A read arriving at t=12 must source from w_a: 9 + dist(9,0) = 18.
  Transaction rd = rw_txn(2, 0, 12, {{0, R}});
  EXPECT_EQ(sched.schedule(rd, 12), 18);
  // New write at node 5 arriving at t=12: w_a chain allows c >= 1
  // (9 + dist(9,5) = 13); the pending read allows exec <= 18 - 5 = 13 or
  // exec >= 18. Snapshot slots it in at 13, BEFORE the read, which then
  // re-sources from it (18 >= 13 + dist(5,0) = 18: exactly feasible).
  Transaction w_b = rw_txn(3, 5, 12, {{0, W}});
  EXPECT_EQ(sched.schedule(w_b, 12), 13);
}

TEST(RwExperiment, EndToEndValidAndAccountsCopies) {
  const Network net = make_grid({4, 4});
  SyntheticOptions w;
  w.num_objects = 8;
  w.k = 2;
  w.rounds = 3;
  w.write_fraction = 0.3;
  w.seed = 7;
  SyntheticWorkload wl(net, w);
  const RwRunResult r = run_rw_experiment(net, wl);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  EXPECT_GT(r.copies, 0);
  EXPECT_GE(r.copy_distance, r.copies - 5);  // most copies travel
  EXPECT_GE(r.ratio, 1.0 - 1e-9);
}

TEST(RwExperiment, AllWritesDegeneratesToExclusiveBehaviour) {
  const Network net = make_clique(8);
  SyntheticOptions w;
  w.num_objects = 4;
  w.k = 2;
  w.rounds = 2;
  w.write_fraction = 1.0;
  w.seed = 8;
  SyntheticWorkload wl(net, w);
  const RwRunResult r = run_rw_experiment(net, wl);
  EXPECT_EQ(r.copies, 0);
  EXPECT_GT(r.makespan, 0);
}

TEST(RwExperiment, ReadSharingCollapsesHotspotSerialization) {
  // Deterministic hotspot: 15 transactions on one object. All-readers
  // commit in parallel after one hop; all-writers serialize — exactly the
  // replication payoff the extension exists to show.
  const Network net = make_clique(16);
  auto run_mode = [&](AccessMode m) {
    std::vector<Transaction> ts;
    for (TxnId i = 1; i <= 15; ++i)
      ts.push_back(rw_txn(i, static_cast<NodeId>(i), 0, {{0, m}}));
    ScriptedWorkload wl({origin(0, 0)}, ts);
    return run_rw_experiment(net, wl).makespan;
  };
  const Time readers = run_mode(R);
  const Time writers = run_mode(W);
  EXPECT_EQ(readers, 1);       // one copy hop, fully parallel
  EXPECT_GE(writers, 15);      // serialized master chain
}

}  // namespace
}  // namespace dtm
