// Golden commit sequences: FNV-1a hashes of the full (id, node, gen, exec)
// commit stream plus makespan and active-step count, captured from the
// PRE-layering engine (the monolithic SyncEngine before the store /
// transport / clock split) on fixed workloads. Any engine change that
// shifts a single commit by one step — in any of the three modes — flips
// the hash. Complements fastpath_equivalence_test, which only proves the
// modes agree with EACH OTHER.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/bucket_scheduler.hpp"
#include "core/fcfs_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "dist/dist_bucket.hpp"
#include "fault/plan.hpp"
#include "net/topology.hpp"
#include "serve/server.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "sim/workload.hpp"

namespace dtm {
namespace {

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_result(const RunResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& s : r.committed) {
    h = fnv(h, static_cast<std::uint64_t>(s.txn.id));
    h = fnv(h, static_cast<std::uint64_t>(s.txn.node));
    h = fnv(h, static_cast<std::uint64_t>(s.txn.gen_time));
    h = fnv(h, static_cast<std::uint64_t>(s.exec));
  }
  h = fnv(h, static_cast<std::uint64_t>(r.makespan));
  h = fnv(h, static_cast<std::uint64_t>(r.active_steps));
  return h;
}

std::uint64_t run_case(const Network& net, const SyntheticOptions& w,
                       std::unique_ptr<OnlineScheduler> sched,
                       EngineOptions::Mode mode, std::int64_t lf) {
  SyntheticWorkload wl(net, w);
  RunOptions opts;
  opts.engine.mode = mode;
  opts.engine.latency_factor = lf;
  return hash_result(run_experiment(net, wl, *sched, opts));
}

enum SchedKind { kGreedy, kGreedyDelay, kBucketColoring, kFcfs };

std::unique_ptr<OnlineScheduler> make_sched(SchedKind which) {
  switch (which) {
    case kGreedyDelay: {
      GreedyOptions g;
      g.coordination_delay = 3;
      return std::make_unique<GreedyScheduler>(g);
    }
    case kBucketColoring:
      return std::make_unique<BucketScheduler>(
          std::shared_ptr<const BatchScheduler>(make_coloring_batch()));
    case kFcfs: return std::make_unique<FcfsScheduler>();
    default: return std::make_unique<GreedyScheduler>();
  }
}

struct GoldenCase {
  const char* label;
  Network net;
  SyntheticOptions w;
  SchedKind sched;
  std::int64_t lf;
  /// Pre-refactor hash per mode {kScan, kCalendar, kVerify} (captured at
  /// commit f599ea5; regenerate with golden_gen.cpp if the MODEL — not the
  /// engine internals — legitimately changes).
  std::uint64_t expect[3];
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  {
    SyntheticOptions w;
    w.num_objects = 8; w.k = 2; w.rounds = 3; w.seed = 101;
    cases.push_back({"clique8-greedy", make_clique(8), w, kGreedy, 1,
                     {0x68dfabb7dbbbaca3ULL, 0x68dfabb7dbbbaca3ULL,
                      0x68dfabb7dbbbaca3ULL}});
  }
  {
    SyntheticOptions w;
    w.num_objects = 6; w.k = 2; w.rounds = 2; w.zipf_s = 0.9; w.seed = 202;
    cases.push_back({"line12-greedy-delay", make_line(12), w, kGreedyDelay, 2,
                     {0x43998081b82a8990ULL, 0x43998081b82a8990ULL,
                      0x43998081b82a8990ULL}});
  }
  {
    SyntheticOptions w;
    w.num_objects = 9; w.k = 3; w.rounds = 2; w.arrival_prob = 0.2;
    w.seed = 303;
    cases.push_back({"cluster334-bucket", make_cluster(3, 3, 4), w,
                     kBucketColoring, 1,
                     {0xd632f1e8abb3a269ULL, 0xd632f1e8abb3a269ULL,
                      0xd632f1e8abb3a269ULL}});
  }
  {
    SyntheticOptions w;
    w.num_objects = 10; w.k = 2; w.rounds = 2; w.node_participation = 0.5;
    w.seed = 404;
    cases.push_back({"grid34-fcfs", make_grid({3, 4}), w, kFcfs, 1,
                     {0xee4d00ad75582bcaULL, 0xee4d00ad75582bcaULL,
                      0xee4d00ad75582bcaULL}});
  }
  {
    SyntheticOptions w;
    w.num_objects = 10; w.k = 2; w.rounds = 2; w.zipf_s = 1.2; w.seed = 505;
    cases.push_back({"star33-greedy", make_star(3, 3), w, kGreedy, 2,
                     {0x15943e0c37a4a3deULL, 0x15943e0c37a4a3deULL,
                      0x15943e0c37a4a3deULL}});
  }
  return cases;
}

TEST(GoldenSequence, MatchesPreRefactorEngineInAllModes) {
  const EngineOptions::Mode modes[] = {EngineOptions::Mode::kScan,
                                       EngineOptions::Mode::kCalendar,
                                       EngineOptions::Mode::kVerify};
  for (const auto& c : golden_cases()) {
    for (int m = 0; m < 3; ++m) {
      const std::uint64_t h =
          run_case(c.net, c.w, make_sched(c.sched), modes[m], c.lf);
      EXPECT_EQ(h, c.expect[m])
          << c.label << " mode " << m
          << ": commit sequence diverged from the pre-refactor engine";
    }
  }
}

// Bucket fast-path pins: the same workload through the bucket scheduler
// must hash identically for every fastpath mode (naive / incremental /
// verify) × engine mode pair — one pinned value per topology. This is the
// byte-identity guarantee of the insertion fast path in golden form: a
// cached problem gone stale, a memo key collision, or a drifted derived
// RNG stream flips the hash. line exercises a deterministic A; cluster and
// star exercise randomized A, where the per-probe / per-trial derived
// streams carry the identity.
std::uint64_t run_bucket_fastpath_case(
    const Network& net, BucketFastPath fp, EngineOptions::Mode mode,
    BatchMathMode math = BatchMathMode::kScalar) {
  SyntheticOptions w;
  w.num_objects = 8;
  w.k = 2;
  w.rounds = 3;
  w.arrival_prob = 0.3;
  w.seed = 909;
  SyntheticWorkload wl(net, w);
  BucketOptions o;
  o.fastpath = fp;
  o.batch_math = math;
  BucketScheduler sched(Registry::make_batch_algo("auto", net), o);
  RunOptions opts;
  opts.engine.mode = mode;
  return hash_result(run_experiment(net, wl, sched, opts));
}

TEST(GoldenSequence, BucketFastPathPinnedOnAllTopologies) {
  struct FpCase {
    const char* label;
    Network net;
    std::uint64_t pin;
  };
  const FpCase cases[] = {
      {"line12", make_line(12), 0x1476a1655424f9b0ULL},
      {"cluster234", make_cluster(2, 3, 4), 0x0cf2ffb9c53e06ffULL},
      {"star33", make_star(3, 3), 0xd00a62eecafac274ULL},
  };
  for (const auto& c : cases) {
    for (const auto fp :
         {BucketFastPath::kNaive, BucketFastPath::kIncremental,
          BucketFastPath::kVerify}) {
      for (const auto mode :
           {EngineOptions::Mode::kScan, EngineOptions::Mode::kCalendar,
            EngineOptions::Mode::kVerify}) {
        const std::uint64_t h = run_bucket_fastpath_case(c.net, fp, mode);
        EXPECT_EQ(h, c.pin)
            << c.label << " fastpath " << static_cast<int>(fp) << " mode "
            << static_cast<int>(mode) << " actual 0x" << std::hex << h;
      }
    }
    // Batch math modes must land on the SAME pins: the SoA kernels are a
    // drop-in arithmetic backend, not a new scheduler. Scan engine mode —
    // the engine-mode cross-product is pinned above.
    for (const auto math : {BatchMathMode::kSoA, BatchMathMode::kVerify}) {
      const std::uint64_t h = run_bucket_fastpath_case(
          c.net, BucketFastPath::kIncremental, EngineOptions::Mode::kScan,
          math);
      EXPECT_EQ(h, c.pin) << c.label << " batch_math " << to_string(math)
                          << " actual 0x" << std::hex << h;
    }
  }
}

// Distributed engine mode pins: the full message protocol (probes, replies,
// reports) over the bus, with and without a fault plan. The chaos pin is
// the satellite guarantee of the fault subsystem: a FIXED (plan, seed) pair
// is a deterministic workload, so its commit stream is pinnable exactly
// like the clean one — any change to the fault draw order, the timeout
// arithmetic, or the retry protocol flips it.
std::uint64_t run_dist_case(const Network& net, const FaultPlan& plan,
                            EngineOptions::Mode mode,
                            BucketFastPath fp = BucketFastPath::kIncremental,
                            BatchMathMode math = BatchMathMode::kScalar) {
  SyntheticOptions w;
  w.num_objects = 10;
  w.k = 2;
  w.rounds = 2;
  w.seed = 606;
  SyntheticWorkload wl(net, w);
  DistBucketOptions o;
  o.seed = 77;
  o.fault = plan;
  o.fastpath = fp;
  o.batch_math = math;
  DistributedBucketScheduler sched(net, Registry::make_batch_algo("auto", net),
                                   o);
  RunOptions opts;
  opts.engine.mode = mode;
  opts.engine.latency_factor = 2;  // §V half-speed objects
  opts.engine.fault = plan;
  return hash_result(run_experiment(net, wl, sched, opts));
}

TEST(GoldenSequence, DistBucketNullPlanPinned) {
  // Captured with the fault subsystem in place but a null plan: this is the
  // byte-identical no-fault guarantee for the distributed mode.
  const std::uint64_t kPin = 0xcdd107db4c1159e2ULL;
  const Network net = make_cluster(2, 3, 4);
  for (const auto mode :
       {EngineOptions::Mode::kScan, EngineOptions::Mode::kCalendar,
        EngineOptions::Mode::kVerify}) {
    EXPECT_EQ(run_dist_case(net, FaultPlan{}, mode), kPin)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(GoldenSequence, DistBucketChaosPlanPinned) {
  const std::uint64_t kPin = 0x7d0e573c8d14d918ULL;
  FaultPlan plan;
  plan.drop = 0.3;
  plan.jitter = 2;
  plan.dup = 0.1;
  plan.stall = 0.3;
  plan.seed = 23;
  const Network net = make_cluster(2, 3, 4);
  for (const auto mode :
       {EngineOptions::Mode::kScan, EngineOptions::Mode::kCalendar,
        EngineOptions::Mode::kVerify}) {
    EXPECT_EQ(run_dist_case(net, plan, mode), kPin)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(GoldenSequence, DistBucketFastPathModesMatchTheSamePins) {
  // The distributed scheduler's partial i-buckets go through the same
  // insertion core: all three fastpath modes must land on the exact pins
  // above, under both the null and the chaos plan. Scan engine mode only —
  // the mode × plan cross-product is already pinned by the two tests above.
  const std::uint64_t kNullPin = 0xcdd107db4c1159e2ULL;
  const std::uint64_t kChaosPin = 0x7d0e573c8d14d918ULL;
  FaultPlan chaos;
  chaos.drop = 0.3;
  chaos.jitter = 2;
  chaos.dup = 0.1;
  chaos.stall = 0.3;
  chaos.seed = 23;
  const Network net = make_cluster(2, 3, 4);
  for (const auto fp :
       {BucketFastPath::kNaive, BucketFastPath::kIncremental,
        BucketFastPath::kVerify}) {
    EXPECT_EQ(run_dist_case(net, FaultPlan{}, EngineOptions::Mode::kScan, fp),
              kNullPin)
        << "fastpath " << static_cast<int>(fp);
    EXPECT_EQ(run_dist_case(net, chaos, EngineOptions::Mode::kScan, fp),
              kChaosPin)
        << "fastpath " << static_cast<int>(fp);
  }
  // And the batch-math backends land on the same pins too (the dist
  // scheduler's partial i-buckets and activations run through the same
  // SoA-aware insertion core).
  for (const auto math : {BatchMathMode::kSoA, BatchMathMode::kVerify}) {
    EXPECT_EQ(run_dist_case(net, FaultPlan{}, EngineOptions::Mode::kScan,
                            BucketFastPath::kIncremental, math),
              kNullPin)
        << "batch_math " << to_string(math);
    EXPECT_EQ(run_dist_case(net, chaos, EngineOptions::Mode::kScan,
                            BucketFastPath::kIncremental, math),
              kChaosPin)
        << "batch_math " << to_string(math);
  }
}

TEST(GoldenSequence, ServeModePinned) {
  // Serve-mode pin: the full service loop (synthetic source -> admission ->
  // engine -> latency accounting) over the chaos-armed distributed
  // scheduler must reproduce this exact commit sequence. The hash covers
  // every commit's (id, node, offered, exec), so it pins admission order
  // and queue wait, not just engine output. Captured from dtm_serve with
  // the same spec.
  const std::uint64_t kPin = 1560900743787214076ULL;
  RunSpec spec;
  spec.topology = parse_spec("cluster:alpha=2,beta=3,gamma=4");
  spec.scheduler = parse_spec("dist-bucket");
  spec.fault = parse_spec("fault:drop=0.05,jitter=2");
  spec.serve = parse_spec(
      "serve:rate=3,duration=512,window=128,admit-rate=4,max-inflight=64");
  spec.latency_factor = 2;
  spec.seed = 2026;
  const Network net = Registry::make_network(spec.topology);
  const ServeReport r = make_server(net, spec)->run();
  EXPECT_EQ(r.commit_hash, kPin);
  EXPECT_EQ(r.admitted, r.commits);
}

}  // namespace
}  // namespace dtm
