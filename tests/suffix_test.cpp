// Tests for batch/suffix_wrapper: the §IV-A suffix property.
#include <gtest/gtest.h>

#include "batch/suffix_wrapper.hpp"
#include "net/topology.hpp"

namespace dtm {
namespace {

BatchProblem random_problem(const Network& net, Rng& rng, int txns,
                            int objects) {
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.now = 0;
  for (ObjId o = 0; o < objects; ++o)
    p.objects.push_back(
        {o, static_cast<NodeId>(rng.uniform_int(0, net.num_nodes() - 1)), 0,
         false});
  for (TxnId i = 0; i < txns; ++i) {
    const auto objs = rng.sample_distinct(objects, 2);
    p.txns.push_back(
        {i, static_cast<NodeId>(rng.uniform_int(0, net.num_nodes() - 1)),
         {objs[0], objs[1]}});
  }
  return p;
}

TEST(SuffixWrapper, RequiresInner) {
  EXPECT_THROW((void)SuffixWrapper(nullptr), CheckError);
}

TEST(SuffixWrapper, NameAndRandomizedForwarding) {
  const SuffixWrapper w(make_coloring_batch());
  EXPECT_EQ(w.name(), "coloring+suffix");
  EXPECT_FALSE(w.randomized());
  const SuffixWrapper wr(make_cluster_batch(3));
  EXPECT_TRUE(wr.randomized());
}

TEST(SuffixWrapper, NeverWorseThanInner) {
  const Network net = make_line(16);
  const auto inner = std::shared_ptr<const BatchScheduler>(make_tsp_batch());
  const SuffixWrapper wrapped(inner);
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const BatchProblem p = random_problem(net, rng, 10, 5);
    Rng r1(7), r2(7);
    const BatchResult base = inner->schedule(p, r1);
    const BatchResult tight = wrapped.schedule(p, r2);
    EXPECT_LE(tight.makespan, base.makespan);
  }
}

TEST(SuffixWrapper, AvailabilityAfterPrefix) {
  const Network net = make_line(12);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.now = 0;
  p.objects = {{0, 0, 0, false}, {1, 11, 0, false}};
  p.txns = {{1, 3, {0}}, {2, 8, {0, 1}}};
  BatchResult r;
  r.assignments = {{1, 3}, {2, 8}};
  r.makespan = 8;
  // Prefix of length 1 = txn 1 only: object 0 moved to node 3 at time 3,
  // object 1 untouched.
  const auto avail = SuffixWrapper::availability_after_prefix(p, r, 1);
  ASSERT_EQ(avail.size(), 2u);
  const auto find = [&](ObjId id) {
    for (const auto& o : avail)
      if (o.id == id) return o;
    ADD_FAILURE() << "object " << id << " missing";
    return BatchObject{};
  };
  const auto o0 = find(0);
  EXPECT_EQ(o0.node, 3);
  EXPECT_EQ(o0.ready, 3);
  EXPECT_TRUE(o0.from_txn);
  const auto o1 = find(1);
  EXPECT_EQ(o1.node, 11);
  EXPECT_EQ(o1.ready, 0);
  EXPECT_FALSE(o1.from_txn);
}

TEST(SuffixWrapper, EstablishesSuffixProperty) {
  // After wrapping, every suffix of the schedule must execute within the
  // inner algorithm's own time for that suffix (paper's definition).
  const Network net = make_line(16);
  const auto inner =
      std::shared_ptr<const BatchScheduler>(make_sequential_batch());
  const SuffixWrapper wrapped(inner);
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const BatchProblem p = random_problem(net, rng, 8, 4);
    Rng r1(5);
    const BatchResult tight = wrapped.schedule(p, r1);
    // Order by exec; for each suffix compare span to a fresh inner run.
    std::vector<std::pair<Time, std::size_t>> order;
    for (std::size_t i = 0; i < p.txns.size(); ++i)
      order.emplace_back(tight.exec_of(p.txns[i].id), i);
    std::sort(order.begin(), order.end());
    for (std::size_t start = 1; start < p.txns.size(); ++start) {
      BatchProblem sub;
      sub.oracle = p.oracle;
      sub.now = p.now;
      sub.objects = SuffixWrapper::availability_after_prefix(p, tight, start);
      Time span = 0;
      for (std::size_t i = start; i < order.size(); ++i) {
        sub.txns.push_back(p.txns[order[i].second]);
        span = std::max(span, order[i].first - p.now);
      }
      Rng r2(5);
      const BatchResult redo = inner->schedule(sub, r2);
      EXPECT_LE(span, redo.makespan)
          << "suffix of length " << p.txns.size() - start
          << " violates the suffix property";
    }
  }
}

TEST(SuffixWrapper, SingleTxnPassThrough) {
  const Network net = make_line(8);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.objects = {{0, 0, 0, false}};
  p.txns = {{1, 5, {0}}};
  Rng rng(1);
  const SuffixWrapper w(make_coloring_batch());
  EXPECT_EQ(w.schedule(p, rng).exec_of(1), 5);
}

}  // namespace
}  // namespace dtm
