// Tests for batch/problem_builder: folding live system state into batch
// problems (the paper's first basic modification of A).
#include <gtest/gtest.h>

#include "batch/problem_builder.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

TEST(ProblemBuilder, RestingUnpinnedObject) {
  const Network net = make_line(10);
  SyncEngine eng(net.oracle, {origin(0, 4)}, {});
  eng.begin_step({{txn(1, 7, 0, {0})}});
  const std::vector<TxnId> batch{1};
  const BatchProblem p = build_batch_problem(eng, batch, {});
  ASSERT_EQ(p.txns.size(), 1u);
  ASSERT_EQ(p.objects.size(), 1u);
  EXPECT_EQ(p.objects[0].node, 4);
  EXPECT_EQ(p.objects[0].ready, 0);
  EXPECT_FALSE(p.objects[0].from_txn);  // never acquired by a txn
  EXPECT_EQ(p.now, 0);
}

TEST(ProblemBuilder, PinnedByScheduledUser) {
  const Network net = make_line(10);
  SyncEngine eng(net.oracle, {origin(0, 0)}, {});
  eng.begin_step({{txn(1, 5, 0, {0}), txn(2, 8, 0, {0})}});
  eng.apply({{Assignment{1, 5}}});  // txn1 pins the object until t=5
  const std::vector<TxnId> batch{2};
  const BatchProblem p = build_batch_problem(eng, batch, {});
  ASSERT_EQ(p.objects.size(), 1u);
  EXPECT_EQ(p.objects[0].node, 5);   // txn1's node
  EXPECT_EQ(p.objects[0].ready, 5);  // txn1's exec
  EXPECT_TRUE(p.objects[0].from_txn);
}

TEST(ProblemBuilder, ExtraAssignmentsVisible) {
  const Network net = make_line(10);
  SyncEngine eng(net.oracle, {origin(0, 0)}, {});
  eng.begin_step({{txn(1, 5, 0, {0}), txn(2, 8, 0, {0})}});
  // txn1 scheduled earlier in the same step, not yet applied to the
  // engine: passed through the extra map.
  const ExtraAssignments extra{{1, 7}};
  const std::vector<TxnId> batch{2};
  const BatchProblem p = build_batch_problem(eng, batch, extra);
  EXPECT_EQ(p.objects[0].ready, 7);
  EXPECT_EQ(p.objects[0].node, 5);
}

TEST(ProblemBuilder, LatestPinWins) {
  const Network net = make_line(12);
  SyncEngine eng(net.oracle, {origin(0, 0)}, {});
  eng.begin_step({{txn(1, 2, 0, {0}), txn(2, 6, 0, {0}),
                   txn(3, 11, 0, {0})}});
  eng.apply({{Assignment{1, 2}, Assignment{2, 6}}});
  const std::vector<TxnId> batch{3};
  const BatchProblem p = build_batch_problem(eng, batch, {});
  EXPECT_EQ(p.objects[0].node, 6);  // txn2 is the later pin
  EXPECT_EQ(p.objects[0].ready, 6);
}

TEST(ProblemBuilder, UnscheduledStrangersAreNotCommitments) {
  const Network net = make_line(10);
  SyncEngine eng(net.oracle, {origin(0, 3)}, {});
  // txn1 unscheduled (another bucket), txn2 is ours.
  eng.begin_step({{txn(1, 9, 0, {0}), txn(2, 5, 0, {0})}});
  const std::vector<TxnId> batch{2};
  const BatchProblem p = build_batch_problem(eng, batch, {});
  EXPECT_EQ(p.objects[0].node, 3);  // the object's own position
  EXPECT_EQ(p.objects[0].ready, 0);
}

TEST(ProblemBuilder, DeduplicatesObjectsInTxn) {
  const Network net = make_line(10);
  SyncEngine eng(net.oracle, {origin(0, 0)}, {});
  Transaction t = txn(1, 5, 0, {0, 0, 0});
  eng.begin_step({{t}});
  const std::vector<TxnId> batch{1};
  const BatchProblem p = build_batch_problem(eng, batch, {});
  ASSERT_EQ(p.txns.size(), 1u);
  EXPECT_EQ(p.txns[0].objects.size(), 1u);
  EXPECT_EQ(p.objects.size(), 1u);
}

TEST(ProblemBuilder, InTransitObjectUsesDestination) {
  const Network net = make_line(10);
  SyncEngine eng(net.oracle, {origin(0, 0)}, {});
  eng.begin_step({{txn(1, 6, 0, {0})}});
  eng.apply({{Assignment{1, 6}}});
  eng.finish_step();  // object departs toward node 6
  eng.begin_step({{txn(2, 2, 1, {0})}});
  const std::vector<TxnId> batch{2};
  const BatchProblem p = build_batch_problem(eng, batch, {});
  // txn1 still pins the object (live scheduled user).
  EXPECT_EQ(p.objects[0].node, 6);
  EXPECT_EQ(p.objects[0].ready, 6);
  eng.finish_step();
}

}  // namespace
}  // namespace dtm
