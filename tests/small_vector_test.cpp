// Property tests for util/small_vector.hpp (PERF.md §8).
//
// SmallVector backs ReplyMsg::users and the dist-bucket discovery state:
// correctness here is protocol correctness. The fuzz mirrors every
// operation against std::vector; the pointed tests pin the inline/spill
// boundary, the move semantics the reply pool depends on (spill adoption,
// capacity reuse), and erase/clear behavior. The suite is the ASan/UBSan
// gate for the placement-new + memcpy storage games.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/small_vector.hpp"

namespace dtm {
namespace {

using Vec = SmallVector<std::int64_t, 4>;
using PairVec = SmallVector<std::pair<std::int64_t, std::int32_t>, 2>;

TEST(SmallVector, StaysInlineUpToCapacityThenSpills) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (std::int64_t i = 0; i < 4; ++i) {
    v.push_back(i * 10);
    EXPECT_FALSE(v.spilled());
  }
  v.push_back(40);
  EXPECT_TRUE(v.spilled());
  EXPECT_GE(v.capacity(), 5u);
  ASSERT_EQ(v.size(), 5u);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], i * 10);
}

TEST(SmallVector, ClearKeepsCapacityInlineAndSpilled) {
  Vec v;
  for (std::int64_t i = 0; i < 10; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(v.capacity(), cap);

  Vec inl{1, 2};
  inl.clear();
  EXPECT_FALSE(inl.spilled());
  EXPECT_EQ(inl.capacity(), 4u);
}

TEST(SmallVector, MoveConstructionStealsSpilledBuffer) {
  Vec v;
  for (std::int64_t i = 0; i < 8; ++i) v.push_back(i);
  const std::int64_t* storage = v.data();
  Vec w(std::move(v));
  EXPECT_EQ(w.data(), storage);  // adopted, not copied
  EXPECT_EQ(w.size(), 8u);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.spilled());  // source reset to inline
  v.push_back(99);            // and fully usable again
  EXPECT_EQ(v[0], 99);
}

TEST(SmallVector, MoveAssignReusesTargetHeapCapacity) {
  // The reply-pool round trip: park a spilled buffer, revive it, and the
  // revived side keeps using the SAME heap block — no free + realloc.
  Vec pooled;
  for (std::int64_t i = 0; i < 8; ++i) pooled.push_back(i);
  pooled.clear();
  const std::int64_t* block = pooled.data();

  Vec incoming{7, 8, 9};  // inline-sized source
  pooled = std::move(incoming);
  EXPECT_EQ(pooled.data(), block);  // reused the warmed capacity
  ASSERT_EQ(pooled.size(), 3u);
  EXPECT_EQ(pooled[0], 7);
  EXPECT_EQ(pooled[2], 9);
  EXPECT_TRUE(incoming.empty());
}

TEST(SmallVector, MoveAssignAdoptsSpilledSource) {
  Vec src;
  for (std::int64_t i = 0; i < 6; ++i) src.push_back(i);
  const std::int64_t* storage = src.data();
  Vec dst{1};
  dst = std::move(src);
  EXPECT_EQ(dst.data(), storage);
  EXPECT_EQ(dst.size(), 6u);
  EXPECT_TRUE(src.empty());
  EXPECT_FALSE(src.spilled());
}

TEST(SmallVector, EraseShiftsAndPreservesOrder) {
  Vec v{1, 2, 3, 4, 5};
  auto it = v.erase(v.begin() + 1);
  EXPECT_EQ(*it, 3);
  EXPECT_EQ(v.size(), 4u);
  it = v.erase(v.end() - 1);  // erase the back
  EXPECT_EQ(it, v.end());
  Vec want{1, 3, 4};
  EXPECT_TRUE(v == want);
}

TEST(SmallVector, PopBackOnEmptyThrows) {
  Vec v;
  EXPECT_THROW(v.pop_back(), CheckError);
}

TEST(SmallVector, PairPayloadMatchesReplyUsersUsage) {
  // std::pair is not trivially copyable (non-trivial assignment) but IS
  // trivially copy-constructible + destructible — exactly the relocation
  // contract. Exercise the real ReplyUsers shape across the spill boundary.
  PairVec v;
  for (std::int64_t i = 0; i < 5; ++i)
    v.emplace_back(i * 3, static_cast<std::int32_t>(i));
  EXPECT_TRUE(v.spilled());
  PairVec w(v);  // deep copy
  ASSERT_EQ(w.size(), 5u);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(w[i].first, i * 3);
    EXPECT_EQ(w[i].second, i);
  }
  w[0].first = -1;
  EXPECT_EQ(v[0].first, 0);  // independent storage
}

TEST(SmallVector, ResizeDefaultConstructsNewElements) {
  Vec v{5};
  v.resize(6);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 5);
  for (std::size_t i = 1; i < 6; ++i) EXPECT_EQ(v[i], 0);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVector, FuzzMirrorsStdVector) {
  Rng rng(0x5eedULL);
  for (int round = 0; round < 30; ++round) {
    Vec small;
    std::vector<std::int64_t> ref;
    for (int op = 0; op < 300; ++op) {
      const double r = rng.uniform01();
      if (r < 0.5) {
        const std::int64_t x = rng.uniform_int(-1000, 1000);
        small.push_back(x);
        ref.push_back(x);
      } else if (r < 0.6 && !ref.empty()) {
        small.pop_back();
        ref.pop_back();
      } else if (r < 0.7 && !ref.empty()) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ref.size()) - 1));
        small.erase(small.begin() + i);
        ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (r < 0.75) {
        small.clear();
        ref.clear();
      } else if (r < 0.85) {
        const auto n = static_cast<std::size_t>(rng.uniform_int(0, 12));
        small.resize(n);
        ref.resize(n);
      } else if (r < 0.95) {
        // Round-trip through a move (construction or assignment).
        Vec tmp(std::move(small));
        small = std::move(tmp);
      } else {
        Vec copy(small);
        small = copy;  // self-consistent deep copy
      }
      ASSERT_EQ(small.size(), ref.size()) << "round " << round << " op " << op;
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(small[i], ref[i]) << "round " << round << " op " << op;
    }
  }
}

}  // namespace
}  // namespace dtm
