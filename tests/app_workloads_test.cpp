// Tests for sim/app_workloads: the bank and social generators.
#include <gtest/gtest.h>

#include <set>

#include "core/greedy_scheduler.hpp"
#include "core/rw.hpp"
#include "sim/app_workloads.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

TEST(BankWorkload, TransfersAreTwoDistinctWrites) {
  const Network net = make_clique(8);
  auto wl = make_bank_workload(net);
  (void)wl->objects();
  const auto arrivals = wl->arrivals_at(0);
  EXPECT_EQ(arrivals.size(), 8u);
  for (const auto& t : arrivals) {
    ASSERT_EQ(t.accesses.size(), 2u);
    EXPECT_NE(t.accesses[0].obj, t.accesses[1].obj);
    EXPECT_EQ(t.accesses[0].mode, AccessMode::kWrite);
    EXPECT_EQ(t.accesses[1].mode, AccessMode::kWrite);
  }
}

TEST(BankWorkload, HotAccountsDominate) {
  const Network net = make_clique(16);
  BankOptions o;
  o.accounts = 100;
  o.hot_fraction = 0.05;   // accounts 0..4 are hot
  o.hot_probability = 0.8;
  o.transfers_per_node = 10;
  auto wl = make_bank_workload(net, o);
  (void)wl->objects();
  Time t = 0;
  std::int64_t hot_hits = 0, total = 0;
  while (!wl->finished() && t < 10'000) {
    for (const auto& tx : wl->arrivals_at(t)) {
      for (const auto& a : tx.accesses) {
        ++total;
        if (a.obj < 5) ++hot_hits;
      }
      wl->on_commit(tx.id, t);
    }
    ++t;
  }
  EXPECT_GT(total, 0);
  EXPECT_GT(hot_hits * 2, total);  // hot accounts take the majority
}

TEST(BankWorkload, RunsEndToEndThroughTheEngine) {
  const Network net = make_cluster(3, 4, 6);
  BankOptions o;
  o.transfers_per_node = 3;
  auto wl = make_bank_workload(net, o);
  GreedyScheduler sched;
  const RunResult r = testing::run_and_validate(net, *wl, sched);
  EXPECT_EQ(r.num_txns, net.num_nodes() * 3);
  EXPECT_GE(r.ratio, 1.0 - 1e-9);
}

TEST(SocialWorkload, FeedRefreshShapes) {
  const Network net = make_clique(8);
  SocialOptions o;
  o.write_fraction = 0.0;  // reads only
  o.fanout = 3;
  auto wl = make_social_workload(net, o);
  (void)wl->objects();
  for (const auto& t : wl->arrivals_at(0)) {
    EXPECT_EQ(t.accesses.size(), 3u);
    std::set<ObjId> distinct;
    for (const auto& a : t.accesses) {
      EXPECT_EQ(a.mode, AccessMode::kRead);
      EXPECT_TRUE(distinct.insert(a.obj).second);
    }
  }
}

TEST(SocialWorkload, PostsAreSingleWrites) {
  const Network net = make_clique(6);
  SocialOptions o;
  o.write_fraction = 1.0;  // posts only
  auto wl = make_social_workload(net, o);
  (void)wl->objects();
  for (const auto& t : wl->arrivals_at(0)) {
    ASSERT_EQ(t.accesses.size(), 1u);
    EXPECT_EQ(t.accesses[0].mode, AccessMode::kWrite);
  }
}

TEST(SocialWorkload, SharingWinsOnTheRealisticShape) {
  // The social shape through the exclusive model vs snapshot reads: the
  // read-dominated feed load is where the extension pays.
  const Network net = make_clique(16);
  SocialOptions o;
  o.actions_per_node = 3;
  o.write_fraction = 0.1;
  o.seed = 11;

  auto wl_excl = make_social_workload(net, o);
  GreedyScheduler sched;
  const RunResult excl = testing::run_and_validate(net, *wl_excl, sched);

  auto wl_rw = make_social_workload(net, o);
  const RwRunResult rw = run_rw_experiment(net, *wl_rw);

  EXPECT_EQ(excl.num_txns, rw.num_txns);
  EXPECT_LT(rw.makespan, excl.makespan);
  EXPECT_GT(rw.copies, 0);
}

TEST(SocialWorkload, DeterministicForSeed) {
  const Network net = make_grid({3, 3});
  SocialOptions o;
  o.seed = 21;
  auto a = make_social_workload(net, o);
  auto b = make_social_workload(net, o);
  (void)a->objects();
  (void)b->objects();
  const auto aa = a->arrivals_at(0);
  const auto bb = b->arrivals_at(0);
  ASSERT_EQ(aa.size(), bb.size());
  for (std::size_t i = 0; i < aa.size(); ++i) {
    ASSERT_EQ(aa[i].accesses.size(), bb[i].accesses.size());
    for (std::size_t j = 0; j < aa[i].accesses.size(); ++j)
      EXPECT_EQ(aa[i].accesses[j].obj, bb[i].accesses[j].obj);
  }
}

}  // namespace
}  // namespace dtm
