// Tests for the Definition-1 windowed competitive-ratio proxy and the
// bucket ablation knob.
#include <gtest/gtest.h>

#include "core/bucket_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

TEST(WindowedRatio, DisabledByDefault) {
  const Network net = make_line(8);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 4, 0, {0})});
  GreedyScheduler sched;
  const RunResult r = run_experiment(net, wl, sched);
  EXPECT_EQ(r.windowed_ratio, 0.0);
  EXPECT_EQ(r.num_windows, 0);
}

TEST(WindowedRatio, SingleWindowMatchesLatencyOverLb) {
  const Network net = make_line(10);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 9, 0, {0})});
  GreedyScheduler sched;
  RunOptions opts;
  opts.ratio_window = 1000;  // everything in one window
  const RunResult r = run_experiment(net, wl, sched, opts);
  EXPECT_EQ(r.num_windows, 1);
  // Latency 9, window LB = reach 9 => ratio 1.
  EXPECT_DOUBLE_EQ(r.windowed_ratio, 1.0);
}

TEST(WindowedRatio, LateWindowUsesCurrentPositions) {
  // Two txns far apart in time at the SAME node as the object will then
  // be: the second window's LB is computed against the object's position
  // at that window (node 9), so its ratio stays ~1 even though the object
  // started far away at node 0.
  const Network net = make_line(10);
  ScriptedWorkload wl({origin(0, 0)},
                      {txn(1, 9, 0, {0}), txn(2, 9, 100, {0})});
  GreedyScheduler sched;
  RunOptions opts;
  opts.ratio_window = 50;
  const RunResult r = run_experiment(net, wl, sched, opts);
  EXPECT_GE(r.num_windows, 2);
  EXPECT_LE(r.windowed_ratio, 1.5);
}

TEST(WindowedRatio, DetectsPerWindowStarvation) {
  // An irrevocability trap (cf. greedy's 17-step example): the per-window
  // ratio of the trapped transaction's window exceeds the whole-run ratio.
  const Network net = make_line(10);
  ScriptedWorkload wl({origin(0, 0)},
                      {txn(1, 9, 0, {0}), txn(2, 1, 1, {0})});
  GreedyScheduler sched;
  RunOptions opts;
  opts.ratio_window = 1;  // txn2 gets its own window
  const RunResult r = run_experiment(net, wl, sched, opts);
  // txn2: latency 16 vs window LB 8 (object attributed to node 9) -> 2.0;
  // whole-run ratio is 17/9.
  EXPECT_NEAR(r.windowed_ratio, 2.0, 1e-9);
  EXPECT_GT(r.windowed_ratio, r.ratio);
}

TEST(BucketAblation, ForcedLevelZeroSchedulesImmediately) {
  const Network net = make_line(16);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 15, 0, {0})});
  BucketOptions o;
  o.force_level = 0;
  BucketScheduler sched{
      std::shared_ptr<const BatchScheduler>(make_line_batch()), o};
  testing::run_and_validate(net, wl, sched);
  ASSERT_EQ(sched.traces().size(), 1u);
  EXPECT_EQ(sched.traces()[0].level, 0);
  EXPECT_EQ(sched.traces()[0].scheduled, 1);  // next level-0 activation
}

TEST(BucketAblation, ForcedLevelClampedToTop) {
  const Network net = make_line(16);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 15, 0, {0})});
  BucketOptions o;
  o.force_level = 1'000;
  o.max_level = 5;
  BucketScheduler sched{
      std::shared_ptr<const BatchScheduler>(make_line_batch()), o};
  testing::run_and_validate(net, wl, sched);
  EXPECT_EQ(sched.traces()[0].level, 5);
}

TEST(BucketAblation, ForcedLevelStillValidUnderLoad) {
  const Network net = make_line(32);
  SyntheticOptions w;
  w.num_objects = 16;
  w.k = 2;
  w.rounds = 3;
  w.seed = 15;
  for (const std::int32_t lvl : {0, 3, 7}) {
    SyntheticWorkload wl(net, w);
    BucketOptions o;
    o.force_level = lvl;
    BucketScheduler sched{
        std::shared_ptr<const BatchScheduler>(make_line_batch()), o};
    const RunResult r = testing::run_and_validate(net, wl, sched);
    EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  }
}

}  // namespace
}  // namespace dtm
