// Tests for core/lower_bound: the certificates must be correct (<= the
// makespan of any feasible schedule) and tight on crafted instances.
#include <gtest/gtest.h>

#include "core/lower_bound.hpp"
#include "net/topology.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

TEST(LowerBound, SingleLocalTxn) {
  const Network net = make_line(8);
  const auto lb = makespan_lower_bound({txn(1, 3, 0, {0})}, {origin(0, 3)},
                                       *net.oracle);
  EXPECT_EQ(lb.reach, 0);
  EXPECT_EQ(lb.load, 0);
  EXPECT_EQ(lb.lmax, 1);
  EXPECT_EQ(lb.best(), 1);  // floor of 1: any txn takes a step to observe
}

TEST(LowerBound, ReachDominatesForFarObject) {
  const Network net = make_line(16);
  const auto lb = makespan_lower_bound({txn(1, 15, 0, {0})}, {origin(0, 0)},
                                       *net.oracle);
  EXPECT_EQ(lb.reach, 15);
  EXPECT_EQ(lb.best(), 15);
}

TEST(LowerBound, LoadCountsUsers) {
  const Network net = make_clique(8);
  // 5 txns all share object 0 which starts at node 0 (a user's node).
  std::vector<Transaction> ts;
  for (int i = 0; i < 5; ++i)
    ts.push_back(txn(i, static_cast<NodeId>(i), 0, {0}));
  const auto lb = makespan_lower_bound(ts, {origin(0, 0)}, *net.oracle);
  EXPECT_EQ(lb.lmax, 5);
  EXPECT_EQ(lb.load, 0 + 4);  // nearest user distance 0, then 4 more commits
  EXPECT_EQ(lb.spread, 1);
  EXPECT_EQ(lb.best(), 4);
}

TEST(LowerBound, SpreadOnLine) {
  const Network net = make_line(20);
  const std::vector<Transaction> ts{txn(1, 2, 0, {0}), txn(2, 18, 0, {0})};
  const auto lb = makespan_lower_bound(ts, {origin(0, 10)}, *net.oracle);
  EXPECT_EQ(lb.spread, 16);
  EXPECT_EQ(lb.reach, 8);
  EXPECT_EQ(lb.best(), 16);
}

TEST(LowerBound, LatencyFactorScalesCertificates) {
  const Network net = make_line(16);
  const auto lb = makespan_lower_bound({txn(1, 15, 0, {0})}, {origin(0, 0)},
                                       *net.oracle, 2);
  EXPECT_EQ(lb.reach, 30);
}

TEST(LowerBound, CreationTimeShifts) {
  const Network net = make_line(16);
  const auto lb = makespan_lower_bound({txn(1, 10, 0, {0})},
                                       {origin(0, 0, 0)}, *net.oracle);
  EXPECT_EQ(lb.reach, 10);
}

TEST(LowerBound, MissingOriginThrows) {
  const Network net = make_line(4);
  EXPECT_THROW((void)makespan_lower_bound({txn(1, 0, 0, {9})}, {}, *net.oracle),
               CheckError);
}

// Soundness sweep: on random instances, LB <= makespan of an actual valid
// schedule produced by a real scheduler (via the sequential chain).
class LowerBoundSoundness : public ::testing::TestWithParam<int> {};

TEST_P(LowerBoundSoundness, NeverExceedsAchievedMakespan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  const Network net = make_grid({4, 4});
  std::vector<ObjectOrigin> origins;
  for (ObjId o = 0; o < 6; ++o)
    origins.push_back(
        {o, static_cast<NodeId>(rng.uniform_int(0, 15)), 0});
  std::vector<Transaction> ts;
  for (TxnId i = 0; i < 10; ++i) {
    const auto objs = rng.sample_distinct(6, 2);
    ts.push_back(txn(i, static_cast<NodeId>(rng.uniform_int(0, 15)), 0,
                     {objs[0], objs[1]}));
  }
  // Build an obviously feasible schedule: fully sequential with generous
  // slack (each commit D later than the previous plus travel).
  std::vector<ScheduledTxn> sched;
  Time t = 0;
  for (const auto& tx : ts) {
    t += 2 * net.diameter() + 1;
    sched.push_back({tx, t});
  }
  ASSERT_FALSE(validate_schedule(sched, origins, *net.oracle).has_value());
  const auto lb = makespan_lower_bound(ts, origins, *net.oracle);
  EXPECT_LE(lb.best(), makespan(sched));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundSoundness, ::testing::Range(0, 10));

}  // namespace
}  // namespace dtm
