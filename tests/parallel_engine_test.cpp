// Parallel-kernel determinism: the commit stream must be byte-identical at
// EVERY thread count — not merely self-consistent, but equal to the exact
// golden pins captured from the serial pre-parallel engine
// (golden_sequence_test.cpp). The matrix crosses scheduler kinds (engine
// reroute sharding, bucket wave probing + activation retries, the
// distributed twin), engine modes, fault plans (chaos forces the transport
// serial — thread counts must still agree), and thread counts
// {1, 2, 4, hardware}. kVerifyParallel additionally runs the serial-twin
// lockstep harness end-to-end.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/bucket_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "dist/dist_bucket.hpp"
#include "fault/plan.hpp"
#include "net/topology.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "sim/workload.hpp"
#include "util/parallel.hpp"

namespace dtm {
namespace {

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_result(const RunResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& s : r.committed) {
    h = fnv(h, static_cast<std::uint64_t>(s.txn.id));
    h = fnv(h, static_cast<std::uint64_t>(s.txn.node));
    h = fnv(h, static_cast<std::uint64_t>(s.txn.gen_time));
    h = fnv(h, static_cast<std::uint64_t>(s.exec));
  }
  h = fnv(h, static_cast<std::uint64_t>(r.makespan));
  h = fnv(h, static_cast<std::uint64_t>(r.active_steps));
  return h;
}

/// Thread counts under test: serial, two oversubscribed counts, and
/// whatever the host actually has (deduplicated).
std::vector<std::int32_t> thread_ladder() {
  std::vector<std::int32_t> t = {1, 2, 4};
  const auto hw = static_cast<std::int32_t>(ThreadPool::hardware_threads());
  bool have = false;
  for (const std::int32_t v : t) have = have || v == hw;
  if (!have) t.push_back(hw);
  return t;
}

const EngineOptions::Mode kModes[] = {EngineOptions::Mode::kScan,
                                      EngineOptions::Mode::kCalendar,
                                      EngineOptions::Mode::kVerify};

// --- Engine-only sharding: greedy scheduler, golden pin "star33-greedy" ---

std::uint64_t run_greedy(EngineOptions::Mode mode, std::int32_t threads) {
  const Network net = make_star(3, 3);
  SyntheticOptions w;
  w.num_objects = 10;
  w.k = 2;
  w.rounds = 2;
  w.zipf_s = 1.2;
  w.seed = 505;
  SyntheticWorkload wl(net, w);
  GreedyScheduler sched;
  RunOptions opts;
  opts.engine.mode = mode;
  opts.engine.latency_factor = 2;
  opts.engine.threads = threads;
  return hash_result(run_experiment(net, wl, sched, opts));
}

TEST(ParallelEngine, GreedyMatchesGoldenPinAtEveryThreadCount) {
  const std::uint64_t kPin = 0x15943e0c37a4a3deULL;  // golden star33-greedy
  for (const auto mode : kModes)
    for (const std::int32_t t : thread_ladder())
      EXPECT_EQ(run_greedy(mode, t), kPin)
          << "mode " << static_cast<int>(mode) << " threads " << t;
}

// --- Bucket core: wave probing + parallel retries, golden fastpath pin ---

std::uint64_t run_bucket(const Network& net, EngineOptions::Mode mode,
                         std::int32_t threads, BucketFastPath fp) {
  SyntheticOptions w;
  w.num_objects = 8;
  w.k = 2;
  w.rounds = 3;
  w.arrival_prob = 0.3;
  w.seed = 909;
  SyntheticWorkload wl(net, w);
  BucketOptions o;
  o.fastpath = fp;
  o.threads = threads;
  BucketScheduler sched(Registry::make_batch_algo("auto", net), o);
  RunOptions opts;
  opts.engine.mode = mode;
  opts.engine.threads = threads;
  return hash_result(run_experiment(net, wl, sched, opts));
}

TEST(ParallelEngine, BucketClusterMatchesGoldenPinAtEveryThreadCount) {
  // cluster234 pin from GoldenSequence.BucketFastPathPinnedOnAllTopologies:
  // randomized cluster algo — activation retries AND wave probes in play.
  const std::uint64_t kPin = 0x0cf2ffb9c53e06ffULL;
  const Network net = make_cluster(2, 3, 4);
  for (const auto mode : kModes)
    for (const std::int32_t t : thread_ladder())
      EXPECT_EQ(run_bucket(net, mode, t, BucketFastPath::kIncremental), kPin)
          << "mode " << static_cast<int>(mode) << " threads " << t;
}

TEST(ParallelEngine, BucketLinePinHoldsAndVerifyFastPathStaysSerial) {
  const std::uint64_t kPin = 0x1476a1655424f9b0ULL;  // golden line12
  const Network net = make_line(12);
  for (const std::int32_t t : thread_ladder()) {
    EXPECT_EQ(run_bucket(net, EngineOptions::Mode::kCalendar, t,
                         BucketFastPath::kIncremental),
              kPin)
        << "threads " << t;
    // kVerify cross-checks every probe against the naive scan; it must keep
    // landing on the same pin with a parallel engine underneath.
    EXPECT_EQ(run_bucket(net, EngineOptions::Mode::kCalendar, t,
                         BucketFastPath::kVerify),
              kPin)
        << "verify fastpath, threads " << t;
  }
}

// --- Distributed twin under null and chaos plans (golden dist pins) ---

std::uint64_t run_dist(const FaultPlan& plan, EngineOptions::Mode mode,
                       std::int32_t threads) {
  const Network net = make_cluster(2, 3, 4);
  SyntheticOptions w;
  w.num_objects = 10;
  w.k = 2;
  w.rounds = 2;
  w.seed = 606;
  SyntheticWorkload wl(net, w);
  DistBucketOptions o;
  o.seed = 77;
  o.fault = plan;
  o.threads = threads;
  DistributedBucketScheduler sched(net, Registry::make_batch_algo("auto", net),
                                   o);
  RunOptions opts;
  opts.engine.mode = mode;
  opts.engine.latency_factor = 2;
  opts.engine.fault = plan;
  opts.engine.threads = threads;
  return hash_result(run_experiment(net, wl, sched, opts));
}

FaultPlan chaos_plan() {
  FaultPlan plan;
  plan.drop = 0.3;
  plan.jitter = 2;
  plan.dup = 0.1;
  plan.stall = 0.3;
  plan.seed = 23;
  return plan;
}

TEST(ParallelEngine, DistBucketNullPlanPinAtEveryThreadCount) {
  const std::uint64_t kPin = 0xcdd107db4c1159e2ULL;
  for (const auto mode : kModes)
    for (const std::int32_t t : thread_ladder())
      EXPECT_EQ(run_dist(FaultPlan{}, mode, t), kPin)
          << "mode " << static_cast<int>(mode) << " threads " << t;
}

TEST(ParallelEngine, DistBucketChaosPlanPinAtEveryThreadCount) {
  // The stall plan forces the transport serial; scheduler-side parallelism
  // stays on. The chaos pin must hold regardless.
  const std::uint64_t kPin = 0x7d0e573c8d14d918ULL;
  for (const auto mode : kModes)
    for (const std::int32_t t : thread_ladder())
      EXPECT_EQ(run_dist(chaos_plan(), mode, t), kPin)
          << "mode " << static_cast<int>(mode) << " threads " << t;
}

// --- kVerifyParallel: the serial-twin lockstep harness ---

TEST(ParallelEngine, VerifyParallelModeMatchesCalendarPins) {
  for (const std::int32_t t : thread_ladder()) {
    EXPECT_EQ(run_greedy(EngineOptions::Mode::kVerifyParallel, t),
              0x15943e0c37a4a3deULL)
        << "threads " << t;
    EXPECT_EQ(run_bucket(make_cluster(2, 3, 4),
                         EngineOptions::Mode::kVerifyParallel, t,
                         BucketFastPath::kIncremental),
              0x0cf2ffb9c53e06ffULL)
        << "threads " << t;
    EXPECT_EQ(run_dist(chaos_plan(), EngineOptions::Mode::kVerifyParallel, t),
              0x7d0e573c8d14d918ULL)
        << "threads " << t;
  }
}

// --- Trial fan-out determinism ---

TEST(ParallelEngine, SeededTrialsIdenticalAcrossThreadCounts) {
  const Network net = make_cluster(2, 3, 4);
  SyntheticOptions w;
  w.num_objects = 8;
  w.k = 2;
  w.rounds = 2;
  w.seed = 1234;
  const auto factory = [&]() -> std::unique_ptr<OnlineScheduler> {
    return std::make_unique<BucketScheduler>(
        Registry::make_batch_algo("auto", net));
  };
  TrialOptions base;
  base.trials = 5;
  base.threads = 1;
  const TrialSummary serial = run_seeded_trials(net, w, factory, base);
  for (const std::int32_t t : {2, 4}) {
    TrialOptions topts = base;
    topts.threads = t;
    const TrialSummary par = run_seeded_trials(net, w, factory, topts);
    EXPECT_EQ(par.ratio, serial.ratio) << "threads " << t;
    EXPECT_EQ(par.makespan, serial.makespan) << "threads " << t;
    EXPECT_EQ(par.mean_latency, serial.mean_latency) << "threads " << t;
    EXPECT_EQ(par.lb, serial.lb) << "threads " << t;
    EXPECT_EQ(par.txns, serial.txns) << "threads " << t;
  }
}

// --- Spec surface: threads knob round-trips and rejects bad values ---

TEST(ParallelEngine, RunSpecThreadsRoundTripsThroughJson) {
  RunSpec spec;
  spec.threads = 4;
  spec.mode = "verify-parallel";
  const RunSpec back = RunSpec::from_json(spec.to_json());
  EXPECT_EQ(back, spec);
  EXPECT_EQ(back.threads, 4);
  EXPECT_EQ(back.engine_mode(), EngineOptions::Mode::kVerifyParallel);
}

TEST(ParallelEngine, InvalidThreadValuesAreHardErrors) {
  RunSpec spec;
  spec.threads = -1;
  EXPECT_THROW((void)RunSpec::from_json(spec.to_json()), CheckError);
  spec.threads = 2000;
  EXPECT_THROW((void)RunSpec::from_json(spec.to_json()), CheckError);

  EngineOptions eopts;
  eopts.threads = -3;
  EXPECT_THROW(SyncEngine(std::shared_ptr<const DistanceOracle>(
                              make_clique(4).oracle),
                          {}, eopts),
               CheckError);
}

TEST(ParallelEngine, RunSpecThreadsDriveTheWholeStack) {
  // run_spec plumbs RunSpec::threads into the engine AND the scheduler
  // core; the result must equal the serial run of the same spec.
  RunSpec spec;
  spec.topology = parse_spec("cluster:alpha=2,beta=3,gamma=4");
  spec.scheduler = parse_spec("bucket:algo=cluster");
  spec.workload = parse_spec("synthetic:objects=8,k=2,rounds=2");
  spec.seed = 77;
  spec.threads = 1;
  const std::uint64_t serial = hash_result(run_spec(spec));
  for (const std::int32_t t : {2, 4}) {
    spec.threads = t;
    EXPECT_EQ(hash_result(run_spec(spec)), serial) << "threads " << t;
  }
}

}  // namespace
}  // namespace dtm
