// Tests for core/conflict_graph: H_t / H'_t construction, degrees, and the
// standing invariant that assigned schedules form a valid partial coloring
// of H'_t at every step (for every scheduler).
#include <gtest/gtest.h>

#include "core/bucket_scheduler.hpp"
#include "core/conflict_graph.hpp"
#include "core/greedy_scheduler.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

TEST(DependencyGraph, BuildsNodesAndEdges) {
  const Network net = make_line(10);
  SyncEngine eng(net.oracle, {origin(0, 0), origin(1, 9)}, {});
  eng.begin_step({{txn(1, 2, 0, {0}), txn(2, 7, 0, {0, 1}),
                   txn(3, 4, 0, {1})}});
  const DependencyGraph g = DependencyGraph::build(eng);
  const auto s = g.stats();
  EXPECT_EQ(s.live_txns, 3);
  EXPECT_EQ(s.holders, 2);
  // Conflict edges: (1,2) share obj0, (2,3) share obj1; holder edges:
  // obj0 -> txn1, txn2; obj1 -> txn2, txn3.
  EXPECT_EQ(s.edges, 2 + 4);
  const auto i1 = g.index_of(1);
  const auto i2 = g.index_of(2);
  ASSERT_GE(i1, 0);
  ASSERT_GE(i2, 0);
  EXPECT_EQ(g.txn_degree(i1), 1);
  EXPECT_EQ(g.txn_degree(i2), 2);
  EXPECT_EQ(g.degree(i2), 2 + 2);  // two conflicts + two holders
  // Conflict weight between txn1 (node 2) and txn2 (node 7) is 5.
  EXPECT_EQ(g.txn_weighted_degree(i1), 5);
  EXPECT_EQ(g.index_of(99), -1);
}

TEST(DependencyGraph, HolderWeightsUseObjectPositions) {
  const Network net = make_line(10);
  SyncEngine eng(net.oracle, {origin(0, 3)}, {});
  eng.begin_step({{txn(1, 8, 0, {0})}});
  const DependencyGraph g = DependencyGraph::build(eng);
  const auto i = g.index_of(1);
  EXPECT_EQ(g.weighted_degree(i) - g.txn_weighted_degree(i), 5);
}

TEST(DependencyGraph, UnscheduledColorsAreUnset) {
  const Network net = make_line(6);
  SyncEngine eng(net.oracle, {origin(0, 0)}, {});
  eng.begin_step({{txn(1, 3, 0, {0})}});
  DependencyGraph g = DependencyGraph::build(eng);
  const auto& node = g.nodes()[static_cast<std::size_t>(g.index_of(1))];
  EXPECT_EQ(node.color, kNoTime);
  EXPECT_TRUE(g.valid_partial_coloring());  // vacuous
  eng.apply({{Assignment{1, 3}}});
  g = DependencyGraph::build(eng);
  EXPECT_EQ(g.nodes()[static_cast<std::size_t>(g.index_of(1))].color, 3);
  EXPECT_TRUE(g.valid_partial_coloring());
}

TEST(DependencyGraph, DetectsInvalidColoring) {
  // Force an invalid color by scheduling a txn too early relative to a
  // far-away conflicting one through the engine's own apply (the engine
  // does not check coloring — the graph does).
  const Network net = make_line(10);
  SyncEngine eng(net.oracle, {origin(0, 0)}, {});
  eng.begin_step({{txn(1, 0, 0, {0}), txn(2, 9, 0, {0})}});
  eng.apply({{Assignment{1, 0}, Assignment{2, 3}}});  // 9 hops in 3 steps
  const DependencyGraph g = DependencyGraph::build(eng);
  EXPECT_FALSE(g.valid_partial_coloring());
}

// The bitset pair-construction path (kSoA) must reproduce the scalar
// packed-sort path edge for edge, on live engine states mid-run; kVerify
// additionally self-checks inside build.
TEST(DependencyGraph, BitsetBuildMatchesScalar) {
  const auto nets = testing::small_networks();
  for (std::size_t ni = 0; ni < nets.size(); ++ni) {
    const Network& net = nets[ni];
    SyntheticOptions w;
    w.num_objects = std::max<std::int32_t>(4, net.num_nodes() / 2);
    w.k = 2;
    w.rounds = 2;
    w.seed = 900 + static_cast<std::int64_t>(ni);
    SyntheticWorkload wl(net, w);
    GreedyScheduler sched;
    SyncEngine eng(net.oracle, wl.objects(), {});
    int steps = 0;
    while (!(wl.finished() && eng.all_done())) {
      const auto arrivals = wl.arrivals_at(eng.now());
      eng.begin_step(arrivals);
      eng.apply(sched.on_step(eng, arrivals));
      const DependencyGraph ref =
          DependencyGraph::build(eng, BatchMathMode::kScalar);
      for (const auto m : {BatchMathMode::kSoA, BatchMathMode::kVerify}) {
        const DependencyGraph g = DependencyGraph::build(eng, m);
        ASSERT_EQ(g.nodes().size(), ref.nodes().size());
        ASSERT_EQ(g.edges().size(), ref.edges().size())
            << net.name << " step " << eng.now();
        for (std::size_t e = 0; e < g.edges().size(); ++e) {
          EXPECT_EQ(g.edges()[e].a, ref.edges()[e].a);
          EXPECT_EQ(g.edges()[e].b, ref.edges()[e].b);
          EXPECT_EQ(g.edges()[e].weight, ref.edges()[e].weight);
        }
        for (std::size_t v = 0; v < g.nodes().size(); ++v) {
          const auto n = static_cast<std::int32_t>(v);
          EXPECT_EQ(g.degree(n), ref.degree(n));
          EXPECT_EQ(g.weighted_degree(n), ref.weighted_degree(n));
        }
      }
      for (const auto& c : eng.finish_step()) wl.on_commit(c.txn, c.exec);
      ASSERT_LT(++steps, 1'000'000);
    }
    EXPECT_GT(steps, 0);
  }
}

// The standing invariant: at every step of a run, the assigned execution
// times form a valid partial coloring of H'_t. This is the graph-theoretic
// statement of schedule feasibility and holds for every scheduler.
class ColoringInvariant : public ::testing::TestWithParam<int> {};

TEST_P(ColoringInvariant, HoldsThroughoutRuns) {
  const auto nets = testing::small_networks();
  const Network& net = nets[static_cast<std::size_t>(GetParam()) % nets.size()];
  const bool bucket = GetParam() >= 5;
  SyntheticOptions w;
  w.num_objects = std::max<std::int32_t>(4, net.num_nodes() / 2);
  w.k = 2;
  w.rounds = 2;
  w.seed = 500 + GetParam();
  SyntheticWorkload wl(net, w);
  std::unique_ptr<OnlineScheduler> sched;
  if (bucket)
    sched = std::make_unique<BucketScheduler>(
        std::shared_ptr<const BatchScheduler>(make_coloring_batch()));
  else
    sched = std::make_unique<GreedyScheduler>();
  SyncEngine eng(net.oracle, wl.objects(), {});
  int checks = 0;
  while (!(wl.finished() && eng.all_done())) {
    const auto arrivals = wl.arrivals_at(eng.now());
    eng.begin_step(arrivals);
    eng.apply(sched->on_step(eng, arrivals));
    const DependencyGraph g = DependencyGraph::build(eng);
    EXPECT_TRUE(g.valid_partial_coloring())
        << net.name << " at step " << eng.now();
    ++checks;
    for (const auto& c : eng.finish_step()) wl.on_commit(c.txn, c.exec);
    ASSERT_LT(checks, 1'000'000);
  }
  EXPECT_GT(checks, 0);
}

INSTANTIATE_TEST_SUITE_P(SchedulersAndTopologies, ColoringInvariant,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace dtm
