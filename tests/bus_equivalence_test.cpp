// Wheel-vs-heap bus equivalence fuzz (PERF.md §8).
//
// The wheel-backed MessageBus claims byte-identical (deliver, seq) pop
// order with the frozen ReferenceHeapBus. These tests drive both with the
// same random monotone send/drain schedule — mixed payload kinds, equal
// delivery times forcing seq tie-breaks, and explicit far-future
// deliveries that overflow the wheel's ring horizon — and assert the
// drained streams match field-for-field.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "dist/bus.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"
#include "util/timing_wheel.hpp"

namespace dtm {
namespace {

// deliver_at is protected (only the fault decorator schedules explicit
// times in production); the fuzz needs it to craft horizon-overflowing
// deliveries.
class WheelProbe : public MessageBus {
 public:
  using MessageBus::deliver_at;
  using MessageBus::MessageBus;
};

class HeapProbe : public ReferenceHeapBus {
 public:
  using ReferenceHeapBus::deliver_at;
  using ReferenceHeapBus::ReferenceHeapBus;
};

void expect_same_message(const Message& a, const Message& b,
                         const char* what, int step) {
  ASSERT_EQ(a.from, b.from) << what << " step " << step;
  ASSERT_EQ(a.to, b.to) << what << " step " << step;
  ASSERT_EQ(a.sent, b.sent) << what << " step " << step;
  ASSERT_EQ(a.deliver, b.deliver) << what << " step " << step;
  ASSERT_EQ(a.seq, b.seq) << what << " step " << step;
  ASSERT_EQ(a.payload.index(), b.payload.index()) << what << " step " << step;
  if (const auto* pa = std::get_if<ProbeMsg>(&a.payload)) {
    const auto& pb = std::get<ProbeMsg>(b.payload);
    EXPECT_EQ(pa->requester, pb.requester);
    EXPECT_EQ(pa->object, pb.object);
    EXPECT_EQ(pa->epoch, pb.epoch);
  } else if (const auto* ra = std::get_if<ReplyMsg>(&a.payload)) {
    const auto& rb = std::get<ReplyMsg>(b.payload);
    EXPECT_EQ(ra->requester, rb.requester);
    EXPECT_EQ(ra->object, rb.object);
    EXPECT_EQ(ra->object_free_at, rb.object_free_at);
    ASSERT_EQ(ra->users.size(), rb.users.size());
    for (std::size_t i = 0; i < ra->users.size(); ++i) {
      EXPECT_EQ(ra->users[i].first, rb.users[i].first);
      EXPECT_EQ(ra->users[i].second, rb.users[i].second);
    }
  } else {
    EXPECT_EQ(std::get<ReportMsg>(a.payload).txn,
              std::get<ReportMsg>(b.payload).txn);
  }
}

Payload random_payload(Rng& rng, std::int64_t tag) {
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      ProbeMsg p;
      p.requester = static_cast<TxnId>(tag);
      p.object = static_cast<ObjId>(tag % 7);
      p.epoch = static_cast<std::int32_t>(tag % 3);
      return p;
    }
    case 1: {
      ReplyMsg r;
      r.requester = static_cast<TxnId>(tag);
      r.object = static_cast<ObjId>(tag % 5);
      r.object_free_at = tag * 2;
      // Sometimes spill past the inline capacity: equivalence must hold
      // for heap-backed user lists too.
      const std::int64_t users =
          rng.uniform_int(0, 2 * static_cast<std::int64_t>(
                                     ReplyUsers::inline_capacity()));
      for (std::int64_t u = 0; u < users; ++u)
        r.users.emplace_back(static_cast<TxnId>(tag + u),
                             static_cast<NodeId>(u % 4));
      return r;
    }
    default:
      return ReportMsg{static_cast<TxnId>(tag),
                       static_cast<std::int32_t>(tag % 2)};
  }
}

TEST(BusEquivalence, FuzzedMonotoneSchedulesMatchByteForByte) {
  const Network net = make_line(12);
  Rng rng(0xbeefULL);
  for (int round = 0; round < 12; ++round) {
    WheelProbe wheel(*net.oracle);
    HeapProbe heap(*net.oracle);
    std::vector<Message> got_w;
    std::vector<Message> got_h;
    Time now = 0;
    std::int64_t tag = 0;
    for (int op = 0; op < 600; ++op) {
      const double r = rng.uniform01();
      if (r < 0.55) {
        const auto from = static_cast<NodeId>(rng.uniform_int(0, 11));
        const auto to = static_cast<NodeId>(rng.uniform_int(0, 11));
        const Payload p = random_payload(rng, tag++);
        wheel.send(from, to, now, p);
        heap.send(from, to, now, p);
      } else if (r < 0.7) {
        // Far-future delivery, often beyond the wheel's ring horizon.
        const Time deliver =
            now + rng.uniform_int(
                      0, 4 * static_cast<Time>(TimingWheel<Message>::kSlots));
        const Payload p = random_payload(rng, tag++);
        wheel.deliver_at(2, 9, now, deliver, p);
        heap.deliver_at(2, 9, now, deliver, p);
      } else {
        now += rng.uniform_int(0, 300);
        wheel.drain_into(now, got_w);
        heap.drain_into(now, got_h);
        ASSERT_EQ(got_w.size(), got_h.size())
            << "round " << round << " op " << op;
        for (std::size_t i = 0; i < got_w.size(); ++i)
          expect_same_message(got_w[i], got_h[i], "drain", op);
      }
    }
    // Flush: both must report the same horizon and empty out together.
    ASSERT_EQ(wheel.next_delivery(), heap.next_delivery()) << "round " << round;
    now += 8 * static_cast<Time>(TimingWheel<Message>::kSlots);
    wheel.drain_into(now, got_w);
    heap.drain_into(now, got_h);
    ASSERT_EQ(got_w.size(), got_h.size()) << "round " << round << " flush";
    for (std::size_t i = 0; i < got_w.size(); ++i)
      expect_same_message(got_w[i], got_h[i], "flush", round);
    EXPECT_EQ(wheel.next_delivery(), kNoTime);
    EXPECT_EQ(heap.next_delivery(), kNoTime);
    EXPECT_EQ(wheel.messages_sent(), heap.messages_sent());
  }
}

TEST(BusEquivalence, EqualDeliveryTimesPreserveSendOrder) {
  // All sends land at the same delivery step: pop order must be exactly
  // send order (the seq tie-break), on both implementations.
  const Network net = make_line(4);
  MessageBus wheel(*net.oracle);
  ReferenceHeapBus heap(*net.oracle);
  for (int i = 0; i < 50; ++i) {
    wheel.send(0, 1, 10, ReportMsg{i});
    heap.send(0, 1, 10, ReportMsg{i});
  }
  std::vector<Message> got_w;
  std::vector<Message> got_h;
  wheel.drain_into(11, got_w);
  heap.drain_into(11, got_h);
  ASSERT_EQ(got_w.size(), 50u);
  ASSERT_EQ(got_h.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(std::get<ReportMsg>(got_w[i].payload).txn, i);
    EXPECT_EQ(std::get<ReportMsg>(got_h[i].payload).txn, i);
  }
}

}  // namespace
}  // namespace dtm
