// Streaming subsystem tests: arrival-profile shapes (including the
// (rho, b)-adversary's admissibility property), source determinism, the
// memory-bounded run loop's zero-loss and drain invariants, cross-mode
// commit-hash identity over the ring calendar, the batch runner's
// drain_every path, and the "stream:" spec round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "net/topology.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "sim/workload.hpp"
#include "stream/stream_runner.hpp"
#include "stream/stream_source.hpp"
#include "util/check.hpp"

namespace dtm {
namespace {

StreamConfig base_config() {
  StreamConfig c;
  c.rate = 2.0;
  c.objects = 64;
  c.k = 2;
  c.target = 200;
  return c;
}

/// Drains the source through `horizon`, returning all offers in order.
std::vector<Transaction> collect(StreamSource& src, Time horizon) {
  std::vector<Transaction> out;
  while (src.next_offer_time() <= horizon) {
    const Time t = src.next_offer_time();
    auto offers = src.offers_at(t);
    out.insert(out.end(), offers.begin(), offers.end());
  }
  return out;
}

TEST(StreamSource, DeterministicAcrossConstructions) {
  const Network net = make_clique(8);
  StreamConfig c = base_config();
  c.profile = "mmpp";
  StreamSource a(net, c);
  StreamSource b(net, c);
  const auto xs = collect(a, 512);
  const auto ys = collect(b, 512);
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(xs[i].gen_time, ys[i].gen_time);
    EXPECT_EQ(xs[i].node, ys[i].node);
    ASSERT_EQ(xs[i].accesses.size(), ys[i].accesses.size());
    for (std::size_t j = 0; j < xs[i].accesses.size(); ++j)
      EXPECT_EQ(xs[i].accesses[j].obj, ys[i].accesses[j].obj);
  }
}

TEST(StreamSource, SteadyRateHitsTheMean) {
  const Network net = make_clique(8);
  StreamConfig c = base_config();
  c.rate = 3.0;
  StreamSource src(net, c);
  const auto offers = collect(src, 999);
  // The fractional accumulator releases exactly floor-paced batches: 1000
  // steps at rate 3 is 3000 transactions, give or take the final carry.
  EXPECT_NEAR(static_cast<double>(offers.size()), 3000.0, 4.0);
}

TEST(StreamSource, DiurnalHighAndLowPhasesDiffer) {
  const Network net = make_clique(8);
  StreamConfig c = base_config();
  c.profile = "diurnal";
  c.rate = 4.0;
  c.period = 256;
  c.duty = 0.5;
  c.low_mult = 0.25;
  StreamSource src(net, c);
  const auto offers = collect(src, 4 * 256 - 1);
  std::int64_t high = 0, low = 0;
  for (const auto& t : offers) {
    const Time phase = t.gen_time % 256;
    (phase < 128 ? high : low) += 1;
  }
  // 4 periods: high phases carry rate 4, low phases rate 1.
  EXPECT_NEAR(static_cast<double>(high), 4.0 * 128 * 4, 16.0);
  EXPECT_NEAR(static_cast<double>(low), 1.0 * 128 * 4, 16.0);
}

TEST(StreamSource, AdversaryRespectsRhoBAdmissibility) {
  const Network net = make_clique(8);
  StreamConfig c = base_config();
  c.profile = "adversary";
  c.rate = 1.5;   // rho
  c.burst = 24.0; // b
  StreamSource src(net, c);
  const Time horizon = 4096;
  std::vector<std::int64_t> per_step(static_cast<std::size_t>(horizon), 0);
  for (const auto& t : collect(src, horizon - 1))
    ++per_step[static_cast<std::size_t>(t.gen_time)];
  // The defining constraint: every T-step window receives <= rho*T + b.
  // Prefix sums make the sliding check O(1) per window.
  std::vector<std::int64_t> prefix(per_step.size() + 1, 0);
  for (std::size_t i = 0; i < per_step.size(); ++i)
    prefix[i + 1] = prefix[i] + per_step[i];
  std::int64_t peak_burst = 0;
  for (const std::int64_t w : {1, 16, 64, 256, 1024}) {
    for (std::size_t s = 0; s + static_cast<std::size_t>(w) < prefix.size();
         ++s) {
      const std::int64_t got = prefix[s + static_cast<std::size_t>(w)] -
                               prefix[s];
      EXPECT_LE(static_cast<double>(got),
                c.rate * static_cast<double>(w) + c.burst);
      if (w == 1) peak_burst = std::max(peak_burst, got);
    }
  }
  // ...and the schedule is genuinely bursty, not trickle-paced: single
  // steps carry (nearly) the full burst budget.
  EXPECT_GE(peak_burst, static_cast<std::int64_t>(c.burst) - 1);
}

TEST(StreamSource, RotationMovesTheHotSet) {
  const Network net = make_clique(8);
  StreamConfig c = base_config();
  c.zipf = 1.2;
  c.objects = 128;
  c.rotate_every = 512;
  StreamSource src(net, c);
  std::set<ObjId> first_epoch, second_epoch;
  for (const auto& t : collect(src, 1023)) {
    auto& bucket = t.gen_time < 512 ? first_epoch : second_epoch;
    for (const auto& a : t.accesses) bucket.insert(a.obj);
  }
  // A pure shift of the draw cannot keep the hot sets identical.
  EXPECT_NE(first_epoch, second_epoch);
}

TEST(StreamSource, ValidatesItsConfig) {
  const Network net = make_clique(4);
  StreamConfig c = base_config();
  c.rate = 0.0;
  EXPECT_THROW((void)StreamSource(net, c), CheckError);
  c = base_config();
  c.target = 0;
  c.duration = 0;
  EXPECT_THROW((void)StreamSource(net, c), CheckError);
  c = base_config();
  c.k = 100;
  c.objects = 4;
  EXPECT_THROW((void)StreamSource(net, c), CheckError);
}

// ---------------------------------------------------------------------------
// StreamRunner

RunSpec stream_spec(const std::string& topo, const std::string& stream,
                    const std::string& mode = "calendar") {
  RunSpec spec;
  spec.topology = parse_spec(topo);
  spec.scheduler = parse_spec("greedy");
  spec.stream = parse_spec(stream);
  spec.mode = mode;
  spec.seed = 77;
  return spec;
}

TEST(StreamRunner, RunsToTargetWithDrainAccounting) {
  const RunSpec spec = stream_spec(
      "clique:n=8", "stream:rate=2,objects=64,target=2000,window=128,"
                    "drain-every=32");
  const Network net = Registry::make_network(spec.topology);
  const StreamReport r = make_stream_runner(net, spec)->run();
  EXPECT_EQ(r.commits, 2000);
  EXPECT_EQ(r.accepted, r.commits);
  EXPECT_EQ(r.drained + r.residual, r.commits);
  EXPECT_GT(r.drained, 0);
  // The drain cadence bounds the retained log far below the run length.
  EXPECT_LT(r.peak_committed_log, r.commits);
  EXPECT_GT(r.ratio_windows, 0);
  EXPECT_GT(r.windowed_ratio_max, 0.0);
  EXPECT_EQ(r.latency.count(), r.commits);
}

TEST(StreamRunner, CommitHashIdenticalAcrossEngineModes) {
  const std::string stream =
      "stream:profile=mmpp,rate=2,objects=64,target=1500,window=128,"
      "drain-every=32";
  const Network net = Registry::make_network(parse_spec("line:n=6"));
  const StreamReport cal =
      make_stream_runner(net, stream_spec("line:n=6", stream, "calendar"))
          ->run();
  const StreamReport scan =
      make_stream_runner(net, stream_spec("line:n=6", stream, "scan"))
          ->run();
  // Byte-identity across the calendar fast path and the scan reference is
  // the determinism contract; the FNV commit-stream hash carries it without
  // retaining a single committed entry.
  EXPECT_EQ(cal.commit_hash, scan.commit_hash);
  EXPECT_EQ(cal.commits, scan.commits);
  EXPECT_EQ(cal.end_time, scan.end_time);
}

TEST(StreamRunner, MaxLiveWatermarkShedsUnderAdversary) {
  const RunSpec spec = stream_spec(
      "line:n=4", "stream:profile=adversary,rate=2,burst=64,objects=32,"
                  "target=1000,window=128,drain-every=32,max-live=16");
  const Network net = Registry::make_network(spec.topology);
  const StreamReport r = make_stream_runner(net, spec)->run();
  // The burst slams into the watermark: offers above it are shed, yet
  // nothing accepted is ever lost.
  EXPECT_GT(r.shed, 0);
  EXPECT_EQ(r.commits, 1000);
  EXPECT_EQ(r.accepted, r.commits);
  EXPECT_EQ(r.offered, r.accepted + r.shed);
  EXPECT_LE(r.peak_live, 16);
}

TEST(StreamRunner, DurationModeStopsOfferingAtTheHorizon) {
  const RunSpec spec = stream_spec(
      "clique:n=6", "stream:rate=2,objects=32,target=0,duration=256,"
                    "window=64,drain-every=16");
  const Network net = Registry::make_network(spec.topology);
  const StreamReport r = make_stream_runner(net, spec)->run();
  EXPECT_GT(r.commits, 0);
  EXPECT_EQ(r.accepted, r.commits);
  // ~2 offers per step over 256 steps, then quiescence.
  EXPECT_NEAR(static_cast<double>(r.commits), 512.0, 8.0);
}

TEST(StreamRunner, WindowResidencyStaysBoundedOnLongRuns) {
  const RunSpec spec = stream_spec(
      "clique:n=8", "stream:rate=4,objects=64,target=4000,window=64,"
                    "drain-every=16");
  const Network net = Registry::make_network(spec.topology);
  const StreamReport r = make_stream_runner(net, spec)->run();
  // Windows retire as their arrivals commit: residency must track latency,
  // not run length (~15 windows finalized here).
  EXPECT_GT(r.ratio_windows, 10);
  EXPECT_LE(r.peak_open_windows, 6);
  EXPECT_LT(r.peak_window_txns, r.commits / 2);
}

// ---------------------------------------------------------------------------
// Batch runner drain_every

TEST(RunnerDrain, DrainedRunMatchesRetainedRunHeadlines) {
  const Network net = make_clique(8);
  SyntheticOptions w;
  w.num_objects = 32;
  w.k = 2;
  w.rounds = 6;
  w.gap = 2;
  w.seed = 5;

  SyntheticWorkload retained_wl(net, w);
  GreedyScheduler retained_sched;
  const RunResult retained =
      run_experiment(net, retained_wl, retained_sched, {});

  SyntheticWorkload drained_wl(net, w);
  GreedyScheduler drained_sched;
  RunOptions opts;
  opts.validate = false;
  opts.collect_schedule = false;
  opts.drain_every = 4;
  const RunResult drained = run_experiment(net, drained_wl, drained_sched,
                                           opts);

  EXPECT_EQ(drained.num_txns, retained.num_txns);
  EXPECT_EQ(drained.makespan, retained.makespan);
  EXPECT_EQ(drained.active_steps, retained.active_steps);
  EXPECT_DOUBLE_EQ(drained.latency.mean(), retained.latency.mean());
  EXPECT_EQ(drained.drained, drained.num_txns);
  EXPECT_GT(drained.peak_committed_log, 0);
  EXPECT_LT(drained.peak_committed_log, drained.num_txns);
  EXPECT_TRUE(drained.committed.empty());
}

TEST(RunnerDrain, IncompatibleOptionsAreHardErrors) {
  const Network net = make_clique(4);
  SyntheticOptions w;
  w.num_objects = 8;
  w.rounds = 1;
  SyntheticWorkload wl(net, w);
  GreedyScheduler sched;
  RunOptions opts;
  opts.drain_every = 4;  // validate still defaults to true
  EXPECT_THROW((void)run_experiment(net, wl, sched, opts), CheckError);
  opts.validate = false;
  opts.collect_schedule = true;
  EXPECT_THROW((void)run_experiment(net, wl, sched, opts), CheckError);
  opts.collect_schedule = false;
  opts.ratio_window = 16;
  EXPECT_THROW((void)run_experiment(net, wl, sched, opts), CheckError);
}

// ---------------------------------------------------------------------------
// Spec round-trip

TEST(StreamSpec, RoundTripsThroughJson) {
  RunSpec spec;
  spec.stream = parse_spec(
      "stream:profile=adversary,rate=1.5,burst=48,target=5000,max-live=64");
  const RunSpec back = RunSpec::from_json(spec.to_json());
  EXPECT_EQ(back, spec);
  const StreamConfig c = Registry::make_stream_config(back.stream, 42);
  EXPECT_EQ(c.profile, "adversary");
  EXPECT_DOUBLE_EQ(c.rate, 1.5);
  EXPECT_DOUBLE_EQ(c.burst, 48.0);
  EXPECT_EQ(c.target, 5000);
  EXPECT_EQ(c.max_live, 64);
  EXPECT_EQ(c.seed, 42u);
}

TEST(StreamSpec, UnknownKnobsAndKindsAreHardErrors) {
  EXPECT_THROW(Registry::make_stream_config(parse_spec("stream:bogus=1")),
               CheckError);
  EXPECT_THROW(Registry::make_stream_config(parse_spec("serve:rate=1")),
               CheckError);
  EXPECT_THROW(
      Registry::make_stream_config(parse_spec("stream:profile=warp")),
      CheckError);
  EXPECT_THROW(Registry::make_stream_config(parse_spec("stream:rate=-1")),
               CheckError);
}

}  // namespace
}  // namespace dtm
