// Tests for net/topology: every closed-form oracle must agree with an APSP
// oracle computed over the explicit graph — the cross-check that lets the
// experiments trust O(1) distances at large n.
#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace dtm {
namespace {

void expect_oracle_matches_graph(const Network& net) {
  const ApspOracle ref(net.graph);
  ASSERT_EQ(net.oracle->num_nodes(), net.graph.num_nodes());
  for (NodeId u = 0; u < net.num_nodes(); ++u)
    for (NodeId v = 0; v < net.num_nodes(); ++v)
      ASSERT_EQ(net.dist(u, v), ref.dist(u, v))
          << net.name << " dist(" << u << "," << v << ")";
  EXPECT_EQ(net.diameter(), ref.diameter()) << net.name;
}

class OracleCrossCheck : public ::testing::TestWithParam<int> {};

TEST(Topology, CliqueOracle) { expect_oracle_matches_graph(make_clique(9)); }
TEST(Topology, LineOracle) { expect_oracle_matches_graph(make_line(11)); }
TEST(Topology, RingOracleOdd) { expect_oracle_matches_graph(make_ring(9)); }
TEST(Topology, RingOracleEven) { expect_oracle_matches_graph(make_ring(10)); }
TEST(Topology, Grid2dOracle) {
  expect_oracle_matches_graph(make_grid({4, 5}));
}
TEST(Topology, Grid3dOracle) {
  expect_oracle_matches_graph(make_grid({3, 2, 4}));
}
TEST(Topology, GridDegenerateOracle) {
  expect_oracle_matches_graph(make_grid({1, 7}));
}
TEST(Topology, Torus2dOracle) {
  expect_oracle_matches_graph(make_torus({4, 5}));
}
TEST(Topology, Torus3dOracle) {
  expect_oracle_matches_graph(make_torus({3, 3, 2}));
}
TEST(Topology, HypercubeOracle) {
  expect_oracle_matches_graph(make_hypercube(4));
}
TEST(Topology, StarOracle) { expect_oracle_matches_graph(make_star(4, 3)); }
TEST(Topology, StarSingleRayOracle) {
  expect_oracle_matches_graph(make_star(1, 5));
}
TEST(Topology, ClusterOracle) {
  expect_oracle_matches_graph(make_cluster(3, 4, 6));
}
TEST(Topology, ClusterMinGammaOracle) {
  expect_oracle_matches_graph(make_cluster(4, 2, 2));
}
TEST(Topology, ButterflySelfConsistent) {
  // Butterfly uses APSP already; sanity-check structure instead.
  const Network net = make_butterfly(3);
  EXPECT_EQ(net.num_nodes(), 4 * 8);
  EXPECT_EQ(net.graph.num_edges(), 3 * 8 * 2);
  // Level-0 row r connects to level-1 rows r and r^1.
  const auto nb = net.graph.neighbors(0);
  EXPECT_EQ(nb.size(), 2u);
}

TEST(Topology, RandomConnected) {
  Rng rng(5);
  const Network net = make_random_connected(20, 15, 4, rng);
  EXPECT_TRUE(net.graph.connected());
  EXPECT_EQ(net.graph.num_edges(), 19 + 15);
  expect_oracle_matches_graph(net);  // APSP vs APSP: trivially equal sizes
}

TEST(Topology, CliqueSizesAndDiameter) {
  EXPECT_EQ(make_clique(1).diameter(), 0);
  const Network c = make_clique(6);
  EXPECT_EQ(c.num_nodes(), 6);
  EXPECT_EQ(c.graph.num_edges(), 15);
  EXPECT_EQ(c.diameter(), 1);
}

TEST(Topology, HypercubeStructure) {
  const Network h = make_hypercube(5);
  EXPECT_EQ(h.num_nodes(), 32);
  EXPECT_EQ(h.graph.num_edges(), 32 * 5 / 2);
  EXPECT_EQ(h.diameter(), 5);
  EXPECT_EQ(h.dist(0b00000, 0b10101), 3);
}

TEST(Topology, StarDistances) {
  const NodeId a = 3, b = 4;
  const Network s = make_star(a, b);
  EXPECT_EQ(s.num_nodes(), 1 + a * b);
  // Center to ray tip.
  EXPECT_EQ(s.dist(0, star_node(a, b, 2, b - 1)), b);
  // Tip to tip through the center.
  EXPECT_EQ(s.dist(star_node(a, b, 0, b - 1), star_node(a, b, 1, b - 1)),
            2 * b);
  // Same ray.
  EXPECT_EQ(s.dist(star_node(a, b, 1, 0), star_node(a, b, 1, 3)), 3);
  EXPECT_EQ(s.diameter(), 2 * b);
}

TEST(Topology, ClusterDistances) {
  const Network c = make_cluster(3, 4, 7);
  // Within a clique.
  EXPECT_EQ(c.dist(cluster_node(4, 1, 1), cluster_node(4, 1, 3)), 1);
  // Bridge to bridge.
  EXPECT_EQ(c.dist(cluster_node(4, 0, 0), cluster_node(4, 2, 0)), 7);
  // Member to member across cliques: 1 + gamma + 1.
  EXPECT_EQ(c.dist(cluster_node(4, 0, 2), cluster_node(4, 2, 3)), 9);
  EXPECT_EQ(c.diameter(), 9);
}

TEST(Topology, ClusterRequiresGammaAtLeastBeta) {
  EXPECT_THROW((void)make_cluster(2, 4, 3), CheckError);
}

TEST(Topology, GridCoordinatesRowMajor) {
  const Network g = make_grid({3, 4});
  // Node 5 = (1, 1); node 11 = (2, 3).
  EXPECT_EQ(g.dist(5, 11), 1 + 2);
  EXPECT_EQ(g.diameter(), 2 + 3);
}

TEST(Topology, LogDimensionalGrid) {
  // The paper's "log n-dimensional grid": extents 2^d with d dims.
  const Network g = make_grid(std::vector<NodeId>(4, 2));
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_EQ(g.diameter(), 4);
  // Isomorphic to the hypercube: distances are Hamming distances.
  EXPECT_EQ(g.dist(0, 15), 4);
}

TEST(Topology, TreeOracle) {
  expect_oracle_matches_graph(make_tree(2, 3));
  expect_oracle_matches_graph(make_tree(3, 2));
}

TEST(Topology, TreeStructure) {
  const Network t = make_tree(2, 3);
  EXPECT_EQ(t.num_nodes(), 15);
  EXPECT_EQ(t.graph.num_edges(), 14);
  EXPECT_EQ(t.diameter(), 6);
  EXPECT_EQ(t.dist(0, 14), 3);   // root to a leaf
  EXPECT_EQ(t.dist(7, 14), 6);   // leftmost to rightmost leaf
  EXPECT_EQ(t.dist(7, 8), 2);    // sibling leaves
}

TEST(Topology, Names) {
  EXPECT_EQ(make_clique(4).name, "clique(n=4)");
  EXPECT_EQ(to_string(TopologyKind::kButterfly), "butterfly");
}

}  // namespace
}  // namespace dtm
