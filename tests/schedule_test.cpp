// Tests for core/schedule: the independent chain-feasibility validator.
#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "net/topology.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

class ScheduleTest : public ::testing::Test {
 protected:
  Network net_ = make_line(10);
};

TEST_F(ScheduleTest, EmptyScheduleValid) {
  EXPECT_FALSE(validate_schedule({}, {}, *net_.oracle).has_value());
}

TEST_F(ScheduleTest, SingleTxnNeedsTravel) {
  const std::vector<ObjectOrigin> origins{origin(0, 0)};
  std::vector<ScheduledTxn> s{{txn(1, 5, 0, {0}), 5}};
  EXPECT_FALSE(validate_schedule(s, origins, *net_.oracle).has_value());
  s[0].exec = 4;  // object cannot arrive
  const auto err = validate_schedule(s, origins, *net_.oracle);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("cannot arrive"), std::string::npos);
}

TEST_F(ScheduleTest, LatencyFactorDoublesTravel) {
  const std::vector<ObjectOrigin> origins{origin(0, 0)};
  std::vector<ScheduledTxn> s{{txn(1, 5, 0, {0}), 9}};
  EXPECT_TRUE(validate_schedule(s, origins, *net_.oracle, 2).has_value());
  s[0].exec = 10;
  EXPECT_FALSE(validate_schedule(s, origins, *net_.oracle, 2).has_value());
}

TEST_F(ScheduleTest, ChainBetweenUsers) {
  const std::vector<ObjectOrigin> origins{origin(0, 2)};
  // Object at node 2: txn A at node 2 (t=1 invalid: before gen is fine but
  // chain...), then B at node 6 needs 4 more steps.
  std::vector<ScheduledTxn> s{{txn(1, 2, 0, {0}), 1},
                              {txn(2, 6, 0, {0}), 5}};  // 1 + dist(2,6) = 5
  EXPECT_FALSE(validate_schedule(s, origins, *net_.oracle).has_value());
  s[1].exec = 4;  // object released at 1 cannot cover 4 hops by then
  EXPECT_TRUE(validate_schedule(s, origins, *net_.oracle).has_value());
}

TEST_F(ScheduleTest, SameNodeUsersNeedOneStep) {
  const std::vector<ObjectOrigin> origins{origin(0, 3)};
  std::vector<ScheduledTxn> s{{txn(1, 3, 0, {0}), 2},
                              {txn(2, 3, 0, {0}), 2}};
  EXPECT_TRUE(validate_schedule(s, origins, *net_.oracle).has_value());
  s[1].exec = 3;
  EXPECT_FALSE(validate_schedule(s, origins, *net_.oracle).has_value());
}

TEST_F(ScheduleTest, ExecBeforeGenRejected) {
  const std::vector<ObjectOrigin> origins{origin(0, 3)};
  const std::vector<ScheduledTxn> s{{txn(1, 3, 5, {0}), 4}};
  const auto err = validate_schedule(s, origins, *net_.oracle);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("generation"), std::string::npos);
}

TEST_F(ScheduleTest, UnassignedRejected) {
  const std::vector<ObjectOrigin> origins{origin(0, 3)};
  const std::vector<ScheduledTxn> s{{txn(1, 3, 0, {0}), kNoTime}};
  EXPECT_TRUE(validate_schedule(s, origins, *net_.oracle).has_value());
}

TEST_F(ScheduleTest, MissingOriginRejected) {
  const std::vector<ScheduledTxn> s{{txn(1, 3, 0, {7}), 5}};
  const auto err = validate_schedule(s, {}, *net_.oracle);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("no origin"), std::string::npos);
}

TEST_F(ScheduleTest, MultiObjectTxnChecksEveryChain) {
  const std::vector<ObjectOrigin> origins{origin(0, 0), origin(1, 9)};
  // Txn at node 5 needs object 0 (5 away) and object 1 (4 away).
  std::vector<ScheduledTxn> s{{txn(1, 5, 0, {0, 1}), 5}};
  EXPECT_FALSE(validate_schedule(s, origins, *net_.oracle).has_value());
  s[0].exec = 4;  // object 1 arrives by 4 but object 0 cannot
  EXPECT_TRUE(validate_schedule(s, origins, *net_.oracle).has_value());
}

TEST_F(ScheduleTest, InterleavedChains) {
  // Two objects ping-ponging between three txns; the validator must follow
  // each object independently in execution order.
  const std::vector<ObjectOrigin> origins{origin(0, 0), origin(1, 5)};
  std::vector<ScheduledTxn> s{
      {txn(1, 0, 0, {0}), 0},       // obj0 at 0 immediately
      {txn(2, 5, 0, {0, 1}), 5},    // obj0 travels 5; obj1 local
      {txn(3, 2, 0, {1}), 7},       // obj1 released at 5 needs 3 steps
  };
  EXPECT_TRUE(validate_schedule(s, origins, *net_.oracle).has_value());
  s[2].exec = 8;  // 5 + dist(5,2) = 8
  EXPECT_FALSE(validate_schedule(s, origins, *net_.oracle).has_value());
}

TEST_F(ScheduleTest, MakespanFromStart) {
  const std::vector<ScheduledTxn> s{{txn(1, 0, 0, {0}), 4},
                                    {txn(2, 1, 0, {0}), 9}};
  EXPECT_EQ(makespan(s), 9);
  EXPECT_EQ(makespan(s, 3), 6);
  EXPECT_EQ(makespan({}), 0);
}

}  // namespace
}  // namespace dtm
