// Tests for sim/workload: generators and their closed-loop semantics.
#include <gtest/gtest.h>

#include <set>

#include "sim/workload.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

TEST(SyntheticWorkload, BatchModeOneTxnPerNode) {
  const Network net = make_clique(10);
  SyntheticOptions opts;
  opts.k = 2;
  opts.num_objects = 6;
  opts.seed = 1;
  SyntheticWorkload wl(net, opts);
  const auto objs = wl.objects();
  EXPECT_EQ(objs.size(), 6u);
  const auto arrivals = wl.arrivals_at(0);
  EXPECT_EQ(arrivals.size(), 10u);
  std::set<NodeId> nodes;
  for (const auto& t : arrivals) {
    nodes.insert(t.node);
    EXPECT_EQ(t.accesses.size(), 2u);
    EXPECT_NE(t.accesses[0].obj, t.accesses[1].obj);
    EXPECT_EQ(t.gen_time, 0);
  }
  EXPECT_EQ(nodes.size(), 10u);  // one per node
  EXPECT_TRUE(wl.finished());    // rounds = 1, all issued
  EXPECT_EQ(wl.next_arrival_time(), kNoTime);
}

TEST(SyntheticWorkload, DefaultObjectsOnePerNode) {
  const Network net = make_line(7);
  SyntheticOptions opts;
  opts.k = 1;
  opts.seed = 2;
  SyntheticWorkload wl(net, opts);
  EXPECT_EQ(wl.objects().size(), 7u);
}

TEST(SyntheticWorkload, ClosedLoopRounds) {
  const Network net = make_clique(4);
  SyntheticOptions opts;
  opts.k = 1;
  opts.num_objects = 4;
  opts.rounds = 3;
  opts.seed = 3;
  SyntheticWorkload wl(net, opts);
  auto a0 = wl.arrivals_at(0);
  EXPECT_EQ(a0.size(), 4u);
  EXPECT_FALSE(wl.finished());
  // Commit everything at t=5: next round due at 6.
  for (const auto& t : a0) wl.on_commit(t.id, 5);
  EXPECT_EQ(wl.next_arrival_time(), 6);
  const auto a6 = wl.arrivals_at(6);
  EXPECT_EQ(a6.size(), 4u);
  for (const auto& t : a6) wl.on_commit(t.id, 9);
  const auto a10 = wl.arrivals_at(10);
  EXPECT_EQ(a10.size(), 4u);
  for (const auto& t : a10) wl.on_commit(t.id, 12);
  EXPECT_TRUE(wl.finished());
  EXPECT_EQ(wl.generated().size(), 12u);
}

TEST(SyntheticWorkload, UnknownCommitIgnored) {
  const Network net = make_clique(4);
  SyntheticOptions opts;
  opts.seed = 4;
  SyntheticWorkload wl(net, opts);
  (void)wl.arrivals_at(0);
  wl.on_commit(999, 3);  // not ours: no crash, no new arrivals
  EXPECT_EQ(wl.next_arrival_time(), kNoTime);
}

TEST(SyntheticWorkload, ParticipationSubset) {
  const Network net = make_line(20);
  SyntheticOptions opts;
  opts.node_participation = 0.25;
  opts.seed = 5;
  SyntheticWorkload wl(net, opts);
  const auto arrivals = wl.arrivals_at(0);
  EXPECT_EQ(arrivals.size(), 5u);
}

TEST(SyntheticWorkload, ZipfSkewsObjectChoice) {
  const Network net = make_clique(16);
  SyntheticOptions opts;
  opts.num_objects = 32;
  opts.k = 1;
  opts.rounds = 20;
  opts.zipf_s = 1.5;
  opts.seed = 6;
  SyntheticWorkload wl(net, opts);
  std::vector<int> count(32, 0);
  Time t = 0;
  while (!wl.finished()) {
    for (const auto& tx : wl.arrivals_at(t)) {
      ++count[static_cast<std::size_t>(tx.accesses[0].obj)];
      wl.on_commit(tx.id, t);
    }
    ++t;
  }
  // Hot objects dominate the tail.
  int head = count[0] + count[1] + count[2];
  int tail = count[29] + count[30] + count[31];
  EXPECT_GT(head, 3 * tail);
}

TEST(SyntheticWorkload, GeometricGapsVary) {
  const Network net = make_clique(2);
  SyntheticOptions opts;
  opts.rounds = 30;
  opts.arrival_prob = 0.3;
  opts.num_objects = 2;
  opts.k = 1;
  opts.seed = 7;
  SyntheticWorkload wl(net, opts);
  std::set<Time> gaps;
  Time t = 0;
  Time last_commit = 0;
  while (!wl.finished() && t < 10'000) {
    for (const auto& tx : wl.arrivals_at(t)) {
      if (tx.gen_time > 0) gaps.insert(tx.gen_time - last_commit);
      wl.on_commit(tx.id, t);
      last_commit = t;
    }
    ++t;
  }
  EXPECT_GT(gaps.size(), 1u);  // not all think times identical
}

TEST(SyntheticWorkload, RejectsBadOptions) {
  const Network net = make_clique(4);
  SyntheticOptions opts;
  opts.k = 0;
  EXPECT_THROW((void)SyntheticWorkload(net, opts), CheckError);
  opts.k = 10;
  opts.num_objects = 5;
  EXPECT_THROW((void)SyntheticWorkload(net, opts), CheckError);
  opts.k = 1;
  opts.rounds = 0;
  EXPECT_THROW((void)SyntheticWorkload(net, opts), CheckError);
}

TEST(ScriptedWorkload, SortsAndReplays) {
  ScriptedWorkload wl({origin(0, 0)},
                      {txn(2, 1, 5, {0}), txn(1, 0, 2, {0})});
  EXPECT_EQ(wl.next_arrival_time(), 2);
  EXPECT_TRUE(wl.arrivals_at(0).empty());
  EXPECT_TRUE(wl.arrivals_at(1).empty());
  const auto a2 = wl.arrivals_at(2);
  ASSERT_EQ(a2.size(), 1u);
  EXPECT_EQ(a2[0].id, 1);
  EXPECT_FALSE(wl.finished());
  (void)wl.arrivals_at(3);
  (void)wl.arrivals_at(4);
  const auto a5 = wl.arrivals_at(5);
  ASSERT_EQ(a5.size(), 1u);
  EXPECT_TRUE(wl.finished());
}

TEST(ScriptedWorkload, MissedArrivalFlagged) {
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 0, 2, {0})});
  EXPECT_THROW((void)wl.arrivals_at(3), CheckError);
}

}  // namespace
}  // namespace dtm
