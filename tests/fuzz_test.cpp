// Randomized end-to-end fuzzing: random topology x random workload shape x
// random scheduler configuration, everything validated (engine presence
// checks + post-hoc chain validation + certified-LB sanity). The point is
// robustness over breadth: any invariant violation anywhere throws.
#include <gtest/gtest.h>

#include "core/bucket_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "dist/dist_bucket.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

Network random_topology(Rng& rng) {
  switch (rng.uniform_int(0, 9)) {
    case 0: return make_clique(static_cast<NodeId>(rng.uniform_int(2, 24)));
    case 1: return make_line(static_cast<NodeId>(rng.uniform_int(2, 40)));
    case 2: return make_ring(static_cast<NodeId>(rng.uniform_int(3, 30)));
    case 3:
      return make_grid({static_cast<NodeId>(rng.uniform_int(2, 6)),
                        static_cast<NodeId>(rng.uniform_int(2, 6))});
    case 4: return make_hypercube(static_cast<int>(rng.uniform_int(1, 5)));
    case 5: return make_butterfly(static_cast<int>(rng.uniform_int(1, 3)));
    case 6:
      return make_star(static_cast<NodeId>(rng.uniform_int(1, 6)),
                       static_cast<NodeId>(rng.uniform_int(1, 6)));
    case 7: {
      const auto beta = static_cast<NodeId>(rng.uniform_int(1, 5));
      return make_cluster(static_cast<NodeId>(rng.uniform_int(1, 5)), beta,
                          beta + rng.uniform_int(0, 6));
    }
    case 8:
      return make_tree(static_cast<NodeId>(rng.uniform_int(2, 3)),
                       static_cast<NodeId>(rng.uniform_int(1, 4)));
    default: {
      const auto n = static_cast<NodeId>(rng.uniform_int(2, 30));
      return make_random_connected(n, rng.uniform_int(0, 2 * n), 4, rng);
    }
  }
}

SyntheticOptions random_workload(const Network& net, Rng& rng) {
  SyntheticOptions w;
  w.num_objects = static_cast<std::int32_t>(
      rng.uniform_int(1, std::max<NodeId>(net.num_nodes(), 2)));
  w.k = static_cast<std::int32_t>(
      rng.uniform_int(1, std::min<std::int32_t>(3, w.num_objects)));
  w.rounds = static_cast<std::int32_t>(rng.uniform_int(1, 3));
  w.zipf_s = rng.bernoulli(0.5) ? rng.uniform01() * 1.5 : 0.0;
  w.arrival_prob = rng.bernoulli(0.3) ? 0.2 : 0.0;
  w.node_participation = rng.bernoulli(0.3) ? 0.5 : 1.0;
  w.seed = rng();
  return w;
}

class Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Fuzz, GreedyNeverProducesInvalidState) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1013904223ULL + 1);
  for (int iter = 0; iter < 6; ++iter) {
    const Network net = random_topology(rng);
    SyntheticWorkload wl(net, random_workload(net, rng));
    GreedyOptions g;
    if (rng.bernoulli(0.25)) g.coordination_delay = rng.uniform_int(1, 5);
    if (rng.bernoulli(0.25)) g.congestion_padding = rng.uniform01() * 0.5;
    GreedyScheduler sched(g);
    const RunResult r = testing::run_and_validate(net, wl, sched);
    EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  }
}

TEST_P(Fuzz, BucketNeverProducesInvalidState) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 7);
  for (int iter = 0; iter < 4; ++iter) {
    const Network net = random_topology(rng);
    SyntheticWorkload wl(net, random_workload(net, rng));
    BucketOptions o;
    o.enforce_suffix_property = rng.bernoulli(0.5);
    o.randomized_retries = static_cast<std::int32_t>(rng.uniform_int(1, 3));
    if (rng.bernoulli(0.2))
      o.force_level = static_cast<std::int32_t>(rng.uniform_int(0, 6));
    std::shared_ptr<const BatchScheduler> algo;
    switch (rng.uniform_int(0, 3)) {
      case 0: algo = make_coloring_batch(); break;
      case 1: algo = make_tsp_batch(); break;
      case 2: algo = make_local_search_batch(2); break;
      default: algo = make_sequential_batch(); break;
    }
    BucketScheduler sched(algo, o);
    const RunResult r = testing::run_and_validate(net, wl, sched);
    EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  }
}

TEST_P(Fuzz, DistributedNeverProducesInvalidState) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503ULL + 11);
  for (int iter = 0; iter < 2; ++iter) {
    const Network net = random_topology(rng);
    SyntheticWorkload wl(net, random_workload(net, rng));
    DistBucketOptions o;
    o.cover.seed = rng();
    DistributedBucketScheduler sched(net, make_coloring_batch(), o);
    const RunResult r = testing::run_and_validate(net, wl, sched, 2);
    EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace dtm
