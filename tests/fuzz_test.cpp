// Randomized end-to-end fuzzing: random topology x random workload shape x
// random scheduler configuration, everything validated (engine presence
// checks + post-hoc chain validation + certified-LB sanity). The point is
// robustness over breadth: any invariant violation anywhere throws.
#include <gtest/gtest.h>

#include "core/bucket_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "dist/dist_bucket.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::random_topology;
using testing::random_workload;

class Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Fuzz, GreedyNeverProducesInvalidState) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1013904223ULL + 1);
  for (int iter = 0; iter < 6; ++iter) {
    const Network net = random_topology(rng);
    SyntheticWorkload wl(net, random_workload(net, rng));
    GreedyOptions g;
    if (rng.bernoulli(0.25)) g.coordination_delay = rng.uniform_int(1, 5);
    if (rng.bernoulli(0.25)) g.congestion_padding = rng.uniform01() * 0.5;
    GreedyScheduler sched(g);
    const RunResult r = testing::run_and_validate(net, wl, sched);
    EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  }
}

TEST_P(Fuzz, BucketNeverProducesInvalidState) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 7);
  for (int iter = 0; iter < 4; ++iter) {
    const Network net = random_topology(rng);
    SyntheticWorkload wl(net, random_workload(net, rng));
    BucketOptions o;
    o.enforce_suffix_property = rng.bernoulli(0.5);
    o.randomized_retries = static_cast<std::int32_t>(rng.uniform_int(1, 3));
    if (rng.bernoulli(0.2))
      o.force_level = static_cast<std::int32_t>(rng.uniform_int(0, 6));
    std::shared_ptr<const BatchScheduler> algo;
    switch (rng.uniform_int(0, 3)) {
      case 0: algo = make_coloring_batch(); break;
      case 1: algo = make_tsp_batch(); break;
      case 2: algo = make_local_search_batch(2); break;
      default: algo = make_sequential_batch(); break;
    }
    BucketScheduler sched(algo, o);
    const RunResult r = testing::run_and_validate(net, wl, sched);
    EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  }
}

TEST_P(Fuzz, DistributedNeverProducesInvalidState) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503ULL + 11);
  for (int iter = 0; iter < 2; ++iter) {
    const Network net = random_topology(rng);
    SyntheticWorkload wl(net, random_workload(net, rng));
    DistBucketOptions o;
    o.cover.seed = rng();
    DistributedBucketScheduler sched(net, make_coloring_batch(), o);
    const RunResult r = testing::run_and_validate(net, wl, sched, 2);
    EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace dtm
