// Tests for net/graph: construction, Dijkstra, APSP oracle.
#include <gtest/gtest.h>

#include "net/graph.hpp"
#include "util/check.hpp"

namespace dtm {
namespace {

Graph weighted_path() {
  // 0 -2- 1 -3- 2 -1- 3, plus shortcut 0 -5- 3.
  Graph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 3, 5);
  return g;
}

TEST(Graph, BasicShape) {
  const Graph g = weighted_path();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(3);
  EXPECT_THROW((void)g.add_edge(0, 0, 1), CheckError);   // self loop
  EXPECT_THROW((void)g.add_edge(0, 1, 0), CheckError);   // non-positive weight
  EXPECT_THROW((void)g.add_edge(0, 3, 1), CheckError);   // out of range
  EXPECT_THROW((void)g.add_edge(-1, 1, 1), CheckError);  // negative node
}

TEST(Graph, RejectsEmpty) { EXPECT_THROW((void)Graph(0), CheckError); }

TEST(Graph, SsspWeighted) {
  const Graph g = weighted_path();
  const auto d = g.sssp(0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 2);
  EXPECT_EQ(d[2], 5);
  EXPECT_EQ(d[3], 5);  // shortcut ties the path 0-1-2-3 = 6, direct = 5
}

TEST(Graph, SsspWithinTruncates) {
  const Graph g = weighted_path();
  const auto d = g.sssp_within(0, 2);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 2);
  EXPECT_EQ(d[2], kInfWeight);
  EXPECT_EQ(d[3], kInfWeight);
}

TEST(Graph, SsspWithinZeroRadius) {
  const Graph g = weighted_path();
  const auto d = g.sssp_within(2, 0);
  EXPECT_EQ(d[2], 0);
  EXPECT_EQ(d[0], kInfWeight);
  EXPECT_EQ(d[1], kInfWeight);
  EXPECT_EQ(d[3], kInfWeight);
}

TEST(Graph, ConnectedDetection) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  EXPECT_FALSE(g.connected());
  g.add_edge(1, 2, 1);
  EXPECT_TRUE(g.connected());
}

TEST(ApspOracle, MatchesSssp) {
  const Graph g = weighted_path();
  const ApspOracle oracle(g);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const auto d = g.sssp(s);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      EXPECT_EQ(oracle.dist(s, t), d[static_cast<std::size_t>(t)]);
      EXPECT_EQ(oracle.dist(s, t), oracle.dist(t, s)) << "symmetry";
    }
  }
  EXPECT_EQ(oracle.diameter(), 5);
  EXPECT_EQ(oracle.num_nodes(), 4);
}

TEST(ApspOracle, RejectsDisconnected) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(ApspOracle oracle(g), CheckError);
}

TEST(ApspOracle, TriangleInequalityHolds) {
  Graph g(5);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 7);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 0, 3);
  g.add_edge(1, 3, 2);
  const ApspOracle o(g);
  for (NodeId a = 0; a < 5; ++a)
    for (NodeId b = 0; b < 5; ++b)
      for (NodeId c = 0; c < 5; ++c)
        EXPECT_LE(o.dist(a, c), o.dist(a, b) + o.dist(b, c));
}

}  // namespace
}  // namespace dtm
