// Tests for sim/adversarial: the crafted worst-case arrival generators,
// plus the separations they are designed to produce.
#include <gtest/gtest.h>

#include "core/bucket_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "sim/adversarial.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

TEST(Adversarial, FarThenNearShape) {
  const Network net = make_line(16);
  AdversaryOptions o;
  o.kind = AdversaryKind::kFarThenNear;
  o.waves = 3;
  o.burst = 4;
  const auto [origins, txns] = make_adversarial_instance(net, o);
  ASSERT_EQ(origins.size(), 1u);
  ASSERT_EQ(txns.size(), 3u * (1 + 4));
  // Each wave: first the far transaction (node 15), then four near node 0.
  for (int w = 0; w < 3; ++w) {
    const auto& far = txns[static_cast<std::size_t>(w * 5)];
    EXPECT_EQ(far.node, 15);
    for (int b = 1; b <= 4; ++b) {
      const auto& near = txns[static_cast<std::size_t>(w * 5 + b)];
      EXPECT_LE(net.dist(0, near.node), 4);
      EXPECT_EQ(near.gen_time, far.gen_time + 1);
    }
  }
}

TEST(Adversarial, ConvoyShape) {
  const Network net = make_clique(8);
  AdversaryOptions o;
  o.kind = AdversaryKind::kConvoy;
  o.waves = 2;
  const auto [origins, txns] = make_adversarial_instance(net, o);
  EXPECT_EQ(txns.size(), 16u);
  for (const auto& t : txns) {
    ASSERT_EQ(t.accesses.size(), 1u);
    EXPECT_EQ(t.accesses[0].obj, 0);
  }
}

TEST(Adversarial, MovingHotspotDeterministicForSeed) {
  const Network net = make_grid({4, 4});
  AdversaryOptions o;
  o.kind = AdversaryKind::kMovingHotspot;
  o.seed = 5;
  const auto a = make_adversarial_instance(net, o);
  const auto b = make_adversarial_instance(net, o);
  ASSERT_EQ(a.second.size(), b.second.size());
  for (std::size_t i = 0; i < a.second.size(); ++i)
    EXPECT_EQ(a.second[i].node, b.second[i].node);
}

TEST(Adversarial, ToStringNames) {
  EXPECT_EQ(to_string(AdversaryKind::kFarThenNear), "far-then-near");
  EXPECT_EQ(to_string(AdversaryKind::kMovingHotspot), "moving-hotspot");
  EXPECT_EQ(to_string(AdversaryKind::kConvoy), "convoy");
}

class AdversarySweep : public ::testing::TestWithParam<int> {};

TEST_P(AdversarySweep, AllSchedulersSurviveAllAdversaries) {
  const auto kind = static_cast<AdversaryKind>(GetParam() % 3);
  const bool use_bucket = GetParam() >= 3;
  const Network net = make_line(24);
  AdversaryOptions o;
  o.kind = kind;
  o.waves = 3;
  o.burst = 6;
  o.seed = 11;
  ScriptedWorkload wl = make_adversarial_workload(net, o);
  std::unique_ptr<OnlineScheduler> sched;
  if (use_bucket) {
    sched = std::make_unique<BucketScheduler>(
        std::shared_ptr<const BatchScheduler>(make_line_batch()));
  } else {
    sched = std::make_unique<GreedyScheduler>();
  }
  const RunResult r = testing::run_and_validate(net, wl, *sched);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  EXPECT_GE(r.ratio, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(KindsTimesSchedulers, AdversarySweep,
                         ::testing::Range(0, 6));

TEST(Adversarial, FarThenNearPunishesIrrevocability) {
  // On the line, the far-then-near pattern inflates greedy's per-wave
  // latency: the near burst arrives one step after the far transaction has
  // pinned the object's round trip. The measured mean latency of near
  // transactions must exceed their distance-to-object by a full traversal.
  const Network net = make_line(32);
  AdversaryOptions o;
  o.waves = 2;
  o.burst = 4;
  o.wave_gap = 200;  // isolate waves
  ScriptedWorkload wl = make_adversarial_workload(net, o);
  GreedyScheduler sched;
  const RunResult r = testing::run_and_validate(net, wl, sched);
  // Near transactions sit a hop or two from the object, yet their latency
  // is dominated by the 31-hop round trip the far transaction forced.
  EXPECT_GE(r.latency.max(), 31.0);
}

}  // namespace
}  // namespace dtm
