// Tests for sim/runner: end-to-end orchestration, fast-forwarding, metrics.
#include <gtest/gtest.h>

#include "core/greedy_scheduler.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

TEST(Runner, MetricsPopulated) {
  const Network net = make_line(10);
  ScriptedWorkload wl({origin(0, 0)},
                      {txn(1, 4, 0, {0}), txn(2, 8, 0, {0})});
  GreedyScheduler sched;
  const RunResult r = run_experiment(net, wl, sched);
  EXPECT_EQ(r.scheduler, "greedy");
  EXPECT_EQ(r.network, "line(n=10)");
  EXPECT_EQ(r.num_txns, 2);
  EXPECT_EQ(r.latency.count(), 2);
  EXPECT_GT(r.makespan, 0);
  EXPECT_GE(r.ratio, 1.0 - 1e-9);
}

TEST(Runner, FastForwardHandlesSparseArrivals) {
  // Arrivals 10^6 steps apart: the run must finish quickly via skipping
  // (the step cap would trip long before 2e6 iterations otherwise).
  const Network net = make_line(10);
  ScriptedWorkload wl({origin(0, 0)},
                      {txn(1, 3, 0, {0}), txn(2, 5, 1'000'000, {0})});
  GreedyScheduler sched;
  RunOptions opts;
  opts.max_steps = 10'000;  // far below the wall-clock span
  const RunResult r = run_experiment(net, wl, sched, opts);
  EXPECT_EQ(r.num_txns, 2);
  EXPECT_GE(r.makespan, 1'000'000);
}

TEST(Runner, StepCapTripsOnRunawayRuns) {
  // A scheduler that never assigns anything deadlocks; the runner must
  // refuse to spin forever.
  class NullScheduler final : public OnlineScheduler {
   public:
    std::vector<Assignment> on_step(const SystemView&,
                                    std::span<const Transaction>) override {
      return {};
    }
    std::string name() const override { return "null"; }
  };
  const Network net = make_line(4);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 2, 0, {0})});
  NullScheduler sched;
  EXPECT_THROW(run_experiment(net, wl, sched), CheckError);
}

TEST(Runner, ValidationCatchesCheatingScheduler) {
  // A scheduler that ignores travel times produces commits the engine
  // cannot satisfy: the object-presence check fires.
  class CheatScheduler final : public OnlineScheduler {
   public:
    std::vector<Assignment> on_step(
        const SystemView& view,
        std::span<const Transaction> arrivals) override {
      std::vector<Assignment> out;
      for (const auto& t : arrivals) out.push_back({t.id, view.now()});
      return out;
    }
    std::string name() const override { return "cheat"; }
  };
  const Network net = make_line(10);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 9, 0, {0})});
  CheatScheduler sched;
  EXPECT_THROW(run_experiment(net, wl, sched), CheckError);
}

TEST(Runner, LatencyStatsMatchSchedule) {
  const Network net = make_clique(4);
  ScriptedWorkload wl({origin(0, 0)},
                      {txn(1, 1, 0, {0}), txn(2, 2, 0, {0})});
  GreedyScheduler sched;
  const RunResult r = run_experiment(net, wl, sched);
  // txn1 commits at 1 (travel 1), txn2 at 2 (chain): latencies 1 and 2.
  EXPECT_DOUBLE_EQ(r.latency.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.latency.max(), 2.0);
}

}  // namespace
}  // namespace dtm
