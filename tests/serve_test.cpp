// Serve-layer tests: the log-bucketed latency histogram against exact
// sorted quantiles, admission-control semantics and determinism, the
// DtmServer drain-to-quiescence zero-loss invariant, bounded committed-log
// memory, live fault toggling, and the "serve:" spec round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "net/topology.hpp"
#include "serve/admission.hpp"
#include "serve/latency.hpp"
#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "serve/source.hpp"
#include "sim/registry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dtm {
namespace {

// ---------------------------------------------------------------------------
// LatencyRecorder

std::int64_t exact_quantile(std::vector<std::int64_t> v, double q) {
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n - 1e-9));
  rank = std::max<std::size_t>(rank, 1);
  return v[std::min(rank, v.size()) - 1];
}

TEST(LatencyRecorder, SmallValuesAreExact) {
  LatencyRecorder r;
  std::vector<std::int64_t> samples;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(0, 60);  // below 2^(sub_bits+1) = 64
    samples.push_back(v);
    r.record(v);
  }
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0})
    EXPECT_EQ(r.quantile(q), exact_quantile(samples, q)) << "q=" << q;
  EXPECT_EQ(r.count(), 5000);
  EXPECT_EQ(r.min(), *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(r.max(), *std::max_element(samples.begin(), samples.end()));
}

TEST(LatencyRecorder, LargeValuesWithinRelativeError) {
  LatencyRecorder r;  // sub_bits = 5 -> relative error <= 1/32
  std::vector<std::int64_t> samples;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform across 5 decades, the shape latency tails actually have.
    const double e = rng.uniform01() * 5.0;
    const auto v = static_cast<std::int64_t>(std::pow(10.0, e));
    samples.push_back(v);
    r.record(v);
  }
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = static_cast<double>(exact_quantile(samples, q));
    const double est = static_cast<double>(r.quantile(q));
    EXPECT_LE(std::abs(est - exact), exact / 32.0 + 1.0)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(LatencyRecorder, MergeMatchesCombinedStream) {
  LatencyRecorder a, b, all;
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    const auto v = rng.uniform_int(0, 100000);
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (const double q : {0.5, 0.95, 0.999})
    EXPECT_EQ(a.quantile(q), all.quantile(q));
}

TEST(LatencyRecorder, ResetClears) {
  LatencyRecorder r;
  r.record(5);
  r.record(1000);
  r.reset();
  EXPECT_EQ(r.count(), 0);
  EXPECT_EQ(r.quantile(0.5), 0);
  EXPECT_EQ(r.max(), 0);
}

// ---------------------------------------------------------------------------
// AdmissionController

Transaction dummy_txn(TxnId id) {
  Transaction t;
  t.id = id;
  t.node = 0;
  t.gen_time = 0;
  t.accesses = write_set({0});
  return t;
}

TEST(Admission, TokenBucketLimitsSustainedRate) {
  AdmissionOptions o;
  o.rate = 0.5;  // one admit every 2 steps, sustained
  o.burst = 2.0;
  o.max_inflight = 0;
  AdmissionController ac(o);
  std::int64_t admitted = 0;
  for (Time now = 0; now < 100; ++now) {
    ac.refill(now);
    for (int i = 0; i < 3; ++i)
      if (ac.offer(dummy_txn(now * 3 + i), now, 0) ==
          AdmissionController::Outcome::kAdmit)
        ++admitted;
  }
  // 2 burst tokens + 0.5/step * 99 steps, within rounding.
  EXPECT_GE(admitted, 50);
  EXPECT_LE(admitted, 52);
  EXPECT_EQ(ac.stats().shed_tokens, ac.stats().shed);
}

TEST(Admission, InflightCapShedsAndQueuePolicyParks) {
  AdmissionOptions o;
  o.max_inflight = 4;
  AdmissionController shed(o);
  for (int i = 0; i < 6; ++i) {
    const auto out = shed.offer(dummy_txn(i), 0, /*inflight=*/i);
    EXPECT_EQ(out, i < 4 ? AdmissionController::Outcome::kAdmit
                         : AdmissionController::Outcome::kShed);
  }
  EXPECT_EQ(shed.stats().shed_inflight, 2);

  o.policy = AdmissionOptions::Policy::kQueue;
  o.queue_cap = 1;
  AdmissionController queue(o);
  EXPECT_EQ(queue.offer(dummy_txn(0), 0, 4),
            AdmissionController::Outcome::kQueued);
  EXPECT_EQ(queue.offer(dummy_txn(1), 0, 4),
            AdmissionController::Outcome::kShed);  // bounded queue overflow
  EXPECT_EQ(queue.stats().shed_queue_full, 1);

  std::vector<AdmissionController::Release> rel;
  queue.release(5, /*inflight=*/0, rel);
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel[0].txn.id, 0);
  EXPECT_EQ(rel[0].offered, 0);
  EXPECT_EQ(queue.stats().max_queue_wait, 5);
  EXPECT_TRUE(queue.queue_empty());
}

TEST(Admission, NextTokenTimePredictsAdmission) {
  AdmissionOptions o;
  o.rate = 0.25;
  o.burst = 1.0;
  AdmissionController ac(o);
  ac.refill(0);
  ASSERT_EQ(ac.offer(dummy_txn(0), 0, 0), AdmissionController::Outcome::kAdmit);
  const Time t = ac.next_token_time(0);
  ASSERT_NE(t, kNoTime);
  EXPECT_EQ(t, 4);  // 1 token / 0.25 per step
  ac.refill(t);
  EXPECT_EQ(ac.offer(dummy_txn(1), t, 0), AdmissionController::Outcome::kAdmit);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, SnapshotSequencesAndDuplicateNames) {
  MetricsRegistry m;
  m.add("a", [] { return Json(1); });
  EXPECT_TRUE(m.has("a"));
  EXPECT_THROW(m.add("a", [] { return Json(2); }), CheckError);
  const Json s0 = m.snapshot();
  const Json s1 = m.snapshot();
  EXPECT_EQ(s0.at("seq").as_int(), 0);
  EXPECT_EQ(s1.at("seq").as_int(), 1);
  EXPECT_EQ(s1.at("a").as_int(), 1);
}

// ---------------------------------------------------------------------------
// Sources

TEST(SyntheticSource, DeterministicPacingMatchesRate) {
  const Network net = make_line(6);
  SyntheticSourceOptions o;
  o.rate = 0.75;
  SyntheticSource s(net, o);
  std::int64_t total = 0;
  Time t = s.next_offer_time();
  while (t < 1000) {
    total += static_cast<std::int64_t>(s.offers_at(t).size());
    t = s.next_offer_time();
  }
  // The fractional accumulator is exact: floor(1000 * 0.75) +- 1.
  EXPECT_NEAR(static_cast<double>(total), 750.0, 1.0);
}

TEST(TraceSource, LoopsShiftedByPeriod) {
  std::vector<ObjectOrigin> origins = {{0, 0, 0}};
  Transaction a = dummy_txn(0);
  a.gen_time = 1;
  Transaction b = dummy_txn(1);
  b.gen_time = 3;
  TraceSource s(origins, {a, b}, /*loop_period=*/10);
  EXPECT_EQ(s.next_offer_time(), 1);
  EXPECT_EQ(s.offers_at(1).size(), 1u);
  EXPECT_EQ(s.next_offer_time(), 3);
  EXPECT_EQ(s.offers_at(3).size(), 1u);
  EXPECT_EQ(s.next_offer_time(), 11);  // second cycle, shifted by the period
  const auto second = s.offers_at(11);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].gen_time, 11);
  EXPECT_EQ(second[0].id, 2);  // fresh ids every cycle
}

// ---------------------------------------------------------------------------
// DtmServer end-to-end

RunSpec serve_spec(const std::string& topology, const std::string& scheduler,
                   const std::string& serve, const std::string& fault = "") {
  RunSpec spec;
  spec.topology = parse_spec(topology);
  spec.scheduler = parse_spec(scheduler);
  spec.serve = parse_spec(serve);
  if (!fault.empty()) spec.fault = parse_spec(fault);
  spec.seed = 12345;
  return spec;
}

TEST(Serve, DrainToQuiescenceLosesNothing) {
  const RunSpec spec = serve_spec(
      "line:n=8", "greedy",
      "serve:rate=3,duration=512,window=128,admit-rate=4,max-inflight=64");
  const Network net = Registry::make_network(spec.topology);
  auto server = make_server(net, spec);
  const ServeReport r = server->run();
  EXPECT_TRUE(server->finished());
  EXPECT_GT(r.offered, 0);
  EXPECT_GT(r.commits, 0);
  // The zero-loss invariant (also DTM_CHECKed inside the server).
  EXPECT_EQ(r.admitted, r.commits);
  EXPECT_EQ(r.offered, r.admitted + r.shed);
  EXPECT_GE(r.end_time, 512);
  EXPECT_EQ(r.windows,
            static_cast<std::int64_t>(server->windows().size()));
  // Window totals reconcile with the run totals.
  std::int64_t window_commits = 0, window_offered = 0;
  for (const auto& w : server->windows()) {
    window_commits += w.commits;
    window_offered += w.offered;
  }
  EXPECT_EQ(window_commits, r.commits);
  EXPECT_EQ(window_offered, r.offered);
}

TEST(Serve, DeterministicCommitHashAcrossRuns) {
  const RunSpec spec = serve_spec(
      "cluster:alpha=2,beta=3,gamma=4", "bucket",
      "serve:rate=2,duration=384,window=96,admit-rate=3,policy=queue,"
      "queue-cap=32");
  const Network net = Registry::make_network(spec.topology);
  const ServeReport a = make_server(net, spec)->run();
  const ServeReport b = make_server(net, spec)->run();
  EXPECT_EQ(a.commit_hash, b.commit_hash);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.latency.quantile(0.99), b.latency.quantile(0.99));
}

TEST(Serve, CommittedLogStaysBounded) {
  const RunSpec spec = serve_spec(
      "line:n=6", "greedy",
      "serve:rate=4,duration=2048,window=64,max-inflight=32");
  const Network net = Registry::make_network(spec.topology);
  auto server = make_server(net, spec);
  const ServeReport r = server->run();
  // Everything the engine committed was drained out on the window cadence,
  // and the in-memory log never held more than a couple of windows' worth
  // — the bounded-RSS property, asserted structurally.
  EXPECT_EQ(r.drained, r.commits);
  EXPECT_GT(r.commits, 1000);
  EXPECT_LT(r.peak_committed_log, r.commits / 4);
  // A server with draining disabled holds the whole log at peak instead.
  RunSpec keep = spec;
  keep.serve.params["drain-every"] = "-1";
  const ServeReport rk = make_server(net, keep)->run();
  EXPECT_EQ(rk.drained, 0);
  EXPECT_EQ(rk.peak_committed_log, rk.commits);
  EXPECT_EQ(rk.commit_hash, r.commit_hash);  // draining never changes the run
}

TEST(Serve, PumpHonorsHorizonAndResumes) {
  const RunSpec spec = serve_spec(
      "line:n=6", "greedy", "serve:rate=2,duration=600,window=100");
  const Network net = Registry::make_network(spec.topology);
  auto server = make_server(net, spec);
  EXPECT_TRUE(server->pump(250));
  EXPECT_LE(server->now(), 251);
  EXPECT_GT(server->commits(), 0);
  EXPECT_FALSE(server->finished());
  EXPECT_FALSE(server->pump(kNoTime));  // run the rest
  EXPECT_TRUE(server->finished());
  const ServeReport r = server->report();
  EXPECT_EQ(r.admitted, r.commits);
}

TEST(Serve, RequestDrainStopsAdmissionEarly) {
  const RunSpec spec = serve_spec(
      "line:n=6", "greedy", "serve:rate=2,duration=0,window=64");
  const Network net = Registry::make_network(spec.topology);
  auto server = make_server(net, spec);
  EXPECT_TRUE(server->pump(200));
  server->request_drain();
  EXPECT_FALSE(server->pump(kNoTime));
  const ServeReport r = server->report();
  EXPECT_EQ(r.admitted, r.commits);
  EXPECT_LE(r.end_time, 200 + 2000);  // drained promptly, no new admissions
}

TEST(Serve, LiveFaultToggleKeepsEveryAdmittedTxn) {
  // Start with chaos armed, crank intensity mid-run, then calm it down:
  // every admitted transaction must still commit by quiescence.
  const RunSpec spec = serve_spec(
      "cluster:alpha=2,beta=3,gamma=4", "dist-bucket",
      "serve:rate=2,duration=768,window=128,max-inflight=48",
      "fault:drop=0.05,jitter=2");
  const Network net = Registry::make_network(spec.topology);
  auto server = make_server(net, spec);
  EXPECT_TRUE(server->pump(256));
  FaultPlan storm;
  storm.drop = 0.3;
  storm.jitter = 6;
  storm.stall = 0.2;
  server->set_fault(storm);
  EXPECT_TRUE(server->pump(512));
  FaultPlan calm;
  calm.drop = 1e-9;  // message-faults stay "armed" but effectively zero
  server->set_fault(calm);
  EXPECT_FALSE(server->pump(kNoTime));
  const ServeReport r = server->report();
  EXPECT_EQ(r.fault_toggles, 2);
  EXPECT_GT(r.commits, 0);
  EXPECT_EQ(r.admitted, r.commits);  // zero lost admitted transactions
}

TEST(Serve, FaultToggleRequiresArmedScheduler) {
  const RunSpec spec = serve_spec(
      "cluster:alpha=2,beta=3,gamma=4", "dist-bucket",
      "serve:rate=2,duration=256,window=64");  // fault: none -> plain bus
  const Network net = Registry::make_network(spec.topology);
  auto server = make_server(net, spec);
  FaultPlan storm;
  storm.drop = 0.2;
  EXPECT_THROW(server->set_fault(storm), CheckError);
  FaultPlan stall_only;
  stall_only.stall = 0.1;  // transport-level: fine without an armed bus
  server->set_fault(stall_only);
  EXPECT_FALSE(server->pump(kNoTime));
  EXPECT_EQ(server->report().fault_toggles, 1);
}

TEST(Serve, SloViolationsCounted) {
  // slo-p99=1 is unmeetable on any network with distance, so every window
  // with commits must violate.
  const RunSpec spec = serve_spec(
      "line:n=8", "greedy",
      "serve:rate=2,duration=256,window=64,slo-p99=1");
  const Network net = Registry::make_network(spec.topology);
  auto server = make_server(net, spec);
  const ServeReport r = server->run();
  std::int64_t windows_with_commits = 0;
  for (const auto& w : server->windows())
    if (w.commits > 0) ++windows_with_commits;
  EXPECT_EQ(r.slo_violations, windows_with_commits);
  EXPECT_GT(r.slo_violations, 0);
}

// ---------------------------------------------------------------------------
// Spec plumbing

TEST(ServeSpec, CompactAndJsonRoundTrip) {
  const Spec s = parse_spec(
      "serve:rate=6,duration=4096,admit-rate=8,policy=queue,queue-cap=64,"
      "zipf=0.9,burst-every=512,burst-len=64,burst-mult=3,slo-p99=200");
  const ServeConfig c = Registry::make_serve_config(s, 99);
  EXPECT_DOUBLE_EQ(c.rate, 6.0);
  EXPECT_EQ(c.duration, 4096);
  EXPECT_DOUBLE_EQ(c.admission.rate, 8.0);
  EXPECT_EQ(c.admission.policy, AdmissionOptions::Policy::kQueue);
  EXPECT_EQ(c.admission.queue_cap, 64);
  EXPECT_DOUBLE_EQ(c.zipf, 0.9);
  EXPECT_EQ(c.burst_every, 512);
  EXPECT_EQ(c.slo_p99, 200);
  EXPECT_EQ(c.seed, 99u);  // RunSpec seed flows through as the default

  RunSpec spec;
  spec.serve = s;
  const RunSpec back = RunSpec::from_json(spec.to_json());
  EXPECT_EQ(back, spec);
  EXPECT_TRUE(spec.to_json().has("serve"));  // --dump-spec shows the kind
}

TEST(ServeSpec, UnknownKnobsAndBadValuesHardError) {
  EXPECT_THROW(Registry::make_serve_config(parse_spec("serve:ratee=4")),
               CheckError);
  EXPECT_THROW(Registry::make_serve_config(parse_spec("serve:policy=drop")),
               CheckError);
  EXPECT_THROW(Registry::make_serve_config(parse_spec("serve:rate=0")),
               CheckError);
  EXPECT_THROW(Registry::make_serve_config(parse_spec("serve:window=0")),
               CheckError);
  EXPECT_THROW(Registry::make_serve_config(parse_spec("bogus:rate=1")),
               CheckError);
  EXPECT_THROW(
      Registry::make_serve_config(parse_spec("serve:source=trace")),
      CheckError);  // trace source needs trace=PATH
}

// ---------------------------------------------------------------------------
// TraceSource looping-replay edge cases

TEST(TraceSource, EmptyTraceIsRejected) {
  EXPECT_THROW((void)TraceSource({{0, 0, 0}}, {}, 0), CheckError);
}

TEST(TraceSource, SingleTxnLoopsAtThePeriod) {
  Transaction t;
  t.id = 99;
  t.node = 0;
  t.gen_time = 3;
  t.accesses = write_set({0});
  TraceSource src({{0, 0, 0}}, {t}, /*loop_period=*/5);
  // Offers land at 3, 8, 13, ... — the recorded gen_time shifted by one
  // period per cycle — with fresh monotone ids each cycle.
  for (int cycle = 0; cycle < 4; ++cycle) {
    const Time due = 3 + 5 * cycle;
    EXPECT_EQ(src.next_offer_time(), due);
    const auto offers = src.offers_at(due);
    ASSERT_EQ(offers.size(), 1u);
    EXPECT_EQ(offers[0].gen_time, due);
    EXPECT_EQ(offers[0].id, cycle);
  }
}

TEST(TraceSource, WrapAroundPacingPreservesGaps) {
  std::vector<Transaction> txns;
  for (const Time g : {1, 4, 6}) {
    Transaction t;
    t.id = g;
    t.node = 0;
    t.gen_time = g;
    t.accesses = write_set({0});
    txns.push_back(std::move(t));
  }
  TraceSource src({{0, 0, 0}}, txns, /*loop_period=*/8);
  // Two full cycles: 1, 4, 6, then (shifted by 8) 9, 12, 14. The gap
  // across the wrap (6 -> 9) is period - last + first, not a restart at 0.
  std::vector<Time> seen;
  for (int i = 0; i < 6; ++i) {
    const Time due = src.next_offer_time();
    const auto offers = src.offers_at(due);
    ASSERT_EQ(offers.size(), 1u);
    seen.push_back(due);
  }
  EXPECT_EQ(seen, (std::vector<Time>{1, 4, 6, 9, 12, 14}));
}

TEST(TraceSource, NonLoopingTraceExhausts) {
  Transaction t;
  t.id = 0;
  t.node = 0;
  t.gen_time = 2;
  t.accesses = write_set({0});
  TraceSource src({{0, 0, 0}}, {t}, /*loop_period=*/0);
  EXPECT_EQ(src.next_offer_time(), 2);
  EXPECT_EQ(src.offers_at(2).size(), 1u);
  EXPECT_EQ(src.next_offer_time(), kNoTime);
}

TEST(TraceSource, LoopPeriodMustClearLastArrival) {
  Transaction t;
  t.id = 0;
  t.node = 0;
  t.gen_time = 7;
  t.accesses = write_set({0});
  // A period <= the last recorded arrival would replay time backwards.
  EXPECT_THROW((void)TraceSource({{0, 0, 0}}, {t}, /*loop_period=*/7),
               CheckError);
}

// ---------------------------------------------------------------------------
// LatencyRecorder window rollover

TEST(LatencyRecorder, ResetClearsEverything) {
  LatencyRecorder r;
  for (std::int64_t v : {3, 900, 12, 45000}) r.record(v);
  ASSERT_EQ(r.count(), 4);
  r.reset();
  EXPECT_EQ(r.count(), 0);
  EXPECT_EQ(r.min(), 0);
  EXPECT_EQ(r.max(), 0);
  EXPECT_EQ(r.mean(), 0.0);
  EXPECT_EQ(r.quantile(0.99), 0);
  // A reset recorder records like a fresh one (window rollover reuses the
  // same object every window).
  r.record(8);
  EXPECT_EQ(r.count(), 1);
  EXPECT_EQ(r.quantile(0.5), 8);
}

TEST(LatencyRecorder, WindowRolloverMergesIntoCumulative) {
  // The serve pattern: per-window recorder merged into the cumulative one,
  // then reset. Cumulative must equal one recorder fed every sample.
  LatencyRecorder window, cumulative, reference;
  Rng rng(21);
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 200; ++i) {
      const auto v = rng.uniform_int(0, 10000);
      window.record(v);
      reference.record(v);
    }
    cumulative.merge(window);
    window.reset();
  }
  EXPECT_EQ(window.count(), 0);
  EXPECT_EQ(cumulative.count(), reference.count());
  EXPECT_EQ(cumulative.min(), reference.min());
  EXPECT_EQ(cumulative.max(), reference.max());
  for (const double q : {0.5, 0.95, 0.99, 0.999})
    EXPECT_EQ(cumulative.quantile(q), reference.quantile(q));
}

}  // namespace
}  // namespace dtm
