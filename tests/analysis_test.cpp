// Tests for sim/analysis and the exhaustive calibration scheduler.
#include <gtest/gtest.h>

#include "batch/batch_scheduler.hpp"
#include "sim/analysis.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::txn;

TEST(Analysis, EmptyRun) {
  const Network net = make_line(4);
  const RunReport r = analyze_run({}, {}, *net.oracle);
  EXPECT_EQ(r.txns, 0);
  EXPECT_EQ(r.makespan, 0);
}

TEST(Analysis, CountsTravelAndContention) {
  const Network net = make_line(10);
  const std::vector<ObjectOrigin> origins{origin(0, 0), origin(1, 9)};
  const std::vector<ScheduledTxn> s{
      {txn(1, 3, 0, {0}), 3},        // obj0 travels 3
      {txn(2, 7, 0, {0, 1}), 8},     // obj0 +4, obj1 +2
      {txn(3, 7, 0, {1}), 9},        // obj1 +0 (same node)
  };
  const RunReport r = analyze_run(s, origins, *net.oracle);
  EXPECT_EQ(r.txns, 3);
  EXPECT_EQ(r.makespan, 9);
  EXPECT_EQ(r.total_object_distance, (3 + 4) + 2);
  EXPECT_EQ(r.max_object_distance, 7);
  EXPECT_EQ(r.lmax, 2);
  EXPECT_DOUBLE_EQ(r.mean_users_per_object, 2.0);
  EXPECT_EQ(r.active_nodes, 2);  // nodes 3 and 7
  EXPECT_EQ(r.max_node_commits, 2);
  EXPECT_EQ(r.max_commits_per_step, 1);
}

TEST(Analysis, ConcurrencyCounting) {
  const Network net = make_clique(6);
  const std::vector<ObjectOrigin> origins{origin(0, 0), origin(1, 1),
                                          origin(2, 2)};
  const std::vector<ScheduledTxn> s{
      {txn(1, 0, 0, {0}), 1},
      {txn(2, 1, 0, {1}), 1},
      {txn(3, 2, 0, {2}), 1},
      {txn(4, 3, 0, {0}), 4},
  };
  const RunReport r = analyze_run(s, origins, *net.oracle);
  EXPECT_EQ(r.max_commits_per_step, 3);
  EXPECT_DOUBLE_EQ(r.mean_commits_per_busy_step, 2.0);  // 4 commits / 2 steps
  const std::string text = to_string(r);
  EXPECT_NE(text.find("makespan: 4"), std::string::npos);
  EXPECT_NE(text.find("peak 3"), std::string::npos);
}

TEST(Exhaustive, RefusesLargeProblems) {
  const Network net = make_line(6);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.objects = {{0, 0, 0, false}};
  for (TxnId i = 0; i < 5; ++i) p.txns.push_back({i, 1, {0}});
  Rng rng(1);
  EXPECT_THROW((void)make_exhaustive_batch(4)->schedule(p, rng), CheckError);
  EXPECT_THROW((void)make_exhaustive_batch(0), CheckError);
  EXPECT_THROW((void)make_exhaustive_batch(11), CheckError);
}

TEST(Exhaustive, FindsTheObviousBestOrder) {
  // Line sweep instance: best chain order is sorted by position.
  const Network net = make_line(16);
  BatchProblem p;
  p.oracle = net.oracle.get();
  p.objects = {{0, 0, 0, false}};
  p.txns = {{1, 12, {0}}, {2, 3, {0}}, {3, 8, {0}}, {4, 1, {0}}};
  Rng rng(1);
  const BatchResult best = make_exhaustive_batch()->schedule(p, rng);
  EXPECT_EQ(best.makespan, 12);  // single left-to-right pass
}

// Calibration property: no heuristic beats the exhaustive chain optimum,
// and the good ones land close to it on tiny instances.
class ExhaustiveCalibration : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveCalibration, HeuristicsNeverBeatBestChain) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 13);
  const Network net = make_grid({4, 4});
  BatchProblem p;
  p.oracle = net.oracle.get();
  for (ObjId o = 0; o < 4; ++o)
    p.objects.push_back(
        {o, static_cast<NodeId>(rng.uniform_int(0, 15)), 0, false});
  for (TxnId i = 0; i < 7; ++i) {
    const auto objs = rng.sample_distinct(4, 2);
    p.txns.push_back({i, static_cast<NodeId>(rng.uniform_int(0, 15)),
                      {objs[0], objs[1]}});
  }
  Rng r1(1);
  const Time best = make_exhaustive_batch()->schedule(p, r1).makespan;
  for (const auto& make : {make_coloring_batch, make_tsp_batch,
                           make_sequential_batch}) {
    Rng r2(2);
    EXPECT_GE(make()->schedule(p, r2).makespan, best);
  }
  Rng r3(3);
  const Time ls = make_local_search_batch(6)->schedule(p, r3).makespan;
  EXPECT_GE(ls, best);
  EXPECT_LE(ls, best * 2);  // local search lands in the right ballpark
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveCalibration, ::testing::Range(0, 6));

}  // namespace
}  // namespace dtm
