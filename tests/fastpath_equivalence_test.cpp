// The fast-path contract: the event-calendar engine (exec-time priority
// queue + object-arrival queue + per-object scheduled-user heaps) must be
// observationally IDENTICAL to the original full-scan engine — same commit
// sequence (ids, nodes, times, order), same step count, byte for byte.
// Randomized workloads reuse the fuzz suite's generators; kVerify runs both
// paths side by side and asserts every internal decision agrees too.
#include <gtest/gtest.h>

#include "core/bucket_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::random_topology;
using testing::random_workload;
using testing::txn;

RunResult run_mode(const Network& net, const SyntheticOptions& wopts,
                   std::unique_ptr<OnlineScheduler> sched,
                   EngineOptions::Mode mode, std::int64_t latency_factor) {
  SyntheticWorkload wl(net, wopts);
  RunOptions opts;
  opts.engine.latency_factor = latency_factor;
  opts.engine.mode = mode;
  opts.validate = true;
  return run_experiment(net, wl, *sched, opts);
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.committed.size(), b.committed.size());
  for (std::size_t i = 0; i < a.committed.size(); ++i) {
    const ScheduledTxn& x = a.committed[i];
    const ScheduledTxn& y = b.committed[i];
    EXPECT_EQ(x.txn.id, y.txn.id) << "commit " << i;
    EXPECT_EQ(x.txn.node, y.txn.node) << "commit " << i;
    EXPECT_EQ(x.txn.gen_time, y.txn.gen_time) << "commit " << i;
    EXPECT_EQ(x.exec, y.exec) << "commit " << i;
    EXPECT_EQ(x.txn.accesses, y.txn.accesses) << "commit " << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.active_steps, b.active_steps);
}

class FastPathEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FastPathEquivalence, GreedyCommitSequencesMatch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL +
          1442695040888963407ULL);
  for (int iter = 0; iter < 4; ++iter) {
    const Network net = random_topology(rng);
    const SyntheticOptions wopts = random_workload(net, rng);
    GreedyOptions g;
    if (rng.bernoulli(0.25)) g.coordination_delay = rng.uniform_int(1, 5);
    if (rng.bernoulli(0.25)) g.congestion_padding = rng.uniform01() * 0.5;
    const std::int64_t lf = rng.bernoulli(0.3) ? 2 : 1;

    const RunResult scan =
        run_mode(net, wopts, std::make_unique<GreedyScheduler>(g),
                 EngineOptions::Mode::kScan, lf);
    const RunResult calendar =
        run_mode(net, wopts, std::make_unique<GreedyScheduler>(g),
                 EngineOptions::Mode::kCalendar, lf);
    expect_identical(scan, calendar);
    // kVerify cross-checks every internal decision (due sets, reroute
    // targets, next_exec_due) and throws CheckError on any divergence.
    const RunResult verified =
        run_mode(net, wopts, std::make_unique<GreedyScheduler>(g),
                 EngineOptions::Mode::kVerify, lf);
    expect_identical(scan, verified);
  }
}

TEST_P(FastPathEquivalence, BucketCommitSequencesMatch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2862933555777941757ULL +
          3037000493ULL);
  for (int iter = 0; iter < 2; ++iter) {
    const Network net = random_topology(rng);
    const SyntheticOptions wopts = random_workload(net, rng);
    auto make_sched = [] {
      return std::make_unique<BucketScheduler>(
          std::shared_ptr<const BatchScheduler>(make_coloring_batch()));
    };
    const RunResult scan = run_mode(net, wopts, make_sched(),
                                    EngineOptions::Mode::kScan, 1);
    const RunResult verified = run_mode(net, wopts, make_sched(),
                                        EngineOptions::Mode::kVerify, 1);
    expect_identical(scan, verified);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathEquivalence, ::testing::Range(0, 6));

// A hand-built scenario pinning the subtle cases: redirects mid-flight,
// fast-forwarded idle stretches, and same-step independent commits.
TEST(FastPathEquivalence, ScriptedRedirectScenario) {
  for (const auto mode :
       {EngineOptions::Mode::kScan, EngineOptions::Mode::kVerify,
        EngineOptions::Mode::kCalendar}) {
    const Network net = make_line(10);
    EngineOptions opts;
    opts.mode = mode;
    SyncEngine e(net.oracle, {origin(0, 0), origin(1, 9)}, opts);
    e.begin_step({{txn(1, 9, 0, {0}), txn(2, 5, 0, {1})}});
    e.apply({{Assignment{1, 20}, Assignment{2, 4}}});
    e.finish_step();
    EXPECT_EQ(e.next_exec_due(), 4);
    e.begin_step({{txn(3, 1, 1, {0})}});
    const Time promised = e.object(0).time_to(1, 1, *net.oracle);
    e.apply({{Assignment{3, 1 + promised}}});
    e.finish_step();
    e.advance_to(e.next_exec_due());
    while (!e.all_done()) {
      e.begin_step({});
      e.finish_step();
      const Time due = e.next_exec_due();
      if (due != kNoTime && due > e.now()) e.advance_to(due);
    }
    ASSERT_EQ(e.committed().size(), 3u);
    EXPECT_EQ(e.committed()[0].txn.id, 3);  // redirected, exec 1 + promised
    EXPECT_EQ(e.committed()[1].txn.id, 2);
    EXPECT_EQ(e.committed()[1].exec, 4);
    EXPECT_EQ(e.committed()[2].txn.id, 1);
    EXPECT_EQ(e.committed()[2].exec, 20);
  }
}

}  // namespace
}  // namespace dtm
