// Tests for the EventClock ring calendar: the timing wheel must answer
// exactly like the (time, id) min-heap it replaced — same pop order, same
// next_scheduled answers — across the ring horizon, the overflow heap, and
// wrap-around.
#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hpp"

namespace dtm {
namespace {

std::vector<TxnId> pop_at(EventClock& c, Time t) {
  if (t > c.now()) c.advance_to(t);
  std::vector<TxnId> out;
  c.pop_due(out);
  return out;
}

TEST(Clock, PopsAscendingIdsWithinStep) {
  EventClock c;
  c.schedule(5, 30);
  c.schedule(5, 10);
  c.schedule(5, 20);
  c.schedule(3, 40);
  EXPECT_EQ(c.next_scheduled(), 3);
  EXPECT_EQ(pop_at(c, 3), (std::vector<TxnId>{40}));
  EXPECT_EQ(c.next_scheduled(), 5);
  EXPECT_EQ(pop_at(c, 5), (std::vector<TxnId>{10, 20, 30}));
  EXPECT_EQ(c.next_scheduled(), kNoTime);
  EXPECT_EQ(c.calendar_size(), 0);
}

TEST(Clock, OverflowBeyondRingHorizon) {
  EventClock c;
  const auto horizon = static_cast<Time>(EventClock::kRingSlots);
  c.schedule(horizon + 100, 1);  // parked in the overflow heap
  c.schedule(7, 2);              // ring
  EXPECT_EQ(c.calendar_overflow(), 1);
  EXPECT_EQ(c.next_scheduled(), 7);
  EXPECT_EQ(pop_at(c, 7), (std::vector<TxnId>{2}));
  // The overflow entry is found without any migration pass.
  EXPECT_EQ(c.next_scheduled(), horizon + 100);
  EXPECT_EQ(pop_at(c, horizon + 100), (std::vector<TxnId>{1}));
  EXPECT_EQ(c.calendar_overflow(), 0);
  EXPECT_EQ(c.calendar_size(), 0);
}

TEST(Clock, RingAndOverflowDueSameStepMergeInIdOrder) {
  EventClock c;
  const auto horizon = static_cast<Time>(EventClock::kRingSlots);
  const Time due = horizon + 5;
  c.schedule(due, 9);  // beyond horizon now: overflow
  c.advance_to(due - 1);
  c.schedule(due, 3);  // within horizon now: ring
  c.schedule(due, 12);
  EXPECT_EQ(c.next_scheduled(), due);
  // One step's due set sorts ascending by id regardless of which structure
  // held each entry.
  EXPECT_EQ(pop_at(c, due), (std::vector<TxnId>{3, 9, 12}));
}

TEST(Clock, WrapAroundKeepsTimeOrder) {
  EventClock c;
  const auto slots = static_cast<Time>(EventClock::kRingSlots);
  // Fill across a wrap boundary: slot_of(slots - 2) is near the top of the
  // ring, slot_of(slots + 3) has wrapped to the bottom.
  c.advance_to(slots - 2);
  c.schedule(slots + 3, 1);
  c.schedule(slots - 2, 2);
  c.schedule(slots, 3);
  EXPECT_EQ(c.next_scheduled(), slots - 2);
  EXPECT_EQ(pop_at(c, slots - 2), (std::vector<TxnId>{2}));
  EXPECT_EQ(c.next_scheduled(), slots);
  EXPECT_EQ(pop_at(c, slots), (std::vector<TxnId>{3}));
  EXPECT_EQ(c.next_scheduled(), slots + 3);
  EXPECT_EQ(pop_at(c, slots + 3), (std::vector<TxnId>{1}));
}

TEST(Clock, PeakTracksHighWaterMark) {
  EventClock c;
  c.schedule(1, 1);
  c.schedule(2, 2);
  c.schedule(3, 3);
  EXPECT_EQ(c.calendar_size(), 3);
  EXPECT_EQ(c.calendar_peak(), 3);
  (void)pop_at(c, 1);
  (void)pop_at(c, 2);
  EXPECT_EQ(c.calendar_size(), 1);
  EXPECT_EQ(c.calendar_peak(), 3);
  c.schedule(4, 4);
  EXPECT_EQ(c.calendar_peak(), 3);  // never exceeded the old peak
  c.schedule(5, 5);
  c.schedule(6, 6);
  EXPECT_EQ(c.calendar_peak(), 4);
}

TEST(Clock, SchedulingInThePastIsAnError) {
  EventClock c;
  c.advance_to(10);
  EXPECT_THROW(c.schedule(9, 1), CheckError);
}

TEST(Clock, EmptyStepsPopNothing) {
  EventClock c;
  c.schedule(4, 7);
  EXPECT_TRUE(pop_at(c, 2).empty());
  EXPECT_TRUE(pop_at(c, 3).empty());
  EXPECT_EQ(pop_at(c, 4), (std::vector<TxnId>{7}));
}

}  // namespace
}  // namespace dtm
