// End-to-end tests for the resilience protocol: the distributed bucket
// scheduler driven over a FaultyBus. The headline guarantee is liveness —
// every transaction commits under any loss rate < 1 — backed by per-probe
// timeouts with exponential backoff, reply/report deduplication, and report
// retransmission. Chaos is deterministic in (plan, seed) and invariant
// across the three engine modes, so failures here bisect cleanly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dist/dist_bucket.hpp"
#include "fault/plan.hpp"
#include "net/topology.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "sim/workload.hpp"
#include "util/check.hpp"

namespace dtm {
namespace {

struct ChaosRun {
  RunResult result;
  DistStats stats;
  bool has_faulty_bus = false;
  FaultBusStats bus;
};

ChaosRun run_dist(const Network& net, const FaultPlan& plan,
                  std::uint64_t seed,
                  EngineOptions::Mode mode = EngineOptions::Mode::kCalendar) {
  SyntheticOptions w;
  w.num_objects = 8;
  w.k = 2;
  w.rounds = 2;
  w.seed = seed;
  SyntheticWorkload wl(net, w);
  DistBucketOptions o;
  o.seed = seed;
  o.fault = plan;
  DistributedBucketScheduler sched(net, Registry::make_batch_algo("auto", net),
                                   o);
  RunOptions opts;
  opts.engine.mode = mode;
  opts.engine.latency_factor = 2;  // §V half-speed objects
  opts.engine.fault = plan;
  const RunResult r = run_experiment(net, wl, sched, opts);
  ChaosRun out{r, sched.stats(), sched.fault_bus_stats() != nullptr, {}};
  if (const FaultBusStats* fb = sched.fault_bus_stats()) out.bus = *fb;
  // Liveness: the workload's whole transaction set committed.
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  return out;
}

void expect_same_commits(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.committed.size(), b.committed.size());
  for (std::size_t i = 0; i < a.committed.size(); ++i) {
    EXPECT_EQ(a.committed[i].txn.id, b.committed[i].txn.id) << "commit " << i;
    EXPECT_EQ(a.committed[i].exec, b.committed[i].exec) << "commit " << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.active_steps, b.active_steps);
}

TEST(ChaosProtocol, NullPlanTakesTheExactNoFaultPath) {
  const Network net = make_line(12);
  const ChaosRun base = run_dist(net, FaultPlan{}, 7);
  EXPECT_FALSE(base.has_faulty_bus);  // plain MessageBus in use
  EXPECT_EQ(base.stats.probe_timeouts, 0);
  EXPECT_EQ(base.stats.reprobes, 0);
  EXPECT_EQ(base.stats.report_retries, 0);

  // A null plan with a different seed is still byte-identical: the seed
  // only matters once a fault fires.
  FaultPlan reseeded;
  reseeded.seed = 0xDEAD;
  const ChaosRun same = run_dist(net, reseeded, 7);
  expect_same_commits(base.result, same.result);
}

TEST(ChaosProtocol, MessageFaultsRequireMessageLevelDiscovery) {
  const Network net = make_line(8);
  DistBucketOptions o;
  o.fault.drop = 0.1;
  o.message_level_discovery = false;  // analytic mode has no messages
  EXPECT_THROW((void)DistributedBucketScheduler(
                   net, Registry::make_batch_algo("auto", net), o),
               CheckError);
}

TEST(ChaosProtocol, EveryTxnCommitsUnderLoss) {
  // The resilience claim across loss rates and topologies; run_dist asserts
  // commits == generated internally.
  const Network line = make_line(12);
  const Network cluster = make_cluster(2, 3, 4);
  for (const double drop : {0.2, 0.5}) {
    for (const std::uint64_t seed : {3ull, 11ull, 29ull}) {
      FaultPlan p;
      p.drop = drop;
      p.jitter = 2;
      p.dup = 0.1;
      p.seed = seed ^ 0xC4A05ULL;
      const ChaosRun a = run_dist(line, p, seed);
      EXPECT_TRUE(a.has_faulty_bus);
      EXPECT_GT(a.bus.offered, 0);
      const ChaosRun b = run_dist(cluster, p, seed);
      EXPECT_TRUE(b.has_faulty_bus);
      if (drop == 0.5) {
        // Heavy loss must visibly engage the retry machinery.
        EXPECT_GT(a.bus.dropped, 0);
        EXPECT_GT(a.stats.probe_timeouts, 0);
        EXPECT_GT(a.stats.reprobes, 0);
      }
    }
  }
}

TEST(ChaosProtocol, SurvivesPausesAndDegradedLinks) {
  const Network net = make_cluster(2, 2, 3);
  FaultPlan p;
  p.drop = 0.15;
  p.pauses = 3;
  p.pause_len = 12;
  p.pause_within = 80;
  p.degrade = 2;
  p.degrade_frac = 0.5;
  p.seed = 5;
  const ChaosRun r = run_dist(net, p, 13);
  EXPECT_TRUE(r.has_faulty_bus);
  EXPECT_GT(r.result.makespan, 0);
}

TEST(ChaosProtocol, ChaosIsDeterministicInPlanAndSeed) {
  const Network net = make_line(12);
  FaultPlan p;
  p.drop = 0.3;
  p.jitter = 2;
  p.dup = 0.1;
  p.stall = 0.3;
  p.seed = 41;
  const ChaosRun a = run_dist(net, p, 11);
  const ChaosRun b = run_dist(net, p, 11);
  expect_same_commits(a.result, b.result);
  EXPECT_EQ(a.stats.probe_timeouts, b.stats.probe_timeouts);
  EXPECT_EQ(a.stats.reprobes, b.stats.reprobes);
  EXPECT_EQ(a.stats.report_retries, b.stats.report_retries);
  EXPECT_EQ(a.stats.dup_replies, b.stats.dup_replies);
  EXPECT_EQ(a.stats.dup_reports, b.stats.dup_reports);
  EXPECT_EQ(a.bus.dropped, b.bus.dropped);
  EXPECT_EQ(a.bus.duplicated, b.bus.duplicated);
  EXPECT_EQ(a.bus.jitter_total, b.bus.jitter_total);

  // A different fault seed under the same workload seed perturbs the run
  // (sanity: the chaos stream is actually live).
  FaultPlan q = p;
  q.seed = 42;
  const ChaosRun c = run_dist(net, q, 11);
  EXPECT_EQ(c.result.num_txns, a.result.num_txns);
}

TEST(ChaosProtocol, CommitStreamInvariantAcrossEngineModes) {
  // The fault stream is drawn per send in a mode-independent order, so the
  // chaos run — not just the clean run — is identical in all three modes.
  const Network net = make_cluster(2, 3, 4);
  FaultPlan p;
  p.drop = 0.3;
  p.jitter = 2;
  p.dup = 0.1;
  p.stall = 0.3;
  p.seed = 23;
  const ChaosRun scan = run_dist(net, p, 11, EngineOptions::Mode::kScan);
  const ChaosRun cal = run_dist(net, p, 11, EngineOptions::Mode::kCalendar);
  const ChaosRun ver = run_dist(net, p, 11, EngineOptions::Mode::kVerify);
  expect_same_commits(scan.result, cal.result);
  expect_same_commits(scan.result, ver.result);
  EXPECT_EQ(scan.bus.dropped, cal.bus.dropped);
  EXPECT_EQ(scan.stats.reprobes, cal.stats.reprobes);
}

TEST(ChaosProtocol, DuplicateFloodIsDeduplicated) {
  const Network net = make_line(10);
  FaultPlan p;
  p.dup = 1.0;  // every message duplicated: replies and reports double up
  p.seed = 9;
  const ChaosRun r = run_dist(net, p, 17);
  EXPECT_TRUE(r.has_faulty_bus);
  EXPECT_GT(r.bus.duplicated, 0);
  // Each (requester, object) is answered once; the duplicate replies and
  // reports must land in the dedup counters, not in double placements.
  EXPECT_GT(r.stats.dup_replies + r.stats.dup_reports, 0);
}

TEST(ChaosProtocol, StallOnlyPlanLeavesBusUntouched) {
  const Network net = make_line(12);
  FaultPlan p;
  p.stall = 0.5;
  p.seed = 19;
  const ChaosRun r = run_dist(net, p, 7);
  EXPECT_FALSE(r.has_faulty_bus);  // no message faults: plain bus
  EXPECT_EQ(r.stats.probe_timeouts, 0);
  EXPECT_EQ(r.stats.report_retries, 0);
}

TEST(ChaosProtocol, RunSpecDrivesChaosEndToEnd) {
  // The registry path: a RunSpec naming a fault plan must behave exactly
  // like the hand-constructed run (same factories underneath).
  RunSpec spec;
  spec.topology = parse_spec("cluster:alpha=2,beta=3,gamma=4");
  spec.scheduler = parse_spec("dist-bucket");
  spec.workload = parse_spec("synthetic:objects=10,k=2,rounds=2");
  spec.fault = parse_spec("fault:drop=0.3,jitter=2,dup=0.1,stall=0.3");
  spec.latency_factor = 2;
  spec.seed = 11;
  const RunResult a = run_spec(spec);
  const RunResult b = run_spec(spec);
  EXPECT_GT(a.num_txns, 0);
  expect_same_commits(a, b);
}

}  // namespace
}  // namespace dtm
