// Tests for fault/plan and the FaultyBus chaos decorator: knob validation,
// registry construction (unknown knobs are hard errors), deterministic
// seeded fault streams, and each perturbation in isolation. The transport
// stall hook is exercised end-to-end through run_spec, which validates the
// resulting schedule — the slack-bounded stall must never break feasibility.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dist/bus.hpp"
#include "fault/plan.hpp"
#include "net/topology.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "util/check.hpp"

namespace dtm {
namespace {

/// Test convenience over the allocation-free drain_into API.
std::vector<Message> drain(MessageBus& bus, Time now) {
  std::vector<Message> out;
  bus.drain_into(now, out);
  return out;
}

TEST(FaultPlan, NullAndMessageFaultClassification) {
  FaultPlan p;
  EXPECT_TRUE(p.is_null());
  EXPECT_FALSE(p.message_faults());

  p.stall = 0.5;  // stall-only: faulty, but the bus stays untouched
  EXPECT_FALSE(p.is_null());
  EXPECT_FALSE(p.message_faults());

  FaultPlan q;
  q.drop = 0.1;
  EXPECT_TRUE(q.message_faults());
  q = FaultPlan{};
  q.jitter = 3;
  EXPECT_TRUE(q.message_faults());
  q = FaultPlan{};
  q.pauses = 1;
  EXPECT_TRUE(q.message_faults());
  // Degradation needs both an amount and a nonzero link fraction.
  q = FaultPlan{};
  q.degrade = 5;
  EXPECT_FALSE(q.message_faults());
  q.degrade_frac = 0.5;
  EXPECT_TRUE(q.message_faults());

  // A different seed alone is still the null plan.
  FaultPlan r;
  r.seed = 999;
  EXPECT_TRUE(r.is_null());
}

TEST(FaultPlan, ValidateRejectsOutOfRangeKnobs) {
  const auto bad = [](auto&& tweak) {
    FaultPlan p;
    tweak(p);
    EXPECT_THROW(p.validate(), CheckError);
  };
  bad([](FaultPlan& p) { p.drop = 1.5; });
  bad([](FaultPlan& p) { p.drop = -0.1; });
  bad([](FaultPlan& p) { p.dup = 2.0; });
  bad([](FaultPlan& p) { p.jitter = -1; });
  bad([](FaultPlan& p) { p.degrade = -2; });
  bad([](FaultPlan& p) { p.degrade_frac = 1.01; });
  bad([](FaultPlan& p) { p.pauses = -1; });
  bad([](FaultPlan& p) { p.pause_len = 0; });
  bad([](FaultPlan& p) { p.pause_within = 0; });
  bad([](FaultPlan& p) { p.stall = -0.5; });
  bad([](FaultPlan& p) { p.stall_max = 0; });
  FaultPlan ok;
  ok.drop = 1.0;
  ok.stall = 1.0;
  EXPECT_NO_THROW(ok.validate());
}

TEST(FaultPlan, LinkDegradationIsDeterministicAndSymmetric) {
  FaultPlan p;
  p.degrade = 4;
  p.degrade_frac = 0.5;
  p.seed = 7;
  int degraded = 0;
  for (NodeId u = 0; u < 16; ++u) {
    for (NodeId v = 0; v < 16; ++v) {
      EXPECT_EQ(p.link_degraded(u, v), p.link_degraded(v, u));
      EXPECT_EQ(p.link_degraded(u, v), p.link_degraded(u, v));  // stable
      if (u < v && p.link_degraded(u, v)) ++degraded;
    }
  }
  EXPECT_GT(degraded, 0);
  EXPECT_LT(degraded, 16 * 15 / 2);  // frac=0.5: neither none nor all

  p.degrade_frac = 1.0;
  EXPECT_TRUE(p.link_degraded(0, 1));
  p.degrade = 0;  // no amount: nothing is degraded regardless of frac
  EXPECT_FALSE(p.link_degraded(0, 1));
}

TEST(FaultPlan, PauseWindowsAreSeededAndBounded) {
  FaultPlan p;
  p.pauses = 5;
  p.pause_len = 10;
  p.pause_within = 64;
  p.seed = 21;
  const auto a = p.pause_windows(8);
  const auto b = p.pause_windows(8);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_GE(a[i].node, 0);
    EXPECT_LT(a[i].node, 8);
    EXPECT_GE(a[i].start, 0);
    EXPECT_LT(a[i].start, 64);
    EXPECT_EQ(a[i].end, a[i].start + 10);
  }
  FaultPlan none;
  EXPECT_TRUE(none.pause_windows(8).empty());
}

TEST(FaultRegistry, ParsesKnobsAndDefaults) {
  const FaultPlan none = Registry::make_fault_plan(parse_spec("none"), 99);
  EXPECT_TRUE(none.is_null());

  const FaultPlan p = Registry::make_fault_plan(
      parse_spec("fault:drop=0.25,dup=0.1,jitter=3,degrade=2,"
                 "degrade-frac=0.5,pauses=2,pause-len=8,pause-within=100,"
                 "stall=0.4,stall-max=6,seed=77"),
      99);
  EXPECT_DOUBLE_EQ(p.drop, 0.25);
  EXPECT_DOUBLE_EQ(p.dup, 0.1);
  EXPECT_EQ(p.jitter, 3);
  EXPECT_EQ(p.degrade, 2);
  EXPECT_DOUBLE_EQ(p.degrade_frac, 0.5);
  EXPECT_EQ(p.pauses, 2);
  EXPECT_EQ(p.pause_len, 8);
  EXPECT_EQ(p.pause_within, 100);
  EXPECT_DOUBLE_EQ(p.stall, 0.4);
  EXPECT_EQ(p.stall_max, 6);
  EXPECT_EQ(p.seed, 77u);

  // No explicit seed: the run's seed (default_seed argument) wins.
  const FaultPlan q =
      Registry::make_fault_plan(parse_spec("fault:drop=0.1"), 1234);
  EXPECT_EQ(q.seed, 1234u);
}

TEST(FaultRegistry, UnknownKnobAndKindAreHardErrors) {
  EXPECT_THROW((void)Registry::make_fault_plan(parse_spec("fault:drip=0.1"),
                                               1),
               CheckError);
  EXPECT_THROW((void)Registry::make_fault_plan(parse_spec("chaos:drop=0.1"),
                                               1),
               CheckError);
  EXPECT_THROW((void)Registry::make_fault_plan(parse_spec("none:drop=0.1"),
                                               1),
               CheckError);
  // Range errors surface at construction, not first use.
  EXPECT_THROW((void)Registry::make_fault_plan(parse_spec("fault:drop=1.5"),
                                               1),
               CheckError);
}

TEST(FaultRegistry, SpecRoundTrip) {
  // Null plan collapses to "none".
  EXPECT_EQ(Registry::fault_to_spec(FaultPlan{}).kind, "none");

  FaultPlan p;
  p.drop = 0.25;
  p.jitter = 2;
  p.pauses = 1;
  p.stall = 0.5;
  p.seed = 31;
  const Spec s = Registry::fault_to_spec(p);
  EXPECT_EQ(Registry::make_fault_plan(s), p);
  // And through the compact text form.
  EXPECT_EQ(Registry::make_fault_plan(parse_spec(to_string(s))), p);
  // Default-valued knobs are omitted from the spec.
  EXPECT_EQ(s.params.count("dup"), 0u);
  EXPECT_EQ(s.params.count("pause-len"), 0u);

  // A plan whose seed is the default round-trips without emitting it.
  FaultPlan d;
  d.drop = 0.1;
  const Spec sd = Registry::fault_to_spec(d);
  EXPECT_EQ(sd.params.count("seed"), 0u);
  EXPECT_EQ(Registry::make_fault_plan(sd), d);
}

class FaultyBusTest : public ::testing::Test {
 protected:
  Network net_ = make_line(10);
};

TEST_F(FaultyBusTest, RejectsNullPlan) {
  const FaultPlan null;
  EXPECT_THROW((void)FaultyBus(*net_.oracle, null), CheckError);
}

TEST_F(FaultyBusTest, DropEverything) {
  FaultPlan p;
  p.drop = 1.0;
  FaultyBus bus(*net_.oracle, p);
  for (int i = 0; i < 20; ++i) bus.send(0, 5, 0, ReportMsg{i});
  EXPECT_TRUE(drain(bus, 1000).empty());
  EXPECT_EQ(bus.fault_stats().offered, 20);
  EXPECT_EQ(bus.fault_stats().dropped, 20);
  EXPECT_EQ(bus.next_delivery(), kNoTime);
}

TEST_F(FaultyBusTest, DuplicateEverything) {
  FaultPlan p;
  p.dup = 1.0;
  FaultyBus bus(*net_.oracle, p);
  for (int i = 0; i < 10; ++i) bus.send(0, 5, 0, ReportMsg{i});
  EXPECT_EQ(drain(bus, 1000).size(), 20u);
  EXPECT_EQ(bus.fault_stats().duplicated, 10);
  EXPECT_EQ(bus.fault_stats().dropped, 0);
}

TEST_F(FaultyBusTest, DropPlusDupLeavesOneCopy) {
  // Both fire on the same message: the duplicate survives the drop, so a
  // message is never amplified and lost at the same time.
  FaultPlan p;
  p.drop = 1.0;
  p.dup = 1.0;
  FaultyBus bus(*net_.oracle, p);
  for (int i = 0; i < 10; ++i) bus.send(0, 5, 0, ReportMsg{i});
  EXPECT_EQ(drain(bus, 1000).size(), 10u);
  EXPECT_EQ(bus.fault_stats().dropped, 10);
  EXPECT_EQ(bus.fault_stats().duplicated, 10);
}

TEST_F(FaultyBusTest, JitterStaysInBoundsAndIsDeterministic) {
  FaultPlan p;
  p.jitter = 4;
  p.seed = 5;
  FaultyBus a(*net_.oracle, p);
  FaultyBus b(*net_.oracle, p);
  for (int i = 0; i < 30; ++i) {
    a.send(0, 6, 10, ReportMsg{i});
    b.send(0, 6, 10, ReportMsg{i});
  }
  const auto da = drain(a, 1000);
  const auto db = drain(b, 1000);
  ASSERT_EQ(da.size(), 30u);
  ASSERT_EQ(db.size(), 30u);
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_GE(da[i].deliver, 10 + 6);
    EXPECT_LE(da[i].deliver, 10 + 6 + 4);
    // Same plan, same send sequence: byte-identical fault stream.
    EXPECT_EQ(da[i].deliver, db[i].deliver);
    EXPECT_EQ(std::get<ReportMsg>(da[i].payload).txn,
              std::get<ReportMsg>(db[i].payload).txn);
  }
  EXPECT_EQ(a.fault_stats().jitter_total, b.fault_stats().jitter_total);
}

TEST_F(FaultyBusTest, DegradedLinkAddsFixedLatency) {
  FaultPlan p;
  p.degrade = 5;
  p.degrade_frac = 1.0;  // every link
  FaultyBus bus(*net_.oracle, p);
  bus.send(2, 6, 0, ReportMsg{1});
  const auto msgs = drain(bus, 1000);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].deliver, 4 + 5);
  EXPECT_EQ(bus.fault_stats().degraded, 1);
}

TEST_F(FaultyBusTest, PausedNodeDefersTraffic) {
  FaultPlan p;
  p.pauses = 1;
  p.pause_len = 12;
  p.pause_within = 40;
  p.seed = 3;
  const auto w = p.pause_windows(net_.oracle->num_nodes()).at(0);
  FaultyBus bus(*net_.oracle, p);
  // Sent by the paused node inside its window: departs at window end.
  const NodeId other = w.node == 0 ? 1 : 0;
  bus.send(w.node, other, w.start, ReportMsg{1});
  const auto msgs = drain(bus, 100000);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_GE(msgs[0].deliver, w.end + net_.oracle->dist(w.node, other));
  EXPECT_GE(bus.fault_stats().pause_deferred, 1);
}

TEST(FaultTransport, StallKeepsSchedulesValidAndDeterministic) {
  // stall=1 forces a stall draw on every fresh transfer leg; run_spec
  // validates the committed schedule, so this proves the slack bound keeps
  // every stalled schedule feasible.
  RunSpec spec;
  spec.topology = parse_spec("line:n=10");
  spec.scheduler = parse_spec("greedy");
  spec.workload = parse_spec("synthetic:objects=8,k=2,rounds=3");
  spec.seed = 9;
  spec.fault = parse_spec("fault:stall=1,stall-max=4");
  const RunResult a = run_spec(spec);
  const RunResult b = run_spec(spec);
  EXPECT_GT(a.num_txns, 0);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.committed.size(), b.committed.size());
  for (std::size_t i = 0; i < a.committed.size(); ++i) {
    EXPECT_EQ(a.committed[i].txn.id, b.committed[i].txn.id);
    EXPECT_EQ(a.committed[i].exec, b.committed[i].exec);
  }
  // Stalls never lose work: same transaction count as the fault-free run.
  RunSpec clean = spec;
  clean.fault = parse_spec("none");
  EXPECT_EQ(run_spec(clean).num_txns, a.num_txns);
}

}  // namespace
}  // namespace dtm
