// Tests for core/greedy_scheduler: Algorithm 1 and Theorems 1-3.
#include <gtest/gtest.h>

#include "core/greedy_scheduler.hpp"
#include "net/topology.hpp"
#include "sim/runner.hpp"
#include "test_helpers.hpp"

namespace dtm {
namespace {

using testing::origin;
using testing::run_and_validate;
using testing::txn;

TEST(Greedy, LocalUncontendedExecutesImmediately) {
  const Network net = make_line(8);
  ScriptedWorkload wl({origin(0, 3)}, {txn(1, 3, 0, {0})});
  GreedyScheduler sched;
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_EQ(r.makespan, 0);  // color 0: commits at its generation step
}

TEST(Greedy, WaitsForObjectTravel) {
  const Network net = make_line(8);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 6, 0, {0})});
  GreedyScheduler sched;
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_EQ(r.makespan, 6);
}

TEST(Greedy, ConflictingPairSerializedByDistance) {
  const Network net = make_line(10);
  ScriptedWorkload wl({origin(0, 0)},
                      {txn(1, 0, 0, {0}), txn(2, 9, 0, {0})});
  GreedyScheduler sched;
  const RunResult r = run_and_validate(net, wl, sched);
  // txn1 commits at 0, object travels 9: makespan exactly 9 (optimal).
  EXPECT_EQ(r.makespan, 9);
}

TEST(Greedy, LateNearbyArrivalCannotPreemptIrrevocableSchedule) {
  const Network net = make_line(10);
  // Far transaction irrevocably scheduled at t=9; a nearby transaction
  // arriving at t=1 cannot slot in before it (the object could divert to
  // node 1 by t=3, but then could not reach node 9 by the fixed t=9), so
  // greedy must place it after: color >= 16, commit at 17. This is the
  // price of never revising earlier decisions (§II).
  ScriptedWorkload wl({origin(0, 0)},
                      {txn(1, 9, 0, {0}), txn(2, 1, 1, {0})});
  GreedyScheduler sched;
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_EQ(r.makespan, 17);
}

TEST(Greedy, LateNearbyArrivalSlotsInWhenSlackAllows) {
  const Network net = make_line(10);
  // Object A (id 0) at node 0; object B (id 1) at node 0. Three local
  // transactions serialize B (colors 0,1,2); the far transaction at node 9
  // uses A and B and lands at t=11, leaving slack on A's chain (A could
  // reach node 9 by t=9). A transaction at node 1 arriving at t=1 exploits
  // the slack: A diverts to it by t=3 and still reaches node 9 by
  // 3 + 8 = 11. Greedy finds exactly this slot.
  ScriptedWorkload wl(
      {origin(0, 0), origin(1, 0)},
      {txn(1, 0, 0, {1}), txn(2, 0, 0, {1}), txn(3, 0, 0, {1}),
       txn(4, 9, 0, {0, 1}), txn(5, 1, 1, {0})});
  GreedyScheduler sched;
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_EQ(r.makespan, 11);  // the far transaction, unchanged
}

TEST(Greedy, Theorem1BoundHolds) {
  const Network net = make_grid({4, 4});
  SyntheticOptions wopts;
  wopts.num_objects = 6;
  wopts.k = 3;
  wopts.rounds = 3;
  wopts.seed = 5;
  SyntheticWorkload wl(net, wopts);
  GreedyScheduler sched;
  // Run manually to inspect per-arrival bounds.
  SyncEngine eng(net.oracle, wl.objects(), {});
  while (!(wl.finished() && eng.all_done())) {
    const auto arrivals = wl.arrivals_at(eng.now());
    eng.begin_step(arrivals);
    const auto asg = sched.on_step(eng, arrivals);
    for (const auto& b : sched.last_bounds()) {
      EXPECT_LE(b.color, b.bound)
          << "Theorem 1 violated for txn " << b.txn;
    }
    eng.apply(asg);
    for (const auto& c : eng.finish_step()) wl.on_commit(c.txn, c.exec);
  }
}

TEST(Greedy, UniformModeMultiplesOfBeta) {
  // Hypercube treated as a uniform-weight complete graph with beta = log n
  // (§III-D): all colors must be multiples of beta.
  const Network net = make_hypercube(3);
  const Weight beta = 3;
  SyntheticOptions wopts;
  wopts.num_objects = 4;
  wopts.k = 2;
  wopts.rounds = 2;
  wopts.seed = 8;
  SyntheticWorkload wl(net, wopts);
  GreedyOptions gopts;
  gopts.uniform_beta = beta;
  GreedyScheduler sched(gopts);
  SyncEngine eng(net.oracle, wl.objects(), {});
  int checked = 0;
  while (!(wl.finished() && eng.all_done())) {
    const auto arrivals = wl.arrivals_at(eng.now());
    eng.begin_step(arrivals);
    const auto asg = sched.on_step(eng, arrivals);
    for (const auto& b : sched.last_bounds()) {
      EXPECT_EQ(b.color % beta, 0);
      EXPECT_GE(b.color, beta);
      ++checked;
    }
    eng.apply(asg);
    for (const auto& c : eng.finish_step()) wl.on_commit(c.txn, c.exec);
  }
  EXPECT_GT(checked, 0);
  const auto err = validate_schedule(eng.committed(), eng.origins(),
                                     *net.oracle);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(Greedy, CliqueLoadBound) {
  // Theorem 3's structure: k objects, l_max users per object => commit by
  // t + k * l_max on the clique.
  const NodeId n = 12;
  const Network net = make_clique(n);
  // All 12 transactions request the same 2 objects: l_max = 12, k = 2.
  std::vector<Transaction> ts;
  for (TxnId i = 0; i < n; ++i)
    ts.push_back(txn(i, static_cast<NodeId>(i), 0, {0, 1}));
  ScriptedWorkload wl({origin(0, 0), origin(1, 1)}, ts);
  GreedyScheduler sched;
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_LE(r.makespan, 2 * 12);  // k * l_max
  EXPECT_GE(r.makespan, 11);      // 12 sequential commits of object 0
}

TEST(Greedy, CoordinationDelayFloorsColors) {
  const Network net = make_clique(8);
  GreedyOptions opts;
  opts.coordination_delay = 5;
  GreedyScheduler sched(opts);
  ScriptedWorkload wl({origin(0, 0)}, {txn(1, 0, 0, {0})});
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_EQ(r.makespan, 5);
}

TEST(Greedy, NameReflectsMode) {
  EXPECT_EQ(GreedyScheduler().name(), "greedy");
  GreedyOptions opts;
  opts.uniform_beta = 4;
  EXPECT_EQ(GreedyScheduler(opts).name(), "greedy-uniform");
}

// Validity sweep across topologies and workloads.
class GreedySweep : public ::testing::TestWithParam<int> {};

TEST_P(GreedySweep, ProducesValidSchedulesEverywhere) {
  const auto nets = testing::small_networks();
  const Network& net = nets[static_cast<std::size_t>(GetParam())];
  SyntheticOptions wopts;
  wopts.num_objects = std::max<std::int32_t>(4, net.num_nodes() / 2);
  wopts.k = 2;
  wopts.rounds = 3;
  wopts.zipf_s = 0.8;
  wopts.seed = 1234;
  SyntheticWorkload wl(net, wopts);
  GreedyScheduler sched;
  const RunResult r = run_and_validate(net, wl, sched);
  EXPECT_EQ(r.num_txns, static_cast<std::int64_t>(wl.generated().size()));
  EXPECT_GE(r.ratio, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Topologies, GreedySweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace dtm
