// Tests for util/: checked asserts, RNG, statistics, tables.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dtm {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    DTM_CHECK(1 == 2, "context " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { DTM_CHECK(2 + 2 == 4); }

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, Uniform01Range) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, GeometricGapAtLeastOne) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) EXPECT_GE(rng.geometric_gap(0.3), 1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.geometric_gap(1.0), 1);
}

TEST(Rng, SampleDistinctProperties) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = rng.sample_distinct(20, 7);
    EXPECT_EQ(s.size(), 7u);
    std::set<std::int32_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (const auto v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(Rng, SampleDistinctFullRange) {
  Rng rng(22);
  const auto s = rng.sample_distinct(5, 5);
  std::set<std::int32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::multiset<int> a(v.begin(), v.end()), b(w.begin(), w.end());
  EXPECT_EQ(a, b);
}

TEST(Zipf, UniformWhenSZero) {
  ZipfSampler z(4, 0.0);
  Rng rng(77);
  std::vector<int> count(4, 0);
  for (int i = 0; i < 8000; ++i) ++count[z.draw(rng)];
  for (const int c : count) EXPECT_NEAR(c, 2000, 250);
}

TEST(Zipf, SkewFavorsLowRanks) {
  ZipfSampler z(100, 1.2);
  Rng rng(78);
  std::vector<int> count(100, 0);
  for (int i = 0; i < 20000; ++i) ++count[z.draw(rng)];
  EXPECT_GT(count[0], count[10]);
  EXPECT_GT(count[0], 20000 / 100 * 5);  // far above uniform share
}

TEST(Zipf, DrawInRange) {
  ZipfSampler z(7, 2.0);
  Rng rng(79);
  for (int i = 0; i < 1000; ++i) {
    const auto r = z.draw(rng);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 7);
  }
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "n", "ratio"});
  t.row().add("clique").add(16).add(1.5);
  t.row().add("line").add(128).add(2.25);
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("clique"), std::string::npos);
  EXPECT_NE(s.find("2.250"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("name,n,ratio"), std::string::npos);
  EXPECT_NE(csv.str().find("line,128,2.250"), std::string::npos);
}

TEST(Table, RaggedRowRejected) {
  Table t({"a", "b"});
  t.row().add(1);
  EXPECT_THROW((void)t.row(), CheckError);
}

TEST(Table, AddBeforeRowRejected) {
  Table t({"a"});
  EXPECT_THROW((void)t.add(1), CheckError);
}

}  // namespace
}  // namespace dtm
