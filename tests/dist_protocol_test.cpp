// Tests for dist/bus and dist/tracking: the message substrate and the
// forwarding-pointer object-tracking protocol of §V.
#include <gtest/gtest.h>

#include "dist/bus.hpp"
#include "dist/tracking.hpp"
#include "net/topology.hpp"

namespace dtm {
namespace {

/// Test convenience over the allocation-free drain_into API.
template <typename Bus>
std::vector<Message> drain(Bus& bus, Time now) {
  std::vector<Message> out;
  bus.drain_into(now, out);
  return out;
}

TEST(MessageBus, DeliversAtDistance) {
  const Network net = make_line(10);
  MessageBus bus(*net.oracle);
  bus.send(0, 7, 5, ReportMsg{1});
  EXPECT_EQ(bus.next_delivery(), 12);
  EXPECT_TRUE(drain(bus, 11).empty());
  const auto msgs = drain(bus, 12);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].from, 0);
  EXPECT_EQ(msgs[0].to, 7);
  EXPECT_EQ(msgs[0].sent, 5);
  EXPECT_TRUE(std::holds_alternative<ReportMsg>(msgs[0].payload));
  EXPECT_EQ(bus.next_delivery(), kNoTime);
}

TEST(MessageBus, DrainOrderAndFifoTies) {
  const Network net = make_line(10);
  MessageBus bus(*net.oracle);
  bus.send(0, 2, 0, ReportMsg{1});  // deliver 2
  bus.send(0, 1, 0, ReportMsg{2});  // deliver 1
  bus.send(3, 1, 0, ReportMsg{3});  // deliver 2 (tie with first, later seq)
  const auto msgs = drain(bus, 10);
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(std::get<ReportMsg>(msgs[0].payload).txn, 2);
  EXPECT_EQ(std::get<ReportMsg>(msgs[1].payload).txn, 1);
  EXPECT_EQ(std::get<ReportMsg>(msgs[2].payload).txn, 3);
}

TEST(MessageBus, StatsAccumulate) {
  const Network net = make_line(10);
  MessageBus bus(*net.oracle);
  bus.send(0, 4, 0, ReportMsg{1});
  bus.send(4, 9, 0, ReportMsg{2});
  EXPECT_EQ(bus.messages_sent(), 2);
  EXPECT_EQ(bus.total_distance(), 4 + 5);
}

TEST(MessageBus, ZeroDistanceDeliversSameStep) {
  const Network net = make_line(4);
  MessageBus bus(*net.oracle);
  bus.send(2, 2, 7, ReportMsg{9});
  const auto msgs = drain(bus, 7);
  ASSERT_EQ(msgs.size(), 1u);
}

class TrackingTest : public ::testing::Test {
 protected:
  Network net_ = make_line(12);
};

TEST_F(TrackingTest, RegisterAndBirth) {
  ObjectTrailDirectory dir;
  dir.register_object(0, 3);
  EXPECT_EQ(dir.birth_node(0), 3);
  EXPECT_EQ(dir.current_terminus(0), 3);
  EXPECT_THROW((void)dir.register_object(0, 4), CheckError);
  EXPECT_THROW((void)dir.birth_node(9), CheckError);
}

TEST_F(TrackingTest, PointerLaidOnDeparture) {
  ObjectTrailDirectory dir;
  ObjectState obj(0, 3, 0);
  dir.register_object(0, 3);
  dir.observe(obj, 0);
  // No departure yet: lookups find nothing to follow.
  EXPECT_FALSE(dir.lookup(0, 3, 5).departed);

  obj.route_to(9, 4, *net_.oracle);
  dir.observe(obj, 4);
  EXPECT_EQ(dir.current_terminus(0), 9);
  // A probe arriving at node 3 before the departure time sees the object
  // as still present.
  EXPECT_FALSE(dir.lookup(0, 3, 3).departed);
  const auto hop = dir.lookup(0, 3, 4);
  EXPECT_TRUE(hop.departed);
  EXPECT_EQ(hop.next, 9);
  EXPECT_EQ(hop.depart_time, 4);
}

TEST_F(TrackingTest, ChainOfHops) {
  ObjectTrailDirectory dir;
  ObjectState obj(0, 0, 0);
  dir.register_object(0, 0);
  dir.observe(obj, 0);
  obj.route_to(5, 0, *net_.oracle);
  dir.observe(obj, 0);
  obj.settle(5);
  dir.observe(obj, 5);
  obj.route_to(11, 6, *net_.oracle);
  dir.observe(obj, 6);
  // Probe path: 0 -> 5 -> 11.
  const auto h0 = dir.lookup(0, 0, 100);
  ASSERT_TRUE(h0.departed);
  EXPECT_EQ(h0.next, 5);
  const auto h1 = dir.lookup(0, 5, 100);
  ASSERT_TRUE(h1.departed);
  EXPECT_EQ(h1.next, 11);
  EXPECT_FALSE(dir.lookup(0, 11, 100).departed);
  EXPECT_EQ(dir.current_terminus(0), 11);
}

TEST_F(TrackingTest, QueryBeforeFirstObservation) {
  // A probe can race ahead of the first observe() (e.g. a transaction
  // arrives on the same step the object is created): every query must give
  // the "still at birth" answer, not crash or mislead.
  ObjectTrailDirectory dir;
  dir.register_object(0, 4);
  EXPECT_FALSE(dir.lookup(0, 4, 0).departed);
  EXPECT_FALSE(dir.lookup(0, 4, 1000).departed);
  EXPECT_FALSE(dir.lookup(0, 9, 1000).departed);  // any other node: nothing
  EXPECT_EQ(dir.current_terminus(0), 4);
  EXPECT_THROW((void)dir.lookup(7, 4, 0), CheckError);  // unknown object
  EXPECT_THROW((void)dir.current_terminus(7), CheckError);
}

TEST_F(TrackingTest, ProbeAtRevisitedNodeTerminatesViaMinDepart) {
  // Object goes 0 -> 6 and comes back: the trail now contains a cycle of
  // pointers (0 -> 6 at t=0, 6 -> 0 at t=7). A chase walking forward in
  // time (min_depart = previous hop's departure) must conclude "object is
  // here" at the revisited node instead of looping forever.
  ObjectTrailDirectory dir;
  ObjectState obj(0, 0, 0);
  dir.register_object(0, 0);
  dir.observe(obj, 0);
  obj.route_to(6, 0, *net_.oracle);
  dir.observe(obj, 0);
  obj.settle(6);
  dir.observe(obj, 6);
  obj.route_to(0, 7, *net_.oracle);
  dir.observe(obj, 7);
  obj.settle(13);
  dir.observe(obj, 13);
  EXPECT_EQ(dir.current_terminus(0), 0);

  const auto h0 = dir.lookup(0, 0, 100);
  ASSERT_TRUE(h0.departed);
  EXPECT_EQ(h0.next, 6);
  const auto h1 = dir.lookup(0, 6, 100, h0.depart_time);
  ASSERT_TRUE(h1.departed);
  EXPECT_EQ(h1.next, 0);
  // Back at node 0: the only pointer there departed at t=0, before the
  // previous hop (t=7) — filtered out, so the chase stops: object is here.
  EXPECT_FALSE(dir.lookup(0, 0, 100, h1.depart_time).departed);
}

TEST_F(TrackingTest, MissedSettleStillChainsPointers) {
  // Event-driven engines may not surface the resting interval between two
  // legs to observe(); the second leg must still lay its pointer.
  ObjectTrailDirectory dir;
  ObjectState obj(0, 0, 0);
  dir.register_object(0, 0);
  obj.route_to(5, 0, *net_.oracle);
  dir.observe(obj, 0);
  obj.settle(5);           // rest at 5 never observed
  obj.route_to(11, 6, *net_.oracle);
  dir.observe(obj, 6);
  const auto h = dir.lookup(0, 5, 100);
  ASSERT_TRUE(h.departed);
  EXPECT_EQ(h.next, 11);
  EXPECT_EQ(h.depart_time, 6);
  EXPECT_EQ(dir.current_terminus(0), 11);
}

TEST_F(TrackingTest, RepeatedLegRefreshesDepartureStamp) {
  // Round trip 0 -> 3 -> 0 -> 3 where only the two 0 -> 3 legs are ever
  // observed: same (from, to) signature, different departure. The pointer
  // at 0 must carry the LATEST departure time, or a forward-in-time chase
  // (min_depart) would wrongly conclude the object never left again.
  ObjectTrailDirectory dir;
  ObjectState obj(0, 0, 0);
  dir.register_object(0, 0);
  obj.route_to(3, 0, *net_.oracle);
  dir.observe(obj, 0);
  obj.settle(3);
  obj.route_to(0, 4, *net_.oracle);   // unobserved return leg
  obj.settle(7);
  obj.route_to(3, 20, *net_.oracle);  // same signature as the first leg
  dir.observe(obj, 20);
  const auto h = dir.lookup(0, 0, 100, /*min_depart=*/10);
  ASSERT_TRUE(h.departed);
  EXPECT_EQ(h.next, 3);
  EXPECT_EQ(h.depart_time, 20);
  EXPECT_EQ(dir.current_terminus(0), 3);
}

TEST_F(TrackingTest, MidFlightRedirectOverwritesPointer) {
  // 0 -> 9 redirected at t=2 back toward 1: the pointer at 0 must follow
  // the redirect (latest leg wins) so probes chase the real trajectory.
  ObjectTrailDirectory dir;
  ObjectState obj(0, 0, 0);
  dir.register_object(0, 0);
  obj.route_to(9, 0, *net_.oracle);
  dir.observe(obj, 0);
  obj.route_to(1, 2, *net_.oracle);  // backtrack via node 0 wins
  dir.observe(obj, 2);
  const auto h = dir.lookup(0, 0, 100);
  ASSERT_TRUE(h.departed);
  EXPECT_EQ(h.next, 1);
  EXPECT_EQ(dir.current_terminus(0), 1);
}

TEST_F(TrackingTest, MidFlightRedirectForwardExtendsChain) {
  // 0 -> 9 redirected at t=2 to 8: continuing via 9 is shorter, so the leg
  // rebases from 9 and the chain gains a hop (0 -> 9 -> 8) instead of
  // overwriting the pointer at 0.
  ObjectTrailDirectory dir;
  ObjectState obj(0, 0, 0);
  dir.register_object(0, 0);
  obj.route_to(9, 0, *net_.oracle);
  dir.observe(obj, 0);
  obj.route_to(8, 2, *net_.oracle);
  dir.observe(obj, 2);
  const auto h0 = dir.lookup(0, 0, 100);
  ASSERT_TRUE(h0.departed);
  EXPECT_EQ(h0.next, 9);
  const auto h1 = dir.lookup(0, 9, 100, h0.depart_time);
  ASSERT_TRUE(h1.departed);
  EXPECT_EQ(h1.next, 8);
  EXPECT_EQ(dir.current_terminus(0), 8);
}

TEST_F(TrackingTest, ObserveIsIdempotentPerLeg) {
  ObjectTrailDirectory dir;
  ObjectState obj(0, 2, 0);
  dir.register_object(0, 2);
  obj.route_to(8, 1, *net_.oracle);
  dir.observe(obj, 1);
  dir.observe(obj, 2);
  dir.observe(obj, 3);
  const auto hop = dir.lookup(0, 2, 10);
  EXPECT_TRUE(hop.departed);
  EXPECT_EQ(hop.depart_time, 1);  // not overwritten by later observations
}

}  // namespace
}  // namespace dtm
